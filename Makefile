# Convenience targets; `make ci` is what the CI workflow runs.

.PHONY: all build test bench bench-gate bench-baseline sim-bench fmt smoke \
	doctor-smoke serve-smoke trace-smoke report-smoke soak-smoke ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Time the N=5 paper model and fail if the spectral solver regressed
# more than 2x against the committed baseline (BENCH_MAX_RATIO to
# override). `make bench-baseline` refreshes the baseline.
bench-gate:
	dune exec bench/main.exe -- n5
	dune exec bench/check_baseline.exe

bench-baseline:
	dune exec bench/main.exe -- n5
	cp BENCH_solvers.json BENCH_baseline.json

# The pinned ocamlformat (see .ocamlformat) is not a build dependency of
# the library, so a missing binary only skips the check locally; CI
# installs it and a divergence fails the build.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	elif [ -n "$$CI" ]; then \
	  echo "fmt: ocamlformat is required in CI (version pinned in .ocamlformat)"; \
	  exit 1; \
	else \
	  echo "fmt: ocamlformat not installed; skipping (CI gates on this)"; \
	fi

# End-to-end observability smoke test: a solve must emit a Prometheus
# snapshot containing the headline instrumentation.
smoke:
	dune exec bin/urs_cli.exe -- solve --metrics - \
	  --ledger /tmp/urs_smoke_ledger.jsonl > /tmp/urs_metrics.prom
	grep -q '^urs_spectral_solve_seconds' /tmp/urs_metrics.prom
	grep -q '^urs_spectral_eigenvalues'   /tmp/urs_metrics.prom
	grep -q '^urs_sim_events_total'       /tmp/urs_metrics.prom
	grep -q '"kind":"solver.evaluate"'    /tmp/urs_smoke_ledger.jsonl
	@echo "smoke: ok"

# The quick health grid must not come back SUSPECT (exit code 1 if so).
doctor-smoke:
	dune exec bin/urs_cli.exe -- doctor --quick

# The HTTP exporter must answer /metrics, /healthz, /runs, /timeline
# and /progress.
serve-smoke: build
	sh scripts/serve_smoke.sh

# A Perfetto trace exported from a real profiled run must parse (with
# the in-repo JSON parser), carry complete events and include at least
# one GC counter track (ph=C) merged in by --profile-gc plus the
# conv:* convergence residual tracks (finite, non-increasing after the
# last deflation, ending converged); and a --jobs 4 sweep must export
# one connected span tree with cross-domain flow (ph=s/f) arrows
# between the submitting and worker domains.
trace-smoke: build
	dune exec bin/urs_cli.exe -- solve --profile-gc \
	  --trace /tmp/urs_trace_perfetto.json --trace-format perfetto \
	  > /dev/null
	dune exec scripts/validate_trace.exe -- --require-counter \
	  --require-convergence /tmp/urs_trace_perfetto.json
	dune exec bin/urs_cli.exe -- sweep load --range 0.05:0.9:24 \
	  -N 5 --lambda 4 --jobs 4 --no-cache \
	  --trace /tmp/urs_trace_flows.json --trace-format perfetto \
	  > /dev/null
	dune exec scripts/validate_trace.exe -- --require-flows \
	  /tmp/urs_trace_flows.json

# Perf-history round trip: two quick bench runs append to a scratch
# history (URS_BENCH_HISTORY keeps the committed BENCH_history.jsonl
# out of it), then `urs report` must render the trend and exit 0 —
# both entries come from this machine, so the regression gate holds.
report-smoke: build
	rm -f /tmp/urs_report_history.jsonl
	URS_BENCH_HISTORY=/tmp/urs_report_history.jsonl \
	  dune exec bench/main.exe -- n5 > /dev/null
	URS_BENCH_HISTORY=/tmp/urs_report_history.jsonl \
	  dune exec bench/main.exe -- n5 > /dev/null
	dune exec bin/urs_cli.exe -- report --detect \
	  --history /tmp/urs_report_history.jsonl --last 2
	@echo "report-smoke: ok"

# Service-level soak: `urs serve` under SOAK_SECONDS (default 60) of
# open-loop solve traffic must finish with zero 5xx, a finite p99 from
# the histogram-quantile export and `urs slo check` exit 0; the same
# server with a starved solver (--solve-max-iter 1) must breach the
# error-rate SLO and flip `urs slo check` to exit 1. The healthy leg
# runs the ledger with rotation (64 KiB segments, keep 3, batched
# flushes) and must end disk-bounded with every segment parseable; a
# third bounded-retention leg reconciles `urs query` per-route counts
# against urs_http_requests_total.
soak-smoke: build
	sh scripts/soak_smoke.sh

# Simulation-engine perf gate, mirrored by the sim-perf CI job: run the
# `sim` bench section twice against a scratch history (release profile,
# so cross-module inlining is on and the engine is actually
# allocation-free), then gate seconds-per-event at 1.5x via
# `urs report`, and check that --jobs 1 and --jobs 4 produce
# byte-identical simulation summaries.
sim-bench:
	rm -f /tmp/urs_sim_history.jsonl
	URS_BENCH_HISTORY=/tmp/urs_sim_history.jsonl \
	  dune exec --profile release bench/main.exe -- sim > /dev/null
	URS_BENCH_HISTORY=/tmp/urs_sim_history.jsonl \
	  dune exec --profile release bench/main.exe -- sim > /dev/null
	dune exec --profile release bin/urs_cli.exe -- report \
	  --history /tmp/urs_sim_history.jsonl --last 2 --max-ratio 1.5
	dune exec --profile release bin/urs_cli.exe -- simulate -N 10 \
	  --lambda 9.176 --duration 20000 --replications 4 --jobs 1 \
	  > /tmp/urs_sim_j1.txt
	dune exec --profile release bin/urs_cli.exe -- simulate -N 10 \
	  --lambda 9.176 --duration 20000 --replications 4 --jobs 4 \
	  > /tmp/urs_sim_j4.txt
	cmp /tmp/urs_sim_j1.txt /tmp/urs_sim_j4.txt
	@echo "sim-bench: ok"

ci: fmt build test smoke doctor-smoke serve-smoke trace-smoke report-smoke \
	soak-smoke sim-bench

clean:
	dune clean
