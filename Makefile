# Convenience targets; `make ci` is what the CI workflow runs.

.PHONY: all build test bench fmt smoke doctor-smoke serve-smoke ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Formatting is checked only when ocamlformat is available (it is not a
# build dependency of the library itself).
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

# End-to-end observability smoke test: a solve must emit a Prometheus
# snapshot containing the headline instrumentation.
smoke:
	dune exec bin/urs_cli.exe -- solve --metrics - \
	  --ledger /tmp/urs_smoke_ledger.jsonl > /tmp/urs_metrics.prom
	grep -q '^urs_spectral_solve_seconds' /tmp/urs_metrics.prom
	grep -q '^urs_spectral_eigenvalues'   /tmp/urs_metrics.prom
	grep -q '^urs_sim_events_total'       /tmp/urs_metrics.prom
	grep -q '"kind":"solver.evaluate"'    /tmp/urs_smoke_ledger.jsonl
	@echo "smoke: ok"

# The quick health grid must not come back SUSPECT (exit code 1 if so).
doctor-smoke:
	dune exec bin/urs_cli.exe -- doctor --quick

# The HTTP exporter must answer /metrics, /healthz and /runs.
serve-smoke: build
	sh scripts/serve_smoke.sh

ci: fmt build test smoke doctor-smoke serve-smoke

clean:
	dune clean
