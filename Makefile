# Convenience targets; `make ci` is what the CI workflow runs.

.PHONY: all build test bench fmt smoke ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Formatting is checked only when ocamlformat is available (it is not a
# build dependency of the library itself).
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

# End-to-end observability smoke test: a solve must emit a Prometheus
# snapshot containing the headline instrumentation.
smoke:
	dune exec bin/urs_cli.exe -- solve --metrics - > /tmp/urs_metrics.prom
	grep -q '^urs_spectral_solve_seconds' /tmp/urs_metrics.prom
	grep -q '^urs_spectral_eigenvalues'   /tmp/urs_metrics.prom
	grep -q '^urs_sim_events_total'       /tmp/urs_metrics.prom
	@echo "smoke: ok"

ci: fmt build test smoke

clean:
	dune clean
