(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figures 3-9 plus the Section-2 goodness-of-fit numbers),
   cross-validates the three solvers against each other and against
   simulation, and runs bechamel micro-benchmarks of the solvers.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig5    # one section
     dune exec bench/main.exe -- list    # section names

   Absolute numbers for the Section-2 statistics depend on the synthetic
   data seed; the paper's value is printed alongside each result so the
   comparison is explicit. *)

module D = Urs_prob.Distribution
module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Export = Urs_obs.Export
module Json = Urs_obs.Json

let paper_op = Urs.Model.paper_operative
let paper_inop_exp = Urs.Model.paper_inoperative_exp

let header title =
  Format.printf "@.==== %s ====@.@." title;
  Format.print_flush ()

let flush () = Format.print_flush ()

let model ~servers ~lambda =
  Urs.Model.create ~servers ~arrival_rate:lambda ~service_rate:1.0
    ~operative:paper_op ~inoperative:paper_inop_exp ()

let mean_jobs ?strategy m =
  match Urs.Solver.evaluate ?strategy m with
  | Ok p -> Some p.Urs.Solver.mean_jobs
  | Error _ -> None

(* ---- Section 2: the data set, its fits, and the KS decisions ---- *)

let dataset = lazy (Urs_dataset.Generate.generate Urs_dataset.Generate.default)

let report =
  lazy
    (match Urs_dataset.Pipeline.analyze (Lazy.force dataset) with
    | Ok r -> r
    | Error e ->
        Format.kasprintf failwith "pipeline failed: %a" Urs_prob.Fit.pp_error e)

let section_ks () =
  header "Section 2 — Kolmogorov-Smirnov goodness-of-fit (synthetic Sun log)";
  let r = Lazy.force report in
  Format.printf "%a@.@." Urs_dataset.Clean.pp_summary r.Urs_dataset.Pipeline.cleaned;
  let side label s ~paper_exp_d ~paper_h2_d =
    let open Urs_dataset.Pipeline in
    Format.printf "%s periods: mean=%.4f  C²=%.3f@." label s.sample_moments.(0)
      s.scv;
    Format.printf "  exponential fit:      %a   (paper: D=%s)@."
      Urs_prob.Ks.pp_decision s.exponential_ks paper_exp_d;
    Format.printf "  hyperexponential fit: %a   (paper: D=%s)@."
      Urs_prob.Ks.pp_decision s.h2_ks paper_h2_d;
    Format.printf "  fitted H2: %a@." Urs_prob.Hyperexponential.pp s.h2_fit
  in
  side "operative" r.Urs_dataset.Pipeline.operative ~paper_exp_d:"0.4742 REJECT"
    ~paper_h2_d:"0.1412 ACCEPT";
  Format.printf "  paper's fit: H2(w=0.7246,rate=0.1663; w=0.2754,rate=0.0091)@.@.";
  side "inoperative" r.Urs_dataset.Pipeline.inoperative
    ~paper_exp_d:"(fails, not badly)" ~paper_h2_d:"0.1832 ACCEPT";
  Format.printf "  paper's fit: H2(w=0.9303,rate=25.0043; w=0.0697,rate=1.6346)@.";
  (* the paper also notes that a plain exponential with the mean of the
     H2's dominant phase (0.04) passes at 5% for the inoperative side *)
  let inop = r.Urs_dataset.Pipeline.inoperative in
  let exp_dom = Urs_prob.Exponential.create 25.0043 in
  let pts =
    Urs_stats.Histogram.empirical_cdf_points
      inop.Urs_dataset.Pipeline.histogram
  in
  let dec =
    Urs_prob.Ks.test_points ~significance:0.05
      ~hypothesized:(Urs_prob.Exponential.cdf exp_dom)
      ~points:pts
  in
  Format.printf
    "  exponential with mean 0.04 (dominant phase): %a   (paper: passes at 5%%)@."
    Urs_prob.Ks.pp_decision dec;
  (* bootstrap confidence intervals for the operative fit — beyond the
     paper, which reports point estimates only *)
  (match
     Urs_dataset.Bootstrap.h2_fit ~replicates:100 ~seed:3
       r.Urs_dataset.Pipeline.cleaned.Urs_dataset.Clean.operative_periods
   with
  | Ok b ->
      Format.printf "@.%a@." Urs_dataset.Bootstrap.pp_h2_intervals b
  | Error e ->
      Format.printf "@.bootstrap failed: %a@." Urs_prob.Fit.pp_error e);
  flush ()

(* ---- Figures 3 and 4: empirical vs fitted densities ---- *)

let density_section ~title ~upper side =
  header title;
  let open Urs_dataset.Pipeline in
  let rows =
    density_table side.histogram
      (Urs_prob.Hyperexponential.pdf side.h2_fit)
      ~upper
  in
  Format.printf "  %12s  %14s  %14s@." "x (midpoint)" "empirical d_i"
    "H2 fit f(x)";
  List.iter
    (fun (x, emp, fit) -> Format.printf "  %12.4f  %14.6f  %14.6f@." x emp fit)
    rows;
  flush ()

let section_fig3 () =
  let r = Lazy.force report in
  density_section
    ~title:"Figure 3 — densities of operative periods (0-250)"
    ~upper:250.0 r.Urs_dataset.Pipeline.operative

let section_fig4 () =
  let r = Lazy.force report in
  density_section
    ~title:"Figure 4 — densities of inoperative periods (0-1.2)"
    ~upper:1.2 r.Urs_dataset.Pipeline.inoperative

(* ---- Figure 5: cost against N ---- *)

let section_fig5 () =
  header "Figure 5 — cost C = 4L + N against number of servers";
  Format.printf
    "(α1=0.7246, ξ1=0.1663, ξ2=0.0091, η=25, µ=1, c1=4, c2=1)@.@.";
  let lambdas = [ 7.0; 8.0; 8.5 ] in
  Format.printf "  %4s" "N";
  List.iter (fun l -> Format.printf "  %12s" (Printf.sprintf "C (λ=%.1f)" l)) lambdas;
  Format.printf "@.";
  for n = 9 to 17 do
    Format.printf "  %4d" n;
    List.iter
      (fun lambda ->
        match mean_jobs (model ~servers:n ~lambda) with
        | Some l ->
            Format.printf "  %12.2f"
              (Urs.Cost.of_performance Urs.Cost.paper_params ~servers:n
                 {
                   Urs.Solver.strategy_used = Urs.Solver.Exact;
                   mean_jobs = l;
                   mean_response = l /. lambda;
                   utilization = 0.0;
                   dominant_eigenvalue = None;
                   confidence_half_width = None;
                 })
        | None -> Format.printf "  %12s" "-")
      lambdas;
    Format.printf "@.";
    flush ()
  done;
  Format.printf "@.optimal N per arrival rate (paper: 11, 12, 13):@.";
  List.iter
    (fun lambda ->
      match
        Urs.Cost.optimal_servers ~n_max:25 (model ~servers:10 ~lambda)
          Urs.Cost.paper_params
      with
      | Ok (n, c) -> Format.printf "  λ=%.1f -> N*=%d (C=%.2f)@." lambda n c
      | Error e -> Format.printf "  λ=%.1f -> %a@." lambda Urs.Solver.pp_error e)
    lambdas;
  flush ()

(* ---- Figure 6: L against C² of operative periods ---- *)

let section_fig6 () =
  header "Figure 6 — average queue size against coefficient of variation";
  Format.printf "(N=10, η=0.2, ξ=0.0289; C²=0 by simulation, rest exact)@.@.";
  let base lambda =
    Urs.Model.create ~servers:10 ~arrival_rate:lambda ~service_rate:1.0
      ~operative:(D.exponential ~rate:0.0289)
      ~inoperative:(D.exponential ~rate:0.2) ()
  in
  let lambdas = [ 8.5; 8.6 ] in
  let scvs = [ 0.0; 1.0; 2.0; 4.0; 6.0; 8.0; 10.0; 12.0; 14.0; 16.0; 18.0 ] in
  Format.printf "  %6s" "C²";
  List.iter (fun l -> Format.printf "  %14s" (Printf.sprintf "L (λ=%.1f)" l)) lambdas;
  Format.printf "@.";
  List.iter
    (fun scv ->
      Format.printf "  %6.1f" scv;
      List.iter
        (fun lambda ->
          let strategy =
            if scv <= 0.0 then
              (* deterministic operative periods: only the simulator
                 applies, as in the paper *)
              Some
                (Urs.Solver.Simulation
                   { Urs.Solver.duration = 150_000.0; replications = 3; seed = 42 })
            else None
          in
          match
            Urs.Sweep.over_operative_scv ?strategy (base lambda)
              ~pinned_rate:0.1663 ~values:[ scv ]
          with
          | [ (_, perf) ] -> Format.printf "  %14.2f" perf.Urs.Solver.mean_jobs
          | _ -> Format.printf "  %14s" "-")
        lambdas;
      Format.printf "@.";
      flush ())
    scvs;
  Format.printf
    "@.(paper: both curves increase with C²; λ=8.5 from ~50 to ~180,@.\
     λ=8.6 from ~70 to ~400 over C² in [0, 18])@.";
  flush ()

(* ---- Figure 7: L against mean repair time ---- *)

let section_fig7 () =
  header "Figure 7 — average queue size against average repair time";
  Format.printf "(N=10, λ=8, ξ=0.0289: exponential vs hyperexponential op periods)@.@.";
  let exp_model =
    Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
      ~operative:(D.exponential ~rate:0.0289)
      ~inoperative:(D.exponential ~rate:1.0) ()
  in
  let h2_model =
    Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
      ~operative:paper_op
      ~inoperative:(D.exponential ~rate:1.0) ()
  in
  Format.printf "  %6s  %14s  %14s@." "1/η" "L (exponential)" "L (hyperexp)";
  List.iter
    (fun repair ->
      let get m =
        match Urs.Sweep.over_repair_times m ~values:[ repair ] with
        | [ (_, p) ] -> Some p.Urs.Solver.mean_jobs
        | _ -> None
      in
      match (get exp_model, get h2_model) with
      | Some a, Some b -> Format.printf "  %6.2f  %14.3f  %14.3f@." repair a b
      | _ -> Format.printf "  %6.2f  %14s  %14s@." repair "-" "-")
    (Urs.Sweep.linspace 1.0 5.0 9);
  Format.printf
    "@.(paper: exponential 10->20, hyperexponential 10->26; gap widens@.\
     with repair time — the exponential assumption grows over-optimistic)@.";
  flush ()

(* ---- Figure 8: exact vs approximation under increasing load ---- *)

let section_fig8 () =
  header "Figure 8 — exact and approximate solutions: increasing load";
  Format.printf "(N=10, fitted operative H2, η=25)@.@.";
  let env_capacity =
    (* average operative servers: N * availability *)
    10.0 *. (34.6209 /. (34.6209 +. 0.04))
  in
  Format.printf "  %7s  %8s  %12s  %12s  %10s@." "load" "λ" "L exact"
    "L approx" "rel.err";
  List.iter
    (fun load ->
      let lambda = load *. env_capacity in
      let m = model ~servers:10 ~lambda in
      let exact = mean_jobs m in
      let approx = mean_jobs ~strategy:Urs.Solver.Approximate m in
      match (exact, approx) with
      | Some e, Some a ->
          Format.printf "  %7.3f  %8.4f  %12.3f  %12.3f  %9.1f%%@." load lambda
            e a
            (100.0 *. abs_float (a -. e) /. e)
      | _ -> Format.printf "  %7.3f  %8.4f  %12s  %12s  %10s@." load lambda "-" "-" "-";
      flush ())
    [ 0.89; 0.90; 0.91; 0.92; 0.93; 0.94; 0.95; 0.96; 0.97; 0.98; 0.99 ];
  Format.printf
    "@.(paper: the two curves converge as the load approaches 1 —@.\
     the approximation is asymptotically exact in heavy traffic)@.";
  flush ()

(* ---- Figure 9: response time against N ---- *)

let section_fig9 () =
  header "Figure 9 — average response time against number of servers";
  Format.printf "(fitted operative H2, η=25, λ=7.5)@.@.";
  let m = model ~servers:8 ~lambda:7.5 in
  Format.printf "  %4s  %12s  %12s@." "N" "W exact" "W approx";
  for n = 8 to 13 do
    let mn = Urs.Model.with_servers m n in
    let exact = Urs.Solver.evaluate mn in
    let approx = Urs.Solver.evaluate ~strategy:Urs.Solver.Approximate mn in
    (match (exact, approx) with
    | Ok e, Ok a ->
        Format.printf "  %4d  %12.4f  %12.4f@." n e.Urs.Solver.mean_response
          a.Urs.Solver.mean_response
    | _ -> Format.printf "  %4d  %12s  %12s@." n "-" "-");
    flush ()
  done;
  (match Urs.Capacity.min_servers_for_response m ~target:1.5 with
  | Ok (n, _) ->
      Format.printf "@.minimum N ensuring W <= 1.5: %d   (paper: 9)@." n
  | Error e -> Format.printf "@.capacity search failed: %a@." Urs.Solver.pp_error e);
  flush ()

(* ---- Ablation: the three solvers against each other and simulation ---- *)

let section_ablation () =
  header "Ablation — solver agreement (spectral vs matrix-geometric vs simulation)";
  Format.printf "  %3s %6s  %12s  %12s  %12s  %10s@." "N" "λ" "spectral"
    "matrix-geo" "simulation" "max rel Δ";
  List.iter
    (fun (servers, lambda) ->
      let m = model ~servers ~lambda in
      let sp = mean_jobs m in
      let mg = mean_jobs ~strategy:Urs.Solver.Matrix_geometric m in
      let sim =
        mean_jobs
          ~strategy:
            (Urs.Solver.Simulation
               { Urs.Solver.duration = 100_000.0; replications = 3; seed = 9 })
          m
      in
      match (sp, mg, sim) with
      | Some a, Some b, Some c ->
          let rel = Float.max (abs_float (a -. b) /. a) (abs_float (a -. c) /. a) in
          Format.printf "  %3d %6.2f  %12.4f  %12.4f  %12.4f  %9.2e@." servers
            lambda a b c rel
      | _ -> Format.printf "  %3d %6.2f  (failed)@." servers lambda;
      flush ())
    [ (2, 1.5); (4, 3.0); (6, 4.5); (8, 6.0); (10, 8.0) ];
  Format.printf
    "@.(spectral and matrix-geometric agree to ~1e-8; simulation to@.\
     sampling accuracy — two independent exact methods plus a@.\
     behavioural oracle)@.";
  flush ()

(* ---- extensions beyond the paper ---- *)

let section_extensions () =
  header "Extensions — phase-type periods, repair crews, transient analysis";
  (* 1. general phase-type operative periods, validated by simulation *)
  Format.printf "Erlang-3 operative periods (exact via PH environment vs simulation):@.";
  let erl =
    Urs.Model.create ~servers:4 ~arrival_rate:3.0 ~service_rate:1.0
      ~operative:(D.erlang ~k:3 ~rate:0.1)
      ~inoperative:(D.exponential ~rate:0.2) ()
  in
  (match
     ( Urs.Solver.evaluate erl,
       Urs.Solver.evaluate
         ~strategy:
           (Urs.Solver.Simulation
              { Urs.Solver.duration = 80_000.0; replications = 3; seed = 13 })
         erl )
   with
  | Ok e, Ok s ->
      Format.printf "  exact L = %.4f   simulated L = %.4f ± %.3f@."
        e.Urs.Solver.mean_jobs s.Urs.Solver.mean_jobs
        (Option.value ~default:0.0 s.Urs.Solver.confidence_half_width)
  | _ -> Format.printf "  (failed)@.");
  flush ();
  (* 2. limited repair crews *)
  Format.printf
    "@.Limited repair crews (8 servers, λ=5, fitted op law, repair mean 2):@.";
  Format.printf "  %6s  %10s  %10s@." "crews" "capacity" "L";
  List.iter
    (fun crews ->
      let m =
        Urs.Model.create ?repair_crews:crews ~servers:8 ~arrival_rate:5.0
          ~service_rate:1.0 ~operative:paper_op
          ~inoperative:(D.exponential ~rate:0.5) ()
      in
      let v = Urs.Model.stability m in
      let label = match crews with None -> "all" | Some c -> string_of_int c in
      match Urs.Solver.evaluate m with
      | Ok p ->
          Format.printf "  %6s  %10.4f  %10.4f@." label
            v.Urs_mmq.Stability.effective_capacity p.Urs.Solver.mean_jobs
      | Error _ ->
          Format.printf "  %6s  %10.4f  %10s@." label
            v.Urs_mmq.Stability.effective_capacity "unstable")
    [ Some 1; Some 2; None ];
  flush ();
  (* 3. transient build-up from a cold start *)
  Format.printf "@.Cold-start build-up, N=4, λ=3 (uniformization):@.";
  let m =
    Urs.Model.create ~servers:4 ~arrival_rate:3.0 ~service_rate:1.0
      ~operative:paper_op ~inoperative:paper_inop_exp ()
  in
  (match Urs.Model.qbd m with
  | None -> Format.printf "  (no phase-type model)@."
  | Some q -> (
      match Urs_mmq.Transient.create ~levels:150 q with
      | Error e -> Format.printf "  %a@." Urs_mmq.Transient.pp_error e
      | Ok t ->
          let init = Urs_mmq.Transient.empty_all_operative t in
          let profile =
            Urs_mmq.Transient.relaxation_profile t ~initial:init
              ~times:[ 1.0; 5.0; 20.0; 100.0 ]
          in
          Format.printf "  %8s  %10s@." "t" "L(t)";
          List.iter (fun (tm, l) -> Format.printf "  %8.1f  %10.4f@." tm l) profile;
          (match Urs.Solver.evaluate m with
          | Ok p -> Format.printf "  %8s  %10.4f@." "inf" p.Urs.Solver.mean_jobs
          | Error _ -> ())));
  flush ()

(* ---- bench-regression gate: the paper's N=5 model ---- *)

(* per-solver wall + GC stats from the gate sections (n5, sim),
   consumed by the perf-history append in the driver (survives the
   per-section Metrics.reset) *)
let gate_stats : (string * Urs_obs.Perf.solver_stat) list ref = ref []

let remove_gate_stat name =
  gate_stats := List.filter (fun (n, _) -> n <> name) !gate_stats

let section_n5 () =
  header "N=5 paper model — solver wall time (bench-regression gate)";
  Format.printf "(N=5, λ=4, fitted operative H2, η=25 — the doctor's quick model)@.@.";
  List.iter remove_gate_stat [ "spectral"; "mg"; "approx" ];
  let m = model ~servers:5 ~lambda:4.0 in
  let time_solver name strategy iters =
    (* one warm-up solve so one-off initialization stays out of the gate *)
    ignore (Urs.Solver.evaluate ~strategy m);
    let g0 = Urs_obs.Runtime.sample () in
    let t0 = Span.now () in
    for _ = 1 to iters do
      match Urs.Solver.evaluate ~strategy m with
      | Ok p -> ignore p.Urs.Solver.mean_jobs
      | Error _ -> ()
    done;
    let per = (Span.now () -. t0) /. float_of_int iters in
    let d = Urs_obs.Runtime.delta ~before:g0 ~after:(Urs_obs.Runtime.sample ()) in
    let per_iter w = w /. float_of_int iters in
    let stat =
      {
        Urs_obs.Perf.seconds = per;
        minor_words = per_iter d.Urs_obs.Runtime.d_minor_words;
        promoted_words = per_iter d.Urs_obs.Runtime.d_promoted_words;
        major_words = per_iter d.Urs_obs.Runtime.d_major_words;
      }
    in
    gate_stats := (name, stat) :: !gate_stats;
    Metrics.set
      (Metrics.gauge
         ~labels:[ ("solver", name) ]
         ~help:"Mean wall seconds per solve of the N=5 paper model"
         "urs_bench_n5_seconds")
      per;
    Metrics.set
      (Metrics.gauge
         ~labels:[ ("solver", name) ]
         ~help:"Minor-heap words allocated per solve of the N=5 paper model"
         "urs_bench_n5_minor_words")
      stat.Urs_obs.Perf.minor_words;
    Format.printf "  %-10s  %10.3f ms/solve  %10.0f kw/solve  (%d iterations)@."
      name (1e3 *. per)
      (stat.Urs_obs.Perf.minor_words /. 1e3)
      iters;
    flush ()
  in
  time_solver "spectral" Urs.Solver.Exact 40;
  time_solver "mg" Urs.Solver.Matrix_geometric 40;
  time_solver "approx" Urs.Solver.Approximate 400;
  Format.printf
    "@.(CI compares the spectral gauge in BENCH_solvers.json against the@.\
     committed BENCH_baseline.json and fails on a >2x regression)@.";
  flush ()

(* ---- simulation engine throughput gate: the Figure-8 workload ---- *)

let section_sim () =
  header "Simulation engine — events/sec on the Figure-8 workload";
  Format.printf
    "(N=10, fitted operative H2, η=25, 92%% load; 4 replications, no \
     probes)@.@.";
  remove_gate_stat "sim";
  (* same environment capacity as the Figure-8 section: N * availability *)
  let env_capacity = 10.0 *. (34.6209 /. (34.6209 +. 0.04)) in
  let lambda = 0.92 *. env_capacity in
  let cfg =
    {
      Urs_sim.Server_farm.servers = 10;
      lambda;
      mu = 1.0;
      operative = paper_op;
      inoperative = paper_inop_exp;
      repair_crews = None;
    }
  in
  (* split-stream seeds, exactly like Replicate.run *)
  let master = Urs_prob.Rng.create 2024 in
  let seeds = Array.init 4 (fun _ -> Urs_prob.Rng.split_seed master) in
  let events_total () =
    Option.value ~default:0.0 (Metrics.value "urs_sim_events_total")
  in
  (* warm-up run so one-off initialization stays out of the measurement *)
  ignore
    (Urs_sim.Server_farm.run ~seed:seeds.(0) ~track_responses:false
       ~duration:2_000.0 cfg);
  let gc_capture = Urs_obs.Runtime.start_events () in
  if gc_capture then Urs_obs.Runtime.clear_events ();
  let e0 = events_total () in
  let g0 = Urs_obs.Runtime.sample () in
  let t0 = Span.now () in
  Array.iter
    (fun seed ->
      ignore
        (Urs_sim.Server_farm.run ~seed ~track_responses:false
           ~duration:50_000.0 cfg))
    seeds;
  let wall = Span.now () -. t0 in
  let d = Urs_obs.Runtime.delta ~before:g0 ~after:(Urs_obs.Runtime.sample ()) in
  let gc_seconds =
    if gc_capture then begin
      let s =
        List.fold_left
          (fun acc (sl : Urs_obs.Runtime.slice) -> acc +. sl.duration_s)
          0.0
          (Urs_obs.Runtime.gc_slices ())
      in
      Urs_obs.Runtime.stop_events ();
      Some s
    end
    else None
  in
  let events = events_total () -. e0 in
  let per_event w = if events > 0.0 then w /. events else nan in
  let stat =
    {
      Urs_obs.Perf.seconds = per_event wall;
      minor_words = per_event d.Urs_obs.Runtime.d_minor_words;
      promoted_words = per_event d.Urs_obs.Runtime.d_promoted_words;
      major_words = per_event d.Urs_obs.Runtime.d_major_words;
    }
  in
  gate_stats := ("sim", stat) :: !gate_stats;
  let gauge name help = Metrics.gauge ~help name in
  Metrics.set
    (gauge "urs_bench_sim_events_per_sec"
       "Simulation events per wall-clock second on the Figure-8 workload")
    (events /. wall);
  Metrics.set
    (gauge "urs_bench_sim_minor_words_per_event"
       "Minor-heap words allocated per simulation event")
    stat.Urs_obs.Perf.minor_words;
  Metrics.set
    (gauge "urs_bench_sim_seconds"
       "Wall seconds for the Figure-8 simulation workload")
    wall;
  Format.printf "  events processed     %12.0f@." events;
  Format.printf "  wall time            %12.3f s@." wall;
  Format.printf "  events/sec           %12.0f@." (events /. wall);
  Format.printf "  minor words/event    %12.2f@." stat.Urs_obs.Perf.minor_words;
  Format.printf "  promoted words/event %12.4f@."
    stat.Urs_obs.Perf.promoted_words;
  Format.printf "  major words/event    %12.4f@." stat.Urs_obs.Perf.major_words;
  Format.printf "  minor collections    %12d@."
    d.Urs_obs.Runtime.d_minor_collections;
  (match gc_seconds with
  | Some s -> Format.printf "  GC pause seconds     %12.3f@." s
  | None -> Format.printf "  GC pause seconds     %12s@." "(capture off)");
  Format.printf
    "@.(CI's sim-perf job runs this section twice against a scratch@.\
     history and fails when seconds/event regresses beyond --max-ratio)@.";
  flush ()

(* ---- serve: request throughput and tail latency over HTTP ---- *)

let section_serve () =
  header "Serve — HTTP request throughput and p99 (in-process server)";
  Format.printf
    "(sequential HTTP/1.0 server on an ephemeral port; closed loop,@.\
    \ 1 worker, no think time; quantiles from the latency histogram)@.@.";
  List.iter remove_gate_stat [ "serve_healthz"; "serve_solve" ];
  let cache = Urs.Solve_cache.create () in
  let server =
    Urs_obs.Http.start ~port:0 ~routes:Urs_obs.Routes.standard
      ~post_routes:[ Urs.Solve_service.post_route ~cache () ]
      ()
  in
  let port = Urs_obs.Http.port server in
  Fun.protect ~finally:(fun () -> Urs_obs.Http.stop server) @@ fun () ->
  Format.printf "  %-14s  %9s  %10s  %10s  %10s  %6s@." "target" "requests"
    "req/s" "p50 (ms)" "p99 (ms)" "errors";
  let bench ~name ~target ?(meth = "GET") ?body () =
    (* warm-up request: connection path, and for POST /solve the cache
       fill, stay out of the measurement — the gate row is the cached
       steady state *)
    ignore (Urs_obs.Http.request ~meth ?body ~port target);
    let g0 = Urs_obs.Runtime.sample () in
    let r =
      Urs.Loadgen.run ~meth ?body ~port ~target ~duration_s:2.0
        ~mode:(Urs.Loadgen.Closed { workers = 1; think_s = 0.0 })
        ()
    in
    let d = Urs_obs.Runtime.delta ~before:g0 ~after:(Urs_obs.Runtime.sample ()) in
    let per w =
      if r.Urs.Loadgen.requests > 0 then
        w /. float_of_int r.Urs.Loadgen.requests
      else nan
    in
    let stat =
      {
        Urs_obs.Perf.seconds = per r.Urs.Loadgen.wall_s;
        minor_words = per d.Urs_obs.Runtime.d_minor_words;
        promoted_words = per d.Urs_obs.Runtime.d_promoted_words;
        major_words = per d.Urs_obs.Runtime.d_major_words;
      }
    in
    gate_stats := (name, stat) :: !gate_stats;
    let gauge metric help =
      Metrics.gauge ~labels:[ ("target", target) ] ~help metric
    in
    Metrics.set
      (gauge "urs_bench_serve_requests_per_sec"
         "Closed-loop single-worker requests per second")
      r.Urs.Loadgen.throughput;
    Metrics.set
      (gauge "urs_bench_serve_p99_seconds"
         "Client-observed p99 request latency")
      r.Urs.Loadgen.p99_s;
    Format.printf "  %-14s  %9d  %10.0f  %10.3f  %10.3f  %6d@." target
      r.Urs.Loadgen.requests r.Urs.Loadgen.throughput
      (1e3 *. r.Urs.Loadgen.p50_s)
      (1e3 *. r.Urs.Loadgen.p99_s)
      (r.Urs.Loadgen.errors + r.Urs.Loadgen.timeouts);
    flush ()
  in
  bench ~name:"serve_healthz" ~target:"/healthz" ();
  bench ~name:"serve_solve" ~target:"/solve" ~meth:"POST"
    ~body:{|{"scenario":"paper"}|} ();
  Format.printf
    "@.(both rows land in BENCH_history.jsonl as ungated trend rows —@.\
     `urs report` plots them but only spectral/sim can breach the gate)@.";
  flush ()

(* ---- query engine: ledger scan throughput, cold vs indexed ---- *)

let section_query () =
  header "Query engine — ledger scan throughput, cold vs indexed";
  Format.printf
    "(synthetic two-kind ledger; the filter rules out half the records,@.\
    \ so the sidecar index can seek over their blocks without parsing)@.@.";
  List.iter remove_gate_stat [ "query_cold"; "query_indexed" ];
  let path = Filename.temp_file "urs_bench_query" ".jsonl" in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Urs_obs.Ledger_store.index_path path ])
  @@ fun () ->
  let n = 200_000 in
  let line seq kind =
    Json.to_string
      (Json.Obj
         [ ("schema", Json.String "urs-ledger/2"); ("seq", Json.Int seq);
           ("time", Json.Float (float_of_int seq));
           ("kind", Json.String kind);
           ("wall_seconds", Json.Float (1e-3 *. float_of_int (seq mod 97)));
           ("outcome", Json.String "ok") ])
  in
  (* first half one kind, second half the other — long homogeneous runs,
     like a real bench ledger's per-section record bursts *)
  let st = Urs_obs.Ledger_store.open_ ~truncate:true ~flush_every:1024 path in
  for i = 1 to n do
    let kind = if i <= n / 2 then "solve" else "http.access" in
    Urs_obs.Ledger_store.write st ~kind ~time:(float_of_int i) (line i kind)
  done;
  Urs_obs.Ledger_store.close st;
  let filter = { Urs_obs.Query.no_filter with kind = Some "solve" } in
  let aggs =
    [ Urs_obs.Query.Count;
      Urs_obs.Query.Quantile (0.99, Urs_obs.Query.Wall_seconds) ]
  in
  Format.printf "  %-10s  %10s  %12s  %10s  %10s@." "mode" "matched"
    "records/s" "seeked" "wall (s)";
  let bench ~name ~use_index =
    let g0 = Urs_obs.Runtime.sample () in
    match Urs_obs.Query.run ~use_index ~filter ~aggs path with
    | Error msg -> Format.printf "  %-10s  query failed: %s@." name msg
    | Ok r ->
        let d =
          Urs_obs.Runtime.delta ~before:g0 ~after:(Urs_obs.Runtime.sample ())
        in
        let scanned = r.Urs_obs.Query.parsed + r.Urs_obs.Query.seeked in
        let per_sec =
          float_of_int scanned /. r.Urs_obs.Query.elapsed_s
        in
        let per w = w /. float_of_int (max 1 scanned) in
        let stat =
          {
            Urs_obs.Perf.seconds = per r.Urs_obs.Query.elapsed_s;
            minor_words = per d.Urs_obs.Runtime.d_minor_words;
            promoted_words = per d.Urs_obs.Runtime.d_promoted_words;
            major_words = per d.Urs_obs.Runtime.d_major_words;
          }
        in
        gate_stats := (name, stat) :: !gate_stats;
        Metrics.set
          (Metrics.gauge
             ~labels:[ ("mode", if use_index then "indexed" else "cold") ]
             ~help:"Ledger records scanned per second by the query engine"
             "urs_bench_query_records_per_sec")
          per_sec;
        Format.printf "  %-10s  %10d  %12.0f  %10d  %10.3f@." name
          r.Urs_obs.Query.matched per_sec r.Urs_obs.Query.seeked
          r.Urs_obs.Query.elapsed_s;
        flush ()
  in
  bench ~name:"query_cold" ~use_index:false;
  bench ~name:"query_indexed" ~use_index:true;
  Format.printf
    "@.(both rows land in BENCH_history.jsonl as ungated trend rows —@.\
     seconds is per scanned record; the indexed run should seek over@.\
     roughly half the file)@.";
  flush ()

(* ---- convergence: iterations to tolerance and recorder overhead ---- *)

let section_conv () =
  header "Convergence — iterations to tolerance per solver (paper models)";
  Format.printf "(fitted operative H2, η=25, λ=0.8N; default tolerances)@.@.";
  Format.printf "  %3s  %5s  %10s  %11s  %9s  %11s@." "N" "s" "qr sweeps"
    "sweeps/eig" "mg iters" "brent iters";
  List.iter
    (fun servers ->
      let lambda = 0.8 *. float_of_int servers in
      let m = model ~servers ~lambda in
      match Urs.Model.qbd m with
      | None -> Format.printf "  %3d  (no phase-type model)@." servers
      | Some q ->
          let (), traces =
            Urs_obs.Convergence.with_recording (fun () ->
                (match Urs_mmq.Spectral.solve q with Ok _ | Error _ -> ());
                (match Urs_mmq.Matrix_geometric.solve q with
                | Ok _ | Error _ -> ());
                match Urs_mmq.Geometric.solve q with Ok _ | Error _ -> ())
          in
          let iters solver =
            List.fold_left
              (fun acc (tr : Urs_obs.Convergence.trace) ->
                if tr.Urs_obs.Convergence.solver = solver then
                  acc + tr.Urs_obs.Convergence.iterations
                else acc)
              0 traces
          in
          let s = Urs_mmq.Qbd.s q in
          let qr = iters "qr" in
          List.iter
            (fun (solver, n) ->
              Metrics.set
                (Metrics.gauge
                   ~labels:
                     [ ("solver", solver); ("n", string_of_int servers) ]
                   ~help:
                     "Iterations to tolerance on the λ=0.8N paper model"
                   "urs_bench_conv_iterations")
                (float_of_int n))
            [ ("qr", qr); ("mg_r", iters "mg_r"); ("brent", iters "brent") ];
          Format.printf "  %3d  %5d  %10d  %11.2f  %9d  %11d@." servers s qr
            (float_of_int qr /. float_of_int s)
            (iters "mg_r") (iters "brent");
          flush ())
    [ 5; 10; 20 ];
  (* recorder overhead: the N=5 spectral solve with the global recording
     flag off vs on — the callbacks only read already-computed values,
     so this should be noise-level *)
  let m = model ~servers:5 ~lambda:4.0 in
  (match Urs.Model.qbd m with
  | None -> ()
  | Some q ->
      let time_solves recording =
        Urs_obs.Convergence.set_recording recording;
        ignore (Urs_mmq.Spectral.solve q);
        let iters = 30 in
        let t0 = Span.now () in
        for _ = 1 to iters do
          ignore (Urs_mmq.Spectral.solve q)
        done;
        let per = (Span.now () -. t0) /. float_of_int iters in
        Urs_obs.Convergence.set_recording false;
        Metrics.set
          (Metrics.gauge
             ~labels:[ ("recording", if recording then "on" else "off") ]
             ~help:
               "Mean wall seconds per N=5 spectral solve with convergence \
                recording off/on"
             "urs_bench_conv_solve_seconds")
          per;
        per
      in
      let off = time_solves false in
      let on = time_solves true in
      Urs_obs.Convergence.reset ();
      Format.printf
        "@.recorder overhead (N=5 spectral): %.3f ms/solve off, %.3f \
         ms/solve on (%+.1f%%)@."
        (1e3 *. off) (1e3 *. on)
        (100.0 *. ((on /. off) -. 1.0)));
  flush ()

(* ---- parallel execution: pool and cache speedups ---- *)

let section_speedup () =
  header "Parallel execution — Figure-8 load sweep under --jobs and the solve cache";
  Format.printf "(N=10, fitted operative H2, η=25; 19 loads in [0.05, 0.95])@.@.";
  let m = model ~servers:10 ~lambda:8.0 in
  let values = Urs.Sweep.linspace 0.05 0.95 19 in
  let time f =
    let t0 = Span.now () in
    let r = f () in
    (Span.now () -. t0, r)
  in
  let gauge config =
    Metrics.gauge
      ~labels:[ ("config", config) ]
      ~help:"Wall seconds for the Figure-8 load sweep" "urs_bench_sweep_seconds"
  in
  let base_t, base = time (fun () -> Urs.Sweep.over_loads m ~values) in
  Metrics.set (gauge "jobs1") base_t;
  Format.printf "  %-24s  %10s  %8s  %s@." "configuration" "wall (s)" "speedup"
    "identical";
  let report config t points =
    Metrics.set (gauge config) t;
    Format.printf "  %-24s  %10.3f  %7.2fx  %s@." config t (base_t /. t)
      (if points = base then "yes" else "NO");
    flush ()
  in
  report "jobs=1" base_t base;
  List.iter
    (fun domains ->
      let t, pts =
        Urs_exec.Pool.with_pool ~name:"bench" ~domains (fun pool ->
            time (fun () -> Urs.Sweep.over_loads ~pool m ~values))
      in
      report (Printf.sprintf "jobs=%d" domains) t pts)
    [ 2; 4 ];
  let cache = Urs.Solve_cache.create () in
  let cold_t, cold = time (fun () -> Urs.Sweep.over_loads ~cache m ~values) in
  report "cache cold" cold_t cold;
  let warm_t, warm = time (fun () -> Urs.Sweep.over_loads ~cache m ~values) in
  report "cache warm" warm_t warm;
  Format.printf
    "@.(domain speedup tracks the host's core count; the warm cache answers@.\
     every point from memory and is core-independent. The \"identical\"@.\
     column checks the point lists are equal to the sequential run.)@.";
  flush ()

(* ---- bechamel micro-benchmarks ---- *)

let section_timing () =
  header "Timing — bechamel micro-benchmarks of the solvers";
  let open Bechamel in
  let open Toolkit in
  let solve_exact n lambda () =
    match Urs.Solver.evaluate (model ~servers:n ~lambda) with
    | Ok p -> ignore p.Urs.Solver.mean_jobs
    | Error _ -> ()
  in
  let solve_approx n lambda () =
    match
      Urs.Solver.evaluate ~strategy:Urs.Solver.Approximate (model ~servers:n ~lambda)
    with
    | Ok p -> ignore p.Urs.Solver.mean_jobs
    | Error _ -> ()
  in
  let solve_mg n lambda () =
    match
      Urs.Solver.evaluate ~strategy:Urs.Solver.Matrix_geometric
        (model ~servers:n ~lambda)
    with
    | Ok p -> ignore p.Urs.Solver.mean_jobs
    | Error _ -> ()
  in
  let tests =
    Test.make_grouped ~name:"solvers"
      [
        Test.make ~name:"spectral N=4 (s=15)" (Staged.stage (solve_exact 4 3.0));
        Test.make ~name:"spectral N=8 (s=45)" (Staged.stage (solve_exact 8 6.0));
        Test.make ~name:"spectral N=12 (s=91)" (Staged.stage (solve_exact 12 8.0));
        Test.make ~name:"geometric N=12" (Staged.stage (solve_approx 12 8.0));
        Test.make ~name:"matrix-geo N=8" (Staged.stage (solve_mg 8 6.0));
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 3.0) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Format.printf "  %-28s  %14s  %8s@." "benchmark" "time/run" "r²";
  List.iter
    (fun (name, o) ->
      let t =
        match Analyze.OLS.estimates o with
        | Some (t :: _) -> t
        | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square o) in
      let pretty =
        if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
        else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
        else Printf.sprintf "%.1f us" (t /. 1e3)
      in
      Format.printf "  %-28s  %14s  %8.4f@." name pretty r2)
    rows;
  Format.printf
    "@.(the geometric approximation is orders of magnitude cheaper than@.\
     the exact solution — the paper's motivation for §3.2)@.";
  flush ()

(* ---- driver ---- *)

let sections : (string * string * (unit -> unit)) list =
  [
    ("ks", "Section 2: KS goodness-of-fit decisions", section_ks);
    ("fig3", "Figure 3: operative-period densities", section_fig3);
    ("fig4", "Figure 4: inoperative-period densities", section_fig4);
    ("fig5", "Figure 5: cost against N", section_fig5);
    ("fig6", "Figure 6: L against C²", section_fig6);
    ("fig7", "Figure 7: L against mean repair time", section_fig7);
    ("fig8", "Figure 8: exact vs approximation", section_fig8);
    ("fig9", "Figure 9: response time against N", section_fig9);
    ("ablation", "Solver agreement ablation", section_ablation);
    ("extensions", "Extensions beyond the paper", section_extensions);
    ("n5", "N=5 solver wall time (bench-regression gate)", section_n5);
    ("sim", "Simulation engine events/sec (sim-perf gate)", section_sim);
    ("serve", "HTTP serve throughput and p99 (healthz, cached solve)", section_serve);
    ("query", "Ledger query engine: cold vs indexed scan", section_query);
    ("conv", "Convergence: iterations to tolerance per solver", section_conv);
    ("speedup", "Pool and solve-cache speedups", section_speedup);
    ("timing", "bechamel micro-benchmarks", section_timing);
  ]

(* Each section runs against a freshly reset registry; its wall time and
   final metrics snapshot are accumulated and written to
   BENCH_solvers.json so solver behaviour (QR sweeps, LU counts,
   simulation event totals, per-stage histograms) can be compared
   across commits. Zero-valued series are dropped from the snapshot —
   they carry no information and triple the file size.

   The run also journals to BENCH_ledger.jsonl: every solver call made
   while reproducing the figures appends its own record, and a
   "bench.section" record closes each section, so any individual sweep
   point can be traced back (and re-run) from the journal. *)

let bench_records : (string * float * Json.t) list ref = ref []

let run_section name f =
  Metrics.reset ();
  let t0 = Span.now () in
  f ();
  let seconds = Span.now () -. t0 in
  Urs_obs.Ledger.record ~kind:"bench.section"
    ~params:[ ("section", Json.String name) ]
    ~wall_seconds:seconds ();
  bench_records :=
    (name, seconds, Export.json_value ~skip_zero:true (Metrics.snapshot ()))
    :: !bench_records

let write_bench_json path =
  let sections =
    List.rev_map
      (fun (name, seconds, metrics) ->
        Json.Obj
          [ ("name", Json.String name); ("seconds", Json.Float seconds);
            ("metrics", metrics) ])
      !bench_records
  in
  let doc =
    Json.Obj
      [ ("schema", Json.String "urs-bench/1"); ("sections", Json.List sections) ]
  in
  let oc = open_out path in
  Json.to_channel oc doc;
  close_out oc;
  Format.printf "@.wrote %s (%d sections)@." path (List.length sections)

(* Whenever a gate section (n5, sim) ran, append one urs-perf/1 line
   (see Perf.schema in perf.mli) to the committed BENCH_history.jsonl —
   never truncate; `urs report` consumes the trend. URS_BENCH_HISTORY
   overrides the path (CI's report-smoke and sim-perf jobs use a
   scratch file so their gates only compare same-machine runs). *)
let append_history () =
  match !gate_stats with
  | [] -> ()
  | stats ->
      let path =
        match Sys.getenv_opt "URS_BENCH_HISTORY" with
        | Some p when p <> "" -> p
        | _ -> "BENCH_history.jsonl"
      in
      let jobs =
        match Option.bind (Sys.getenv_opt "URS_JOBS") int_of_string_opt with
        | Some j when j >= 1 -> j
        | _ -> 1
      in
      let entry =
        {
          Urs_obs.Perf.time = Unix.gettimeofday ();
          git_rev = Urs_obs.Perf.git_rev ();
          ocaml = Sys.ocaml_version;
          jobs;
          sections =
            List.rev_map (fun (name, seconds, _) -> (name, seconds)) !bench_records;
          solvers = List.rev stats;
        }
      in
      (try Urs_obs.Perf.append path entry
       with Sys_error msg ->
         Format.eprintf "bench: cannot append %s: %s@." path msg);
      Format.printf "appended perf-history entry to %s@." path

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (match Option.map Logs.level_of_string (Sys.getenv_opt "URS_LOG") with
    | Some (Ok level) -> level
    | Some (Error _) | None -> Some Logs.Warning);
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | [ "list" ] -> ()
  | _ -> Urs_obs.Ledger.open_file ~truncate:true "BENCH_ledger.jsonl");
  (match args with
  | [] | [ "all" ] ->
      List.iter (fun (name, _, f) -> run_section name f) sections;
      Format.printf "@.all sections complete.@."
  | [ "list" ] ->
      List.iter (fun (name, descr, _) -> Format.printf "%-10s %s@." name descr)
        sections
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) sections with
          | Some (_, _, f) -> run_section name f
          | None ->
              Format.printf "unknown section %S (try: list)@." name;
              exit 1)
        names);
  Urs_obs.Ledger.close ();
  if !bench_records <> [] then write_bench_json "BENCH_solvers.json";
  append_history ()
