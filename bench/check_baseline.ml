(* Bench-regression gate: compare the "n5" section of a freshly written
   BENCH_solvers.json against the committed BENCH_baseline.json and exit
   nonzero when the spectral solve has slowed down by more than the
   allowed ratio (2x by default, BENCH_MAX_RATIO to override).

   Usage:
     dune exec bench/check_baseline.exe -- [CURRENT] [BASELINE]

   defaulting to BENCH_solvers.json and BENCH_baseline.json in the
   current directory. Only the spectral gauge gates; the other solvers
   are reported for context. A current run much *faster* than the
   baseline passes but is flagged, as a hint to refresh the baseline. *)

module Json = Urs_obs.Json

let read_json path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok v -> v
  | Error msg ->
      Format.eprintf "bench-check: %s: parse error: %s@." path msg;
      exit 2

let n5_gauge doc ~solver =
  let ( let* ) = Option.bind in
  let* sections = Json.member "sections" doc in
  let* sections =
    match sections with Json.List l -> Some l | _ -> None
  in
  let* section =
    List.find_opt
      (fun s -> Json.member "name" s = Some (Json.String "n5"))
      sections
  in
  let* metrics = Json.member "metrics" section in
  let* metrics = Json.member "metrics" metrics in
  let* metrics = match metrics with Json.List l -> Some l | _ -> None in
  let* entry =
    List.find_opt
      (fun e ->
        Json.member "name" e = Some (Json.String "urs_bench_n5_seconds")
        &&
        match Json.member "labels" e with
        | Some labels ->
            Json.member "solver" labels = Some (Json.String solver)
        | None -> false)
      metrics
  in
  let* v = Json.member "value" entry in
  Json.to_float_opt v

let () =
  let current_path, baseline_path =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> ("BENCH_solvers.json", "BENCH_baseline.json")
    | [ c ] -> (c, "BENCH_baseline.json")
    | c :: b :: _ -> (c, b)
  in
  let max_ratio =
    match Sys.getenv_opt "BENCH_MAX_RATIO" with
    | None -> 2.0
    | Some s -> (
        match float_of_string_opt s with
        | Some r when r > 1.0 -> r
        | _ ->
            Format.eprintf "bench-check: invalid BENCH_MAX_RATIO=%S@." s;
            exit 2)
  in
  let current = read_json current_path in
  let baseline = read_json baseline_path in
  let get path doc solver =
    match n5_gauge doc ~solver with
    | Some v when v > 0.0 -> Some v
    | Some _ | None ->
        Format.eprintf
          "bench-check: %s: no n5 urs_bench_n5_seconds{solver=%S} gauge@."
          path solver;
        None
  in
  List.iter
    (fun solver ->
      match (get current_path current solver, get baseline_path baseline solver) with
      | Some c, Some b ->
          Format.printf "  %-10s  current %.3f ms  baseline %.3f ms  (%.2fx)@."
            solver (1e3 *. c) (1e3 *. b) (c /. b)
      | _ -> ())
    [ "mg"; "approx" ];
  match (get current_path current "spectral", get baseline_path baseline "spectral") with
  | Some c, Some b ->
      let ratio = c /. b in
      Format.printf "  %-10s  current %.3f ms  baseline %.3f ms  (%.2fx, gate %.1fx)@."
        "spectral" (1e3 *. c) (1e3 *. b) ratio max_ratio;
      if ratio > max_ratio then begin
        Format.printf
          "bench-check: FAIL — spectral N=5 solve regressed %.2fx (> %.1fx)@."
          ratio max_ratio;
        exit 1
      end
      else if ratio < 1.0 /. max_ratio then
        Format.printf
          "bench-check: OK (current is %.1fx faster than the baseline — \
           consider refreshing BENCH_baseline.json)@."
          (1.0 /. ratio)
      else Format.printf "bench-check: OK@."
  | _ ->
      (* a gate that cannot read its inputs must fail loudly, not pass *)
      exit 2
