module M = Urs_linalg.Matrix
module V = Urs_linalg.Vec
module CM = Urs_linalg.Cmatrix
module CV = Urs_linalg.Cvec
module Cx = Urs_linalg.Cx
module Clu = Urs_linalg.Clu

let log_src = Logs.Src.create "urs.spectral" ~doc:"spectral expansion solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Ledger = Urs_obs.Ledger
module Json = Urs_obs.Json

let m_solves =
  Metrics.counter ~help:"Spectral solve attempts" "urs_spectral_solves_total"

let m_failures =
  Metrics.counter ~help:"Spectral solves that returned an error"
    "urs_spectral_failures_total"

(* Result-summary gauges have last-write semantics (see Metrics.mli):
   under a sweep they describe the final point only, with the per-solve
   history going to the ledger. They are labelled by solver strategy so
   the approximate and matrix-geometric solvers can publish comparable
   values side by side. *)

let strategy_labels = [ ("strategy", "exact") ]

let m_eigenvalues =
  Metrics.gauge ~labels:strategy_labels
    ~help:"Eigenvalues found inside the unit disk (last solve)"
    "urs_spectral_eigenvalues"

let m_dominant =
  Metrics.gauge ~labels:strategy_labels
    ~help:"Dominant eigenvalue z_s (last successful solve)"
    "urs_spectral_dominant_z"

let m_residual =
  Metrics.gauge ~labels:strategy_labels
    ~help:"A-posteriori balance/normalization residual (last successful solve)"
    "urs_spectral_residual"

let m_lu =
  Metrics.counter
    ~help:"Real LU factorizations during boundary elimination"
    "urs_spectral_lu_factorizations_total"

let m_conj =
  Metrics.counter
    ~help:"Left eigenvectors obtained via the conjugate-pair shortcut"
    "urs_spectral_conjugate_shortcuts_total"

let m_qr_sweeps =
  Metrics.counter ~help:"Francis QR double-shift sweeps"
    "urs_qr_sweeps_total"

type error =
  | Unstable of Stability.verdict
  | Eigenvalue_count of { expected : int; found : int }
  | Numerical of string

let pp_error ppf = function
  | Unstable v -> Format.fprintf ppf "queue is unstable: %a" Stability.pp_verdict v
  | Eigenvalue_count { expected; found } ->
      Format.fprintf ppf
        "expected %d eigenvalues inside the unit disk, found %d" expected found
  | Numerical msg -> Format.fprintf ppf "numerical failure: %s" msg

type t = {
  qbd : Qbd.t;
  zs : Cx.t array; (* eigenvalues inside the unit disk, ascending modulus *)
  us : CV.t array; (* matching left eigenvectors of Q(z) *)
  u_sums : Cx.t array; (* u_k · 1 *)
  gammas : Cx.t array;
  boundary : V.t array; (* v_0 .. v_{N-1} *)
  boundary_condition : float;
      (* worst pivot-ratio estimate over the boundary LU factorizations *)
}

let qbd t = t.qbd

let eigenvalues t = Array.copy t.zs

let dominant_eigenvalue t = Cx.re t.zs.(Array.length t.zs - 1)

let boundary_vectors t = Array.map V.copy t.boundary

(* ---- solving ---- *)

exception Solve_error of error

(* the QR sweep cap forwarded to the companion eigensolve; kept in sync
   with the Qr_eig default so the convergence recorder can report the
   effective cap even when the caller does not override it *)
let default_qr_max_iter = 100

let solve_stages ?(eig_tol = 1e-9) ?max_iter q =
  let env = Qbd.env q in
  let n_servers = Environment.servers env in
  let s = Qbd.s q in
  let verdict =
    Stability.check ~env ~lambda:(Qbd.lambda q) ~mu:(Qbd.mu q)
  in
  if not verdict.Stability.stable then Error (Unstable verdict)
  else begin
    try
      let q0 = Qbd.q0 q and q1 = Qbd.q1 q and q2 = Qbd.q2 q in
      let qr_max_iter = Option.value max_iter ~default:default_qr_max_iter in
      let zs =
        Span.with_ ~name:"urs_spectral_stage"
          ~labels:[ ("stage", "eigenvalues") ]
          (fun () ->
            let sweeps_before = Urs_linalg.Qr_eig.total_sweeps () in
            (* per-sweep telemetry: gated globally, so ordinary solves
               pay only this branch; the callback reads values the
               sweep already computed, keeping results bit-identical *)
            let conv =
              if Urs_obs.Convergence.recording () then
                Some
                  (Urs_obs.Convergence.create ~max_iter:qr_max_iter
                     ~solver:"qr"
                     ~label:(Printf.sprintf "spectral N=%d s=%d" n_servers s)
                     ())
              else None
            in
            let observe =
              Option.map
                (fun c (p : Urs_linalg.Qr_eig.progress) ->
                  Urs_obs.Convergence.observe c ~iteration:p.total
                    ~residual:p.residual ~shift:p.shift ~active:p.remaining
                    ~deflation:(p.event = Urs_linalg.Qr_eig.Deflate)
                    ())
                conv
            in
            let finish_conv converged =
              Option.iter
                (fun c ->
                  ignore (Urs_obs.Convergence.finish ~converged c : Urs_obs.Convergence.trace))
                conv
            in
            Fun.protect
              ~finally:(fun () ->
                Metrics.inc
                  ~by:
                    (float_of_int
                       (Urs_linalg.Qr_eig.total_sweeps () - sweeps_before))
                  m_qr_sweeps)
              (fun () ->
                try
                  let zs =
                    Urs_linalg.Companion.eigenvalues_inside_unit_disk
                      ~tol:eig_tol ~max_iter:qr_max_iter ?observe ~q0 ~q1 ~q2
                      ()
                  in
                  finish_conv true;
                  zs
                with
                | Urs_linalg.Qr_eig.No_convergence { dim; block; iterations }
                  ->
                    finish_conv false;
                    raise
                      (Solve_error
                         (Numerical
                            (Printf.sprintf
                               "QR iteration did not converge (%dx%d \
                                companion matrix, trailing block %d stuck \
                                after %d sweeps)"
                               dim dim block iterations)))
                | Urs_linalg.Lu.Singular ->
                    raise (Solve_error (Numerical "singular arrival block"))))
      in
      Metrics.set m_eigenvalues (float_of_int (Array.length zs));
      if Array.length zs <> s then begin
        Log.warn (fun m ->
            m "expected %d eigenvalues inside the unit disk, found %d" s
              (Array.length zs));
        raise
          (Solve_error (Eigenvalue_count { expected = s; found = Array.length zs }))
      end;
      Log.debug (fun m ->
          m "N=%d s=%d: %d eigenvalues inside the unit disk, z_max=%.6f"
            n_servers s (Array.length zs)
            (Cx.modulus zs.(Array.length zs - 1)));
      (* left eigenvectors of Q(z_k); conjugate eigenvalues have
         conjugate eigenvectors (Q has real coefficients), so compute
         each pair only once *)
      let us =
        Span.with_ ~name:"urs_spectral_stage"
          ~labels:[ ("stage", "eigenvectors") ]
          (fun () ->
            let us = Array.make s [||] in
            for k = 0 to s - 1 do
              let z = zs.(k) in
              if Cx.im z >= 0.0 then
                us.(k) <- Clu.left_null_vector (Qbd.char_poly_at q z)
            done;
            for k = 0 to s - 1 do
              if Cx.im zs.(k) < 0.0 then begin
                (* find the conjugate partner (pairs are adjacent after the
                   modulus sort, but search defensively) *)
                let partner = ref (-1) in
                let zc = Cx.conj zs.(k) in
                for k' = 0 to s - 1 do
                  if
                    !partner < 0
                    && Cx.im zs.(k') > 0.0
                    && Cx.modulus (Cx.sub zs.(k') zc)
                       <= 1e-12 *. (1.0 +. Cx.modulus zc)
                  then partner := k'
                done;
                if !partner >= 0 then begin
                  Metrics.inc m_conj;
                  us.(k) <- Array.map Cx.conj us.(!partner)
                end
                else us.(k) <- Clu.left_null_vector (Qbd.char_poly_at q zs.(k))
              end
            done;
            us)
      in
      (* Φ_r has column k equal to z_k^{N+r} u_kᵀ, so v_{N+r}ᵀ = Φ_r γᵀ.
         Represent complex matrices as (re, im) pairs of real matrices:
         every block in the boundary elimination except Φ is real
         (Bᵀ = λI and C_j is diagonal), so the expensive factorizations
         stay in real arithmetic. *)
      let lambda = Qbd.lambda q in
      let worst_cond = ref 1.0 in
      let note_cond f =
        worst_cond := Float.max !worst_cond (Urs_linalg.Lu.pivot_condition f);
        f
      in
      let pow_z k e =
        let rec go acc base e =
          if e = 0 then acc
          else if e land 1 = 1 then go (Cx.mul acc base) (Cx.mul base base) (e asr 1)
          else go acc (Cx.mul base base) (e asr 1)
        in
        go Cx.one zs.(k) e
      in
      let g, xs =
        Span.with_ ~name:"urs_spectral_stage"
          ~labels:[ ("stage", "boundary") ]
          (fun () ->
            let phi r =
              let re = M.create s s and im = M.create s s in
              for k = 0 to s - 1 do
                let zp = pow_z k (n_servers + r) in
                for i = 0 to s - 1 do
                  let v = Cx.mul zp us.(k).(i) in
                  M.set re i k (Cx.re v);
                  M.set im i k (Cx.im v)
                done
              done;
              (re, im)
            in
            let phi0_re, phi0_im = phi 0 in
            let phi1_re, phi1_im = phi 1 in
            let tt j = M.transpose (Qbd.transition_block q j) in
            let module Lu = Urs_linalg.Lu in
            (* forward elimination of the block-tridiagonal boundary system:
               S_j = −(λ S_{j−1} + T_jᵀ)⁻¹ C_{j+1}ᵀ, all real *)
            let ss = Array.make (max 0 (n_servers - 1)) (M.create 0 0) in
            let prev = ref None in
            for j = 0 to n_servers - 2 do
              let mj =
                match !prev with
                | None -> tt j
                | Some s_prev -> M.add (M.scale lambda s_prev) (tt j)
              in
              Metrics.inc m_lu;
              let f =
                match Lu.factor mj with
                | Ok f -> note_cond f
                | Error `Singular ->
                    raise (Solve_error (Numerical "singular boundary block"))
              in
              let cj1 = Qbd.c_diag q (j + 1) in
              let s_j =
                Lu.solve_matrix f
                  (M.diagonal (Urs_linalg.Vec.scale (-1.0) cj1))
              in
              ss.(j) <- s_j;
              prev := Some s_j
            done;
            (* level N-1 equation: x_{N-1} = W γᵀ with
               W = −M_last⁻¹ (C Φ0) (C diagonal) *)
            let m_last =
              match !prev with
              | None -> tt (n_servers - 1) (* N = 1 *)
              | Some s_prev ->
                  M.add (M.scale lambda s_prev) (tt (n_servers - 1))
            in
            Metrics.inc m_lu;
            let f_last =
              match Lu.factor m_last with
              | Ok f -> note_cond f
              | Error `Singular ->
                  raise (Solve_error (Numerical "singular boundary block"))
            in
            let c_full_diag = Qbd.c_diag q n_servers in
            let scale_rows_neg d m =
              M.init s s (fun i j -> -.d.(i) *. M.get m i j)
            in
            let w_re =
              Lu.solve_matrix f_last (scale_rows_neg c_full_diag phi0_re)
            in
            let w_im =
              Lu.solve_matrix f_last (scale_rows_neg c_full_diag phi0_im)
            in
            (* level N equation: [λW + T_Nᵀ Φ0 + C Φ1] γᵀ = 0 *)
            let t_full = tt n_servers in
            let scale_rows d m = M.init s s (fun i j -> d.(i) *. M.get m i j) in
            let mg_re =
              M.add (M.scale lambda w_re)
                (M.add (M.mul t_full phi0_re) (scale_rows c_full_diag phi1_re))
            in
            let mg_im =
              M.add (M.scale lambda w_im)
                (M.add (M.mul t_full phi0_im) (scale_rows c_full_diag phi1_im))
            in
            let m_gamma =
              CM.init s s (fun i j ->
                  Cx.make (M.get mg_re i j) (M.get mg_im i j))
            in
            let g = Clu.null_vector m_gamma in
            (* back substitution: x_{N-1} = W g, then x_j = S_j x_{j+1} *)
            let g_re = CV.real_part g and g_im = CV.imag_part g in
            let complex_apply re im vr vi =
              (* (re + i·im)(vr + i·vi) *)
              let a = M.mul_vec re vr and b = M.mul_vec im vi in
              let c = M.mul_vec re vi and d = M.mul_vec im vr in
              Array.init s (fun i -> Cx.make (a.(i) -. b.(i)) (c.(i) +. d.(i)))
            in
            let real_apply m v =
              let vr = M.mul_vec m (CV.real_part v) in
              let vi = M.mul_vec m (CV.imag_part v) in
              Array.init s (fun i -> Cx.make vr.(i) vi.(i))
            in
            let xs = Array.make n_servers (CV.create s) in
            xs.(n_servers - 1) <- complex_apply w_re w_im g_re g_im;
            for j = n_servers - 2 downto 0 do
              xs.(j) <- real_apply ss.(j) xs.(j + 1)
            done;
            (g, xs))
      in
      (* normalization (eq. 20): Σ_{j<N} x_j·1 + Σ_k γ_k (u_k·1) z^N/(1−z) *)
      Span.with_ ~name:"urs_spectral_stage"
        ~labels:[ ("stage", "normalization") ]
        (fun () ->
          let u_sums = Array.map CV.sum us in
          let spectral_total =
            let acc = ref Cx.zero in
            for k = 0 to s - 1 do
              let zn = pow_z k n_servers in
              let term =
                Cx.div
                  (Cx.mul g.(k) (Cx.mul u_sums.(k) zn))
                  (Cx.sub Cx.one zs.(k))
              in
              acc := Cx.add !acc term
            done;
            !acc
          in
          let total =
            Array.fold_left
              (fun acc x -> Cx.add acc (CV.sum x))
              spectral_total xs
          in
          if Cx.modulus total < 1e-300 then
            raise (Solve_error (Numerical "normalization constant vanished"));
          let inv_total = Cx.inv total in
          let gammas = Array.map (fun gk -> Cx.mul gk inv_total) g in
          let boundary =
            Array.map
              (fun x ->
                let scaled = CV.scale inv_total x in
                let imag = V.norm_inf (CV.imag_part scaled) in
                if imag > 1e-6 then
                  raise
                    (Solve_error
                       (Numerical
                          (Printf.sprintf
                             "boundary vector has imaginary residue %.2e" imag)));
                CV.real_part scaled)
              xs
          in
          (* sanity: boundary probabilities must be (essentially)
             nonnegative *)
          Array.iter
            (fun v ->
              Array.iter
                (fun p ->
                  if p < -1e-8 then
                    raise
                      (Solve_error
                         (Numerical
                            (Printf.sprintf "negative probability %.3e" p))))
                v)
            boundary;
          Ok
            {
              qbd = q;
              zs;
              us;
              u_sums;
              gammas;
              boundary;
              boundary_condition = !worst_cond;
            })
    with
    | Solve_error e -> Error e
    | Clu.Singular -> Error (Numerical "singular block during elimination")
  end

(* ---- queries ---- *)

let num_servers t = Environment.servers (Qbd.env t.qbd)

let pow_z t k e =
  let rec go acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then go (Cx.mul acc base) (Cx.mul base base) (e asr 1)
    else go acc (Cx.mul base base) (e asr 1)
  in
  go Cx.one t.zs.(k) e

(* Re Σ_k γ_k f(k) z_k^j for a complex weight f *)
let spectral_sum t ~weight ~level =
  let acc = ref Cx.zero in
  for k = 0 to Array.length t.zs - 1 do
    acc := Cx.add !acc (Cx.mul t.gammas.(k) (Cx.mul (weight k) (pow_z t k level)))
  done;
  Cx.re !acc

let vector_at t j =
  if j < 0 then invalid_arg "Spectral: negative level";
  if j < num_servers t then V.copy t.boundary.(j)
  else
    Array.init (Qbd.s t.qbd) (fun i ->
        spectral_sum t ~weight:(fun k -> t.us.(k).(i)) ~level:j)

let probability t ~mode ~jobs =
  let s = Qbd.s t.qbd in
  if mode < 0 || mode >= s then invalid_arg "Spectral.probability: bad mode";
  if jobs < 0 then 0.0
  else if jobs < num_servers t then t.boundary.(jobs).(mode)
  else spectral_sum t ~weight:(fun k -> t.us.(k).(mode)) ~level:jobs

let level_probability t j =
  if j < 0 then 0.0
  else if j < num_servers t then V.sum t.boundary.(j)
  else spectral_sum t ~weight:(fun k -> t.u_sums.(k)) ~level:j

(* Σ_{j>=j0} z^j = z^{j0}/(1-z) *)
let tail_from t j0 ~weight =
  let acc = ref Cx.zero in
  for k = 0 to Array.length t.zs - 1 do
    let term =
      Cx.div
        (Cx.mul t.gammas.(k) (Cx.mul (weight k) (pow_z t k j0)))
        (Cx.sub Cx.one t.zs.(k))
    in
    acc := Cx.add !acc term
  done;
  Cx.re !acc

let tail_probability t j0 =
  let n = num_servers t in
  if j0 <= 0 then 1.0
  else if j0 <= n then begin
    let head = ref 0.0 in
    for j = 0 to j0 - 1 do
      head := !head +. V.sum t.boundary.(j)
    done;
    1.0 -. !head
  end
  else tail_from t j0 ~weight:(fun k -> t.u_sums.(k))

let queue_length_quantile t p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Spectral.queue_length_quantile: p in (0,1)";
  (* walk up until the tail drops below 1-p; the tail is eventually
     geometric with ratio z_s < 1, so this terminates *)
  let rec go j =
    if tail_probability t (j + 1) <= 1.0 -. p then j else go (j + 1)
  in
  go 0

(* Σ_{j>=N} j z^j = z^N (N - (N-1) z) / (1-z)^2 *)
let mean_queue_length t =
  let n = num_servers t in
  let head = ref 0.0 in
  for j = 1 to n - 1 do
    head := !head +. (float_of_int j *. V.sum t.boundary.(j))
  done;
  let acc = ref Cx.zero in
  for k = 0 to Array.length t.zs - 1 do
    let z = t.zs.(k) in
    let zn = pow_z t k n in
    let one_minus = Cx.sub Cx.one z in
    let numer =
      Cx.mul zn
        (Cx.sub (Cx.of_float (float_of_int n)) (Cx.scale (float_of_int (n - 1)) z))
    in
    let term =
      Cx.div
        (Cx.mul t.gammas.(k) (Cx.mul t.u_sums.(k) numer))
        (Cx.mul one_minus one_minus)
    in
    acc := Cx.add !acc term
  done;
  !head +. Cx.re !acc

let mean_response_time t = mean_queue_length t /. Qbd.lambda t.qbd

let mean_waiting_jobs t =
  mean_queue_length t -. (Qbd.lambda t.qbd /. Qbd.mu t.qbd)

let mean_waiting_time t = mean_waiting_jobs t /. Qbd.lambda t.qbd

let mode_marginals t =
  let s = Qbd.s t.qbd in
  let n = num_servers t in
  Array.init s (fun i ->
      let head = ref 0.0 in
      for j = 0 to n - 1 do
        head := !head +. t.boundary.(j).(i)
      done;
      !head +. tail_from t n ~weight:(fun k -> t.us.(k).(i)))

let mean_busy_servers t =
  let env = Qbd.env t.qbd in
  let s = Qbd.s t.qbd in
  let n = num_servers t in
  let acc = ref 0.0 in
  for j = 1 to n - 1 do
    for i = 0 to s - 1 do
      acc :=
        !acc
        +. (float_of_int (min (Environment.operative_servers env i) j)
           *. t.boundary.(j).(i))
    done
  done;
  (* levels j >= N serve at the full operative count of the mode *)
  for i = 0 to s - 1 do
    acc :=
      !acc
      +. (float_of_int (Environment.operative_servers env i)
         *. tail_from t n ~weight:(fun k -> t.us.(k).(i)))
  done;
  !acc

let mass_defect t =
  (* probability-mass conservation over the full horizon via tails *)
  let n = num_servers t in
  let head = ref 0.0 in
  for j = 0 to n - 1 do
    head := !head +. V.sum t.boundary.(j)
  done;
  let total = !head +. tail_from t n ~weight:(fun k -> t.u_sums.(k)) in
  abs_float (total -. 1.0)

let residual t =
  let n = num_servers t in
  let worst = ref 0.0 in
  for j = 0 to n + 2 do
    let v_prev = if j = 0 then V.create (Qbd.s t.qbd) else vector_at t (j - 1) in
    let vs = [| v_prev; vector_at t j; vector_at t (j + 1) |] in
    worst := Float.max !worst (Qbd.generator_residual t.qbd vs j)
  done;
  Float.max !worst (mass_defect t)

let eigen_residuals t =
  Array.mapi (fun k z -> Qbd.eigenpair_residual t.qbd z t.us.(k)) t.zs

let max_eigen_residual t =
  Array.fold_left Float.max 0.0 (eigen_residuals t)

let boundary_condition t = t.boundary_condition

(* public entry point: the staged solve wrapped in a span, with summary
   gauges and a ledger record written after the fact (the residual
   doubles as an accuracy certificate and is cheap next to the
   companion eigensolve) *)
let solve ?eig_tol ?max_iter q =
  Metrics.inc m_solves;
  let t0 = Span.now () in
  let result =
    Span.with_ ~name:"urs_spectral_solve" (fun () ->
        solve_stages ?eig_tol ?max_iter q)
  in
  let wall = Span.now () -. t0 in
  let params =
    [
      ("servers", Json.Int (Environment.servers (Qbd.env q)));
      ("modes", Json.Int (Qbd.s q));
      ("lambda", Json.Float (Qbd.lambda q));
      ("mu", Json.Float (Qbd.mu q));
    ]
  in
  (match result with
  | Ok sol ->
      let resid = residual sol in
      Metrics.set m_eigenvalues (float_of_int (Array.length sol.zs));
      Metrics.set m_dominant (dominant_eigenvalue sol);
      Metrics.set m_residual resid;
      Ledger.record ~kind:"spectral.solve" ~strategy:"exact" ~params
        ~wall_seconds:wall
        ~summary:
          [
            ("eigenvalues", Json.Int (Array.length sol.zs));
            ("dominant_z", Json.Float (dominant_eigenvalue sol));
            ("residual", Json.Float resid);
            ("boundary_condition", Json.Float sol.boundary_condition);
          ]
        ()
  | Error e ->
      Metrics.inc m_failures;
      Ledger.record ~kind:"spectral.solve" ~strategy:"exact" ~params
        ~wall_seconds:wall ~outcome:"error"
        ~summary:[ ("error", Json.String (Format.asprintf "%a" pp_error e)) ]
        ();
      Log.info (fun m -> m "spectral solve failed: %a" pp_error e));
  result
