module Metrics = Urs_obs.Metrics

let m_margin =
  Metrics.gauge
    ~help:"Stability margin 1 - utilization of the last checked model (last write)"
    "urs_stability_margin"

type verdict = {
  offered_load : float;
  effective_capacity : float;
  utilization : float;
  stable : bool;
}

let margin v = 1.0 -. v.utilization

let check ~env ~lambda ~mu =
  if lambda <= 0.0 || mu <= 0.0 then
    invalid_arg "Stability.check: lambda and mu must be positive";
  let offered_load = lambda /. mu in
  let effective_capacity = Environment.mean_operative_servers env in
  let v =
    {
      offered_load;
      effective_capacity;
      utilization = offered_load /. effective_capacity;
      stable = offered_load < effective_capacity;
    }
  in
  Metrics.set m_margin (margin v);
  v

let max_arrival_rate ~env ~mu = mu *. Environment.mean_operative_servers env

let pp_verdict ppf v =
  Format.fprintf ppf "load=%.4f capacity=%.4f utilization=%.4f (%s)"
    v.offered_load v.effective_capacity v.utilization
    (if v.stable then "stable" else "UNSTABLE")
