type verdict = {
  offered_load : float;
  effective_capacity : float;
  utilization : float;
  stable : bool;
}

let check ~env ~lambda ~mu =
  if lambda <= 0.0 || mu <= 0.0 then
    invalid_arg "Stability.check: lambda and mu must be positive";
  let offered_load = lambda /. mu in
  let effective_capacity = Environment.mean_operative_servers env in
  {
    offered_load;
    effective_capacity;
    utilization = offered_load /. effective_capacity;
    stable = offered_load < effective_capacity;
  }

let max_arrival_rate ~env ~mu = mu *. Environment.mean_operative_servers env

let pp_verdict ppf v =
  Format.fprintf ppf "load=%.4f capacity=%.4f utilization=%.4f (%s)"
    v.offered_load v.effective_capacity v.utilization
    (if v.stable then "stable" else "UNSTABLE")
