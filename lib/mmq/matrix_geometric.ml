module M = Urs_linalg.Matrix
module V = Urs_linalg.Vec
module CM = Urs_linalg.Cmatrix
module CV = Urs_linalg.Cvec
module Lu = Urs_linalg.Lu
module Clu = Urs_linalg.Clu
module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Ledger = Urs_obs.Ledger
module Json = Urs_obs.Json

let strategy_labels = [ ("strategy", "mg") ]

let m_dominant =
  Metrics.gauge ~labels:strategy_labels
    ~help:"Spectral radius of R from the last solve (last write)"
    "urs_spectral_dominant_z"

type error =
  | Unstable of Stability.verdict
  | No_convergence of { iterations : int; delta : float }
  | Numerical of string

let pp_error ppf = function
  | Unstable v ->
      Format.fprintf ppf "queue is unstable: %a" Stability.pp_verdict v
  | No_convergence { iterations; delta } ->
      Format.fprintf ppf "R iteration stalled after %d sweeps (delta %.2e)"
        iterations delta
  | Numerical msg -> Format.fprintf ppf "numerical failure: %s" msg

type t = {
  qbd : Qbd.t;
  r : M.t;
  iterations : int;
  boundary : V.t array; (* v_0 .. v_{N-1} *)
  v_n : V.t; (* v_N; higher levels via powers of R *)
}

exception Solve_error of error

let compute_r ~tol ~max_iter q =
  let s = Qbd.s q in
  let q0 = Qbd.q0 q and q2 = Qbd.q2 q in
  let q1_f =
    match Lu.factor (Qbd.q1 q) with
    | Ok f -> f
    | Error `Singular -> raise (Solve_error (Numerical "singular Q1 block"))
  in
  (* per-iteration telemetry of the fixed point (entrywise delta per
     sweep); gated globally, zero overhead when off *)
  let conv =
    if Urs_obs.Convergence.recording () then
      Some
        (Urs_obs.Convergence.create ~max_iter ~solver:"mg_r"
           ~label:
             (Printf.sprintf "mg N=%d s=%d"
                (Environment.servers (Qbd.env q))
                s)
           ())
    else None
  in
  let finish_conv converged =
    Option.iter
      (fun c ->
        ignore (Urs_obs.Convergence.finish ~converged c : Urs_obs.Convergence.trace))
      conv
  in
  (* R ← −(Q0 + R²Q2) Q1⁻¹, i.e. solve X Q1 = −(Q0 + R²Q2):
     transpose to Q1ᵀ Xᵀ = −(...)ᵀ *)
  let r = ref (M.create s s) in
  let delta = ref infinity in
  let iters = ref 0 in
  while !delta > tol && !iters < max_iter do
    incr iters;
    let rhs = M.scale (-1.0) (M.add q0 (M.mul (M.mul !r !r) q2)) in
    (* row i of the update X solves xᵢ Q1 = rhsᵢ, i.e. Q1ᵀ xᵢᵀ = rhsᵢᵀ *)
    let x = M.create s s in
    for i = 0 to s - 1 do
      M.set_row x i (Lu.solve_transposed q1_f (M.row rhs i))
    done;
    delta := M.max_abs (M.sub x !r);
    (match conv with
    | None -> ()
    | Some c ->
        Urs_obs.Convergence.observe c ~iteration:!iters ~residual:!delta ());
    r := x
  done;
  if !delta > tol then begin
    finish_conv false;
    raise (Solve_error (No_convergence { iterations = !iters; delta = !delta }))
  end;
  finish_conv true;
  (!r, !iters)

let neg_cm m = CM.scale (Urs_linalg.Cx.of_float (-1.0)) m

let solve_inner ~tol ~max_iter q =
  let env = Qbd.env q in
  let n_servers = Environment.servers env in
  let s = Qbd.s q in
  let verdict = Stability.check ~env ~lambda:(Qbd.lambda q) ~mu:(Qbd.mu q) in
  if not verdict.Stability.stable then Error (Unstable verdict)
  else begin
    try
      let r, iterations = compute_r ~tol ~max_iter q in
      (* boundary: same elimination as the spectral method with
         Φ0 = I and Φ1 = Rᵀ *)
      let bt = CM.of_real (M.transpose (Qbd.b q)) in
      let ct_full = CM.of_real (M.transpose (Qbd.q2 q)) in
      let tt j = CM.of_real (M.transpose (Qbd.transition_block q j)) in
      let ss = Array.make (max 0 (n_servers - 1)) (CM.create 0 0) in
      let prev = ref None in
      for j = 0 to n_servers - 2 do
        let mj =
          match !prev with
          | None -> tt j
          | Some s_prev -> CM.add (CM.mul bt s_prev) (tt j)
        in
        let f = Clu.factor_exn mj in
        let cj1 = CM.of_real (M.transpose (Qbd.c q (j + 1))) in
        let s_j = Clu.solve_matrix f (neg_cm cj1) in
        ss.(j) <- s_j;
        prev := Some s_j
      done;
      let m_last =
        match !prev with
        | None -> tt (n_servers - 1)
        | Some s_prev -> CM.add (CM.mul bt s_prev) (tt (n_servers - 1))
      in
      let w = Clu.solve_matrix (Clu.factor_exn m_last) (neg_cm ct_full) in
      let rt = CM.of_real (M.transpose r) in
      let m_final =
        CM.add (CM.mul bt w) (CM.add (tt n_servers) (CM.mul ct_full rt))
      in
      let g = Clu.null_vector m_final in
      let xs = Array.make n_servers (CV.create s) in
      xs.(n_servers - 1) <- CM.mul_vec w g;
      for j = n_servers - 2 downto 0 do
        xs.(j) <- CM.mul_vec ss.(j) xs.(j + 1)
      done;
      (* normalization: Σ_{j<N} v_j·1 + v_N (I−R)⁻¹·1 = 1 *)
      let i_minus_r = M.sub (M.identity s) r in
      let i_minus_r_f =
        match Lu.factor i_minus_r with
        | Ok f -> f
        | Error `Singular ->
            raise (Solve_error (Numerical "I - R singular (load too high?)"))
      in
      let ones = Array.make s 1.0 in
      let tail_weights = Lu.solve i_minus_r_f ones in
      (* (I−R)⁻¹ 1 *)
      let g_tail =
        let acc = ref Urs_linalg.Cx.zero in
        for i = 0 to s - 1 do
          acc :=
            Urs_linalg.Cx.add !acc
              (Urs_linalg.Cx.scale tail_weights.(i) g.(i))
        done;
        !acc
      in
      let total =
        Array.fold_left (fun acc x -> Urs_linalg.Cx.add acc (CV.sum x)) g_tail xs
      in
      if Urs_linalg.Cx.modulus total < 1e-300 then
        raise (Solve_error (Numerical "normalization constant vanished"));
      let inv_total = Urs_linalg.Cx.inv total in
      let realize x =
        let scaled = CV.scale inv_total x in
        let imag = V.norm_inf (CV.imag_part scaled) in
        if imag > 1e-6 then
          raise
            (Solve_error
               (Numerical
                  (Printf.sprintf "imaginary residue %.2e in boundary" imag)));
        CV.real_part scaled
      in
      let boundary = Array.map realize xs in
      let v_n = realize g in
      Ok { qbd = q; r; iterations; boundary; v_n }
    with
    | Solve_error e -> Error e
    | Clu.Singular | Lu.Singular ->
        Error (Numerical "singular block during elimination")
  end

let qbd t = t.qbd

let r_matrix t = M.copy t.r

let r_iterations t = t.iterations

let spectral_radius_estimate t =
  let s = Qbd.s t.qbd in
  let x = ref (Array.make s 1.0) in
  let lam = ref 0.0 in
  for _ = 1 to 200 do
    let y = M.mul_vec t.r !x in
    let norm = V.norm_inf y in
    if norm > 0.0 then begin
      lam := norm;
      x := V.scale (1.0 /. norm) y
    end
  done;
  !lam

let num_servers t = Environment.servers (Qbd.env t.qbd)

let solve ?(tol = 1e-13) ?(max_iter = 200_000) q =
  let t0 = Span.now () in
  let result =
    Span.with_ ~name:"urs_mg_solve" (fun () -> solve_inner ~tol ~max_iter q)
  in
  let wall = Span.now () -. t0 in
  let params =
    [
      ("servers", Json.Int (Environment.servers (Qbd.env q)));
      ("modes", Json.Int (Qbd.s q));
      ("lambda", Json.Float (Qbd.lambda q));
      ("mu", Json.Float (Qbd.mu q));
    ]
  in
  (match result with
  | Ok sol ->
      let rho = spectral_radius_estimate sol in
      Metrics.set m_dominant rho;
      Ledger.record ~kind:"mg.solve" ~strategy:"mg" ~params ~wall_seconds:wall
        ~summary:
          [
            ("spectral_radius", Json.Float rho);
            ("r_iterations", Json.Int sol.iterations);
          ]
        ()
  | Error e ->
      Ledger.record ~kind:"mg.solve" ~strategy:"mg" ~params ~wall_seconds:wall
        ~outcome:"error"
        ~summary:[ ("error", Json.String (Format.asprintf "%a" pp_error e)) ]
        ());
  result

let vector_at t j =
  if j < 0 then invalid_arg "Matrix_geometric: negative level";
  if j < num_servers t then V.copy t.boundary.(j)
  else begin
    let v = ref (V.copy t.v_n) in
    for _ = 1 to j - num_servers t do
      v := M.vec_mul !v t.r
    done;
    !v
  end

let probability t ~mode ~jobs =
  if mode < 0 || mode >= Qbd.s t.qbd then
    invalid_arg "Matrix_geometric.probability: bad mode";
  if jobs < 0 then 0.0 else (vector_at t jobs).(mode)

let level_probability t j = if j < 0 then 0.0 else V.sum (vector_at t j)

let tail_solve t =
  let s = Qbd.s t.qbd in
  let i_minus_r = M.sub (M.identity s) t.r in
  Lu.factor_exn i_minus_r

let mean_queue_length t =
  let n = num_servers t in
  let s = Qbd.s t.qbd in
  let head = ref 0.0 in
  for j = 1 to n - 1 do
    head := !head +. (float_of_int j *. V.sum t.boundary.(j))
  done;
  (* Σ_{r>=0} (N+r) v_N Rʳ·1 = v_N [N(I−R)⁻¹ + R(I−R)⁻²]·1 *)
  let f = tail_solve t in
  let ones = Array.make s 1.0 in
  let w1 = Lu.solve f ones in
  (* (I−R)⁻¹ 1 *)
  let w2 = Lu.solve f (M.mul_vec t.r w1) in
  (* R(I−R)⁻² 1... careful with order *)
  let acc = ref 0.0 in
  for i = 0 to s - 1 do
    acc := !acc +. (t.v_n.(i) *. ((float_of_int n *. w1.(i)) +. w2.(i)))
  done;
  !head +. !acc

let mean_response_time t = mean_queue_length t /. Qbd.lambda t.qbd

let mode_marginals t =
  let n = num_servers t in
  let s = Qbd.s t.qbd in
  let f = tail_solve t in
  (* v_N (I−R)⁻¹ as a row vector: solve yᵀ(I−R) = v_N ⇒ (I−R)ᵀ y = v_N *)
  let tail = Lu.solve_transposed f t.v_n in
  Array.init s (fun i ->
      let head = ref 0.0 in
      for j = 0 to n - 1 do
        head := !head +. t.boundary.(j).(i)
      done;
      !head +. tail.(i))
