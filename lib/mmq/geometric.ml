module V = Urs_linalg.Vec
module Cx = Urs_linalg.Cx
module CV = Urs_linalg.Cvec
module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Ledger = Urs_obs.Ledger
module Json = Urs_obs.Json

let strategy_labels = [ ("strategy", "approx") ]

let m_dominant =
  Metrics.gauge ~labels:strategy_labels
    ~help:"Dominant eigenvalue z_s of the last solve (last write)"
    "urs_spectral_dominant_z"

type error =
  | Unstable of Stability.verdict
  | Root_not_found
  | Root_exhausted of { iterations : int; width : float; best : float }

let pp_error ppf = function
  | Unstable v ->
      Format.fprintf ppf "queue is unstable: %a" Stability.pp_verdict v
  | Root_not_found ->
      Format.fprintf ppf "no root of det Q(z) found inside (0, 1)"
  | Root_exhausted { iterations; width; best } ->
      Format.fprintf ppf
        "root refinement exhausted after %d iterations (bracket width %.2e, \
         best z=%.6f)"
        iterations width best

type t = { qbd : Qbd.t; z : float; weights : V.t }

let solve_inner ~scan_points q =
  let env = Qbd.env q in
  let verdict = Stability.check ~env ~lambda:(Qbd.lambda q) ~mu:(Qbd.mu q) in
  if not verdict.Stability.stable then Error (Unstable verdict)
  else begin
    let f z = Qbd.det_q_scaled q z in
    (* per-iteration bracket telemetry of the Brent refinement; gated
       globally, zero overhead when off *)
    let conv =
      if Urs_obs.Convergence.recording () then
        Some
          (Urs_obs.Convergence.create ~solver:"brent"
             ~label:
               (Printf.sprintf "geometric N=%d s=%d"
                  (Environment.servers env) (Qbd.s q))
             ())
      else None
    in
    let observe =
      Option.map
        (fun c ~iteration ~width ~best ->
          Urs_obs.Convergence.observe c ~iteration ~residual:width ~shift:best
            ())
        conv
    in
    let finish_conv converged =
      Option.iter
        (fun c ->
          ignore
            (Urs_obs.Convergence.finish ~converged c
              : Urs_obs.Convergence.trace))
        conv
    in
    match
      Urs_linalg.Rootfind.largest_root_in ~scan_points ?observe f 1e-9
        (1.0 -. 1e-9)
    with
    | exception Urs_linalg.Rootfind.Exhausted { iterations; width; best; _ } ->
        finish_conv false;
        Error (Root_exhausted { iterations; width; best })
    | None -> Error Root_not_found
    | Some z ->
        finish_conv true;
        let u = Urs_linalg.Clu.left_null_vector (Qbd.char_poly_at q (Cx.of_float z)) in
        let u_re = CV.real_part u in
        let total = V.sum u_re in
        let weights = V.scale (1.0 /. total) u_re in
        Ok { qbd = q; z; weights }
  end

let solve ?(scan_points = 400) q =
  let t0 = Span.now () in
  let result = solve_inner ~scan_points q in
  let wall = Span.now () -. t0 in
  let params =
    [
      ("servers", Json.Int (Environment.servers (Qbd.env q)));
      ("modes", Json.Int (Qbd.s q));
      ("lambda", Json.Float (Qbd.lambda q));
      ("mu", Json.Float (Qbd.mu q));
    ]
  in
  (match result with
  | Ok sol ->
      Metrics.set m_dominant sol.z;
      Ledger.record ~kind:"geometric.solve" ~strategy:"approx" ~params
        ~wall_seconds:wall
        ~summary:[ ("dominant_z", Json.Float sol.z) ]
        ()
  | Error e ->
      Ledger.record ~kind:"geometric.solve" ~strategy:"approx" ~params
        ~wall_seconds:wall ~outcome:"error"
        ~summary:[ ("error", Json.String (Format.asprintf "%a" pp_error e)) ]
        ());
  result

let qbd t = t.qbd

let dominant_eigenvalue t = t.z

let mode_weights t = V.copy t.weights

let level_probability t j =
  if j < 0 then 0.0 else (1.0 -. t.z) *. (t.z ** float_of_int j)

let probability t ~mode ~jobs =
  if mode < 0 || mode >= V.dim t.weights then
    invalid_arg "Geometric.probability: bad mode";
  t.weights.(mode) *. level_probability t jobs

let tail_probability t j0 =
  if j0 <= 0 then 1.0 else t.z ** float_of_int j0

let queue_length_quantile t p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Geometric.queue_length_quantile: p in (0,1)";
  (* P(length <= j) = 1 - z^{j+1} >= p  ⇔  j >= ln(1-p)/ln z - 1 *)
  let j = int_of_float (ceil ((log (1.0 -. p) /. log t.z) -. 1.0)) in
  max 0 j

let mean_queue_length t = t.z /. (1.0 -. t.z)

let mean_response_time t = mean_queue_length t /. Qbd.lambda t.qbd
