(** Exact steady-state solution of the Markov-modulated queue by the
    method of spectral expansion (paper §3.1; Mitrani & Chakka 1995).

    For queue sizes [j >= N] the solution has the form
    [v_j = Σ_k γ_k u_k z_k^j] where [z_k] are the [s] eigenvalues of the
    characteristic polynomial [Q(z)] inside the unit disk and [u_k] the
    corresponding left eigenvectors (eqs. (17)–(19)). The boundary
    vectors [v_0..v_{N−1}] and coefficients [γ_k] are obtained from the
    level-[0..N] balance equations (block-tridiagonal forward
    elimination, then a null-vector computation) and the normalization
    condition (eq. (20)). *)

type error =
  | Unstable of Stability.verdict
      (** The queue has no steady state (eq. (11) violated). *)
  | Eigenvalue_count of { expected : int; found : int }
      (** The companion eigensolve did not find exactly [s] eigenvalues
          strictly inside the unit disk — usually a symptom of being too
          close to the stability boundary or of ill-conditioning at
          large [N] (the paper reports the same failure mode for
          [N ≳ 24]). *)
  | Numerical of string  (** Other numerical failure. *)

val pp_error : Format.formatter -> error -> unit

type t
(** A solved model. *)

val solve : ?eig_tol:float -> ?max_iter:int -> Qbd.t -> (t, error) result
(** Solve the model. [eig_tol] is the unit-circle exclusion band used
    when classifying eigenvalues (default [1e-9]); [max_iter] bounds the
    QR sweeps per eigenvalue of the companion eigensolve (default
    [100] — lower it to force a controlled stall in tests and doctor
    probes).

    Each call updates the last-solve gauges
    ([urs_spectral_eigenvalues] / [urs_spectral_dominant_z] /
    [urs_spectral_residual], labelled [strategy="exact"]) and appends a
    ["spectral.solve"] record (parameters, wall time, residual,
    boundary condition) to the {!Urs_obs.Ledger} when one is active.
    When {!Urs_obs.Convergence.recording} is on, the companion
    eigensolve additionally records a per-sweep ["qr"] convergence
    trace (sub-diagonal residual, shift, deflations) finished into the
    global trace ring and the ledger. *)

val qbd : t -> Qbd.t

val eigenvalues : t -> Urs_linalg.Cx.t array
(** The [s] eigenvalues inside the unit disk, ascending modulus. *)

val dominant_eigenvalue : t -> float
(** The largest-modulus eigenvalue [z_s]; always real positive. *)

val boundary_vectors : t -> Urs_linalg.Vec.t array
(** [v_0 .. v_{N−1}]. *)

val probability : t -> mode:int -> jobs:int -> float
(** Steady-state probability [p(i, j)] of mode [i] with [j] jobs. *)

val level_probability : t -> int -> float
(** [P(queue length = j) = v_j · 1]. *)

val tail_probability : t -> int -> float
(** [P(queue length >= j)]. *)

val queue_length_quantile : t -> float -> int
(** [queue_length_quantile t p] is the smallest [j] with
    [P(queue length <= j) >= p]; [p] in [(0, 1)]. *)

val mean_queue_length : t -> float
(** [L = Σ_j j (v_j · 1)], evaluated with closed-form geometric sums. *)

val mean_response_time : t -> float
(** [W = L/λ] (Little's law). *)

val mean_waiting_jobs : t -> float
(** Mean number of jobs waiting (not in service), [L − λ/µ]: in steady
    state the expected number in service equals the offered load. *)

val mean_waiting_time : t -> float
(** Mean time in queue before service starts, [W − 1/µ]. *)

val mode_marginals : t -> Urs_linalg.Vec.t
(** Marginal mode probabilities [π_i = Σ_j p(i,j)]; must agree with
    {!Environment.stationary_mode_probability}. *)

val mean_busy_servers : t -> float
(** Expected number of servers actively serving,
    [Σ_{i,j} min(ops(i), j)·p(i,j)] — equals [λ/µ] in steady state
    (a useful internal consistency check). *)

val residual : t -> float
(** Largest infinity-norm residual of the level-[0..N+2] balance
    equations and the normalization — an a-posteriori accuracy
    certificate. *)

(** {1 Numerical-health probes} — consumed by {!Diagnostics}. *)

val mass_defect : t -> float
(** [|Σ_j v_j·1 − 1|] over the full horizon (boundary head plus
    closed-form spectral tail) — probability-mass conservation. *)

val eigen_residuals : t -> float array
(** Per-eigenpair residuals [‖u_k Q(z_k)‖∞ / ‖u_k‖∞], in the order of
    {!eigenvalues}. *)

val max_eigen_residual : t -> float

val boundary_condition : t -> float
(** Worst pivot-ratio condition estimate
    ({!Urs_linalg.Lu.pivot_condition}) over the LU factorizations of
    the boundary block-tridiagonal elimination. [1.] when [N = 1]
    (no real factorization happens). *)
