(** Ergodicity of the unreliable multi-server queue (paper, eq. (11)):
    the queue is stable iff the offered load [λ/µ] is less than the
    steady-state average number of operative servers [N·η/(ξ+η)]. The
    condition depends only on the {e means} of the operative and
    inoperative periods, not on their distributions. *)

type verdict = {
  offered_load : float;  (** λ/µ. *)
  effective_capacity : float;  (** Average number of operative servers. *)
  utilization : float;  (** Offered load / effective capacity. *)
  stable : bool;
}

val check : env:Environment.t -> lambda:float -> mu:float -> verdict
(** Also records the margin of the checked model in the
    [urs_stability_margin] gauge (last-write semantics). *)

val margin : verdict -> float
(** [1 - utilization]: how far from saturation the model sits. Negative
    for unstable models; the health diagnostics degrade verdicts whose
    margin is positive but tiny, where the spectral solve becomes
    ill-conditioned (dominant eigenvalue approaching 1). *)

val max_arrival_rate : env:Environment.t -> mu:float -> float
(** The supremum of stable arrival rates, [µ · N · availability]. *)

val pp_verdict : Format.formatter -> verdict -> unit
