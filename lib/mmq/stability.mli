(** Ergodicity of the unreliable multi-server queue (paper, eq. (11)):
    the queue is stable iff the offered load [λ/µ] is less than the
    steady-state average number of operative servers [N·η/(ξ+η)]. The
    condition depends only on the {e means} of the operative and
    inoperative periods, not on their distributions. *)

type verdict = {
  offered_load : float;  (** λ/µ. *)
  effective_capacity : float;  (** Average number of operative servers. *)
  utilization : float;  (** Offered load / effective capacity. *)
  stable : bool;
}

val check : env:Environment.t -> lambda:float -> mu:float -> verdict

val max_arrival_rate : env:Environment.t -> mu:float -> float
(** The supremum of stable arrival rates, [µ · N · availability]. *)

val pp_verdict : Format.formatter -> verdict -> unit
