module M = Urs_linalg.Matrix

type t = {
  env : Environment.t;
  lambda : float;
  mu : float;
  a : M.t;
  b : M.t;
  d_a : M.t;
  c_full : M.t; (* C_j for j >= N *)
}

let create ~env ~lambda ~mu =
  if lambda <= 0.0 || mu <= 0.0 then
    invalid_arg "Qbd.create: lambda and mu must be positive";
  let s = Environment.num_modes env in
  let a = Environment.transition_matrix env in
  let b = M.scalar s lambda in
  let d_a = M.diagonal (M.row_sums a) in
  let n = Environment.servers env in
  let c_full =
    M.init s s (fun i j ->
        if i = j then
          float_of_int (min (Environment.operative_servers env i) n) *. mu
        else 0.0)
  in
  { env; lambda; mu; a; b; d_a; c_full }

let env t = t.env

let lambda t = t.lambda

let mu t = t.mu

let s t = Environment.num_modes t.env

let a t = M.copy t.a

let b t = M.copy t.b

let d_a t = M.copy t.d_a

let c t j =
  if j < 0 then invalid_arg "Qbd.c: negative level";
  if j >= Environment.servers t.env then M.copy t.c_full
  else
    M.init (s t) (s t) (fun i k ->
        if i = k then
          float_of_int (min (Environment.operative_servers t.env i) j) *. t.mu
        else 0.0)

let c_diag t j =
  if j < 0 then invalid_arg "Qbd.c_diag: negative level";
  Array.init (s t) (fun i ->
      float_of_int
        (min (Environment.operative_servers t.env i)
           (min j (Environment.servers t.env)))
      *. t.mu)

let transition_block t j = M.sub (M.sub (M.sub t.a t.d_a) t.b) (c t j)

let q0 t = b t

let q1 t = transition_block t (Environment.servers t.env)

let q2 t = M.copy t.c_full

let char_poly_at t z =
  Urs_linalg.Companion.evaluate ~q0:(q0 t) ~q1:(q1 t) ~q2:(q2 t) z

let det_q_scaled t z =
  let sm = s t in
  let t_full = transition_block t (Environment.servers t.env) in
  let q =
    M.init sm sm (fun i j ->
        M.get t.b i j
        +. (z *. M.get t_full i j)
        +. (z *. z *. M.get t.c_full i j))
  in
  let log_det, sign = Urs_linalg.Lu.log_abs_det q in
  if sign = 0 then 0.0
  else float_of_int sign *. exp (log_det /. float_of_int sm)

let eigenpair_residual t z u =
  let norm_u = Urs_linalg.Cvec.norm_inf u in
  if norm_u = 0.0 then infinity
  else
    Urs_linalg.Cvec.norm_inf (Urs_linalg.Cmatrix.vec_mul u (char_poly_at t z))
    /. norm_u

let generator_residual t vs j =
  match vs with
  | [| v_prev; v_j; v_next |] ->
      let lhs = M.vec_mul v_prev t.b in
      let mid = M.vec_mul v_j (transition_block t j) in
      let nxt = M.vec_mul v_next (c t (j + 1)) in
      Urs_linalg.Vec.norm_inf
        (Urs_linalg.Vec.add lhs (Urs_linalg.Vec.add mid nxt))
  | _ -> invalid_arg "Qbd.generator_residual: expected three vectors"
