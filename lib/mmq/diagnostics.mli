(** Numerical-health diagnostics for the solvers.

    Each probe (balance residual, per-eigenpair residual, probability
    mass conservation, boundary-system conditioning, stability margin,
    simulation confidence-interval width, cross-method agreement) is
    scored against two thresholds and folded into a severity verdict.
    The verdicts back the [urs doctor] CLI subcommand and the
    [/healthz] endpoint of [urs serve]. *)

type verdict =
  | Ok  (** All probes within tolerance. *)
  | Degraded of string list
      (** Result usable but some probe is outside its comfort zone;
          the strings describe which. *)
  | Suspect of string list
      (** At least one probe indicates the result should not be
          trusted. *)

val severity : verdict -> int
(** [0] for [Ok], [1] for [Degraded], [2] for [Suspect]. *)

val verdict_label : verdict -> string
(** ["ok"], ["degraded"] or ["suspect"]. *)

val issues : verdict -> string list

val combine : verdict list -> verdict
(** Worst severity wins; issue lists are concatenated. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Thresholds} *)

type thresholds = {
  residual_degraded : float;
      (** Balance/eigenpair residual or mass defect above this degrades
          the verdict (default [1e-10]). *)
  residual_suspect : float;  (** ... and above this makes it suspect. *)
  condition_degraded : float;
      (** Boundary LU pivot-ratio condition estimate (default [1e10]). *)
  condition_suspect : float;
  margin_degraded : float;
      (** Positive stability margins below this degrade (default
          [1e-3]): the spectral solve goes ill-conditioned as
          utilization approaches 1. *)
  ci_rel_degraded : float;
      (** Simulation CI half-width relative to the estimate. *)
  ci_rel_suspect : float;
  delta_exact_degraded : float;
      (** Relative disagreement between two exact methods. *)
  delta_exact_suspect : float;
  sim_band_half_widths : float;
      (** Exact-vs-simulation acceptance band, in CI half-widths
          (default [3.]). *)
  sim_band_rel_floor : float;
      (** Floor of that band as a fraction of the exact value (default
          [0.05]) — the CI itself is noisy at few replications. *)
  sim_suspect_factor : float;
      (** Deltas beyond this multiple of the band are suspect rather
          than degraded (default [3.]). *)
  warmup_slack_frac : float;
      (** A Welch-measured warm-up may exceed the configured warmup by
          this fraction of the run horizon before {!check_warmup}
          degrades (default [0.05]). *)
  transient_rel_degraded : float;
      (** Measured-vs-[Transient.solve] trajectory disagreement,
          relative to the expectation floored at one job (default
          [0.35] — replication averages over a handful of runs are
          noisy, and the simulator's initial phase mix differs slightly
          from the most-likely-mode start of the uniformization). *)
  transient_rel_suspect : float;  (** ... and above this, suspect. *)
  memory_top_heap_words : float;
      (** {!check_memory}: top-heap words above this budget are suspect
          (default [2.5e8] — far above the few tens of megawords the
          N=5 paper solve needs, so only a fundamental allocation
          regression trips it). *)
  memory_gc_pause_seconds : float;
      (** {!check_memory}: a major-GC pause longer than this inside the
          probed solve is suspect (default [1.]). *)
  conv_cap_ratio_suspect : float;
      (** {!check_convergence}: iterations-used over the iteration cap
          at or above this ratio is suspect (default [0.8] — the next
          harder model will stall outright). *)
  conv_stall_window : int;
      (** {!check_convergence}: number of trailing post-deflation
          samples over which a residual that fails to improve at all
          counts as stagnation (default [12]). *)
  conv_rate_degraded : float;
      (** {!check_convergence}: a per-iteration residual contraction
          rate above this degrades (default [0.995], i.e. more than
          ~5000 iterations per decade — the paper models' linearly
          convergent R fixed point at [z_s ≈ 0.96] passes). *)
}

val default_thresholds : thresholds

(** {1 Spectral solves} *)

type spectral_report = {
  balance_residual : float;  (** {!Spectral.residual}. *)
  eigen_residual : float;  (** {!Spectral.max_eigen_residual}. *)
  mass_defect : float;  (** {!Spectral.mass_defect}. *)
  boundary_condition : float;  (** {!Spectral.boundary_condition}. *)
  dominant_z : float;
  stability_margin : float;
  verdict : verdict;
}

val check_spectral : ?thresholds:thresholds -> Spectral.t -> spectral_report
(** Run every a-posteriori probe on a solved model. Pure: does not
    touch gauges (use {!observe_spectral}). *)

val pp_spectral_report : Format.formatter -> spectral_report -> unit

(** {1 Cross-checks} *)

val relative_delta : float -> float -> float
(** [|a − b| / max(|a|, |b|)]; [0.] when both are zero. *)

val check_exact_pair :
  ?thresholds:thresholds -> label:string -> float -> float -> float * verdict
(** Agreement between two exact methods (e.g. spectral vs
    matrix-geometric mean queue length). Returns the relative delta
    and its verdict. *)

val check_simulation_agreement :
  ?thresholds:thresholds ->
  label:string ->
  exact:float ->
  estimate:float ->
  half_width:float ->
  unit ->
  float * verdict
(** Does the simulation estimate sit inside a (generously widened)
    confidence band around the exact value? The band is
    [sim_band_half_widths] CI half-widths, floored at
    [sim_band_rel_floor] of the exact value; [sim_suspect_factor]
    times the band escalates to suspect. Returns the relative delta
    and its verdict. *)

val check_warmup :
  ?thresholds:thresholds ->
  label:string ->
  warmup:float ->
  horizon:float ->
  float option ->
  verdict
(** Does the simulation's measurement window clear the initial
    transient? The argument is the Welch-estimated truncation time
    ({!Urs_stats.Welch.truncation_index} mapped back to simulated time);
    [None] means the trajectory never settled within [horizon].
    Degraded when the truncation time exceeds [warmup] by more than
    [warmup_slack_frac] of the horizon, or on [None]. *)

val check_memory :
  ?thresholds:thresholds ->
  label:string ->
  top_heap_words:float ->
  worst_pause:float option ->
  unit ->
  verdict
(** Memory health of a probed solve ([urs doctor]'s [memory] stage):
    suspect when [top_heap_words] exceeds [memory_top_heap_words], or
    when [worst_pause] (the longest major-GC pause overlapping the
    solve span, from the Runtime_events consumer; [None] when no pause
    was observed or the runtime lacks eventring support) exceeds
    [memory_gc_pause_seconds]. *)

val check_transient_trajectory :
  ?thresholds:thresholds ->
  label:string ->
  (float * float * float) list ->
  float * verdict
(** Cross-check a measured mean-jobs trajectory against the
    uniformization transient solution: each element is
    [(time, measured, expected)]. Returns the worst relative
    disagreement (relative to the expectation, floored at one job) and
    its verdict, graded against [transient_rel_degraded] / [_suspect].
    Degraded when called with no points. *)

val check_convergence :
  ?thresholds:thresholds ->
  label:string ->
  Urs_obs.Convergence.trace ->
  float * verdict
(** Grade one finished iteration trace ([urs doctor]'s [convergence]
    stage). Suspect when the trace did not converge, when it burned
    [conv_cap_ratio_suspect] of its iteration cap, when deflation is
    non-monotone (the active/remaining figure grew), or when the
    residual stagnated over the last [conv_stall_window] post-deflation
    samples; degraded on slow linear contraction (geometric-mean
    per-iteration rate above [conv_rate_degraded]). Returns the
    cap-utilization ratio (iterations when the trace carries no cap)
    and the verdict. *)

val check_ci :
  ?thresholds:thresholds ->
  label:string ->
  estimate:float ->
  half_width:float ->
  unit ->
  float * verdict
(** Is the simulation's own confidence interval tight enough relative
    to its estimate? Returns the relative half-width and its verdict. *)

(** {1 Gauges}

    Verdicts are exported as [urs_health_status{component="..."}]
    (0 ok / 1 degraded / 2 suspect) and probe values as
    [urs_health_value{check="..."}], both with last-write semantics. *)

val observe_verdict : component:string -> verdict -> unit
val observe_spectral : spectral_report -> unit
