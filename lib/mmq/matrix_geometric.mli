(** Matrix-geometric (Neuts) solution of the same queue — an independent
    exact method used to cross-validate the spectral expansion (the two
    must agree to within numerical accuracy; cf. Mitrani & Chakka 1995,
    which compares exactly these two approaches).

    For levels [j >= N] the steady state satisfies [v_{N+r} = v_N Rʳ]
    where [R] is the minimal nonnegative solution of
    [Q0 + R Q1 + R² Q2 = 0], computed here by the classical fixed-point
    iteration [R ← −(Q0 + R²Q2) Q1⁻¹]. The boundary levels are solved
    with the same block-tridiagonal elimination as the spectral method. *)

type error =
  | Unstable of Stability.verdict
  | No_convergence of { iterations : int; delta : float }
      (** The R iteration failed to reach tolerance. *)
  | Numerical of string

val pp_error : Format.formatter -> error -> unit

type t

val solve : ?tol:float -> ?max_iter:int -> Qbd.t -> (t, error) result
(** Defaults: [tol = 1e-13] (entrywise change per sweep),
    [max_iter = 200_000]. When {!Urs_obs.Convergence.recording} is on,
    the fixed-point iteration records an ["mg_r"] convergence trace
    (entrywise delta per sweep). *)

val qbd : t -> Qbd.t

val r_matrix : t -> Urs_linalg.Matrix.t
(** The rate matrix [R]. *)

val r_iterations : t -> int
(** Fixed-point sweeps used. *)

val spectral_radius_estimate : t -> float
(** Estimate of [sp(R)] by power iteration; must equal the dominant
    spectral-expansion eigenvalue [z_s]. *)

val probability : t -> mode:int -> jobs:int -> float
val level_probability : t -> int -> float
val mean_queue_length : t -> float
val mean_response_time : t -> float
val mode_marginals : t -> Urs_linalg.Vec.t
