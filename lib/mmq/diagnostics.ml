(* Numerical-health verdicts for the solvers (Palmer & Mitrani,
   CS-TR-936: the spectral expansion is trustworthy exactly when its
   eigenvalues sit inside the unit disk, the boundary systems are
   well-conditioned and the balance residuals are tiny). Each probe is
   scored against two thresholds; the worst score wins. *)

module Metrics = Urs_obs.Metrics

type verdict = Ok | Degraded of string list | Suspect of string list

type thresholds = {
  residual_degraded : float;
  residual_suspect : float;
  condition_degraded : float;
  condition_suspect : float;
  margin_degraded : float;
  ci_rel_degraded : float;
  ci_rel_suspect : float;
  delta_exact_degraded : float;
  delta_exact_suspect : float;
  sim_band_half_widths : float;
  sim_band_rel_floor : float;
  sim_suspect_factor : float;
  warmup_slack_frac : float;
  transient_rel_degraded : float;
  transient_rel_suspect : float;
  memory_top_heap_words : float;
  memory_gc_pause_seconds : float;
  conv_cap_ratio_suspect : float;
  conv_stall_window : int;
  conv_rate_degraded : float;
}

let default_thresholds =
  {
    (* balance/eigenpair residuals and mass defect: paper-model solves
       land near 1e-15; anything past 1e-10 deserves a second look and
       past 1e-6 the answer should not be trusted *)
    residual_degraded = 1e-10;
    residual_suspect = 1e-6;
    (* pivot-ratio estimates of the boundary LU blocks *)
    condition_degraded = 1e10;
    condition_suspect = 1e14;
    (* spectral solves go ill-conditioned as utilization -> 1 *)
    margin_degraded = 1e-3;
    (* simulation 95% CI half-width relative to the estimate *)
    ci_rel_degraded = 0.05;
    ci_rel_suspect = 0.5;
    (* relative disagreement between two *exact* methods *)
    delta_exact_degraded = 1e-8;
    delta_exact_suspect = 1e-4;
    (* exact-vs-simulation band: this many CI half-widths, floored at
       this fraction of the exact value (the CI itself is noisy at few
       replications); [sim_suspect_factor] times the band -> suspect *)
    sim_band_half_widths = 3.0;
    sim_band_rel_floor = 0.05;
    sim_suspect_factor = 3.0;
    (* Welch truncation may exceed the configured warmup by this
       fraction of the run horizon before the summary window is
       declared transient-contaminated *)
    warmup_slack_frac = 0.05;
    (* measured trajectory vs uniformization transient expectation:
       replication averages over a handful of runs are noisy, and the
       simulator's initial phase mix differs slightly from the
       most-likely-mode start of Transient.solve *)
    transient_rel_degraded = 0.35;
    transient_rel_suspect = 1.0;
    (* memory stage: the N=5 paper solve tops out around a few tens of
       megawords even with the probe machinery on — a quarter-gigaword
       top-heap or a >1 s major-GC pause inside a solve span means the
       allocation profile changed fundamentally *)
    memory_top_heap_words = 2.5e8;
    memory_gc_pause_seconds = 1.0;
    (* convergence stage: burning >= 80% of the iteration cap means the
       next harder model will stall outright; a window of samples with
       no residual improvement is a stall in progress; a per-iteration
       contraction rate above 0.995 (> 5000 iterations per decade) is
       pathologically slow even for the linearly-convergent R fixed
       point (z_s ≈ 0.96 on the paper models passes) *)
    conv_cap_ratio_suspect = 0.8;
    conv_stall_window = 12;
    conv_rate_degraded = 0.995;
  }

(* ---- verdict algebra ---- *)

let severity = function Ok -> 0 | Degraded _ -> 1 | Suspect _ -> 2

let verdict_label = function
  | Ok -> "ok"
  | Degraded _ -> "degraded"
  | Suspect _ -> "suspect"

let issues = function Ok -> [] | Degraded is | Suspect is -> is

let combine vs =
  let worst = List.fold_left (fun acc v -> max acc (severity v)) 0 vs in
  let all = List.concat_map issues vs in
  match worst with 0 -> Ok | 1 -> Degraded all | _ -> Suspect all

let pp_verdict ppf v =
  match v with
  | Ok -> Format.pp_print_string ppf "OK"
  | Degraded is | Suspect is ->
      Format.fprintf ppf "%s (%a)"
        (String.uppercase_ascii (verdict_label v))
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           Format.pp_print_string)
        is

(* a little accumulator: score each probe, collect complaints *)
type scorer = { mutable worst : int; mutable complaints : string list }

let new_scorer () = { worst = 0; complaints = [] }

let complain sc level msg =
  sc.worst <- max sc.worst level;
  sc.complaints <- msg :: sc.complaints

let grade sc ~degraded ~suspect ~fmt value =
  if value >= suspect then
    complain sc 2 (Printf.sprintf fmt value ^ " (suspect)")
  else if value >= degraded then
    complain sc 1 (Printf.sprintf fmt value ^ " (degraded)")

let close sc =
  match sc.worst with
  | 0 -> Ok
  | 1 -> Degraded (List.rev sc.complaints)
  | _ -> Suspect (List.rev sc.complaints)

(* ---- spectral solves ---- *)

type spectral_report = {
  balance_residual : float;
  eigen_residual : float;
  mass_defect : float;
  boundary_condition : float;
  dominant_z : float;
  stability_margin : float;
  verdict : verdict;
}

let check_spectral ?(thresholds = default_thresholds) sol =
  let t = thresholds in
  let q = Spectral.qbd sol in
  let stab =
    Stability.check ~env:(Qbd.env q) ~lambda:(Qbd.lambda q) ~mu:(Qbd.mu q)
  in
  let balance_residual = Spectral.residual sol in
  let eigen_residual = Spectral.max_eigen_residual sol in
  let mass_defect = Spectral.mass_defect sol in
  let boundary_condition = Spectral.boundary_condition sol in
  let dominant_z = Spectral.dominant_eigenvalue sol in
  let stability_margin = Stability.margin stab in
  let sc = new_scorer () in
  grade sc ~degraded:t.residual_degraded ~suspect:t.residual_suspect
    ~fmt:"balance residual %.2e" balance_residual;
  grade sc ~degraded:t.residual_degraded ~suspect:t.residual_suspect
    ~fmt:"eigenpair residual %.2e" eigen_residual;
  grade sc ~degraded:t.residual_degraded ~suspect:t.residual_suspect
    ~fmt:"mass defect %.2e" mass_defect;
  grade sc ~degraded:t.condition_degraded ~suspect:t.condition_suspect
    ~fmt:"boundary condition %.2e" boundary_condition;
  if stability_margin <= 0.0 then
    complain sc 2
      (Printf.sprintf "stability margin %.2e not positive" stability_margin)
  else if stability_margin < t.margin_degraded then
    complain sc 1
      (Printf.sprintf "stability margin %.2e: near saturation"
         stability_margin);
  if dominant_z <= 0.0 || dominant_z >= 1.0 then
    complain sc 2
      (Printf.sprintf "dominant eigenvalue %.6f outside (0, 1)" dominant_z);
  {
    balance_residual;
    eigen_residual;
    mass_defect;
    boundary_condition;
    dominant_z;
    stability_margin;
    verdict = close sc;
  }

let pp_spectral_report ppf r =
  Format.fprintf ppf
    "balance=%.2e eigen=%.2e mass=%.2e cond=%.1e z_s=%.6f margin=%.4f -> %a"
    r.balance_residual r.eigen_residual r.mass_defect r.boundary_condition
    r.dominant_z r.stability_margin pp_verdict r.verdict

(* ---- cross-method agreement ---- *)

let relative_delta a b =
  let scale = Float.max (abs_float a) (abs_float b) in
  if scale = 0.0 then 0.0 else abs_float (a -. b) /. scale

let check_exact_pair ?(thresholds = default_thresholds) ~label a b =
  let t = thresholds in
  let sc = new_scorer () in
  let d = relative_delta a b in
  if Float.is_nan d then
    complain sc 2 (Printf.sprintf "%s: non-finite disagreement" label)
  else if d >= t.delta_exact_suspect then
    complain sc 2 (Printf.sprintf "%s disagree by %.2e (suspect)" label d)
  else if d >= t.delta_exact_degraded then
    complain sc 1 (Printf.sprintf "%s disagree by %.2e (degraded)" label d);
  (d, close sc)

let check_simulation_agreement ?(thresholds = default_thresholds) ~label
    ~exact ~estimate ~half_width () =
  let t = thresholds in
  let sc = new_scorer () in
  let delta = abs_float (exact -. estimate) in
  let rel = relative_delta exact estimate in
  let band =
    Float.max
      (t.sim_band_half_widths *. half_width)
      (t.sim_band_rel_floor *. abs_float exact)
  in
  if Float.is_nan delta then
    complain sc 2 (Printf.sprintf "%s: non-finite simulation delta" label)
  else if delta > t.sim_suspect_factor *. band then
    complain sc 2
      (Printf.sprintf "%s: simulation off by %.3g (>> CI, suspect)" label delta)
  else if delta > band then
    complain sc 1
      (Printf.sprintf "%s: simulation off by %.3g (outside CI, degraded)" label
         delta);
  (rel, close sc)

(* ---- warm-up (initial transient) ---- *)

let check_warmup ?(thresholds = default_thresholds) ~label ~warmup ~horizon
    truncation =
  let t = thresholds in
  let sc = new_scorer () in
  let slack = t.warmup_slack_frac *. horizon in
  (match truncation with
  | None ->
      complain sc 1
        (Printf.sprintf
           "%s: trajectory never settles within the %.3g-unit horizon" label
           horizon)
  | Some tr ->
      if tr > warmup +. slack then
        complain sc 1
          (Printf.sprintf
            "%s: measured warm-up %.3g exceeds configured warmup %.3g — \
             summary window overlaps the transient"
            label tr warmup));
  close sc

let check_memory ?(thresholds = default_thresholds) ~label ~top_heap_words
    ~worst_pause () =
  let t = thresholds in
  let sc = new_scorer () in
  if top_heap_words > t.memory_top_heap_words then
    complain sc 2
      (Printf.sprintf
         "%s: top heap %.3g words exceeds the %.3g-word budget — allocation \
          profile changed fundamentally"
         label top_heap_words t.memory_top_heap_words);
  (match worst_pause with
  | Some p when p > t.memory_gc_pause_seconds ->
      complain sc 2
        (Printf.sprintf
           "%s: a %.3g s major-GC pause landed inside the solve (threshold \
            %.3g s)"
           label p t.memory_gc_pause_seconds)
  | Some _ | None -> ());
  close sc

let check_transient_trajectory ?(thresholds = default_thresholds) ~label pairs
    =
  let t = thresholds in
  let sc = new_scorer () in
  match pairs with
  | [] ->
      complain sc 1 (Printf.sprintf "%s: no trajectory points to compare" label);
      (nan, close sc)
  | _ ->
      let worst =
        List.fold_left
          (fun acc (_, measured, expected) ->
            (* denominator floored at one job: relative error on a
               near-empty system would otherwise be meaningless *)
            let rel =
              abs_float (measured -. expected)
              /. Float.max (abs_float expected) 1.0
            in
            if Float.is_nan acc || rel > acc then rel else acc)
          nan pairs
      in
      if Float.is_nan worst then
        complain sc 2 (Printf.sprintf "%s: non-finite trajectory delta" label)
      else if worst >= t.transient_rel_suspect then
        complain sc 2
          (Printf.sprintf
             "%s: trajectory off the transient expectation by %.2g (suspect)"
             label worst)
      else if worst >= t.transient_rel_degraded then
        complain sc 1
          (Printf.sprintf
             "%s: trajectory off the transient expectation by %.2g (degraded)"
             label worst);
      (worst, close sc)

(* ---- convergence traces ---- *)

(* Grades one finished iteration trace (see Urs_obs.Convergence).
   Stagnation and contraction-rate analyses run on the samples after
   the last deflation event — the only stretch where the residual
   series tracks a single sub-problem (a QR deflation legitimately
   resets the residual to the next block's sub-diagonal). A healthy QR
   trace ends on its last deflation, so those two checks are vacuous
   there and bite on the deflation-free solvers (R fixed point, Brent,
   uniformization) and on genuine stalls. *)
let check_convergence ?(thresholds = default_thresholds)
    ~label (tr : Urs_obs.Convergence.trace) =
  let t = thresholds in
  let sc = new_scorer () in
  if not tr.converged then
    complain sc 2
      (Printf.sprintf "%s: %s did not converge after %d iterations" label
         tr.solver tr.iterations);
  let cap_ratio =
    match tr.max_iter with
    | Some m when m > 0 -> float_of_int tr.iterations /. float_of_int m
    | _ -> nan
  in
  if tr.converged && Float.is_finite cap_ratio
     && cap_ratio >= t.conv_cap_ratio_suspect
  then
    complain sc 2
      (Printf.sprintf
         "%s: %s used %d of %d iterations — iteration-cap proximity %.0f%%"
         label tr.solver tr.iterations
         (Option.get tr.max_iter)
         (100.0 *. cap_ratio));
  let samples = tr.samples in
  let n = Array.length samples in
  (* non-monotone deflation: the active/remaining figure must never
     grow (QR removes eigenvalues; it cannot un-deflate) *)
  let non_monotone = ref false in
  for i = 1 to n - 1 do
    if samples.(i).Urs_obs.Convergence.active
       > samples.(i - 1).Urs_obs.Convergence.active
    then non_monotone := true
  done;
  if !non_monotone then
    complain sc 2
      (Printf.sprintf "%s: %s deflation is non-monotone (active block grew)"
         label tr.solver);
  (* analysis window: finite residuals after the last deflation *)
  let last_deflation = ref (-1) in
  for i = 0 to n - 1 do
    if samples.(i).Urs_obs.Convergence.deflation then last_deflation := i
  done;
  let window =
    let rec collect i acc =
      if i >= n then List.rev acc
      else
        let r = samples.(i).Urs_obs.Convergence.residual in
        collect (i + 1)
          (if Float.is_finite r && r > 0.0 then r :: acc else acc)
    in
    collect (!last_deflation + 1) []
  in
  let wlen = List.length window in
  if wlen >= t.conv_stall_window then begin
    let tail =
      List.filteri (fun i _ -> i >= wlen - t.conv_stall_window) window
    in
    let first = List.hd tail in
    let last = List.nth tail (List.length tail - 1) in
    (* residual stagnation: no improvement at all over the window *)
    if last >= first then
      complain sc 2
        (Printf.sprintf
           "%s: %s residual stagnated (%.2e -> %.2e over the last %d \
            iterations)"
           label tr.solver first last t.conv_stall_window);
    (* slow linear contraction: geometric mean of successive ratios *)
    let rec rate_acc prev rest acc cnt =
      match rest with
      | [] -> (acc, cnt)
      | r :: rest ->
          if prev > 0.0 && r > 0.0 then
            rate_acc r rest (acc +. log (r /. prev)) (cnt + 1)
          else rate_acc r rest acc cnt
    in
    let acc, cnt = rate_acc (List.hd window) (List.tl window) 0.0 0 in
    if cnt >= 4 then begin
      let rate = exp (acc /. float_of_int cnt) in
      if tr.converged && rate > t.conv_rate_degraded && rate < 1.0 then
        complain sc 1
          (Printf.sprintf
             "%s: %s contracts slowly (rate ~%.4f per iteration)" label
             tr.solver rate)
    end
  end;
  let value =
    if Float.is_finite cap_ratio then cap_ratio
    else float_of_int tr.iterations
  in
  (value, close sc)

let check_ci ?(thresholds = default_thresholds) ~label ~estimate ~half_width ()
    =
  let t = thresholds in
  let sc = new_scorer () in
  let rel =
    if estimate = 0.0 then if half_width = 0.0 then 0.0 else infinity
    else half_width /. abs_float estimate
  in
  if rel >= t.ci_rel_suspect then
    complain sc 2
      (Printf.sprintf "%s: relative CI half-width %.2e (suspect)" label rel)
  else if rel >= t.ci_rel_degraded then
    complain sc 1
      (Printf.sprintf "%s: relative CI half-width %.2e (degraded)" label rel);
  (rel, close sc)

(* ---- gauges ---- *)

let m_status component =
  Metrics.gauge
    ~labels:[ ("component", component) ]
    ~help:"Health verdict of the last check: 0 ok, 1 degraded, 2 suspect"
    "urs_health_status"

let m_value check =
  Metrics.gauge
    ~labels:[ ("check", check) ]
    ~help:"Value of the named numerical-health probe (last check)"
    "urs_health_value"

let observe_verdict ~component v =
  Metrics.set (m_status component) (float_of_int (severity v))

let observe_spectral r =
  observe_verdict ~component:"spectral" r.verdict;
  Metrics.set (m_value "balance_residual") r.balance_residual;
  Metrics.set (m_value "eigen_residual") r.eigen_residual;
  Metrics.set (m_value "mass_defect") r.mass_defect;
  Metrics.set (m_value "boundary_condition") r.boundary_condition;
  Metrics.set (m_value "stability_margin") r.stability_margin
