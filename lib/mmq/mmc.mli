(** Classical M/M/c (Erlang-C) formulas — the reliable-servers baseline.
    When breakdowns are negligible the unreliable-server model must
    converge to these values, which the test suite exploits. *)

val erlang_c : servers:int -> offered_load:float -> float
(** Probability that an arriving job must wait, for [offered_load]
    [a = λ/µ < servers]. Computed with a numerically stable recurrence. *)

val mean_queue_length : servers:int -> lambda:float -> mu:float -> float
(** Mean number of jobs in the system (waiting + in service). *)

val mean_response_time : servers:int -> lambda:float -> mu:float -> float

val mean_waiting_time : servers:int -> lambda:float -> mu:float -> float
(** Mean time in queue, excluding service. *)

val min_servers_for_response_time :
  lambda:float -> mu:float -> target:float -> int
(** Smallest [c] with mean response time at most [target]. *)
