(** The quasi-birth-death structure of the Markov-modulated queue
    (paper §3.1): generator blocks, balance-equation coefficients and
    the characteristic matrix polynomial.

    With [s] operational modes, the transition blocks are:
    - [A]: mode changes at fixed queue size (environment moves),
    - [B = λI]: arrivals (mode-preserving),
    - [C_j]: departures at queue size [j], the diagonal matrix with
      entries [min(operative_i, j)·µ]; [C_j = C] for [j >= N].

    The balance equations read
    [v_{j−1}B + v_j(A − D^A − B − C_j) + v_{j+1}C_{j+1} = 0] with
    [D^A = diag(row sums of A)], and for [j >= N] the characteristic
    polynomial is [Q(z) = Q0 + Q1 z + Q2 z²] with [Q0 = B],
    [Q1 = A − D^A − B − C], [Q2 = C]. *)

type t

val create : env:Environment.t -> lambda:float -> mu:float -> t
(** Precomputes all blocks. Requires positive rates. *)

val env : t -> Environment.t
val lambda : t -> float
val mu : t -> float

val s : t -> int
(** Number of operational modes. *)

val a : t -> Urs_linalg.Matrix.t
(** The mode-transition block [A]. *)

val b : t -> Urs_linalg.Matrix.t
(** The arrival block [λI]. *)

val c : t -> int -> Urs_linalg.Matrix.t
(** [c t j] is the departure block [C_j]; for [j >= servers] this is the
    level-independent [C]. [c t 0] is the zero matrix. *)

val c_diag : t -> int -> Urs_linalg.Vec.t
(** The diagonal of [C_j] ([C_j] is always diagonal: departures do not
    change the operational mode). *)

val d_a : t -> Urs_linalg.Matrix.t
(** Diagonal matrix of row sums of [A]. *)

val transition_block : t -> int -> Urs_linalg.Matrix.t
(** [transition_block t j] is [T_j = A − D^A − B − C_j], the coefficient
    of [v_j] in the level-[j] balance equation. Always nonsingular (a
    strictly row-diagonally-dominant M-matrix transpose). *)

val q0 : t -> Urs_linalg.Matrix.t
val q1 : t -> Urs_linalg.Matrix.t
val q2 : t -> Urs_linalg.Matrix.t

val char_poly_at : t -> Urs_linalg.Cx.t -> Urs_linalg.Cmatrix.t
(** [Q(z)] evaluated at a complex point. *)

val det_q_scaled : t -> float -> float
(** [det Q(z)] for real [z], rescaled as
    [sign·exp(log|det|/s)] to avoid overflow — same sign and same roots
    as the determinant, used for locating the dominant eigenvalue. *)

val eigenpair_residual : t -> Urs_linalg.Cx.t -> Urs_linalg.Cvec.t -> float
(** [eigenpair_residual t z u] is [‖u·Q(z)‖∞ / ‖u‖∞] — the a-posteriori
    accuracy of a left eigenpair of the characteristic polynomial
    ([infinity] for a zero vector). Near machine epsilon for a
    well-conditioned solve; the health diagnostics flag anything
    materially larger. *)

val generator_residual : t -> Urs_linalg.Vec.t array -> int -> float
(** [generator_residual t vs j] is the infinity-norm residual of the
    level-[j] balance equation given consecutive probability vectors
    [vs = [| v_{j−1}; v_j; v_{j+1} |]] — a diagnostic used in tests. *)
