type error = Too_large of { states : int; limit : int }

let pp_error ppf (Too_large { states; limit }) =
  Format.fprintf ppf "truncated chain has %d states (limit %d)" states limit

(* sparse row-major transition structure of the uniformized chain *)
type t = {
  qbd : Qbd.t;
  levels : int;
  n_states : int;
  q_rate : float; (* uniformization rate *)
  (* CSR-like storage of P = I + Q/q_rate *)
  row_start : int array;
  col : int array;
  weight : float array;
}

type state = { mode : int; jobs : int }

let create ?(levels = 200) ?(state_limit = 20_000) q =
  let env = Qbd.env q in
  let s = Qbd.s q in
  let n_states = s * (levels + 1) in
  if n_states > state_limit then
    Error (Too_large { states = n_states; limit = state_limit })
  else begin
    let lambda = Qbd.lambda q and mu = Qbd.mu q in
    let a = Environment.transition_matrix env in
    let n_servers = Environment.servers env in
    let idx j i = (j * s) + i in
    (* collect transitions per state *)
    let transitions = Array.make n_states [] in
    let out_rate = Array.make n_states 0.0 in
    let add st dest rate =
      if rate > 0.0 then begin
        transitions.(st) <- (dest, rate) :: transitions.(st);
        out_rate.(st) <- out_rate.(st) +. rate
      end
    in
    for j = 0 to levels do
      for i = 0 to s - 1 do
        let st = idx j i in
        if j < levels then add st (idx (j + 1) i) lambda;
        let service =
          float_of_int
            (min (Environment.operative_servers env i) (min j n_servers))
          *. mu
        in
        if j > 0 then add st (idx (j - 1) i) service;
        for k = 0 to s - 1 do
          if k <> i then add st (idx j k) (Urs_linalg.Matrix.get a i k)
        done
      done
    done;
    let q_rate =
      1e-300 +. Array.fold_left Float.max 0.0 out_rate
    in
    (* build CSR with the diagonal self-loop of P *)
    let counts = Array.map (fun l -> List.length l + 1) transitions in
    let row_start = Array.make (n_states + 1) 0 in
    for st = 0 to n_states - 1 do
      row_start.(st + 1) <- row_start.(st) + counts.(st)
    done;
    let nnz = row_start.(n_states) in
    let col = Array.make nnz 0 and weight = Array.make nnz 0.0 in
    for st = 0 to n_states - 1 do
      let pos = ref row_start.(st) in
      col.(!pos) <- st;
      weight.(!pos) <- 1.0 -. (out_rate.(st) /. q_rate);
      incr pos;
      List.iter
        (fun (dest, rate) ->
          col.(!pos) <- dest;
          weight.(!pos) <- rate /. q_rate;
          incr pos)
        transitions.(st)
    done;
    Ok { qbd = q; levels; n_states; q_rate; row_start; col; weight }
  end

let check_initial t st =
  let s = Qbd.s t.qbd in
  if st.mode < 0 || st.mode >= s then
    raise (Invalid_argument "Transient: bad initial mode");
  if st.jobs < 0 || st.jobs > t.levels then
    raise (Invalid_argument "Transient: bad initial level")

let empty_all_operative t =
  let env = Qbd.env t.qbd in
  let s = Qbd.s t.qbd in
  let n = Environment.servers env in
  (* the most probable mode with all servers operative *)
  let best = ref (-1) and best_p = ref neg_infinity in
  for i = 0 to s - 1 do
    if Environment.operative_servers env i = n then begin
      let p = Environment.stationary_mode_probability env i in
      if p > !best_p then begin
        best_p := p;
        best := i
      end
    end
  done;
  { mode = !best; jobs = 0 }

(* π ← πP, using the CSR structure (row = source state) *)
let step t pi =
  let out = Array.make t.n_states 0.0 in
  for st = 0 to t.n_states - 1 do
    let p = pi.(st) in
    if p > 0.0 then
      for k = t.row_start.(st) to t.row_start.(st + 1) - 1 do
        out.(t.col.(k)) <- out.(t.col.(k)) +. (p *. t.weight.(k))
      done
  done;
  out

let distribution_at t ~initial ~time =
  check_initial t initial;
  if time < 0.0 then invalid_arg "Transient: negative time";
  let s = Qbd.s t.qbd in
  let pi0 = Array.make t.n_states 0.0 in
  pi0.((initial.jobs * s) + initial.mode) <- 1.0;
  if time = 0.0 then pi0
  else begin
    let lam = t.q_rate *. time in
    let acc = Array.make t.n_states 0.0 in
    let v = ref pi0 in
    let log_term = ref (-.lam) in
    let n = ref 0 in
    let continue_loop = ref true in
    (* truncation-depth telemetry: one sample per Poisson term, with
       the term weight as the residual figure; gated globally *)
    let conv =
      if Urs_obs.Convergence.recording () then
        Some
          (Urs_obs.Convergence.create ~solver:"uniformization"
             ~label:
               (Printf.sprintf "transient t=%g states=%d" time t.n_states)
             ())
      else None
    in
    while !continue_loop do
      let w = exp !log_term in
      if w > 0.0 then
        for st = 0 to t.n_states - 1 do
          acc.(st) <- acc.(st) +. (w *. !v.(st))
        done;
      (match conv with
      | None -> ()
      | Some c ->
          Urs_obs.Convergence.observe c ~iteration:(!n + 1) ~residual:w ());
      (* the Poisson weights peak at n ≈ lam and then decay
         super-geometrically; once past the peak and below 1e-16 the
         remaining tail is negligible (the weights sum to 1) *)
      if (float_of_int !n > lam && w < 1e-16) || !n > 2_000_000 then
        continue_loop := false
      else begin
        incr n;
        log_term := !log_term +. log (lam /. float_of_int !n);
        v := step t !v
      end
    done;
    Option.iter
      (fun c ->
        ignore
          (Urs_obs.Convergence.finish ~converged:(!n <= 2_000_000) c
            : Urs_obs.Convergence.trace))
      conv;
    acc
  end

let mean_jobs_at t ~initial ~time =
  let s = Qbd.s t.qbd in
  let pi = distribution_at t ~initial ~time in
  let acc = ref 0.0 in
  for j = 1 to t.levels do
    for i = 0 to s - 1 do
      acc := !acc +. (float_of_int j *. pi.((j * s) + i))
    done
  done;
  !acc

let mean_operative_at t ~initial ~time =
  let env = Qbd.env t.qbd in
  let s = Qbd.s t.qbd in
  let pi = distribution_at t ~initial ~time in
  let acc = ref 0.0 in
  for j = 0 to t.levels do
    for i = 0 to s - 1 do
      acc :=
        !acc
        +. (float_of_int (Environment.operative_servers env i)
           *. pi.((j * s) + i))
    done
  done;
  !acc

let level_probability_at t ~initial ~time j =
  if j < 0 || j > t.levels then 0.0
  else begin
    let s = Qbd.s t.qbd in
    let pi = distribution_at t ~initial ~time in
    let acc = ref 0.0 in
    for i = 0 to s - 1 do
      acc := !acc +. pi.((j * s) + i)
    done;
    !acc
  end

let relaxation_profile t ~initial ~times =
  List.map (fun time -> (time, mean_jobs_at t ~initial ~time)) times
