(** Transient analysis of the (level-truncated) queue by uniformization.

    The paper's solutions are steady-state only; this module computes
    the distribution at a finite time [t] from a given initial state —
    e.g. how the queue builds up after a cold start, or how long the
    system takes to approach its stationary regime. The generator is
    the same truncated chain used by {!Truncated}; the transient law is
    the Poisson-weighted mixture [Σₙ e^{−qt}(qt)ⁿ/n! · π₀Pⁿ] with
    [P = I + Q/q] (uniformization), which is numerically robust. *)

type error = Too_large of { states : int; limit : int }

val pp_error : Format.formatter -> error -> unit

type t

val create : ?levels:int -> ?state_limit:int -> Qbd.t -> (t, error) result
(** Precompute the uniformized chain. Defaults: [levels = 200],
    [state_limit = 20_000] (the transient iteration is sparse and
    cheaper than {!Truncated}'s dense solve, so the budget is larger).
    Stability is {e not} required — transient behaviour of an unstable
    queue is well-defined (and interesting). *)

type state = { mode : int; jobs : int }
(** An initial condition. *)

val empty_all_operative : t -> state
(** The canonical cold start: no jobs, every server operative in the
    phase mix given by the operative law's initial distribution — mode
    index of the first all-operative mode under stationary phase
    weights is ambiguous, so this uses the most likely all-operative
    mode. *)

val distribution_at : t -> initial:state -> time:float -> float array
(** Full state distribution at time [t] (indexed [jobs * s + mode]).
    When {!Urs_obs.Convergence.recording} is on, the Poisson-series
    truncation is recorded as a ["uniformization"] convergence trace
    (one sample per term, the term weight as the residual). *)

val mean_jobs_at : t -> initial:state -> time:float -> float
val mean_operative_at : t -> initial:state -> time:float -> float

val level_probability_at : t -> initial:state -> time:float -> int -> float

val relaxation_profile :
  t -> initial:state -> times:float list -> (float * float) list
(** [(t, L(t))] along a time grid — the approach to steady state. *)
