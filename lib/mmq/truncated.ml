module M = Urs_linalg.Matrix

type error =
  | Unstable of Stability.verdict
  | Too_large of { states : int; limit : int }
  | Numerical of string

let pp_error ppf = function
  | Unstable v ->
      Format.fprintf ppf "queue is unstable: %a" Stability.pp_verdict v
  | Too_large { states; limit } ->
      Format.fprintf ppf "truncated chain has %d states (limit %d)" states limit
  | Numerical msg -> Format.fprintf ppf "numerical failure: %s" msg

type t = {
  qbd : Qbd.t;
  levels : int;
  pi : float array; (* stationary probabilities, state = j*s + i *)
}

let solve ?(levels = 200) ?(state_limit = 4000) q =
  let env = Qbd.env q in
  let s = Qbd.s q in
  let verdict =
    Stability.check ~env ~lambda:(Qbd.lambda q) ~mu:(Qbd.mu q)
  in
  if not verdict.Stability.stable then Error (Unstable verdict)
  else begin
    let n_states = s * (levels + 1) in
    if n_states > state_limit then
      Error (Too_large { states = n_states; limit = state_limit })
    else begin
      let lambda = Qbd.lambda q and mu = Qbd.mu q in
      let a = Environment.transition_matrix env in
      let n_servers = Environment.servers env in
      let idx j i = (j * s) + i in
      (* build the transposed generator densely: column balance *)
      let g = M.create n_states n_states in
      let add_rate from_state to_state rate =
        if rate > 0.0 then begin
          M.update g to_state from_state (fun v -> v +. rate);
          M.update g from_state from_state (fun v -> v -. rate)
        end
      in
      for j = 0 to levels do
        for i = 0 to s - 1 do
          let st = idx j i in
          (* arrivals (dropped at the truncation boundary) *)
          if j < levels then add_rate st (idx (j + 1) i) lambda;
          (* departures *)
          let rate_service =
            float_of_int (min (Environment.operative_servers env i) (min j n_servers))
            *. mu
          in
          if j > 0 then add_rate st (idx (j - 1) i) rate_service;
          (* environment moves *)
          for k = 0 to s - 1 do
            if k <> i then add_rate st (idx j k) (M.get a i k)
          done
        done
      done;
      (* replace the last balance row with the normalization Σπ = 1 *)
      for c = 0 to n_states - 1 do
        M.set g (n_states - 1) c 1.0
      done;
      let rhs = Array.make n_states 0.0 in
      rhs.(n_states - 1) <- 1.0;
      match Urs_linalg.Lu.solve_system g rhs with
      | Error `Singular -> Error (Numerical "singular truncated generator")
      | Ok pi ->
          if Array.exists (fun p -> p < -1e-8) pi then
            Error (Numerical "negative probability in truncated solve")
          else Ok { qbd = q; levels; pi = Array.map (Float.max 0.0) pi }
    end
  end

let levels t = t.levels

let probability t ~mode ~jobs =
  let s = Qbd.s t.qbd in
  if mode < 0 || mode >= s then invalid_arg "Truncated.probability: bad mode";
  if jobs < 0 || jobs > t.levels then 0.0 else t.pi.((jobs * s) + mode)

let level_probability t j =
  if j < 0 || j > t.levels then 0.0
  else begin
    let s = Qbd.s t.qbd in
    let acc = ref 0.0 in
    for i = 0 to s - 1 do
      acc := !acc +. t.pi.((j * s) + i)
    done;
    !acc
  end

let mean_queue_length t =
  let acc = ref 0.0 in
  for j = 1 to t.levels do
    acc := !acc +. (float_of_int j *. level_probability t j)
  done;
  !acc

let mean_response_time t = mean_queue_length t /. Qbd.lambda t.qbd

let truncation_mass t = level_probability t t.levels
