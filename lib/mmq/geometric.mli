(** The heavy-traffic geometric approximation (paper §3.2; Mitrani 2005).

    All spectral-expansion terms except the dominant eigenvalue [z_s]
    are discarded: the queue size becomes geometric with parameter
    [z_s], independent of the operational mode, with
    [v_j = u_s/(u_s·1) (1−z_s) z_s^j] for all [j >= 0] (eq. (21)). The
    approximation is asymptotically exact as the load approaches 1, is
    far cheaper than the exact solution, and remains numerically robust
    at sizes where the exact method becomes ill-conditioned.

    [z_s] is located directly as the largest real root of [det Q(z)] in
    (0, 1) — no full eigensolve is needed. *)

type error =
  | Unstable of Stability.verdict
  | Root_not_found
      (** No sign change of [det Q] was detected in (0, 1). *)
  | Root_exhausted of { iterations : int; width : float; best : float }
      (** Brent's refinement of the bracketed root ran out of
          iterations ({!Urs_linalg.Rootfind.Exhausted}): the bracket
          was still [width] wide around the best estimate [best].
          Previously the solver silently accepted the unconverged
          guess; now the exhaustion is surfaced so {!Diagnostics} can
          turn it into a verdict. *)

val pp_error : Format.formatter -> error -> unit

type t

val solve : ?scan_points:int -> Qbd.t -> (t, error) result
(** [scan_points] controls the sign-scan resolution for locating the
    dominant root (default [400]). *)

val qbd : t -> Qbd.t

val dominant_eigenvalue : t -> float
(** The geometric parameter [z_s]. *)

val mode_weights : t -> Urs_linalg.Vec.t
(** The normalized left eigenvector [u_s/(u_s·1)] — the (approximate)
    conditional mode distribution at every queue length. *)

val probability : t -> mode:int -> jobs:int -> float
val level_probability : t -> int -> float
val tail_probability : t -> int -> float

val queue_length_quantile : t -> float -> int
(** Smallest [j] with [P(queue length <= j) >= p]; closed form
    [⌈ln(1−p)/ln z⌉ − 1]. *)

val mean_queue_length : t -> float
(** [z_s/(1−z_s)] — the mean of the geometric distribution. *)

val mean_response_time : t -> float
