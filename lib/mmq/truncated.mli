(** Brute-force oracle: truncate the queue at a finite level [J], build
    the full generator of the resulting finite CTMC ([s·(J+1)] states)
    and solve the global balance equations directly by dense LU.

    This is exponentially more expensive than spectral expansion and
    slightly biased by the truncation (arrivals at level [J] are
    dropped), but it shares {e no} code path with the structured
    solvers — the test suite uses it as an independent ground truth.
    Choose [levels] so that the tail mass {!truncation_mass} is
    negligible. *)

type error =
  | Unstable of Stability.verdict
  | Too_large of { states : int; limit : int }
      (** The truncated chain would exceed the dense-solve budget. *)
  | Numerical of string

val pp_error : Format.formatter -> error -> unit

type t

val solve : ?levels:int -> ?state_limit:int -> Qbd.t -> (t, error) result
(** [solve q] truncates at [levels] (default 200) queue levels. The
    dense solve is refused beyond [state_limit] states (default 4000). *)

val levels : t -> int

val probability : t -> mode:int -> jobs:int -> float
val level_probability : t -> int -> float
val mean_queue_length : t -> float
val mean_response_time : t -> float

val truncation_mass : t -> float
(** Probability of the highest retained level — an upper indicator of
    the truncation bias. *)
