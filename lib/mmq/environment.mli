(** The Markovian environment of the multi-server model (paper §3),
    generalized to phase-type period distributions.

    [N] servers each alternate between operative periods and inoperative
    periods. The paper assumes both are hyperexponential; this module
    accepts any (defect-free) phase-type law — hyperexponential, Erlang,
    Coxian — which only changes the environment transition matrix [A];
    the queueing solvers are unchanged. The environment state
    ("operational mode") records how many servers are in each phase:
    [X = (x₁..xₙ)], [Y = (y₁..yₘ)] with [Σx + Σy = N]. The number of
    modes is [s = C(N+n+m−1, n+m−1)] (paper, eq. (12)).

    Modes are enumerated in the paper's order: by ascending number of
    operative servers, then by lexicographically descending [X], then
    descending [Y] — so the worked example for N=2, n=2, m=1 gets
    indices 0..5 exactly as printed in §3.1. *)

type mode = { x : int array;  (** operative counts per phase *)
              y : int array  (** inoperative counts per phase *) }

type t

val create :
  servers:int ->
  operative:Urs_prob.Hyperexponential.t ->
  inoperative:Urs_prob.Hyperexponential.t ->
  t
(** The paper's model: hyperexponential periods. Requires
    [servers >= 1]. *)

val create_ph :
  ?repair_crews:int ->
  servers:int ->
  operative:Urs_prob.Phase_type.t ->
  inoperative:Urs_prob.Phase_type.t ->
  unit ->
  t
(** General phase-type periods. The initial distributions must have no
    defect (no zero-length periods); raises [Invalid_argument]
    otherwise.

    [repair_crews] bounds the number of servers that can be under
    repair simultaneously (default: unlimited, the paper's model). With
    [c] crews the inoperative-side rates are scaled by [min(y,c)/y]
    (crews shared processor-style across the [y] broken servers) — for
    exponential repairs this is exactly a [min(y,c)·η] repair rate.
    Limited crews couple the servers, so {!stationary_mode_probability}
    switches from the closed-form multinomial to a direct solve of the
    environment generator. *)

val repair_capacity : t -> int
(** Number of repair crews ([= servers] when unlimited). *)

val unlimited_repair : t -> bool

val servers : t -> int

val operative : t -> Urs_prob.Phase_type.t
(** The operative-period law, as a phase-type distribution. *)

val inoperative : t -> Urs_prob.Phase_type.t

val num_modes : t -> int
(** [s]. *)

val mode : t -> int -> mode
(** The mode with a given index; raises [Invalid_argument] out of
    range. The returned arrays are fresh copies. *)

val index_of_mode : t -> mode -> int
(** Inverse of {!mode}; raises [Not_found] for vectors that are not a
    valid mode of this environment. *)

val operative_servers : t -> int -> int
(** Number of operative servers [Σ xⱼ] in the given mode. *)

val count_modes : servers:int -> op_phases:int -> inop_phases:int -> int
(** [C(N+n+m−1, n+m−1)] without building the environment. *)

val transition_matrix : t -> Urs_linalg.Matrix.t
(** The s x s matrix [A] of environment transition rates (zero
    diagonal). For hyperexponential periods this is exactly the paper's
    eq. (9): breakdowns at rate [xⱼ ξⱼ βₖ], repairs at rate [yₖ ηₖ αⱼ].
    General phase-type laws additionally contribute within-period phase
    changes at rate [xⱼ·T(j,j')] (respectively [yₖ·T(k,k')]). *)

val stationary_mode_probability : t -> int -> float
(** Exact stationary probability of a mode. Because servers evolve
    independently, it is a multinomial over the per-server stationary
    phase probabilities (phase occupation times per renewal cycle) —
    used as a cross-check oracle for the queueing solvers. *)

val availability : t -> float
(** Long-run fraction of time a server is operative. With unlimited
    repair crews this is [(1/ξ) / (1/ξ + 1/η)] (the paper's [η/(ξ+η)]);
    with limited crews it is computed from the environment's stationary
    distribution. *)

val mean_operative_servers : t -> float
(** [N * availability]. *)

val pp_mode : Format.formatter -> mode -> unit
