let check ~servers ~offered_load =
  if servers < 1 then invalid_arg "Mmc: servers must be >= 1";
  if offered_load <= 0.0 then invalid_arg "Mmc: offered load must be positive";
  if offered_load >= float_of_int servers then
    invalid_arg "Mmc: unstable (offered load >= servers)"

(* Erlang-B by the standard recurrence, then convert to Erlang-C. *)
let erlang_c ~servers ~offered_load =
  check ~servers ~offered_load;
  let a = offered_load in
  let b = ref 1.0 in
  for k = 1 to servers do
    b := a *. !b /. (float_of_int k +. (a *. !b))
  done;
  let rho = a /. float_of_int servers in
  !b /. (1.0 -. rho +. (rho *. !b))

let mean_queue_length ~servers ~lambda ~mu =
  let a = lambda /. mu in
  check ~servers ~offered_load:a;
  let c = erlang_c ~servers ~offered_load:a in
  let rho = a /. float_of_int servers in
  (c *. rho /. (1.0 -. rho)) +. a

let mean_response_time ~servers ~lambda ~mu =
  mean_queue_length ~servers ~lambda ~mu /. lambda

let mean_waiting_time ~servers ~lambda ~mu =
  mean_response_time ~servers ~lambda ~mu -. (1.0 /. mu)

let min_servers_for_response_time ~lambda ~mu ~target =
  if target <= 1.0 /. mu then
    invalid_arg "Mmc.min_servers_for_response_time: target below service time";
  let rec go c =
    if c > 1_000_000 then invalid_arg "Mmc.min_servers_for_response_time: no c found"
    else if
      float_of_int c > lambda /. mu
      && mean_response_time ~servers:c ~lambda ~mu <= target
    then c
    else go (c + 1)
  in
  go 1
