module H = Urs_prob.Hyperexponential
module Ph = Urs_prob.Phase_type
module M = Urs_linalg.Matrix

type mode = { x : int array; y : int array }

(* one side (operative or inoperative) of the alternating renewal
   process, in phase-type form *)
type side = {
  alpha : float array; (* initial phase distribution (no defect) *)
  t_matrix : M.t; (* sub-generator *)
  exit_rates : float array; (* absorption rate per phase *)
  occupation : float array; (* α(−T)⁻¹: mean time per phase per period *)
  mean : float;
}

type t = {
  servers : int;
  repair_capacity : int; (* crews; = servers means unlimited (the paper) *)
  op : side;
  inop : side;
  op_ph : Ph.t;
  inop_ph : Ph.t;
  modes : mode array;
  index : (int array * int array, int) Hashtbl.t;
}

let side_of_ph name ph =
  let alpha = Ph.alpha ph in
  let mass = Array.fold_left ( +. ) 0.0 alpha in
  if abs_float (mass -. 1.0) > 1e-9 then
    invalid_arg
      (Printf.sprintf
         "Environment: %s phase-type law has an initial defect (zero-length \
          periods are not allowed)"
         name);
  let t_matrix = Ph.t_matrix ph in
  let k = Ph.phases ph in
  let exit_rates =
    Array.init k (fun i ->
        let row = ref 0.0 in
        for j = 0 to k - 1 do
          row := !row +. M.get t_matrix i j
        done;
        Float.max 0.0 (-. !row))
  in
  (* α(−T)⁻¹ : solve yᵀ(−T) = α  ⇔  (−T)ᵀ y = αᵀ *)
  let neg_t = M.scale (-1.0) t_matrix in
  let occupation =
    match Urs_linalg.Lu.factor neg_t with
    | Error `Singular -> invalid_arg "Environment: singular sub-generator"
    | Ok f -> Urs_linalg.Lu.solve_transposed f alpha
  in
  {
    alpha;
    t_matrix;
    exit_rates;
    occupation;
    mean = Urs_linalg.Vec.sum occupation;
  }

(* all compositions of [total] into [parts] nonnegative integers, in
   lexicographically descending order *)
let rec compositions total parts =
  if parts = 0 then if total = 0 then [ [] ] else []
  else
    List.concat_map
      (fun first ->
        List.map (fun rest -> first :: rest) (compositions (total - first) (parts - 1)))
      (List.init (total + 1) (fun i -> total - i))

let enumerate_modes n_servers n m =
  (* ascending operative count; within a count, descending lex on x then y *)
  List.concat_map
    (fun ops ->
      List.concat_map
        (fun x ->
          List.map
            (fun y -> { x = Array.of_list x; y = Array.of_list y })
            (compositions (n_servers - ops) m))
        (compositions ops n))
    (List.init (n_servers + 1) (fun i -> i))
  |> Array.of_list

let create_ph ?repair_crews ~servers ~operative ~inoperative () =
  if servers < 1 then invalid_arg "Environment.create: servers must be >= 1";
  let repair_capacity =
    match repair_crews with
    | None -> servers
    | Some c ->
        if c < 1 then invalid_arg "Environment.create: repair_crews must be >= 1";
        min c servers
  in
  let op = side_of_ph "operative" operative in
  let inop = side_of_ph "inoperative" inoperative in
  let n = Ph.phases operative and m = Ph.phases inoperative in
  let modes = enumerate_modes servers n m in
  let index = Hashtbl.create (Array.length modes) in
  Array.iteri (fun i md -> Hashtbl.replace index (md.x, md.y) i) modes;
  { servers; repair_capacity; op; inop; op_ph = operative;
    inop_ph = inoperative; modes; index }

let create ~servers ~operative ~inoperative =
  create_ph ~servers
    ~operative:(Ph.of_hyperexponential operative)
    ~inoperative:(Ph.of_hyperexponential inoperative)
    ()

let repair_capacity t = t.repair_capacity

let unlimited_repair t = t.repair_capacity >= t.servers

let servers t = t.servers

let operative t = t.op_ph

let inoperative t = t.inop_ph

let num_modes t = Array.length t.modes

let mode t i =
  if i < 0 || i >= num_modes t then invalid_arg "Environment.mode: bad index";
  let md = t.modes.(i) in
  { x = Array.copy md.x; y = Array.copy md.y }

let index_of_mode t md =
  match Hashtbl.find_opt t.index (md.x, md.y) with
  | Some i -> i
  | None -> raise Not_found

let operative_servers t i =
  if i < 0 || i >= num_modes t then
    invalid_arg "Environment.operative_servers: bad index";
  Array.fold_left ( + ) 0 t.modes.(i).x

let count_modes ~servers ~op_phases ~inop_phases =
  (* C(N + n + m - 1, n + m - 1) *)
  let k = op_phases + inop_phases - 1 in
  let n = servers + k in
  let acc = ref 1.0 in
  for i = 1 to k do
    acc := !acc *. float_of_int (n - k + i) /. float_of_int i
  done;
  int_of_float (Float.round !acc)

let transition_matrix t =
  let s = num_modes t in
  let n = Array.length t.op.alpha and m = Array.length t.inop.alpha in
  let a = M.create s s in
  let add i dest rate = if rate > 0.0 then M.update a i dest (fun v -> v +. rate) in
  for i = 0 to s - 1 do
    let md = t.modes.(i) in
    for j = 0 to n - 1 do
      if md.x.(j) > 0 then begin
        let xj = float_of_int md.x.(j) in
        (* within-operative phase changes (zero for hyperexponential) *)
        for j' = 0 to n - 1 do
          if j' <> j then begin
            let rate = xj *. M.get t.op.t_matrix j j' in
            if rate > 0.0 then begin
              let x' = Array.copy md.x in
              x'.(j) <- x'.(j) - 1;
              x'.(j') <- x'.(j') + 1;
              add i (Hashtbl.find t.index (x', md.y)) rate
            end
          end
        done;
        (* breakdowns: operative phase j -> inoperative phase k *)
        if t.op.exit_rates.(j) > 0.0 then
          for k = 0 to m - 1 do
            let rate = xj *. t.op.exit_rates.(j) *. t.inop.alpha.(k) in
            if rate > 0.0 then begin
              let x' = Array.copy md.x and y' = Array.copy md.y in
              x'.(j) <- x'.(j) - 1;
              y'.(k) <- y'.(k) + 1;
              add i (Hashtbl.find t.index (x', y')) rate
            end
          done
      end
    done;
    let y_total = Array.fold_left ( + ) 0 md.y in
    (* with c repair crews shared (processor-sharing) across the broken
       servers, every inoperative-side rate is scaled by min(y,c)/y;
       for exponential repairs this is exactly min(y,c)·η *)
    let crew_factor =
      if y_total = 0 then 1.0
      else
        float_of_int (min y_total t.repair_capacity) /. float_of_int y_total
    in
    for k = 0 to m - 1 do
      if md.y.(k) > 0 then begin
        let yk = crew_factor *. float_of_int md.y.(k) in
        (* within-inoperative phase changes *)
        for k' = 0 to m - 1 do
          if k' <> k then begin
            let rate = yk *. M.get t.inop.t_matrix k k' in
            if rate > 0.0 then begin
              let y' = Array.copy md.y in
              y'.(k) <- y'.(k) - 1;
              y'.(k') <- y'.(k') + 1;
              add i (Hashtbl.find t.index (md.x, y')) rate
            end
          end
        done;
        (* repairs: inoperative phase k -> operative phase j *)
        if t.inop.exit_rates.(k) > 0.0 then
          for j = 0 to n - 1 do
            let rate = yk *. t.inop.exit_rates.(k) *. t.op.alpha.(j) in
            if rate > 0.0 then begin
              let x' = Array.copy md.x and y' = Array.copy md.y in
              y'.(k) <- y'.(k) - 1;
              x'.(j) <- x'.(j) + 1;
              add i (Hashtbl.find t.index (x', y')) rate
            end
          done
      end
    done
  done;
  a

(* stationary distribution of the environment chain by direct solve of
   π(A − D^A) = 0 with normalization; needed when limited repair
   capacity couples the servers *)
let stationary_distribution_solved t =
  let s = num_modes t in
  let a = transition_matrix t in
  let g = M.create s s in
  (* gᵀ with the last balance equation replaced by normalization *)
  for i = 0 to s - 1 do
    let row_sum = ref 0.0 in
    for j = 0 to s - 1 do
      row_sum := !row_sum +. M.get a i j
    done;
    for j = 0 to s - 1 do
      if j < s - 1 then
        M.set g j i (if i = j then M.get a i j -. !row_sum else M.get a i j)
    done;
    M.set g (s - 1) i 1.0
  done;
  let rhs = Array.make s 0.0 in
  rhs.(s - 1) <- 1.0;
  match Urs_linalg.Lu.solve_system g rhs with
  | Ok pi -> Array.map (Float.max 0.0) pi
  | Error `Singular ->
      invalid_arg "Environment: singular environment generator"

let availability t =
  if unlimited_repair t then t.op.mean /. (t.op.mean +. t.inop.mean)
  else begin
    let pi = stationary_distribution_solved t in
    let acc = ref 0.0 in
    for i = 0 to num_modes t - 1 do
      acc := !acc +. (pi.(i) *. float_of_int (operative_servers t i))
    done;
    !acc /. float_of_int t.servers
  end

let mean_operative_servers t = float_of_int t.servers *. availability t

(* Per-server stationary phase probabilities: the chance of finding a
   given server in operative phase j at a random time is proportional to
   the mean occupation time of phase j per renewal cycle. *)
let phase_probabilities t =
  let cycle = t.op.mean +. t.inop.mean in
  let p_op = Array.map (fun occ -> occ /. cycle) t.op.occupation in
  let p_inop = Array.map (fun occ -> occ /. cycle) t.inop.occupation in
  (p_op, p_inop)

let log_factorial n =
  let acc = ref 0.0 in
  for i = 2 to n do
    acc := !acc +. log (float_of_int i)
  done;
  !acc

let stationary_mode_probability t i =
  if i < 0 || i >= num_modes t then
    invalid_arg "Environment.stationary_mode_probability: bad index";
  if not (unlimited_repair t) then (stationary_distribution_solved t).(i)
  else begin
  let md = t.modes.(i) in
  let p_op, p_inop = phase_probabilities t in
  (* multinomial: N! / (Π xⱼ! Π yₖ!) Π p^x Π p^y *)
  let log_p = ref (log_factorial t.servers) in
  Array.iteri
    (fun j c ->
      log_p := !log_p -. log_factorial c;
      if c > 0 then log_p := !log_p +. (float_of_int c *. log p_op.(j)))
    md.x;
  Array.iteri
    (fun k c ->
      log_p := !log_p -. log_factorial c;
      if c > 0 then log_p := !log_p +. (float_of_int c *. log p_inop.(k)))
    md.y;
  exp !log_p
  end

let pp_mode ppf md =
  Format.fprintf ppf "X=(%s) Y=(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int md.x)))
    (String.concat "," (Array.to_list (Array.map string_of_int md.y)))
