(** Self-diagnosis: exact-vs-simulation-vs-approximation cross-checks
    on a grid of paper models, folded into one
    {!Urs_mmq.Diagnostics.verdict}.

    Backs the [urs doctor] subcommand and the [/healthz] endpoint of
    [urs serve]. A run evaluates each grid model with the spectral
    method, scores every a-posteriori probe
    ({!Urs_mmq.Diagnostics.check_spectral}), then cross-validates the
    mean queue length against the matrix-geometric solver (exact, tight
    tolerance), the geometric approximation (loose tolerance) and a
    fixed-seed simulation (confidence-band tolerance). *)

type check = {
  name : string;  (** e.g. ["N=5 lambda=4 spectral"]. *)
  value : float;  (** The probe value (residual, relative delta, ...). *)
  detail : string;  (** Human-readable probe summary. *)
  verdict : Urs_mmq.Diagnostics.verdict;
}

type report = { checks : check list; verdict : Urs_mmq.Diagnostics.verdict }

val run :
  ?quick:bool ->
  ?thresholds:Urs_mmq.Diagnostics.thresholds ->
  ?pool:Urs_exec.Pool.t ->
  unit ->
  report
(** Run the cross-checks. [quick] (default [false]) restricts the grid
    to the single N=5, λ=4 paper model with a short simulation — a few
    seconds, suitable for CI smoke. The full run covers N=5/10/12 with
    longer simulations. When [pool] is given the grid models are
    checked on it concurrently (and each model's simulation
    replications nest on the same pool); the report is identical to a
    sequential run.

    Updates the [urs_health_status{component="doctor"}] gauge and
    appends a ["doctor.run"] record to the active ledger. *)

val verdict : report -> Urs_mmq.Diagnostics.verdict

val check_model :
  ?thresholds:Urs_mmq.Diagnostics.thresholds ->
  ?sim:Solver.sim_options ->
  ?pool:Urs_exec.Pool.t ->
  Model.t ->
  check list
(** Cross-check one model; [sim] enables the simulation comparison. *)

val check_warmup :
  ?thresholds:Urs_mmq.Diagnostics.thresholds ->
  ?pool:Urs_exec.Pool.t ->
  sim:Solver.sim_options ->
  Model.t ->
  check list
(** Warm-up (initial transient) analysis of one model: a short batch of
    warmup-less replications records mean-jobs trajectories into a
    private timeline registry; the replication-averaged trajectory is
    fed to Welch's truncation rule — checked against the warmup the
    [sim] options imply (0.1 × duration) — and cross-checked against
    the uniformization transient expectation
    ({!Urs_mmq.Transient.mean_jobs_at}) at several time points. Returns
    the ["... warmup"] and ["... sim-vs-transient"] checks; {!run}
    includes them for the N=5 paper model. *)

val check_convergence_stage :
  ?thresholds:Urs_mmq.Diagnostics.thresholds ->
  ?qr_max_iter:int ->
  Model.t ->
  check list
(** Convergence audit of one model: re-solve it with every iterative
    method (spectral QR, matrix-geometric R fixed point, geometric
    approximation's Brent refinement) under
    {!Urs_obs.Convergence.with_recording} and grade each finished
    iteration trace with {!Urs_mmq.Diagnostics.check_convergence} —
    iteration-cap proximity, non-monotone deflation, residual
    stagnation, slow linear contraction. One ["... conv/<solver>"]
    check per trace, plus a suspect check when the spectral solve
    itself fails. [qr_max_iter] lowers the QR sweep budget (tests use
    it to force a stall). {!run} includes this stage for the N=5 paper
    model. *)

val check_slo_stage : unit -> check list
(** SLO-engine drill: replay an hour of synthetic traffic through
    {!Urs_obs.Slo} engines on private registries under a fake clock —
    healthy and deliberately breached workloads for both SLI kinds
    (error-rate and latency) — and verify the healthy drills stay
    quiet while the breached ones alarm. Four ["slo ..."] checks;
    {!run} includes them just before the perf-drift stage. *)

val check_perf_drift_stage : unit -> check list
(** Change-point-detector drill behind [urs report --detect]: seeded
    synthetic perf series with known answers — i.i.d. lognormal noise
    around a stable baseline must stay quiet, and the same noise with
    an injected 2x step must flag within a few runs of the injection
    with a sane magnitude estimate. Three ["perf-drift ..."] checks;
    {!run} includes them as its final stage. *)

val paper_model : servers:int -> lambda:float -> Model.t
(** The §4 paper model: service rate 1, fitted H2 operative periods,
    exponential (η = 25) inoperative periods. *)

val pp_check : Format.formatter -> check -> unit
val pp_report : Format.formatter -> report -> unit
