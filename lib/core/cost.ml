type params = { holding : float; server : float }

let paper_params = { holding = 4.0; server = 1.0 }

let of_performance p ~servers perf =
  (p.holding *. perf.Solver.mean_jobs) +. (p.server *. float_of_int servers)

let evaluate_range ?strategy model p ~n_min ~n_max =
  if n_min < 1 || n_max < n_min then invalid_arg "Cost.evaluate_range: bad range";
  List.filter_map
    (fun n ->
      let m = Model.with_servers model n in
      match Solver.evaluate ?strategy m with
      | Ok perf -> Some (n, of_performance p ~servers:n perf)
      | Error _ -> None)
    (List.init (n_max - n_min + 1) (fun i -> n_min + i))

let optimal_servers ?strategy ?(n_max = 200) model p =
  (* start at the smallest stable N *)
  let rec first_stable n =
    if n > n_max then None
    else if (Model.stability (Model.with_servers model n)).Urs_mmq.Stability.stable
    then Some n
    else first_stable (n + 1)
  in
  match first_stable 1 with
  | None ->
      Error
        (Solver.Unstable (Model.stability (Model.with_servers model n_max)))
  | Some n0 ->
      let rec search n best rising last_err =
        if n > n_max || rising >= 3 then
          match best with
          | Some (bn, bc) -> Ok (bn, bc)
          | None -> (
              match last_err with
              | Some e -> Error e
              | None -> Error (Solver.Solver_failure "no stable configuration"))
        else
          let m = Model.with_servers model n in
          match Solver.evaluate ?strategy m with
          | Error e -> search (n + 1) best rising (Some e)
          | Ok perf ->
              let c = of_performance p ~servers:n perf in
              let better =
                match best with None -> true | Some (_, bc) -> c < bc
              in
              if better then search (n + 1) (Some (n, c)) 0 last_err
              else search (n + 1) best (rising + 1) last_err
      in
      search n0 None 0 None
