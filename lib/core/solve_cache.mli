(** Content-addressed memoization of {!Solver.evaluate}.

    Every evaluation method in this repository is a deterministic
    function of the model parameters and the strategy (simulation
    included — its seed is part of {!Solver.sim_options}), so a solve
    can be keyed by a canonical, {e exact} rendering of
    (model, strategy) and reused. Sweeps and cost/capacity searches
    revisit the same points constantly — Figure 5 alone evaluates each
    (N, λ) model twice, once for the cost table and once inside the
    optimal-server search.

    Cache hits return the memoized result without re-recording solver
    metrics, spans or ledger entries (the original solve already did);
    the [urs_cache_*_total{cache="solve"}] counters account for the
    skipped work. The cache is mutex-guarded and shared freely across
    pool domains. *)

type t

val create : ?capacity:int -> unit -> t
(** LRU-bounded at [capacity] entries (default [1024]). *)

val key : Solver.strategy -> Model.t -> string
(** The canonical cache key: every float is rendered in lossless hex
    ([%h]), so distinct parameters never collide and equal parameters
    always share. *)

val evaluate :
  ?pool:Urs_exec.Pool.t ->
  ?cache:t ->
  ?strategy:Solver.strategy ->
  Model.t ->
  (Solver.performance, Solver.error) result
(** Like {!Solver.evaluate}, consulting [cache] first when given.
    Errors are memoized too (an unstable model stays unstable). *)

val evaluate_info :
  ?pool:Urs_exec.Pool.t ->
  ?cache:t ->
  ?strategy:Solver.strategy ->
  Model.t ->
  (Solver.performance, Solver.error) result * bool
(** {!evaluate} plus whether the lookup hit the cache ([false] without
    one) — the [POST /solve] route annotates its response with it. The
    result is bit-identical to {!evaluate}; only the flag is added. *)

val length : t -> int

val clear : t -> unit
