(* Cross-checks the four evaluation methods against each other on a
   small grid of paper models and folds every numerical-health probe
   into one verdict. This is what `urs doctor` runs and what the
   /healthz endpoint of `urs serve` reports. *)

module Mq = Urs_mmq
module Diagnostics = Urs_mmq.Diagnostics
module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Ledger = Urs_obs.Ledger
module Json = Urs_obs.Json

type check = {
  name : string;
  value : float;
  detail : string;
  verdict : Diagnostics.verdict;
}

type report = { checks : check list; verdict : Diagnostics.verdict }

let verdict r = r.verdict

let paper_model ~servers ~lambda =
  Model.create ~servers ~arrival_rate:lambda ~service_rate:1.0
    ~operative:Model.paper_operative ~inoperative:Model.paper_inoperative_exp
    ()

(* the approximation is only asymptotically exact as load -> 1, and its
   error grows roughly with the distance from saturation; grade against
   a band proportional to (1 - utilization) — loose enough for honest
   low-load error, tight enough to catch sign errors and unit mix-ups *)
let grade_approx ~label ~utilization delta =
  let band = Float.max 0.2 (3.0 *. (1.0 -. utilization)) in
  if Float.is_nan delta then
    Diagnostics.Suspect [ label ^ ": non-finite approximation delta" ]
  else if delta > 3.0 *. band then
    Diagnostics.Suspect
      [ Printf.sprintf "%s: approximation off by %.0f%%" label (100. *. delta) ]
  else if delta > band then
    Diagnostics.Degraded
      [ Printf.sprintf "%s: approximation off by %.0f%%" label (100. *. delta) ]
  else Diagnostics.Ok

let check_model ?thresholds ?sim ?pool model =
  let name =
    Printf.sprintf "N=%d lambda=%g" model.Model.servers
      model.Model.arrival_rate
  in
  Span.with_ ~name:"urs_doctor_model" ~labels:[ ("model", name) ]
  @@ fun () ->
  match Model.qbd model with
  | None ->
      [
        {
          name;
          value = nan;
          detail = "not phase-type";
          verdict = Diagnostics.Suspect [ name ^ ": model not phase-type" ];
        };
      ]
  | Some q -> (
      match Mq.Spectral.solve q with
      | Error e ->
          let msg = Format.asprintf "%a" Mq.Spectral.pp_error e in
          [
            {
              name = name ^ " spectral";
              value = nan;
              detail = msg;
              verdict = Diagnostics.Suspect [ name ^ ": " ^ msg ];
            };
          ]
      | Ok sol ->
          let rep = Diagnostics.check_spectral ?thresholds sol in
          Diagnostics.observe_spectral rep;
          let exact_l = Mq.Spectral.mean_queue_length sol in
          let spectral_check =
            {
              name = name ^ " spectral";
              value = rep.Diagnostics.balance_residual;
              detail = Format.asprintf "%a" Diagnostics.pp_spectral_report rep;
              verdict = rep.Diagnostics.verdict;
            }
          in
          let mg_check =
            match Mq.Matrix_geometric.solve q with
            | Error e ->
                let msg = Format.asprintf "%a" Mq.Matrix_geometric.pp_error e in
                {
                  name = name ^ " exact-vs-mg";
                  value = nan;
                  detail = msg;
                  verdict = Diagnostics.Suspect [ name ^ " mg: " ^ msg ];
                }
            | Ok mg ->
                let d, v =
                  Diagnostics.check_exact_pair ?thresholds
                    ~label:(name ^ ": spectral vs matrix-geometric L")
                    exact_l
                    (Mq.Matrix_geometric.mean_queue_length mg)
                in
                {
                  name = name ^ " exact-vs-mg";
                  value = d;
                  detail = Printf.sprintf "relative delta %.2e" d;
                  verdict = v;
                }
          in
          let approx_check =
            match Mq.Geometric.solve q with
            | Error e ->
                let msg = Format.asprintf "%a" Mq.Geometric.pp_error e in
                {
                  name = name ^ " exact-vs-approx";
                  value = nan;
                  detail = msg;
                  verdict = Diagnostics.Suspect [ name ^ " approx: " ^ msg ];
                }
            | Ok g ->
                let d =
                  Diagnostics.relative_delta exact_l
                    (Mq.Geometric.mean_queue_length g)
                in
                {
                  name = name ^ " exact-vs-approx";
                  value = d;
                  detail = Printf.sprintf "relative delta %.2e" d;
                  verdict =
                    grade_approx ~label:name
                      ~utilization:
                        (Model.stability model).Mq.Stability.utilization d;
                }
          in
          let sim_checks =
            match sim with
            | None -> []
            | Some opts -> (
                match
                  Solver.evaluate ?pool ~strategy:(Solver.Simulation opts)
                    model
                with
                | Error e ->
                    let msg = Format.asprintf "%a" Solver.pp_error e in
                    [
                      {
                        name = name ^ " exact-vs-sim";
                        value = nan;
                        detail = msg;
                        verdict = Diagnostics.Suspect [ name ^ " sim: " ^ msg ];
                      };
                    ]
                | Ok perf ->
                    let hw =
                      Option.value perf.Solver.confidence_half_width
                        ~default:infinity
                    in
                    let d, v =
                      Diagnostics.check_simulation_agreement ?thresholds
                        ~label:(name ^ ": simulated L") ~exact:exact_l
                        ~estimate:perf.Solver.mean_jobs ~half_width:hw ()
                    in
                    let rel_ci, v_ci =
                      Diagnostics.check_ci ?thresholds
                        ~label:(name ^ ": simulated L")
                        ~estimate:perf.Solver.mean_jobs ~half_width:hw ()
                    in
                    [
                      {
                        name = name ^ " exact-vs-sim";
                        value = d;
                        detail =
                          Printf.sprintf "relative delta %.2e (CI ±%.3g)" d hw;
                        verdict = v;
                      };
                      {
                        name = name ^ " sim-ci";
                        value = rel_ci;
                        detail =
                          Printf.sprintf "relative CI half-width %.2e" rel_ci;
                        verdict = v_ci;
                      };
                    ])
          in
          spectral_check :: mg_check :: approx_check :: sim_checks)

(* ---- warm-up (initial transient) analysis ----

   A dedicated short batch of warmup-less replications of the N=5 paper
   model records mean-jobs trajectories into a private timeline registry
   (private so a concurrent doctor grid on the same pool cannot
   interleave same-keyed series). The replication-averaged trajectory
   feeds Welch's truncation rule — is the warmup the sim checks actually
   use long enough? — and is cross-checked against the uniformization
   transient expectation at a handful of time points. *)

let warmup_horizon = 2_000.0
let warmup_replications = 16
let warmup_capacity = 200
let warmup_seed = 11

(* Welch band: replication-averaged trajectories over a handful of short
   runs carry a few percent of noise even once settled; 5% would trip on
   noise, 10% detects the real ramp reliably *)
let warmup_tolerance = 0.1

let avg_trajectories trajs =
  let len = List.fold_left (fun m a -> max m (Array.length a)) 0 trajs in
  Array.init len (fun i ->
      let sum = ref 0.0 and cnt = ref 0 in
      List.iter
        (fun a ->
          if i < Array.length a && Float.is_finite a.(i) then begin
            sum := !sum +. a.(i);
            incr cnt
          end)
        trajs;
      if !cnt > 0 then !sum /. float_of_int !cnt else nan)

let check_warmup ?thresholds ?pool ~sim model =
  let name =
    Printf.sprintf "N=%d lambda=%g" model.Model.servers
      model.Model.arrival_rate
  in
  let registry = Urs_obs.Timeline.create () in
  let cfg =
    {
      Urs_sim.Server_farm.servers = model.Model.servers;
      lambda = model.Model.arrival_rate;
      mu = model.Model.service_rate;
      operative = model.Model.operative;
      inoperative = model.Model.inoperative;
      repair_crews = model.Model.repair_crews;
    }
  in
  let (_ : Urs_sim.Replicate.summary) =
    Span.with_ ~name:"urs_doctor_warmup" (fun () ->
        Urs_sim.Replicate.run ?pool ~seed:warmup_seed
          ~replications:warmup_replications ~warmup:0.0
          ~timeline_registry:registry ~timeline_capacity:warmup_capacity
          ~duration:warmup_horizon cfg)
  in
  let snaps =
    Urs_obs.Timeline.snapshot ~registry ~name:"urs_sim_jobs" ()
  in
  let width =
    match snaps with
    | s :: _ -> s.Urs_obs.Timeline.width
    | [] -> warmup_horizon /. float_of_int warmup_capacity
  in
  let avg = avg_trajectories (List.map Urs_obs.Timeline.mean_array snaps) in
  let truncation =
    Option.map
      (fun i -> float_of_int i *. width)
      (Urs_stats.Welch.truncation_index ~tolerance:warmup_tolerance avg)
  in
  (* warmup the actual sim checks use: Server_farm's 0.1 * duration *)
  let sim_warmup = 0.1 *. sim.Solver.duration in
  let warmup_check =
    {
      name = name ^ " warmup";
      value = (match truncation with Some t -> t | None -> nan);
      detail =
        (match truncation with
        | Some t ->
            Printf.sprintf
              "Welch truncation at t=%.0f (sim warmup %.0f, horizon %.0f)" t
              sim_warmup warmup_horizon
        | None ->
            Printf.sprintf "no settling within the %.0f-unit horizon"
              warmup_horizon);
      verdict =
        Diagnostics.check_warmup ?thresholds ~label:(name ^ ": warm-up")
          ~warmup:sim_warmup ~horizon:warmup_horizon truncation;
    }
  in
  let transient_check =
    let fail detail verdict = { name = name ^ " sim-vs-transient"; value = nan; detail; verdict } in
    match Model.qbd model with
    | None ->
        fail "not phase-type"
          (Diagnostics.Degraded [ name ^ ": transient check needs phase-type" ])
    | Some q -> (
        match Mq.Transient.create q with
        | Error e ->
            let msg = Format.asprintf "%a" Mq.Transient.pp_error e in
            fail msg (Diagnostics.Degraded [ name ^ " transient: " ^ msg ])
        | Ok tr ->
            let initial = Mq.Transient.empty_all_operative tr in
            (* uniformization cost grows linearly with t (the Poisson
               series needs ~q·t terms), so the cross-check covers the
               initial ramp — the regime where the transient solution
               actually differs from steady state; late-time agreement
               is already covered by the exact-vs-sim check *)
            let pairs =
              List.filter_map
                (fun i ->
                  if i < Array.length avg && Float.is_finite avg.(i) then begin
                    let time = (float_of_int i +. 0.5) *. width in
                    Some
                      ( time,
                        avg.(i),
                        Mq.Transient.mean_jobs_at tr ~initial ~time )
                  end
                  else None)
                [ 0; 1; 2; 3; 4 ]
            in
            let worst, verdict =
              Diagnostics.check_transient_trajectory ?thresholds
                ~label:(name ^ ": L(t) vs uniformization")
                pairs
            in
            {
              name = name ^ " sim-vs-transient";
              value = worst;
              detail =
                Printf.sprintf
                  "worst relative delta %.2g over %d trajectory points" worst
                  (List.length pairs);
              verdict;
            })
  in
  [ warmup_check; transient_check ]

(* ---- memory stage ----

   The N=5 λ=4 spectral solve re-runs under the runtime probe: the
   quick-stat delta yields the top-heap high-water mark, and — when the
   runtime has eventring support — the Runtime_events consumer yields
   GC slices, from which we take the longest major-collection pause
   overlapping the probed solve window. Both are graded by
   [Diagnostics.check_memory]. The stage starts the consumer only if
   nobody else did (e.g. the CLI's [--profile-gc]) and stops only what
   it started. *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let major_pause_phase phase =
  (* runtime_phase_name: "major", "major_slice", "major_gc_stw",
     "explicit_gc_full_major", ... — anything touching the major heap
     or an explicit-GC entry point counts as a pause candidate *)
  starts_with ~prefix:"major" phase || starts_with ~prefix:"explicit" phase

let check_memory_stage ?thresholds model =
  let name =
    Printf.sprintf "N=%d lambda=%g" model.Model.servers
      model.Model.arrival_rate
  in
  match Model.qbd model with
  | None ->
      [
        {
          name = name ^ " memory";
          value = nan;
          detail = "not phase-type";
          verdict = Diagnostics.Degraded [ name ^ ": memory stage needs phase-type" ];
        };
      ]
  | Some q ->
      let started = Urs_obs.Runtime.start_events () in
      Fun.protect
        ~finally:(fun () -> if started then Urs_obs.Runtime.stop_events ())
        (fun () ->
          let t0 = Span.now () in
          let res, delta =
            Urs_obs.Runtime.probe ~label:"doctor.memory" (fun () ->
                Span.with_ ~name:"urs_doctor_memory" (fun () ->
                    Mq.Spectral.solve q))
          in
          let t1 = Span.now () in
          let worst_pause =
            List.fold_left
              (fun acc (s : Urs_obs.Runtime.slice) ->
                let s0 = s.Urs_obs.Runtime.start_s in
                let s1 = s0 +. s.Urs_obs.Runtime.duration_s in
                if
                  major_pause_phase s.Urs_obs.Runtime.phase
                  && s1 > t0 && s0 < t1
                then
                  match acc with
                  | Some w when w >= s.Urs_obs.Runtime.duration_s -> acc
                  | _ -> Some s.Urs_obs.Runtime.duration_s
                else acc)
              None
              (Urs_obs.Runtime.gc_slices ())
          in
          match res with
          | Error e ->
              let msg = Format.asprintf "%a" Mq.Spectral.pp_error e in
              [
                {
                  name = name ^ " memory";
                  value = nan;
                  detail = msg;
                  verdict = Diagnostics.Suspect [ name ^ " memory: " ^ msg ];
                };
              ]
          | Ok _ ->
              let top =
                float_of_int delta.Urs_obs.Runtime.top_heap_words_after
              in
              [
                {
                  name = name ^ " memory";
                  value = top;
                  detail =
                    Printf.sprintf
                      "top heap %.3g words, %.3g minor words allocated, \
                       worst major pause %s (events %s)"
                      top delta.Urs_obs.Runtime.d_minor_words
                      (match worst_pause with
                      | Some p -> Printf.sprintf "%.3g s" p
                      | None -> "none observed")
                      (if started || Urs_obs.Runtime.events_running () then
                         "on"
                       else "unavailable");
                  verdict =
                    Diagnostics.check_memory ?thresholds
                      ~label:(name ^ ": memory") ~top_heap_words:top
                      ~worst_pause ();
                };
              ])

(* ---- convergence stage ----

   The N=5 λ=4 paper model is re-solved by every iterative method under
   {!Urs_obs.Convergence.with_recording}; each finished iteration trace
   (QR sweeps, matrix-geometric R fixed point, Brent root refinement)
   is graded by [Diagnostics.check_convergence] — iteration-cap
   proximity, non-monotone deflation, residual stagnation, slow linear
   contraction. [qr_max_iter] exists so tests (and the curious) can
   lower the QR sweep budget and watch the stage go suspect. *)

let check_convergence_stage ?thresholds ?qr_max_iter model =
  let name =
    Printf.sprintf "N=%d lambda=%g" model.Model.servers
      model.Model.arrival_rate
  in
  match Model.qbd model with
  | None ->
      [
        {
          name = name ^ " conv";
          value = nan;
          detail = "not phase-type";
          verdict =
            Diagnostics.Degraded [ name ^ ": convergence stage needs phase-type" ];
        };
      ]
  | Some q ->
      let spectral_res, traces =
        Urs_obs.Convergence.with_recording (fun () ->
            Span.with_ ~name:"urs_doctor_convergence"
              ~labels:[ ("model", name) ]
              (fun () ->
                let sp = Mq.Spectral.solve ?max_iter:qr_max_iter q in
                (match Mq.Matrix_geometric.solve q with
                | Ok _ | Error _ -> ());
                (match Mq.Geometric.solve q with Ok _ | Error _ -> ());
                sp))
      in
      let error_checks =
        match spectral_res with
        | Ok _ -> []
        | Error e ->
            let msg = Format.asprintf "%a" Mq.Spectral.pp_error e in
            [
              {
                name = name ^ " conv/spectral";
                value = nan;
                detail = msg;
                verdict = Diagnostics.Suspect [ name ^ " conv: " ^ msg ];
              };
            ]
      in
      let trace_checks =
        List.map
          (fun (tr : Urs_obs.Convergence.trace) ->
            let check_name =
              name ^ " conv/" ^ tr.Urs_obs.Convergence.solver
            in
            let value, verdict =
              Diagnostics.check_convergence ?thresholds ~label:check_name tr
            in
            {
              name = check_name;
              value;
              detail = Format.asprintf "%a" Urs_obs.Convergence.pp_trace tr;
              verdict;
            })
          traces
      in
      let empty_check =
        if trace_checks = [] then
          [
            {
              name = name ^ " conv";
              value = nan;
              detail = "no convergence traces recorded";
              verdict =
                Diagnostics.Degraded
                  [ name ^ ": no convergence traces recorded" ];
            };
          ]
        else []
      in
      error_checks @ trace_checks @ empty_check

(* ---- slo stage ----

   The SLO engine is itself part of the serving surface, so the doctor
   drills it rather than trusting it: synthetic workloads replay an
   hour of traffic through an engine on a private registry under a
   fake clock — a healthy one comfortably inside its budget and a
   faulty one burning it ten times over — and the stage is suspect
   unless the healthy drill stays quiet and the faulty one alarms.
   Four drills cover both SLI kinds (error-rate and latency). *)

let slo_drill ~label ~objective ~emit ~expect_breach =
  let registry = Metrics.create () in
  let now = ref 0.0 in
  let slo =
    Urs_obs.Slo.create ~clock:(fun () -> !now) ~registry [ objective ]
  in
  (* 61 minutes at one sample per minute: the slow 1h window gets a
     true baseline, not just the creation sample *)
  for _ = 1 to 61 do
    now := !now +. 60.0;
    emit registry;
    Urs_obs.Slo.tick slo
  done;
  let evals = Urs_obs.Slo.evaluate slo in
  let breached = Urs_obs.Slo.any_breached evals in
  let burn =
    match evals with
    | { Urs_obs.Slo.windows = w :: _; _ } :: _ -> w.Urs_obs.Slo.burn_rate
    | _ -> nan
  in
  {
    name = "slo " ^ label;
    value = burn;
    detail =
      Printf.sprintf "burn %.3g, breached %b (expected %b)" burn breached
        expect_breach;
    verdict =
      (if breached = expect_breach then Diagnostics.Ok
       else
         Diagnostics.Suspect
           [
             Printf.sprintf "slo drill %s: breached %b where %b was expected"
               label breached expect_breach;
           ]);
  }

let check_slo_stage () =
  Span.with_ ~name:"urs_doctor_slo" @@ fun () ->
  let error_objective budget =
    {
      Urs_obs.Slo.name = "drill-errors";
      sli = Urs_obs.Slo.Error_rate { metric = Urs_obs.Slo.default_error_metric };
      budget;
    }
  in
  let latency_objective =
    (* p99 < 50ms over the standard request histogram *)
    Urs_obs.Slo.parse_objective_exn "drill-latency: p99 < 50ms"
  in
  let emit_errors ~bad registry =
    let c code =
      Metrics.counter ~registry
        ~labels:[ ("code", code); ("route", "drill") ]
        Urs_obs.Slo.default_error_metric
    in
    Metrics.inc ~by:(float_of_int (1000 - bad)) (c "200");
    if bad > 0 then Metrics.inc ~by:(float_of_int bad) (c "500")
  in
  let emit_latency ~slow registry =
    let h =
      Metrics.histogram ~registry ~buckets:Metrics.default_latency_buckets
        ~labels:[ ("route", "drill") ]
        Urs_obs.Slo.default_latency_metric
    in
    for _ = 1 to 1000 - slow do
      Metrics.observe h 0.004
    done;
    for _ = 1 to slow do
      Metrics.observe h 0.2
    done
  in
  [
    (* 1‰ of errors against a 1% budget: burn 0.1, quiet *)
    slo_drill ~label:"error-rate healthy"
      ~objective:(error_objective 0.01)
      ~emit:(emit_errors ~bad:1) ~expect_breach:false;
    (* 10% of errors against a 1% budget: burn 10, alarm *)
    slo_drill ~label:"error-rate breach"
      ~objective:(error_objective 0.01)
      ~emit:(emit_errors ~bad:100) ~expect_breach:true;
    (* everything at 4ms against p99 < 50ms: quiet *)
    slo_drill ~label:"latency healthy" ~objective:latency_objective
      ~emit:(emit_latency ~slow:0) ~expect_breach:false;
    (* 10% of requests at 200ms against a 1% budget: alarm *)
    slo_drill ~label:"latency breach" ~objective:latency_objective
      ~emit:(emit_latency ~slow:100) ~expect_breach:true;
  ]

(* ---- perf-drift stage ----

   The change-point detector behind `urs report --detect` gates perf
   regressions, so the doctor drills it the way it drills the SLO
   engine: seeded synthetic perf series in which the right answer is
   known — i.i.d. lognormal noise around a stable baseline must stay
   quiet, and the same noise with an injected 2x step must flag within
   a few points of the injection, with a sane magnitude estimate. *)

let drift_noise = 0.05
let drift_step_at = 20

let drift_series ~seed ~n ~step_at ~step =
  let rng = Urs_prob.Rng.create seed in
  let xs = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let level = if i >= step_at then step else 1.0 in
    (* multiplicative noise around the spectral solver's ~2.6 ms scale *)
    xs.(i) <- 0.0026 *. level *. exp (drift_noise *. Urs_prob.Rng.normal rng)
  done;
  xs

let check_perf_drift_stage () =
  Span.with_ ~name:"urs_doctor_perf_drift" @@ fun () ->
  let module Cp = Urs_stats.Changepoint in
  let detect xs = Cp.detect (Array.map log xs) in
  let quiet_check =
    match detect (drift_series ~seed:100 ~n:40 ~step_at:max_int ~step:1.0) with
    | None ->
        {
          name = "perf-drift quiet";
          value = 0.0;
          detail = "no change-point across 40 i.i.d. noise points";
          verdict = Diagnostics.Ok;
        }
    | Some c ->
        {
          name = "perf-drift quiet";
          value = float_of_int c.Cp.start;
          detail =
            Printf.sprintf "false alarm at run %d (stat %.1f)" c.Cp.start
              c.Cp.statistic;
          verdict =
            Diagnostics.Suspect
              [ "perf-drift: detector false-alarmed on i.i.d. noise" ];
        }
  in
  let step_checks =
    let step_at = drift_step_at in
    match detect (drift_series ~seed:200 ~n:30 ~step_at ~step:2.0) with
    | None ->
        [
          {
            name = "perf-drift step";
            value = nan;
            detail =
              Printf.sprintf "missed an injected 2x step at run %d" step_at;
            verdict =
              Diagnostics.Suspect [ "perf-drift: detector missed a 2x step" ];
          };
        ]
    | Some c ->
        let delay = c.Cp.detected - step_at in
        let located = abs (c.Cp.start - step_at) in
        let ratio = exp c.Cp.shift in
        [
          {
            name = "perf-drift step";
            value = float_of_int delay;
            detail =
              Printf.sprintf
                "2x step at run %d: flagged start %d, detected at %d (delay \
                 %d)"
                step_at c.Cp.start c.Cp.detected delay;
            verdict =
              (if c.Cp.direction = Cp.Up && delay <= 3 && located <= 3 then
                 Diagnostics.Ok
               else
                 Diagnostics.Suspect
                   [
                     Printf.sprintf
                       "perf-drift: step flagged %d points late (start off \
                        by %d)"
                       delay located;
                   ]);
          };
          {
            name = "perf-drift magnitude";
            value = ratio;
            detail = Printf.sprintf "estimated step %.2fx (injected 2.00x)" ratio;
            verdict =
              (if ratio > 1.5 && ratio < 2.7 then Diagnostics.Ok
               else
                 Diagnostics.Degraded
                   [
                     Printf.sprintf
                       "perf-drift: step magnitude estimate %.2fx is far \
                        from the injected 2x"
                       ratio;
                   ]);
          };
        ]
  in
  quiet_check :: step_checks

let quick_grid = [ (5, 4.0) ]
let full_grid = [ (5, 4.0); (10, 8.0); (12, 8.0) ]

let quick_sim = { Solver.duration = 30_000.0; replications = 5; seed = 7 }
let full_sim = { Solver.duration = 100_000.0; replications = 5; seed = 7 }

let run ?(quick = false) ?thresholds ?pool () =
  let t0 = Span.now () in
  let grid = if quick then quick_grid else full_grid in
  let sim = if quick then quick_sim else full_sim in
  (* the grid models fan out across the pool, and each model's
     simulation replications nest on the same pool (the pool supports
     nested batches); check order is the grid order either way *)
  Urs_obs.Progress.start ~total:(List.length grid + 5) "doctor:models";
  let checks =
    Span.with_ ~name:"urs_doctor_run" (fun () ->
        let per_model =
          let eval (servers, lambda) =
            let cs =
              check_model ?thresholds ~sim ?pool (paper_model ~servers ~lambda)
            in
            Urs_obs.Progress.tick "doctor:models";
            cs
          in
          match pool with
          | None -> List.map eval grid
          | Some pool -> Urs_exec.Pool.map pool eval grid
        in
        (* warm-up analysis runs after the grid: the N=5 paper model is
           the transient cross-check target in both quick and full mode *)
        let warmup =
          check_warmup ?thresholds ?pool ~sim (paper_model ~servers:5 ~lambda:4.0)
        in
        Urs_obs.Progress.tick "doctor:models";
        (* memory stage: the same paper model, solved once more under
           the runtime probe *)
        let memory =
          check_memory_stage ?thresholds (paper_model ~servers:5 ~lambda:4.0)
        in
        Urs_obs.Progress.tick "doctor:models";
        (* convergence stage: the same model once more, every iterative
           method recorded and graded *)
        let convergence =
          check_convergence_stage ?thresholds (paper_model ~servers:5 ~lambda:4.0)
        in
        Urs_obs.Progress.tick "doctor:models";
        (* slo stage: drill the burn-rate engine on synthetic healthy
           and breached workloads under a fake clock *)
        let slo = check_slo_stage () in
        Urs_obs.Progress.tick "doctor:models";
        (* perf-drift stage: drill the report --detect change-point
           detector on seeded synthetic series with known answers *)
        let perf_drift = check_perf_drift_stage () in
        Urs_obs.Progress.tick "doctor:models";
        List.concat per_model @ warmup @ memory @ convergence @ slo
        @ perf_drift)
  in
  Urs_obs.Progress.finish "doctor:models";
  let verdict =
    Diagnostics.combine (List.map (fun (c : check) -> c.verdict) checks)
  in
  Diagnostics.observe_verdict ~component:"doctor" verdict;
  let count sev =
    List.length
      (List.filter
         (fun (c : check) -> Diagnostics.severity c.verdict = sev)
         checks)
  in
  Ledger.record ~kind:"doctor.run"
    ~params:[ ("quick", Json.Bool quick) ]
    ~wall_seconds:(Span.now () -. t0)
    ~outcome:(Diagnostics.verdict_label verdict)
    ~summary:
      [
        ("checks", Json.Int (List.length checks));
        ("ok", Json.Int (count 0));
        ("degraded", Json.Int (count 1));
        ("suspect", Json.Int (count 2));
      ]
    ();
  { checks; verdict }

let pp_check ppf (c : check) =
  Format.fprintf ppf "[%-8s] %-28s %s"
    (String.uppercase_ascii (Diagnostics.verdict_label c.verdict))
    c.name c.detail

let pp_report ppf r =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    pp_check ppf r.checks;
  Format.fprintf ppf "@.overall: %a" Diagnostics.pp_verdict r.verdict
