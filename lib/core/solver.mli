(** Unified evaluation of a {!Model.t} by any of the four methods:

    - [Exact] — spectral expansion (paper §3.1); requires phase-type
      period distributions.
    - [Approximate] — the heavy-traffic geometric approximation
      (paper §3.2); cheap, robust, asymptotically exact as load → 1.
    - [Matrix_geometric] — Neuts' R-matrix method; an independent exact
      solver, useful for cross-validation.
    - [Simulation] — discrete-event simulation; the only method that
      accepts non-phase-type distributions (used for the C² = 0 points
      of Figure 6), and the only one that yields response-time
      percentiles. *)

type sim_options = {
  duration : float;  (** Measurement window per replication. *)
  replications : int;
  seed : int;
}

val default_sim_options : sim_options
(** 200,000 time units, 5 replications, seed 1. *)

type strategy =
  | Exact
  | Approximate
  | Matrix_geometric
  | Simulation of sim_options

type performance = {
  strategy_used : strategy;
  mean_jobs : float;  (** L — average number of jobs in the system. *)
  mean_response : float;  (** W = L/λ (Little's law). *)
  utilization : float;  (** Offered load over effective capacity. *)
  dominant_eigenvalue : float option;
      (** z_s for the analytic methods; [None] for simulation. *)
  confidence_half_width : float option;
      (** 95% CI half-width on L, for simulation only. *)
}

type error =
  | Not_phase_type
      (** An analytic method was requested but a period distribution is
          not (hyper)exponential — use [Simulation]. *)
  | Unstable of Urs_mmq.Stability.verdict
  | Solver_failure of string

val pp_error : Format.formatter -> error -> unit

val evaluate :
  ?pool:Urs_exec.Pool.t ->
  ?max_iter:int ->
  ?strategy:strategy ->
  Model.t ->
  (performance, error) result
(** Evaluate the model (default strategy [Exact]). [pool] parallelizes
    the replications of the [Simulation] strategy (the analytic methods
    ignore it); results are bit-identical with and without it.
    [max_iter] caps the spectral eigenvalue iteration of the [Exact]
    strategy (other strategies ignore it) — its only legitimate uses
    are tests and fault drills ([urs serve --solve-max-iter]) that need
    a solver which fails on demand.

    Besides the per-strategy call/success/failure counters and the
    [urs_solver_evaluate] span, every call appends a
    ["solver.evaluate"] record to the active {!Urs_obs.Ledger}
    (strategy, model parameters, wall time, performance summary and a
    snapshot of the strategy's last-solve gauges). *)

val evaluate_exn :
  ?pool:Urs_exec.Pool.t ->
  ?max_iter:int ->
  ?strategy:strategy ->
  Model.t ->
  performance
(** Like {!evaluate} but raises [Failure] with a rendered error. *)

val strategy_name : strategy -> string
(** Human-readable strategy name, e.g. ["exact (spectral expansion)"]. *)

val strategy_label : strategy -> string
(** Short metric/ledger label: ["exact"], ["approx"], ["mg"], ["sim"]. *)

val ledger_params : Model.t -> (string * Urs_obs.Json.t) list
(** The model parameters recorded with every ledger entry. *)

val pp_performance : Format.formatter -> performance -> unit
