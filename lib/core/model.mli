(** Top-level description of an unreliable multi-server system — the
    user-facing entry point of the library.

    A model is the quintuple of Figure 1: [N] parallel servers fed from
    one FCFS queue, Poisson arrivals at rate [λ], exponential service at
    rate [µ], and operative/inoperative period distributions. Build one
    with {!create}, then evaluate it with {!Solver.evaluate}, optimize
    it with {!Cost} or size it with {!Capacity}. *)

type t = {
  servers : int;
  arrival_rate : float;
  service_rate : float;
  operative : Urs_prob.Distribution.t;
  inoperative : Urs_prob.Distribution.t;
  repair_crews : int option;
      (** Repair-crew bound; [None] = unlimited (the paper's model). *)
}

val create :
  ?repair_crews:int ->
  servers:int ->
  arrival_rate:float ->
  service_rate:float ->
  operative:Urs_prob.Distribution.t ->
  inoperative:Urs_prob.Distribution.t ->
  unit ->
  t
(** Validated constructor; raises [Invalid_argument] on nonsensical
    parameters (stability is {e not} required here — check
    {!stability}). [repair_crews] bounds the number of simultaneously
    repairable servers (see {!Urs_mmq.Environment.create_ph}). *)

val with_servers : t -> int -> t
(** Same system with a different number of servers. *)

val with_arrival_rate : t -> float -> t

val paper_operative : Urs_prob.Distribution.t
(** The paper's fitted operative-period distribution:
    H2 with weights (0.7246, 0.2754) and rates (0.1663, 0.0091) —
    mean 34.62, C² = 4.59. *)

val paper_inoperative_h2 : Urs_prob.Distribution.t
(** The paper's fitted inoperative-period distribution:
    H2 with weights (0.9303, 0.0697) and rates (25.0043, 1.6346). *)

val paper_inoperative_exp : Urs_prob.Distribution.t
(** The simplified exponential inoperative distribution with rate
    η = 25 used throughout §4. *)

val is_phase_type : t -> bool
(** Whether both period distributions are phase-type (exponential,
    hyperexponential, Erlang or general PH), i.e. whether the exact
    analytical solvers apply. This generalizes the paper, whose model
    is the hyperexponential special case. *)

val environment : t -> Urs_mmq.Environment.t option
(** The Markovian environment, when {!is_phase_type}. *)

val qbd : t -> Urs_mmq.Qbd.t option
(** The QBD blocks, when {!is_phase_type}. *)

val stability : t -> Urs_mmq.Stability.verdict
val pp : Format.formatter -> t -> unit
