module D = Urs_prob.Distribution
module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Ledger = Urs_obs.Ledger
module Json = Urs_obs.Json
module Pool = Urs_exec.Pool

let log_src = Logs.Src.create "urs.sweep" ~doc:"parameter sweeps"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Failed points used to vanish silently from sweep results; every drop
   is now logged with the failing parameter value and counted per sweep
   under urs_sweep_failures_total{sweep="..."}. *)

let m_points sweep =
  Metrics.counter
    ~labels:[ ("sweep", sweep) ]
    ~help:"Sweep points attempted" "urs_sweep_points_total"

let m_failures sweep =
  Metrics.counter
    ~labels:[ ("sweep", sweep) ]
    ~help:"Sweep points dropped (solver error or invalid parameter)"
    "urs_sweep_failures_total"

let drop ~sweep ~param reason =
  Metrics.inc (m_failures sweep);
  Log.warn (fun m ->
      m "%s sweep: dropping point %s: %t" sweep param reason);
  None

let eval_point ?strategy ?cache ~sweep ~param model =
  Metrics.inc (m_points sweep);
  let t0 = Span.now () in
  let result = Solve_cache.evaluate ?cache ?strategy model in
  let wall = Span.now () -. t0 in
  let base_summary =
    [ ("sweep", Json.String sweep); ("param", Json.String param) ]
  in
  let strategy_label =
    Solver.strategy_label (Option.value strategy ~default:Solver.Exact)
  in
  (match result with
  | Ok perf ->
      Ledger.record ~kind:"sweep.point" ~strategy:strategy_label
        ~params:(Solver.ledger_params model) ~wall_seconds:wall
        ~summary:
          (base_summary
          @ [
              ("mean_jobs", Json.Float perf.Solver.mean_jobs);
              ("mean_response", Json.Float perf.Solver.mean_response);
              ("utilization", Json.Float perf.Solver.utilization);
            ])
        ()
  | Error e ->
      Ledger.record ~kind:"sweep.point" ~strategy:strategy_label
        ~params:(Solver.ledger_params model) ~wall_seconds:wall
        ~outcome:"dropped"
        ~summary:
          (base_summary
          @ [
              ( "error",
                Json.String (Format.asprintf "%a" Solver.pp_error e) );
            ])
        ());
  match result with
  | Ok perf -> Some perf
  | Error e ->
      drop ~sweep ~param (fun ppf -> Solver.pp_error ppf e)

(* Every sweep is two phases: prepare each x-axis value into a model
   (cheap; parameter-validation drops happen here, sequentially, so
   their log order is stable), then evaluate the prepared points — the
   expensive, embarrassingly parallel part — on the pool when one is
   given. Results come back in input order, so the point list is
   byte-identical whatever the pool width. *)
let run_points ?strategy ?pool ?cache ~sweep points =
  let task = "sweep:" ^ sweep in
  let eval (x, param, model) =
    let r =
      match eval_point ?strategy ?cache ~sweep ~param model with
      | Some perf -> Some (x, perf)
      | None -> None
    in
    Urs_obs.Progress.tick task;
    r
  in
  Urs_obs.Progress.start ~total:(List.length points) task;
  (* one span over the whole evaluate phase: pool tasks parent onto it
     (via the captured context), so a jobs=N sweep traces as a single
     tree rooted here rather than N disconnected per-domain forests *)
  let results =
    Urs_obs.Span.with_ ~name:"urs_sweep"
      ~labels:[ ("sweep", sweep) ]
      (fun () ->
        match pool with
        | None -> List.map eval points
        | Some pool -> Pool.map pool eval points)
  in
  Urs_obs.Progress.finish task;
  List.filter_map Fun.id results

let over_servers ?strategy ?pool ?cache model ~values =
  run_points ?strategy ?pool ?cache ~sweep:"servers"
    (List.map
       (fun n -> (n, string_of_int n, Model.with_servers model n))
       values)

let over_arrival_rates ?strategy ?pool ?cache model ~values =
  run_points ?strategy ?pool ?cache ~sweep:"arrival_rates"
    (List.map
       (fun lambda ->
         ( lambda,
           Printf.sprintf "lambda=%g" lambda,
           Model.with_arrival_rate model lambda ))
       values)

let over_repair_times ?strategy ?pool ?cache model ~values =
  let points =
    List.filter_map
      (fun mean_repair ->
        let param = Printf.sprintf "mean_repair=%g" mean_repair in
        if mean_repair <= 0.0 then begin
          Metrics.inc (m_points "repair_times");
          ignore
            (drop ~sweep:"repair_times" ~param (fun ppf ->
                 Format.pp_print_string ppf
                   "mean repair time must be positive"));
          None
        end
        else
          let m =
            Model.create ~servers:model.Model.servers
              ~arrival_rate:model.Model.arrival_rate
              ~service_rate:model.Model.service_rate
              ~operative:model.Model.operative
              ~inoperative:(D.exponential ~rate:(1.0 /. mean_repair)) ()
          in
          Some (mean_repair, param, m))
      values
  in
  run_points ?strategy ?pool ?cache ~sweep:"repair_times" points

let over_operative_scv ?strategy ?pool ?cache model ~pinned_rate ~values =
  let mean = D.mean model.Model.operative in
  let points =
    List.filter_map
      (fun scv ->
        let param = Printf.sprintf "scv=%g" scv in
        let operative =
          if scv <= 0.0 then Ok (D.deterministic mean)
          else if abs_float (scv -. 1.0) < 1e-12 then
            Ok (D.exponential ~rate:(1.0 /. mean))
          else
            match
              Urs_prob.Fit.h2_of_mean_scv_pinned_rate ~mean ~scv ~pinned_rate
            with
            | Ok h2 -> Ok (D.Hyperexponential h2)
            | Error e -> Error e
        in
        match operative with
        | Error e ->
            Metrics.inc (m_points "operative_scv");
            ignore
              (drop ~sweep:"operative_scv" ~param (fun ppf ->
                   Format.fprintf ppf "H2 fit failed: %a" Urs_prob.Fit.pp_error
                     e));
            None
        | Ok operative ->
            let m =
              Model.create ~servers:model.Model.servers
                ~arrival_rate:model.Model.arrival_rate
                ~service_rate:model.Model.service_rate ~operative
                ~inoperative:model.Model.inoperative ()
            in
            Some (scv, param, m))
      values
  in
  run_points ?strategy ?pool ?cache ~sweep:"operative_scv" points

let over_loads ?strategy ?pool ?cache model ~values =
  (* Figure 8's x-axis: offered load relative to the effective service
     capacity (average operative servers x mu) of the breakdown/repair
     environment *)
  let capacity =
    (Model.stability model).Urs_mmq.Stability.effective_capacity
    *. model.Model.service_rate
  in
  let points =
    List.filter_map
      (fun load ->
        let param = Printf.sprintf "load=%g" load in
        if load <= 0.0 || not (Float.is_finite capacity) || capacity <= 0.0
        then begin
          Metrics.inc (m_points "loads");
          ignore
            (drop ~sweep:"loads" ~param (fun ppf ->
                 Format.pp_print_string ppf
                   "load and effective capacity must be positive"));
          None
        end
        else
          Some
            ( load,
              param,
              Model.with_arrival_rate model (load *. capacity) ))
      values
  in
  run_points ?strategy ?pool ?cache ~sweep:"loads" points

let linspace lo hi k =
  if k < 2 then [ lo ]
  else
    List.init k (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (k - 1)))
