module D = Urs_prob.Distribution

let over_servers ?strategy model ~values =
  List.filter_map
    (fun n ->
      match Solver.evaluate ?strategy (Model.with_servers model n) with
      | Ok perf -> Some (n, perf)
      | Error _ -> None)
    values

let over_arrival_rates ?strategy model ~values =
  List.filter_map
    (fun lambda ->
      match Solver.evaluate ?strategy (Model.with_arrival_rate model lambda) with
      | Ok perf -> Some (lambda, perf)
      | Error _ -> None)
    values

let over_repair_times ?strategy model ~values =
  List.filter_map
    (fun mean_repair ->
      if mean_repair <= 0.0 then None
      else begin
        let m =
          Model.create ~servers:model.Model.servers
            ~arrival_rate:model.Model.arrival_rate
            ~service_rate:model.Model.service_rate
            ~operative:model.Model.operative
            ~inoperative:(D.exponential ~rate:(1.0 /. mean_repair)) ()
        in
        match Solver.evaluate ?strategy m with
        | Ok perf -> Some (mean_repair, perf)
        | Error _ -> None
      end)
    values

let over_operative_scv ?strategy model ~pinned_rate ~values =
  let mean = D.mean model.Model.operative in
  List.filter_map
    (fun scv ->
      let operative =
        if scv <= 0.0 then Some (D.deterministic mean)
        else if abs_float (scv -. 1.0) < 1e-12 then
          Some (D.exponential ~rate:(1.0 /. mean))
        else
          match Urs_prob.Fit.h2_of_mean_scv_pinned_rate ~mean ~scv ~pinned_rate with
          | Ok h2 -> Some (D.Hyperexponential h2)
          | Error _ -> None
      in
      match operative with
      | None -> None
      | Some operative -> (
          let m =
            Model.create ~servers:model.Model.servers
              ~arrival_rate:model.Model.arrival_rate
              ~service_rate:model.Model.service_rate ~operative
              ~inoperative:model.Model.inoperative ()
          in
          match Solver.evaluate ?strategy m with
          | Ok perf -> Some (scv, perf)
          | Error _ -> None))
    values

let linspace lo hi k =
  if k < 2 then [ lo ]
  else
    List.init k (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (k - 1)))
