(** Capacity planning: "what is the minimum number of servers that
    ensures a desired level of performance?" (question 2 of the
    introduction; Figure 9 answers it graphically for W ≤ 1.5). *)

val min_servers_for_response :
  ?strategy:Solver.strategy ->
  ?n_max:int ->
  Model.t ->
  target:float ->
  (int * Solver.performance, Solver.error) result
(** Smallest [N <= n_max] (default 500) whose mean response time is at
    most [target]; the model's own server count is ignored. Returns the
    count and the performance achieved. W is decreasing in [N], so the
    search walks upward from the first stable size. *)

val response_profile :
  ?strategy:Solver.strategy ->
  Model.t ->
  n_min:int ->
  n_max:int ->
  (int * float) list
(** Mean response time per server count (Figure 9's series); unstable
    sizes are omitted. *)
