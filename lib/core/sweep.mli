(** Parameter sweeps used by the numerical experiments of §4. Each
    function returns the x-axis value paired with the evaluated
    performance. Points that fail to solve are omitted from the result,
    but never silently: each drop is logged on the [urs.sweep] source
    with the failing parameter value and the solver error, and counted
    in the [urs_sweep_failures_total{sweep="..."}] metric
    ([urs_sweep_points_total] counts attempts).

    Every sweep evaluates its points on [pool] when one is given
    ([--jobs N] on the CLI); the returned point list is byte-identical
    whatever the pool width, because points are prepared sequentially
    and results are collected in input order. [cache] memoizes repeated
    (model, strategy) evaluations across sweeps (see
    {!Solve_cache}). *)

val over_servers :
  ?strategy:Solver.strategy ->
  ?pool:Urs_exec.Pool.t ->
  ?cache:Solve_cache.t ->
  Model.t ->
  values:int list ->
  (int * Solver.performance) list

val over_arrival_rates :
  ?strategy:Solver.strategy ->
  ?pool:Urs_exec.Pool.t ->
  ?cache:Solve_cache.t ->
  Model.t ->
  values:float list ->
  (float * Solver.performance) list

val over_repair_times :
  ?strategy:Solver.strategy ->
  ?pool:Urs_exec.Pool.t ->
  ?cache:Solve_cache.t ->
  Model.t ->
  values:float list ->
  (float * Solver.performance) list
(** Sweep the {e mean} inoperative period (1/η, Figure 7's x-axis),
    replacing the model's inoperative distribution by an exponential
    with that mean. *)

val over_operative_scv :
  ?strategy:Solver.strategy ->
  ?pool:Urs_exec.Pool.t ->
  ?cache:Solve_cache.t ->
  Model.t ->
  pinned_rate:float ->
  values:float list ->
  (float * Solver.performance) list
(** Figure 6's x-axis: sweep the squared coefficient of variation of
    the operative periods, keeping the mean fixed at the model's
    current operative mean, using
    {!Urs_prob.Fit.h2_of_mean_scv_pinned_rate} with the given pinned
    rate. A value of exactly [0.] builds a deterministic distribution
    (only valid with a simulation strategy, as in the paper). *)

val over_loads :
  ?strategy:Solver.strategy ->
  ?pool:Urs_exec.Pool.t ->
  ?cache:Solve_cache.t ->
  Model.t ->
  values:float list ->
  (float * Solver.performance) list
(** Figure 8's x-axis: sweep the offered load, setting the arrival rate
    to [load x effective capacity] where the effective capacity is the
    average number of operative servers times the service rate (from
    {!Model.stability}). Loads at or above 1 are attempted and dropped
    if unstable, like any other failing point. *)

val linspace : float -> float -> int -> float list
(** [linspace lo hi k] is [k] evenly spaced values from [lo] to [hi]
    inclusive. *)
