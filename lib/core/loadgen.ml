module Http = Urs_obs.Http
module Metrics = Urs_obs.Metrics
module Ledger = Urs_obs.Ledger
module Json = Urs_obs.Json

(* HTTP traffic generation against `urs serve` — the measuring half of
   the serving-and-measuring loop.

   Two disciplines:

   - Closed loop: N workers, each cycling request → response → think.
     The offered load adapts to the service rate (a slow server slows
     its clients), like a fixed population of interactive users.
   - Open loop: arrivals scheduled by a Poisson process of rate λ,
     independent of the server's state. Latency is measured from the
     {e scheduled} arrival, so coordinated omission cannot hide a slow
     server behind a slowed generator: if every worker is stuck, the
     next arrivals queue and their waiting counts against the
     response time.

   Per-request latencies land in a run-local registry (histogram over
   {!Metrics.default_latency_buckets}), so the run's quantiles come
   from {!Metrics.histogram_quantile} exactly like the server side's,
   and one ["loadgen"] ledger record summarizes the run. *)

type mode =
  | Closed of { workers : int; think_s : float }
  | Open of { rate : float; workers : int }

type outcome_counts = {
  mutable requests : int;
  mutable errors : int;  (* non-2xx responses *)
  mutable timeouts : int;  (* transport errors and timeouts *)
  mutable lat_sum : float;
  mutable lat_max : float;
  codes : (int, int) Hashtbl.t;
}

let fresh_counts () =
  {
    requests = 0;
    errors = 0;
    timeouts = 0;
    lat_sum = 0.0;
    lat_max = 0.0;
    codes = Hashtbl.create 8;
  }

type result = {
  mode : mode;
  target : string;
  requests : int;
  errors : int;
  timeouts : int;
  codes : (int * int) list;  (* status code -> count, sorted *)
  wall_s : float;
  throughput : float;  (* completed requests per second *)
  mean_s : float;
  max_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;
}

let mode_label = function Closed _ -> "closed" | Open _ -> "open"

let mode_json = function
  | Closed { workers; think_s } ->
      [
        ("mode", Json.String "closed");
        ("workers", Json.Int workers);
        ("think_s", Json.Float think_s);
      ]
  | Open { rate; workers } ->
      [
        ("mode", Json.String "open");
        ("rate", Json.Float rate);
        ("workers", Json.Int workers);
      ]

let result_json r =
  Json.Obj
    (mode_json r.mode
    @ [
        ("target", Json.String r.target);
        ("requests", Json.Int r.requests);
        ("errors", Json.Int r.errors);
        ("timeouts", Json.Int r.timeouts);
        ( "codes",
          Json.Obj
            (List.map (fun (c, n) -> (string_of_int c, Json.Int n)) r.codes) );
        ("wall_s", Json.Float r.wall_s);
        ("throughput", Json.Float r.throughput);
        ("latency_mean_s", Json.Float r.mean_s);
        ("latency_max_s", Json.Float r.max_s);
        ("latency_p50_s", Json.Float r.p50_s);
        ("latency_p90_s", Json.Float r.p90_s);
        ("latency_p99_s", Json.Float r.p99_s);
      ])

(* one request, classified; timeouts are transport errors that consumed
   (most of) the timeout budget — a refused connection fails fast and is
   an error, a silent server is a timeout *)
let fire ~addr ~timeout_s ~meth ~body ~content_type ~port ~target =
  let t0 = Unix.gettimeofday () in
  let r = Http.request ~addr ~timeout_s ?body ~content_type ~meth ~port target in
  let elapsed = Unix.gettimeofday () -. t0 in
  match r with
  | Ok (status, _, _) -> (elapsed, `Status status)
  | Error _ when elapsed >= 0.95 *. timeout_s -> (elapsed, `Timeout)
  | Error _ -> (elapsed, `Transport)

let observe (counts : outcome_counts) hist ~latency outcome =
  counts.requests <- counts.requests + 1;
  counts.lat_sum <- counts.lat_sum +. latency;
  if latency > counts.lat_max then counts.lat_max <- latency;
  Metrics.observe hist latency;
  match outcome with
  | `Status status ->
      Hashtbl.replace counts.codes status
        (1 + Option.value (Hashtbl.find_opt counts.codes status) ~default:0);
      if status < 200 || status > 299 then counts.errors <- counts.errors + 1
  | `Timeout -> counts.timeouts <- counts.timeouts + 1
  | `Transport -> counts.errors <- counts.errors + 1

let closed_worker ~deadline ~think_s ~shoot counts hist =
  while Unix.gettimeofday () < deadline do
    let latency, outcome = shoot () in
    observe counts hist ~latency outcome;
    if think_s > 0.0 && Unix.gettimeofday () < deadline then
      Thread.delay think_s
  done

(* open loop: workers pull scheduled arrival times off one shared
   Poisson schedule; latency runs from the scheduled arrival, not the
   moment a worker got free *)
let open_worker ~deadline ~schedule ~shoot counts hist =
  let continue = ref true in
  while !continue do
    match schedule () with
    | None -> continue := false
    | Some at ->
        let now = Unix.gettimeofday () in
        if at > deadline then continue := false
        else begin
          if at > now then Thread.delay (at -. now);
          (* latency = completion − scheduled arrival: the time the
             request spent waiting for a free worker counts too *)
          let start = Unix.gettimeofday () in
          let elapsed, outcome = shoot () in
          let latency = Float.max 0.0 (start -. at) +. elapsed in
          observe counts hist ~latency outcome
        end
  done

let merge_counts per_worker =
  let total : outcome_counts = fresh_counts () in
  Array.iter
    (fun (c : outcome_counts) ->
      total.requests <- total.requests + c.requests;
      total.errors <- total.errors + c.errors;
      total.timeouts <- total.timeouts + c.timeouts;
      total.lat_sum <- total.lat_sum +. c.lat_sum;
      if c.lat_max > total.lat_max then total.lat_max <- c.lat_max;
      Hashtbl.iter
        (fun code n ->
          Hashtbl.replace total.codes code
            (n + Option.value (Hashtbl.find_opt total.codes code) ~default:0))
        c.codes)
    per_worker;
  total

let quantile_of registry q =
  let entries = Metrics.snapshot ~registry () in
  List.fold_left
    (fun acc (e : Metrics.entry) ->
      match e.Metrics.data with
      | Metrics.Histogram_value h
        when e.Metrics.name = "urs_loadgen_request_seconds" ->
          Metrics.histogram_quantile ~bounds:h.bounds ~counts:h.counts q
      | _ -> acc)
    nan entries

let run ?(addr = "127.0.0.1") ?(timeout_s = 5.0) ?(seed = 1) ?(meth = "GET")
    ?body ?(content_type = "application/json") ~port ~target ~duration_s ~mode
    () =
  if duration_s <= 0.0 then invalid_arg "Loadgen.run: duration must be positive";
  (match mode with
  | Closed { workers; think_s } ->
      if workers < 1 then invalid_arg "Loadgen.run: workers must be >= 1";
      if think_s < 0.0 then invalid_arg "Loadgen.run: think time must be >= 0"
  | Open { rate; workers } ->
      if rate <= 0.0 then invalid_arg "Loadgen.run: rate must be positive";
      if workers < 1 then invalid_arg "Loadgen.run: workers must be >= 1");
  let registry = Metrics.create () in
  let hist =
    Metrics.histogram ~registry ~buckets:Metrics.default_latency_buckets
      ~labels:[ ("target", target) ]
      ~help:"Client-observed request latency" "urs_loadgen_request_seconds"
  in
  let shoot () = fire ~addr ~timeout_s ~meth ~body ~content_type ~port ~target in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration_s in
  let nworkers =
    match mode with Closed { workers; _ } | Open { workers; _ } -> workers
  in
  let per_worker = Array.init nworkers (fun _ -> fresh_counts ()) in
  let body_of =
    (* one shared schedule: building it per worker would multiply the
       offered rate by the worker count *)
    match mode with
    | Closed { think_s; _ } ->
        fun i () -> closed_worker ~deadline ~think_s ~shoot per_worker.(i) hist
    | Open { rate; _ } ->
        let rng = Urs_prob.Rng.create seed in
        let lock = Mutex.create () in
        let next = ref (t0 +. Urs_prob.Rng.exponential rng rate) in
        let schedule () =
          Mutex.lock lock;
          let at = !next in
          next := at +. Urs_prob.Rng.exponential rng rate;
          Mutex.unlock lock;
          if at > deadline then None else Some at
        in
        fun i () -> open_worker ~deadline ~schedule ~shoot per_worker.(i) hist
  in
  let threads =
    Array.init nworkers (fun i -> Thread.create (body_of i) ())
  in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let total = merge_counts per_worker in
  let result =
    {
      mode;
      target;
      requests = total.requests;
      errors = total.errors;
      timeouts = total.timeouts;
      codes =
        List.sort compare
          (Hashtbl.fold (fun c n acc -> (c, n) :: acc) total.codes []);
      wall_s;
      throughput =
        (if wall_s > 0.0 then float_of_int total.requests /. wall_s else 0.0);
      mean_s =
        (if total.requests > 0 then
           total.lat_sum /. float_of_int total.requests
         else nan);
      max_s = (if total.requests > 0 then total.lat_max else nan);
      p50_s = quantile_of registry 0.5;
      p90_s = quantile_of registry 0.9;
      p99_s = quantile_of registry 0.99;
    }
  in
  (match result_json result with
  | Json.Obj fields ->
      Ledger.record ~kind:"loadgen" ~wall_seconds:wall_s
        ~params:
          (mode_json mode
          @ [ ("target", Json.String target); ("meth", Json.String meth) ])
        ~outcome:(if result.errors = 0 && result.timeouts = 0 then "ok" else "errors")
        ~summary:fields ()
  | _ -> ());
  result

(* ---- measured vs. modeled ----

   The serve loop is one sequential server: calibrate its service rate
   with a few unloaded probes (µ̂ = 1/mean), then predict the loaded
   response time from the repo's own M/M/1 solver at the measured
   throughput. The point is not a tight fit — it is the paper's loop in
   miniature: measure, fit, predict, compare. *)

type comparison = {
  probes : int;
  mu_hat : float;
  lambda : float;  (* the measured throughput, used as the arrival rate *)
  predicted_response_s : float;  (* nan when λ ≥ µ̂ (modeled as unstable) *)
  measured_response_s : float;
}

let compare_model ?(probes = 30) ?(addr = "127.0.0.1") ?(timeout_s = 5.0)
    ?(meth = "GET") ?body ?(content_type = "application/json") ~port ~target
    result =
  if probes < 1 then invalid_arg "Loadgen.compare_model: probes must be >= 1";
  let sum = ref 0.0 and ok = ref 0 in
  for _ = 1 to probes do
    match fire ~addr ~timeout_s ~meth ~body ~content_type ~port ~target with
    | latency, `Status s when s >= 200 && s <= 299 ->
        sum := !sum +. latency;
        incr ok
    | _ -> ()
  done;
  if !ok = 0 then Error "calibration probes all failed"
  else
    let mu_hat = float_of_int !ok /. !sum in
    let lambda = result.throughput in
    let predicted_response_s =
      if lambda > 0.0 && lambda < mu_hat then
        Urs_mmq.Mmc.mean_response_time ~servers:1 ~lambda ~mu:mu_hat
      else nan
    in
    Ok
      {
        probes = !ok;
        mu_hat;
        lambda;
        predicted_response_s;
        measured_response_s = result.mean_s;
      }

let comparison_json c =
  Json.Obj
    [
      ("probes", Json.Int c.probes);
      ("mu_hat", Json.Float c.mu_hat);
      ("lambda", Json.Float c.lambda);
      ("predicted_response_s", Json.Float c.predicted_response_s);
      ("measured_response_s", Json.Float c.measured_response_s);
    ]
