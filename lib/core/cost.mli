(** The cost model of §4 (eq. (22)): [C = c₁·L + c₂·N], trading off the
    users' waiting cost against the provider's server cost. For each
    parameter set there is an optimal number of servers; Figure 5 plots
    [C] against [N] for the paper's cost coefficients [c₁=4, c₂=1]. *)

type params = {
  holding : float;  (** c₁ — cost per job-unit-time in the system. *)
  server : float;  (** c₂ — cost per server-unit-time provided. *)
}

val paper_params : params
(** [c₁ = 4], [c₂ = 1]. *)

val of_performance : params -> servers:int -> Solver.performance -> float
(** [c₁·L + c₂·N]. *)

val evaluate_range :
  ?strategy:Solver.strategy ->
  Model.t ->
  params ->
  n_min:int ->
  n_max:int ->
  (int * float) list
(** Cost for each server count in [n_min..n_max]; unstable or failing
    configurations are omitted. *)

val optimal_servers :
  ?strategy:Solver.strategy ->
  ?n_max:int ->
  Model.t ->
  params ->
  (int * float, Solver.error) result
(** The server count minimizing the cost, searched upward from the
    smallest stable [N] until the cost has increased for 3 consecutive
    values (the cost is convex-ish in practice) or [n_max] (default
    [200]) is reached. *)
