module D = Urs_prob.Distribution

type t = {
  servers : int;
  arrival_rate : float;
  service_rate : float;
  operative : D.t;
  inoperative : D.t;
  repair_crews : int option;
}

let create ?repair_crews ~servers ~arrival_rate ~service_rate ~operative
    ~inoperative () =
  if servers < 1 then invalid_arg "Model.create: servers must be >= 1";
  if arrival_rate <= 0.0 then invalid_arg "Model.create: arrival_rate positive";
  if service_rate <= 0.0 then invalid_arg "Model.create: service_rate positive";
  (match repair_crews with
  | Some c when c < 1 -> invalid_arg "Model.create: repair_crews must be >= 1"
  | _ -> ());
  { servers; arrival_rate; service_rate; operative; inoperative; repair_crews }

let with_servers t n =
  create ?repair_crews:t.repair_crews ~servers:n ~arrival_rate:t.arrival_rate
    ~service_rate:t.service_rate ~operative:t.operative
    ~inoperative:t.inoperative ()

let with_arrival_rate t lambda =
  create ?repair_crews:t.repair_crews ~servers:t.servers ~arrival_rate:lambda
    ~service_rate:t.service_rate ~operative:t.operative
    ~inoperative:t.inoperative ()

let paper_operative =
  D.hyperexponential ~weights:[| 0.7246; 0.2754 |] ~rates:[| 0.1663; 0.0091 |]

let paper_inoperative_h2 =
  D.hyperexponential ~weights:[| 0.9303; 0.0697 |] ~rates:[| 25.0043; 1.6346 |]

let paper_inoperative_exp = D.exponential ~rate:25.0

let is_phase_type t =
  Option.is_some (D.as_phase_type t.operative)
  && Option.is_some (D.as_phase_type t.inoperative)

let environment t =
  match (D.as_phase_type t.operative, D.as_phase_type t.inoperative) with
  | Some op, Some inop ->
      Some
        (Urs_mmq.Environment.create_ph ?repair_crews:t.repair_crews
           ~servers:t.servers ~operative:op ~inoperative:inop ())
  | _ -> None

let qbd t =
  Option.map
    (fun env ->
      Urs_mmq.Qbd.create ~env ~lambda:t.arrival_rate ~mu:t.service_rate)
    (environment t)

let stability t =
  match environment t with
  | Some env ->
      Urs_mmq.Stability.check ~env ~lambda:t.arrival_rate ~mu:t.service_rate
  | None ->
      (* distribution-free: the condition depends only on the means.
         (Only valid with unlimited repair crews; a crews bound requires
         the phase-type environment, so reject the combination.) *)
      (match t.repair_crews with
      | Some c when c < t.servers ->
          invalid_arg
            "Model.stability: limited repair crews require phase-type periods"
      | _ -> ());
      let mean_op = D.mean t.operative and mean_inop = D.mean t.inoperative in
      let avail = mean_op /. (mean_op +. mean_inop) in
      let capacity = float_of_int t.servers *. avail in
      let offered = t.arrival_rate /. t.service_rate in
      {
        Urs_mmq.Stability.offered_load = offered;
        effective_capacity = capacity;
        utilization = offered /. capacity;
        stable = offered < capacity;
      }

let pp ppf t =
  Format.fprintf ppf
    "@[<v 2>model:@,N=%d λ=%g µ=%g@,operative: %a@,inoperative: %a@]"
    t.servers t.arrival_rate t.service_rate D.pp t.operative D.pp t.inoperative
