module D = Urs_prob.Distribution
module Cache = Urs_exec.Cache

type t = (Solver.performance, Solver.error) result Cache.t

let create ?(capacity = 1024) () = Cache.create ~capacity ~name:"solve" ()

(* every float in a key is rendered with %h: lossless, so two models
   differing in the 17th digit still get distinct keys *)
let fl = Printf.sprintf "%h"

let dist_key d =
  let arr xs =
    String.concat "," (Array.to_list (Array.map fl xs))
  in
  match d with
  | D.Exponential e -> Printf.sprintf "exp(%s)" (fl (Urs_prob.Exponential.rate e))
  | D.Hyperexponential h ->
      Printf.sprintf "h2(%s;%s)"
        (arr (Urs_prob.Hyperexponential.weights h))
        (arr (Urs_prob.Hyperexponential.rates h))
  | D.Erlang e ->
      Printf.sprintf "erl(%d;%s)" (Urs_prob.Erlang.stages e)
        (fl (Urs_prob.Erlang.rate e))
  | D.Deterministic d ->
      Printf.sprintf "det(%s)" (fl (Urs_prob.Deterministic.value d))
  | D.Uniform u ->
      Printf.sprintf "uni(%s;%s)"
        (fl (Urs_prob.Uniform_d.lo u))
        (fl (Urs_prob.Uniform_d.hi u))
  | D.Weibull w ->
      Printf.sprintf "wei(%s;%s)"
        (fl (Urs_prob.Weibull.shape w))
        (fl (Urs_prob.Weibull.scale w))
  | D.Lognormal l ->
      Printf.sprintf "logn(%s;%s)"
        (fl (Urs_prob.Lognormal.mu l))
        (fl (Urs_prob.Lognormal.sigma l))
  | D.Phase_type p ->
      let m = Urs_prob.Phase_type.t_matrix p in
      let rows, cols = Urs_linalg.Matrix.dims m in
      let cells = ref [] in
      for i = rows - 1 downto 0 do
        for j = cols - 1 downto 0 do
          cells := fl (Urs_linalg.Matrix.get m i j) :: !cells
        done
      done;
      Printf.sprintf "ph(%s;%dx%d:%s)"
        (arr (Urs_prob.Phase_type.alpha p))
        rows cols
        (String.concat "," !cells)

let strategy_key = function
  | Solver.Exact -> "exact"
  | Solver.Approximate -> "approx"
  | Solver.Matrix_geometric -> "mg"
  | Solver.Simulation o ->
      Printf.sprintf "sim(%s;%d;%d)" (fl o.Solver.duration)
        o.Solver.replications o.Solver.seed

let key strategy (m : Model.t) =
  Printf.sprintf "v1|%s|N=%d|lam=%s|mu=%s|crews=%s|op=%s|inop=%s"
    (strategy_key strategy) m.Model.servers (fl m.Model.arrival_rate)
    (fl m.Model.service_rate)
    (match m.Model.repair_crews with
    | None -> "inf"
    | Some k -> string_of_int k)
    (dist_key m.Model.operative)
    (dist_key m.Model.inoperative)

let evaluate ?pool ?cache ?(strategy = Solver.Exact) model =
  match cache with
  | None -> Solver.evaluate ?pool ~strategy model
  | Some c ->
      Cache.find_or_compute c (key strategy model) (fun () ->
          Solver.evaluate ?pool ~strategy model)

let evaluate_info ?pool ?cache ?(strategy = Solver.Exact) model =
  match cache with
  | None -> (Solver.evaluate ?pool ~strategy model, false)
  | Some c -> (
      let k = key strategy model in
      (* find + insert_if_absent rather than find_or_compute, so the
         caller learns whether its own lookup hit while the cache
         counters still see exactly one lookup *)
      match Cache.find c k with
      | Some r -> (r, true)
      | None ->
          (Cache.insert_if_absent c k (Solver.evaluate ?pool ~strategy model),
           false))

let length = Cache.length

let clear = Cache.clear
