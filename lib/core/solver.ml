module Mq = Urs_mmq
module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Ledger = Urs_obs.Ledger
module Json = Urs_obs.Json

type sim_options = { duration : float; replications : int; seed : int }

let default_sim_options = { duration = 200_000.0; replications = 5; seed = 1 }

type strategy = Exact | Approximate | Matrix_geometric | Simulation of sim_options

type performance = {
  strategy_used : strategy;
  mean_jobs : float;
  mean_response : float;
  utilization : float;
  dominant_eigenvalue : float option;
  confidence_half_width : float option;
}

type error =
  | Not_phase_type
  | Unstable of Mq.Stability.verdict
  | Solver_failure of string

let pp_error ppf = function
  | Not_phase_type ->
      Format.fprintf ppf
        "period distributions are not phase-type; use the Simulation strategy"
  | Unstable v ->
      Format.fprintf ppf "queue is unstable: %a" Mq.Stability.pp_verdict v
  | Solver_failure msg -> Format.fprintf ppf "solver failure: %s" msg

let render pp_e e = Format.asprintf "%a" pp_e e

let strategy_label = function
  | Exact -> "exact"
  | Approximate -> "approx"
  | Matrix_geometric -> "mg"
  | Simulation _ -> "sim"

let evaluate_inner ?pool ?max_iter ?(strategy = Exact) model =
  let verdict = Model.stability model in
  if not verdict.Mq.Stability.stable then Error (Unstable verdict)
  else
    match strategy with
    | Exact -> (
        match Model.qbd model with
        | None -> Error Not_phase_type
        | Some q -> (
            match Mq.Spectral.solve ?max_iter q with
            | Error (Mq.Spectral.Unstable v) -> Error (Unstable v)
            | Error e -> Error (Solver_failure (render Mq.Spectral.pp_error e))
            | Ok sol ->
                Ok
                  {
                    strategy_used = strategy;
                    mean_jobs = Mq.Spectral.mean_queue_length sol;
                    mean_response = Mq.Spectral.mean_response_time sol;
                    utilization = verdict.Mq.Stability.utilization;
                    dominant_eigenvalue =
                      Some (Mq.Spectral.dominant_eigenvalue sol);
                    confidence_half_width = None;
                  }))
    | Approximate -> (
        match Model.qbd model with
        | None -> Error Not_phase_type
        | Some q -> (
            match Mq.Geometric.solve q with
            | Error (Mq.Geometric.Unstable v) -> Error (Unstable v)
            | Error e -> Error (Solver_failure (render Mq.Geometric.pp_error e))
            | Ok sol ->
                Ok
                  {
                    strategy_used = strategy;
                    mean_jobs = Mq.Geometric.mean_queue_length sol;
                    mean_response = Mq.Geometric.mean_response_time sol;
                    utilization = verdict.Mq.Stability.utilization;
                    dominant_eigenvalue =
                      Some (Mq.Geometric.dominant_eigenvalue sol);
                    confidence_half_width = None;
                  }))
    | Matrix_geometric -> (
        match Model.qbd model with
        | None -> Error Not_phase_type
        | Some q -> (
            match Mq.Matrix_geometric.solve q with
            | Error (Mq.Matrix_geometric.Unstable v) -> Error (Unstable v)
            | Error e ->
                Error (Solver_failure (render Mq.Matrix_geometric.pp_error e))
            | Ok sol ->
                Ok
                  {
                    strategy_used = strategy;
                    mean_jobs = Mq.Matrix_geometric.mean_queue_length sol;
                    mean_response = Mq.Matrix_geometric.mean_response_time sol;
                    utilization = verdict.Mq.Stability.utilization;
                    dominant_eigenvalue =
                      Some (Mq.Matrix_geometric.spectral_radius_estimate sol);
                    confidence_half_width = None;
                  }))
    | Simulation opts ->
        let cfg =
          {
            Urs_sim.Server_farm.servers = model.Model.servers;
            lambda = model.Model.arrival_rate;
            mu = model.Model.service_rate;
            operative = model.Model.operative;
            inoperative = model.Model.inoperative;
            repair_crews = model.Model.repair_crews;
          }
        in
        let summary =
          Urs_sim.Replicate.run ?pool ~seed:opts.seed
            ~replications:opts.replications ~duration:opts.duration cfg
        in
        Ok
          {
            strategy_used = strategy;
            mean_jobs = summary.Urs_sim.Replicate.mean_jobs.estimate;
            mean_response = summary.Urs_sim.Replicate.mean_response.estimate;
            utilization = verdict.Mq.Stability.utilization;
            dominant_eigenvalue = None;
            confidence_half_width =
              Some summary.Urs_sim.Replicate.mean_jobs.half_width;
          }

let ledger_params model =
  [
    ("servers", Json.Int model.Model.servers);
    ("lambda", Json.Float model.Model.arrival_rate);
    ("mu", Json.Float model.Model.service_rate);
    ( "repair_crews",
      match model.Model.repair_crews with
      | Some k -> Json.Int k
      | None -> Json.Null );
  ]

(* snapshot of the last-write gauges that belong to this strategy; the
   ledger keeps the per-solve history the process-wide gauges cannot *)
let ledger_gauges strat =
  let labels = [ ("strategy", strategy_label strat) ] in
  List.filter_map
    (fun name ->
      Option.map (fun v -> (name, v)) (Metrics.value ~labels name))
    [
      "urs_spectral_dominant_z";
      "urs_spectral_residual";
      "urs_spectral_eigenvalues";
    ]

let evaluate ?pool ?max_iter ?(strategy = Exact) model =
  let labels = [ ("strategy", strategy_label strategy) ] in
  Metrics.inc
    (Metrics.counter ~labels ~help:"Solver.evaluate calls"
       "urs_solver_calls_total");
  let t0 = Span.now () in
  let result =
    Span.with_ ~name:"urs_solver_evaluate" ~labels (fun () ->
        evaluate_inner ?pool ?max_iter ~strategy model)
  in
  let wall = Span.now () -. t0 in
  let outcome_counter =
    match result with
    | Ok _ ->
        Metrics.counter ~labels ~help:"Solver.evaluate successes"
          "urs_solver_success_total"
    | Error _ ->
        Metrics.counter ~labels ~help:"Solver.evaluate failures"
          "urs_solver_failures_total"
  in
  Metrics.inc outcome_counter;
  (match result with
  | Ok p ->
      Ledger.record ~kind:"solver.evaluate"
        ~strategy:(strategy_label strategy) ~params:(ledger_params model)
        ~wall_seconds:wall
        ~summary:
          (List.concat
             [
               [
                 ("mean_jobs", Json.Float p.mean_jobs);
                 ("mean_response", Json.Float p.mean_response);
                 ("utilization", Json.Float p.utilization);
               ];
               (match p.dominant_eigenvalue with
               | Some z -> [ ("dominant_z", Json.Float z) ]
               | None -> []);
               (match p.confidence_half_width with
               | Some hw -> [ ("ci_half_width", Json.Float hw) ]
               | None -> []);
             ])
        ~gauges:(ledger_gauges strategy) ()
  | Error e ->
      Ledger.record ~kind:"solver.evaluate"
        ~strategy:(strategy_label strategy) ~params:(ledger_params model)
        ~wall_seconds:wall ~outcome:"error"
        ~summary:[ ("error", Json.String (render pp_error e)) ]
        ());
  result

let evaluate_exn ?pool ?max_iter ?strategy model =
  match evaluate ?pool ?max_iter ?strategy model with
  | Ok p -> p
  | Error e -> failwith (render pp_error e)

let strategy_name = function
  | Exact -> "exact (spectral expansion)"
  | Approximate -> "geometric approximation"
  | Matrix_geometric -> "matrix-geometric"
  | Simulation _ -> "simulation"

let pp_performance ppf p =
  Format.fprintf ppf "L=%.4f W=%.4f util=%.3f [%s]" p.mean_jobs p.mean_response
    p.utilization (strategy_name p.strategy_used);
  (match p.dominant_eigenvalue with
  | Some z -> Format.fprintf ppf " z_s=%.5f" z
  | None -> ());
  match p.confidence_half_width with
  | Some hw -> Format.fprintf ppf " ±%.4f" hw
  | None -> ()
