let min_servers_for_response ?strategy ?(n_max = 500) model ~target =
  if target <= 0.0 then
    invalid_arg "Capacity.min_servers_for_response: target must be positive";
  let rec go n last_err =
    if n > n_max then
      match last_err with
      | Some e -> Error e
      | None -> Error (Solver.Solver_failure "target not reachable within n_max")
    else
      let m = Model.with_servers model n in
      if not (Model.stability m).Urs_mmq.Stability.stable then go (n + 1) last_err
      else
        match Solver.evaluate ?strategy m with
        | Error e -> go (n + 1) (Some e)
        | Ok perf ->
            if perf.Solver.mean_response <= target then Ok (n, perf)
            else go (n + 1) last_err
  in
  go 1 None

let response_profile ?strategy model ~n_min ~n_max =
  if n_min < 1 || n_max < n_min then
    invalid_arg "Capacity.response_profile: bad range";
  List.filter_map
    (fun n ->
      match Solver.evaluate ?strategy (Model.with_servers model n) with
      | Ok perf -> Some (n, perf.Solver.mean_response)
      | Error _ -> None)
    (List.init (n_max - n_min + 1) (fun i -> n_min + i))
