(** The [POST /solve] route: a JSON model in, stationary metrics out.

    Request body (one JSON object):
    {v
    {"servers": 10, "lambda": 8.0, "mu": 1.0,
     "operative": "h2:0.7246,0.1663,0.0091",
     "inoperative": "exp:25",
     "repair_crews": 2,
     "strategy": "exact",
     "sim": {"duration": 200000, "replications": 5, "seed": 1}}
    v}
    or [{"scenario": "paper"}] / [{"scenario": "paper-h2"}] (the §4
    configurations), with explicit fields overriding the scenario's
    defaults. Distributions use the CLI's compact syntax
    ([exp:R | h2:W1,R1,R2 | det:V | erlang:K,R]); [strategy] is
    [exact] (default), [approx], [mg] or [sim] (with optional [sim]
    options). Defaults mirror [urs solve]'s flags, so an empty object
    [{}] solves the same model as a bare [urs solve].

    The response carries the model's ledger parameters, the
    performance record (including [mean_queue_wait] — sojourn minus
    service requirement), whether this request hit the solve cache and
    the solve wall time. Malformed bodies, unknown scenarios, unstable
    or non-phase-type models are 400s (the client's fault); a
    numerical solver failure is a 500 — which is what makes
    [urs serve --solve-max-iter 1] a deliberate error-rate-SLO breach
    drill. Results are bit-identical to {!Solver.evaluate} at any pool
    width. *)

val dist_of_string : string -> (Urs_prob.Distribution.t, string) result
(** Parse the compact distribution syntax (shared with the CLI flags). *)

val parse_request :
  string -> (Model.t * Solver.strategy, string) result
(** Parse a request body; exposed for tests. *)

val handle :
  ?pool:Urs_exec.Pool.t ->
  ?cache:Solve_cache.t ->
  ?max_iter:int ->
  Urs_obs.Http.query ->
  body:string ->
  Urs_obs.Http.response
(** The handler. With [max_iter] set, the cache is bypassed entirely —
    a capped solver is a fault drill and its results must be neither
    memoized nor masked by healthy cached answers. *)

val post_route :
  ?pool:Urs_exec.Pool.t ->
  ?cache:Solve_cache.t ->
  ?max_iter:int ->
  unit ->
  string * (Urs_obs.Http.query -> body:string -> Urs_obs.Http.response)
(** [("/solve", handler)] — ready for {!Urs_obs.Http.start}'s
    [post_routes]. *)
