module Http = Urs_obs.Http
module Json = Urs_obs.Json
module Span = Urs_obs.Span

(* The POST /solve route: a JSON model in, stationary metrics out.

   The request body is a single JSON object:

     {"servers": 10, "lambda": 8.0, "mu": 1.0,
      "operative": "h2:0.7246,0.1663,0.0091",
      "inoperative": "exp:25",
      "repair_crews": 2,
      "strategy": "exact",
      "sim": {"duration": 200000, "replications": 5, "seed": 1}}

   or {"scenario": "paper"} (the paper's §4 configuration), with any of
   the explicit fields overriding the scenario's defaults.
   Distributions use the CLI's compact syntax (exp:R | h2:W1,R1,R2 |
   det:V | erlang:K,R). Malformed input is the client's fault (400);
   an unstable or non-phase-type model likewise (the solver cannot
   help); a numerical solver failure is ours (500).

   Solves go through Solve_cache so repeated models are served from
   memory; the response says whether this request hit. The solver emits
   its usual metrics/ledger records, and the route handler runs inside
   the HTTP middleware, so every solve correlates with an http.access
   record through the request's trace context. *)

let scenarios =
  [
    (* §4's running configuration: N=10 unreliable servers, the fitted
       H2 operative periods, exponential repairs *)
    ( "paper",
      fun () ->
        Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
          ~operative:Model.paper_operative
          ~inoperative:Model.paper_inoperative_exp () );
    (* same with the fitted H2 inoperative periods (Figure 4) *)
    ( "paper-h2",
      fun () ->
        Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
          ~operative:Model.paper_operative
          ~inoperative:Model.paper_inoperative_h2 () );
  ]

let dist_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ "exp"; r ] -> (
      match float_of_string_opt r with
      | Some r when r > 0.0 -> Ok (Urs_prob.Distribution.exponential ~rate:r)
      | _ -> Error "exp: needs a positive rate")
  | [ "h2"; rest ] -> (
      match List.map float_of_string_opt (String.split_on_char ',' rest) with
      | [ Some w1; Some r1; Some r2 ] when w1 >= 0.0 && w1 <= 1.0 ->
          Ok (Urs_prob.Distribution.h2 ~w1 ~r1 ~r2)
      | _ -> Error "h2: needs W1,RATE1,RATE2")
  | [ "det"; v ] -> (
      match float_of_string_opt v with
      | Some v when v > 0.0 -> Ok (Urs_prob.Distribution.deterministic v)
      | _ -> Error "det: needs a positive value")
  | [ "erlang"; rest ] -> (
      match String.split_on_char ',' rest with
      | [ k; r ] -> (
          match (int_of_string_opt k, float_of_string_opt r) with
          | Some k, Some r when k >= 1 && r > 0.0 ->
              Ok (Urs_prob.Distribution.erlang ~k ~rate:r)
          | _ -> Error "erlang: needs K,RATE")
      | _ -> Error "erlang: needs K,RATE")
  | _ -> Error (Printf.sprintf "unknown distribution %S" s)

(* request-shape helpers over the minimal Json.t *)
let to_int_opt = function
  | Json.Int i -> Some i
  | Json.Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let field name body = Json.member name body

let float_field name ~default body =
  match field name body with
  | None -> Ok default
  | Some j -> (
      match Json.to_float_opt j with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "%S must be a number" name))

let int_field name ~default body =
  match field name body with
  | None -> Ok default
  | Some j -> (
      match to_int_opt j with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "%S must be an integer" name))

let dist_field name ~default body =
  match field name body with
  | None -> Ok default
  | Some (Json.String s) -> (
      match dist_of_string s with
      | Ok d -> Ok d
      | Error msg -> Error (Printf.sprintf "%S: %s" name msg))
  | Some _ ->
      Error
        (Printf.sprintf "%S must be a distribution string (exp:R | h2:W,R1,R2 | det:V | erlang:K,R)" name)

let ( let* ) = Result.bind

let parse_strategy body =
  match field "strategy" body with
  | None -> Ok Solver.Exact
  | Some (Json.String "exact") -> Ok Solver.Exact
  | Some (Json.String "approx") -> Ok Solver.Approximate
  | Some (Json.String "mg") -> Ok Solver.Matrix_geometric
  | Some (Json.String "sim") ->
      let d = Solver.default_sim_options in
      let sim = Option.value (field "sim" body) ~default:(Json.Obj []) in
      let* duration = float_field "duration" ~default:d.Solver.duration sim in
      let* replications =
        int_field "replications" ~default:d.Solver.replications sim
      in
      let* seed = int_field "seed" ~default:d.Solver.seed sim in
      if duration <= 0.0 then Error "\"duration\" must be positive"
      else if replications < 1 then Error "\"replications\" must be >= 1"
      else Ok (Solver.Simulation { duration; replications; seed })
  | Some (Json.String s) ->
      Error (Printf.sprintf "unknown strategy %S (exact|approx|mg|sim)" s)
  | Some _ -> Error "\"strategy\" must be a string"

let parse_model body =
  let* base =
    match field "scenario" body with
    | None -> Ok None
    | Some (Json.String name) -> (
        match List.assoc_opt name scenarios with
        | Some make -> Ok (Some (make ()))
        | None ->
            Error
              (Printf.sprintf "unknown scenario %S (%s)" name
                 (String.concat "|" (List.map fst scenarios))))
    | Some _ -> Error "\"scenario\" must be a string"
  in
  let dfl f v = match base with Some m -> f m | None -> v in
  let* servers = int_field "servers" ~default:(dfl (fun m -> m.Model.servers) 10) body in
  let* lambda =
    float_field "lambda" ~default:(dfl (fun m -> m.Model.arrival_rate) 8.0) body
  in
  let* mu =
    float_field "mu" ~default:(dfl (fun m -> m.Model.service_rate) 1.0) body
  in
  let* operative =
    dist_field "operative"
      ~default:(dfl (fun m -> m.Model.operative) Model.paper_operative)
      body
  in
  let* inoperative =
    dist_field "inoperative"
      ~default:(dfl (fun m -> m.Model.inoperative) Model.paper_inoperative_exp)
      body
  in
  let* repair_crews =
    match field "repair_crews" body with
    | None -> Ok (dfl (fun m -> m.Model.repair_crews) None)
    | Some Json.Null -> Ok None
    | Some j -> (
        match to_int_opt j with
        | Some k -> Ok (Some k)
        | None -> Error "\"repair_crews\" must be an integer or null")
  in
  match
    Model.create ?repair_crews ~servers ~arrival_rate:lambda ~service_rate:mu
      ~operative ~inoperative ()
  with
  | m -> Ok m
  | exception Invalid_argument msg -> Error msg

let parse_request raw =
  match Json.of_string raw with
  | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | Ok (Json.Obj _ as body) ->
      let* model = parse_model body in
      let* strategy = parse_strategy body in
      Ok (model, strategy)
  | Ok _ -> Error "request body must be a JSON object"

let opt_float name = function
  | Some v -> [ (name, Json.Float v) ]
  | None -> []

let performance_json ~mu (p : Solver.performance) =
  Json.Obj
    ([
       ("strategy", Json.String (Solver.strategy_label p.strategy_used));
       ("mean_jobs", Json.Float p.mean_jobs);
       ("mean_response", Json.Float p.mean_response);
       (* the stationary queue-wait: sojourn minus the service
          requirement — what a job spends waiting for a server *)
       ("mean_queue_wait", Json.Float (p.mean_response -. (1.0 /. mu)));
       ("utilization", Json.Float p.utilization);
     ]
    @ opt_float "dominant_eigenvalue" p.dominant_eigenvalue
    @ opt_float "ci_half_width" p.confidence_half_width)

let error_response ~status msg =
  {
    Http.status;
    content_type = "application/json";
    body = Json.to_string (Json.Obj [ ("error", Json.String msg) ]) ^ "\n";
  }

let handle ?pool ?cache ?max_iter _query ~body =
  match parse_request body with
  | Error msg -> error_response ~status:400 msg
  | Ok (model, strategy) -> (
      let t0 = Span.now () in
      let result, hit =
        match max_iter with
        (* a capped solver is a fault drill: never memoize its results
           (and never serve it a healthy cached answer) *)
        | Some _ -> (Solver.evaluate ?pool ?max_iter ~strategy model, false)
        | None -> Solve_cache.evaluate_info ?pool ?cache ~strategy model
      in
      let solve_s = Span.now () -. t0 in
      match result with
      | Ok p ->
          {
            Http.status = 200;
            content_type = "application/json";
            body =
              Json.to_string
                (Json.Obj
                   [
                     ("model", Json.Obj (Solver.ledger_params model));
                     ( "performance",
                       performance_json ~mu:model.Model.service_rate p );
                     ( "cache",
                       Json.Obj
                         [
                           ("hit", Json.Bool hit);
                           ("enabled", Json.Bool (cache <> None));
                         ] );
                     ("solve_seconds", Json.Float solve_s);
                   ])
              ^ "\n";
          }
      | Error (Solver.Solver_failure _ as e) ->
          (* a numerical failure on a stable, well-formed model is the
             service's fault — and the hook the SLO fault drill uses *)
          error_response ~status:500 (Format.asprintf "%a" Solver.pp_error e)
      | Error e ->
          error_response ~status:400 (Format.asprintf "%a" Solver.pp_error e))

let post_route ?pool ?cache ?max_iter () =
  ("/solve", fun q ~body -> handle ?pool ?cache ?max_iter q ~body)
