(** HTTP traffic generation against [urs serve] — the measuring half of
    the serving-and-measuring loop ([urs loadgen]).

    Two disciplines:
    - {e closed loop}: [workers] clients cycling request → response →
      think ([think_s]); offered load adapts to the service rate.
    - {e open loop}: arrivals scheduled by a Poisson process of rate
      [rate] (shared across [workers] senders), independent of the
      server. Latency is measured from the {e scheduled} arrival, so
      coordinated omission cannot hide a slow server: when all workers
      are busy, the queueing of later arrivals counts against their
      response times.

    Latencies land in a run-local histogram over
    {!Urs_obs.Metrics.default_latency_buckets}; the result's quantiles
    come from {!Urs_obs.Metrics.histogram_quantile}, and every run
    appends one ["loadgen"] ledger record. *)

type mode =
  | Closed of { workers : int; think_s : float }
  | Open of { rate : float; workers : int }

type result = {
  mode : mode;
  target : string;
  requests : int;
  errors : int;  (** Non-2xx responses plus fast transport failures. *)
  timeouts : int;
      (** Transport failures that consumed the timeout budget. *)
  codes : (int * int) list;  (** Status code → count, sorted. *)
  wall_s : float;
  throughput : float;  (** Completed requests per second. *)
  mean_s : float;
  max_s : float;
  p50_s : float;
  p90_s : float;
  p99_s : float;  (** Interpolated quantiles; [nan] on an empty run. *)
}

val mode_label : mode -> string
(** ["closed"] or ["open"]. *)

val run :
  ?addr:string ->
  ?timeout_s:float ->
  ?seed:int ->
  ?meth:string ->
  ?body:string ->
  ?content_type:string ->
  port:int ->
  target:string ->
  duration_s:float ->
  mode:mode ->
  unit ->
  result
(** Generate traffic against [addr:port][target] for [duration_s]
    seconds. [meth]/[body]/[content_type] (defaults [GET], none,
    [application/json]) select the request — a POST body turns it into
    a solve-endpoint generator. [seed] (default 1) drives the Poisson
    schedule of the open-loop mode. Raises [Invalid_argument] on
    nonsensical parameters. *)

type comparison = {
  probes : int;  (** Calibration probes that succeeded. *)
  mu_hat : float;  (** Fitted service rate, 1/mean of unloaded probes. *)
  lambda : float;  (** The measured throughput, used as arrival rate. *)
  predicted_response_s : float;
      (** M/M/1 prediction at (λ, µ̂); [nan] when λ ≥ µ̂. *)
  measured_response_s : float;
}

val compare_model :
  ?probes:int ->
  ?addr:string ->
  ?timeout_s:float ->
  ?meth:string ->
  ?body:string ->
  ?content_type:string ->
  port:int ->
  target:string ->
  result ->
  (comparison, string) Stdlib.result
(** Calibrate the service rate with [probes] (default 30) sequential
    unloaded requests, then predict the loaded mean response time from
    the repo's own M/M/1 solver
    ({!Urs_mmq.Mmc.mean_response_time}[ ~servers:1]) at the measured
    throughput — the paper's measure/fit/predict/compare loop in
    miniature, with the serving process itself as the system under
    study. [Error] when every probe fails. *)

val result_json : result -> Urs_obs.Json.t
val comparison_json : comparison -> Urs_obs.Json.t
