(* Trace-correlation contexts: a 128-bit trace id, the 64-bit id of the
   current span, and the sampling decision, carried ambiently per domain
   and explicitly across domain (and process) boundaries.

   The id generator is a private splitmix64 stream (not Urs_prob.Rng —
   that would invert the library layering) behind a mutex: ids are drawn
   once per span or request, never in a hot loop. Seeding it makes every
   id deterministic, which is what the test goldens rely on; unseeded,
   the first draw mixes wall clock and pid so concurrent processes get
   distinct traces. *)

type t = {
  trace_hi : int64;
  trace_lo : int64;
  span_id : int64;
  sampled : bool;
}

(* ---- id generation ---- *)

let lock = Mutex.create ()

let state : int64 option ref = ref None

let set_seed seed =
  Mutex.lock lock;
  state := Some (Int64.of_int seed);
  Mutex.unlock lock

let clear_seed () =
  Mutex.lock lock;
  state := None;
  Mutex.unlock lock

let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 () =
  Mutex.lock lock;
  let s0 =
    match !state with
    | Some s -> s
    | None ->
        (* first use without an explicit seed: wall clock + pid entropy *)
        Int64.logxor
          (Int64.of_float (Unix.gettimeofday () *. 1e9))
          (Int64.of_int (Unix.getpid () * 0x9E37))
  in
  let s = Int64.add s0 0x9E3779B97F4A7C15L in
  state := Some s;
  Mutex.unlock lock;
  mix s

let rec nonzero64 () =
  let v = next64 () in
  if v = 0L then nonzero64 () else v

let fresh_span_id () = nonzero64 ()

let new_trace ?(sampled = true) () =
  { trace_hi = nonzero64 (); trace_lo = next64 ();
    span_id = nonzero64 (); sampled }

let child c = { c with span_id = nonzero64 () }

(* ---- rendering ---- *)

let id_hex id = Printf.sprintf "%016Lx" id

let trace_id_hex c = Printf.sprintf "%016Lx%016Lx" c.trace_hi c.trace_lo

let span_id_hex c = id_hex c.span_id

(* ---- W3C traceparent ---- *)

let to_traceparent c =
  Printf.sprintf "00-%s-%s-%s" (trace_id_hex c) (span_id_hex c)
    (if c.sampled then "01" else "00")

(* the header grammar demands lowercase hex; reject uppercase rather
   than normalize, per the spec's "vendors MUST reject" language *)
let is_lower_hex s =
  String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let hex64 s =
  (* 16 lowercase hex chars -> int64, full unsigned range *)
  let v = ref 0L in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | _ -> assert false
      in
      v := Int64.logor (Int64.shift_left !v 4) (Int64.of_int d))
    s;
  !v

let of_traceparent s =
  let s = String.trim s in
  match String.split_on_char '-' s with
  | version :: trace :: span :: flags :: rest ->
      if String.length version <> 2 || not (is_lower_hex version) then
        Error "traceparent: version must be two lowercase hex digits"
      else if version = "ff" then Error "traceparent: version ff is invalid"
      else if version = "00" && rest <> [] then
        Error "traceparent: version 00 allows exactly four fields"
      else if String.length trace <> 32 || not (is_lower_hex trace) then
        Error "traceparent: trace-id must be 32 lowercase hex digits"
      else if String.length span <> 16 || not (is_lower_hex span) then
        Error "traceparent: parent-id must be 16 lowercase hex digits"
      else if String.length flags <> 2 || not (is_lower_hex flags) then
        Error "traceparent: flags must be two lowercase hex digits"
      else if String.for_all (( = ) '0') trace then
        Error "traceparent: all-zero trace-id is invalid"
      else if String.for_all (( = ) '0') span then
        Error "traceparent: all-zero parent-id is invalid"
      else
        let trace_hi = hex64 (String.sub trace 0 16) in
        let trace_lo = hex64 (String.sub trace 16 16) in
        let span_id = hex64 span in
        let sampled =
          Int64.logand (hex64 flags) 1L = 1L
        in
        Ok { trace_hi; trace_lo; span_id; sampled }
  | _ -> Error "traceparent: expected version-traceid-parentid-flags"

(* ---- ambient current context ----

   Domain-local, like the span stacks in [Span]: a pool task restored
   onto a worker domain must not see (or clobber) the submitter
   domain's context. Note the HTTP server thread shares domain 0 with
   the main thread, so request handling passes its context explicitly
   (Ledger.record ?context) instead of mutating the ambient cell. *)

let ambient : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get ambient)

let capture = current

let with_restored saved f =
  let cell = Domain.DLS.get ambient in
  let prev = !cell in
  cell := saved;
  Fun.protect ~finally:(fun () -> (Domain.DLS.get ambient) := prev) f

let restore = with_restored

let with_current c f = with_restored (Some c) f
