let fmt_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Json.float_str v

let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* HELP text shares the escaping rules minus the quote (it is not
   quoted in the exposition format); an unescaped newline would split
   the comment and corrupt the whole scrape *)
let escape_help s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* render a label set, optionally with an extra le="..." pair appended *)
let label_str ?le labels =
  let pairs =
    List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels
    @ (match le with
      | Some bound -> [ Printf.sprintf "le=\"%s\"" bound ]
      | None -> [])
  in
  if pairs = [] then "" else "{" ^ String.concat "," pairs ^ "}"

let type_name (e : Metrics.entry) =
  match e.Metrics.data with
  | Metrics.Counter_value _ -> "counter"
  | Metrics.Gauge_value _ -> "gauge"
  | Metrics.Histogram_value _ -> "histogram"

(* Welford summaries can degenerate: zero observations, or an observed
   infinity (e.g. the CI half-width of a single replication) poison the
   running mean. Exporters clamp those to 0 rather than emit nan/inf. *)
let finite_or_zero v = if Float.is_finite v then v else 0.0

let is_zero (e : Metrics.entry) =
  match e.Metrics.data with
  | Metrics.Counter_value v | Metrics.Gauge_value v -> v = 0.0
  | Metrics.Histogram_value h -> h.count = 0

let filter_zero skip entries =
  if skip then List.filter (fun e -> not (is_zero e)) entries else entries

(* ---- build info ----

   One constant gauge identifying the process, in the style of
   node_exporter's node_exporter_build_info: the value is always 1 and
   the information lives in the labels. Set once at startup (the CLI
   does); exporters emit it only when set, so library users and tests
   that never call set_build_info see unchanged output. *)

let build_info = ref None

let set_build_info ~version () =
  build_info := Some [ ("version", version); ("ocaml", Sys.ocaml_version) ]

let clear_build_info () = build_info := None

let default_quantiles = [ 0.5; 0.9; 0.99 ]

(* quantile estimates as a synthesized gauge family <name>_quantile with
   a quantile="q" label — derived data, kept out of the histogram family
   proper so PromQL's own histogram_quantile() still sees clean buckets *)
let quantile_rows quantiles (e : Metrics.entry) =
  match e.Metrics.data with
  | Metrics.Histogram_value h when h.count > 0 && quantiles <> [] ->
      List.filter_map
        (fun q ->
          let v =
            Metrics.histogram_quantile ~bounds:h.bounds ~counts:h.counts q
          in
          if Float.is_nan v then None else Some (q, v))
        quantiles
  | _ -> []

let prometheus ?(skip_zero = false) ?(quantiles = []) entries =
  let entries = filter_zero skip_zero entries in
  let buf = Buffer.create 1024 in
  (match !build_info with
  | None -> ()
  | Some labels ->
      Buffer.add_string buf
        "# HELP urs_build_info Build information; the value is constant 1.\n\
         # TYPE urs_build_info gauge\n";
      Buffer.add_string buf
        (Printf.sprintf "urs_build_info%s 1\n" (label_str labels)));
  (* HELP/TYPE must appear exactly once per family. Adjacency (entries
     sorted by name) is not enough: callers can legally pass a
     concatenation of snapshots — e.g. `--metrics` dumping while
     `--serve-metrics` scrapes assembled the same registry twice — so
     track families actually emitted. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Metrics.entry) ->
      if not (Hashtbl.mem seen e.Metrics.name) then begin
        Hashtbl.add seen e.Metrics.name ();
        if e.Metrics.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" e.Metrics.name
               (escape_help e.Metrics.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" e.Metrics.name (type_name e))
      end;
      match e.Metrics.data with
      | Metrics.Counter_value v | Metrics.Gauge_value v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" e.Metrics.name
               (label_str e.Metrics.labels)
               (fmt_float v))
      | Metrics.Histogram_value h ->
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let bound =
                if i < Array.length h.bounds then fmt_float h.bounds.(i)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" e.Metrics.name
                   (label_str ~le:bound e.Metrics.labels)
                   !cum))
            h.counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" e.Metrics.name
               (label_str e.Metrics.labels)
               (fmt_float h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" e.Metrics.name
               (label_str e.Metrics.labels)
               h.count))
    entries;
  (* quantile families come after every histogram family: entries are
     sorted by name, so each synthesized family stays contiguous (the
     format requires one group per family) *)
  List.iter
    (fun (e : Metrics.entry) ->
      match quantile_rows quantiles e with
      | [] -> ()
      | rows ->
          let family = e.Metrics.name ^ "_quantile" in
          if not (Hashtbl.mem seen family) then begin
            Hashtbl.add seen family ();
            Buffer.add_string buf
              (Printf.sprintf
                 "# HELP %s Interpolated quantile estimates of %s.\n\
                  # TYPE %s gauge\n"
                 family e.Metrics.name family)
          end;
          List.iter
            (fun (q, v) ->
              let labels =
                List.sort
                  (fun (a, _) (b, _) -> compare a b)
                  (("quantile", fmt_float q) :: e.Metrics.labels)
              in
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" family (label_str labels)
                   (fmt_float v)))
            rows)
    entries;
  Buffer.contents buf

let entry_json ?(quantiles = []) (e : Metrics.entry) =
  let labels =
    if e.Metrics.labels = [] then []
    else
      [
        ( "labels",
          Json.Obj
            (List.map (fun (k, v) -> (k, Json.String v)) e.Metrics.labels) );
      ]
  in
  let help =
    if e.Metrics.help = "" then [] else [ ("help", Json.String e.Metrics.help) ]
  in
  let payload =
    match e.Metrics.data with
    | Metrics.Counter_value v | Metrics.Gauge_value v ->
        [ ("value", Json.Float v) ]
    | Metrics.Histogram_value h ->
        let cum = ref 0 in
        let buckets =
          Array.to_list
            (Array.mapi
               (fun i c ->
                 cum := !cum + c;
                 let le =
                   if i < Array.length h.bounds then Json.Float h.bounds.(i)
                   else Json.String "+Inf"
                 in
                 Json.Obj [ ("le", le); ("count", Json.Int !cum) ])
               h.counts)
        in
        let qs =
          match quantile_rows quantiles e with
          | [] -> []
          | rows ->
              [
                ( "quantiles",
                  Json.Obj
                    (List.map (fun (q, v) -> (fmt_float q, Json.Float v)) rows)
                );
              ]
        in
        [
          ("count", Json.Int h.count);
          ("sum", Json.Float h.sum);
          ("mean", Json.Float (finite_or_zero h.mean));
          ("stddev", Json.Float (finite_or_zero h.stddev));
          ("buckets", Json.List buckets);
        ]
        @ qs
  in
  Json.Obj
    ([ ("name", Json.String e.Metrics.name);
       ("type", Json.String (type_name e));
     ]
    @ help @ labels @ payload)

let json_value ?(skip_zero = false) ?(quantiles = []) entries =
  let info =
    match !build_info with
    | None -> []
    | Some labels ->
        [
          Json.Obj
            [
              ("name", Json.String "urs_build_info");
              ("type", Json.String "gauge");
              ( "labels",
                Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)
              );
              ("value", Json.Float 1.0);
            ];
        ]
  in
  Json.Obj
    [
      ( "metrics",
        Json.List
          (info
          @ List.map (entry_json ~quantiles) (filter_zero skip_zero entries))
      );
    ]

let json ?skip_zero ?quantiles entries =
  Json.to_string (json_value ?skip_zero ?quantiles entries)

(* ---- static Urs_stats histograms as Prometheus histograms ----

   The fit pipeline's binned sample histograms (equal-width bins over
   [lo, hi]) map directly onto cumulative le-buckets: the upper edge of
   bin i is the bound, the final +Inf bucket repeats the total (build
   clamps outliers into the edge bins, so nothing lies beyond). _sum is
   the midpoint approximation sum(midpoint_i * count_i) — the same
   estimator the pipeline's histogram moments use (eq. 1). *)
let stats_histogram ?(labels = []) ?(help = "") ~name h =
  if not (Metrics.is_valid_name name) then
    invalid_arg (Printf.sprintf "Export.stats_histogram: invalid name %S" name);
  let mids = Urs_stats.Histogram.midpoints h in
  let counts = Urs_stats.Histogram.counts h in
  let half = Urs_stats.Histogram.width h /. 2.0 in
  let buf = Buffer.create 512 in
  if help <> "" then
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
  let cum = ref 0 in
  let sum = ref 0.0 in
  Array.iteri
    (fun i c ->
      cum := !cum + c;
      sum := !sum +. (float_of_int c *. mids.(i));
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" name
           (label_str ~le:(fmt_float (mids.(i) +. half)) labels)
           !cum))
    counts;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket%s %d\n" name
       (label_str ~le:"+Inf" labels)
       (Urs_stats.Histogram.total h));
  Buffer.add_string buf
    (Printf.sprintf "%s_sum%s %s\n" name (label_str labels) (fmt_float !sum));
  Buffer.add_string buf
    (Printf.sprintf "%s_count%s %d\n" name (label_str labels)
       (Urs_stats.Histogram.total h));
  Buffer.contents buf
