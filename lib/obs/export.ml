let fmt_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Json.float_str v

let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* render a label set, optionally with an extra le="..." pair appended *)
let label_str ?le labels =
  let pairs =
    List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels
    @ (match le with
      | Some bound -> [ Printf.sprintf "le=\"%s\"" bound ]
      | None -> [])
  in
  if pairs = [] then "" else "{" ^ String.concat "," pairs ^ "}"

let type_name (e : Metrics.entry) =
  match e.Metrics.data with
  | Metrics.Counter_value _ -> "counter"
  | Metrics.Gauge_value _ -> "gauge"
  | Metrics.Histogram_value _ -> "histogram"

(* Welford summaries can degenerate: zero observations, or an observed
   infinity (e.g. the CI half-width of a single replication) poison the
   running mean. Exporters clamp those to 0 rather than emit nan/inf. *)
let finite_or_zero v = if Float.is_finite v then v else 0.0

let is_zero (e : Metrics.entry) =
  match e.Metrics.data with
  | Metrics.Counter_value v | Metrics.Gauge_value v -> v = 0.0
  | Metrics.Histogram_value h -> h.count = 0

let filter_zero skip entries =
  if skip then List.filter (fun e -> not (is_zero e)) entries else entries

let prometheus ?(skip_zero = false) entries =
  let entries = filter_zero skip_zero entries in
  let buf = Buffer.create 1024 in
  let last_header = ref "" in
  List.iter
    (fun (e : Metrics.entry) ->
      (* entries are sorted by name: emit HELP/TYPE once per family *)
      if e.Metrics.name <> !last_header then begin
        last_header := e.Metrics.name;
        if e.Metrics.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" e.Metrics.name e.Metrics.help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" e.Metrics.name (type_name e))
      end;
      match e.Metrics.data with
      | Metrics.Counter_value v | Metrics.Gauge_value v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" e.Metrics.name
               (label_str e.Metrics.labels)
               (fmt_float v))
      | Metrics.Histogram_value h ->
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let bound =
                if i < Array.length h.bounds then fmt_float h.bounds.(i)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" e.Metrics.name
                   (label_str ~le:bound e.Metrics.labels)
                   !cum))
            h.counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" e.Metrics.name
               (label_str e.Metrics.labels)
               (fmt_float h.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" e.Metrics.name
               (label_str e.Metrics.labels)
               h.count))
    entries;
  Buffer.contents buf

let entry_json (e : Metrics.entry) =
  let labels =
    if e.Metrics.labels = [] then []
    else
      [
        ( "labels",
          Json.Obj
            (List.map (fun (k, v) -> (k, Json.String v)) e.Metrics.labels) );
      ]
  in
  let help =
    if e.Metrics.help = "" then [] else [ ("help", Json.String e.Metrics.help) ]
  in
  let payload =
    match e.Metrics.data with
    | Metrics.Counter_value v | Metrics.Gauge_value v ->
        [ ("value", Json.Float v) ]
    | Metrics.Histogram_value h ->
        let cum = ref 0 in
        let buckets =
          Array.to_list
            (Array.mapi
               (fun i c ->
                 cum := !cum + c;
                 let le =
                   if i < Array.length h.bounds then Json.Float h.bounds.(i)
                   else Json.String "+Inf"
                 in
                 Json.Obj [ ("le", le); ("count", Json.Int !cum) ])
               h.counts)
        in
        [
          ("count", Json.Int h.count);
          ("sum", Json.Float h.sum);
          ("mean", Json.Float (finite_or_zero h.mean));
          ("stddev", Json.Float (finite_or_zero h.stddev));
          ("buckets", Json.List buckets);
        ]
  in
  Json.Obj
    ([ ("name", Json.String e.Metrics.name);
       ("type", Json.String (type_name e));
     ]
    @ help @ labels @ payload)

let json_value ?(skip_zero = false) entries =
  Json.Obj
    [
      ( "metrics",
        Json.List (List.map entry_json (filter_zero skip_zero entries)) );
    ]

let json ?skip_zero entries = Json.to_string (json_value ?skip_zero entries)
