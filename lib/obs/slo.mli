(** Declarative service-level objectives with multi-window burn-rate
    evaluation over the metrics registry.

    An objective budgets a fraction of bad events: [p99 < 50ms] allows
    1% of requests above 50 ms (estimated from the latency histogram by
    {!Metrics.histogram_count_above}); [error_rate < 0.1%] allows 0.1%
    of requests to be answered 5xx (read off the
    [urs_http_requests_total{code}] counters). Each {!evaluate} takes a
    cumulative (bad, total) sample per objective and computes, for each
    configured window, the burn rate [(Δbad/Δtotal)/budget] against the
    youngest retained sample old enough to cover that window. A burn
    rate of 1.0 spends the budget exactly as fast as allowed; the
    objective {e breaches} when every window burns above 1 — the
    multi-window rule from the Google SRE workbook: the fast window
    (default 5 m) makes detection responsive, the slow window (default
    1 h) keeps a brief blip from alarming.

    The clock is pluggable, so tests and the doctor's [slo] stage can
    replay hours of traffic in microseconds. {!evaluate} additionally
    publishes [urs_slo_burn_rate{objective,window}] and
    [urs_slo_breached{objective}] gauges on the engine's registry and
    appends one ["slo"] ledger record per objective. *)

type window = { label : string; seconds : float }

val default_windows : window list
(** [5m] (300 s) and [1h] (3600 s). *)

type sli =
  | Latency of { metric : string; q : float; threshold_s : float }
      (** "[q]-quantile of histogram [metric] below [threshold_s]";
          bad events are observations above the threshold. *)
  | Error_rate of { metric : string }
      (** Fraction of counter family [metric] carrying a [code >= 500]
          label. *)

type objective = { name : string; sli : sli; budget : float }
(** [budget] is the allowed bad fraction — [1 - q] for latency
    objectives, the target rate for error-rate objectives. *)

val default_latency_metric : string
(** ["urs_http_request_seconds"]. *)

val default_error_metric : string
(** ["urs_http_requests_total"]. *)

val parse_objective : string -> (objective, string) result
(** Parse a spec of the form [\[name:\] pNN\[(metric)\] < DURATION] or
    [\[name:\] error_rate\[(metric)\] < PERCENT]: e.g.
    ["p99 < 50ms"], ["api: p99.9(urs_http_request_seconds) < 2s"],
    ["error_rate < 0.1%"]. Durations take [us]/[ms]/[s] suffixes; a
    bare rate is a fraction, [X%] a percentage. Without a [name:]
    prefix, the expression names itself. *)

val parse_objective_exn : string -> objective
(** Same, raising [Invalid_argument] — for hard-coded defaults. *)

val describe_sli : sli -> string
(** Short human form, e.g. ["p99 < 50ms"]. *)

type t
(** A running engine: objectives plus the retained sample history. *)

val create :
  ?clock:(unit -> float) ->
  ?windows:window list ->
  ?registry:Metrics.t ->
  objective list ->
  t
(** [create objectives] takes an immediate baseline sample, so traffic
    served before the engine existed is never charged against the
    budget. [clock] defaults to {!Span.now}, [windows] to
    {!default_windows}, [registry] to {!Metrics.default}. Raises
    [Invalid_argument] on an empty objective or window list. *)

val objectives : t -> objective list

val tick : t -> unit
(** Take a sample without evaluating — call periodically so windows
    have baselines at the right depths. Samples older than the longest
    window are pruned (one older sample is kept as the slow window's
    baseline). *)

type window_eval = {
  window : string;
  window_s : float;
  span_s : float;
      (** Time actually covered — less than [window_s] while the engine
          is younger than the window. *)
  bad : float;
  total : float;
  burn_rate : float;  (** [0.] when the window saw no events. *)
}

type eval = {
  objective : objective;
  current : float;
      (** The SLI's instantaneous value: the interpolated quantile
          (latency) or the cumulative error rate; [nan] when the metric
          has no data yet. *)
  cumulative_bad : float;
  cumulative_total : float;
  windows : window_eval list;
  breached : bool;
      (** Every window burning above 1 (windows with no events don't
          breach). *)
}

val evaluate : t -> eval list
(** Sample, evaluate every objective, publish burn-rate/breached gauges
    and ["slo"] ledger records, and return the verdicts in objective
    order. *)

val any_breached : eval list -> bool

val eval_json : eval -> Json.t

val to_json : eval list -> Json.t
(** [{"objectives": [...], "breached": bool}] — the [/slo] route's
    response body. *)
