(** Wall-clock timers and hierarchical spans.

    [with_ ~name f] times [f] and records the duration into a
    [<name>_seconds] histogram in the metrics registry (so every span is
    also a metric). When tracing is enabled ({!set_tracing}), spans
    additionally build a tree of timed regions — nested [with_] calls
    become children — which {!trace_json} renders as a flame-style JSON
    document.

    The span stack is domain-local, so pool tasks on different domains
    time their own trees without interleaving; each node records the
    integer id of the domain that ran it (the ["domain"] field of the
    trace JSON), and completed roots are collected under a mutex.

    Every traced span also carries correlation ids from {!Context}: it
    derives a child of the ambient context (or starts a fresh trace)
    and installs it for the duration of [f], so the trace id, its own
    span id, and its parent's span id land in the trace JSON
    (["trace_id"], ["span_id"], ["parent_span_id"]). Because
    [Urs_exec.Pool] captures the submitter's context and restores it on
    the worker domain, a pool task's root span parents onto the
    submitting span even though it lives in another domain's physical
    forest — the per-domain trees knit into one logical tree keyed by
    span ids.

    The clock is pluggable ({!set_clock}) so tests can drive
    deterministic durations. The default clock is
    [Unix.gettimeofday]. *)

val now : unit -> float
(** Current time from the active clock, in seconds. *)

val set_clock : (unit -> float) -> unit
(** Replace the clock (tests). *)

val use_default_clock : unit -> unit

val set_tracing : bool -> unit
(** Enable/disable trace-tree collection (default: disabled — metrics
    are always recorded regardless). Enabling also clears any previous
    trace. *)

val tracing_enabled : unit -> bool

val set_gc_profiling : bool -> unit
(** Enable/disable GC profiling (default: disabled). When on (and
    tracing is also on), every span samples [Gc.quick_stat] at entry and
    exit and attaches the minor/promoted/major word deltas to its trace
    node (["gc_minor_words"] etc. in {!trace_json}, [args] in
    {!trace_perfetto}). The same switch gates the per-task GC deltas in
    [Urs_exec.Pool] and is what [Urs_obs.Runtime.set_profiling]
    toggles; it lives here so neither module depends on the other. A
    disabled probe costs one atomic load per span. *)

val gc_profiling_enabled : unit -> bool

val with_ :
  ?registry:Metrics.t -> ?labels:Metrics.labels -> name:string ->
  (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f], observing its wall-clock duration in the
    histogram [name ^ "_seconds"] (with the given labels) even when [f]
    raises. [name] must be a valid metric name. *)

val trace_json : unit -> string
(** The completed root spans (chronological), as JSON:
    [{"spans": [{"name", "labels", "start_s", "duration_s", "domain",
    "trace_id", "span_id", "parent_span_id"?,
    "children": [...]}, ...], "dropped": n}]. Roots are capped at an
    internal limit; [dropped] counts the excess. *)

val trace_perfetto : ?extra:Json.t list -> unit -> string
(** The same trace as {!trace_json}, flattened into Chrome/Perfetto
    "trace_events" JSON: [{"traceEvents": [{"name", "ph": "X", "ts",
    "dur", "pid", "tid", "args"?}, ...], "displayTimeUnit": "ms"}].
    Every span is one complete event; [ts]/[dur] are microseconds, the
    span's labels (and GC word deltas when profiling was on) become
    [args], and the domain id becomes the [tid] so each domain renders
    as its own track (pool parallelism is visible directly). [args]
    always carries the correlation ids ([trace_id], [span_id],
    [parent_span_id] when present). Cross-domain parent/child edges
    additionally emit a flow-event pair ([ph:"s"] on the parent's
    track, [ph:"f", bp:"e"] on the child's, keyed by the child's span
    id) so Perfetto draws the hand-off arrow and the per-domain tracks
    read as one connected tree. [extra] events — e.g. GC slices and
    counter samples from [Urs_obs.Runtime.perfetto_events] — are
    appended to [traceEvents] verbatim. Open the file in
    [ui.perfetto.dev] or [chrome://tracing]. *)

val reset_trace : unit -> unit
(** Drop all completed spans (the open-span stack survives only within
    [with_], so this is safe at any quiescent point). *)
