(** Minimal JSON value type and serializer — just enough for the
    exporters and the bench harness to emit machine-readable output
    without an external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float
(** Non-finite floats serialize as [null] (JSON has no NaN/Inf). *)

val float_str : float -> string
(** Shortest decimal form of a finite float that round-trips. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_channel : out_channel -> t -> unit
(** Compact rendering followed by a newline. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (the inverse of {!to_string}, used to
    re-read ledger journals). Numbers without a fractional part or
    exponent parse as [Int], everything else as [Float]; [\u] escapes
    above U+00FF are rejected (the serializer never emits them). *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks up a field; [None] on missing keys or
    non-objects. *)

val to_float_opt : t -> float option
(** [Float] or [Int] payload as a float. *)

val to_string_opt : t -> string option
