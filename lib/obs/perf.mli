(** Perf history: the bench summary journal behind [BENCH_history.jsonl]
    and the trend analysis behind [urs report].

    {b Schema ["urs-perf/1"]} — one JSON object per line:
    {v
    {"schema":"urs-perf/1",
     "time": <unix seconds the bench finished>,
     "git_rev": "<short git revision, or "unknown">",
     "ocaml": "<Sys.ocaml_version>",
     "jobs": <URS_JOBS pool width the bench ran with>,
     "sections": {"<section>": <wall seconds>, ...},
     "solvers": {"<solver>": {"seconds": <wall seconds per solve>,
                              "minor_words": <minor words per solve>,
                              "promoted_words": <...>,
                              "major_words": <...>}, ...}}
    v}
    Extra fields are ignored on read (the schema can grow
    backward-compatibly); an unknown ["schema"] tag is an error.
    {!append} never truncates — [make bench] only ever adds lines. *)

val schema : string
(** ["urs-perf/1"]. *)

type solver_stat = {
  seconds : float;  (** wall seconds per solve *)
  minor_words : float;  (** minor-heap words allocated per solve *)
  promoted_words : float;
  major_words : float;
}

type entry = {
  time : float;
  git_rev : string;
  ocaml : string;
  jobs : int;
  sections : (string * float) list;
  solvers : (string * solver_stat) list;
}

val entry_to_json : entry -> Json.t

val entry_of_json : Json.t -> (entry, string) result

val append : string -> entry -> unit
(** Append one line to the history file (created if missing, never
    truncated). *)

val read_file : string -> (entry list, string) result
(** Parse a history file; blank lines are skipped, the first malformed
    line is an error. *)

val git_rev : unit -> string
(** Short revision of HEAD, or ["unknown"] outside a git checkout. *)

(** {1 Trend analysis} *)

type trend = {
  solver : string;
  runs : (float * solver_stat) list;
      (** (entry time, stat) in history order. *)
  best_seconds : float;  (** minimum over all runs ("best-known") *)
  latest_seconds : float;
  ratio : float;  (** [latest_seconds /. best_seconds] *)
  latest_minor_words : float;
  gated : bool;  (** participates in the breach decision *)
  breach : bool;  (** [gated] and [ratio > max_ratio] *)
}

type report = {
  entries : int;
  max_ratio : float;
  trends : trend list;  (** sorted by solver name *)
  section_runs : (string * float list) list;
  breaches : string list;
}

val analyze : ?max_ratio:float -> ?gate:string list -> entry list -> report
(** [analyze entries] computes per-solver trends over the history (in
    the given order). A solver in [gate] (default
    [["spectral"; "sim"]] — the paper's analytic hot path plus the
    simulation engine's seconds-per-event; the others are too fast for
    wall-clock ratios to be stable) breaches when its latest run exceeds
    [max_ratio] (default [2.0]) times its best-known run. [urs report]
    exits nonzero iff [breaches] is non-empty. *)

(** {1 Change-point detection}

    [urs report --detect]: a {!Urs_stats.Changepoint} CUSUM pass over
    each solver's per-run wall times, in log space (a regression is a
    multiplicative step — the detector's [shift] is a log-ratio). *)

type drift = {
  d_solver : string;
  d_gated : bool;
      (** In the gate list: an upward step here is a confirmed
          regression ([urs report --detect] exits 1). *)
  d_change : Urs_stats.Changepoint.change;
  d_ratio : float;  (** The step factor, [exp shift] — 2.0 is "2x slower". *)
  d_git_rev : string;
      (** Revision of the first post-change entry: the commit the step
          arrived with. *)
  d_time : float;  (** Time of that entry. *)
  d_runs : int;  (** Length of the series the detector saw. *)
}

val detect_drift :
  ?gate:string list -> ?threshold:float -> ?drift:float -> ?warmup:int ->
  entry list -> drift list
(** One detector pass per solver series (history order), returning only
    the solvers where a step was confirmed. Short series (fewer than
    [warmup + 2] points) never flag — the committed history's few-run
    tails stay quiet. Detector knobs default to
    {!Urs_stats.Changepoint.detect}'s. *)

val drift_regressions : drift list -> drift list
(** The gated, upward (slower) subset: what [--detect] exits 1 on. *)

val render_drifts : solvers:int -> drift list -> string
(** Human rendering; [solvers] is the number of series scanned (for
    the "none detected" line). *)

val drifts_json : drift list -> Json.t

val render_table : report -> string
(** Human-readable fixed-width table (solver rows: runs, best, latest,
    ratio, alloc-per-solve, gate status, and the full trend). *)

val render_markdown : report -> string

val report_json : report -> Json.t

val render_json : report -> string

val render_data : report -> string
(** gnuplot-ready columns [run time seconds minor_words], one index
    (double-blank-line separated block) per solver. *)

(** {1 Ledger digest} *)

val ledger_digest : Ledger.record list -> (string * int * float) list
(** Per-kind (kind, record count, summed wall seconds), sorted by
    kind. *)

val render_ledger_digest : (string * int * float) list -> string
