(* Perf history: schema-versioned bench summaries appended to a
   committed JSONL file (BENCH_history.jsonl), plus the trend analysis
   behind `urs report`.

   Schema "urs-perf/1" — one object per line:
     {"schema":"urs-perf/1",
      "time": <unix seconds>,
      "git_rev": "<short rev or unknown>",
      "ocaml": "<Sys.ocaml_version>",
      "jobs": <pool width the bench ran with>,
      "sections": {"<bench section>": <wall seconds>, ...},
      "solvers": {"<solver>": {"seconds": <per-solve wall>,
                               "minor_words": <per-solve minor alloc>,
                               "promoted_words": ...,
                               "major_words": ...}, ...}}
   Unknown extra fields are ignored on read so the schema can grow
   backward-compatibly; a bumped "schema" tag is rejected. *)

let schema = "urs-perf/1"

type solver_stat = {
  seconds : float;  (* wall seconds per solve *)
  minor_words : float;  (* minor-heap words allocated per solve *)
  promoted_words : float;
  major_words : float;
}

type entry = {
  time : float;
  git_rev : string;
  ocaml : string;
  jobs : int;
  sections : (string * float) list;  (* section name -> wall seconds *)
  solvers : (string * solver_stat) list;
}

let entry_to_json e =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("time", Json.Float e.time);
      ("git_rev", Json.String e.git_rev);
      ("ocaml", Json.String e.ocaml);
      ("jobs", Json.Int e.jobs);
      ( "sections",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) e.sections) );
      ( "solvers",
        Json.Obj
          (List.map
             (fun (k, s) ->
               ( k,
                 Json.Obj
                   [
                     ("seconds", Json.Float s.seconds);
                     ("minor_words", Json.Float s.minor_words);
                     ("promoted_words", Json.Float s.promoted_words);
                     ("major_words", Json.Float s.major_words);
                   ] ))
             e.solvers) );
    ]

let float_field name j =
  match Json.member name j with
  | Some v -> Json.to_float_opt v
  | None -> None

let entry_of_json j =
  let ( let* ) r f = Result.bind r f in
  let req name extract =
    match extract (Json.member name j) with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or invalid %S field" name)
  in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String s) when s = schema -> Ok ()
    | Some (Json.String s) -> Error (Printf.sprintf "unknown schema %S" s)
    | _ -> Error "missing \"schema\" field"
  in
  let* time = req "time" (fun o -> Option.bind o Json.to_float_opt) in
  let* git_rev = req "git_rev" (fun o -> Option.bind o Json.to_string_opt) in
  let* ocaml = req "ocaml" (fun o -> Option.bind o Json.to_string_opt) in
  let* jobs =
    req "jobs" (function Some (Json.Int n) -> Some n | _ -> None)
  in
  let* sections =
    match Json.member "sections" j with
    | Some (Json.Obj kvs) ->
        Ok
          (List.filter_map
             (fun (k, v) ->
               Option.map (fun f -> (k, f)) (Json.to_float_opt v))
             kvs)
    | _ -> Error "missing \"sections\" object"
  in
  let* solvers =
    match Json.member "solvers" j with
    | Some (Json.Obj kvs) ->
        Ok
          (List.filter_map
             (fun (k, v) ->
               match
                 ( float_field "seconds" v,
                   float_field "minor_words" v,
                   float_field "promoted_words" v,
                   float_field "major_words" v )
               with
               | Some seconds, Some minor_words, Some promoted_words,
                 Some major_words ->
                   Some
                     (k, { seconds; minor_words; promoted_words; major_words })
               | _ -> None)
             kvs)
    | _ -> Error "missing \"solvers\" object"
  in
  Ok { time; git_rev; ocaml; jobs; sections; solvers }

let append path e =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Json.to_channel oc (entry_to_json e))

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc lineno =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | "" -> go acc (lineno + 1)
            | line -> (
                match Json.of_string line with
                | Error msg ->
                    Error (Printf.sprintf "%s:%d: %s" path lineno msg)
                | Ok j -> (
                    match entry_of_json j with
                    | Error msg ->
                        Error (Printf.sprintf "%s:%d: %s" path lineno msg)
                    | Ok e -> go (e :: acc) (lineno + 1)))
          in
          go [] 1)

let git_rev () =
  (* best-effort; the bench must work in an exported tarball too *)
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ | (exception _) -> "unknown")

(* ------------------------------------------------------------------ *)
(* Trend analysis. *)

type trend = {
  solver : string;
  runs : (float * solver_stat) list;  (* (entry time, stat), input order *)
  best_seconds : float;
  latest_seconds : float;
  ratio : float;  (* latest_seconds /. best_seconds *)
  latest_minor_words : float;
  gated : bool;  (* counted towards the exit-1 breach decision *)
  breach : bool;  (* gated && ratio > max_ratio *)
}

type report = {
  entries : int;
  max_ratio : float;
  trends : trend list;  (* sorted by solver name *)
  section_runs : (string * float list) list;  (* wall times, input order *)
  breaches : string list;  (* solvers in breach *)
}

let default_gate = [ "spectral"; "sim" ]

let analyze ?(max_ratio = 2.0) ?(gate = default_gate) entries =
  let solver_names =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> List.map fst e.solvers) entries)
  in
  let trends =
    List.map
      (fun name ->
        let runs =
          List.filter_map
            (fun e ->
              Option.map (fun s -> (e.time, s)) (List.assoc_opt name e.solvers))
            entries
        in
        let seconds = List.map (fun (_, s) -> s.seconds) runs in
        let best_seconds = List.fold_left min infinity seconds in
        let latest_seconds, latest_minor_words =
          match List.rev runs with
          | (_, s) :: _ -> (s.seconds, s.minor_words)
          | [] -> (nan, nan)
        in
        let ratio =
          if best_seconds > 0.0 && Float.is_finite best_seconds then
            latest_seconds /. best_seconds
          else 1.0
        in
        let gated = List.mem name gate in
        {
          solver = name;
          runs;
          best_seconds;
          latest_seconds;
          ratio;
          latest_minor_words;
          gated;
          breach = gated && Float.is_finite ratio && ratio > max_ratio;
        })
      solver_names
  in
  let section_names =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> List.map fst e.sections) entries)
  in
  let section_runs =
    List.map
      (fun name ->
        (name, List.filter_map (fun e -> List.assoc_opt name e.sections) entries))
      section_names
  in
  {
    entries = List.length entries;
    max_ratio;
    trends;
    section_runs;
    breaches =
      List.filter_map
        (fun t -> if t.breach then Some t.solver else None)
        trends;
  }

(* ------------------------------------------------------------------ *)
(* Change-point scan: a CUSUM pass over each solver's per-run wall
   times (in log space — a regression is a multiplicative step), so
   `urs report --detect` can tell an abrupt level shift, and the commit
   it arrived with, from ambient noise. *)

type drift = {
  d_solver : string;
  d_gated : bool;  (* counted towards the --detect exit-1 decision *)
  d_change : Urs_stats.Changepoint.change;
  d_ratio : float;  (* exp of the log-space shift: the step factor *)
  d_git_rev : string;  (* revision of the first post-change entry *)
  d_time : float;  (* time of that entry *)
  d_runs : int;  (* series length the detector saw *)
}

let detect_drift ?(gate = default_gate) ?threshold ?drift ?warmup entries =
  let solver_names =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> List.map fst e.solvers) entries)
  in
  List.filter_map
    (fun name ->
      let runs =
        List.filter_map
          (fun e ->
            Option.map (fun s -> (e, s.seconds)) (List.assoc_opt name e.solvers))
          entries
      in
      let xs =
        Array.of_list
          (List.map (fun (_, s) -> if s > 0.0 then log s else nan) runs)
      in
      match Urs_stats.Changepoint.detect ?threshold ?drift ?warmup xs with
      | None -> None
      | Some c ->
          let e, _ = List.nth runs c.Urs_stats.Changepoint.start in
          Some
            {
              d_solver = name;
              d_gated = List.mem name gate;
              d_change = c;
              d_ratio = exp c.Urs_stats.Changepoint.shift;
              d_git_rev = e.git_rev;
              d_time = e.time;
              d_runs = List.length runs;
            })
    solver_names

let drift_regressions drifts =
  List.filter
    (fun d ->
      d.d_gated && d.d_change.Urs_stats.Changepoint.direction = Urs_stats.Changepoint.Up)
    drifts

let render_drifts ~solvers drifts =
  let buf = Buffer.create 256 in
  (match drifts with
  | [] ->
      Buffer.add_string buf
        (Printf.sprintf
           "change-points: none detected across %d solver series\n" solvers)
  | ds ->
      Buffer.add_string buf "change-points (CUSUM over log wall times):\n";
      List.iter
        (fun d ->
          let c = d.d_change in
          Buffer.add_string buf
            (Printf.sprintf
               "  %-10s %.2fx step %s at run %d/%d (rev %s), detected at run \
                %d, stat %.1f%s\n"
               d.d_solver d.d_ratio
               (match c.Urs_stats.Changepoint.direction with
               | Urs_stats.Changepoint.Up -> "UP"
               | Urs_stats.Changepoint.Down -> "down")
               (c.Urs_stats.Changepoint.start + 1)
               d.d_runs d.d_git_rev
               (c.Urs_stats.Changepoint.detected + 1)
               c.Urs_stats.Changepoint.statistic
               (if d.d_gated then " [gated]" else "")))
        ds);
  Buffer.contents buf

let drifts_json drifts =
  Json.List
    (List.map
       (fun d ->
         let c = d.d_change in
         Json.Obj
           [
             ("solver", Json.String d.d_solver);
             ("gated", Json.Bool d.d_gated);
             ( "direction",
               Json.String
                 (match c.Urs_stats.Changepoint.direction with
                 | Urs_stats.Changepoint.Up -> "up"
                 | Urs_stats.Changepoint.Down -> "down") );
             ("ratio", Json.Float d.d_ratio);
             ("start_run", Json.Int c.Urs_stats.Changepoint.start);
             ("detected_run", Json.Int c.Urs_stats.Changepoint.detected);
             ("statistic", Json.Float c.Urs_stats.Changepoint.statistic);
             ("git_rev", Json.String d.d_git_rev);
             ("time", Json.Float d.d_time);
             ("runs", Json.Int d.d_runs);
           ])
       drifts)

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let si_words w =
  if Float.abs w >= 1e9 then Printf.sprintf "%.2fGw" (w /. 1e9)
  else if Float.abs w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let si_seconds s =
  if Float.is_nan s then "-"
  else if s >= 1.0 then Printf.sprintf "%.3fs" s
  else if s >= 1e-3 then Printf.sprintf "%.3fms" (s *. 1e3)
  else Printf.sprintf "%.1fus" (s *. 1e6)

let trend_cells t =
  let spark =
    String.concat " "
      (List.map (fun (_, s) -> si_seconds s.seconds) t.runs)
  in
  let alloc_spark =
    String.concat " " (List.map (fun (_, s) -> si_words s.minor_words) t.runs)
  in
  [
    t.solver;
    string_of_int (List.length t.runs);
    si_seconds t.best_seconds;
    si_seconds t.latest_seconds;
    (if Float.is_nan t.ratio then "-" else Printf.sprintf "%.2fx" t.ratio);
    si_words t.latest_minor_words;
    (if t.breach then "BREACH" else if t.gated then "ok" else "-");
    spark;
    alloc_spark;
  ]

let header_cells =
  [
    "solver"; "runs"; "best"; "latest"; "ratio"; "alloc/solve"; "gate";
    "trend (s)"; "trend (alloc)";
  ]

let render_table r =
  let rows = header_cells :: List.map trend_cells r.trends in
  let ncols = List.length header_cells in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i c ->
         if i < ncols then widths.(i) <- max widths.(i) (String.length c)))
    rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "perf report: %d entries, gate ratio %.2fx\n" r.entries
       r.max_ratio);
  List.iteri
    (fun ri cells ->
      List.iteri
        (fun i c ->
          Buffer.add_string buf c;
          if i < ncols - 1 then
            Buffer.add_string buf
              (String.make (widths.(i) - String.length c + 2) ' '))
        cells;
      Buffer.add_char buf '\n';
      if ri = 0 then begin
        Array.iteri
          (fun i w ->
            Buffer.add_string buf (String.make w '-');
            if i < ncols - 1 then Buffer.add_string buf "  ")
          widths;
        Buffer.add_char buf '\n'
      end)
    rows;
  if r.section_runs <> [] then begin
    Buffer.add_string buf "\nsections (wall seconds per run):\n";
    List.iter
      (fun (name, xs) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %s\n" name
             (String.concat " " (List.map si_seconds xs))))
      r.section_runs
  end;
  (match r.breaches with
  | [] -> ()
  | bs ->
      Buffer.add_string buf
        (Printf.sprintf "\nBREACH: %s regressed more than %.2fx vs best-known\n"
           (String.concat ", " bs) r.max_ratio));
  Buffer.contents buf

let render_markdown r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "## Perf report (%d entries, gate %.2fx)\n\n" r.entries
       r.max_ratio);
  Buffer.add_string buf ("| " ^ String.concat " | " header_cells ^ " |\n");
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") header_cells) ^ "|\n");
  List.iter
    (fun t ->
      Buffer.add_string buf ("| " ^ String.concat " | " (trend_cells t) ^ " |\n"))
    r.trends;
  (match r.breaches with
  | [] -> ()
  | bs ->
      Buffer.add_string buf
        (Printf.sprintf "\n**BREACH**: %s regressed more than %.2fx.\n"
           (String.concat ", " bs) r.max_ratio));
  Buffer.contents buf

let report_json r =
  Json.Obj
    [
      ("schema", Json.String "urs-report/1");
      ("entries", Json.Int r.entries);
      ("max_ratio", Json.Float r.max_ratio);
      ( "solvers",
        Json.Obj
          (List.map
             (fun t ->
               ( t.solver,
                 Json.Obj
                   [
                     ("runs", Json.Int (List.length t.runs));
                     ("best_seconds", Json.Float t.best_seconds);
                     ("latest_seconds", Json.Float t.latest_seconds);
                     ("ratio", Json.Float t.ratio);
                     ("latest_minor_words", Json.Float t.latest_minor_words);
                     ("gated", Json.Bool t.gated);
                     ("breach", Json.Bool t.breach);
                     ( "seconds",
                       Json.List
                         (List.map
                            (fun (_, s) -> Json.Float s.seconds)
                            t.runs) );
                     ( "minor_words",
                       Json.List
                         (List.map
                            (fun (_, s) -> Json.Float s.minor_words)
                            t.runs) );
                   ] ))
             r.trends) );
      ( "sections",
        Json.Obj
          (List.map
             (fun (name, xs) ->
               (name, Json.List (List.map (fun x -> Json.Float x) xs)))
             r.section_runs) );
      ("breaches", Json.List (List.map (fun s -> Json.String s) r.breaches));
    ]

let render_json r = Json.to_string (report_json r)

(* gnuplot-ready: one index per solver (separated by two blank lines),
   columns: run ordinal, unix time, seconds per solve, minor words per
   solve. See README "Profiling" for the plot recipe. *)
let render_data r =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_string buf "\n\n";
      Buffer.add_string buf (Printf.sprintf "# solver: %s\n" t.solver);
      Buffer.add_string buf "# run time seconds minor_words\n";
      List.iteri
        (fun j (time, s) ->
          Buffer.add_string buf
            (Printf.sprintf "%d %s %s %s\n" j (Json.float_str time)
               (Json.float_str s.seconds)
               (Json.float_str s.minor_words)))
        t.runs)
    r.trends;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Ledger digest: per-kind record counts and wall time, so `urs report
   --ledger` can fold a run journal into the same report. *)

let ledger_digest (records : Ledger.record list) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Ledger.record) ->
      let count, total =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl r.Ledger.kind)
      in
      Hashtbl.replace tbl r.Ledger.kind (count + 1, total +. r.Ledger.wall_seconds))
    records;
  List.sort
    (fun (a, _, _) (b, _, _) -> String.compare a b)
    (Hashtbl.fold (fun k (c, t) acc -> (k, c, t) :: acc) tbl [])

let render_ledger_digest digest =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ledger (records, total wall seconds by kind):\n";
  List.iter
    (fun (kind, count, total) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-20s %6d  %s\n" kind count (si_seconds total)))
    digest;
  Buffer.contents buf
