(** Iteration-level convergence telemetry for the numerical core.

    The iterative kernels (QR eigensolve, Brent/bisection root finding,
    the matrix-geometric R fixed point, uniformization) sit below this
    library and expose optional per-iteration callbacks instead of
    recording anything themselves. The solver layer wires those
    callbacks to a {!recorder}: a bounded ring of per-iteration samples
    (residual, shift, active size, wall-clock time) plus a Welford
    summary of the residual series. Finished recorders become immutable
    {!trace}s kept in a process-global ring, appended to the
    {!Ledger} as ["convergence"] records (stamped with the ambient
    {!Context} trace), exportable as JSON (the [/convergence] HTTP
    route, [urs inspect]) and as Perfetto counter tracks
    (residual-vs-time, merged into [--trace-format perfetto]).

    Recording is off by default and gated by a global flag, so the
    kernels pay nothing in ordinary solves; the callbacks only read
    values the iterations already computed, so results are bit-identical
    with recording on or off. Recorders are mutex-guarded and the global
    ring is shared safely across pool domains. *)

type sample = {
  iteration : int;  (** 1-based iteration / sweep number. *)
  residual : float;
      (** The per-iteration convergence figure (sub-diagonal magnitude,
          bracket width, entrywise delta, Poisson tail weight); [nan]
          when the event carried none. *)
  shift : float;  (** Shift (QR) or best estimate (root finding); [nan] if n/a. *)
  active : int;
      (** Monotone progress figure: rows not yet deflated (QR), or [0]
          when the solver has no deflation notion. *)
  deflation : bool;  (** This sample marks a deflation event. *)
  t : float;  (** {!Span.now} at record time. *)
}

type trace = {
  seq : int;  (** Process-global 1-based trace number. *)
  solver : string;  (** ["qr"], ["brent"], ["bisect"], ["mg_r"], ["uniformization"]. *)
  label : string;  (** Call-site label, e.g. ["spectral N=5 s=21"]. *)
  started : float;
  finished : float;
  iterations : int;  (** Highest iteration number observed. *)
  max_iter : int option;  (** Iteration cap of the kernel, when known. *)
  converged : bool;
  deflations : int;  (** Deflation events observed. *)
  dropped : int;  (** Samples that fell out of the bounded ring. *)
  samples : sample array;  (** Chronological; at most the ring capacity. *)
  residual_first : float;  (** First finite residual ([nan] if none). *)
  residual_last : float;  (** Last finite residual ([nan] if none). *)
  residual_min : float;
  residual_mean : float;  (** Welford mean over all finite residuals. *)
  residual_count : int;  (** Finite residuals observed (includes dropped). *)
}

(** {1 Recording} *)

type recorder

val recording : unit -> bool
(** The global gate consulted by the solver layer before creating
    recorders. Off by default. *)

val set_recording : bool -> unit

val with_recording : (unit -> 'a) -> 'a * trace list
(** [with_recording f] forces recording on around [f] (restoring the
    previous state) and returns [f ()] together with the traces
    finished during the call, oldest first. *)

val create :
  ?capacity:int ->
  ?max_iter:int ->
  solver:string ->
  label:string ->
  unit ->
  recorder
(** A fresh recorder; [capacity] bounds the sample ring (default
    [512]; older samples are dropped but still count in the Welford
    summary and [iterations]). *)

val observe :
  recorder ->
  iteration:int ->
  ?residual:float ->
  ?shift:float ->
  ?active:int ->
  ?deflation:bool ->
  unit ->
  unit
(** Append one sample. Thread-safe (per-recorder mutex), though kernels
    iterate sequentially. *)

val finish : ?converged:bool -> recorder -> trace
(** Seal the recorder (idempotent: later calls return the same trace).
    The trace enters the global recent ring, updates the
    [urs_convergence_iterations{solver=...}] gauge and appends a
    ["convergence"] ledger record — parameters carry solver/label/cap,
    the summary the iteration and residual digest — stamped with the
    ambient trace context. [converged] defaults to [true]. *)

(** {1 Global trace ring} *)

val recent : ?limit:int -> unit -> trace list
(** Most recently finished traces, oldest first. *)

val reset : unit -> unit
(** Clear the ring and the recording flag — tests. *)

(** {1 Export} *)

val trace_to_json : trace -> Json.t

val to_json : ?limit:int -> unit -> Json.t
(** [{"traces": [...]}] over {!recent}. *)

val perfetto_events : unit -> Json.t list
(** One counter track (ph ["C"]) per recent trace, named
    ["conv:<solver>:<seq>"]: each sample becomes a counter event with
    args [residual] (omitted when not finite) and [remaining] (the
    [active] figure), timestamped in trace-epoch microseconds — ready
    to merge into {!Span.trace_perfetto}'s [?extra]. *)

val pp_trace : Format.formatter -> trace -> unit
(** One-line digest: solver, label, iterations, residual path. *)
