(** Bounded time-series recorders ("timelines").

    A {!series} records a piecewise-constant signal — queue length,
    operative-server count, pool queue depth — sampled at state-change
    instants, and aggregates it into a fixed number of equal-width time
    buckets. When a sample lands beyond the covered range, adjacent
    buckets are merged pairwise and the bucket width doubles, so memory
    stays O(capacity) no matter how long the run is. Each bucket keeps
    the covered duration, the time integral of the signal, the raw
    sample count and sum, and the min/max, so:

    - the per-bucket mean is the {e exact} time average of the signal
      over the bucket (not a point sample), comparable to analytical
      transient expectations;
    - merging buckets is exact (sums add, min/max combine), which makes
      downsampling deterministic and {!coarsen} idempotent — the
      contents depend only on the recorded [(t, v)] sequence, never on
      wall-clock timing or pool width.

    Recording is mutex-guarded per series; the registry mirrors
    {!Metrics}: creation is idempotent on (name, labels) and safe from
    any domain of a [Urs_exec.Pool]. Informational tags that must not
    distinguish series (e.g. the domain id a replication happened to run
    on) go in [meta], not [labels]. *)

type labels = (string * string) list

type t
(** A registry of series. *)

val create : unit -> t
(** A fresh, empty registry (tests, scoped measurements such as the
    doctor's warm-up analysis). *)

val default : t
(** The process-global registry, exposed by the HTTP [/timeline]
    endpoint. *)

type series
(** A handle; cheap to keep, safe to share. *)

val series :
  ?registry:t ->
  ?capacity:int ->
  ?horizon:float ->
  ?meta:labels ->
  ?labels:labels ->
  string ->
  series
(** [series name] finds or creates the series registered under
    [(name, labels)] (labels canonicalized by key). [capacity] (default
    256, min 2) bounds the number of buckets. [horizon], when given,
    fixes the initial bucket width to [horizon /. capacity] so that runs
    no longer than [horizon] never trigger a merge — and, crucially, so
    every replication of a batch shares an identical bucket layout,
    allowing index-aligned cross-replication averaging ({!mean_array}).
    Without it the initial width is [1.0] time units. [meta] replaces
    the series' informational tags when non-empty. Raises
    [Invalid_argument] on an invalid name ({!Metrics.is_valid_name}) or
    [capacity < 2]. *)

val record : series -> t:float -> float -> unit
(** [record s ~t v]: the signal took value [v] at time [t] and holds it
    until the next sample. The value held since the previous sample is
    integrated over the elapsed interval first. Time must be
    non-decreasing per series; a stale [t] is clamped forward. Non-finite
    [t] or [v] is ignored. *)

val finish : series -> t:float -> unit
(** Close the integration at time [t]: extend the last recorded value to
    [t] without registering a new sample (end of a run). *)

val clear : series -> unit
(** Empty the series in place (origin, width and buckets reset); the
    handle stays registered. Each replication clears its series before
    recording, so concurrently displayed data is last-run-wins. *)

val set_meta : series -> labels -> unit

val reset : ?registry:t -> unit -> unit
(** {!clear} every series in the registry. *)

(** {1 Snapshots} *)

type point = {
  index : int;  (** bucket index on the [t0 + i*width] grid *)
  t_lo : float;
  t_hi : float;
  count : int;  (** raw samples that landed in the bucket *)
  time_cov : float;  (** duration of the bucket actually covered *)
  area : float;  (** integral of the signal over the covered part *)
  sum_v : float;  (** sum of the raw sample values *)
  vmin : float;
  vmax : float;
}

type snapshot = {
  s_name : string;
  s_labels : labels;
  s_meta : labels;
  t0 : float;  (** [nan] when nothing has been recorded *)
  width : float;
  points : point list;  (** non-empty buckets, ascending index *)
}

val point_mean : point -> float
(** Time-weighted mean ([area /. time_cov]); falls back to the plain
    sample mean for buckets with samples but no covered time (a single
    instantaneous sample), [nan] for empty points. *)

val snapshot_series : series -> snapshot
(** A consistent copy of one series (safe at any point). *)

val snapshot : ?registry:t -> ?name:string -> unit -> snapshot list
(** All series (or those named [name]), sorted by name then labels. *)

val coarsen : factor:int -> snapshot -> snapshot
(** Merge each group of [factor] adjacent buckets into one — the same
    exact algebra the recorder uses when it doubles widths, so
    [coarsen ~factor:a] then [~factor:b] equals
    [coarsen ~factor:(a * b)]. [factor = 1] is the identity. Raises
    [Invalid_argument] when [factor < 1]. *)

val mean_array : snapshot -> float array
(** Dense per-bucket mean trajectory on the bucket grid, from index 0 to
    the last non-empty bucket; [nan] where nothing was recorded. Input
    to the Welch warm-up analysis, index-aligned across replications
    that share a [horizon]. *)

(** {1 JSON} *)

val snapshot_json : snapshot -> Json.t

val to_json : ?registry:t -> ?name:string -> unit -> Json.t
(** [{"series": [{"name", "labels"?, "meta"?, "t0", "bucket_width",
    "points": [{"t_lo", "t_hi", "count", "covered_s", "mean", "min",
    "max"}, ...]}, ...]}] — served by the [/timeline] HTTP endpoint. *)
