(** The standard observability routes shared by [urs serve] and
    [--serve-metrics] — in the library (not the CLI) so their behavior
    is directly testable.

    Route inventory: [/metrics] (Prometheus text exposition by default,
    [?format=json] for the JSON rendering — both including interpolated
    p50/p90/p99 per non-empty histogram via {!Export.default_quantiles}),
    [/healthz] (doctor verdict gauge → status code), [/runs] (ledger
    ring), [/timeline], [/progress], [/runtime], [/convergence], and
    [/tail] ([?kind=&since_seq=&n=&wait_ms=] — a long-polling cursor
    over the ledger ring via {!Ledger.since}/{!Ledger.wait_since},
    capped at {!max_tail_wait_ms} because service is sequential; the
    [urs tail] client re-polls with the returned ["seq"] cursor). *)

val max_tail_wait_ms : int
(** 10 s — upper bound on [/tail?wait_ms=]. *)

val tail_response : Http.query -> Http.response

val metrics_content_type : string
(** ["text/plain; version=0.0.4"] — the Prometheus text exposition
    content type the [/metrics] route must answer with. *)

val json_response : Json.t -> Http.response
(** 200 [application/json], newline-terminated compact rendering. *)

val health_response : unit -> Http.response

val metrics_response : Http.query -> Http.response

val standard : (string * (Http.query -> Http.response)) list
(** The GET routes listed above, ready for {!Http.start}. *)

val slo_response : Slo.t -> Http.query -> Http.response
(** The [/slo] route: evaluate every objective of the engine (also
    publishing burn-rate gauges and ledger records — an evaluation, not
    a passive read) and return {!Slo.to_json}. *)
