(* Declarative service-level objectives over the metrics registry,
   evaluated with multi-window burn rates (Google SRE workbook style).

   Both objective kinds reduce to a "bad fraction against a budget":

   - [p99 < 50ms] means "at most 1% of requests exceed 50ms" — the
     budget is 1 - 0.99 and a request is bad when its latency lies
     above the threshold, estimated from the fixed-bucket latency
     histogram by Metrics.histogram_count_above.
   - [error_rate < 0.1%] budgets the fraction of requests answered
     with a 5xx status, read off the urs_http_requests_total{code}
     counters.

   The burn rate of a window is (Δbad/Δtotal)/budget over that window:
   1.0 means errors arrive exactly as fast as the budget allows; an
   objective breaches when EVERY window burns above 1 — the fast
   window makes the alarm responsive, the slow window keeps a brief
   blip from paging. Cumulative (bad, total) samples are taken on
   every tick/evaluate under a pluggable clock, so tests (and the
   doctor's slo stage) can replay hours in microseconds. *)

type window = { label : string; seconds : float }

let default_windows =
  [ { label = "5m"; seconds = 300.0 }; { label = "1h"; seconds = 3600.0 } ]

type sli =
  | Latency of { metric : string; q : float; threshold_s : float }
  | Error_rate of { metric : string }

type objective = { name : string; sli : sli; budget : float }

let default_latency_metric = "urs_http_request_seconds"
let default_error_metric = "urs_http_requests_total"

let describe_sli = function
  | Latency { q; threshold_s; _ } ->
      let unit_, v =
        if threshold_s < 1e-3 then ("us", threshold_s *. 1e6)
        else if threshold_s < 1.0 then ("ms", threshold_s *. 1e3)
        else ("s", threshold_s)
      in
      Printf.sprintf "p%g < %g%s" (q *. 100.0) v unit_
  | Error_rate _ -> "error_rate"

(* ---- objective parsing ----

   SPEC := [NAME ":"] EXPR
   EXPR := "p" FLOAT ["(" METRIC ")"] "<" DURATION
         | "error_rate" ["(" METRIC ")"] "<" PERCENT
   DURATION := FLOAT ("us" | "ms" | "s")
   PERCENT := FLOAT "%" | FLOAT        (bare floats are fractions) *)

let strip s = String.trim s

let split_name spec =
  match String.index_opt spec ':' with
  | Some i ->
      ( Some (strip (String.sub spec 0 i)),
        strip (String.sub spec (i + 1) (String.length spec - i - 1)) )
  | None -> (None, strip spec)

let split_metric head =
  (* "p99(urs_http_request_seconds)" -> ("p99", Some metric) *)
  match String.index_opt head '(' with
  | None -> Ok (strip head, None)
  | Some i ->
      if head.[String.length head - 1] <> ')' then
        Error "unbalanced parenthesis in metric override"
      else
        let metric = strip (String.sub head (i + 1) (String.length head - i - 2)) in
        if Metrics.is_valid_name metric then
          Ok (strip (String.sub head 0 i), Some metric)
        else Error (Printf.sprintf "invalid metric name %S" metric)

let parse_duration s =
  let s = strip s in
  let with_suffix suffix scale =
    let n = String.length s and m = String.length suffix in
    if n > m && String.sub s (n - m) m = suffix then
      Option.map
        (fun v -> v *. scale)
        (float_of_string_opt (String.sub s 0 (n - m)))
    else None
  in
  (* "us" before "s": the longer suffix must win *)
  match with_suffix "us" 1e-6 with
  | Some v -> Some v
  | None -> (
      match with_suffix "ms" 1e-3 with
      | Some v -> Some v
      | None -> with_suffix "s" 1.0)

let parse_percent s =
  let s = strip s in
  let n = String.length s in
  if n > 1 && s.[n - 1] = '%' then
    Option.map (fun v -> v /. 100.0) (float_of_string_opt (String.sub s 0 (n - 1)))
  else float_of_string_opt s

let parse_objective spec =
  let name, expr = split_name spec in
  match String.index_opt expr '<' with
  | None -> Error (Printf.sprintf "%S: expected \"<lhs> < <target>\"" spec)
  | Some i -> (
      let lhs = strip (String.sub expr 0 i) in
      let rhs = strip (String.sub expr (i + 1) (String.length expr - i - 1)) in
      match split_metric lhs with
      | Error msg -> Error (Printf.sprintf "%S: %s" spec msg)
      | Ok (head, metric) ->
          let name = Option.value name ~default:expr in
          if head = "error_rate" then
            match parse_percent rhs with
            | Some budget when budget > 0.0 && budget < 1.0 ->
                Ok
                  {
                    name;
                    sli =
                      Error_rate
                        {
                          metric =
                            Option.value metric ~default:default_error_metric;
                        };
                    budget;
                  }
            | Some _ -> Error (Printf.sprintf "%S: rate must be in (0,1)" spec)
            | None -> Error (Printf.sprintf "%S: cannot parse rate %S" spec rhs)
          else if String.length head > 1 && head.[0] = 'p' then
            match
              float_of_string_opt (String.sub head 1 (String.length head - 1))
            with
            | Some pct when pct > 0.0 && pct < 100.0 -> (
                match parse_duration rhs with
                | Some threshold_s when threshold_s > 0.0 ->
                    let q = pct /. 100.0 in
                    Ok
                      {
                        name;
                        sli =
                          Latency
                            {
                              metric =
                                Option.value metric
                                  ~default:default_latency_metric;
                              q;
                              threshold_s;
                            };
                        budget = 1.0 -. q;
                      }
                | Some _ ->
                    Error (Printf.sprintf "%S: threshold must be positive" spec)
                | None ->
                    Error
                      (Printf.sprintf
                         "%S: cannot parse duration %S (use us/ms/s)" spec rhs))
            | _ ->
                Error
                  (Printf.sprintf "%S: quantile must be in (0,100), e.g. p99"
                     spec)
          else
            Error
              (Printf.sprintf
                 "%S: unknown objective %S (expected pNN or error_rate)" spec
                 head))

let parse_objective_exn spec =
  match parse_objective spec with
  | Ok o -> o
  | Error msg -> invalid_arg ("Slo.parse_objective: " ^ msg)

(* ---- counting good and bad events in a snapshot ---- *)

(* merge every label set of one histogram family (bucket bounds are per
   family, so the arrays line up) *)
let merged_histogram entries metric =
  List.fold_left
    (fun acc (e : Metrics.entry) ->
      if e.Metrics.name <> metric then acc
      else
        match e.Metrics.data with
        | Metrics.Histogram_value h -> (
            match acc with
            | None -> Some (h.bounds, Array.copy h.counts)
            | Some (bounds, counts) when Array.length counts = Array.length h.counts ->
                Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) h.counts;
                Some (bounds, counts)
            | Some _ -> acc)
        | _ -> acc)
    None entries

let is_5xx labels =
  match List.assoc_opt "code" labels with
  | Some code -> (
      match int_of_string_opt code with Some c -> c >= 500 | None -> false)
  | None -> false

(* cumulative (bad, total) for one objective *)
let count_sli entries = function
  | Latency { metric; threshold_s; _ } -> (
      match merged_histogram entries metric with
      | None -> (0.0, 0.0)
      | Some (bounds, counts) ->
          let total = float_of_int (Array.fold_left ( + ) 0 counts) in
          let bad = Metrics.histogram_count_above ~bounds ~counts threshold_s in
          ((if Float.is_nan bad then 0.0 else bad), total))
  | Error_rate { metric } ->
      List.fold_left
        (fun (bad, total) (e : Metrics.entry) ->
          if e.Metrics.name <> metric then (bad, total)
          else
            match e.Metrics.data with
            | Metrics.Counter_value v ->
                ((if is_5xx e.Metrics.labels then bad +. v else bad), total +. v)
            | _ -> (bad, total))
        (0.0, 0.0) entries

(* the instantaneous value shown next to the target: the interpolated
   quantile for latency objectives, the cumulative error rate otherwise *)
let current_value entries = function
  | Latency { metric; q; _ } -> (
      match merged_histogram entries metric with
      | None -> nan
      | Some (bounds, counts) -> Metrics.histogram_quantile ~bounds ~counts q)
  | Error_rate _ as sli ->
      let bad, total = count_sli entries sli in
      if total > 0.0 then bad /. total else 0.0

(* ---- the engine ---- *)

type sample = { time : float; counts : (float * float) array }

type t = {
  objectives : objective array;
  clock : unit -> float;
  windows : window list;
  registry : Metrics.t;
  mutable samples : sample list; (* newest first; bounded (see retain) *)
  lock : Mutex.t;
}

let take_sample t =
  let entries = Metrics.snapshot ~registry:t.registry () in
  {
    time = t.clock ();
    counts = Array.map (fun o -> count_sli entries o.sli) t.objectives;
  }

let max_window t =
  List.fold_left (fun m w -> Float.max m w.seconds) 0.0 t.windows

(* keep every sample young enough to serve any window, plus one older
   sample as the baseline of the slow window *)
let retain t now samples =
  let cutoff = now -. max_window t in
  let rec go kept = function
    | [] -> List.rev kept
    | s :: rest ->
        if s.time >= cutoff then go (s :: kept) rest
        else List.rev (s :: kept) (* first sample at/past the horizon *)
  in
  go [] samples

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(clock = Span.now) ?(windows = default_windows)
    ?(registry = Metrics.default) objectives =
  if objectives = [] then invalid_arg "Slo.create: no objectives";
  if windows = [] then invalid_arg "Slo.create: no windows";
  let t =
    {
      objectives = Array.of_list objectives;
      clock;
      windows;
      registry;
      samples = [];
      lock = Mutex.create ();
    }
  in
  (* the baseline sample: burn rates are deltas against it, so traffic
     served before the engine existed is never charged *)
  t.samples <- [ take_sample t ];
  t

let objectives t = Array.to_list t.objectives

let tick t =
  let s = take_sample t in
  locked t (fun () -> t.samples <- retain t s.time (s :: t.samples))

(* ---- evaluation ---- *)

type window_eval = {
  window : string;
  window_s : float;
  span_s : float;  (** time actually covered (< window_s on young engines) *)
  bad : float;
  total : float;
  burn_rate : float;
}

type eval = {
  objective : objective;
  current : float;
  cumulative_bad : float;
  cumulative_total : float;
  windows : window_eval list;
  breached : bool;
}

let burn_gauge t ~objective ~window =
  Metrics.gauge ~registry:t.registry
    ~help:"SLO burn rate per window (1.0 = spending exactly the budget)"
    ~labels:[ ("objective", objective); ("window", window) ]
    "urs_slo_burn_rate"

let breached_gauge t ~objective =
  Metrics.gauge ~registry:t.registry
    ~help:"1 when the objective is breached (every window burning > 1)"
    ~labels:[ ("objective", objective) ]
    "urs_slo_breached"

let eval_objective (t : t) ~now ~samples ~newest i o =
  let bad_now, total_now = newest.counts.(i) in
  let windows =
    List.map
      (fun w ->
        (* the youngest sample old enough to cover the window; falling
           back to the oldest retained sample keeps young engines
           honest (they evaluate over the span they actually have) *)
        let baseline =
          let rec go best = function
            | [] -> best
            | s :: rest ->
                if s.time <= now -. w.seconds then
                  (* newest-first: the first match is the youngest *)
                  s
                else go s rest
          in
          go newest samples
        in
        let bad_then, total_then = baseline.counts.(i) in
        let bad = Float.max 0.0 (bad_now -. bad_then) in
        let total = Float.max 0.0 (total_now -. total_then) in
        let burn_rate =
          if total <= 0.0 then 0.0 else bad /. total /. o.budget
        in
        {
          window = w.label;
          window_s = w.seconds;
          span_s = now -. baseline.time;
          bad;
          total;
          burn_rate;
        })
      t.windows
  in
  let breached =
    windows <> [] && List.for_all (fun w -> w.burn_rate > 1.0) windows
  in
  let entries = Metrics.snapshot ~registry:t.registry () in
  {
    objective = o;
    current = current_value entries o.sli;
    cumulative_bad = bad_now;
    cumulative_total = total_now;
    windows;
    breached;
  }

let evaluate t =
  let newest = take_sample t in
  let samples =
    locked t (fun () ->
        t.samples <- retain t newest.time (newest :: t.samples);
        t.samples)
  in
  let evals =
    Array.to_list
      (Array.mapi
         (fun i o -> eval_objective t ~now:newest.time ~samples ~newest i o)
         t.objectives)
  in
  (* surface the verdicts: burn-rate gauges on the same registry and
     one "slo" ledger record per objective *)
  List.iter
    (fun ev ->
      List.iter
        (fun w ->
          Metrics.set
            (burn_gauge t ~objective:ev.objective.name ~window:w.window)
            w.burn_rate)
        ev.windows;
      Metrics.set
        (breached_gauge t ~objective:ev.objective.name)
        (if ev.breached then 1.0 else 0.0);
      Ledger.record ~kind:"slo"
        ~params:
          [
            ("objective", Json.String ev.objective.name);
            ("sli", Json.String (describe_sli ev.objective.sli));
            ("budget", Json.Float ev.objective.budget);
          ]
        ~outcome:(if ev.breached then "breach" else "ok")
        ~summary:
          ([
             ("current", Json.Float ev.current);
             ("bad", Json.Float ev.cumulative_bad);
             ("total", Json.Float ev.cumulative_total);
           ]
          @ List.map
              (fun w -> ("burn_" ^ w.window, Json.Float w.burn_rate))
              ev.windows)
        ~wall_seconds:0.0 ())
    evals;
  evals

let any_breached evals = List.exists (fun e -> e.breached) evals

(* ---- rendering ---- *)

let window_eval_json w =
  Json.Obj
    [
      ("window", Json.String w.window);
      ("window_s", Json.Float w.window_s);
      ("span_s", Json.Float w.span_s);
      ("bad", Json.Float w.bad);
      ("total", Json.Float w.total);
      ("burn_rate", Json.Float w.burn_rate);
    ]

let eval_json e =
  Json.Obj
    [
      ("objective", Json.String e.objective.name);
      ("sli", Json.String (describe_sli e.objective.sli));
      ("budget", Json.Float e.objective.budget);
      ("current", Json.Float e.current);
      ("bad", Json.Float e.cumulative_bad);
      ("total", Json.Float e.cumulative_total);
      ("windows", Json.List (List.map window_eval_json e.windows));
      ("breached", Json.Bool e.breached);
    ]

let to_json evals =
  Json.Obj
    [
      ("objectives", Json.List (List.map eval_json evals));
      ("breached", Json.Bool (any_breached evals));
    ]
