(** Process-wide metrics registry: counters, gauges and fixed-bucket
    histograms, in the spirit of a Prometheus client library but with no
    external dependencies. Histograms additionally keep a
    {!Urs_stats.Welford} accumulator so snapshots carry mean/stddev
    summaries, not just bucket counts.

    Handles are cheap records; creation functions are idempotent — the
    same (name, labels) pair always returns the same underlying metric,
    so instrumented modules can create their handles at load time and
    mutate them from hot paths without hashtable lookups. Registration
    and every update are mutex-guarded, so metrics can be shared freely
    across the domains of a work pool ([Urs_exec.Pool]): concurrent
    increments and observations never lose updates, and {!snapshot} sees
    a consistent copy.

    Render a {!snapshot} with {!Export.prometheus} or {!Export.json}. *)

type labels = (string * string) list
(** Label pairs, e.g. [[("strategy", "exact")]]. Canonicalized (sorted
    by key) at registration, so label order never distinguishes
    metrics. *)

type t
(** A registry. *)

val create : unit -> t
(** A fresh, empty registry (tests, scoped measurements). *)

val default : t
(** The process-global registry used when [?registry] is omitted. *)

val is_valid_name : string -> bool
(** Whether [s] is a legal metric/series name
    ([[a-zA-Z_:][a-zA-Z0-9_:]*]). Shared by {!Timeline} so timeline
    series obey the same naming rules as metrics. *)

val reset : ?registry:t -> unit -> unit
(** Zero every metric in place: counters and gauges to [0.], histogram
    buckets emptied. Existing handles remain valid (and registered) —
    used by the bench harness to get per-section snapshots. *)

(** {1 Counters} — monotonically increasing totals. *)

type counter

val counter : ?registry:t -> ?help:string -> ?labels:labels -> string -> counter
val inc : ?by:float -> counter -> unit
(** Increase the counter ([by] defaults to [1.]; negative raises
    [Invalid_argument]). *)

val counter_value : counter -> float

(** {1 Gauges} — instantaneous values that can move both ways.

    Gauges have {e last-write} semantics: a snapshot sees only the most
    recent [set]. Result-summary gauges written once per solve — the
    [urs_spectral_dominant_z] / [urs_spectral_residual] /
    [urs_spectral_eigenvalues] family, labelled by solver strategy —
    therefore describe the {e last} solve only; under a sweep every
    earlier point is overwritten. That is the intended reading for a
    scrape endpoint ("what did the process just do"); the full per-solve
    history goes to the {!Ledger}, one record per solve. *)

type gauge

val gauge : ?registry:t -> ?help:string -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val add : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the running maximum — high-water marks. *)

val gauge_value : gauge -> float

(** {1 Histograms} — fixed cumulative-style buckets plus a Welford
    summary. *)

type histogram

val default_time_buckets : float array
(** Upper bounds suited to wall-clock durations in seconds:
    [1e-6 .. 60]. *)

val default_latency_buckets : float array
(** Log-spaced upper bounds tuned for request latencies: roughly three
    per decade over [1e-5 .. 10] seconds (19 bounds), so interpolated
    quantiles ({!histogram_quantile}) resolve µs-scale health-check
    responses and second-scale solves from the same histogram. *)

val histogram :
  ?registry:t ->
  ?help:string ->
  ?labels:labels ->
  ?buckets:float array ->
  string ->
  histogram
(** [buckets] are strictly increasing upper bounds (default
    {!default_time_buckets}); an implicit [+Inf] bucket is always
    appended. Raises [Invalid_argument] on unsorted or empty bounds. *)

val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type snapshot_data =
  | Counter_value of float
  | Gauge_value of float
  | Histogram_value of {
      bounds : float array;
      counts : int array;  (** per-bucket (not cumulative); last = +Inf *)
      sum : float;
      count : int;
      mean : float;
      stddev : float;
    }

type entry = {
  name : string;
  help : string;
  labels : labels;
  data : snapshot_data;
}

val snapshot : ?registry:t -> unit -> entry list
(** A consistent copy of every registered metric, sorted by name then
    labels. Safe to take at any point. *)

val value : ?registry:t -> ?labels:labels -> string -> float option
(** Current value of a counter or gauge by name (convenience for tests
    and assertions); [None] if absent or a histogram. *)

(** {1 Bucket interpolation}

    Estimators over a histogram's per-bucket counts (the
    {!Histogram_value} layout: [counts] has one entry per bound plus a
    final [+Inf] bucket), assuming observations are uniform within a
    bucket — the same monotone interpolation Prometheus's
    [histogram_quantile()] performs server-side. *)

val histogram_quantile : bounds:float array -> counts:int array -> float -> float
(** [histogram_quantile ~bounds ~counts q] estimates the [q]-quantile
    ([0 <= q <= 1]). Exact when [q·count] lands on a bucket boundary;
    otherwise off by at most one bucket width. A rank that falls in the
    [+Inf] bucket returns the highest finite bound (no upper edge to
    interpolate towards). Returns [nan] on an empty histogram, a
    non-finite or out-of-range [q], or mismatched array lengths. *)

val histogram_count_above :
  bounds:float array -> counts:int array -> float -> float
(** [histogram_count_above ~bounds ~counts t] estimates how many
    observations exceeded [t]: every count in buckets entirely above
    [t] plus the interpolated share of the bucket containing it ([0.]
    on an empty histogram). Feeds latency SLOs — "p99 < t" holds iff at
    most 1% of observations lie above [t]. Returns [nan] when [t] is
    NaN or the arrays are mismatched. *)
