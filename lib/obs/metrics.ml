module W = Urs_stats.Welford

type labels = (string * string) list

type data =
  | Counter of { mutable total : float }
  | Gauge of { mutable v : float }
  | Histogram of {
      bounds : float array;
      counts : int array; (* length = Array.length bounds + 1; last = +Inf *)
      mutable sum : float;
      mutable stats : W.t;
    }

type metric = {
  name : string;
  help : string;
  labels : labels;
  data : data;
  lock : Mutex.t;  (* guards [data]: metrics are mutated from pool domains *)
}

type t = { tbl : (string * labels, metric) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let default = create ()

let is_valid_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let canon labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register registry ~name ~help ~labels ~make ~same_kind =
  if not (is_valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  let labels = canon labels in
  let key = (name, labels) in
  locked registry.lock (fun () ->
      match Hashtbl.find_opt registry.tbl key with
      | Some m ->
          if not (same_kind m.data) then
            invalid_arg
              (Printf.sprintf "Metrics: %s already registered as a %s" name
                 (kind_name m.data));
          m
      | None ->
          let m =
            { name; help; labels; data = make (); lock = Mutex.create () }
          in
          Hashtbl.add registry.tbl key m;
          m)

(* ---- counters ---- *)

type counter = metric

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry ~name ~help ~labels
    ~make:(fun () -> Counter { total = 0.0 })
    ~same_kind:(function Counter _ -> true | _ -> false)

let inc ?(by = 1.0) (c : counter) =
  if by < 0.0 then invalid_arg "Metrics.inc: counters only go up";
  match c.data with
  | Counter d -> locked c.lock (fun () -> d.total <- d.total +. by)
  | _ -> assert false

let counter_value (c : counter) =
  match c.data with
  | Counter d -> locked c.lock (fun () -> d.total)
  | _ -> assert false

(* ---- gauges ---- *)

type gauge = metric

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry ~name ~help ~labels
    ~make:(fun () -> Gauge { v = 0.0 })
    ~same_kind:(function Gauge _ -> true | _ -> false)

let set (g : gauge) x =
  match g.data with
  | Gauge d -> locked g.lock (fun () -> d.v <- x)
  | _ -> assert false

let add (g : gauge) x =
  match g.data with
  | Gauge d -> locked g.lock (fun () -> d.v <- d.v +. x)
  | _ -> assert false

let set_max (g : gauge) x =
  match g.data with
  | Gauge d -> locked g.lock (fun () -> if x > d.v then d.v <- x)
  | _ -> assert false

let gauge_value (g : gauge) =
  match g.data with
  | Gauge d -> locked g.lock (fun () -> d.v)
  | _ -> assert false

(* ---- histograms ---- *)

type histogram = metric

let default_time_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 60.0 |]

(* ~3 bounds per decade over µs..10s: fine enough that interpolated
   request-latency quantiles stay within a bucket's width of the truth,
   coarse enough that one histogram stays a handful of counters *)
let default_latency_buckets =
  [|
    1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2;
    5e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
  |]

let check_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics.histogram: empty bucket bounds";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing"
  done

let histogram ?(registry = default) ?(help = "") ?(labels = [])
    ?(buckets = default_time_buckets) name =
  check_bounds buckets;
  register registry ~name ~help ~labels
    ~make:(fun () ->
      Histogram
        {
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          sum = 0.0;
          stats = W.create ();
        })
    ~same_kind:(function Histogram _ -> true | _ -> false)

let observe (h : histogram) x =
  match h.data with
  | Histogram d ->
      locked h.lock (fun () ->
          let nb = Array.length d.bounds in
          let i = ref 0 in
          (* Prometheus buckets are inclusive upper bounds: x <= le *)
          while !i < nb && x > d.bounds.(!i) do
            incr i
          done;
          d.counts.(!i) <- d.counts.(!i) + 1;
          d.sum <- d.sum +. x;
          W.add d.stats x)
  | _ -> assert false

(* ---- quantile estimation over fixed buckets ----

   The same monotone interpolation Prometheus's histogram_quantile()
   applies server-side: find the bucket the target rank falls in, then
   interpolate linearly within it (observations are assumed uniform
   inside a bucket). The estimate is exact when the rank lands on a
   bucket boundary and off by at most one bucket width otherwise. *)

let histogram_quantile ~bounds ~counts q =
  let nb = Array.length bounds in
  let total = Array.fold_left ( + ) 0 counts in
  if
    Array.length counts <> nb + 1
    || total = 0
    || Float.is_nan q
    || q < 0.0
    || q > 1.0
  then nan
  else begin
    let rank = q *. float_of_int total in
    (* first bucket whose cumulative count reaches the rank; a rank of 0
       resolves to the first non-empty bucket's lower edge *)
    let i = ref 0 and cum_prev = ref 0 in
    while
      !i < nb
      && (counts.(!i) = 0
         || float_of_int (!cum_prev + counts.(!i)) < rank)
    do
      cum_prev := !cum_prev + counts.(!i);
      incr i
    done;
    if !i >= nb then
      (* the +Inf bucket has no upper edge to interpolate towards; the
         best monotone answer is the highest finite bound (Prometheus
         does the same) *)
      bounds.(nb - 1)
    else if !i = 0 && bounds.(0) <= 0.0 then bounds.(0)
    else begin
      let lo = if !i = 0 then 0.0 else bounds.(!i - 1) in
      let hi = bounds.(!i) in
      let within =
        (rank -. float_of_int !cum_prev) /. float_of_int counts.(!i)
      in
      lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 within))
    end
  end

let histogram_count_above ~bounds ~counts threshold =
  let nb = Array.length bounds in
  if Array.length counts <> nb + 1 || Float.is_nan threshold then nan
  else begin
    (* everything in buckets strictly above the one containing the
       threshold, plus the uniform-interpolation share of that bucket *)
    let above = ref 0.0 in
    for i = 0 to nb do
      let lo = if i = 0 then 0.0 else bounds.(i - 1) in
      let hi = if i < nb then bounds.(i) else infinity in
      let c = float_of_int counts.(i) in
      if c > 0.0 then
        if threshold <= lo then above := !above +. c
        else if threshold < hi then
          if Float.is_finite hi then
            above := !above +. (c *. (hi -. threshold) /. (hi -. lo))
          else
            (* a threshold beyond the last finite bound lands in the
               +Inf bucket, which has no upper edge to interpolate
               against — count the whole bucket (conservative) *)
            above := !above +. c
    done;
    !above
  end

(* ---- registry-wide operations ---- *)

let reset ?(registry = default) () =
  locked registry.lock (fun () ->
      Hashtbl.iter
        (fun _ (m : metric) ->
          locked m.lock (fun () ->
              match m.data with
              | Counter c -> c.total <- 0.0
              | Gauge g -> g.v <- 0.0
              | Histogram h ->
                  Array.fill h.counts 0 (Array.length h.counts) 0;
                  h.sum <- 0.0;
                  h.stats <- W.create ()))
        registry.tbl)

type snapshot_data =
  | Counter_value of float
  | Gauge_value of float
  | Histogram_value of {
      bounds : float array;
      counts : int array;
      sum : float;
      count : int;
      mean : float;
      stddev : float;
    }

type entry = {
  name : string;
  help : string;
  labels : labels;
  data : snapshot_data;
}

let snapshot ?(registry = default) () =
  let entries =
    locked registry.lock (fun () ->
        Hashtbl.fold
          (fun _ (m : metric) acc ->
            let data =
              locked m.lock (fun () ->
                  match m.data with
                  | Counter c -> Counter_value c.total
                  | Gauge g -> Gauge_value g.v
                  | Histogram h ->
                      Histogram_value
                        {
                          bounds = Array.copy h.bounds;
                          counts = Array.copy h.counts;
                          sum = h.sum;
                          count = W.count h.stats;
                          mean = W.mean h.stats;
                          stddev = W.std_dev h.stats;
                        })
            in
            { name = m.name; help = m.help; labels = m.labels; data } :: acc)
          registry.tbl [])
  in
  List.sort
    (fun a b ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    entries

let value ?(registry = default) ?(labels = []) name =
  match
    locked registry.lock (fun () ->
        Hashtbl.find_opt registry.tbl (name, canon labels))
  with
  | Some ({ data = Counter c; _ } as m) ->
      Some (locked m.lock (fun () -> c.total))
  | Some ({ data = Gauge g; _ } as m) -> Some (locked m.lock (fun () -> g.v))
  | Some { data = Histogram _; _ } | None -> None
