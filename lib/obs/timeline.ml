(* Bounded per-series time-series recorders. A series integrates a
   piecewise-constant signal (queue length, operative servers, pool
   queue depth) into a fixed number of equal-width buckets; when a
   sample lands past the covered range, adjacent buckets merge pairwise
   and the bucket width doubles, so memory stays O(capacity) however
   long the run is. Aggregation keeps enough per bucket (covered time,
   integral, sample count/sum, min, max) that merging is exact: the
   downsampled series is what direct recording at the coarser width
   would have produced, which makes re-downsampling idempotent and the
   contents deterministic for a given sample sequence — identical at
   any pool width. *)

type labels = (string * string) list

type series = {
  name : string;
  labels : labels;
  capacity : int;
  lock : Mutex.t; (* guards everything below: single writer in the hot
                     paths, but snapshots come from the HTTP thread *)
  mutable meta : labels; (* informational only, not part of the key *)
  mutable t0 : float; (* nan until the first sample fixes the origin *)
  mutable initial_width : float; (* horizon-derived; nan = 1.0 default *)
  mutable width : float;
  mutable used : int; (* highest touched bucket index + 1 *)
  time_cov : float array; (* covered duration per bucket *)
  area : float array; (* integral of the signal over the bucket *)
  count : int array; (* raw samples that landed in the bucket *)
  sum_v : float array; (* their sum: mean fallback for zero measure *)
  vmin : float array;
  vmax : float array;
  mutable last : (float * float) option; (* most recent (t, v) *)
}

type t = { tbl : (string * labels, series) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 32; lock = Mutex.create () }

let default = create ()

let canon labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let default_capacity = 256

let clear_unlocked s =
  s.t0 <- nan;
  s.width <- s.initial_width;
  s.used <- 0;
  s.last <- None;
  Array.fill s.time_cov 0 s.capacity 0.0;
  Array.fill s.area 0 s.capacity 0.0;
  Array.fill s.count 0 s.capacity 0;
  Array.fill s.sum_v 0 s.capacity 0.0;
  Array.fill s.vmin 0 s.capacity infinity;
  Array.fill s.vmax 0 s.capacity neg_infinity

let clear (s : series) = locked s.lock (fun () -> clear_unlocked s)

let series ?(registry = default) ?(capacity = default_capacity) ?horizon
    ?(meta = []) ?(labels = []) name =
  if capacity < 2 then invalid_arg "Timeline.series: capacity must be >= 2";
  if not (Metrics.is_valid_name name) then
    invalid_arg (Printf.sprintf "Timeline.series: invalid name %S" name);
  let labels = canon labels in
  let key = (name, labels) in
  locked registry.lock (fun () ->
      let initial_width =
        match horizon with
        | Some h when h > 0.0 -> h /. float_of_int capacity
        | _ -> nan
      in
      match Hashtbl.find_opt registry.tbl key with
      | Some s ->
          locked s.lock (fun () ->
              if meta <> [] then s.meta <- canon meta;
              (* a new horizon takes effect at the next [clear] — the
                 buckets already recorded keep their layout *)
              if not (Float.is_nan initial_width) then
                s.initial_width <- initial_width);
          s
      | None ->
          let s =
            {
              name;
              labels;
              capacity;
              lock = Mutex.create ();
              meta = canon meta;
              t0 = nan;
              initial_width;
              width = nan;
              used = 0;
              time_cov = Array.make capacity 0.0;
              area = Array.make capacity 0.0;
              count = Array.make capacity 0;
              sum_v = Array.make capacity 0.0;
              vmin = Array.make capacity infinity;
              vmax = Array.make capacity neg_infinity;
              last = None;
            }
          in
          (* the horizon hint fixes the initial bucket width so that
             runs of the expected length never merge — and, more
             importantly, so every replication of a batch shares one
             bucket layout; [clear] restores it *)
          clear_unlocked s;
          Hashtbl.add registry.tbl key s;
          s)

let set_meta (s : series) meta = locked s.lock (fun () -> s.meta <- canon meta)

(* merge bucket pairs in place: (2i, 2i+1) -> i; the width doubles *)
let grow s =
  let half = (s.used + 1) / 2 in
  for i = 0 to half - 1 do
    let a = 2 * i and b = (2 * i) + 1 in
    let merge_from j =
      if j < s.capacity && j <> i then begin
        s.time_cov.(i) <- s.time_cov.(i) +. s.time_cov.(j);
        s.area.(i) <- s.area.(i) +. s.area.(j);
        s.count.(i) <- s.count.(i) + s.count.(j);
        s.sum_v.(i) <- s.sum_v.(i) +. s.sum_v.(j);
        s.vmin.(i) <- Float.min s.vmin.(i) s.vmin.(j);
        s.vmax.(i) <- Float.max s.vmax.(i) s.vmax.(j)
      end
    in
    if a <> i then begin
      s.time_cov.(i) <- s.time_cov.(a);
      s.area.(i) <- s.area.(a);
      s.count.(i) <- s.count.(a);
      s.sum_v.(i) <- s.sum_v.(a);
      s.vmin.(i) <- s.vmin.(a);
      s.vmax.(i) <- s.vmax.(a)
    end;
    merge_from b
  done;
  for i = half to s.used - 1 do
    s.time_cov.(i) <- 0.0;
    s.area.(i) <- 0.0;
    s.count.(i) <- 0;
    s.sum_v.(i) <- 0.0;
    s.vmin.(i) <- infinity;
    s.vmax.(i) <- neg_infinity
  done;
  s.used <- half;
  s.width <- s.width *. 2.0

let touch s i v =
  if v < s.vmin.(i) then s.vmin.(i) <- v;
  if v > s.vmax.(i) then s.vmax.(i) <- v;
  if i + 1 > s.used then s.used <- i + 1

(* bucket index of time t, growing until it fits. Buckets are
   half-open, except that a time exactly on the final boundary (a run
   that ends exactly at the horizon hint) closes into the last bucket
   instead of forcing a merge of everything into the lower half. *)
let index_for s t =
  let rec fit () =
    let i = int_of_float ((t -. s.t0) /. s.width) in
    if i >= s.capacity then
      if t -. s.t0 <= float_of_int s.capacity *. s.width then s.capacity - 1
      else begin
        grow s;
        fit ()
      end
    else max 0 i
  in
  fit ()

(* integrate the held value [v] over [lo, hi] into the buckets. [hi]
   must be indexed first: it can trigger a merge, which would leave an
   index computed from the old width pointing at the wrong bucket. *)
let integrate s ~lo ~hi v =
  if hi > lo then begin
    let i1 = index_for s hi in
    let i0 = index_for s lo in
    for i = i0 to i1 do
      let b_lo = s.t0 +. (float_of_int i *. s.width) in
      let b_hi = b_lo +. s.width in
      let ov = Float.min hi b_hi -. Float.max lo b_lo in
      if ov > 0.0 then begin
        s.time_cov.(i) <- s.time_cov.(i) +. ov;
        s.area.(i) <- s.area.(i) +. (ov *. v);
        touch s i v
      end
    done
  end

let record (s : series) ~t v =
  if Float.is_finite t && Float.is_finite v then
    locked s.lock (fun () ->
        if Float.is_nan s.t0 then s.t0 <- t;
        if Float.is_nan s.width then s.width <- 1.0;
        (* time is expected to be monotone per series; a stale clock is
           clamped forward rather than corrupting earlier buckets *)
        let t = Float.max t s.t0 in
        (match s.last with
        | Some (lt, lv) when t > lt -> integrate s ~lo:lt ~hi:t lv
        | _ -> ());
        let t =
          match s.last with Some (lt, _) -> Float.max t lt | None -> t
        in
        let i = index_for s t in
        s.count.(i) <- s.count.(i) + 1;
        s.sum_v.(i) <- s.sum_v.(i) +. v;
        touch s i v;
        s.last <- Some (t, v))

let finish (s : series) ~t =
  locked s.lock (fun () ->
      match s.last with
      | Some (lt, lv) when Float.is_finite t && t > lt ->
          integrate s ~lo:lt ~hi:t lv;
          s.last <- Some (t, lv)
      | _ -> ())

(* ---- snapshots ---- *)

type point = {
  index : int;
  t_lo : float;
  t_hi : float;
  count : int;
  time_cov : float;
  area : float;
  sum_v : float;
  vmin : float;
  vmax : float;
}

type snapshot = {
  s_name : string;
  s_labels : labels;
  s_meta : labels;
  t0 : float;
  width : float;
  points : point list;
}

let point_mean p =
  if p.time_cov > 0.0 then p.area /. p.time_cov
  else if p.count > 0 then p.sum_v /. float_of_int p.count
  else nan

let snapshot_series (s : series) =
  locked s.lock (fun () ->
      let points = ref [] in
      for i = s.used - 1 downto 0 do
        if s.count.(i) > 0 || s.time_cov.(i) > 0.0 then
          points :=
            {
              index = i;
              t_lo = s.t0 +. (float_of_int i *. s.width);
              t_hi = s.t0 +. (float_of_int (i + 1) *. s.width);
              count = s.count.(i);
              time_cov = s.time_cov.(i);
              area = s.area.(i);
              sum_v = s.sum_v.(i);
              vmin = s.vmin.(i);
              vmax = s.vmax.(i);
            }
            :: !points
      done;
      {
        s_name = s.name;
        s_labels = s.labels;
        s_meta = s.meta;
        t0 = s.t0;
        width = s.width;
        points = !points;
      })

let snapshot ?(registry = default) ?name () =
  let all =
    locked registry.lock (fun () ->
        Hashtbl.fold (fun _ s acc -> s :: acc) registry.tbl [])
  in
  let all =
    match name with
    | None -> all
    | Some n -> List.filter (fun s -> s.name = n) all
  in
  List.sort
    (fun a b ->
      match compare a.s_name b.s_name with
      | 0 -> compare a.s_labels b.s_labels
      | c -> c)
    (List.map snapshot_series all)

let reset ?(registry = default) () =
  let all =
    locked registry.lock (fun () ->
        Hashtbl.fold (fun _ s acc -> s :: acc) registry.tbl [])
  in
  List.iter clear all

(* merging [factor] adjacent buckets is the same algebra [grow] uses, so
   coarsening a snapshot commutes with recording at the coarser width:
   [coarsen ~factor:a] then [~factor:b] equals [coarsen ~factor:(a*b)] *)
let coarsen ~factor snap =
  if factor < 1 then invalid_arg "Timeline.coarsen: factor must be >= 1";
  if factor = 1 || Float.is_nan snap.t0 then snap
  else begin
    let tbl = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun p ->
        let i = p.index / factor in
        match Hashtbl.find_opt tbl i with
        | None ->
            order := i :: !order;
            Hashtbl.add tbl i
              {
                p with
                index = i;
                t_lo = snap.t0 +. (float_of_int i *. snap.width *. float_of_int factor);
                t_hi =
                  snap.t0
                  +. (float_of_int (i + 1) *. snap.width *. float_of_int factor);
              }
        | Some q ->
            Hashtbl.replace tbl i
              {
                q with
                count = q.count + p.count;
                time_cov = q.time_cov +. p.time_cov;
                area = q.area +. p.area;
                sum_v = q.sum_v +. p.sum_v;
                vmin = Float.min q.vmin p.vmin;
                vmax = Float.max q.vmax p.vmax;
              })
      snap.points;
    let points =
      List.sort
        (fun a b -> compare a.index b.index)
        (List.map (Hashtbl.find tbl) (List.rev !order))
    in
    { snap with width = snap.width *. float_of_int factor; points }
  end

(* dense mean trajectory on the bucket grid (nan where nothing was
   recorded) — what the Welch warm-up analysis averages across
   replications, index-aligned because the replications share a horizon *)
let mean_array snap =
  match List.rev snap.points with
  | [] -> [||]
  | last :: _ ->
      let arr = Array.make (last.index + 1) nan in
      List.iter (fun p -> arr.(p.index) <- point_mean p) snap.points;
      arr

(* ---- JSON ---- *)

let point_json p =
  Json.Obj
    [
      ("t_lo", Json.Float p.t_lo);
      ("t_hi", Json.Float p.t_hi);
      ("count", Json.Int p.count);
      ("covered_s", Json.Float p.time_cov);
      ("mean", Json.Float (point_mean p));
      ("min", Json.Float p.vmin);
      ("max", Json.Float p.vmax);
    ]

let snapshot_json snap =
  let labels_obj l = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) l) in
  Json.Obj
    ([ ("name", Json.String snap.s_name) ]
    @ (if snap.s_labels = [] then []
       else [ ("labels", labels_obj snap.s_labels) ])
    @ (if snap.s_meta = [] then [] else [ ("meta", labels_obj snap.s_meta) ])
    @ [
        ("t0", Json.Float snap.t0);
        ("bucket_width", Json.Float snap.width);
        ("points", Json.List (List.map point_json snap.points));
      ])

let to_json ?registry ?name () =
  Json.Obj
    [ ("series", Json.List (List.map snapshot_json (snapshot ?registry ?name ()))) ]
