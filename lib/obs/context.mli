(** Trace-correlation contexts: who caused this work?

    A context names a {e trace} (one logical request or CLI run,
    128-bit id), the {e span} within it that is currently executing
    (64-bit id) and the sampling decision, in the W3C Trace Context
    vocabulary. Contexts flow three ways:

    - {e ambiently} within a domain: {!with_current} installs a context
      for the dynamic extent of a call, {!current} reads it.
      [Span.with_] pushes a child context around every traced span, so
      [Ledger] records and nested spans pick up the innermost span id
      without any plumbing;
    - {e explicitly} across domains: [Urs_exec.Pool] {!capture}s the
      submitter's context at enqueue time and {!restore}s it inside the
      worker domain, so spans run by the pool parent correctly across
      the domain boundary;
    - {e textually} across processes: {!to_traceparent} /
      {!of_traceparent} round-trip the [00-<trace>-<span>-<flags>]
      header carried by HTTP requests (and the [URS_TRACEPARENT]
      environment variable read by the CLI).

    Ids come from a private splitmix64 stream. {!set_seed} makes them
    deterministic (test goldens); unseeded, the stream self-seeds from
    the wall clock and pid on first use.

    The ambient cell is domain-local (like the span stacks in
    {!Span}). Threads of one domain share it — in particular the HTTP
    server thread shares domain 0 with the main thread — so request
    handling passes its context explicitly ([Ledger.record ?context])
    rather than installing it ambiently. *)

type t = {
  trace_hi : int64;  (** high 64 bits of the 128-bit trace id *)
  trace_lo : int64;  (** low 64 bits *)
  span_id : int64;  (** the span this context names (nonzero) *)
  sampled : bool;  (** W3C [sampled] flag, carried not enforced *)
}

(** {1 Id generation} *)

val set_seed : int -> unit
(** Make every subsequent id draw deterministic (equal seeds, equal id
    sequences) — for test goldens and reproducible traces
    ([URS_TRACE_SEED] on the CLI). *)

val clear_seed : unit -> unit
(** Back to self-seeding entropy on the next draw. *)

val new_trace : ?sampled:bool -> unit -> t
(** A fresh trace (nonzero 128-bit trace id) with a fresh root span id.
    [sampled] defaults to [true]. *)

val child : t -> t
(** Same trace and sampling decision, fresh span id. *)

val fresh_span_id : unit -> int64
(** A nonzero span id from the same stream (used by [Span]). *)

(** {1 Rendering} *)

val id_hex : int64 -> string
(** 16 lowercase hex digits. *)

val trace_id_hex : t -> string
(** 32 lowercase hex digits. *)

val span_id_hex : t -> string

(** {1 W3C traceparent} *)

val to_traceparent : t -> string
(** [00-<trace_id_hex>-<span_id_hex>-<01|00>]. *)

val of_traceparent : string -> (t, string) result
(** Parse and validate a [traceparent] header value: version must be
    two lowercase hex digits other than [ff] (version [00] allows
    exactly four fields; higher versions may carry extra fields, which
    are ignored), trace and parent ids must be lowercase hex of the
    right width and not all zeros. The [sampled] flag is bit 0 of the
    flags byte. *)

(** {1 Ambient context} *)

val current : unit -> t option
(** The innermost context installed on the calling domain, if any. *)

val with_current : t -> (unit -> 'a) -> 'a
(** Install [c] as the ambient context for the duration of the call
    (restores the previous value even on raise). *)

val capture : unit -> t option
(** Alias of {!current}, named for the hand-off idiom: capture on the
    submitting domain, {!restore} on the worker. *)

val restore : t option -> (unit -> 'a) -> 'a
(** [restore saved f] runs [f] with the ambient cell set to exactly
    [saved] (including [None]), restoring the previous value after. *)
