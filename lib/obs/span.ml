let default_clock () = Unix.gettimeofday ()

let clock = ref default_clock

let now () = !clock ()

let set_clock f = clock := f

let use_default_clock () = clock := default_clock

(* GC profiling is a process-wide switch shared with [Runtime] (which
   owns the aggregate counters) and [Urs_exec.Pool] (per-task deltas).
   The atomic lives here — the lowest layer that needs it — so neither
   module depends on the other. Off by default: a disabled probe costs
   one atomic load per span. *)
let gc_profiling = Atomic.make false

let set_gc_profiling b = Atomic.set gc_profiling b

let gc_profiling_enabled () = Atomic.get gc_profiling

type gc_words = {
  gc_minor : float;  (* words allocated in the minor heap during the span *)
  gc_promoted : float;
  gc_major : float;  (* words allocated directly in the major heap *)
}

type node = {
  name : string;
  labels : Metrics.labels;
  start : float;
  domain : int;  (* id of the domain that ran the span *)
  trace_hi : int64;  (* the trace this span belongs to *)
  trace_lo : int64;
  span_id : int64;
  parent_span : int64 option;
      (* the ambient context's span id at entry. For physically nested
         spans this is the enclosing node's id; for a pool task it is
         the id captured on the submitting domain, which is how the
         per-domain forests knit back into one logical tree. *)
  mutable duration : float;
  mutable gc : gc_words option;  (* only when GC profiling was enabled *)
  mutable children : node list; (* reverse completion order *)
}

let tracing = Atomic.make false

(* The open-span stack is domain-local: a pool task's spans nest under
   whatever is open on that task's domain, never under another domain's
   spans. Completed roots are shared, behind a mutex. *)
let stack_key : node list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let trace_lock = Mutex.create ()

let roots : node list ref = ref [] (* reverse completion order *)

let root_count = ref 0

let dropped = ref 0

let max_roots = 16_384

let reset_trace () =
  Domain.DLS.get stack_key := [];
  Mutex.lock trace_lock;
  roots := [];
  root_count := 0;
  dropped := 0;
  Mutex.unlock trace_lock

let set_tracing b =
  Atomic.set tracing b;
  if b then reset_trace ()

let tracing_enabled () = Atomic.get tracing

let add_root n =
  Mutex.lock trace_lock;
  if !root_count >= max_roots then incr dropped
  else begin
    roots := n :: !roots;
    incr root_count
  end;
  Mutex.unlock trace_lock

let with_ ?registry ?(labels = []) ~name f =
  let hist =
    Metrics.histogram ?registry ~labels ~help:"span duration"
      (name ^ "_seconds")
  in
  let t0 = now () in
  let node, ctx =
    if Atomic.get tracing then begin
      let stack = Domain.DLS.get stack_key in
      (* the span's own context is a child of the ambient one (a fresh
         trace when there is none), so span ids form a tree that spans
         domain boundaries: a pool task restores the submitter's
         context before calling us *)
      let parent = Context.current () in
      let ctx =
        match parent with
        | Some c -> Context.child c
        | None -> Context.new_trace ()
      in
      let n =
        {
          name;
          labels;
          start = t0;
          domain = (Domain.self () :> int);
          trace_hi = ctx.Context.trace_hi;
          trace_lo = ctx.Context.trace_lo;
          span_id = ctx.Context.span_id;
          parent_span = Option.map (fun c -> c.Context.span_id) parent;
          duration = 0.0;
          gc = None;
          children = [];
        }
      in
      stack := n :: !stack;
      (Some n, Some ctx)
    end
    else (None, None)
  in
  (* sampled only when both tracing and GC profiling are on: the words
     are attached to the trace node (flame JSON fields, perfetto args),
     while aggregate counters belong to [Runtime] probes *)
  (* Gc.counters is domain-local, so a span on a pool domain measures
     only its own allocation, not its concurrently-running siblings' *)
  let gc0 =
    match node with
    | Some _ when Atomic.get gc_profiling -> Some (Gc.counters ())
    | _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      let dt = now () -. t0 in
      Metrics.observe hist dt;
      match node with
      | None -> ()
      | Some n -> (
          n.duration <- dt;
          (match gc0 with
          | None -> ()
          | Some (minor0, promoted0, major0) ->
              let minor1, promoted1, major1 = Gc.counters () in
              n.gc <-
                Some
                  {
                    gc_minor = minor1 -. minor0;
                    gc_promoted = promoted1 -. promoted0;
                    gc_major = major1 -. major0;
                  });
          let stack = Domain.DLS.get stack_key in
          match !stack with
          | top :: rest when top == n -> (
              stack := rest;
              match rest with
              | parent :: _ -> parent.children <- n :: parent.children
              | [] -> add_root n)
          | _ ->
              (* unbalanced (tracing toggled mid-span): drop the node *)
              ()))
    (fun () ->
      match ctx with None -> f () | Some c -> Context.with_current c f)

let node_trace_id n =
  Printf.sprintf "%016Lx%016Lx" n.trace_hi n.trace_lo

let rec node_json n =
  let base =
    [
      ("name", Json.String n.name);
      ("start_s", Json.Float n.start);
      ("duration_s", Json.Float n.duration);
      ("domain", Json.Int n.domain);
      ("trace_id", Json.String (node_trace_id n));
      ("span_id", Json.String (Context.id_hex n.span_id));
    ]
    @
    match n.parent_span with
    | None -> []
    | Some p -> [ ("parent_span_id", Json.String (Context.id_hex p)) ]
  in
  let labels =
    if n.labels = [] then []
    else
      [
        ( "labels",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) n.labels) );
      ]
  in
  let gc =
    match n.gc with
    | None -> []
    | Some g ->
        [
          ("gc_minor_words", Json.Float g.gc_minor);
          ("gc_promoted_words", Json.Float g.gc_promoted);
          ("gc_major_words", Json.Float g.gc_major);
        ]
  in
  let children =
    if n.children = [] then []
    else [ ("children", Json.List (List.rev_map node_json n.children)) ]
  in
  Json.Obj (base @ labels @ gc @ children)

let trace_json () =
  let roots, dropped =
    Mutex.lock trace_lock;
    let r = !roots and d = !dropped in
    Mutex.unlock trace_lock;
    (r, d)
  in
  Json.to_string
    (Json.Obj
       [
         ("spans", Json.List (List.rev_map node_json roots));
         ("dropped", Json.Int dropped);
       ])

(* Chrome/Perfetto "trace_events": the span tree flattened into complete
   ("ph":"X") events with microsecond timestamps. The domain id becomes
   the tid, so each domain renders as its own track and pool parallelism
   is visible at a glance; nesting within a track is reconstructed by
   the viewer from the ts/dur containment. [extra] events (e.g. GC
   slices and counter samples from [Runtime]) are appended verbatim. *)
let trace_perfetto ?(extra = []) () =
  let events = ref [] in
  let rec emit n =
    let args =
      let ids =
        [
          ("trace_id", Json.String (node_trace_id n));
          ("span_id", Json.String (Context.id_hex n.span_id));
        ]
        @
        match n.parent_span with
        | None -> []
        | Some p -> [ ("parent_span_id", Json.String (Context.id_hex p)) ]
      in
      let gc =
        match n.gc with
        | None -> []
        | Some g ->
            [
              ("gc_minor_words", Json.Float g.gc_minor);
              ("gc_promoted_words", Json.Float g.gc_promoted);
              ("gc_major_words", Json.Float g.gc_major);
            ]
      in
      let labels = List.map (fun (k, v) -> (k, Json.String v)) n.labels in
      [ ("args", Json.Obj (labels @ ids @ gc)) ]
    in
    events :=
      Json.Obj
        ([
           ("name", Json.String n.name);
           ("ph", Json.String "X");
           ("ts", Json.Float (n.start *. 1e6));
           ("dur", Json.Float (n.duration *. 1e6));
           ("pid", Json.Int 1);
           ("tid", Json.Int n.domain);
         ]
        @ args)
      :: !events;
    List.iter emit (List.rev n.children)
  in
  let roots =
    Mutex.lock trace_lock;
    let r = !roots in
    Mutex.unlock trace_lock;
    r
  in
  List.iter emit (List.rev roots);
  (* Cross-domain parent/child edges become flow-event pairs so Perfetto
     draws an arrow from the submitting domain's slice to the worker's:
     "s" sits on the parent's track, "f" (bp:"e" — bind to enclosing
     slice) on the child's, both stamped with the child's start time and
     keyed by the child's span id. Same-domain edges need no flows — the
     viewer already nests those by ts/dur containment. *)
  let index : (int64, node) Hashtbl.t = Hashtbl.create 64 in
  let rec index_node n =
    Hashtbl.replace index n.span_id n;
    List.iter index_node n.children
  in
  List.iter index_node roots;
  let flows = ref [] in
  let flow_event ph n tid =
    let base =
      [
        ("name", Json.String "urs_task");
        ("cat", Json.String "pool");
        ("ph", Json.String ph);
        ("id", Json.String (Context.id_hex n.span_id));
        ("ts", Json.Float (n.start *. 1e6));
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
      ]
    in
    Json.Obj (if ph = "f" then base @ [ ("bp", Json.String "e") ] else base)
  in
  Hashtbl.iter
    (fun _ n ->
      match n.parent_span with
      | Some p -> (
          match Hashtbl.find_opt index p with
          | Some parent when parent.domain <> n.domain ->
              flows :=
                flow_event "s" n parent.domain :: flow_event "f" n n.domain
                :: !flows
          | _ -> ())
      | None -> ())
    index;
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.rev !events @ !flows @ extra));
         ("displayTimeUnit", Json.String "ms");
       ])
