(* The standard observability routes shared by `urs serve` and
   `--serve-metrics`, in the library rather than the CLI so their
   behavior (notably the /metrics content type and quantile rendering)
   is directly testable. *)

let metrics_content_type = "text/plain; version=0.0.4"

let json_response j =
  Http.respond ~content_type:"application/json" (Json.to_string j ^ "\n")

let health_response () =
  (* the doctor verdict gauge, when a doctor run has happened in this
     process; load balancers read the status code, humans the body *)
  match Metrics.value ~labels:[ ("component", "doctor") ] "urs_health_status" with
  | None -> Http.respond "unknown (no doctor run yet)\n"
  | Some v ->
      let label =
        if v = 0.0 then "ok" else if v = 1.0 then "degraded" else "suspect"
      in
      Http.respond ~status:(if v < 2.0 then 200 else 503) (label ^ "\n")

let metrics_response q =
  (* /metrics?format=json for structured consumers (urs watch); the
     default is Prometheus text exposition. Both render interpolated
     p50/p90/p99 for every non-empty histogram — additive output
     (synthesized <name>_quantile families / "quantiles" objects), so
     plain scrapers are unaffected. *)
  let snap = Metrics.snapshot () in
  let quantiles = Export.default_quantiles in
  match Http.query_get q "format" with
  | None | Some "prometheus" ->
      Http.respond ~content_type:metrics_content_type
        (Export.prometheus ~quantiles snap)
  | Some "json" -> json_response (Export.json_value ~quantiles snap)
  | Some other ->
      Http.respond ~status:400
        (Printf.sprintf "unknown format %S (prometheus|json)\n" other)

let runs_response q =
  (* /runs?n=N limits the records returned; a non-positive or
     non-numeric N is the client's error, not a value to clamp *)
  match Http.query_pos_int q "n" ~default:100 with
  | Error msg -> Http.respond ~status:400 (msg ^ "\n")
  | Ok limit ->
      let records = Ledger.recent ~limit () in
      json_response (Json.List (List.map Ledger.to_json records))

let timeline_response q =
  (* /timeline?series=NAME restricts to one series name;
     /timeline?coarsen=K merges K adjacent buckets per series *)
  let name = Http.query_get q "series" in
  match Http.query_pos_int q "coarsen" ~default:1 with
  | Error msg -> Http.respond ~status:400 (msg ^ "\n")
  | Ok factor ->
      let snaps = Timeline.snapshot ?name () in
      let snaps =
        if factor = 1 then snaps
        else List.map (Timeline.coarsen ~factor) snaps
      in
      json_response
        (Json.Obj
           [ ("series", Json.List (List.map Timeline.snapshot_json snaps)) ])

(* since_seq/wait_ms accept 0 (query_pos_int would not): 0 means "from
   the beginning" / "answer immediately" *)
let query_nonneg q name ~default =
  match Http.query_get q name with
  | None -> Ok default
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 0 -> Ok v
      | _ -> Error (Printf.sprintf "%s must be a non-negative integer" name))

(* the server serves sequentially, so an unbounded long-poll would
   starve /metrics scrapes; cap the wait and let the client re-poll *)
let max_tail_wait_ms = 10_000

let tail_response q =
  (* /tail?kind=K&since_seq=S&n=N&wait_ms=W — cursor over the ledger
     ring: records with seq > S (oldest first, at most N, filtered to
     kind K), long-polling up to W ms for the first match. The reply's
     "seq" is the client's next cursor even when no record matched. *)
  let kind = Http.query_get q "kind" in
  match
    ( query_nonneg q "since_seq" ~default:0,
      Http.query_pos_int q "n" ~default:100,
      query_nonneg q "wait_ms" ~default:0 )
  with
  | Error msg, _, _ | _, Error msg, _ | _, _, Error msg ->
      Http.respond ~status:400 (msg ^ "\n")
  | Ok seq, Ok limit, Ok wait_ms ->
      let wait_ms = min wait_ms max_tail_wait_ms in
      let records, latest =
        if wait_ms = 0 then Ledger.since ?kind ~limit ~seq ()
        else
          Ledger.wait_since ?kind ~limit ~seq
            ~timeout_s:(float_of_int wait_ms /. 1000.0)
            ()
      in
      json_response
        (Json.Obj
           [
             ("seq", Json.Int latest);
             ("count", Json.Int (List.length records));
             ("records", Json.List (List.map Ledger.to_json records));
           ])

let convergence_response q =
  (* /convergence?n=N limits the traces returned (newest last) *)
  match Http.query_pos_int q "n" ~default:100 with
  | Error msg -> Http.respond ~status:400 (msg ^ "\n")
  | Ok limit -> json_response (Convergence.to_json ~limit ())

let standard =
  [
    ("/metrics", metrics_response);
    ("/healthz", fun _q -> health_response ());
    ("/runs", runs_response);
    ("/timeline", timeline_response);
    ("/progress", fun _q -> json_response (Progress.to_json ()));
    ("/runtime", fun _q -> json_response (Runtime.status_json ()));
    ("/convergence", convergence_response);
    ("/tail", tail_response);
  ]

let slo_response slo _q = json_response (Slo.to_json (Slo.evaluate slo))
