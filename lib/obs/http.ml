(* A deliberately tiny HTTP/1.0 server: one background thread accepts
   connections and serves them sequentially (no per-connection threads,
   no keep-alive). Adequate for a Prometheus scraper or a curl against
   /healthz; not a general web server.

   Safe against the single-domain runtime: OCaml threads interleave
   within one domain, so route handlers reading the metrics registry
   (whose updates are single atomic stores) never race with the solver
   thread mutating it. Multi-step structures need their own locking —
   the ledger ring guards itself with a mutex (see ledger.ml). *)

type response = { status : int; content_type : string; body : string }

let respond ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body =
  { status; content_type; body }

type query = (string * string) list

let query_get q key = List.assoc_opt key q

let query_int q key =
  match List.assoc_opt key q with
  | None -> None
  | Some v -> int_of_string_opt (String.trim v)

(* absent -> the default; present but non-numeric or < 1 -> an error the
   route turns into a 400 (never a silent clamp) *)
let query_pos_int q key ~default =
  match List.assoc_opt key q with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> Ok n
      | Some _ ->
          Error (Printf.sprintf "query parameter %s must be positive" key)
      | None ->
          Error (Printf.sprintf "query parameter %s must be an integer" key))

(* %XX and '+' decoding; malformed escapes pass through verbatim *)
let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char buf ' '
    | '%' when !i + 2 < n -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | Some h, Some l ->
            Buffer.add_char buf (Char.chr ((h * 16) + l));
            i := !i + 2
        | _ -> Buffer.add_char buf '%')
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query qs =
  List.filter_map
    (fun kv ->
      if kv = "" then None
      else
        match String.index_opt kv '=' with
        | None -> Some (percent_decode kv, "")
        | Some eq ->
            Some
              ( percent_decode (String.sub kv 0 eq),
                percent_decode
                  (String.sub kv (eq + 1) (String.length kv - eq - 1)) ))
    (String.split_on_char '&' qs)

type t = {
  sock : Unix.file_descr;
  port : int;
  thread : Thread.t;
  stopping : bool ref;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 411 -> "Length Required"
  | 413 -> "Content Too Large"
  | 415 -> "Unsupported Media Type"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

(* [omit_body] serves HEAD: same status line and headers (including the
   Content-Length the GET would have), empty body. *)
let write_response ?(omit_body = false) ?(extra_headers = []) fd
    { status; content_type; body } =
  let extras =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) extra_headers)
  in
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       %s\r\n"
      status (status_text status) content_type (String.length body) extras
  in
  let payload = Bytes.of_string (if omit_body then head else head ^ body) in
  let n = Bytes.length payload in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd payload !sent (n - !sent)
  done

(* index just past the "\r\n\r\n" head terminator, if present *)
let head_end s =
  let n = String.length s in
  let rec find i =
    if i + 3 >= n then None
    else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
    else find (i + 1)
  in
  find 0

(* read up to the end of the request head; a client that pipelines the
   body in the same write leaves it in the returned buffer, after the
   head terminator *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 16_384 then () (* refuse to buffer more *)
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        if head_end (Buffer.contents buf) = None then go ()
      end
  in
  (try go () with Unix.Unix_error _ -> ());
  Buffer.contents buf

(* read the request body: [already] bytes arrived with the head; pull
   the rest off the socket until Content-Length is satisfied. A short
   read (silent client, receive timeout) yields [None]. *)
let read_body fd ~raw ~body_start ~content_length =
  let already = String.length raw - body_start in
  if already >= content_length then
    Some (String.sub raw body_start content_length)
  else begin
    let buf = Buffer.create content_length in
    Buffer.add_string buf (String.sub raw body_start already);
    let chunk = Bytes.create 4096 in
    let rec go () =
      if Buffer.length buf >= content_length then true
      else
        let want =
          Stdlib.min (Bytes.length chunk) (content_length - Buffer.length buf)
        in
        match Unix.read fd chunk 0 want with
        | 0 -> false
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
        | exception Unix.Unix_error _ -> false
    in
    if go () then Some (Buffer.contents buf) else None
  end

(* header names are case-insensitive: lowercase them once here so
   lookups are plain assoc. Values are trimmed; parsing stops at the
   blank line (we never read a body). *)
let parse_headers raw =
  let lines = String.split_on_char '\n' raw in
  let rec go acc = function
    | [] -> List.rev acc
    | line :: rest -> (
        let line =
          if String.length line > 0 && line.[String.length line - 1] = '\r'
          then String.sub line 0 (String.length line - 1)
          else line
        in
        if line = "" then List.rev acc
        else
          match String.index_opt line ':' with
          | None -> go acc rest
          | Some i ->
              let name = String.lowercase_ascii (String.sub line 0 i) in
              let value =
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              go ((name, value) :: acc) rest)
  in
  match lines with
  | [] -> []
  | _request_line :: rest -> go [] rest

let header headers name = List.assoc_opt (String.lowercase_ascii name) headers

let parse_request_line raw =
  match String.index_opt raw '\r' with
  | None -> None
  | Some eol -> (
      let line = String.sub raw 0 eol in
      match String.split_on_char ' ' line with
      | meth :: target :: _ ->
          (* routes match on the path; the query string is parsed and
             handed to the handler *)
          let path, query =
            match String.index_opt target '?' with
            | Some q ->
                ( String.sub target 0 q,
                  parse_query
                    (String.sub target (q + 1) (String.length target - q - 1))
                )
            | None -> (target, [])
          in
          Some (meth, path, query)
      | _ -> None)

(* ---- request middleware ----

   Every request gets RED telemetry (request counter by route and code,
   latency histogram by route, in-flight gauge), a trace context (a
   child of the inbound [traceparent], or a fresh trace) echoed back as
   [traceparent] / [x-request-id] response headers, and one
   ["http.access"] ledger record — the JSONL access log.

   The context is passed explicitly everywhere ([Ledger.record
   ?context]): the server thread shares domain 0 with the main thread,
   so installing it ambiently (or opening a span here) would clobber
   the main thread's trace state mid-solve. *)

let in_flight =
  Metrics.gauge ~help:"HTTP requests currently being served"
    "urs_http_in_flight_requests"

(* the route label is the matched route (bounded set), never the raw
   path: unmatched paths collapse into "unknown" so a scanner cannot
   explode the label cardinality *)
let route_of meth path routes post_routes =
  match path with
  | None -> "malformed"
  | Some p -> (
      match meth with
      | Some "GET" | Some "HEAD" ->
          if List.mem_assoc p routes then p else "unknown"
      | Some "POST" -> if List.mem_assoc p post_routes then p else "unknown"
      | _ -> "unsupported")

(* a POST body is accepted only when it is well-declared and bounded:
   json Content-Type (415), a Content-Length (411) within [max_body]
   (413), and the declared bytes actually arriving (400) *)
let handle_post ~max_body ~post_routes ~routes fd ~raw ~path ~query ~headers =
  match List.assoc_opt path post_routes with
  | None ->
      if List.mem_assoc path routes then
        respond ~status:405 "this route only supports GET\n"
      else
        let known = String.concat " " (List.map fst post_routes) in
        respond ~status:404
          (Printf.sprintf "no POST route %s%s\n" path
             (if known = "" then "" else " (try: " ^ known ^ ")"))
  | Some handler -> (
      let content_type =
        Option.value (header headers "content-type") ~default:""
      in
      let is_json =
        (* accept parameters ("application/json; charset=utf-8") *)
        let prefix = "application/json" in
        String.length content_type >= String.length prefix
        && String.lowercase_ascii (String.sub content_type 0 (String.length prefix))
           = prefix
      in
      if not is_json then
        respond ~status:415 "POST bodies must be application/json\n"
      else
        match header headers "content-length" with
        | None -> respond ~status:411 "Content-Length is required\n"
        | Some v -> (
            match int_of_string_opt (String.trim v) with
            | None -> respond ~status:400 "invalid Content-Length\n"
            | Some content_length when content_length < 0 ->
                respond ~status:400 "invalid Content-Length\n"
            | Some content_length ->
                if content_length > max_body then
                  respond ~status:413
                    (Printf.sprintf "body exceeds the %d-byte limit\n" max_body)
                else
                  let body_start =
                    match head_end raw with
                    | Some i -> i
                    | None -> String.length raw
                  in
                  match read_body fd ~raw ~body_start ~content_length with
                  | None -> respond ~status:400 "incomplete request body\n"
                  | Some body -> (
                      try handler query ~body
                      with e ->
                        respond ~status:500
                          (Printf.sprintf "handler error: %s\n"
                             (Printexc.to_string e)))))

let handle ~max_body ~post_routes routes fd =
  Metrics.add in_flight 1.0;
  Fun.protect ~finally:(fun () -> Metrics.add in_flight (-1.0))
  @@ fun () ->
  let t0 = Span.now () in
  let raw = read_request fd in
  let parsed = parse_request_line raw in
  let headers = parse_headers raw in
  let ctx =
    match Option.bind (header headers "traceparent") (fun v ->
        Result.to_option (Context.of_traceparent v)) with
    | Some inbound -> Context.child inbound
    | None -> Context.new_trace ()
  in
  let omit_body = ref false in
  let resp =
    match parsed with
    | None -> respond ~status:400 "malformed request\n"
    | Some ("POST", path, query) ->
        handle_post ~max_body ~post_routes ~routes fd ~raw ~path ~query
          ~headers
    | Some (meth, _, _) when meth <> "GET" && meth <> "HEAD" ->
        respond ~status:405 "only GET, HEAD and POST are supported\n"
    | Some (meth, path, query) -> (
        if meth = "HEAD" then omit_body := true;
        match List.assoc_opt path routes with
        | None ->
            if List.mem_assoc path post_routes then
              respond ~status:405 "this route only supports POST\n"
            else
              let known = String.concat " " (List.map fst routes) in
              respond ~status:404
                (Printf.sprintf "no route %s (try: %s)\n" path known)
        | Some handler -> (
            try handler query
            with e ->
              respond ~status:500
                (Printf.sprintf "handler error: %s\n" (Printexc.to_string e))))
  in
  let wall = Span.now () -. t0 in
  let meth = Option.map (fun (m, _, _) -> m) parsed in
  let path = Option.map (fun (_, p, _) -> p) parsed in
  let route = route_of meth path routes post_routes in
  Metrics.inc
    (Metrics.counter ~help:"HTTP requests served"
       ~labels:[ ("route", route); ("code", string_of_int resp.status) ]
       "urs_http_requests_total");
  Metrics.observe
    (Metrics.histogram ~help:"HTTP request latency"
       ~buckets:Metrics.default_latency_buckets
       ~labels:[ ("route", route) ]
       "urs_http_request_seconds")
    wall;
  Ledger.record ~context:ctx ~kind:"http.access"
    ~params:
      [
        ("method", Json.String (Option.value meth ~default:"-"));
        ("route", Json.String route);
        ("path", Json.String (Option.value path ~default:"-"));
      ]
    ~outcome:(if resp.status < 400 then "ok" else "error")
    ~summary:
      [
        ("status", Json.Int resp.status);
        ("bytes", Json.Int (String.length resp.body));
        ("request_id", Json.String (Context.span_id_hex ctx));
        ("sampled", Json.Bool ctx.Context.sampled);
      ]
    ~wall_seconds:wall ();
  let extra_headers =
    [
      ("traceparent", Context.to_traceparent ctx);
      ("x-request-id", Context.span_id_hex ctx);
    ]
  in
  (try write_response ~omit_body:!omit_body ~extra_headers fd resp
   with Unix.Unix_error _ -> ())

let accept_loop sock stopping ~max_body ~post_routes routes =
  let rec go () =
    match Unix.accept sock with
    | exception Unix.Unix_error _ -> if not !stopping then go ()
    | client, _ ->
        Fun.protect
          ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
          (fun () ->
            try
              (* the server is sequential: a client that connects and
                 then goes silent must not block every later scrape, so
                 bound both directions. A timed-out read surfaces as a
                 Unix_error, which read_request treats as end of input
                 (-> malformed request). *)
              Unix.setsockopt_float client Unix.SO_RCVTIMEO 5.0;
              Unix.setsockopt_float client Unix.SO_SNDTIMEO 5.0;
              handle ~max_body ~post_routes routes client
            with _ -> ());
        go ()
  in
  go ()

let default_max_body_bytes = 1 lsl 20

let start ?(addr = "127.0.0.1") ?(max_body_bytes = default_max_body_bytes)
    ?(post_routes = []) ~port ~routes () =
  (* A client that disconnects mid-response (aborted curl, scrape
     timeout) would otherwise deliver SIGPIPE on the next write and
     kill the whole process — ignoring it turns the write into EPIPE,
     which the try/with around write_response swallows. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> () (* platform without SIGPIPE *));
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stopping = ref false in
  let thread =
    Thread.create
      (fun () ->
        accept_loop sock stopping ~max_body:max_body_bytes ~post_routes routes)
      ()
  in
  { sock; port; thread; stopping }

let port t = t.port

let shutdown t =
  t.stopping := true;
  (* closing the listening socket makes the blocked accept fail, which
     terminates the loop *)
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ())

let stop t =
  shutdown t;
  Thread.join t.thread

let wait t = Thread.join t.thread

(* ---- a matching tiny client (for `urs watch` and smoke tests) ---- *)

let request ?(addr = "127.0.0.1") ?(timeout_s = 5.0) ?(headers = [])
    ?(meth = "GET") ?body ?(content_type = "application/json") ~port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      try
        (* every socket operation is bounded, so a silent or half-open
           server costs at most timeout_s per syscall, never a hang *)
        Unix.setsockopt_float sock Unix.SO_RCVTIMEO timeout_s;
        Unix.setsockopt_float sock Unix.SO_SNDTIMEO timeout_s;
        Unix.connect sock
          (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
        (* propagate the caller's ambient context unless a traceparent
           was passed explicitly, so CLI-side requests (urs watch, the
           smoke tests) correlate with the server's access log *)
        let headers =
          if List.exists (fun (k, _) ->
              String.lowercase_ascii k = "traceparent") headers
          then headers
          else
            match Context.current () with
            | Some c -> ("traceparent", Context.to_traceparent c) :: headers
            | None -> headers
        in
        let body_headers, payload_body =
          match body with
          | None -> ("", "")
          | Some b ->
              ( Printf.sprintf "Content-Type: %s\r\nContent-Length: %d\r\n"
                  content_type (String.length b),
                b )
        in
        let req =
          Printf.sprintf "%s %s HTTP/1.0\r\nHost: %s\r\n%s%s\r\n%s" meth
            target addr
            (String.concat ""
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v)
                  headers))
            body_headers payload_body
        in
        let payload = Bytes.of_string req in
        let n = Bytes.length payload in
        let sent = ref 0 in
        while !sent < n do
          sent := !sent + Unix.write sock payload !sent (n - !sent)
        done;
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec read_all () =
          let n = Unix.read sock chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes buf chunk 0 n;
            read_all ()
          end
        in
        (try read_all () with Unix.Unix_error _ -> ());
        let raw = Buffer.contents buf in
        let status =
          match String.split_on_char ' ' raw with
          | _ :: code :: _ -> Option.value (int_of_string_opt code) ~default:0
          | _ -> 0
        in
        let resp_headers = parse_headers raw in
        let body =
          match head_end raw with
          | Some start -> String.sub raw start (String.length raw - start)
          | None -> ""
        in
        if status = 0 then Error "malformed response"
        else Ok (status, resp_headers, body)
      with
      | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | e -> Error (Printexc.to_string e))

let get ?addr ?timeout_s ~port target =
  Result.map
    (fun (status, _headers, body) -> (status, body))
    (request ?addr ?timeout_s ~port target)

let post ?addr ?timeout_s ?content_type ~port ~body target =
  Result.map
    (fun (status, _headers, resp_body) -> (status, resp_body))
    (request ?addr ?timeout_s ?content_type ~meth:"POST" ~body ~port target)
