(** Minimal single-threaded HTTP server (Unix library only) for live
    exposition of metrics, health and ledger state while a long run is
    in progress.

    {!start} binds a listening socket and spawns {e one} background
    thread that accepts and serves connections sequentially —
    HTTP/1.0, [Connection: close], GET and HEAD on [routes] (HEAD gets
    the same headers with an empty body) plus POST on [post_routes];
    other methods get 405. POST bodies must be declared and bounded: a
    JSON [Content-Type] (else 415), a [Content-Length] (else 411; 400
    when non-numeric) no larger than [max_body_bytes] (else 413), and
    the declared bytes actually arriving before the receive timeout
    (else 400). Because service is sequential, accepted sockets carry
    a 5 s receive/send timeout so a silent or half-open client cannot
    block later scrapes, and SIGPIPE is ignored ({!start} installs the
    handler) so a client aborting mid-response cannot kill the
    process. This is intentionally the smallest thing a Prometheus
    scraper, a load balancer's health probe, [curl] or the bundled
    {!request} client can talk to; it is not a general web server.

    Route handlers run on the server thread. Under the OCaml runtime,
    threads of one domain interleave rather than run in parallel, so
    handlers that read the metrics registry (single atomic stores)
    observe consistent values; multi-step shared structures such as
    the ledger ring synchronize with their own mutex.

    Every request passes through an observability middleware: a trace
    context derived from the inbound [traceparent] header (or a fresh
    trace), echoed back as [traceparent] and [x-request-id] response
    headers; RED metrics ([urs_http_requests_total{route,code}],
    [urs_http_request_seconds{route}], [urs_http_in_flight_requests]);
    and one ["http.access"] ledger record per request — the JSONL
    access log, stamped with the request's trace/span ids so
    [urs trace grep] can join it to solver-side records. The [route]
    label is the matched route, with unmatched paths collapsed to
    ["unknown"] (and ["unsupported"]/["malformed"] for 405/400), so
    label cardinality stays bounded. The request context is never
    installed ambiently — the server thread shares domain 0's
    domain-local state with the main thread. *)

type response = { status : int; content_type : string; body : string }

val respond : ?status:int -> ?content_type:string -> string -> response
(** [respond body] with status [200] and [text/plain] by default. *)

type query = (string * string) list
(** Decoded query-string parameters, in request order. Keys and values
    are percent-decoded ([+] means space); a key without [=] maps to
    [""]. The standard endpoints accept: [/runs?n=N] (limit the number
    of ledger records returned), [/timeline?series=NAME] (restrict to
    series of that name) with [/timeline?coarsen=K] (merge K adjacent
    buckets). *)

val query_get : query -> string -> string option
(** First value of the named parameter. *)

val query_int : query -> string -> int option
(** Same, parsed as an integer; [None] when absent or non-numeric. *)

val query_pos_int : query -> string -> default:int -> (int, string) result
(** Positive-integer parameter with strict validation: absent means
    [Ok default]; present but non-numeric or [< 1] is an [Error]
    message the route should return as a 400 (never a silent clamp). *)

type t
(** A running server. *)

val default_max_body_bytes : int
(** 1 MiB — generous for a JSON model, far below anything that could
    memory-starve the process. *)

val start :
  ?addr:string ->
  ?max_body_bytes:int ->
  ?post_routes:(string * (query -> body:string -> response)) list ->
  port:int ->
  routes:(string * (query -> response)) list ->
  unit ->
  t
(** [start ~port ~routes ()] binds [addr:port] (default
    [127.0.0.1]; port [0] picks an ephemeral port — see {!port}) and
    serves [routes] until {!stop}. Routes match the exact request path;
    the query string is parsed and handed to the handler. Unknown paths
    get a 404 listing the known routes, and a handler that raises turns
    into a 500 carrying the exception text. Raises [Unix.Unix_error] if
    the address cannot be bound.

    [post_routes] (default none) serve POST requests; their handlers
    additionally receive the request body, which the server has
    already vetted (JSON content type, [Content-Length] within
    [max_body_bytes] — default {!default_max_body_bytes} — and fully
    received). A GET against a POST-only path (or vice versa) is a
    405, not a 404. *)

val port : t -> int
(** The actual bound port (useful with [~port:0]). *)

val shutdown : t -> unit
(** {!stop} without the join: close the listening socket so the accept
    loop winds down, but never block. Safe to call from a signal
    handler (which may run on the server thread itself, where joining
    would deadlock); a later {!wait} or {!stop} observes the exit. *)

val stop : t -> unit
(** Close the listening socket and join the server thread. In-flight
    requests finish; queued connections are dropped. *)

val wait : t -> unit
(** Block until the server thread exits ([urs serve] foreground mode —
    effectively forever unless {!stop} is called from a signal
    handler). *)

val request :
  ?addr:string ->
  ?timeout_s:float ->
  ?headers:(string * string) list ->
  ?meth:string ->
  ?body:string ->
  ?content_type:string ->
  port:int ->
  string ->
  (int * (string * string) list * string, string) result
(** Minimal matching client: one blocking HTTP/1.0 request against
    [addr:port] (default [127.0.0.1]) returning status, response
    headers (names lowercased, values trimmed) and body, or a
    connection/protocol error message. [timeout_s] (default 5 s,
    matching the server's socket timeouts) bounds {e every} socket
    operation — connect, send and receive — so a silent or half-open
    server can never hang the caller; a timeout surfaces as an [Error]
    with the [Unix] error message. [meth] defaults to [GET]; with
    [body] the request carries [Content-Length] and [content_type]
    (default [application/json]) — what a POST needs. [headers] are
    sent verbatim; unless one of them is a [traceparent], the caller's
    ambient {!Context.current} (if any) is propagated as one
    automatically. Backs [urs watch], [urs loadgen] and the smoke
    tests; not a general HTTP client. *)

val get :
  ?addr:string ->
  ?timeout_s:float ->
  port:int ->
  string ->
  (int * string, string) result
(** {!request} without the response headers. *)

val post :
  ?addr:string ->
  ?timeout_s:float ->
  ?content_type:string ->
  port:int ->
  body:string ->
  string ->
  (int * string, string) result
(** One POST carrying [body], without the response headers. *)
