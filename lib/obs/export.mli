(** Render a metrics snapshot as Prometheus text-exposition format or as
    JSON.

    With [~skip_zero:true] the exporters omit metrics that carry no
    information: counters and gauges at exactly [0.] and histograms with
    no observations. The bench harness uses this for its per-section
    snapshots — a section that never touches the simulator should not
    repeat every [urs_sim_*] series at zero. Leave it off for scrape
    endpoints, where a disappearing series looks like a restart.

    Histogram [mean]/[stddev] summaries are clamped to [0] when
    non-finite (no observations, or an observed infinity), so the JSON
    output never depends on how a consumer treats [null] samples. *)

val prometheus : ?skip_zero:bool -> Metrics.entry list -> string
(** Text exposition format (version 0.0.4): [# HELP] / [# TYPE] comment
    lines followed by samples; histograms expand to cumulative
    [_bucket{le="..."}] samples plus [_sum] and [_count]. *)

val json_value : ?skip_zero:bool -> Metrics.entry list -> Json.t
(** The snapshot as a JSON value — [{"metrics": [...]}] — for embedding
    in larger documents (the bench harness). Histogram buckets are
    cumulative, matching the Prometheus rendering, and carry the Welford
    [mean]/[stddev] summary. *)

val json : ?skip_zero:bool -> Metrics.entry list -> string
