(** Render a metrics snapshot as Prometheus text-exposition format or as
    JSON.

    With [~skip_zero:true] the exporters omit metrics that carry no
    information: counters and gauges at exactly [0.] and histograms with
    no observations. The bench harness uses this for its per-section
    snapshots — a section that never touches the simulator should not
    repeat every [urs_sim_*] series at zero. Leave it off for scrape
    endpoints, where a disappearing series looks like a restart.

    Histogram [mean]/[stddev] summaries are clamped to [0] when
    non-finite (no observations, or an observed infinity), so the JSON
    output never depends on how a consumer treats [null] samples. *)

val default_quantiles : float list
(** [[0.5; 0.9; 0.99]] — what the [/metrics] endpoint and [urs watch]
    render. *)

val prometheus :
  ?skip_zero:bool -> ?quantiles:float list -> Metrics.entry list -> string
(** Text exposition format (version 0.0.4): [# HELP] / [# TYPE] comment
    lines followed by samples; histograms expand to cumulative
    [_bucket{le="..."}] samples plus [_sum] and [_count]. Label values
    are escaped per the format (backslash, double-quote and newline);
    HELP text likewise (backslash and newline).

    With [~quantiles] (default none), every non-empty histogram
    additionally yields a synthesized [<name>_quantile] gauge family —
    one sample per requested quantile, labelled
    [quantile="0.5"|"0.9"|...] — computed by
    {!Metrics.histogram_quantile}. Derived data is kept out of the
    histogram family proper, so PromQL's own [histogram_quantile()]
    still sees clean buckets, and the synthesized families are emitted
    after all primary families so each family stays one contiguous
    group. *)

val json_value :
  ?skip_zero:bool -> ?quantiles:float list -> Metrics.entry list -> Json.t
(** The snapshot as a JSON value — [{"metrics": [...]}] — for embedding
    in larger documents (the bench harness). Histogram buckets are
    cumulative, matching the Prometheus rendering, and carry the Welford
    [mean]/[stddev] summary. With [~quantiles], non-empty histogram
    entries gain a ["quantiles"] object mapping each requested quantile
    to its interpolated estimate. *)

val json :
  ?skip_zero:bool -> ?quantiles:float list -> Metrics.entry list -> string

val set_build_info : version:string -> unit -> unit
(** Declare the process's build information. Once set, {!prometheus} and
    {!json_value} include a constant [urs_build_info] gauge (value [1])
    carrying [version] and the compiling OCaml version as labels —
    node_exporter style. The CLI calls this at startup; library users
    that never do see unchanged exporter output. *)

val clear_build_info : unit -> unit
(** Stop emitting [urs_build_info] (tests). *)

val stats_histogram :
  ?labels:Metrics.labels ->
  ?help:string ->
  name:string ->
  Urs_stats.Histogram.t ->
  string
(** Render a static {!Urs_stats.Histogram.t} (a binned sample from the
    fit pipeline) as one Prometheus histogram family: cumulative
    [_bucket{le="..."}] samples at each bin's upper edge, a [+Inf]
    bucket, [_sum] (midpoint approximation, matching the pipeline's
    histogram-moment estimator) and [_count]. Raises [Invalid_argument]
    on an invalid metric name. *)
