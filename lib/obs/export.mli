(** Render a metrics snapshot as Prometheus text-exposition format or as
    JSON. *)

val prometheus : Metrics.entry list -> string
(** Text exposition format (version 0.0.4): [# HELP] / [# TYPE] comment
    lines followed by samples; histograms expand to cumulative
    [_bucket{le="..."}] samples plus [_sum] and [_count]. *)

val json_value : Metrics.entry list -> Json.t
(** The snapshot as a JSON value — [{"metrics": [...]}] — for embedding
    in larger documents (the bench harness). Histogram buckets are
    cumulative, matching the Prometheus rendering, and carry the Welford
    [mean]/[stddev] summary. *)

val json : Metrics.entry list -> string
