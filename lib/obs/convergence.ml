(* Iteration recorder for the numerical core. One recorder per solve,
   mutex-guarded; finished traces go to a process-global ring shared by
   the HTTP route, the CLI and the Perfetto export. Recording is gated
   globally and off by default so the kernels' observe callbacks cost
   nothing in ordinary solves. *)

type sample = {
  iteration : int;
  residual : float;
  shift : float;
  active : int;
  deflation : bool;
  t : float;
}

type trace = {
  seq : int;
  solver : string;
  label : string;
  started : float;
  finished : float;
  iterations : int;
  max_iter : int option;
  converged : bool;
  deflations : int;
  dropped : int;
  samples : sample array;
  residual_first : float;
  residual_last : float;
  residual_min : float;
  residual_mean : float;
  residual_count : int;
}

(* ---- global state ---- *)

let enabled = Atomic.make false

let recording () = Atomic.get enabled

let set_recording v = Atomic.set enabled v

let ring_capacity = 64

let ring_mutex = Mutex.create ()

let ring : trace option array = Array.make ring_capacity None

let ring_next = ref 0 (* total traces ever finished; also the seq source *)

let push_trace mk =
  Mutex.protect ring_mutex (fun () ->
      let seq = !ring_next + 1 in
      ring_next := seq;
      let t = mk seq in
      ring.((seq - 1) mod ring_capacity) <- Some t;
      t)

let last_seq () = Mutex.protect ring_mutex (fun () -> !ring_next)

let recent ?limit () =
  let all =
    Mutex.protect ring_mutex (fun () ->
        let total = !ring_next in
        let kept = min total ring_capacity in
        List.filter_map
          (fun i -> ring.((total - kept + i) mod ring_capacity))
          (List.init kept Fun.id))
  in
  match limit with
  | None -> all
  | Some n ->
      let len = List.length all in
      List.filteri (fun i _ -> i >= len - n) all

let reset () =
  Atomic.set enabled false;
  Mutex.protect ring_mutex (fun () ->
      Array.fill ring 0 ring_capacity None;
      ring_next := 0)

(* ---- recorders ---- *)

type recorder = {
  solver : string;
  label : string;
  r_max_iter : int option;
  capacity : int;
  started : float;
  mutex : Mutex.t;
  buf : sample array; (* circular; only the first [min total capacity] live *)
  mutable total : int; (* samples ever observed *)
  mutable iterations : int;
  mutable deflations : int;
  mutable residual_first : float;
  mutable residual_last : float;
  mutable residual_min : float;
  welford : Urs_stats.Welford.t;
  mutable sealed : trace option;
}

let dummy_sample =
  { iteration = 0; residual = nan; shift = nan; active = 0; deflation = false;
    t = 0.0 }

let create ?(capacity = 512) ?max_iter ~solver ~label () =
  if capacity <= 0 then invalid_arg "Convergence.create: capacity";
  {
    solver;
    label;
    r_max_iter = max_iter;
    capacity;
    started = Span.now ();
    mutex = Mutex.create ();
    buf = Array.make capacity dummy_sample;
    total = 0;
    iterations = 0;
    deflations = 0;
    residual_first = nan;
    residual_last = nan;
    residual_min = nan;
    welford = Urs_stats.Welford.create ();
    sealed = None;
  }

let observe r ~iteration ?(residual = nan) ?(shift = nan) ?(active = 0)
    ?(deflation = false) () =
  Mutex.protect r.mutex (fun () ->
      if r.sealed = None then begin
        let s =
          { iteration; residual; shift; active; deflation; t = Span.now () }
        in
        r.buf.(r.total mod r.capacity) <- s;
        r.total <- r.total + 1;
        if iteration > r.iterations then r.iterations <- iteration;
        if deflation then r.deflations <- r.deflations + 1;
        if Float.is_finite residual then begin
          if Float.is_nan r.residual_first then r.residual_first <- residual;
          r.residual_last <- residual;
          if Float.is_nan r.residual_min || residual < r.residual_min then
            r.residual_min <- residual;
          Urs_stats.Welford.add r.welford residual
        end
      end)

let m_iterations solver =
  Metrics.gauge
    ~labels:[ ("solver", solver) ]
    ~help:"Iterations of the last finished convergence trace"
    "urs_convergence_iterations"

let m_traces solver =
  Metrics.counter
    ~labels:[ ("solver", solver) ]
    ~help:"Convergence traces finished" "urs_convergence_traces_total"

let finish ?(converged = true) r =
  let fresh =
    Mutex.protect r.mutex (fun () ->
        match r.sealed with
        | Some t -> Error t
        | None ->
            let kept = min r.total r.capacity in
            let samples =
              Array.init kept (fun i ->
                  r.buf.((r.total - kept + i) mod r.capacity))
            in
            let finished = Span.now () in
            let t =
              push_trace (fun seq ->
                  {
                    seq;
                    solver = r.solver;
                    label = r.label;
                    started = r.started;
                    finished;
                    iterations = r.iterations;
                    max_iter = r.r_max_iter;
                    converged;
                    deflations = r.deflations;
                    dropped = r.total - kept;
                    samples;
                    residual_first = r.residual_first;
                    residual_last = r.residual_last;
                    residual_min = r.residual_min;
                    residual_mean = Urs_stats.Welford.mean r.welford;
                    residual_count = Urs_stats.Welford.count r.welford;
                  })
            in
            r.sealed <- Some t;
            Ok t)
  in
  match fresh with
  | Error t -> t
  | Ok t ->
      Metrics.set (m_iterations t.solver) (float_of_int t.iterations);
      Metrics.inc (m_traces t.solver);
      Ledger.record ~kind:"convergence"
        ~params:
          ([
             ("solver", Json.String t.solver);
             ("label", Json.String t.label);
           ]
          @
          match t.max_iter with
          | Some m -> [ ("max_iter", Json.Int m) ]
          | None -> [])
        ~wall_seconds:(t.finished -. t.started)
        ~outcome:(if t.converged then "ok" else "no-convergence")
        ~summary:
          [
            ("iterations", Json.Int t.iterations);
            ("deflations", Json.Int t.deflations);
            ("samples", Json.Int (Array.length t.samples));
            ("residual_first", Json.Float t.residual_first);
            ("residual_last", Json.Float t.residual_last);
            ("residual_min", Json.Float t.residual_min);
            ("residual_mean", Json.Float t.residual_mean);
          ]
        ();
      t

let with_recording f =
  let prev = Atomic.exchange enabled true in
  let mark = last_seq () in
  let restore () = Atomic.set enabled prev in
  let result = Fun.protect ~finally:restore f in
  let traces = List.filter (fun t -> t.seq > mark) (recent ()) in
  (result, traces)

(* ---- export ---- *)

let sample_to_json (s : sample) =
  Json.Obj
    [
      ("iteration", Json.Int s.iteration);
      ("residual", Json.Float s.residual);
      ("shift", Json.Float s.shift);
      ("active", Json.Int s.active);
      ("deflation", Json.Bool s.deflation);
      ("t", Json.Float s.t);
    ]

let trace_to_json (t : trace) =
  Json.Obj
    [
      ("seq", Json.Int t.seq);
      ("solver", Json.String t.solver);
      ("label", Json.String t.label);
      ("started", Json.Float t.started);
      ("finished", Json.Float t.finished);
      ("iterations", Json.Int t.iterations);
      ( "max_iter",
        match t.max_iter with Some m -> Json.Int m | None -> Json.Null );
      ("converged", Json.Bool t.converged);
      ("deflations", Json.Int t.deflations);
      ("dropped", Json.Int t.dropped);
      ("residual_first", Json.Float t.residual_first);
      ("residual_last", Json.Float t.residual_last);
      ("residual_min", Json.Float t.residual_min);
      ("residual_mean", Json.Float t.residual_mean);
      ("residual_count", Json.Int t.residual_count);
      ("samples", Json.List (Array.to_list (Array.map sample_to_json t.samples)));
    ]

let to_json ?limit () =
  Json.Obj
    [ ("traces", Json.List (List.map trace_to_json (recent ?limit ()))) ]

(* Counter tracks for the Perfetto export: one track per trace, one
   event per sample, in the same shape Runtime.perfetto_events uses
   (ph="C", absolute-microsecond ts, pid 1). *)
let perfetto_events () =
  List.concat_map
    (fun (t : trace) ->
      let name = Printf.sprintf "conv:%s:%d" t.solver t.seq in
      Array.to_list
        (Array.map
           (fun s ->
             let args =
               ("remaining", Json.Int s.active)
               ::
               (if Float.is_finite s.residual then
                  [ ("residual", Json.Float s.residual) ]
                else [])
             in
             Json.Obj
               [
                 ("name", Json.String name);
                 ("cat", Json.String "convergence");
                 ("ph", Json.String "C");
                 ("ts", Json.Float (s.t *. 1e6));
                 ("pid", Json.Int 1);
                 ("tid", Json.Int 0);
                 ("args", Json.Obj args);
               ])
           t.samples))
    (recent ())

let pp_trace ppf (t : trace) =
  Format.fprintf ppf
    "#%d %-14s %-24s %4d iter%s  %2d defl  residual %.2e -> %.2e%s" t.seq
    t.solver t.label t.iterations
    (match t.max_iter with
    | Some m -> Printf.sprintf "/%d" m
    | None -> "")
    t.deflations t.residual_first t.residual_last
    (if t.converged then "" else "  NOT CONVERGED")
