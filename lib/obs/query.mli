(** The ledger query engine behind [urs query]: filter → group →
    aggregate over every segment of a (possibly rotated) JSONL ledger.

    Scans stream through {!Ledger.fold_path}, so torn lines are skipped
    and counted rather than fatal, and — when the filter names a kind
    or a time window — the sparse sidecar index lets whole blocks be
    seeked over without parsing ({!result}[.seeked] counts those
    records). Aggregations reuse the repo's estimators
    ({!Urs_stats.Welford}, {!Urs_stats.Empirical.quantile}), so query
    answers agree with the library to the last bit. *)

type key = Kind | Strategy | Outcome | Route | Trace
(** Grouping/filtering dimensions. [Route] is the ["route"] param of
    ["http.access"] records; records without a value group under
    ["-"]. *)

type field = Wall_seconds | Time | Named of string
(** Numeric record field an aggregation reads. [Named n] looks up [n]
    in the record's gauges, then summary, then params. *)

type agg =
  | Count
  | Rate  (** records per second over the group's observed time span *)
  | Mean of field
  | Stddev of field
  | Min of field
  | Max of field
  | Quantile of float * field  (** [p] in (0,1) *)

type filter = {
  kind : string option;
  strategy : string option;
  outcome : string option;
  route : string option;
  trace_id : string option;
  since : float option;  (** inclusive lower bound on record time *)
  until : float option;  (** inclusive upper bound *)
}

val no_filter : filter

(** {1 Parsing the CLI grammar} *)

val parse_key : string -> (key, string) result
(** ["kind" | "strategy" | "outcome" | "route" | "trace"[_id]]. *)

val parse_group_by : string -> (key list, string) result
(** Comma-separated keys; [""] is the empty (single-group) grouping. *)

val parse_agg : string -> (agg, string) result
(** ["count"], ["rate"], ["mean(F)"], ["stddev(F)"], ["min(F)"],
    ["max(F)"], or ["pN(F)"] with [N] a percentile such as [50], [99]
    or [99.9] — [F] a field name: ["wall_seconds"], ["time"], or a
    gauge/summary/param name. *)

val key_label : key -> string

val agg_label : agg -> string
(** Canonical column label, e.g. ["p99(wall_seconds)"]. *)

(** {1 Execution} *)

type row = { group : string list; cells : float list }
(** One output group: its key values (parallel to [group_columns]) and
    aggregation results (parallel to [columns]; [nan] when undefined —
    e.g. a quantile over no samples). *)

type t = {
  group_columns : string list;
  columns : string list;
  rows : row list;  (** sorted by group values *)
  segments : int;  (** segment files enumerated *)
  parsed : int;  (** records parsed (pre-filter) *)
  matched : int;  (** records passing the filter *)
  seeked : int;  (** records seeked over via the index *)
  malformed : int;  (** lines skipped as unparseable *)
  elapsed_s : float;
}

val run :
  ?use_index:bool -> ?filter:filter -> ?group_by:key list ->
  ?aggs:agg list -> string -> (t, string) result
(** [run path] executes one query over the ledger at [path] (all
    segments, oldest first). [use_index] (default true) enables
    block seeking; [urs query --no-index] and the cold leg of the
    bench turn it off. [aggs] defaults to [[Count]]. [Error] when no
    segment of [path] exists. *)

val run_records :
  ?filter:filter -> ?group_by:key list -> ?aggs:agg list ->
  Ledger.record list -> t
(** The same engine over an in-memory record list (tests, goldens). *)

(** {1 Rendering} *)

val render_table : t -> string
(** Fixed-width table plus a trailing scan-stats line. *)

val result_json : t -> Json.t

val render_json : t -> string

val render_data : t -> string
(** gnuplot-ready: [# ] comment headers, then one space-separated row
    per group. *)
