(** Append-only run ledger: one JSONL line per solver call, sweep point,
    simulation replication or bench section, carrying the model
    parameters, wall time, result summary and a snapshot of the relevant
    gauges.

    The ledger complements the metrics registry: gauges keep only the
    last written value (see {!Metrics}), while the ledger keeps the full
    per-solve history, so a sweep's every point can be reconstructed
    (and re-run) from the journal.

    Two sinks, both optional:
    - a file sink ({!open_file}) appending one compact JSON document per
      line — enabled by [--ledger FILE] on the CLI and per bench run;
    - an in-memory ring of the most recent records ({!set_memory}),
      served live by the [/runs] HTTP route of [urs serve].

    When neither sink is active, {!record} is a no-op, so instrumented
    call sites pay nothing. Timestamps come from {!Span.now} (pluggable
    clock — deterministic in tests). Sequence numbering, the ring and
    the file channel share one mutex, so records from concurrent pool
    domains get unique [seq] values and whole JSONL lines (never
    interleaved bytes), and the HTTP server thread can read {!recent}
    while a solve appends. *)

type record = {
  seq : int;  (** Per-process sequence number, 1-based. *)
  time : float;  (** {!Span.now} at append time (Unix seconds). *)
  kind : string;
      (** Call-site family: ["solver.evaluate"], ["spectral.solve"],
          ["sweep.point"], ["sim.replication"], ["bench.section"],
          ["doctor"], ["runtime"] (a GC/allocation probe around a code
          region — [Urs_obs.Runtime.probe]: the probed label in
          [params], word/collection deltas and heap high-water in
          [summary]). *)
  strategy : string option;  (** Solver strategy label, when relevant. *)
  params : (string * Json.t) list;  (** Model / run parameters. *)
  wall_seconds : float;
  outcome : string;  (** ["ok"] or an error classification. *)
  summary : (string * Json.t) list;  (** Result fields. *)
  gauges : (string * float) list;
      (** Snapshot of relevant registry gauges at append time. *)
  trace_id : string option;
      (** 32-hex-digit id of the trace that produced this record
          (absent on v1 journals and untraced appends). *)
  span_id : string option;
      (** 16-hex-digit id of the innermost span at append time. *)
}

val schema : string
(** The schema tag embedded in every written record (["urs-ledger/2"]).
    {!of_json} also accepts ["urs-ledger/1"] lines (they simply lack
    the trace stamps) and rejects unknown schema tags. *)

val record :
  ?strategy:string ->
  ?params:(string * Json.t) list ->
  ?outcome:string ->
  ?summary:(string * Json.t) list ->
  ?gauges:(string * float) list ->
  ?context:Context.t ->
  kind:string ->
  wall_seconds:float ->
  unit ->
  unit
(** Append a record to every active sink; no-op when inactive. Stamps
    [seq], [time] and the trace/span ids of [?context] (defaulting to
    the caller's ambient {!Context.current}, so records emitted inside
    a traced span correlate automatically — HTTP handlers, whose
    thread shares the main thread's ambient cell, pass their request
    context explicitly). I/O errors on the file sink are swallowed
    (the ledger must never fail a run). *)

val active : unit -> bool

val open_file :
  ?truncate:bool -> ?max_bytes:int -> ?keep:int -> ?flush_every:int ->
  string -> unit
(** Start journaling to a file (append mode by default; [~truncate:true]
    starts fresh). Replaces any previously open file sink. The sink is a
    {!Ledger_store}: [max_bytes] enables size-based rotation to
    [path.1..K] with [keep] (default 3) retained segments, and
    [flush_every] (default 1) batches channel flushes — see
    {!Ledger_store.open_}. Every segment grows a sparse [.idx] sidecar
    that filtered scans ({!fold_file} with [~should_skip], [urs query])
    use to seek over irrelevant blocks. Raises [Sys_error] if the path
    cannot be opened. *)

val close : unit -> unit
(** Flush and close the file sink (keeps the memory sink, if enabled). *)

val set_memory : bool -> unit
(** Enable/disable the in-memory ring (capped at an internal limit;
    disabling clears it). *)

val recent : ?limit:int -> unit -> record list
(** Most recent records from the memory ring, oldest first. *)

val since :
  ?kind:string -> ?limit:int -> seq:int -> unit -> record list * int
(** [since ~seq ()] is the tail cursor behind [/tail]: ring records
    with a sequence number strictly greater than [seq] (oldest first,
    at most [limit], filtered to [kind] when given), plus the client's
    next cursor — the global sequence counter, except when [limit]
    truncated the page, in which case it is the last returned record's
    seq so the next poll resumes where the page ended. Records older
    than the ring capacity are gone; a cursor further back than that
    silently resumes at the ring. *)

val wait_since :
  ?kind:string -> ?limit:int -> seq:int -> timeout_s:float -> unit ->
  record list * int
(** {!since}, long-polling: blocks (in 50 ms ticks) until a matching
    record arrives or [timeout_s] of wall clock elapses, whichever is
    first. [timeout_s <= 0] degenerates to {!since}. *)

val reset : unit -> unit
(** Close the file sink, clear and disable the ring, restart [seq] —
    tests. *)

val to_json : record -> Json.t

val of_json : Json.t -> (record, string) result

val read_file : string -> (record list, string) result
(** Parse a JSONL journal back into records; [Error] carries the path,
    line number and reason of the first malformed line. Prefer
    {!fold_file} for anything user-facing: a journal with a torn tail
    (a crashed writer) should cost one warning, not the whole read. *)

type fold_stats = {
  malformed : int;
      (** Lines that did not parse as records (torn tail, corruption)
          — skipped, not fatal. *)
  seeked_records : int;
      (** Records never parsed because their index block was seeked
          over ([~should_skip]). *)
}

val fold_file :
  ?should_skip:(Ledger_store.block -> bool) -> string -> init:'a ->
  f:('a -> record -> 'a) -> ('a * fold_stats, string) result
(** Stream one segment file through [f], skipping (and counting)
    malformed lines instead of aborting. With [~should_skip], the
    segment's sparse sidecar index is consulted and blocks satisfying
    the predicate are seeked over without parsing. [Error] only when
    the file cannot be opened. *)

val fold_path :
  ?should_skip:(Ledger_store.block -> bool) -> string -> init:'a ->
  f:('a -> record -> 'a) -> ('a * fold_stats, string) result
(** {!fold_file} over every segment of the ledger at [path] — rotated
    segments oldest-first ({!Ledger_store.segments}), then the active
    file — so records stream in seq order across a rotation. A segment
    deleted by a racing rotation mid-read is skipped. [Error] when no
    segment exists at all. *)
