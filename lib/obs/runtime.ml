(* Runtime probes: GC/allocation deltas around arbitrary code regions,
   plus (on runtimes with eventring support) a Runtime_events consumer
   thread that turns GC phase begin/end pairs and domain lifecycle
   events into metrics, timeline points and Perfetto trace events.

   Two independent switches:
   - [set_profiling] (shared atomic in [Span]) arms the cheap
     quick-stat deltas in spans and pool tasks;
   - [start_events]/[stop_events] run the (heavier) event consumer.
   Both are off by default and the module is inert until enabled. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

let sample () =
  (* [quick_stat] is cheap but domain-local for minor_words and does not
     walk the heap; heap_words/top_heap_words are still maintained. *)
  let q = Gc.quick_stat () in
  {
    minor_words = q.Gc.minor_words;
    promoted_words = q.Gc.promoted_words;
    major_words = q.Gc.major_words;
    minor_collections = q.Gc.minor_collections;
    major_collections = q.Gc.major_collections;
    compactions = q.Gc.compactions;
    heap_words = q.Gc.heap_words;
    top_heap_words = q.Gc.top_heap_words;
  }

type delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_collections : int;
  d_major_collections : int;
  d_compactions : int;
  heap_words_after : int;
  top_heap_words_after : int;
}

let delta ~before ~after =
  {
    d_minor_words = after.minor_words -. before.minor_words;
    d_promoted_words = after.promoted_words -. before.promoted_words;
    d_major_words = after.major_words -. before.major_words;
    d_minor_collections = after.minor_collections - before.minor_collections;
    d_major_collections = after.major_collections - before.major_collections;
    d_compactions = after.compactions - before.compactions;
    heap_words_after = after.heap_words;
    top_heap_words_after = after.top_heap_words;
  }

let measure f =
  let s0 = sample () in
  let r = f () in
  (r, delta ~before:s0 ~after:(sample ()))

let delta_json d =
  Json.Obj
    [
      ("minor_words", Json.Float d.d_minor_words);
      ("promoted_words", Json.Float d.d_promoted_words);
      ("major_words", Json.Float d.d_major_words);
      ("minor_collections", Json.Int d.d_minor_collections);
      ("major_collections", Json.Int d.d_major_collections);
      ("compactions", Json.Int d.d_compactions);
      ("heap_words", Json.Int d.heap_words_after);
      ("top_heap_words", Json.Int d.top_heap_words_after);
    ]

(* ------------------------------------------------------------------ *)
(* Profiling switch (the atomic itself lives in Span, the lowest layer
   that needs it). *)

let set_profiling = Span.set_gc_profiling

let profiling_enabled = Span.gc_profiling_enabled

(* ------------------------------------------------------------------ *)
(* Aggregate metrics + ledger record for a probed region. *)

let update_metrics ?registry d =
  let c name help =
    Metrics.counter ?registry ~help ("urs_runtime_" ^ name ^ "_total")
  in
  Metrics.inc ~by:d.d_minor_words
    (c "minor_words" "words allocated in the minor heap under probes");
  Metrics.inc ~by:d.d_promoted_words
    (c "promoted_words" "words promoted minor->major under probes");
  Metrics.inc ~by:d.d_major_words
    (c "major_words" "words allocated in the major heap under probes");
  Metrics.inc
    ~by:(float_of_int d.d_minor_collections)
    (c "minor_collections" "minor collections under probes");
  Metrics.inc
    ~by:(float_of_int d.d_major_collections)
    (c "major_collections" "major collection cycles under probes");
  Metrics.inc
    ~by:(float_of_int d.d_compactions)
    (c "compactions" "heap compactions under probes");
  Metrics.set
    (Metrics.gauge ?registry ~help:"major heap size after last probe (words)"
       "urs_runtime_heap_words")
    (float_of_int d.heap_words_after);
  Metrics.set_max
    (Metrics.gauge ?registry
       ~help:"top-most major heap size observed by probes (words)"
       "urs_runtime_top_heap_words")
    (float_of_int d.top_heap_words_after)

let ledger_record ~label ~wall_seconds ~outcome d =
  Ledger.record ~kind:"runtime"
    ~params:[ ("label", Json.String label) ]
    ~outcome
    ~summary:
      [
        ("minor_words", Json.Float d.d_minor_words);
        ("promoted_words", Json.Float d.d_promoted_words);
        ("major_words", Json.Float d.d_major_words);
        ("minor_collections", Json.Int d.d_minor_collections);
        ("major_collections", Json.Int d.d_major_collections);
        ("compactions", Json.Int d.d_compactions);
        ("heap_words", Json.Int d.heap_words_after);
        ("top_heap_words", Json.Int d.top_heap_words_after);
      ]
    ~wall_seconds ()

let probe ?registry ~label f =
  let t0 = Span.now () in
  let s0 = sample () in
  let finish outcome =
    let d = delta ~before:s0 ~after:(sample ()) in
    update_metrics ?registry d;
    ledger_record ~label ~wall_seconds:(Span.now () -. t0) ~outcome d;
    d
  in
  match f () with
  | r -> (r, finish "ok")
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (finish "error");
      Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Runtime_events consumer. *)

type slice = {
  phase : string;
  domain : int;
  start_s : float;  (* in the Span clock's timebase, see calibration *)
  duration_s : float;
}

type counter_sample = {
  counter : string;
  c_domain : int;
  t_s : float;
  value : float;
}

let max_slices = 8192

let max_counter_samples = 8192

type events_state = {
  mutable running : bool;
  mutable stop_requested : bool;
  mutable thread : Thread.t option;
  mutable cursor : Runtime_events.cursor option;
      (* created once per process and never freed: the ring file is
         unlinked right after the cursor maps it, so a second
         [create_cursor] would find nothing to open *)
  mutable slices : slice list; (* reverse order, bounded *)
  mutable slice_count : int;
  mutable dropped_slices : int;
  mutable counters : counter_sample list; (* reverse order, bounded *)
  mutable counter_count : int;
  mutable dropped_counters : int;
  mutable offset : float option;
      (* Span.now () -. event-time at first processed event: converts
         the runtime's monotonic nanosecond clock into the Span
         timebase so GC slices line up with spans in one trace. The
         calibration is late by at most one poll interval. *)
  begins : (int * string, int64) Hashtbl.t;
}

let ev =
  {
    running = false;
    stop_requested = false;
    thread = None;
    cursor = None;
    slices = [];
    slice_count = 0;
    dropped_slices = 0;
    counters = [];
    counter_count = 0;
    dropped_counters = 0;
    offset = None;
    begins = Hashtbl.create 64;
  }

let ev_lock = Mutex.create ()

let locked f =
  Mutex.lock ev_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock ev_lock) f

let ns_to_s ts = Int64.to_float (Runtime_events.Timestamp.to_int64 ts) *. 1e-9

let calibrate ts =
  match ev.offset with
  | Some o -> o
  | None ->
      let o = Span.now () -. ns_to_s ts in
      ev.offset <- Some o;
      o

(* Phases worth keeping as slices: the top-level collector phases and
   the explicit-GC entry points. The many mark/sweep sub-phases still
   count in the events counter but would drown the trace. *)
let slice_phase (p : Runtime_events.runtime_phase) =
  match p with
  | EV_MINOR | EV_MAJOR | EV_MAJOR_SLICE | EV_MAJOR_GC_STW
  | EV_EXPLICIT_GC_MINOR | EV_EXPLICIT_GC_MAJOR | EV_EXPLICIT_GC_FULL_MAJOR
  | EV_EXPLICIT_GC_COMPACT ->
      true
  | _ -> false

let counter_of_interest (c : Runtime_events.runtime_counter) =
  match c with
  | EV_C_MINOR_ALLOCATED | EV_C_MINOR_PROMOTED
  | EV_C_MAJOR_HEAP_POOL_LIVE_WORDS | EV_C_MAJOR_HEAP_POOL_WORDS ->
      true
  | _ -> false

let events_total phase =
  Metrics.counter
    ~labels:[ ("phase", phase) ]
    ~help:"GC phase completions seen by the Runtime_events consumer"
    "urs_runtime_gc_events_total"

let pause_hist phase =
  Metrics.histogram
    ~labels:[ ("phase", phase) ]
    ~help:"GC phase durations seen by the Runtime_events consumer"
    "urs_runtime_gc_pause_seconds"

let domain_events_total event =
  Metrics.counter
    ~labels:[ ("event", event) ]
    ~help:"domain lifecycle events seen by the Runtime_events consumer"
    "urs_runtime_domain_events_total"

let major_timeline dom =
  Timeline.series
    ~labels:[ ("domain", string_of_int dom) ]
    "urs_runtime_major_gc"

let on_begin ring ts phase =
  locked (fun () ->
      let name = Runtime_events.runtime_phase_name phase in
      Hashtbl.replace ev.begins (ring, name)
        (Runtime_events.Timestamp.to_int64 ts);
      if phase = EV_MAJOR then begin
        let off = calibrate ts in
        Timeline.record (major_timeline ring) ~t:(off +. ns_to_s ts) 1.0
      end)

let on_end ring ts phase =
  locked (fun () ->
      let name = Runtime_events.runtime_phase_name phase in
      let off = calibrate ts in
      let t1 = ns_to_s ts in
      (match Hashtbl.find_opt ev.begins (ring, name) with
      | None -> ()
      | Some t0_ns ->
          Hashtbl.remove ev.begins (ring, name);
          let t0 = Int64.to_float t0_ns *. 1e-9 in
          let dur = t1 -. t0 in
          if dur >= 0.0 then begin
            Metrics.inc (events_total name);
            Metrics.observe (pause_hist name) dur;
            if slice_phase phase then
              if ev.slice_count >= max_slices then
                ev.dropped_slices <- ev.dropped_slices + 1
              else begin
                ev.slices <-
                  { phase = name; domain = ring; start_s = off +. t0;
                    duration_s = dur }
                  :: ev.slices;
                ev.slice_count <- ev.slice_count + 1
              end
          end);
      if phase = EV_MAJOR then
        Timeline.record (major_timeline ring) ~t:(off +. t1) 0.0)

let on_counter ring ts counter value =
  if counter_of_interest counter then
    locked (fun () ->
        let off = calibrate ts in
        if ev.counter_count >= max_counter_samples then
          ev.dropped_counters <- ev.dropped_counters + 1
        else begin
          ev.counters <-
            {
              counter = Runtime_events.runtime_counter_name counter;
              c_domain = ring;
              t_s = off +. ns_to_s ts;
              value = float_of_int value;
            }
            :: ev.counters;
          ev.counter_count <- ev.counter_count + 1
        end)

let on_lifecycle ring ts lifecycle _data =
  ignore ring;
  locked (fun () ->
      ignore (calibrate ts);
      match (lifecycle : Runtime_events.lifecycle) with
      | EV_DOMAIN_SPAWN -> Metrics.inc (domain_events_total "spawn")
      | EV_DOMAIN_TERMINATE -> Metrics.inc (domain_events_total "terminate")
      | _ -> ())

let callbacks =
  lazy
    (Runtime_events.Callbacks.create ~runtime_begin:on_begin
       ~runtime_end:on_end ~runtime_counter:on_counter
       ~lifecycle:on_lifecycle ())

(* the cursor is process-lifetime state (see [events_state.cursor]):
   the consumer must not free it on the way out *)
let consumer cursor =
  let cbs = Lazy.force callbacks in
  let rec loop () =
    let stop = locked (fun () -> ev.stop_requested) in
    ignore (Runtime_events.read_poll cursor cbs None);
    if not stop then begin
      Thread.delay 0.01;
      loop ()
    end
  in
  try loop () with _ -> ()

let events_disabled () =
  match Sys.getenv_opt "URS_NO_RUNTIME_EVENTS" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let events_running () = locked (fun () -> ev.running)

(* Where the runtime put the <pid>.events ring-buffer file. The
   directory comes from OCAML_RUNTIME_EVENTS_DIR as it was when the
   process started (the runtime snapshots its parameters at startup, so
   setting the variable from inside the process is a no-op), defaulting
   to the working directory. *)
let ring_path () =
  let dir =
    match Sys.getenv_opt "OCAML_RUNTIME_EVENTS_DIR" with
    | Some d when d <> "" -> d
    | _ -> Sys.getcwd ()
  in
  Filename.concat dir (string_of_int (Unix.getpid ()) ^ ".events")

let preserve_ring () =
  (* same convention as the runtime's own exit-time cleanup *)
  match Sys.getenv_opt "OCAML_RUNTIME_EVENTS_PRESERVE" with
  | Some s when s <> "" -> true
  | _ -> false

let start_events () =
  if events_disabled () then false
  else if events_running () then false
  else
    try
      (match locked (fun () -> ev.cursor) with
      | Some _ ->
          (* restart: the ring and cursor still exist, and [start] on an
             already-started runtime would leave the pause flag set *)
          Runtime_events.resume ()
      | None ->
          Runtime_events.start ();
          let cursor = Runtime_events.create_cursor None in
          locked (fun () -> ev.cursor <- Some cursor);
          (* Unlink the ring file now that both the runtime and the
             cursor have it mapped: a SIGTERM'd or crashed process (a
             killed [urs serve], say) would otherwise leave
             <pid>.events littering the working directory, since the
             runtime only removes it on orderly exit. The mappings stay
             valid, and the runtime's own unlink quietly finds nothing. *)
          if not (preserve_ring ()) then (
            try Sys.remove (ring_path ()) with Sys_error _ -> ()));
      let cursor =
        match locked (fun () -> ev.cursor) with
        | Some c -> c
        | None -> assert false
      in
      locked (fun () ->
          ev.stop_requested <- false;
          ev.running <- true;
          ev.offset <- None);
      let t = Thread.create consumer cursor in
      locked (fun () -> ev.thread <- Some t);
      true
    with _ -> false

let stop_events () =
  let t =
    locked (fun () ->
        if not ev.running then None
        else begin
          ev.stop_requested <- true;
          let t = ev.thread in
          ev.thread <- None;
          t
        end)
  in
  match t with
  | None -> ()
  | Some t ->
      (try Thread.join t with _ -> ());
      (try Runtime_events.pause () with _ -> ());
      locked (fun () -> ev.running <- false)

let clear_events () =
  locked (fun () ->
      ev.slices <- [];
      ev.slice_count <- 0;
      ev.dropped_slices <- 0;
      ev.counters <- [];
      ev.counter_count <- 0;
      ev.dropped_counters <- 0;
      Hashtbl.reset ev.begins)

let gc_slices () = locked (fun () -> List.rev ev.slices)

let counter_samples () = locked (fun () -> List.rev ev.counters)

(* Perfetto merge: GC slices as complete events on the owning domain's
   track (pid 2 keeps them visually separate from spans), counter
   samples as "C" events which Perfetto renders as counter tracks. *)
let perfetto_events () =
  let slices, counters =
    locked (fun () -> (List.rev ev.slices, List.rev ev.counters))
  in
  List.map
    (fun s ->
      Json.Obj
        [
          ("name", Json.String ("gc:" ^ s.phase));
          ("cat", Json.String "gc");
          ("ph", Json.String "X");
          ("ts", Json.Float (s.start_s *. 1e6));
          ("dur", Json.Float (s.duration_s *. 1e6));
          ("pid", Json.Int 1);
          ("tid", Json.Int s.domain);
        ])
    slices
  @ List.map
      (fun c ->
        Json.Obj
          [
            ("name", Json.String ("gc:" ^ c.counter));
            ("cat", Json.String "gc");
            ("ph", Json.String "C");
            ("ts", Json.Float (c.t_s *. 1e6));
            ("pid", Json.Int 1);
            ("tid", Json.Int c.c_domain);
            ("args", Json.Obj [ ("value", Json.Float c.value) ]);
          ])
      counters

let status_json () =
  let q = sample () in
  locked (fun () ->
      Json.Obj
        [
          ("profiling", Json.Bool (profiling_enabled ()));
          ("events_running", Json.Bool ev.running);
          ("gc_slices", Json.Int ev.slice_count);
          ("dropped_slices", Json.Int ev.dropped_slices);
          ("counter_samples", Json.Int ev.counter_count);
          ("dropped_counters", Json.Int ev.dropped_counters);
          ("ocaml_version", Json.String Sys.ocaml_version);
          ("minor_words", Json.Float q.minor_words);
          ("promoted_words", Json.Float q.promoted_words);
          ("major_words", Json.Float q.major_words);
          ("minor_collections", Json.Int q.minor_collections);
          ("major_collections", Json.Int q.major_collections);
          ("compactions", Json.Int q.compactions);
          ("heap_words", Json.Int q.heap_words);
          ("top_heap_words", Json.Int q.top_heap_words);
        ])
