(* File sink mechanics for the run ledger: size-based rotation with
   bounded retention, batched flushing, and a sparse sidecar index so
   filtered scans can seek over whole blocks instead of parsing every
   line.

   This layer works on raw JSONL lines — it never parses a record — so
   [Ledger] (which owns record serialization and the process-wide lock)
   can depend on it without a cycle. Nothing here synchronizes: every
   writer-side call is made under the ledger mutex.

   Layout on disk, logrotate-style:

     ledger.jsonl          the active segment (appended to)
     ledger.jsonl.1        the most recently rotated segment
     ledger.jsonl.K        the oldest retained segment
     <segment>.idx         sidecar index of that segment

   Rotation renames the active file to [.1] (shifting [.i] to [.i+1]
   and deleting [.keep] first), then reopens a fresh active segment —
   all plain [Sys.rename]/[Sys.remove], atomic per file on POSIX. A
   reader that races a rotation sees each line exactly once per segment
   file it opens; seq numbers make cross-segment order explicit.

   The index holds one JSON line per block of [block_records] records:
   the block's byte extent, time range and per-kind record counts. A
   scan filtering on kind or time seeks over any block that cannot
   match. Index lines are advisory — a missing, stale or torn index
   only costs a full parse of the uncovered bytes, never correctness
   (blocks are validated against the data file before use). *)

let block_records = 256

let index_path path = path ^ ".idx"

let index_schema = "urs-ledger-idx/1"

(* ---- writer ---- *)

type t = {
  path : string;
  max_bytes : int option;
  keep : int;
  flush_every : int;
  mutable oc : out_channel;
  mutable idx_oc : out_channel;
  mutable bytes : int;  (* size of the active segment *)
  mutable unflushed : int;
  (* state of the index block being accumulated *)
  mutable block_start : int;
  mutable block_count : int;
  mutable block_t0 : float;
  mutable block_t1 : float;
  block_kinds : (string, int) Hashtbl.t;
}

let open_channel ~truncate path =
  let flags =
    Open_wronly :: Open_creat :: Open_binary
    :: (if truncate then [ Open_trunc ] else [ Open_append ])
  in
  open_out_gen flags 0o644 path

let reset_block t =
  t.block_start <- t.bytes;
  t.block_count <- 0;
  t.block_t0 <- nan;
  t.block_t1 <- nan;
  Hashtbl.reset t.block_kinds

let open_ ?(truncate = false) ?max_bytes ?(keep = 3) ?(flush_every = 1) path =
  let oc = open_channel ~truncate path in
  let idx_oc = open_channel ~truncate (index_path path) in
  let t =
    {
      path;
      max_bytes;
      keep = max 1 keep;
      flush_every = max 1 flush_every;
      oc;
      idx_oc;
      bytes = out_channel_length oc;
      unflushed = 0;
      block_start = 0;
      block_count = 0;
      block_t0 = nan;
      block_t1 = nan;
      block_kinds = Hashtbl.create 8;
    }
  in
  (* appends resume after the last indexed block; the bytes between its
     end and the current tail just get parsed on every scan *)
  reset_block t;
  t

let emit_block t =
  if t.block_count > 0 then begin
    let kinds =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.block_kinds [])
    in
    Json.to_channel t.idx_oc
      (Json.Obj
         [
           ("schema", Json.String index_schema);
           ("start", Json.Int t.block_start);
           ("end", Json.Int t.bytes);
           ("t0", Json.Float t.block_t0);
           ("t1", Json.Float t.block_t1);
           ("n", Json.Int t.block_count);
           ("kinds", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) kinds));
         ]);
    reset_block t
  end

let flush t =
  Stdlib.flush t.oc;
  Stdlib.flush t.idx_oc;
  t.unflushed <- 0

let shift_rotated path keep =
  let seg i = path ^ "." ^ string_of_int i in
  let remove p = try Sys.remove p with Sys_error _ -> () in
  let rename src dst = if Sys.file_exists src then Sys.rename src dst in
  remove (seg keep);
  remove (index_path (seg keep));
  for i = keep - 1 downto 1 do
    rename (seg i) (seg (i + 1));
    rename (index_path (seg i)) (index_path (seg (i + 1)))
  done;
  rename path (seg 1);
  rename (index_path path) (index_path (seg 1))

let rotate t =
  (* finalize the segment: index its partial tail block so every byte
     of a rotated file is block-covered, then flush before the rename
     so no buffered line can land in the wrong segment *)
  emit_block t;
  flush t;
  close_out_noerr t.oc;
  close_out_noerr t.idx_oc;
  shift_rotated t.path t.keep;
  t.oc <- open_channel ~truncate:true t.path;
  t.idx_oc <- open_channel ~truncate:true (index_path t.path);
  t.bytes <- 0;
  reset_block t

let write t ~kind ~time line =
  let len = String.length line + 1 in
  (match t.max_bytes with
  | Some m when t.bytes > 0 && t.bytes + len > m -> rotate t
  | _ -> ());
  output_string t.oc line;
  output_char t.oc '\n';
  t.bytes <- t.bytes + len;
  t.block_count <- t.block_count + 1;
  if Float.is_nan t.block_t0 then t.block_t0 <- time;
  t.block_t1 <- time;
  Hashtbl.replace t.block_kinds kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.block_kinds kind));
  if t.block_count >= block_records then emit_block t;
  t.unflushed <- t.unflushed + 1;
  if t.unflushed >= t.flush_every then flush t

let close t =
  emit_block t;
  (try flush t with Sys_error _ -> ());
  close_out_noerr t.oc;
  close_out_noerr t.idx_oc

(* ---- segment enumeration ---- *)

let segments path =
  let rotated = ref [] in
  let misses = ref 0 in
  let i = ref 1 in
  (* contiguous numbering in steady state; tolerate one gap left by a
     crash between the shift renames *)
  while !misses <= 1 && !i <= 64 do
    let p = path ^ "." ^ string_of_int !i in
    if Sys.file_exists p then rotated := p :: !rotated else incr misses;
    incr i
  done;
  !rotated @ (if Sys.file_exists path then [ path ] else [])

(* ---- index reader ---- *)

type block = {
  start_off : int;
  end_off : int;
  t0 : float;
  t1 : float;
  count : int;
  kinds : (string * int) list;
}

let block_of_json j =
  let int k =
    match Option.bind (Json.member k j) Json.to_float_opt with
    | Some f -> Some (int_of_float f)
    | None -> None
  in
  let num k = Option.bind (Json.member k j) Json.to_float_opt in
  match (Json.member "schema" j, int "start", int "end", int "n") with
  | Some (Json.String s), Some start_off, Some end_off, Some count
    when s = index_schema && 0 <= start_off && start_off < end_off
         && count > 0 ->
      let kinds =
        match Json.member "kinds" j with
        | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) ->
                match Json.to_float_opt v with
                | Some f when f > 0.0 -> Some (k, int_of_float f)
                | _ -> None)
              kvs
        | _ -> []
      in
      Some
        {
          start_off;
          end_off;
          t0 = Option.value ~default:nan (num "t0");
          t1 = Option.value ~default:nan (num "t1");
          count;
          kinds;
        }
  | _ -> None

let read_index ?max_off path =
  match open_in_bin (index_path path) with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let fits b =
            match max_off with None -> true | Some m -> b.end_off <= m
          in
          let rec go acc prev_end =
            match input_line ic with
            | exception End_of_file -> List.rev acc
            | line -> (
                match Result.to_option (Json.of_string line) with
                | None -> go acc prev_end (* torn or malformed: advisory *)
                | Some j -> (
                    match block_of_json j with
                    | Some b when b.start_off >= prev_end && fits b ->
                        go (b :: acc) b.end_off
                    | _ -> go acc prev_end))
          in
          go [] 0)

(* ---- scanning ---- *)

let fold_lines ?should_skip path ~init ~f =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let size = in_channel_length ic in
          let blocks =
            match should_skip with
            | None -> []
            | Some _ -> read_index ~max_off:size path
          in
          let skip =
            match should_skip with Some p -> p | None -> fun _ -> false
          in
          let acc = ref init in
          let skipped = ref 0 in
          let rec go blocks =
            let pos = pos_in ic in
            match blocks with
            | b :: rest when b.end_off <= pos -> go rest
            | b :: rest when b.start_off = pos && skip b ->
                seek_in ic b.end_off;
                skipped := !skipped + b.count;
                go rest
            | blocks -> (
                match input_line ic with
                | exception End_of_file -> ()
                | line ->
                    acc := f !acc line;
                    go blocks)
          in
          go blocks;
          Ok (!acc, !skipped))
