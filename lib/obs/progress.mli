(** Live progress for long batch operations.

    A {e task} is a named completion counter with an optional total —
    one per sweep, replication batch, or doctor grid. Workers
    {!tick} it from any domain (one registry, one lock; ticks happen per
    point, not per event, so contention is negligible). The HTTP
    [/progress] endpoint and [urs watch] render {!snapshot} with
    completion, rate and ETA; the clock is {!Span.now}, so tests can
    drive deterministic elapsed times. *)

val start : ?total:int -> string -> unit
(** Begin (or restart, resetting the counter) the named task. *)

val tick : ?by:int -> string -> unit
(** Advance the named task by [by] (default 1); no-op when the task was
    never started. *)

val set_total : string -> int -> unit
(** (Re)declare the total once it becomes known. *)

val finish : string -> unit
(** Freeze the task's elapsed clock; it remains listed as finished. *)

val reset : unit -> unit
(** Forget every task (tests). *)

type status = {
  p_name : string;
  p_total : int option;
  p_completed : int;
  p_elapsed_s : float;
  p_rate : float;  (** completed per second; [0.] before any tick *)
  p_eta_s : float option;
      (** [remaining /. rate] when the total is known and work is
          ongoing *)
  p_finished : bool;
}

val snapshot : unit -> status list
(** All tasks, in start order. *)

val to_json : unit -> Json.t
(** [{"tasks": [{"task", "total"?, "completed", "elapsed_s",
    "rate_per_s", "eta_s"?, "finished"}, ...]}] — served by
    [/progress]. *)
