(* Append-only JSONL run journal. Instrumented call sites (Solver,
   Spectral, Sweep, Replicate, bench sections) call [record]; when the
   ledger is inactive that is a cheap no-op, so the hooks can stay in
   the hot paths unconditionally. *)

type record = {
  seq : int;
  time : float;
  kind : string;
  strategy : string option;
  params : (string * Json.t) list;
  wall_seconds : float;
  outcome : string;
  summary : (string * Json.t) list;
  gauges : (string * float) list;
  trace_id : string option;
  span_id : string option;
}

(* v2 added trace_id/span_id stamps; v1 lines (no stamps) still parse *)
let schema = "urs-ledger/2"

let accepted_schemas = [ "urs-ledger/1"; "urs-ledger/2" ]

(* ---- sinks ---- *)

let store : Ledger_store.t option ref = ref None

let memory_enabled = ref false

let max_recent = 512

(* One lock for every piece of ledger state: the sequence counter, the
   in-memory ring (read by the HTTP server thread, written by solver
   threads and pool domains) and the file channel (so concurrent
   appends from pool domains cannot interleave JSONL lines). *)
let lock = Mutex.create ()

let recent_q : record Queue.t = Queue.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let seq_counter = ref 0

let active () = !store <> None || !memory_enabled

let close_unlocked () =
  (match !store with
  | Some st -> ( try Ledger_store.close st with Sys_error _ -> ())
  | None -> ());
  store := None

let set_memory b =
  with_lock (fun () ->
      memory_enabled := b;
      if not b then Queue.clear recent_q)

let close () = with_lock close_unlocked

let open_file ?(truncate = false) ?max_bytes ?keep ?flush_every path =
  let st = Ledger_store.open_ ~truncate ?max_bytes ?keep ?flush_every path in
  with_lock (fun () ->
      close_unlocked ();
      store := Some st)

let recent ?(limit = max_recent) () =
  (* snapshot to an immutable list inside the critical section; the
     lazy Queue.to_seq traversal must not outlive the lock *)
  let all = with_lock (fun () -> List.of_seq (Queue.to_seq recent_q)) in
  let n = List.length all in
  if n <= limit then all else List.filteri (fun i _ -> i >= n - limit) all

let reset () =
  with_lock (fun () ->
      close_unlocked ();
      memory_enabled := false;
      Queue.clear recent_q;
      seq_counter := 0)

(* ---- serialization ---- *)

let kv_obj kvs = Json.Obj kvs

let to_json r =
  let opt_str key = function
    | None -> []
    | Some s -> [ (key, Json.String s) ]
  in
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("seq", Json.Int r.seq);
       ("time", Json.Float r.time);
       ("kind", Json.String r.kind);
     ]
    @ opt_str "strategy" r.strategy
    @ opt_str "trace_id" r.trace_id
    @ opt_str "span_id" r.span_id
    @ [
        ("params", kv_obj r.params);
        ("wall_seconds", Json.Float r.wall_seconds);
        ("outcome", Json.String r.outcome);
        ("summary", kv_obj r.summary);
        ( "gauges",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.gauges) );
      ])

let of_json j =
  let str key =
    match Json.member key j with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "ledger record: missing string field %S" key)
  in
  let num key =
    match Option.bind (Json.member key j) Json.to_float_opt with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "ledger record: missing number field %S" key)
  in
  let obj key =
    match Json.member key j with
    | Some (Json.Obj kvs) -> Ok kvs
    | None -> Ok []
    | Some _ -> Error (Printf.sprintf "ledger record: field %S not an object" key)
  in
  let ( let* ) = Result.bind in
  let* () =
    (* lenient on absent schema (hand-written fixtures), strict on an
       unknown one: a future-versioned journal should fail loudly *)
    match Json.member "schema" j with
    | None -> Ok ()
    | Some (Json.String s) when List.mem s accepted_schemas -> Ok ()
    | Some (Json.String s) ->
        Error (Printf.sprintf "ledger record: unsupported schema %S" s)
    | Some _ -> Error "ledger record: field \"schema\" not a string"
  in
  let* kind = str "kind" in
  let* time = num "time" in
  let* wall_seconds = num "wall_seconds" in
  let* outcome = str "outcome" in
  let* params = obj "params" in
  let* summary = obj "summary" in
  let* gauge_kvs = obj "gauges" in
  let seq =
    match Option.bind (Json.member "seq" j) Json.to_float_opt with
    | Some f -> int_of_float f
    | None -> 0
  in
  let strategy =
    Option.bind (Json.member "strategy" j) Json.to_string_opt
  in
  let trace_id = Option.bind (Json.member "trace_id" j) Json.to_string_opt in
  let span_id = Option.bind (Json.member "span_id" j) Json.to_string_opt in
  let gauges =
    List.filter_map
      (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float_opt v))
      gauge_kvs
  in
  Ok
    {
      seq;
      time;
      kind;
      strategy;
      params;
      wall_seconds;
      outcome;
      summary;
      gauges;
      trace_id;
      span_id;
    }

(* ---- appending ---- *)

(* stamp seq, push to the ring and write the line inside one critical
   section: pool domains append concurrently, and each JSONL line must
   stay contiguous with a unique sequence number *)
let record ?strategy ?(params = []) ?(outcome = "ok") ?(summary = [])
    ?(gauges = []) ?context ~kind ~wall_seconds () =
  let time = Span.now () in
  (* the ambient read happens on the caller's domain, outside the lock;
     HTTP handlers pass [?context] explicitly instead (their thread
     shares domain 0's ambient cell with the main thread) *)
  let ctx = match context with Some _ as c -> c | None -> Context.current () in
  let trace_id = Option.map Context.trace_id_hex ctx in
  let span_id = Option.map Context.span_id_hex ctx in
  with_lock (fun () ->
      if !store <> None || !memory_enabled then begin
        incr seq_counter;
        let r =
          {
            seq = !seq_counter;
            time;
            kind;
            strategy;
            params;
            wall_seconds;
            outcome;
            summary;
            gauges;
            trace_id;
            span_id;
          }
        in
        if !memory_enabled then begin
          Queue.push r recent_q;
          if Queue.length recent_q > max_recent then
            ignore (Queue.pop recent_q)
        end;
        match !store with
        | None -> ()
        | Some st -> (
            try Ledger_store.write st ~kind ~time (Json.to_string (to_json r))
            with Sys_error _ -> ())
      end)

(* ---- tail cursor over the memory ring ---- *)

let since ?kind ?(limit = max_recent) ~seq () =
  with_lock (fun () ->
      let latest = !seq_counter in
      let matched =
        Queue.fold
          (fun acc r ->
            if
              r.seq > seq
              && (match kind with None -> true | Some k -> r.kind = k)
            then r :: acc
            else acc)
          [] recent_q
      in
      let matched = List.rev matched in
      let rec take n = function
        | x :: tl when n > 0 -> x :: take (n - 1) tl
        | _ -> []
      in
      let page = take limit matched in
      (* a truncated page must return the last seq actually delivered,
         not the global counter, or the client's next poll would skip
         everything between the page and the counter *)
      let cursor =
        if List.length matched > List.length page then
          match List.rev page with r :: _ -> r.seq | [] -> latest
        else latest
      in
      (page, cursor))

let wait_since ?kind ?limit ~seq ~timeout_s () =
  (* poll the ring rather than block on a condition variable: the
     stdlib Condition has no timed wait, and 50 ms of tail latency is
     invisible to an operator. The deadline uses the wall clock, not
     Span.now — a frozen test clock must not turn this into a spin. *)
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let rs, latest = since ?kind ?limit ~seq () in
    if rs <> [] || timeout_s <= 0.0 || Unix.gettimeofday () >= deadline then
      (rs, latest)
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

(* ---- reading ---- *)

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc lineno =
            match input_line ic with
            | exception End_of_file -> Ok (List.rev acc)
            | "" -> go acc (lineno + 1)
            | line -> (
                match Json.of_string line with
                | Error msg ->
                    Error (Printf.sprintf "%s:%d: %s" path lineno msg)
                | Ok j -> (
                    match of_json j with
                    | Error msg ->
                        Error (Printf.sprintf "%s:%d: %s" path lineno msg)
                    | Ok r -> go (r :: acc) (lineno + 1)))
          in
          go [] 1)

(* ---- streaming reads ---- *)

type fold_stats = { malformed : int; seeked_records : int }

let parse_line line = Result.bind (Json.of_string line) of_json

let fold_file ?should_skip path ~init ~f =
  match
    Ledger_store.fold_lines ?should_skip path ~init:(init, 0)
      ~f:(fun (acc, bad) line ->
        if line = "" then (acc, bad)
        else
          match parse_line line with
          | Ok r -> (f acc r, bad)
          | Error _ ->
              (* malformed mid-file line or the torn tail of a crashed
                 writer: count it and keep going *)
              (acc, bad + 1))
  with
  | Error _ as e -> e
  | Ok ((acc, malformed), seeked_records) ->
      Ok (acc, { malformed; seeked_records })

let fold_path ?should_skip path ~init ~f =
  match Ledger_store.segments path with
  | [] -> Error (path ^ ": no such file")
  | segs ->
      let acc, stats =
        List.fold_left
          (fun (acc, stats) seg ->
            match fold_file ?should_skip seg ~init:acc ~f with
            | Error _ ->
                (* a segment deleted by a racing rotation between the
                   enumeration and the open: nothing left to read *)
                (acc, stats)
            | Ok (acc, s) ->
                ( acc,
                  {
                    malformed = stats.malformed + s.malformed;
                    seeked_records = stats.seeked_records + s.seeked_records;
                  } ))
          (init, { malformed = 0; seeked_records = 0 })
          segs
      in
      Ok (acc, stats)
