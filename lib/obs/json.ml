type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

(* shortest decimal form that round-trips *)
let float_str f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON cannot represent NaN or +/-Inf *)
      if Float.is_finite f then Buffer.add_string buf (float_str f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v =
  output_string oc (to_string v);
  output_char oc '\n'
