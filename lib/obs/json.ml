type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

(* shortest decimal form that round-trips *)
let float_str f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON cannot represent NaN or +/-Inf *)
      if Float.is_finite f then Buffer.add_string buf (float_str f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_channel oc v =
  output_string oc (to_string v);
  output_char oc '\n'

(* ---- parsing ----

   A recursive-descent parser for the subset this module emits (which is
   all of JSON except exotic number forms). Numbers without '.', 'e' or
   'E' that fit in an int parse as Int, everything else as Float. *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let parse_literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.s
    && String.sub cur.s cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string_body cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "dangling escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if cur.pos + 4 > String.length cur.s then
                  fail cur "truncated \\u escape";
                let hex = String.sub cur.s cur.pos 4 in
                cur.pos <- cur.pos + 4;
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail cur "bad \\u escape"
                in
                (* the serializer only emits \u for control characters;
                   decode the Latin-1 range, refuse the rest rather than
                   guess at UTF-16 surrogates *)
                if code < 0x100 then Buffer.add_char buf (Char.chr code)
                else fail cur "unsupported \\u escape above U+00FF"
            | _ -> fail cur "unknown escape");
            go ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let text = String.sub cur.s start (cur.pos - start) in
  let has_float_syntax =
    String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
  in
  if has_float_syntax then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail cur (Printf.sprintf "bad number %S" text))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> parse_literal cur "null" Null
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some '"' -> String (parse_string_body cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [ parse_value cur ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          items := parse_value cur :: !items;
          skip_ws cur
        done;
        expect cur ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let member () =
          skip_ws cur;
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let items = ref [ member () ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          items := member () :: !items;
          skip_ws cur
        done;
        expect cur '}';
        Obj (List.rev !items)
      end
  | Some ('0' .. '9' | '-') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let cur = { s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* accessors used by the ledger reader *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
