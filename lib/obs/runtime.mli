(** Runtime (GC/allocation) probes and Runtime_events capture.

    Two independent, off-by-default mechanisms:

    - {b Quick-stat probes}: {!sample}/{!delta}/{!measure} wrap a code
      region with [Gc.quick_stat] and report words allocated (minor,
      promoted, major), collection counts and heap sizes. {!probe}
      additionally folds the delta into [urs_runtime_*] registry
      counters/gauges and appends a ["runtime"] record to the ledger.
      {!set_profiling} arms the same sampling inside [Span.with_] (per
      span) and [Urs_exec.Pool] (per task).

    - {b Runtime_events consumer}: on runtimes with eventring support
      (OCaml >= 5.1), {!start_events} starts the runtime's event ring
      and a consumer thread that turns GC phase begin/end pairs into
      bounded {!gc_slices} (timed on the [Span] clock so they merge
      into the Perfetto trace, see {!perfetto_events}), a
      [urs_runtime_gc_pause_seconds{phase}] histogram,
      [urs_runtime_gc_events_total{phase}] /
      [urs_runtime_domain_events_total{event}] counters, and a
      [urs_runtime_major_gc{domain}] timeline. If the runtime lacks
      support (or [URS_NO_RUNTIME_EVENTS] is set to a non-empty,
      non-zero value), {!start_events} returns [false] and everything
      degrades to a no-op. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}
(** A point-in-time [Gc.quick_stat] snapshot (word counts are
    domain-local for the minor heap, process-wide for the major). *)

val sample : unit -> sample

type delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_collections : int;
  d_major_collections : int;
  d_compactions : int;
  heap_words_after : int;  (** absolute, not a difference *)
  top_heap_words_after : int;  (** absolute, not a difference *)
}

val delta : before:sample -> after:sample -> delta

val measure : (unit -> 'a) -> 'a * delta
(** [measure f] runs [f] and returns its result with the GC delta
    across the call. No metrics or ledger side effects. *)

val delta_json : delta -> Json.t

val probe : ?registry:Metrics.t -> label:string -> (unit -> 'a) -> 'a * delta
(** Like {!measure}, but also adds the delta to the [urs_runtime_*]
    counters/gauges and appends a ledger record of kind ["runtime"]
    with the [label] in [params] and the delta fields in [summary].
    On exception the metrics/ledger record still land (outcome
    ["error"]) and the exception is re-raised. *)

val set_profiling : bool -> unit
(** Arm/disarm per-span and per-pool-task GC deltas (delegates to
    [Span.set_gc_profiling]; one process-wide atomic). *)

val profiling_enabled : unit -> bool

(** {1 Runtime_events consumer} *)

val start_events : unit -> bool
(** Start the runtime event ring and the consumer thread. Returns
    [true] only when this call actually started the consumer — [false]
    if it was already running, if [URS_NO_RUNTIME_EVENTS] disables it,
    or if the runtime refused — so a caller can pair it with
    {!stop_events} without tearing down somebody else's consumer.

    The runtime materialises the ring as a [<pid>.events] file (in
    [OCAML_RUNTIME_EVENTS_DIR] as of process startup, defaulting to the
    CWD) and only removes it on orderly exit; the first successful call
    unlinks it as soon as the consumer's cursor has it mapped, so a
    killed process leaves no litter behind. Set
    [OCAML_RUNTIME_EVENTS_PRESERVE] (non-empty) to keep the file for
    post-mortem tooling, matching the runtime's own convention. *)

val stop_events : unit -> unit
(** Stop the consumer thread (drains the ring first) and pause the
    runtime's event collection. Idempotent. *)

val events_running : unit -> bool

val clear_events : unit -> unit
(** Drop collected slices and counter samples (the consumer keeps
    running). *)

type slice = {
  phase : string;  (** [Runtime_events.runtime_phase_name] *)
  domain : int;
  start_s : float;
      (** On the [Span] clock — comparable to span start times. *)
  duration_s : float;
}

val gc_slices : unit -> slice list
(** Completed top-level GC phases (minor, major, major slice, STW,
    explicit GC entry points), chronological, capped at an internal
    bound. *)

type counter_sample = {
  counter : string;
  c_domain : int;
  t_s : float;
  value : float;
}

val counter_samples : unit -> counter_sample list
(** Allocation/heap counter samples (minor allocated/promoted, major
    heap pool words), chronological, capped at an internal bound. *)

val perfetto_events : unit -> Json.t list
(** The collected slices and counter samples as Chrome trace events —
    ["ph":"X"] GC slices per domain tid and ["ph":"C"] counter tracks —
    ready to pass to [Span.trace_perfetto ~extra]. *)

val status_json : unit -> Json.t
(** Snapshot for the HTTP [/runtime] endpoint: switch states, capture
    counts, and a current {!sample}. *)
