(* Live progress for long batch operations (sweeps, replication runs,
   doctor grids). A task is a named counter with an optional total;
   workers tick it from any domain, and the HTTP /progress endpoint (or
   `urs watch`) renders completion, rate and ETA. State is a small
   registry under one lock — ticks are rare (per point, not per event),
   so contention is irrelevant. *)

type task = {
  name : string;
  mutable total : int option;
  mutable completed : int;
  mutable started_at : float;
  mutable finished_at : float option;
}

let lock = Mutex.create ()
let tasks : (string, task) Hashtbl.t = Hashtbl.create 8
let order : string list ref = ref [] (* registration order, newest last *)

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let start ?total name =
  locked (fun () ->
      let t =
        {
          name;
          total;
          completed = 0;
          started_at = Span.now ();
          finished_at = None;
        }
      in
      (match Hashtbl.find_opt tasks name with
      | Some _ -> () (* restart in place, keep position *)
      | None -> order := !order @ [ name ]);
      Hashtbl.replace tasks name t)

let tick ?(by = 1) name =
  locked (fun () ->
      match Hashtbl.find_opt tasks name with
      | Some t -> t.completed <- t.completed + by
      | None -> ())

let set_total name total =
  locked (fun () ->
      match Hashtbl.find_opt tasks name with
      | Some t -> t.total <- Some total
      | None -> ())

let finish name =
  locked (fun () ->
      match Hashtbl.find_opt tasks name with
      | Some t -> t.finished_at <- Some (Span.now ())
      | None -> ())

let reset () =
  locked (fun () ->
      Hashtbl.reset tasks;
      order := [])

type status = {
  p_name : string;
  p_total : int option;
  p_completed : int;
  p_elapsed_s : float;
  p_rate : float;  (* completed per second; 0 when nothing done yet *)
  p_eta_s : float option;  (* remaining / rate, when both are known *)
  p_finished : bool;
}

let status_of t ~now =
  let stop = match t.finished_at with Some f -> f | None -> now in
  let elapsed = Float.max 0.0 (stop -. t.started_at) in
  let rate =
    if elapsed > 0.0 && t.completed > 0 then float_of_int t.completed /. elapsed
    else 0.0
  in
  let eta =
    match t.total with
    | Some total when rate > 0.0 && t.finished_at = None ->
        Some (float_of_int (max 0 (total - t.completed)) /. rate)
    | _ -> None
  in
  {
    p_name = t.name;
    p_total = t.total;
    p_completed = t.completed;
    p_elapsed_s = elapsed;
    p_rate = rate;
    p_eta_s = eta;
    p_finished = t.finished_at <> None;
  }

let snapshot () =
  let now = Span.now () in
  locked (fun () ->
      List.filter_map
        (fun name ->
          Option.map (fun t -> status_of t ~now) (Hashtbl.find_opt tasks name))
        !order)

let status_json s =
  Json.Obj
    ([ ("task", Json.String s.p_name) ]
    @ (match s.p_total with Some t -> [ ("total", Json.Int t) ] | None -> [])
    @ [
        ("completed", Json.Int s.p_completed);
        ("elapsed_s", Json.Float s.p_elapsed_s);
        ("rate_per_s", Json.Float s.p_rate);
      ]
    @ (match s.p_eta_s with
      | Some e -> [ ("eta_s", Json.Float e) ]
      | None -> [])
    @ [ ("finished", Json.Bool s.p_finished) ])

let to_json () = Json.Obj [ ("tasks", Json.List (List.map status_json (snapshot ()))) ]
