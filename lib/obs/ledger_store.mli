(** File-sink mechanics for the run ledger: size-based rotation with
    bounded retention, batched flushing, and a sparse sidecar index for
    seek-over-blocks filtered scans.

    Operates on raw JSONL lines (never parses a record), so {!Ledger}
    can layer record serialization and the process-wide lock on top
    without a dependency cycle. {b Not synchronized} — every writer
    call must happen under the ledger mutex.

    On-disk layout (logrotate-style): the active segment at [path],
    rotated segments at [path.1] (newest) through [path.K] (oldest),
    and one [.idx] sidecar per segment with one JSON line per block of
    {!block_records} records carrying the block's byte extent, time
    range and per-kind record counts. The index is advisory: a missing,
    stale or torn sidecar only costs a full parse of the uncovered
    bytes (blocks are validated against the data file before use). *)

val block_records : int
(** Records per index block (256). *)

val index_path : string -> string
(** [path ^ ".idx"] — the sidecar of a segment. *)

val index_schema : string
(** ["urs-ledger-idx/1"]. *)

(** {1 Writing} *)

type t
(** An open sink: the active segment, its sidecar, and the rotation /
    flush-batching state. *)

val open_ :
  ?truncate:bool -> ?max_bytes:int -> ?keep:int -> ?flush_every:int ->
  string -> t
(** Open [path] for appending ([~truncate:true] starts both the segment
    and its sidecar fresh). [max_bytes] enables rotation: a write that
    would push the active segment past it rotates first (a single
    oversized record still gets written, to an otherwise-empty
    segment). [keep] (default 3, clamped to [>= 1]) rotated segments
    are retained; the oldest is deleted at rotation. [flush_every]
    (default 1, clamped to [>= 1]) batches channel flushes: every
    record is flushed when 1, otherwise every that-many records — and
    always on {!close} and at rotation. Raises [Sys_error] when the
    path cannot be opened. *)

val write : t -> kind:string -> time:float -> string -> unit
(** Append one line (no trailing newline in the argument), rotating
    first when it would overflow [max_bytes] and indexing every
    {!block_records} records. Raises [Sys_error] on I/O failure. *)

val flush : t -> unit

val close : t -> unit
(** Index the partial tail block, flush, and close both channels
    (never raises). *)

(** {1 Reading} *)

val segments : string -> string list
(** Existing segment files of the ledger at [path], oldest first:
    [path.K; ...; path.1; path] — each present only if it exists on
    disk. Seq numbers increase along (and across) the returned
    files. *)

type block = {
  start_off : int;  (** Byte offset of the block's first record. *)
  end_off : int;  (** Byte offset one past the block's last record. *)
  t0 : float;  (** Time of the first record ([nan] when unknown). *)
  t1 : float;  (** Time of the last record. *)
  count : int;  (** Records in the block. *)
  kinds : (string * int) list;  (** Per-kind record counts, sorted. *)
}

val read_index : ?max_off:int -> string -> block list
(** Parse the sidecar of the segment at [path]: blocks in file order,
    dropping malformed or torn lines, blocks overlapping a previous one
    and (with [max_off], normally the data-file size) blocks extending
    past it. An unreadable sidecar is simply [[]]. *)

val fold_lines :
  ?should_skip:(block -> bool) -> string -> init:'a ->
  f:('a -> string -> 'a) -> ('a * int, string) result
(** [fold_lines path ~init ~f] streams the lines of one segment through
    [f]. With [should_skip], the sidecar index is consulted and every
    block satisfying the predicate is seeked over instead of read;
    the second component of the result is the total record count of
    the skipped blocks. [Error] only when the file cannot be opened. *)
