(* The ledger query engine behind `urs query`: filter -> group ->
   aggregate over every segment of a (possibly rotated) JSONL ledger,
   using the sparse sidecar index to seek over blocks the filter rules
   out. Grouping keys are the low-cardinality record dimensions; the
   aggregations are the repo's own estimators (Welford for mean/stddev,
   Empirical.quantile for percentiles) so `urs query` answers match the
   test goldens bit-for-bit. *)

module Welford = Urs_stats.Welford
module Empirical = Urs_stats.Empirical

(* ---- vocabulary ---- *)

type key = Kind | Strategy | Outcome | Route | Trace

type field = Wall_seconds | Time | Named of string

type agg =
  | Count
  | Rate
  | Mean of field
  | Stddev of field
  | Min of field
  | Max of field
  | Quantile of float * field  (* p in (0,1) *)

type filter = {
  kind : string option;
  strategy : string option;
  outcome : string option;
  route : string option;
  trace_id : string option;
  since : float option;
  until : float option;
}

let no_filter =
  {
    kind = None;
    strategy = None;
    outcome = None;
    route = None;
    trace_id = None;
    since = None;
    until = None;
  }

let key_label = function
  | Kind -> "kind"
  | Strategy -> "strategy"
  | Outcome -> "outcome"
  | Route -> "route"
  | Trace -> "trace_id"

let parse_key s =
  match String.lowercase_ascii (String.trim s) with
  | "kind" -> Ok Kind
  | "strategy" -> Ok Strategy
  | "outcome" -> Ok Outcome
  | "route" -> Ok Route
  | "trace" | "trace_id" | "trace-id" -> Ok Trace
  | other ->
      Error
        (Printf.sprintf
           "unknown group-by key %S (kind|strategy|outcome|route|trace)" other)

let parse_group_by s =
  match String.trim s with
  | "" -> Ok []
  | s ->
      List.fold_left
        (fun acc part ->
          match (acc, parse_key part) with
          | Error _, _ -> acc
          | Ok ks, Ok k -> Ok (ks @ [ k ])
          | Ok _, (Error _ as e) -> e)
        (Ok [])
        (String.split_on_char ',' s)

let field_label = function
  | Wall_seconds -> "wall_seconds"
  | Time -> "time"
  | Named n -> n

let parse_field s =
  match String.trim s with
  | "" -> Error "empty field name"
  | "wall_seconds" -> Ok Wall_seconds
  | "time" -> Ok Time
  | n -> Ok (Named n)

(* "count" | "rate" | "mean(F)" | "stddev(F)" | "min(F)" | "max(F)"
   | "p<N>(F)" with N a percentile like 50, 99 or 99.9 *)
let parse_agg s =
  let s = String.trim s in
  let call name =
    match (String.index_opt s '(', s.[String.length s - 1]) with
    | Some i, ')' when String.sub s 0 i = name ->
        Some (String.sub s (i + 1) (String.length s - i - 2))
    | _ -> None
  in
  let with_field name mk =
    match call name with
    | None -> None
    | Some f -> Some (Result.map mk (parse_field f))
  in
  match s with
  | "" -> Error "empty aggregation"
  | "count" -> Ok Count
  | "rate" -> Ok Rate
  | _ -> (
      let known =
        List.find_map Fun.id
          [
            with_field "mean" (fun f -> Mean f);
            with_field "stddev" (fun f -> Stddev f);
            with_field "min" (fun f -> Min f);
            with_field "max" (fun f -> Max f);
          ]
      in
      match known with
      | Some r -> r
      | None -> (
          match (String.index_opt s '(', s) with
          | Some i, _
            when i > 1 && s.[0] = 'p' && s.[String.length s - 1] = ')' -> (
              let pct = String.sub s 1 (i - 1) in
              let fld = String.sub s (i + 1) (String.length s - i - 2) in
              match float_of_string_opt pct with
              | Some p when p > 0.0 && p < 100.0 ->
                  Result.map (fun f -> Quantile (p /. 100.0, f)) (parse_field fld)
              | _ ->
                  Error
                    (Printf.sprintf "bad percentile %S (want p50..p99.9)" pct))
          | _ ->
              Error
                (Printf.sprintf
                   "unknown aggregation %S \
                    (count|rate|mean(F)|stddev(F)|min(F)|max(F)|pN(F))"
                   s)))

let agg_label = function
  | Count -> "count"
  | Rate -> "rate"
  | Mean f -> Printf.sprintf "mean(%s)" (field_label f)
  | Stddev f -> Printf.sprintf "stddev(%s)" (field_label f)
  | Min f -> Printf.sprintf "min(%s)" (field_label f)
  | Max f -> Printf.sprintf "max(%s)" (field_label f)
  | Quantile (p, f) ->
      (* 0.999 prints back as p99.9, 0.5 as p50 *)
      let pct = p *. 100.0 in
      if Float.is_integer pct then
        Printf.sprintf "p%d(%s)" (int_of_float pct) (field_label f)
      else Printf.sprintf "p%g(%s)" pct (field_label f)

(* ---- record accessors ---- *)

let assoc_float n kvs = Option.bind (List.assoc_opt n kvs) Json.to_float_opt

let field_value (r : Ledger.record) = function
  | Wall_seconds -> Some r.Ledger.wall_seconds
  | Time -> Some r.Ledger.time
  | Named n -> (
      match List.assoc_opt n r.Ledger.gauges with
      | Some f -> Some f
      | None -> (
          match assoc_float n r.Ledger.summary with
          | Some f -> Some f
          | None -> assoc_float n r.Ledger.params))

let key_value (r : Ledger.record) = function
  | Kind -> r.Ledger.kind
  | Strategy -> Option.value ~default:"-" r.Ledger.strategy
  | Outcome -> r.Ledger.outcome
  | Route -> (
      match List.assoc_opt "route" r.Ledger.params with
      | Some (Json.String s) -> s
      | _ -> "-")
  | Trace -> Option.value ~default:"-" r.Ledger.trace_id

let matches flt (r : Ledger.record) =
  let eq v want = match want with None -> true | Some w -> v = w in
  eq r.Ledger.kind flt.kind
  && eq (key_value r Strategy) flt.strategy
  && eq r.Ledger.outcome flt.outcome
  && eq (key_value r Route) flt.route
  && eq (key_value r Trace) flt.trace_id
  && (match flt.since with None -> true | Some t -> r.Ledger.time >= t)
  && match flt.until with None -> true | Some t -> r.Ledger.time <= t

(* A block can be seeked over when the filter can prove no record in it
   matches: the wanted kind never occurs, or the block's time range
   lies entirely outside the window. *)
let block_skippable flt (b : Ledger_store.block) =
  (match flt.kind with
  | Some k -> not (List.mem_assoc k b.kinds)
  | None -> false)
  || (match flt.since with
     | Some t -> Float.is_finite b.t1 && b.t1 < t
     | None -> false)
  ||
  match flt.until with
  | Some t -> Float.is_finite b.t0 && b.t0 > t
  | None -> false

(* ---- execution ---- *)

type acc =
  | A_unit
  | A_welford of Welford.t
  | A_extreme of float ref  (* running min or max *)
  | A_values of float list ref  (* retained for the quantile sort *)

type group_state = {
  mutable count : int;
  mutable t_min : float;
  mutable t_max : float;
  accs : acc array;
}

let make_state aggs =
  {
    count = 0;
    t_min = infinity;
    t_max = neg_infinity;
    accs =
      Array.map
        (function
          | Count | Rate -> A_unit
          | Mean _ | Stddev _ -> A_welford (Welford.create ())
          | Min _ -> A_extreme (ref infinity)
          | Max _ -> A_extreme (ref neg_infinity)
          | Quantile _ -> A_values (ref []))
        aggs;
  }

let feed aggs st (r : Ledger.record) =
  st.count <- st.count + 1;
  st.t_min <- Float.min st.t_min r.Ledger.time;
  st.t_max <- Float.max st.t_max r.Ledger.time;
  Array.iteri
    (fun i agg ->
      let value f = field_value r f in
      match (agg, st.accs.(i)) with
      | (Count | Rate), _ -> ()
      | (Mean f | Stddev f), A_welford w ->
          Option.iter (Welford.add w) (value f)
      | Min f, A_extreme m -> Option.iter (fun v -> m := Float.min !m v) (value f)
      | Max f, A_extreme m -> Option.iter (fun v -> m := Float.max !m v) (value f)
      | Quantile (_, f), A_values vs ->
          Option.iter (fun v -> vs := v :: !vs) (value f)
      | _ -> assert false)
    aggs

let finish aggs st =
  Array.to_list
    (Array.mapi
       (fun i agg ->
         match (agg, st.accs.(i)) with
         | Count, _ -> float_of_int st.count
         | Rate, _ ->
             let span = st.t_max -. st.t_min in
             if st.count >= 2 && span > 0.0 then
               float_of_int (st.count - 1) /. span
             else nan
         | Mean _, A_welford w -> if Welford.count w > 0 then Welford.mean w else nan
         | Stddev _, A_welford w ->
             if Welford.count w > 0 then Welford.std_dev w else nan
         | (Min _ | Max _), A_extreme m ->
             if Float.is_finite !m then !m else nan
         | Quantile (p, _), A_values vs ->
             if !vs = [] then nan
             else Empirical.quantile (Array.of_list !vs) p
         | _ -> assert false)
       aggs)

type row = { group : string list; cells : float list }

type t = {
  group_columns : string list;
  columns : string list;
  rows : row list;  (* sorted by group values *)
  segments : int;
  parsed : int;  (* records parsed (before the filter) *)
  matched : int;
  seeked : int;  (* records proven irrelevant and seeked over *)
  malformed : int;
  elapsed_s : float;
}

let run ?(use_index = true) ?(filter = no_filter) ?(group_by = [])
    ?(aggs = [ Count ]) path =
  let aggs = if aggs = [] then [ Count ] else aggs in
  let aggs_a = Array.of_list aggs in
  let t0 = Unix.gettimeofday () in
  let segments = List.length (Ledger_store.segments path) in
  let groups : (string list, group_state) Hashtbl.t = Hashtbl.create 64 in
  let parsed = ref 0 in
  let matched = ref 0 in
  let should_skip = if use_index then Some (block_skippable filter) else None in
  match
    Ledger.fold_path ?should_skip path ~init:() ~f:(fun () r ->
        incr parsed;
        if matches filter r then begin
          incr matched;
          let g = List.map (key_value r) group_by in
          let st =
            match Hashtbl.find_opt groups g with
            | Some st -> st
            | None ->
                let st = make_state aggs_a in
                Hashtbl.add groups g st;
                st
          in
          feed aggs_a st r
        end)
  with
  | Error msg -> Error msg
  | Ok ((), stats) ->
      let rows =
        List.sort
          (fun a b -> compare a.group b.group)
          (Hashtbl.fold
             (fun g st acc -> { group = g; cells = finish aggs_a st } :: acc)
             groups [])
      in
      Ok
        {
          group_columns = List.map key_label group_by;
          columns = List.map agg_label aggs;
          rows;
          segments;
          parsed = !parsed;
          matched = !matched;
          seeked = stats.Ledger.seeked_records;
          malformed = stats.Ledger.malformed;
          elapsed_s = Unix.gettimeofday () -. t0;
        }

let run_records ?(filter = no_filter) ?(group_by = []) ?(aggs = [ Count ])
    records =
  let aggs = if aggs = [] then [ Count ] else aggs in
  let aggs_a = Array.of_list aggs in
  let t0 = Unix.gettimeofday () in
  let groups : (string list, group_state) Hashtbl.t = Hashtbl.create 64 in
  let parsed = ref 0 in
  let matched = ref 0 in
  List.iter
    (fun r ->
      incr parsed;
      if matches filter r then begin
        incr matched;
        let g = List.map (key_value r) group_by in
        let st =
          match Hashtbl.find_opt groups g with
          | Some st -> st
          | None ->
              let st = make_state aggs_a in
              Hashtbl.add groups g st;
              st
        in
        feed aggs_a st r
      end)
    records;
  let rows =
    List.sort
      (fun a b -> compare a.group b.group)
      (Hashtbl.fold
         (fun g st acc -> { group = g; cells = finish aggs_a st } :: acc)
         groups [])
  in
  {
    group_columns = List.map key_label group_by;
    columns = List.map agg_label aggs;
    rows;
    segments = 0;
    parsed = !parsed;
    matched = !matched;
    seeked = 0;
    malformed = 0;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

(* ---- rendering ---- *)

let cell_str column v =
  if Float.is_nan v then "-"
  else if column = "count" then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let scan_line r =
  Printf.sprintf
    "scanned %d record(s) (%d seeked, %d malformed) in %d segment(s), %.3fs"
    (r.parsed + r.seeked) r.seeked r.malformed r.segments r.elapsed_s

let render_table r =
  let header = r.group_columns @ r.columns in
  let body =
    List.map
      (fun row -> row.group @ List.map2 cell_str r.columns row.cells)
      r.rows
  in
  let rows = header :: body in
  let ncols = List.length header in
  let widths = Array.make (max 1 ncols) 0 in
  List.iter
    (List.iteri (fun i c ->
         if i < ncols then widths.(i) <- max widths.(i) (String.length c)))
    rows;
  let buf = Buffer.create 1024 in
  List.iteri
    (fun ri cells ->
      List.iteri
        (fun i c ->
          Buffer.add_string buf c;
          if i < ncols - 1 then
            Buffer.add_string buf
              (String.make (widths.(i) - String.length c + 2) ' '))
        cells;
      Buffer.add_char buf '\n';
      if ri = 0 then begin
        Array.iteri
          (fun i w ->
            Buffer.add_string buf (String.make w '-');
            if i < ncols - 1 then Buffer.add_string buf "  ")
          widths;
        Buffer.add_char buf '\n'
      end)
    rows;
  Buffer.add_string buf (scan_line r);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let result_json r =
  Json.Obj
    [
      ("schema", Json.String "urs-query/1");
      ( "groups",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 (List.map2
                    (fun k v -> (k, Json.String v))
                    r.group_columns row.group
                 @ List.map2
                     (fun c v ->
                       ( c,
                         if Float.is_nan v then Json.Null
                         else if c = "count" then Json.Int (int_of_float v)
                         else Json.Float v ))
                     r.columns row.cells))
             r.rows) );
      ("segments", Json.Int r.segments);
      ("parsed", Json.Int r.parsed);
      ("matched", Json.Int r.matched);
      ("seeked", Json.Int r.seeked);
      ("malformed", Json.Int r.malformed);
      ("elapsed_s", Json.Float r.elapsed_s);
    ]

let render_json r = Json.to_string (result_json r)

(* gnuplot-ready: comment header naming the columns, one
   space-separated row per group (group values first). See the README
   "Querying the ledger" for a plot recipe. *)
let render_data r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("# " ^ scan_line r ^ "\n");
  Buffer.add_string buf
    ("# " ^ String.concat " " (r.group_columns @ r.columns) ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat " "
           (row.group
           @ List.map2
               (fun c v ->
                 if Float.is_nan v then "nan" else cell_str c v)
               r.columns row.cells));
      Buffer.add_char buf '\n')
    r.rows;
  Buffer.contents buf
