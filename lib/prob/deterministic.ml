type t = { value : float }

let create value =
  if value < 0.0 || not (Float.is_finite value) then
    invalid_arg "Deterministic.create: value must be nonnegative and finite";
  { value }

let value d = d.value

let mean d = d.value

let variance _ = 0.0

let scv _ = 0.0

let moment d k =
  if k < 1 then invalid_arg "Deterministic.moment: k must be >= 1";
  d.value ** float_of_int k

let cdf d x = if x >= d.value then 1.0 else 0.0

let quantile d p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Deterministic.quantile: p in (0,1)";
  d.value

let sample d _ = d.value

let pp ppf d = Format.fprintf ppf "Det(%g)" d.value
