(** Unified view of the nonnegative distributions used for operative and
    inoperative periods and for service/interarrival times. The
    simulator accepts any of these; the analytical solver accepts the
    phase-type subset (exponential and hyperexponential — see
    {!as_hyperexponential}). *)

type t =
  | Exponential of Exponential.t
  | Hyperexponential of Hyperexponential.t
  | Erlang of Erlang.t
  | Deterministic of Deterministic.t
  | Uniform of Uniform_d.t
  | Weibull of Weibull.t
  | Lognormal of Lognormal.t
  | Phase_type of Phase_type.t

val exponential : rate:float -> t
val hyperexponential : weights:float array -> rates:float array -> t
val h2 : w1:float -> r1:float -> r2:float -> t
(** Two-phase hyperexponential with weights [(w1, 1-w1)]. *)

val erlang : k:int -> rate:float -> t
val deterministic : float -> t
val uniform : lo:float -> hi:float -> t
val weibull : shape:float -> scale:float -> t
val lognormal : mu:float -> sigma:float -> t

val phase_type : alpha:float array -> t_matrix:Urs_linalg.Matrix.t -> t
(** General phase-type distribution (see {!Phase_type}). *)

val mean : t -> float
val variance : t -> float

val scv : t -> float
(** Squared coefficient of variation. *)

val moment : t -> int -> float
(** k-th raw moment, [k >= 1]. *)

val cdf : t -> float -> float

val pdf : t -> float -> float
(** Density; for {!Deterministic} this returns [0.] everywhere (the
    distribution has no density). *)

val quantile : t -> float -> float
val sample : t -> Rng.t -> float

val as_hyperexponential : t -> Hyperexponential.t option
(** The hyperexponential view used by the analytical solver:
    exponentials are 1-phase hyperexponentials; a {!Phase_type} with a
    diagonal sub-generator and no defect is a hyperexponential too;
    other families return [None]. *)

val as_phase_type : t -> Phase_type.t option
(** The phase-type view used by the generalized analytical solver:
    exponential, hyperexponential, Erlang and {!Phase_type} values
    convert; deterministic, uniform, Weibull and lognormal do not (use
    the simulator for those). *)

val pp : Format.formatter -> t -> unit
