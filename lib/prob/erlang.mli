(** The Erlang-k distribution (sum of [k] i.i.d. exponentials). Its
    squared coefficient of variation is [1/k <= 1]; used as a
    low-variability contrast case in the experiments. *)

type t

val create : k:int -> rate:float -> t
(** [k >= 1] stages, each with the given positive rate. *)

val stages : t -> int
val rate : t -> float
val mean : t -> float
val variance : t -> float
val scv : t -> float

val moment : t -> int -> float
(** k-th raw moment: [(k+j-1)!/(k-1)! / rate^j] for [j >= 1]. *)

val pdf : t -> float -> float

val cdf : t -> float -> float
(** Via the regularized incomplete gamma function. *)

val quantile : t -> float -> float
val sample : t -> Rng.t -> float
val pp : Format.formatter -> t -> unit
