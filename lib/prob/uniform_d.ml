type t = { lo : float; hi : float }

let create ~lo ~hi =
  if lo < 0.0 || hi <= lo || not (Float.is_finite hi) then
    invalid_arg "Uniform_d.create: requires 0 <= lo < hi";
  { lo; hi }

let lo d = d.lo

let hi d = d.hi

let mean d = 0.5 *. (d.lo +. d.hi)

let variance d =
  let w = d.hi -. d.lo in
  w *. w /. 12.0

let scv d =
  let m = mean d in
  variance d /. (m *. m)

let moment d k =
  if k < 1 then invalid_arg "Uniform_d.moment: k must be >= 1";
  let k1 = float_of_int (k + 1) in
  ((d.hi ** k1) -. (d.lo ** k1)) /. (k1 *. (d.hi -. d.lo))

let pdf d x = if x < d.lo || x > d.hi then 0.0 else 1.0 /. (d.hi -. d.lo)

let cdf d x =
  if x <= d.lo then 0.0
  else if x >= d.hi then 1.0
  else (x -. d.lo) /. (d.hi -. d.lo)

let quantile d p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Uniform_d.quantile: p in (0,1)";
  d.lo +. (p *. (d.hi -. d.lo))

let sample d g = Rng.uniform g d.lo d.hi

let pp ppf d = Format.fprintf ppf "U(%g,%g)" d.lo d.hi
