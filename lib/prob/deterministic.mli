(** The degenerate (constant) distribution: all mass at one point. Its
    squared coefficient of variation is 0 — the leftmost point of
    Figure 6, which the paper obtains by simulation because the
    analytical model requires phase-type periods. *)

type t

val create : float -> t
(** [create v]; requires [v >= 0]. *)

val value : t -> float
val mean : t -> float
val variance : t -> float
val scv : t -> float

val moment : t -> int -> float
(** [vᵏ]. *)

val cdf : t -> float -> float
(** Step function at the value. *)

val quantile : t -> float -> float
val sample : t -> Rng.t -> float
val pp : Format.formatter -> t -> unit
