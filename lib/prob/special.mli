(** Special functions needed by the distributions and statistical tests.
    All implemented locally (no external numerics dependency). *)

val log_gamma : float -> float
(** [log Γ(x)] for [x > 0], Lanczos approximation (~1e-13 relative). *)

val gamma_p : float -> float -> float
(** Regularized lower incomplete gamma [P(a, x) = γ(a,x)/Γ(a)] for
    [a > 0], [x >= 0]; series for [x < a+1], continued fraction
    otherwise. *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function. *)

val normal_cdf : float -> float
(** Standard normal distribution function Φ. *)

val normal_quantile : float -> float
(** Φ⁻¹ on (0, 1); Acklam's rational approximation refined by one
    Halley step (~1e-15). *)

val beta_inc : a:float -> b:float -> float -> float
(** Regularized incomplete beta function [I_x(a, b)] for positive [a],
    [b] and [x] in [[0, 1]], by Lentz's continued fraction. *)

val kolmogorov_cdf : float -> float
(** CDF of the Kolmogorov distribution
    [K(x) = 1 − 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²x²)] for [x > 0]. *)
