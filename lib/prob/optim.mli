(** Derivative-free minimization: the Nelder–Mead simplex method.

    Used by the distribution-fitting routines to refine the paper's
    brute-force search over hyperexponential rates (eq. (8)). *)

type result = {
  x : float array;  (** Best point found. *)
  fx : float;  (** Objective at [x]. *)
  iterations : int;  (** Simplex iterations performed. *)
  converged : bool;  (** Whether the spread tolerance was reached. *)
}

val nelder_mead :
  ?max_iter:int ->
  ?tol:float ->
  ?initial_step:float ->
  (float array -> float) ->
  float array ->
  result
(** [nelder_mead f x0] minimizes [f] starting from [x0]. The objective
    may return [infinity] to encode constraints. Defaults:
    [max_iter = 2000], [tol = 1e-12] (simplex function-value spread),
    [initial_step = 0.1] (relative, per coordinate). *)
