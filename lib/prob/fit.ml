type error = [ `Scv_too_low | `Invalid_moments | `No_convergence ]

let pp_error ppf = function
  | `Scv_too_low ->
      Format.fprintf ppf
        "squared coefficient of variation below 1: no hyperexponential fit"
  | `Invalid_moments ->
      Format.fprintf ppf "moments not realizable by the requested family"
  | `No_convergence -> Format.fprintf ppf "iterative fit failed to converge"

let exponential_of_mean m =
  if m <= 0.0 then invalid_arg "Fit.exponential_of_mean: mean must be positive";
  Exponential.create (1.0 /. m)

(* Order phases by descending rate (short-mean phase first), matching the
   paper's presentation of its fitted distributions. *)
let h2_sorted ~w1 ~t1 ~w2 ~t2 =
  let phases = [ (w1, 1.0 /. t1); (w2, 1.0 /. t2) ] in
  let phases = List.sort (fun (_, r1) (_, r2) -> compare r2 r1) phases in
  Hyperexponential.of_pairs phases

let valid_weight a = a >= -1e-9 && a <= 1.0 +. 1e-9

let clamp01 a = Float.max 0.0 (Float.min 1.0 a)

let h2_of_three_moments ~m1 ~m2 ~m3 =
  if m1 <= 0.0 || m2 <= 0.0 || m3 <= 0.0 then Error `Invalid_moments
  else begin
    let u1 = m1 and u2 = m2 /. 2.0 and u3 = m3 /. 6.0 in
    let denom = u2 -. (u1 *. u1) in
    if denom <= 0.0 then Error `Scv_too_low
    else begin
      (* power sums of the two phase means t₁,t₂ obey
         u_{k+1} = p·u_k − q·u_{k−1} with p = t₁+t₂, q = t₁t₂ *)
      let p = (u3 -. (u1 *. u2)) /. denom in
      let q = ((u1 *. u3) -. (u2 *. u2)) /. denom in
      let disc = (p *. p) -. (4.0 *. q) in
      if disc < 0.0 then Error `Invalid_moments
      else begin
        let t1 = 0.5 *. (p +. sqrt disc) in
        let t2 = 0.5 *. (p -. sqrt disc) in
        if t2 <= 0.0 || t1 = t2 then Error `Invalid_moments
        else begin
          let a1 = (u1 -. t2) /. (t1 -. t2) in
          if not (valid_weight a1) then Error `Invalid_moments
          else
            let a1 = clamp01 a1 in
            Ok (h2_sorted ~w1:a1 ~t1 ~w2:(1.0 -. a1) ~t2)
        end
      end
    end
  end

let h2_of_mean_scv ~mean ~scv =
  if mean <= 0.0 then Error `Invalid_moments
  else if scv < 1.0 -. 1e-12 then Error `Scv_too_low
  else begin
    let scv = Float.max scv 1.0 in
    let a1 = 0.5 *. (1.0 +. sqrt ((scv -. 1.0) /. (scv +. 1.0))) in
    let a2 = 1.0 -. a1 in
    let r1 = 2.0 *. a1 /. mean in
    let r2 = 2.0 *. a2 /. mean in
    if r2 <= 0.0 then
      (* scv so large that the second phase degenerates; fall back to a
         tiny-weight long phase *)
      Error `Invalid_moments
    else
      Ok (Hyperexponential.create ~weights:[| a1; a2 |] ~rates:[| r1; r2 |])
  end

let h2_of_mean_scv_pinned_rate ~mean ~scv ~pinned_rate =
  if mean <= 0.0 || pinned_rate <= 0.0 then Error `Invalid_moments
  else if scv < 1.0 -. 1e-12 then Error `Scv_too_low
  else begin
    let m = mean in
    let s = 1.0 /. pinned_rate in
    (* mean of the pinned phase *)
    let u2 = m *. m *. (scv +. 1.0) /. 2.0 in
    (* solve (m−s)t² + (s²−u2)t + (u2·s − m·s²) = 0 for the varied
       phase mean t; derived from α·t + (1−α)s = m and
       α·t² + (1−α)s² = u2 with α eliminated *)
    let a = m -. s in
    let b = (s *. s) -. u2 in
    let c = (u2 *. s) -. (m *. s *. s) in
    let candidates =
      if abs_float a < 1e-14 *. m then
        (* linear case: the pinned phase mean equals the overall mean *)
        if b <> 0.0 then [ -.c /. b ] else []
      else begin
        let disc = (b *. b) -. (4.0 *. a *. c) in
        if disc < 0.0 then []
        else
          let sq = sqrt disc in
          [ (-.b +. sq) /. (2.0 *. a); (-.b -. sq) /. (2.0 *. a) ]
      end
    in
    let check t =
      if t <= 0.0 || abs_float (t -. s) < 1e-12 *. (t +. s) then None
      else begin
        let alpha = (m -. s) /. (t -. s) in
        if valid_weight alpha then Some (t, clamp01 alpha) else None
      end
    in
    let valid = List.filter_map check candidates in
    (* prefer the root giving the longer varied phase: that is the branch
       on which increasing scv makes the varied periods "larger and less
       likely" (Figure 6) *)
    match List.sort (fun (t1, _) (t2, _) -> compare t2 t1) valid with
    | [] -> Error `Invalid_moments
    | (t, alpha) :: _ ->
        Ok
          (Hyperexponential.create
             ~weights:[| alpha; 1.0 -. alpha |]
             ~rates:[| 1.0 /. t; pinned_rate |])
  end

let h2_gauss_seidel ?(max_iter = 10_000) ?(tol = 1e-12) ~m1 ~m2 ~m3 () =
  if m1 <= 0.0 || m2 <= 0.0 || m3 <= 0.0 then Error `Invalid_moments
  else begin
    let u1 = m1 and u2 = m2 /. 2.0 and u3 = m3 /. 6.0 in
    if u2 <= u1 *. u1 then Error `Scv_too_low
    else begin
      let eps = 1e-12 in
      let alpha = ref 0.5 and t1 = ref (0.5 *. u1) and t2 = ref (2.0 *. u1) in
      let iters = ref 0 in
      let delta = ref infinity in
      (* update ordering matters for convergence: solving the u₂ equation
         for α, the u₁ equation for t₁ and the u₃ equation for t₂ is
         (empirically) globally convergent for H2-realizable moments,
         whereas other orderings diverge *)
      while !delta > tol && !iters < max_iter do
        incr iters;
        let a0 = !alpha and t10 = !t1 and t20 = !t2 in
        (* eq for u2 solved for alpha *)
        let num = (u2 -. (!t2 *. !t2)) /. ((!t1 *. !t1) -. (!t2 *. !t2)) in
        if num > 0.0 && num < 1.0 then alpha := num;
        (* eq for u1 solved for t1 *)
        if !alpha > eps then
          t1 := Float.max eps ((u1 -. ((1.0 -. !alpha) *. !t2)) /. !alpha);
        (* eq for u3 solved for t2 *)
        let num = (u3 -. (!alpha *. !t1 *. !t1 *. !t1)) /. (1.0 -. !alpha) in
        if num > 0.0 then t2 := Float.cbrt num;
        delta :=
          abs_float (!alpha -. a0)
          +. (abs_float (!t1 -. t10) /. u1)
          +. (abs_float (!t2 -. t20) /. u1)
      done;
      (* verify the moment equations actually hold *)
      let r1 = (!alpha *. !t1) +. ((1.0 -. !alpha) *. !t2) in
      let r2 = (!alpha *. !t1 *. !t1) +. ((1.0 -. !alpha) *. !t2 *. !t2) in
      let r3 =
        (!alpha *. !t1 *. !t1 *. !t1)
        +. ((1.0 -. !alpha) *. !t2 *. !t2 *. !t2)
      in
      let rel a b = abs_float (a -. b) /. Float.max 1e-300 (abs_float b) in
      if rel r1 u1 < 1e-6 && rel r2 u2 < 1e-6 && rel r3 u3 < 1e-6 then
        Ok (h2_sorted ~w1:!alpha ~t1:!t1 ~w2:(1.0 -. !alpha) ~t2:!t2, !iters)
      else Error `No_convergence
    end
  end

(* Weights from rates: solve the n x n system
     Σⱼ αⱼ tⱼᵏ = uₖ , k = 0..n−1  (u₀ = 1)
   i.e. a Vandermonde system in the phase means tⱼ. *)
let weights_for_ts ts us =
  let n = Array.length ts in
  let v = Urs_linalg.Matrix.init n n (fun k j -> ts.(j) ** float_of_int k) in
  let rhs = Array.init n (fun k -> if k = 0 then 1.0 else us.(k - 1)) in
  match Urs_linalg.Lu.solve_system v rhs with
  | Ok w -> Some w
  | Error `Singular -> None

let hn_of_moments ~n ~moments =
  if n < 1 then invalid_arg "Fit.hn_of_moments: n must be >= 1";
  if Array.length moments < (2 * n) - 1 then
    invalid_arg "Fit.hn_of_moments: need at least 2n-1 moments";
  if Array.exists (fun m -> m <= 0.0) moments then Error `Invalid_moments
  else begin
    let us = Array.init ((2 * n) - 1) (fun k -> Moments.reduced (k + 1) moments.(k)) in
    if n = 1 then
      Ok
        ( Hyperexponential.create ~weights:[| 1.0 |] ~rates:[| 1.0 /. us.(0) |],
          0.0 )
    else begin
      let u1 = us.(0) in
      (* objective over log phase means *)
      let objective theta =
        let ts = Array.map exp theta in
        match weights_for_ts ts us with
        | None -> 1e9
        | Some w ->
            let violation =
              Array.fold_left
                (fun acc a ->
                  acc
                  +. Float.max 0.0 (-.a)
                  +. Float.max 0.0 (a -. 1.0))
                0.0 w
            in
            if violation > 1e-9 then 1e6 *. (1.0 +. violation)
            else begin
              (* relative mismatch of the unused reduced moments
                 u_n .. u_{2n-1} (us is 0-based: us.(i) = u_{i+1}) *)
              let acc = ref 0.0 in
              for k = n - 1 to (2 * n) - 2 do
                let fitted = ref 0.0 in
                for j = 0 to n - 1 do
                  fitted := !fitted +. (w.(j) *. (ts.(j) ** float_of_int (k + 1)))
                done;
                acc := !acc +. abs_float ((!fitted /. us.(k)) -. 1.0)
              done;
              !acc
            end
      in
      (* deterministic multi-start: geometric spreads of phase means
         around the empirical mean *)
      let starts =
        List.concat_map
          (fun ratio ->
            [ Array.init n (fun j ->
                  log u1
                  +. (log ratio *. (float_of_int j -. (float_of_int (n - 1) /. 2.0)))) ])
          [ 2.0; 5.0; 15.0; 50.0 ]
      in
      let best =
        List.fold_left
          (fun acc start ->
            let r = Optim.nelder_mead ~max_iter:4000 objective start in
            match acc with
            | None -> Some r
            | Some b -> if r.Optim.fx < b.Optim.fx then Some r else Some b)
          None starts
      in
      match best with
      | None -> Error `No_convergence
      | Some r ->
          let ts = Array.map exp r.Optim.x in
          (match weights_for_ts ts us with
          | None -> Error `No_convergence
          | Some w ->
              if Array.exists (fun a -> not (valid_weight a)) w then
                Error `Invalid_moments
              else begin
                let w = Array.map clamp01 w in
                let pairs =
                  Array.to_list (Array.mapi (fun j a -> (a, 1.0 /. ts.(j))) w)
                  |> List.filter (fun (a, _) -> a > 1e-12)
                  |> List.sort (fun (_, r1) (_, r2) -> compare r2 r1)
                in
                let total = List.fold_left (fun s (a, _) -> s +. a) 0.0 pairs in
                let pairs = List.map (fun (a, r) -> (a /. total, r)) pairs in
                Ok (Hyperexponential.of_pairs pairs, r.Optim.fx)
              end)
    end
  end
