(* Compiled samplers: a [Distribution.t] pre-digested into flat floats
   and arrays so the simulation hot loop can draw without touching the
   polymorphic dispatch in [Distribution.sample] or the boxed [Rng]. All
   per-family parameters (cumulative weights, phase jump tables) are
   computed once in [compile]; [sample] itself allocates nothing on the
   exponential / deterministic / uniform / Weibull / Erlang paths. *)

type t =
  | Exp of float (* rate *)
  | Det of float
  | Unif of float * float (* lo, hi *)
  | Weib of float * float (* inv_shape, scale *)
  | Logn of float * float (* mu, sigma *)
  | Erl of int * float (* stages, rate *)
  | Hyper of { cum : float array; total : float; rates : float array }
  | Ph of {
      k : int;
      alpha_cum : float array;
      total_rates : float array; (* -T_ii per phase *)
      jump_cum : float array; (* k*k row-major cumulative off-diagonal rates *)
    }

let compile (d : Distribution.t) : t =
  match d with
  | Exponential e -> Exp (Exponential.rate e)
  | Deterministic dd -> Det (Deterministic.value dd)
  | Uniform u -> Unif (Uniform_d.lo u, Uniform_d.hi u)
  | Weibull w -> Weib (1.0 /. Weibull.shape w, Weibull.scale w)
  | Lognormal l -> Logn (Lognormal.mu l, Lognormal.sigma l)
  | Erlang e -> Erl (Erlang.stages e, Erlang.rate e)
  | Hyperexponential h ->
      let weights = Hyperexponential.weights h in
      let n = Array.length weights in
      let cum = Array.make n 0.0 in
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. weights.(i);
        cum.(i) <- !acc
      done;
      Hyper { cum; total = !acc; rates = Array.copy (Hyperexponential.rates h) }
  | Phase_type p ->
      let k = Phase_type.phases p in
      let alpha = Phase_type.alpha p in
      let tm = Phase_type.t_matrix p in
      let alpha_cum = Array.make k 0.0 in
      let acc = ref 0.0 in
      for i = 0 to k - 1 do
        acc := !acc +. alpha.(i);
        alpha_cum.(i) <- !acc
      done;
      let total_rates =
        Array.init k (fun i -> -.Urs_linalg.Matrix.get tm i i)
      in
      (* jump_cum.(i*k + j): cumulative off-diagonal rate mass of row i up
         to column j; the diagonal contributes nothing, so a linear scan
         for [u < cum] can never select j = i. *)
      let jump_cum = Array.make (k * k) 0.0 in
      for i = 0 to k - 1 do
        let acc = ref 0.0 in
        for j = 0 to k - 1 do
          if j <> i then acc := !acc +. Urs_linalg.Matrix.get tm i j;
          jump_cum.((i * k) + j) <- !acc
        done
      done;
      Ph { k; alpha_cum; total_rates; jump_cum }

let sample t g =
  match t with
  | Exp rate -> Pcg.exponential g rate
  | Det v -> v
  | Unif (lo, hi) -> Pcg.uniform g lo hi
  | Weib (inv_shape, scale) ->
      let u = Pcg.float g in
      scale *. (-.log (1.0 -. u) ** inv_shape)
  | Logn (mu, sigma) -> exp (mu +. (sigma *. Pcg.normal g))
  | Erl (k, rate) ->
      (* product of uniforms avoids k calls to log *)
      let prod = ref 1.0 in
      for _ = 1 to k do
        prod := !prod *. Pcg.float_pos g
      done;
      -.log !prod /. rate
  | Hyper h ->
      let u = Pcg.float g *. h.total in
      let n = Array.length h.cum in
      let i = ref 0 in
      while !i < n - 1 && u >= h.cum.(!i) do
        incr i
      done;
      Pcg.exponential g h.rates.(!i)
  | Ph p ->
      (* pick the initial phase (defect mass absorbs immediately) *)
      let u = Pcg.float g in
      let phase = ref (-1) in
      let i = ref 0 in
      while !phase < 0 && !i < p.k do
        if u < p.alpha_cum.(!i) then phase := !i;
        incr i
      done;
      if !phase < 0 then 0.0
      else begin
        let time = ref 0.0 in
        let current = ref !phase in
        let absorbed = ref false in
        while not !absorbed do
          let i = !current in
          let total_rate = p.total_rates.(i) in
          time := !time +. Pcg.exponential g total_rate;
          let u = Pcg.float g *. total_rate in
          let next = ref (-1) in
          let j = ref 0 in
          while !next < 0 && !j < p.k do
            if u < p.jump_cum.((i * p.k) + !j) then next := !j;
            incr j
          done;
          if !next < 0 then absorbed := true else current := !next
        done;
        !time
      end
