module M = Urs_linalg.Matrix
module Lu = Urs_linalg.Lu

type t = {
  alpha : float array;
  t_matrix : M.t;
  exit_rates : float array; (* t = -T·1, absorption rate per phase *)
  neg_t_inv_ones : float array; (* (−T)⁻¹ 1, mean sojourn from each phase *)
}

let create ~alpha ~t_matrix =
  let k = Array.length alpha in
  if k = 0 then invalid_arg "Phase_type.create: no phases";
  if not (M.is_square t_matrix) || t_matrix.M.rows <> k then
    invalid_arg "Phase_type.create: dimension mismatch";
  let mass = Array.fold_left ( +. ) 0.0 alpha in
  Array.iter
    (fun a ->
      if a < 0.0 || not (Float.is_finite a) then
        invalid_arg "Phase_type.create: alpha must be nonnegative")
    alpha;
  if mass > 1.0 +. 1e-12 then
    invalid_arg "Phase_type.create: alpha mass exceeds 1";
  let exit_rates = Array.make k 0.0 in
  for i = 0 to k - 1 do
    let row_sum = ref 0.0 in
    for j = 0 to k - 1 do
      let v = M.get t_matrix i j in
      if i = j then begin
        if v >= 0.0 then
          invalid_arg "Phase_type.create: diagonal of T must be negative"
      end
      else if v < 0.0 then
        invalid_arg "Phase_type.create: off-diagonal of T must be nonnegative";
      row_sum := !row_sum +. v
    done;
    if !row_sum > 1e-9 then
      invalid_arg "Phase_type.create: T row sums must be <= 0";
    exit_rates.(i) <- Float.max 0.0 (-. !row_sum)
  done;
  (* (−T) x = 1 *)
  let neg_t = M.scale (-1.0) t_matrix in
  let ones = Array.make k 1.0 in
  let neg_t_inv_ones =
    match Lu.solve_system neg_t ones with
    | Ok x -> x
    | Error `Singular -> invalid_arg "Phase_type.create: T is singular"
  in
  { alpha = Array.copy alpha; t_matrix = M.copy t_matrix; exit_rates;
    neg_t_inv_ones }

let of_hyperexponential h =
  let w = Hyperexponential.weights h and r = Hyperexponential.rates h in
  let k = Array.length w in
  let t_matrix = M.init k k (fun i j -> if i = j then -.r.(i) else 0.0) in
  create ~alpha:w ~t_matrix

let of_erlang e =
  let k = Erlang.stages e and r = Erlang.rate e in
  let alpha = Array.init k (fun i -> if i = 0 then 1.0 else 0.0) in
  let t_matrix =
    M.init k k (fun i j ->
        if i = j then -.r else if j = i + 1 then r else 0.0)
  in
  create ~alpha ~t_matrix

let phases d = Array.length d.alpha

let alpha d = Array.copy d.alpha

let t_matrix d = M.copy d.t_matrix

(* Mⱼ = j! · α (−T)⁻ʲ 1, computed by repeated solves of (−T) x = prev. *)
let moment d j =
  if j < 1 then invalid_arg "Phase_type.moment: order must be >= 1";
  let k = phases d in
  let neg_t = M.scale (-1.0) d.t_matrix in
  let f = Lu.factor_exn neg_t in
  let x = ref (Array.make k 1.0) in
  let fact = ref 1.0 in
  for i = 1 to j do
    x := Lu.solve f !x;
    fact := !fact *. float_of_int i
  done;
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. (d.alpha.(i) *. !x.(i))
  done;
  !fact *. !acc

let mean d =
  let acc = ref 0.0 in
  for i = 0 to phases d - 1 do
    acc := !acc +. (d.alpha.(i) *. d.neg_t_inv_ones.(i))
  done;
  !acc

let variance d =
  let m1 = mean d in
  moment d 2 -. (m1 *. m1)

let scv d =
  let m1 = mean d in
  variance d /. (m1 *. m1)

(* Uniformization: with q >= max(-T_ii) and P = I + T/q, the phase
   distribution after time x is a Poisson(qx) mixture of α·Pⁿ. *)
let uniformized d =
  let k = phases d in
  let q = ref 1e-300 in
  for i = 0 to k - 1 do
    let v = -.M.get d.t_matrix i i in
    if v > !q then q := v
  done;
  let q = !q in
  let p = M.init k k (fun i j ->
      let v = M.get d.t_matrix i j /. q in
      if i = j then 1.0 +. v else v)
  in
  (q, p)

(* Σₙ Poisson(qx)(n) · f(α Pⁿ), truncated when the remaining Poisson
   tail is below tol. [weight_of] maps the current phase vector to the
   quantity being mixed. *)
let poisson_mixture ?(tol = 1e-12) d x weight_of =
  if x < 0.0 then 0.0
  else begin
    let q, p = uniformized d in
    let lam = q *. x in
    let v = ref (Array.copy d.alpha) in
    (* iterate Poisson terms; use logs to avoid overflow for large lam *)
    let log_term = ref (-.lam) in
    (* log of e^-lam * lam^0 / 0! *)
    let acc = ref 0.0 in
    let cum = ref 0.0 in
    let n = ref 0 in
    let continue_loop = ref true in
    while !continue_loop do
      let w = exp !log_term in
      acc := !acc +. (w *. weight_of !v);
      cum := !cum +. w;
      if 1.0 -. !cum < tol && !n > int_of_float lam then continue_loop := false
      else if !n > 100_000 then continue_loop := false
      else begin
        incr n;
        log_term := !log_term +. log (lam /. float_of_int !n);
        v := M.vec_mul !v p
      end
    done;
    !acc
  end

let cdf ?tol d x =
  if x <= 0.0 then 1.0 -. Array.fold_left ( +. ) 0.0 d.alpha
  else begin
    let survive v = Array.fold_left ( +. ) 0.0 v in
    let s = poisson_mixture ?tol d x survive in
    Float.max 0.0 (Float.min 1.0 (1.0 -. s))
  end

let pdf ?tol d x =
  if x < 0.0 then 0.0
  else begin
    let absorb v =
      let acc = ref 0.0 in
      for i = 0 to phases d - 1 do
        acc := !acc +. (v.(i) *. d.exit_rates.(i))
      done;
      !acc
    in
    Float.max 0.0 (poisson_mixture ?tol d x absorb)
  end

let quantile d p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Phase_type.quantile: p in (0,1)";
  let defect = 1.0 -. Array.fold_left ( +. ) 0.0 d.alpha in
  if p <= defect then 0.0
  else begin
    let hi = ref (Float.max (mean d) 1e-6) in
    while cdf d !hi < p do
      hi := !hi *. 2.0
    done;
    let lo = ref 0.0 and hi = ref !hi in
    for _ = 1 to 100 do
      let m = 0.5 *. (!lo +. !hi) in
      if cdf d m < p then lo := m else hi := m
    done;
    0.5 *. (!lo +. !hi)
  end

let sample d g =
  let k = phases d in
  (* pick the initial phase (defect mass absorbs immediately) *)
  let u = Rng.float g in
  let phase = ref (-1) in
  let acc = ref 0.0 in
  (try
     for i = 0 to k - 1 do
       acc := !acc +. d.alpha.(i);
       if u < !acc then begin
         phase := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !phase < 0 then 0.0
  else begin
    let time = ref 0.0 in
    let current = ref !phase in
    let absorbed = ref false in
    while not !absorbed do
      let i = !current in
      let total_rate = -.M.get d.t_matrix i i in
      time := !time +. Rng.exponential g total_rate;
      (* choose the next phase or absorption *)
      let u = Rng.float g *. total_rate in
      let acc = ref 0.0 in
      let next = ref (-1) in
      (try
         for j = 0 to k - 1 do
           if j <> i then begin
             acc := !acc +. M.get d.t_matrix i j;
             if u < !acc then begin
               next := j;
               raise Exit
             end
           end
         done
       with Exit -> ());
      if !next < 0 then absorbed := true else current := !next
    done;
    !time
  end

let pp ppf d =
  Format.fprintf ppf "PH(k=%d, mean=%.4g, scv=%.4g)" (phases d) (mean d) (scv d)
