(** The exponential distribution with a given rate. *)

type t

val create : float -> t
(** [create rate]; requires [rate > 0]. *)

val rate : t -> float
val mean : t -> float
val variance : t -> float

val scv : t -> float
(** Squared coefficient of variation; always [1.]. *)

val moment : t -> int -> float
(** [moment d k] is the k-th raw moment [k! / rate^k]; [k >= 1]. *)

val pdf : t -> float -> float
val cdf : t -> float -> float

val quantile : t -> float -> float
(** Inverse CDF on [(0, 1)]. *)

val sample : t -> Rng.t -> float
val pp : Format.formatter -> t -> unit
