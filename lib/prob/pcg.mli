(** Allocation-free pseudo-random number generator for simulation hot
    paths.

    The state is one mutable native [int], stepped by a 63-bit
    linear-congruential recurrence and tempered with a splitmix-style
    xorshift-multiply output permutation (PCG construction). Every draw
    is branch-light straight-line integer/float code that allocates
    nothing, unlike {!Rng} whose [Int64] core boxes each intermediate.

    {!Rng} remains the generator for solver layers and for replication
    seeding: [Rng.split_seed] hands out child seeds exactly as before,
    and each simulation replication builds its own [Pcg.t] from one. *)

type t

val create : int -> t
(** [create seed] makes a generator from an integer seed. Equal seeds
    give equal streams. *)

val copy : t -> t
(** Duplicate the current state. *)

val split_seed : t -> int
(** A nonnegative 62-bit seed drawn from the stream, suitable for
    [create]; consecutive calls yield statistically independent child
    streams (splitmix-initialised, same contract as
    {!Rng.split_seed}). *)

val bits : t -> int
(** Next raw value, uniform over nonnegative 62-bit ints. *)

val float : t -> float
(** Uniform in [[0, 1)], 53-bit resolution. *)

val float_pos : t -> float
(** Uniform in [(0, 1]]; never returns 0, safe for [log]. *)

val uniform : t -> float -> float -> float
(** [uniform g lo hi] is uniform in [[lo, hi)]. *)

val int : t -> int -> int
(** [int g bound] is uniform in [[0, bound)]; [bound > 0]. Modulo bias
    is negligible for [bound] far below 2^62. *)

val exponential : t -> float -> float
(** [exponential g rate] samples Exp(rate); [rate > 0]. *)

val normal : t -> float
(** Standard normal via Box–Muller. *)
