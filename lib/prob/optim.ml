type result = {
  x : float array;
  fx : float;
  iterations : int;
  converged : bool;
}

(* Standard Nelder–Mead with reflection 1, expansion 2, contraction 1/2,
   shrink 1/2. *)
let nelder_mead ?(max_iter = 2000) ?(tol = 1e-12) ?(initial_step = 0.1) f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Optim.nelder_mead: empty start point";
  (* build the initial simplex: x0 plus a perturbation per coordinate *)
  let points =
    Array.init (n + 1) (fun i ->
        let p = Array.copy x0 in
        if i > 0 then begin
          let j = i - 1 in
          let step =
            if p.(j) <> 0.0 then initial_step *. abs_float p.(j)
            else initial_step
          in
          p.(j) <- p.(j) +. step
        end;
        p)
  in
  let values = Array.map f points in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    let pts = Array.map (fun i -> points.(i)) idx in
    let vls = Array.map (fun i -> values.(i)) idx in
    Array.blit pts 0 points 0 (n + 1);
    Array.blit vls 0 values 0 (n + 1)
  in
  let centroid () =
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      (* exclude the worst point *)
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (points.(i).(j) /. float_of_int n)
      done
    done;
    c
  in
  let combine c p alpha =
    Array.init n (fun j -> c.(j) +. (alpha *. (p.(j) -. c.(j))))
  in
  let iter = ref 0 in
  let converged = ref false in
  order ();
  while (not !converged) && !iter < max_iter do
    incr iter;
    let c = centroid () in
    let worst = points.(n) in
    let reflected = combine c worst (-1.0) in
    let fr = f reflected in
    if fr < values.(0) then begin
      (* try expansion *)
      let expanded = combine c worst (-2.0) in
      let fe = f expanded in
      if fe < fr then begin
        points.(n) <- expanded;
        values.(n) <- fe
      end
      else begin
        points.(n) <- reflected;
        values.(n) <- fr
      end
    end
    else if fr < values.(n - 1) then begin
      points.(n) <- reflected;
      values.(n) <- fr
    end
    else begin
      (* contraction (outside if the reflected point improved on the
         worst, inside otherwise) *)
      let alpha = if fr < values.(n) then -0.5 else 0.5 in
      let contracted = combine c worst alpha in
      let fc = f contracted in
      if fc < Float.min fr values.(n) then begin
        points.(n) <- contracted;
        values.(n) <- fc
      end
      else
        (* shrink towards the best point *)
        for i = 1 to n do
          points.(i) <-
            Array.init n (fun j ->
                points.(0).(j) +. (0.5 *. (points.(i).(j) -. points.(0).(j))));
          values.(i) <- f points.(i)
        done
    end;
    order ();
    let spread = abs_float (values.(n) -. values.(0)) in
    if spread <= tol *. (1.0 +. abs_float values.(0)) then converged := true
  done;
  { x = Array.copy points.(0); fx = values.(0); iterations = !iter;
    converged = !converged }
