(** The continuous uniform distribution on [[lo, hi]]. A second
    low-variability contrast distribution for the simulator. *)

type t

val create : lo:float -> hi:float -> t
(** Requires [0 <= lo < hi]. *)

val lo : t -> float
val hi : t -> float
val mean : t -> float
val variance : t -> float
val scv : t -> float

val moment : t -> int -> float
(** [(hi^{k+1} − lo^{k+1}) / ((k+1)(hi − lo))]. *)

val pdf : t -> float -> float
val cdf : t -> float -> float
val quantile : t -> float -> float
val sample : t -> Rng.t -> float
val pp : Format.formatter -> t -> unit
