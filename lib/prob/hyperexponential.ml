type t = { weights : float array; rates : float array }

let create ~weights ~rates =
  let n = Array.length weights in
  if n = 0 || Array.length rates <> n then
    invalid_arg "Hyperexponential.create: weights/rates length mismatch";
  Array.iter
    (fun w ->
      if w < 0.0 || not (Float.is_finite w) then
        invalid_arg "Hyperexponential.create: weights must be nonnegative")
    weights;
  Array.iter
    (fun r ->
      if r <= 0.0 || not (Float.is_finite r) then
        invalid_arg "Hyperexponential.create: rates must be positive")
    rates;
  let total = Array.fold_left ( +. ) 0.0 weights in
  if abs_float (total -. 1.0) > 1e-9 then
    invalid_arg "Hyperexponential.create: weights must sum to 1";
  let weights = Array.map (fun w -> w /. total) weights in
  { weights = Array.copy weights; rates = Array.copy rates }

let of_pairs pairs =
  let weights = Array.of_list (List.map fst pairs) in
  let rates = Array.of_list (List.map snd pairs) in
  create ~weights ~rates

let phases d = Array.length d.weights

let weights d = Array.copy d.weights

let rates d = Array.copy d.rates

let mean d =
  let acc = ref 0.0 in
  for j = 0 to phases d - 1 do
    acc := !acc +. (d.weights.(j) /. d.rates.(j))
  done;
  !acc

let moment d k =
  if k < 1 then invalid_arg "Hyperexponential.moment: k must be >= 1";
  let fact = ref 1.0 in
  for i = 1 to k do
    fact := !fact *. float_of_int i
  done;
  let acc = ref 0.0 in
  for j = 0 to phases d - 1 do
    acc := !acc +. (!fact *. d.weights.(j) /. (d.rates.(j) ** float_of_int k))
  done;
  !acc

let variance d =
  let m1 = mean d in
  moment d 2 -. (m1 *. m1)

let scv d =
  let m1 = mean d in
  (moment d 2 /. (m1 *. m1)) -. 1.0

let pdf d x =
  if x < 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    for j = 0 to phases d - 1 do
      acc := !acc +. (d.weights.(j) *. d.rates.(j) *. exp (-.d.rates.(j) *. x))
    done;
    !acc
  end

let cdf d x =
  if x < 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    for j = 0 to phases d - 1 do
      acc := !acc +. (d.weights.(j) *. exp (-.d.rates.(j) *. x))
    done;
    1.0 -. !acc
  end

let quantile d p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Hyperexponential.quantile: p in (0,1)";
  (* the CDF is strictly increasing; bracket then bisect *)
  let hi = ref (mean d) in
  while cdf d !hi < p do
    hi := !hi *. 2.0
  done;
  let lo = ref 0.0 and hi = ref !hi in
  for _ = 1 to 200 do
    let m = 0.5 *. (!lo +. !hi) in
    if cdf d m < p then lo := m else hi := m
  done;
  0.5 *. (!lo +. !hi)

let sample d g =
  let j = Rng.choose g d.weights in
  Rng.exponential g d.rates.(j)

let exponential_mean_rate d = 1.0 /. mean d

let pp ppf d =
  Format.fprintf ppf "H%d(" (phases d);
  for j = 0 to phases d - 1 do
    if j > 0 then Format.fprintf ppf "; ";
    Format.fprintf ppf "w=%.4g,rate=%.4g" d.weights.(j) d.rates.(j)
  done;
  Format.fprintf ppf ")"
