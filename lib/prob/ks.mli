(** Kolmogorov–Smirnov goodness-of-fit testing.

    Two usage modes, matching the paper: (i) against an empirical CDF
    evaluated at histogram points (eq. (4), with critical values indexed
    by the number of points — this is how the paper computes
    D = 0.4742 with 50 points), and (ii) the classical one-sample test
    against raw observations. *)

type decision = {
  statistic : float;  (** The KS statistic D. *)
  n : int;  (** Number of points/samples used. *)
  significance : float;  (** Significance level of the test. *)
  critical : float;  (** Critical value at that level. *)
  accept : bool;  (** Whether the null hypothesis is accepted. *)
  p_value : float;  (** Asymptotic p-value of D. *)
}

val statistic_points :
  hypothesized:(float -> float) -> points:(float * float) array -> float
(** [statistic_points ~hypothesized ~points] with [points] an array of
    [(xᵢ, F̃(xᵢ))] pairs is [max |F(xᵢ) − F̃(xᵢ)|] (paper eq. (4)). *)

val statistic_samples :
  hypothesized:(float -> float) -> samples:float array -> float
(** Classical one-sample KS statistic
    [max(i/n − F(x₍ᵢ₎), F(x₍ᵢ₎) − (i−1)/n)]; [samples] need not be
    sorted. *)

val critical_value : n:int -> significance:float -> float
(** Asymptotic critical value [c(α)/√n] with
    [c(α) = sqrt(−ln(α/2)/2)]; reproduces the paper's table values
    (0.19 at 5% and 0.23 at 1% for n = 50). *)

val p_value : n:int -> statistic:float -> float
(** Asymptotic p-value via the Kolmogorov distribution with the
    Stephens small-sample correction. *)

val test_points :
  significance:float ->
  hypothesized:(float -> float) ->
  points:(float * float) array ->
  decision
(** Full test in mode (i). *)

val test_samples :
  significance:float ->
  hypothesized:(float -> float) ->
  samples:float array ->
  decision
(** Full test in mode (ii). *)

val pp_decision : Format.formatter -> decision -> unit
