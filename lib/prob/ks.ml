type decision = {
  statistic : float;
  n : int;
  significance : float;
  critical : float;
  accept : bool;
  p_value : float;
}

let statistic_points ~hypothesized ~points =
  if Array.length points = 0 then invalid_arg "Ks.statistic_points: no points";
  Array.fold_left
    (fun acc (x, f_emp) -> Float.max acc (abs_float (hypothesized x -. f_emp)))
    0.0 points

let statistic_samples ~hypothesized ~samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Ks.statistic_samples: no samples";
  let xs = Array.copy samples in
  Array.sort compare xs;
  let nf = float_of_int n in
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    let f = hypothesized xs.(i) in
    let above = (float_of_int (i + 1) /. nf) -. f in
    let below = f -. (float_of_int i /. nf) in
    d := Float.max !d (Float.max above below)
  done;
  !d

let critical_value ~n ~significance =
  if n <= 0 then invalid_arg "Ks.critical_value: n must be positive";
  if significance <= 0.0 || significance >= 1.0 then
    invalid_arg "Ks.critical_value: significance in (0,1)";
  sqrt (-.log (significance /. 2.0) /. 2.0) /. sqrt (float_of_int n)

let p_value ~n ~statistic =
  if n <= 0 then invalid_arg "Ks.p_value: n must be positive";
  let nf = sqrt (float_of_int n) in
  (* Stephens' correction improves the asymptotic formula at modest n *)
  let lambda = (nf +. 0.12 +. (0.11 /. nf)) *. statistic in
  1.0 -. Special.kolmogorov_cdf lambda

let decide ~significance ~n ~statistic =
  let critical = critical_value ~n ~significance in
  {
    statistic;
    n;
    significance;
    critical;
    accept = statistic <= critical;
    p_value = p_value ~n ~statistic;
  }

let test_points ~significance ~hypothesized ~points =
  let statistic = statistic_points ~hypothesized ~points in
  decide ~significance ~n:(Array.length points) ~statistic

let test_samples ~significance ~hypothesized ~samples =
  let statistic = statistic_samples ~hypothesized ~samples in
  decide ~significance ~n:(Array.length samples) ~statistic

let pp_decision ppf d =
  Format.fprintf ppf
    "D=%.4f (n=%d, critical=%.4f at %g%%): %s (p=%.4g)" d.statistic d.n
    d.critical
    (100.0 *. d.significance)
    (if d.accept then "ACCEPT" else "REJECT")
    d.p_value
