(** Fitting hyperexponential distributions to empirical moments — the
    paper's Section 2 machinery.

    An n-phase hyperexponential has [2n−1] free parameters and is
    determined by its first [2n−1] moments (paper, eqs. (6)–(7)). These
    routines implement: the closed-form three-moment H2 fit, the
    two-moment fits used by the numerical experiments, the Gauss–Seidel
    iteration the paper mentions, and the brute-force rate search
    (eq. (8)) generalized to n phases with a Nelder–Mead refinement. *)

type error =
  [ `Scv_too_low  (** Data has C² < 1; no hyperexponential fits. *)
  | `Invalid_moments  (** Moments not realizable by the family. *)
  | `No_convergence  (** Iterative method failed to converge. *) ]

val pp_error : Format.formatter -> error -> unit

val exponential_of_mean : float -> Exponential.t
(** Exponential with the given positive mean. *)

val h2_of_three_moments :
  m1:float -> m2:float -> m3:float -> (Hyperexponential.t, error) result
(** Closed-form 2-phase fit matching the first three raw moments: the
    phase means [t₁, t₂] are the roots of the quadratic whose power sums
    match the reduced moments, and the weight follows from the mean. *)

val h2_of_mean_scv :
  mean:float -> scv:float -> (Hyperexponential.t, error) result
(** Two-moment H2 fit with the standard "balanced means" convention
    ([α₁/ξ₁ = α₂/ξ₂]); requires [scv >= 1]. *)

val h2_of_mean_scv_pinned_rate :
  mean:float ->
  scv:float ->
  pinned_rate:float ->
  (Hyperexponential.t, error) result
(** The Figure-6 protocol: one phase's rate is pinned (the fitted short
    phase, rate [ξ = 0.1663] in the paper) and the other phase's rate
    and the weights are solved from the mean and scv. As [scv → 1] the
    varied phase's mean approaches the overall mean and its weight
    approaches 1 (the exponential case); as [scv] grows the varied
    phase's periods become longer and less likely, exactly as the paper
    describes. Requires [scv >= 1]; [`Invalid_moments] when the
    requested pair is not reachable with the pinned rate. The returned
    distribution has the varied phase first. *)

val h2_gauss_seidel :
  ?max_iter:int ->
  ?tol:float ->
  m1:float ->
  m2:float ->
  m3:float ->
  unit ->
  (Hyperexponential.t * int, error) result
(** The Gauss–Seidel fixed-point iteration on the three moment equations
    that the paper reports converges for n = 2. Returns the fit and the
    number of iterations used. Defaults: [max_iter = 10_000],
    [tol = 1e-12] (relative change per sweep). *)

val hn_of_moments :
  n:int -> moments:float array -> (Hyperexponential.t * float, error) result
(** The paper's brute-force method for n phases (eq. (8)): weights are
    eliminated by solving the linear system given by normalization and
    the first [n−1] moment equations; the rates are then searched to
    minimize the relative mismatch of moments [n..2n−1] (multi-start
    Nelder–Mead over log-rates). [moments] must contain at least [2n−1]
    entries ([moments.(k)] is [M̃_{k+1}]). Returns the fit and the final
    objective value. *)
