type t = { mu : float; sigma : float }

let create ~mu ~sigma =
  if sigma <= 0.0 || not (Float.is_finite mu) then
    invalid_arg "Lognormal.create: sigma must be positive";
  { mu; sigma }

let of_mean_scv ~mean ~scv =
  if mean <= 0.0 || scv <= 0.0 then
    invalid_arg "Lognormal.of_mean_scv: mean and scv must be positive";
  let sigma2 = log (1.0 +. scv) in
  { mu = log mean -. (0.5 *. sigma2); sigma = sqrt sigma2 }

let mu d = d.mu

let sigma d = d.sigma

let moment d k =
  if k < 1 then invalid_arg "Lognormal.moment: k must be >= 1";
  let kf = float_of_int k in
  exp ((kf *. d.mu) +. (0.5 *. kf *. kf *. d.sigma *. d.sigma))

let mean d = moment d 1

let variance d =
  let m1 = mean d in
  moment d 2 -. (m1 *. m1)

let scv d = exp (d.sigma *. d.sigma) -. 1.0

let pdf d x =
  if x <= 0.0 then 0.0
  else begin
    let z = (log x -. d.mu) /. d.sigma in
    exp (-0.5 *. z *. z) /. (x *. d.sigma *. sqrt (2.0 *. Float.pi))
  end

let cdf d x =
  if x <= 0.0 then 0.0 else Special.normal_cdf ((log x -. d.mu) /. d.sigma)

let quantile d p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Lognormal.quantile: p in (0,1)";
  exp (d.mu +. (d.sigma *. Special.normal_quantile p))

let sample d g = exp (d.mu +. (d.sigma *. Rng.normal g))

let pp ppf d = Format.fprintf ppf "Lognormal(mu=%g,sigma=%g)" d.mu d.sigma
