let factorial k =
  if k < 0 then invalid_arg "Moments.factorial: negative";
  let acc = ref 1.0 in
  for i = 2 to k do
    acc := !acc *. float_of_int i
  done;
  !acc

let reduced k m = m /. factorial k

let scv_of_moments ~m1 ~m2 = (m2 /. (m1 *. m1)) -. 1.0

let variance_of_moments ~m1 ~m2 = m2 -. (m1 *. m1)

let m2_of_mean_scv ~mean ~scv = mean *. mean *. (scv +. 1.0)
