(** Compiled distribution samplers for the simulation hot path.

    {!compile} digests a {!Distribution.t} once into a flat
    representation (rates, cumulative weight tables, phase-type jump
    tables); {!sample} then draws from it with a single shallow match
    and {!Pcg} arithmetic. The exponential, deterministic, uniform,
    Weibull and Erlang paths allocate nothing per draw; sampling
    semantics match [Distribution.sample] family by family (same
    inversion formulas, same tie-breaking in weight scans), only the
    underlying generator differs. *)

type t

val compile : Distribution.t -> t
(** Precompute everything [sample] needs. Call once per distribution
    per replication setup, never inside the event loop. *)

val sample : t -> Pcg.t -> float
(** Draw one value. *)
