(* Lanczos approximation with g = 7, n = 9 coefficients (Boost's set). *)
let lanczos_g = 7.0

let lanczos_coef =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: x must be positive";
  if x < 0.5 then
    (* reflection: Γ(x)Γ(1−x) = π / sin(πx) *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else log_gamma_aux x

and log_gamma_aux x =
  let x = x -. 1.0 in
  let acc = ref lanczos_coef.(0) in
  for i = 1 to Array.length lanczos_coef - 1 do
    acc := !acc +. (lanczos_coef.(i) /. (x +. float_of_int i))
  done;
  let t = x +. lanczos_g +. 0.5 in
  (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

(* Regularized incomplete gamma: series expansion (gser) and continued
   fraction (gcf), after Numerical Recipes. *)
let gamma_p_series a x =
  let gln = log_gamma a in
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let del = ref !sum in
  let iter = ref 0 in
  while abs_float !del > abs_float !sum *. 1e-16 && !iter < 500 do
    incr iter;
    ap := !ap +. 1.0;
    del := !del *. x /. !ap;
    sum := !sum +. !del
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. gln)

let gamma_q_cf a x =
  let gln = log_gamma a in
  let fpmin = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue_loop = ref true in
  while !continue_loop && !i <= 500 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if abs_float !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.0) <= 1e-16 then continue_loop := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: a must be positive";
  if x < 0.0 then invalid_arg "Special.gamma_p: x must be nonnegative";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

(* erfc via the NR rational Chebyshev fit (~1.2e-7), refined below where
   higher accuracy matters we use the symmetric relation with gamma_p:
   erf(x) = P(1/2, x²). *)
let erf x =
  if x < 0.0 then -.gamma_p 0.5 (x *. x) else gamma_p 0.5 (x *. x)

let erfc x = 1.0 -. erf x

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt 2.0)

(* Acklam's inverse normal CDF approximation + one Halley refinement. *)
let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Special.normal_quantile: p must lie in (0,1)";
  let a =
    [| -39.69683028665376; 220.9460984245205; -275.9285104469687;
       138.3577518672690; -30.66479806614716; 2.506628277459239 |]
  in
  let b =
    [| -54.47609879822406; 161.5858368580409; -155.6989798598866;
       66.80131188771972; -13.28068155288572 |]
  in
  let c =
    [| -0.007784894002430293; -0.3223964580411365; -2.400758277161838;
       -2.549732539343734; 4.374664141464968; 2.938163982698783 |]
  in
  let d =
    [| 0.007784695709041462; 0.3224671290700398; 2.445134137142996;
       3.754408661907416 |]
  in
  let p_low = 0.02425 in
  let tail_value q =
    ((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5))
    /. ((((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q) +. 1.0)
  in
  let x =
    if p < p_low then tail_value (sqrt (-2.0 *. log p))
    else if p > 1.0 -. p_low then -.tail_value (sqrt (-2.0 *. log (1.0 -. p)))
    else begin
      let q = p -. 0.5 in
      let r = q *. q in
      let num =
        (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
           *. r
        +. a.(5))
        *. q
      in
      let den =
        ((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
        *. r
        +. 1.0
      in
      num /. den
    end
  in
  (* one Halley step against the accurate CDF *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

(* Continued fraction for the incomplete beta (NR betacf). *)
let betacf a b x =
  let fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if abs_float !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue_loop = ref true in
  while !continue_loop && !m <= 300 do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.0) < 1e-15 then continue_loop := false;
    incr m
  done;
  !h

let beta_inc ~a ~b x =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Special.beta_inc: a,b positive";
  if x < 0.0 || x > 1.0 then invalid_arg "Special.beta_inc: x in [0,1]";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else begin
    let bt =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
    else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)
  end

let kolmogorov_cdf x =
  if x <= 0.0 then 0.0
  else begin
    let acc = ref 0.0 in
    let k = ref 1 in
    let continue_loop = ref true in
    while !continue_loop && !k <= 100 do
      let kf = float_of_int !k in
      let term = exp (-2.0 *. kf *. kf *. x *. x) in
      let signed = if !k mod 2 = 1 then term else -.term in
      acc := !acc +. signed;
      if term < 1e-16 then continue_loop := false;
      incr k
    done;
    Float.max 0.0 (Float.min 1.0 (1.0 -. (2.0 *. !acc)))
  end
