(** The Weibull distribution, a common alternative lifetime model; used
    in robustness experiments to check how the hyperexponential fit
    behaves on non-phase-type data. *)

type t

val create : shape:float -> scale:float -> t
(** Requires positive shape and scale. *)

val shape : t -> float
val scale : t -> float
val mean : t -> float
val variance : t -> float
val scv : t -> float

val moment : t -> int -> float
(** [scaleᵏ Γ(1 + k/shape)]. *)

val pdf : t -> float -> float
val cdf : t -> float -> float
val quantile : t -> float -> float
val sample : t -> Rng.t -> float
val pp : Format.formatter -> t -> unit
