(** The n-phase hyperexponential distribution: a probabilistic mixture of
    [n] exponentials,
    [f(x) = Σⱼ αⱼ ξⱼ exp(−ξⱼ x)] with [αⱼ, ξⱼ > 0], [Σ αⱼ = 1]
    (paper, eq. (5)). Its squared coefficient of variation is always
    [>= 1], which is what makes it a good model for the observed
    operative periods. *)

type t

val create : weights:float array -> rates:float array -> t
(** [create ~weights ~rates] validates: equal nonzero lengths, weights
    nonnegative summing to 1 within [1e-9] (then renormalized exactly),
    rates positive. *)

val of_pairs : (float * float) list -> t
(** [(weight, rate)] pairs. *)

val phases : t -> int
val weights : t -> float array
val rates : t -> float array

val mean : t -> float
(** [Σ αⱼ/ξⱼ] (paper, eq. (10)). *)

val variance : t -> float

val scv : t -> float
(** Squared coefficient of variation [M₂/M₁² − 1]. *)

val moment : t -> int -> float
(** [moment d k = Σⱼ k! αⱼ / ξⱼᵏ] (paper, eq. (6)); [k >= 1]. *)

val pdf : t -> float -> float
val cdf : t -> float -> float

val quantile : t -> float -> float
(** Inverse CDF by monotone bisection. *)

val sample : t -> Rng.t -> float
(** Pick a phase by weight, then sample that exponential. *)

val exponential_mean_rate : t -> float
(** Rate of the exponential with the same mean, [1 / mean]. *)

val pp : Format.formatter -> t -> unit
