type t = { k : int; rate : float }

let create ~k ~rate =
  if k < 1 then invalid_arg "Erlang.create: k must be >= 1";
  if rate <= 0.0 || not (Float.is_finite rate) then
    invalid_arg "Erlang.create: rate must be positive";
  { k; rate }

let stages d = d.k

let rate d = d.rate

let mean d = float_of_int d.k /. d.rate

let variance d = float_of_int d.k /. (d.rate *. d.rate)

let scv d = 1.0 /. float_of_int d.k

let moment d j =
  if j < 1 then invalid_arg "Erlang.moment: order must be >= 1";
  (* (k)(k+1)...(k+j-1) / rate^j *)
  let acc = ref 1.0 in
  for i = 0 to j - 1 do
    acc := !acc *. float_of_int (d.k + i) /. d.rate
  done;
  !acc

let pdf d x =
  if x < 0.0 then 0.0
  else begin
    let k = float_of_int d.k in
    let log_p =
      (k *. log d.rate)
      +. ((k -. 1.0) *. log (Float.max x 1e-300))
      -. (d.rate *. x)
      -. Special.log_gamma k
    in
    exp log_p
  end

let cdf d x =
  if x <= 0.0 then 0.0 else Special.gamma_p (float_of_int d.k) (d.rate *. x)

let quantile d p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Erlang.quantile: p in (0,1)";
  let hi = ref (Float.max (mean d) 1.0) in
  while cdf d !hi < p do
    hi := !hi *. 2.0
  done;
  let lo = ref 0.0 and hi = ref !hi in
  for _ = 1 to 200 do
    let m = 0.5 *. (!lo +. !hi) in
    if cdf d m < p then lo := m else hi := m
  done;
  0.5 *. (!lo +. !hi)

let sample d g =
  (* product of uniforms avoids k calls to log *)
  let prod = ref 1.0 in
  for _ = 1 to d.k do
    prod := !prod *. Rng.float_pos g
  done;
  -.log !prod /. d.rate

let pp ppf d = Format.fprintf ppf "Erlang(k=%d,rate=%g)" d.k d.rate
