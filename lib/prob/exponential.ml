type t = { rate : float }

let create rate =
  if rate <= 0.0 || not (Float.is_finite rate) then
    invalid_arg "Exponential.create: rate must be positive and finite";
  { rate }

let rate d = d.rate

let mean d = 1.0 /. d.rate

let variance d = 1.0 /. (d.rate *. d.rate)

let scv _ = 1.0

let moment d k =
  if k < 1 then invalid_arg "Exponential.moment: k must be >= 1";
  let acc = ref 1.0 in
  for i = 1 to k do
    acc := !acc *. float_of_int i /. d.rate
  done;
  !acc

let pdf d x = if x < 0.0 then 0.0 else d.rate *. exp (-.d.rate *. x)

let cdf d x = if x < 0.0 then 0.0 else 1.0 -. exp (-.d.rate *. x)

let quantile d p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Exponential.quantile: p in (0,1)";
  -.log (1.0 -. p) /. d.rate

let sample d g = Rng.exponential g d.rate

let pp ppf d = Format.fprintf ppf "Exp(rate=%g)" d.rate
