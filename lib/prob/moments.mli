(** Small helpers for working with raw moments. *)

val factorial : int -> float
(** [k!] as a float; [k >= 0]. *)

val reduced : int -> float -> float
(** [reduced k m] is [m / k!] — the "reduced moment" [u_k = M_k/k!] of a
    hyperexponential, equal to [Σ αⱼ tⱼᵏ] with [tⱼ = 1/ξⱼ]. *)

val scv_of_moments : m1:float -> m2:float -> float
(** Squared coefficient of variation [M₂/M₁² − 1] (paper, eq. (2)). *)

val variance_of_moments : m1:float -> m2:float -> float
(** [M₂ − M₁²]. *)

val m2_of_mean_scv : mean:float -> scv:float -> float
(** Second raw moment of a distribution with the given mean and scv. *)
