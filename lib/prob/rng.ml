(* splitmix64 (Steele, Lea, Flood 2014): passes BigCrush when used as a
   64-bit generator; trivially splittable by re-seeding from the stream. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 g =
  g.state <- Int64.add g.state golden;
  mix g.state

let split g = { state = mix (bits64 g) }

let split_seed g = Int64.to_int (bits64 g) land max_int

let copy g = { state = g.state }

let float g =
  (* take the top 53 bits *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float_pos g =
  let u = float g in
  if u > 0.0 then u else epsilon_float

let uniform g lo hi = lo +. ((hi -. lo) *. float g)

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free for our purposes: modulo bias is negligible for
     bound << 2^63 *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 g) 1) (Int64.of_int bound))

let exponential g rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log (float_pos g) /. rate

let normal g =
  let u1 = float_pos g and u2 = float g in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let choose g weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.choose: weights sum to zero";
  let u = float g *. total in
  let acc = ref 0.0 in
  let chosen = ref (Array.length weights - 1) in
  (try
     for i = 0 to Array.length weights - 1 do
       acc := !acc +. weights.(i);
       if u < !acc then begin
         chosen := i;
         raise Exit
       end
     done
   with Exit -> ());
  !chosen
