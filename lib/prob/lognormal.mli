(** The lognormal distribution ([exp] of a normal); another heavy-tailed
    lifetime model used in robustness experiments. *)

type t

val create : mu:float -> sigma:float -> t
(** Location [mu] and positive scale [sigma] of the underlying normal. *)

val of_mean_scv : mean:float -> scv:float -> t
(** Lognormal with the given positive mean and squared coefficient of
    variation. *)

val mu : t -> float
val sigma : t -> float
val mean : t -> float
val variance : t -> float
val scv : t -> float

val moment : t -> int -> float
(** [exp(k·mu + k²sigma²/2)]. *)

val pdf : t -> float -> float
val cdf : t -> float -> float
val quantile : t -> float -> float
val sample : t -> Rng.t -> float
val pp : Format.formatter -> t -> unit
