type t =
  | Exponential of Exponential.t
  | Hyperexponential of Hyperexponential.t
  | Erlang of Erlang.t
  | Deterministic of Deterministic.t
  | Uniform of Uniform_d.t
  | Weibull of Weibull.t
  | Lognormal of Lognormal.t
  | Phase_type of Phase_type.t

let exponential ~rate = Exponential (Exponential.create rate)

let hyperexponential ~weights ~rates =
  Hyperexponential (Hyperexponential.create ~weights ~rates)

let h2 ~w1 ~r1 ~r2 =
  Hyperexponential
    (Hyperexponential.create ~weights:[| w1; 1.0 -. w1 |] ~rates:[| r1; r2 |])

let erlang ~k ~rate = Erlang (Erlang.create ~k ~rate)

let deterministic v = Deterministic (Deterministic.create v)

let uniform ~lo ~hi = Uniform (Uniform_d.create ~lo ~hi)

let weibull ~shape ~scale = Weibull (Weibull.create ~shape ~scale)

let lognormal ~mu ~sigma = Lognormal (Lognormal.create ~mu ~sigma)

let phase_type ~alpha ~t_matrix = Phase_type (Phase_type.create ~alpha ~t_matrix)

let mean = function
  | Exponential d -> Exponential.mean d
  | Hyperexponential d -> Hyperexponential.mean d
  | Erlang d -> Erlang.mean d
  | Deterministic d -> Deterministic.mean d
  | Uniform d -> Uniform_d.mean d
  | Weibull d -> Weibull.mean d
  | Lognormal d -> Lognormal.mean d
  | Phase_type d -> Phase_type.mean d

let variance = function
  | Exponential d -> Exponential.variance d
  | Hyperexponential d -> Hyperexponential.variance d
  | Erlang d -> Erlang.variance d
  | Deterministic d -> Deterministic.variance d
  | Uniform d -> Uniform_d.variance d
  | Weibull d -> Weibull.variance d
  | Lognormal d -> Lognormal.variance d
  | Phase_type d -> Phase_type.variance d

let scv = function
  | Exponential d -> Exponential.scv d
  | Hyperexponential d -> Hyperexponential.scv d
  | Erlang d -> Erlang.scv d
  | Deterministic d -> Deterministic.scv d
  | Uniform d -> Uniform_d.scv d
  | Weibull d -> Weibull.scv d
  | Lognormal d -> Lognormal.scv d
  | Phase_type d -> Phase_type.scv d

let moment t k =
  match t with
  | Exponential d -> Exponential.moment d k
  | Hyperexponential d -> Hyperexponential.moment d k
  | Erlang d -> Erlang.moment d k
  | Deterministic d -> Deterministic.moment d k
  | Uniform d -> Uniform_d.moment d k
  | Weibull d -> Weibull.moment d k
  | Lognormal d -> Lognormal.moment d k
  | Phase_type d -> Phase_type.moment d k

let cdf t x =
  match t with
  | Exponential d -> Exponential.cdf d x
  | Hyperexponential d -> Hyperexponential.cdf d x
  | Erlang d -> Erlang.cdf d x
  | Deterministic d -> Deterministic.cdf d x
  | Uniform d -> Uniform_d.cdf d x
  | Weibull d -> Weibull.cdf d x
  | Lognormal d -> Lognormal.cdf d x
  | Phase_type d -> Phase_type.cdf d x

let pdf t x =
  match t with
  | Exponential d -> Exponential.pdf d x
  | Hyperexponential d -> Hyperexponential.pdf d x
  | Erlang d -> Erlang.pdf d x
  | Deterministic _ -> 0.0
  | Uniform d -> Uniform_d.pdf d x
  | Weibull d -> Weibull.pdf d x
  | Lognormal d -> Lognormal.pdf d x
  | Phase_type d -> Phase_type.pdf d x

let quantile t p =
  match t with
  | Exponential d -> Exponential.quantile d p
  | Hyperexponential d -> Hyperexponential.quantile d p
  | Erlang d -> Erlang.quantile d p
  | Deterministic d -> Deterministic.quantile d p
  | Uniform d -> Uniform_d.quantile d p
  | Weibull d -> Weibull.quantile d p
  | Lognormal d -> Lognormal.quantile d p
  | Phase_type d -> Phase_type.quantile d p

let sample t g =
  match t with
  | Exponential d -> Exponential.sample d g
  | Hyperexponential d -> Hyperexponential.sample d g
  | Erlang d -> Erlang.sample d g
  | Deterministic d -> Deterministic.sample d g
  | Uniform d -> Uniform_d.sample d g
  | Weibull d -> Weibull.sample d g
  | Lognormal d -> Lognormal.sample d g
  | Phase_type d -> Phase_type.sample d g

let as_hyperexponential = function
  | Exponential d ->
      Some
        (Hyperexponential.create ~weights:[| 1.0 |]
           ~rates:[| Exponential.rate d |])
  | Hyperexponential d -> Some d
  | Phase_type d ->
      (* a diagonal sub-generator with full initial mass is exactly a
         hyperexponential *)
      let k = Phase_type.phases d in
      let t = Phase_type.t_matrix d in
      let diagonal = ref true in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if i <> j && Urs_linalg.Matrix.get t i j <> 0.0 then diagonal := false
        done
      done;
      let a = Phase_type.alpha d in
      let mass = Array.fold_left ( +. ) 0.0 a in
      if !diagonal && abs_float (mass -. 1.0) <= 1e-9 then
        let rates = Array.init k (fun i -> -.Urs_linalg.Matrix.get t i i) in
        Some (Hyperexponential.create ~weights:a ~rates)
      else None
  | Erlang _ | Deterministic _ | Uniform _ | Weibull _ | Lognormal _ -> None

let as_phase_type = function
  | Exponential d ->
      Some
        (Phase_type.of_hyperexponential
           (Hyperexponential.create ~weights:[| 1.0 |]
              ~rates:[| Exponential.rate d |]))
  | Hyperexponential d -> Some (Phase_type.of_hyperexponential d)
  | Erlang d -> Some (Phase_type.of_erlang d)
  | Phase_type d -> Some d
  | Deterministic _ | Uniform _ | Weibull _ | Lognormal _ -> None

let pp ppf = function
  | Exponential d -> Exponential.pp ppf d
  | Hyperexponential d -> Hyperexponential.pp ppf d
  | Erlang d -> Erlang.pp ppf d
  | Deterministic d -> Deterministic.pp ppf d
  | Uniform d -> Uniform_d.pp ppf d
  | Weibull d -> Weibull.pp ppf d
  | Lognormal d -> Lognormal.pp ppf d
  | Phase_type d -> Phase_type.pp ppf d
