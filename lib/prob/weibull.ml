type t = { shape : float; scale : float }

let create ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Weibull.create: shape and scale must be positive";
  { shape; scale }

let shape d = d.shape

let scale d = d.scale

let moment d k =
  if k < 1 then invalid_arg "Weibull.moment: k must be >= 1";
  let kf = float_of_int k in
  (d.scale ** kf) *. exp (Special.log_gamma (1.0 +. (kf /. d.shape)))

let mean d = moment d 1

let variance d =
  let m1 = mean d in
  moment d 2 -. (m1 *. m1)

let scv d =
  let m1 = mean d in
  variance d /. (m1 *. m1)

let pdf d x =
  if x < 0.0 then 0.0
  else begin
    let z = x /. d.scale in
    d.shape /. d.scale
    *. (z ** (d.shape -. 1.0))
    *. exp (-.(z ** d.shape))
  end

let cdf d x =
  if x <= 0.0 then 0.0 else 1.0 -. exp (-.((x /. d.scale) ** d.shape))

let quantile d p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Weibull.quantile: p in (0,1)";
  d.scale *. ((-.log (1.0 -. p)) ** (1.0 /. d.shape))

let sample d g =
  let u = Rng.float g in
  (* 1 - u is in (0, 1], so the log is finite *)
  d.scale *. ((-.log (1.0 -. u)) ** (1.0 /. d.shape))

let pp ppf d = Format.fprintf ppf "Weibull(shape=%g,scale=%g)" d.shape d.scale
