(** General (continuous) phase-type distributions.

    A PH distribution is the absorption time of a Markov chain with [k]
    transient phases: initial distribution [alpha] (row vector, may have
    a defect — mass that absorbs immediately) and sub-generator [T]
    (k x k, negative diagonal, nonnegative off-diagonal, row sums
    ≤ 0). Hyperexponential and Erlang distributions are special cases;
    this module generalizes them, which lets the simulator model
    operative/inoperative periods beyond the paper's assumptions (a
    natural extension the paper hints at in §5).

    Moments: [Mⱼ = j! · alpha (−T)⁻ʲ 1]. The CDF is evaluated by
    uniformization (a Poisson mixture of powers of the uniformized
    transition matrix), which is numerically robust. *)

type t

val create : alpha:float array -> t_matrix:Urs_linalg.Matrix.t -> t
(** Validated constructor. Raises [Invalid_argument] when [alpha] has
    negative entries or mass > 1, when [T] is not a sub-generator, or
    when dimensions disagree. *)

val of_hyperexponential : Hyperexponential.t -> t
(** Embed an n-phase hyperexponential. *)

val of_erlang : Erlang.t -> t
(** Embed an Erlang-k distribution. *)

val phases : t -> int
val alpha : t -> float array
val t_matrix : t -> Urs_linalg.Matrix.t

val mean : t -> float
val variance : t -> float
val scv : t -> float

val moment : t -> int -> float
(** j-th raw moment; [j >= 1]. *)

val cdf : ?tol:float -> t -> float -> float
(** CDF by uniformization; [tol] bounds the truncation error
    (default [1e-12]). *)

val pdf : ?tol:float -> t -> float -> float
(** Density, same method. *)

val quantile : t -> float -> float
(** Inverse CDF by bisection. *)

val sample : t -> Rng.t -> float
(** Simulate the underlying absorbing chain. *)

val pp : Format.formatter -> t -> unit
