(* PCG-style generator on native 63-bit ints: a linear-congruential step
   whose output is tempered by a splitmix-style xorshift-multiply
   permutation. All state is a single mutable [int] field, so stepping
   never allocates — unlike {!Rng}, whose [Int64] arithmetic boxes a
   fresh value on every draw. Native-int arithmetic wraps modulo 2^63;
   the multiplier is Knuth's 6364136223846793005 reduced mod 2^63 and is
   ≡ 1 (mod 4), so with an odd increment the LCG has full period 2^63. *)

type t = { mutable s : int }

(* Constants folded from their canonical 64-bit forms at module init so
   the literals stay readable; each is a plain immutable int load at use
   sites. *)
let mult = Int64.to_int 6364136223846793005L
let inc = Int64.to_int 0x9E3779B97F4A7C15L (* odd: golden-ratio step *)
let m1 = Int64.to_int 0xBF58476D1CE4E5B9L
let m2 = Int64.to_int 0x94D049BB133111EBL

let[@inline] mix z =
  let z = (z lxor (z lsr 30)) * m1 in
  let z = (z lxor (z lsr 27)) * m2 in
  z lxor (z lsr 31)

let create seed = { s = mix (seed + inc) }
let copy g = { s = g.s }

let[@inline] bits g =
  g.s <- (g.s * mult) + inc;
  mix g.s land max_int

let split_seed g = bits g

let[@inline] float g =
  (* top 53 of the 62 usable bits *)
  float_of_int (bits g lsr 9) *. 0x1p-53

let[@inline] float_pos g =
  let u = float g in
  if u > 0.0 then u else epsilon_float

let[@inline] uniform g lo hi = lo +. ((hi -. lo) *. float g)

let[@inline] int g bound =
  if bound <= 0 then invalid_arg "Pcg.int: bound must be positive";
  bits g mod bound

let[@inline] exponential g rate = -.log (float_pos g) /. rate

let normal g =
  let u1 = float_pos g and u2 = float g in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
