(** Deterministic, splittable pseudo-random number generator.

    A small splitmix64 core: fast, seedable, and independent of the
    OCaml stdlib [Random] state, so simulations are reproducible across
    runs and machines. Streams created by {!split} are statistically
    independent of the parent. *)

type t

val create : int -> t
(** [create seed] makes a generator from an integer seed. Equal seeds
    give equal streams. *)

val split : t -> t
(** A new generator whose stream is independent of (and does not
    perturb) the parent beyond consuming one value. *)

val split_seed : t -> int
(** A full-width (62-bit, nonnegative) seed drawn from the stream, for
    handing to an API that takes [create]-style integer seeds. Like
    {!split}, consecutive calls yield statistically independent,
    non-overlapping child streams (splitmix initialization — the child
    state is the mix of a parent draw), unlike consecutive small
    integers whose mixed states are one increment apart. *)

val copy : t -> t
(** Duplicate the current state. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [[0, 1)], 53-bit resolution. *)

val float_pos : t -> float
(** Uniform in [(0, 1]]; never returns 0, safe for [log]. *)

val uniform : t -> float -> float -> float
(** [uniform g lo hi] is uniform in [[lo, hi)]. *)

val int : t -> int -> int
(** [int g bound] is uniform in [[0, bound)]; [bound > 0]. *)

val exponential : t -> float -> float
(** [exponential g rate] samples Exp(rate); [rate > 0]. *)

val normal : t -> float
(** Standard normal via Box–Muller. *)

val choose : t -> float array -> int
(** [choose g weights] samples an index with probability proportional to
    the (nonnegative) weights. Raises [Invalid_argument] if all weights
    are zero. *)
