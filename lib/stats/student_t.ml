let cdf ~df x =
  if df < 1 then invalid_arg "Student_t.cdf: df must be >= 1";
  let v = float_of_int df in
  let ib = Urs_prob.Special.beta_inc ~a:(v /. 2.0) ~b:0.5 (v /. (v +. (x *. x))) in
  if x >= 0.0 then 1.0 -. (0.5 *. ib) else 0.5 *. ib

let quantile ~df p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Student_t.quantile: p in (0,1)";
  (* symmetric; bracket then bisect *)
  let lo = ref (-1.0) and hi = ref 1.0 in
  while cdf ~df !lo > p do
    lo := !lo *. 2.0
  done;
  while cdf ~df !hi < p do
    hi := !hi *. 2.0
  done;
  for _ = 1 to 200 do
    let m = 0.5 *. (!lo +. !hi) in
    if cdf ~df m < p then lo := m else hi := m
  done;
  0.5 *. (!lo +. !hi)

let critical ~df ~confidence =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Student_t.critical: confidence in (0,1)";
  quantile ~df (1.0 -. ((1.0 -. confidence) /. 2.0))
