(** Step-change (change-point) detection on scalar series: a
    self-starting two-sided CUSUM (Page's test) whose baseline mean and
    deviation are estimated online from the pre-change points only.

    Built for the perf-history series behind [urs report --detect]: a
    regression that lands as an abrupt level shift (a slower solver
    merged at some commit) accumulates standardized deviations linearly
    and alarms within a few points, while i.i.d. noise around a stable
    baseline decays back to zero between excursions. Wall-time series
    are multiplicative, so callers pass [log seconds] and read {!shift}
    as a log-ratio ([exp shift] is the step factor). *)

type direction = Up | Down

type change = {
  start : int;
      (** Index of the estimated first post-change point (where the
          alarming CUSUM side last left zero). *)
  detected : int;  (** Index at which the statistic crossed the threshold. *)
  direction : direction;  (** [Up]: level increased (a regression for
                              wall times). *)
  shift : float;
      (** Estimated mean shift of the post-change points vs the
          baseline, in input units. *)
  statistic : float;  (** The winning CUSUM value at detection. *)
}

val default_threshold : float
(** [5.0] — standard-deviations budget before an alarm. *)

val default_drift : float
(** [0.5] — per-point slack absorbed before deviations accumulate
    (makes the statistic drain to zero under noise). *)

val default_warmup : int
(** [8] — baseline points folded in before testing starts. Shorter
    warmups make the online scale estimate unreliable enough to
    false-alarm on plain noise. *)

val detect :
  ?threshold:float -> ?drift:float -> ?warmup:int -> float array ->
  change option
(** [detect xs] scans the series in order and returns the first
    confirmed change, or [None] — always [None] for series shorter than
    [warmup + 2] points (too little history to call anything a step;
    [warmup] is clamped to at least 2). Non-finite points are skipped.
    Standardized scores are winsorized at 4 so no single outlier (or
    early underestimated scale) fires the alarm by itself. Raises
    [Invalid_argument] on a non-positive [threshold] or negative
    [drift]. *)
