(** Online mean/variance accumulation (Welford's algorithm), used by the
    simulator's collectors to avoid storing every observation. *)

type t

val create : unit -> t

val reset : t -> unit
(** Forget all observations; equivalent to a fresh accumulator without
    allocating one. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val std_dev : t -> float
val merge : t -> t -> t
(** Combine two accumulators (Chan et al. parallel update). *)
