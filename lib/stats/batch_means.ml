type interval = {
  estimate : float;
  half_width : float;
  confidence : float;
  batches : int;
}

let analyze ?(warmup_fraction = 0.1) ?(batches = 20) ?(confidence = 0.95) series =
  if warmup_fraction < 0.0 || warmup_fraction >= 1.0 then
    invalid_arg "Batch_means.analyze: warmup_fraction in [0,1)";
  if batches < 2 then invalid_arg "Batch_means.analyze: need >= 2 batches";
  let n = Array.length series in
  let start = int_of_float (warmup_fraction *. float_of_int n) in
  let m = n - start in
  let per_batch = m / batches in
  if per_batch < 2 then
    invalid_arg "Batch_means.analyze: series too short for the batch count";
  let batch_means =
    Array.init batches (fun b ->
        let acc = ref 0.0 in
        for i = 0 to per_batch - 1 do
          acc := !acc +. series.(start + (b * per_batch) + i)
        done;
        !acc /. float_of_int per_batch)
  in
  let grand = Empirical.mean batch_means in
  let s = Empirical.std_dev batch_means in
  let tcrit = Student_t.critical ~df:(batches - 1) ~confidence in
  {
    estimate = grand;
    half_width = tcrit *. s /. sqrt (float_of_int batches);
    confidence;
    batches;
  }

let pp_interval ppf iv =
  Format.fprintf ppf "%.6g ± %.3g (%g%%, %d batches)" iv.estimate iv.half_width
    (100.0 *. iv.confidence) iv.batches
