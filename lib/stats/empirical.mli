(** Descriptive statistics computed directly from raw observations. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (n−1 denominator). *)

val std_dev : float array -> float

val scv : float array -> float
(** Squared coefficient of variation (biased, matching the paper's
    moment-based estimator). *)

val moment : float array -> int -> float
(** Raw sample moment [Σ xᵢᵏ / n]. *)

val moments : float array -> int -> float array
(** [moments data k] is the first [k] raw moments, in one pass. *)

val quantile : float array -> float -> float
(** Empirical quantile with linear interpolation; [p] in [[0, 1]]. *)

val ecdf : float array -> float -> float
(** Empirical CDF evaluated at a point ([O(n)] scan). *)

val minimum : float array -> float
val maximum : float array -> float
