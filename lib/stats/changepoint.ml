(* Self-starting two-sided CUSUM over a scalar series.

   The baseline (mean and standard deviation) is estimated online from
   the points seen so far via Welford, so the detector needs no training
   split; points are only folded into the baseline while no alarm is
   pending, which keeps a step change from contaminating its own
   reference. Each new point is standardized against the current
   baseline and accumulated into the one-sided statistics

     S+ <- max 0 (S+ + z - drift)     S- <- max 0 (S- - z - drift)

   (Page's test). An alarm fires when either side exceeds [threshold];
   the change start is the point where the winning side last left zero,
   which for an abrupt step is the first post-step point.

   Perf series are multiplicative (a 2x regression is a +log 2 step
   whatever the absolute scale), so callers working on wall times pass
   the log of the series and read [shift] as a log-ratio. *)

type direction = Up | Down

type change = {
  start : int;
  detected : int;
  direction : direction;
  shift : float;
  statistic : float;
}

let default_threshold = 5.0

let default_drift = 0.5

let default_warmup = 8

(* A few baseline points can wildly underestimate the true spread, and
   a single heavy-tailed observation should not fire the alarm on its
   own either way: winsorize the standardized score. A genuine step
   still accumulates [z_cap - drift] per point, so a 2x step at
   realistic noise alarms within two points. *)
let z_cap = 4.0

(* A flat baseline (identical points, or quantized timings) would make
   every deviation an infinite z-score; floor the scale at a small
   fraction of the baseline magnitude so the statistic stays finite and
   a genuine step still dwarfs the floor. *)
let scale ~mean ~stddev =
  Float.max stddev (Float.max (1e-3 *. Float.abs mean) 1e-12)

let detect ?(threshold = default_threshold) ?(drift = default_drift)
    ?(warmup = default_warmup) xs =
  let n = Array.length xs in
  if threshold <= 0.0 then invalid_arg "Changepoint.detect: threshold <= 0";
  if drift < 0.0 then invalid_arg "Changepoint.detect: drift < 0";
  let warmup = max 2 warmup in
  if n < warmup + 2 then None
  else begin
    let base = Welford.create () in
    let pos = ref 0.0 and neg = ref 0.0 in
    (* index where each side last restarted from zero: the change-start
       estimate if that side alarms *)
    let pos_start = ref 0 and neg_start = ref 0 in
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < n do
      let x = xs.(!i) in
      if Float.is_finite x then begin
        if Welford.count base < warmup then Welford.add base x
        else begin
          let m = Welford.mean base in
          let s = scale ~mean:m ~stddev:(Welford.std_dev base) in
          let z = Float.max (-.z_cap) (Float.min z_cap ((x -. m) /. s)) in
          if !pos = 0.0 then pos_start := !i;
          if !neg = 0.0 then neg_start := !i;
          pos := Float.max 0.0 (!pos +. z -. drift);
          neg := Float.max 0.0 (!neg -. z -. drift);
          if !pos > threshold || !neg > threshold then begin
            let direction, statistic, start =
              if !pos >= !neg then (Up, !pos, !pos_start)
              else (Down, !neg, !neg_start)
            in
            (* mean shift of the post-change points vs the clean
               baseline, in input units (a log-ratio for log series) *)
            let post = Welford.create () in
            for j = start to !i do
              if Float.is_finite xs.(j) then Welford.add post xs.(j)
            done;
            found :=
              Some
                {
                  start;
                  detected = !i;
                  direction;
                  shift = Welford.mean post -. m;
                  statistic;
                }
          end
          else Welford.add base x
        end
      end;
      incr i
    done;
    !found
  end
