(** Student-t quantiles for simulation confidence intervals. *)

val cdf : df:int -> float -> float
(** CDF of the t distribution with [df >= 1] degrees of freedom, via the
    regularized incomplete beta function. *)

val quantile : df:int -> float -> float
(** Inverse CDF on (0, 1), by monotone bisection on {!cdf}. *)

val critical : df:int -> confidence:float -> float
(** Two-sided critical value: [quantile ~df (1 − (1−confidence)/2)],
    e.g. [critical ~df:9 ~confidence:0.95 ≈ 2.262]. *)
