(** Welch's warm-up (initial-transient) detection, automated.

    The classical graphical procedure: average the trajectory of an
    output process across replications, smooth it with a centered moving
    average, and truncate where the smoothed curve has flattened at its
    steady-state level. Used by the doctor to check that a simulation's
    measurement window does not overlap the transient the paper's
    steady-state comparisons assume away. All functions are pure and
    deterministic; [nan] entries (empty buckets) are skipped. *)

val moving_average : window:int -> float array -> float array
(** Centered moving average of half-width [window] ([>= 1], raises
    [Invalid_argument] otherwise); the window shrinks symmetrically near
    the edges, as in Welch's procedure, so the output has the input's
    length. Positions whose window holds only [nan] stay [nan]. *)

val tail_mean : ?fraction:float -> float array -> float
(** Mean of the last [fraction] (default 0.5) of the array — the
    steady-state level estimate; [nan] when that slice holds no finite
    value. *)

val truncation_index :
  ?window:int -> ?tolerance:float -> float array -> int option
(** [truncation_index xs] estimates Welch's truncation point: the first
    index from which the smoothed trajectory stays within
    [tolerance] (default 0.05, relative) of the steady-state level
    estimated from the tail of the smoothed curve. [window] defaults to
    a tenth of the length. The last [window] positions are excluded
    from the test (their shrunken windows barely smooth — Welch's plots
    likewise stop at [m − w]). [None] when the trajectory never settles
    (the band is never entered for good) or holds no finite data —
    callers should treat [None] as "warm-up longer than the run". [Some
    0] means no detectable transient. *)
