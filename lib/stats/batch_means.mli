(** Simulation output analysis by the method of batch means.

    A steady-state time series is split into [batches] contiguous
    batches after discarding a [warmup] prefix; the batch means are
    treated as approximately i.i.d. normal and a Student-t confidence
    interval is formed for the long-run mean. *)

type interval = {
  estimate : float;  (** Point estimate (grand mean of batch means). *)
  half_width : float;  (** Half width of the confidence interval. *)
  confidence : float;  (** Confidence level used. *)
  batches : int;  (** Number of batches. *)
}

val analyze :
  ?warmup_fraction:float ->
  ?batches:int ->
  ?confidence:float ->
  float array ->
  interval
(** [analyze series] computes a confidence interval for the mean of the
    stationary part of [series]. Defaults: [warmup_fraction = 0.1],
    [batches = 20], [confidence = 0.95]. Raises [Invalid_argument] when
    fewer than 2 points per batch remain. *)

val pp_interval : Format.formatter -> interval -> unit
