let check_nonempty data name =
  if Array.length data = 0 then invalid_arg ("Empirical." ^ name ^ ": empty data")

let mean data =
  check_nonempty data "mean";
  Array.fold_left ( +. ) 0.0 data /. float_of_int (Array.length data)

let variance data =
  check_nonempty data "variance";
  let n = Array.length data in
  if n < 2 then 0.0
  else begin
    let m = mean data in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      data;
    !acc /. float_of_int (n - 1)
  end

let std_dev data = sqrt (variance data)

let moment data k =
  check_nonempty data "moment";
  if k < 1 then invalid_arg "Empirical.moment: k must be >= 1";
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. (x ** float_of_int k)) data;
  !acc /. float_of_int (Array.length data)

let moments data k =
  check_nonempty data "moments";
  if k < 1 then invalid_arg "Empirical.moments: k must be >= 1";
  let sums = Array.make k 0.0 in
  Array.iter
    (fun x ->
      let p = ref 1.0 in
      for i = 0 to k - 1 do
        p := !p *. x;
        sums.(i) <- sums.(i) +. !p
      done)
    data;
  Array.map (fun s -> s /. float_of_int (Array.length data)) sums

let scv data =
  let m1 = moment data 1 and m2 = moment data 2 in
  (m2 /. (m1 *. m1)) -. 1.0

let quantile data p =
  check_nonempty data "quantile";
  if p < 0.0 || p > 1.0 then invalid_arg "Empirical.quantile: p in [0,1]";
  let xs = Array.copy data in
  Array.sort compare xs;
  let n = Array.length xs in
  if n = 1 then xs.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let i = int_of_float pos in
    if i >= n - 1 then xs.(n - 1)
    else begin
      let frac = pos -. float_of_int i in
      (xs.(i) *. (1.0 -. frac)) +. (xs.(i + 1) *. frac)
    end
  end

let ecdf data x =
  check_nonempty data "ecdf";
  let count = Array.fold_left (fun acc v -> if v <= x then acc + 1 else acc) 0 data in
  float_of_int count /. float_of_int (Array.length data)

let minimum data =
  check_nonempty data "minimum";
  Array.fold_left Float.min data.(0) data

let maximum data =
  check_nonempty data "maximum";
  Array.fold_left Float.max data.(0) data
