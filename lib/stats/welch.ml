(* Welch's graphical warm-up (initial-transient) procedure, automated.

   Input: a trajectory averaged across replications (one value per time
   bucket). The trajectory is smoothed with a centered moving average —
   shrinking symmetric windows near the edges, as in Welch's original
   procedure — and the truncation point is the first index from which
   the smoothed curve stays inside a tolerance band around the
   steady-state level, estimated from the tail of the smoothed curve.
   Everything is deterministic; NaN buckets (gaps) are skipped by the
   averaging windows. *)

let finite x = Float.is_finite x

let moving_average ~window xs =
  if window < 1 then invalid_arg "Welch.moving_average: window must be >= 1";
  let n = Array.length xs in
  Array.init n (fun i ->
      (* symmetric window, shrunk so it fits inside [0, n) *)
      let w = min window (min i (n - 1 - i)) in
      let sum = ref 0.0 and cnt = ref 0 in
      for j = i - w to i + w do
        if finite xs.(j) then begin
          sum := !sum +. xs.(j);
          incr cnt
        end
      done;
      if !cnt > 0 then !sum /. float_of_int !cnt else nan)

let tail_mean ?(fraction = 0.5) xs =
  let n = Array.length xs in
  let from = n - max 1 (int_of_float (fraction *. float_of_int n)) in
  let sum = ref 0.0 and cnt = ref 0 in
  for i = max 0 from to n - 1 do
    if finite xs.(i) then begin
      sum := !sum +. xs.(i);
      incr cnt
    end
  done;
  if !cnt > 0 then !sum /. float_of_int !cnt else nan

let truncation_index ?window ?(tolerance = 0.05) xs =
  let n = Array.length xs in
  if n = 0 then None
  else begin
    let window =
      match window with Some w -> w | None -> max 1 (n / 10)
    in
    let smooth = moving_average ~window xs in
    let level = tail_mean smooth in
    if not (finite level) then None
    else begin
      (* the band is relative to the steady-state level, with an
         absolute floor so a level near zero doesn't demand exactness *)
      let band = Float.max (tolerance *. Float.abs level) 1e-9 in
      let inside i =
        (not (finite smooth.(i))) || Float.abs (smooth.(i) -. level) <= band
      in
      (* first index from which the smoothed curve never leaves the
         band. The last [window] positions are excluded: their shrunken
         windows barely smooth, so raw noise there would veto any
         truncation point (Welch's plots likewise stop at m − w) *)
      let last = max 0 (n - 1 - window) in
      let cut = ref (last + 1) in
      (try
         for i = last downto 0 do
           if inside i then cut := i else raise Exit
         done
       with Exit -> ());
      if !cut > last then None else Some !cut
    end
  end
