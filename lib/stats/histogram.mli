(** Equal-width histograms and the empirical densities of Section 2.

    Following the paper: if the i-th observation interval has midpoint
    [xᵢ] and [fᵢ] of the [n] observations fall into it, the empirical
    probability is [pᵢ = fᵢ/n] and the empirical density is
    [dᵢ = pᵢ/δᵢ] where [δᵢ] is the interval width. *)

type t

val build : bins:int -> ?range:float * float -> float array -> t
(** [build ~bins data] bins [data] into [bins] equal-width intervals
    covering [range] (default: [min data, max data]). Observations
    outside the range are clamped into the end bins. Raises
    [Invalid_argument] on empty data or nonpositive [bins]. *)

val bins : t -> int
val total : t -> int
(** Number of observations. *)

val midpoints : t -> float array
(** Interval midpoints [xᵢ]. *)

val counts : t -> int array
(** Frequencies [fᵢ]. *)

val probabilities : t -> float array
(** [pᵢ = fᵢ/n]. *)

val densities : t -> float array
(** [dᵢ = pᵢ/δᵢ]. *)

val width : t -> float
(** Common interval width δ. *)

val empirical_cdf_points : t -> (float * float) array
(** [(xᵢ, F̃(xᵢ))] with [F̃(xᵢ) = Σ_{j<=i} pⱼ] (paper, eq. (3)) —
    the points at which the paper evaluates the KS statistic. *)

val moment : t -> int -> float
(** Estimated k-th moment [M̃ₖ = Σ xᵢᵏ pᵢ] (paper, eq. (1)). *)

val mean : t -> float
val variance : t -> float
(** [M̃₂ − M̃₁²] (paper, eq. (2)). *)

val scv : t -> float
(** Estimated squared coefficient of variation [M̃₂/M̃₁² − 1]. *)

val pp : Format.formatter -> t -> unit
(** Text rendering (midpoint, count, density per line). *)
