(* All fields are floats on purpose: an all-float record is stored flat
   by the OCaml runtime, so [add] mutates raw float words and never
   boxes — this accumulator sits on the simulator's per-completion path.
   The count stays exact as a float up to 2^53 observations. *)

type t = { mutable n : float; mutable mean : float; mutable m2 : float }

let create () = { n = 0.0; mean = 0.0; m2 = 0.0 }

let reset acc =
  acc.n <- 0.0;
  acc.mean <- 0.0;
  acc.m2 <- 0.0

let[@inline] add acc x =
  acc.n <- acc.n +. 1.0;
  let delta = x -. acc.mean in
  acc.mean <- acc.mean +. (delta /. acc.n);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean))

let count acc = int_of_float acc.n

let mean acc = acc.mean

let variance acc = if acc.n < 2.0 then 0.0 else acc.m2 /. (acc.n -. 1.0)

let std_dev acc = sqrt (variance acc)

let merge a b =
  if a.n = 0.0 then { n = b.n; mean = b.mean; m2 = b.m2 }
  else if b.n = 0.0 then { n = a.n; mean = a.mean; m2 = a.m2 }
  else begin
    let n = a.n +. b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. b.n /. n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. a.n *. b.n /. n) in
    { n; mean; m2 }
  end
