type t = { mutable n : int; mutable mean : float; mutable m2 : float }

let create () = { n = 0; mean = 0.0; m2 = 0.0 }

let add acc x =
  acc.n <- acc.n + 1;
  let delta = x -. acc.mean in
  acc.mean <- acc.mean +. (delta /. float_of_int acc.n);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean))

let count acc = acc.n

let mean acc = acc.mean

let variance acc = if acc.n < 2 then 0.0 else acc.m2 /. float_of_int (acc.n - 1)

let std_dev acc = sqrt (variance acc)

let merge a b =
  if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
  else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = float_of_int n in
    let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
    in
    { n; mean; m2 }
  end
