type t = {
  lo : float;
  width : float;
  counts : int array;
  total : int;
}

let build ~bins ?range data =
  if bins <= 0 then invalid_arg "Histogram.build: bins must be positive";
  let n = Array.length data in
  if n = 0 then invalid_arg "Histogram.build: empty data";
  let lo, hi =
    match range with
    | Some (lo, hi) ->
        if hi <= lo then invalid_arg "Histogram.build: empty range";
        (lo, hi)
    | None ->
        let lo = Array.fold_left Float.min data.(0) data in
        let hi = Array.fold_left Float.max data.(0) data in
        if hi = lo then (lo, lo +. 1.0) else (lo, hi)
  in
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = max 0 (min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    data;
  { lo; width; counts; total = n }

let bins h = Array.length h.counts

let total h = h.total

let width h = h.width

let midpoints h =
  Array.init (bins h) (fun i ->
      h.lo +. ((float_of_int i +. 0.5) *. h.width))

let counts h = Array.copy h.counts

let probabilities h =
  Array.map (fun c -> float_of_int c /. float_of_int h.total) h.counts

let densities h = Array.map (fun p -> p /. h.width) (probabilities h)

let empirical_cdf_points h =
  let xs = midpoints h in
  let ps = probabilities h in
  let acc = ref 0.0 in
  Array.init (bins h) (fun i ->
      acc := !acc +. ps.(i);
      (xs.(i), !acc))

let moment h k =
  if k < 1 then invalid_arg "Histogram.moment: k must be >= 1";
  let xs = midpoints h in
  let ps = probabilities h in
  let acc = ref 0.0 in
  for i = 0 to bins h - 1 do
    acc := !acc +. ((xs.(i) ** float_of_int k) *. ps.(i))
  done;
  !acc

let mean h = moment h 1

let variance h =
  let m1 = mean h in
  moment h 2 -. (m1 *. m1)

let scv h =
  let m1 = mean h in
  (moment h 2 /. (m1 *. m1)) -. 1.0

let pp ppf h =
  let xs = midpoints h in
  let ds = densities h in
  Format.fprintf ppf "@[<v>";
  for i = 0 to bins h - 1 do
    Format.fprintf ppf "%12.5g %8d %12.6g" xs.(i) h.counts.(i) ds.(i);
    if i < bins h - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
