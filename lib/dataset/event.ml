type t = {
  server_id : int;
  event_time : float;
  outage_duration : float;
  time_between_events : float;
}

let operative_period e = e.time_between_events -. e.outage_duration

let is_anomalous e = e.time_between_events < e.outage_duration

let pp ppf e =
  Format.fprintf ppf "server=%d t=%.4f outage=%.4f tbe=%.4f" e.server_id
    e.event_time e.outage_duration e.time_between_events
