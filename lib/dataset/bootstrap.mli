(** Bootstrap confidence intervals for the fitted hyperexponential
    parameters.

    The paper reports point estimates only; resampling the cleaned
    periods with replacement and refitting quantifies how much the
    140k-row data set actually pins the parameters down. *)

type interval = {
  estimate : float;  (** Fit on the original sample. *)
  lo : float;  (** Lower percentile bound. *)
  hi : float;  (** Upper percentile bound. *)
}

type h2_intervals = {
  weight1 : interval;  (** Weight of the first (faster) phase. *)
  rate1 : interval;
  rate2 : interval;
  mean : interval;
  scv : interval;
  replicates : int;  (** Successful bootstrap refits. *)
  failed : int;  (** Resamples whose moments admitted no H2 fit. *)
}

val h2_fit :
  ?replicates:int ->
  ?confidence:float ->
  ?seed:int ->
  float array ->
  (h2_intervals, Urs_prob.Fit.error) result
(** [h2_fit samples] fits a three-moment H2 to [samples] and to
    [replicates] (default 200) bootstrap resamples, returning percentile
    intervals at the given [confidence] (default 0.95). Deterministic in
    [seed] (default 1). Fails only if the original sample admits no
    fit. *)

val pp_interval : Format.formatter -> interval -> unit
val pp_h2_intervals : Format.formatter -> h2_intervals -> unit
