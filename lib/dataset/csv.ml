let header = "server_id,event_time,outage_duration,time_between_events"

let row_to_string e =
  Printf.sprintf "%d,%.17g,%.17g,%.17g" e.Event.server_id e.Event.event_time
    e.Event.outage_duration e.Event.time_between_events

let to_string events =
  let buf = Buffer.create (64 * (Array.length events + 1)) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Array.iter
    (fun e ->
      Buffer.add_string buf (row_to_string e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let parse_line lineno line =
  match String.split_on_char ',' (String.trim line) with
  | [ sid; t; outage; tbe ] -> (
      try
        {
          Event.server_id = int_of_string (String.trim sid);
          event_time = float_of_string (String.trim t);
          outage_duration = float_of_string (String.trim outage);
          time_between_events = float_of_string (String.trim tbe);
        }
      with _ -> failwith (Printf.sprintf "Csv: malformed line %d" lineno))
  | _ -> failwith (Printf.sprintf "Csv: malformed line %d" lineno)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> List.rev acc
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || (lineno = 1 && String.equal trimmed header) then
          go (lineno + 1) acc rest
        else go (lineno + 1) (parse_line lineno trimmed :: acc) rest
  in
  Array.of_list (go 1 [] lines)

let write path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string events))

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_string s)
