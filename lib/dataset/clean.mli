(** The paper's data-cleaning step: rows with
    [time_between_events < outage_duration] are inconsistent (< 4% of
    the real data) and are discarded; from the remaining rows the
    operative and inoperative period samples are extracted. *)

type t = {
  operative_periods : float array;
  inoperative_periods : float array;
  anomalies : int;  (** Rows discarded. *)
  total : int;  (** Rows seen. *)
}

val clean : Event.t array -> t

val anomaly_fraction : t -> float
(** [anomalies / total]. *)

val pp_summary : Format.formatter -> t -> unit
