(** One row of a breakdown event log, mirroring the fields of the Sun
    Microsystems data set used in §2 (Figure 2): each event is a server
    breakdown with its outage duration and the time until the same
    server's next breakdown. The operative period is derived as
    [time_between_events − outage_duration]. *)

type t = {
  server_id : int;
  event_time : float;  (** Absolute time of the breakdown. *)
  outage_duration : float;  (** Time the server was inoperative. *)
  time_between_events : float;
      (** Time from this breakdown to the server's next breakdown. *)
}

val operative_period : t -> float
(** [time_between_events − outage_duration]; meaningful only for
    non-anomalous rows. *)

val is_anomalous : t -> bool
(** True when [time_between_events < outage_duration] — the
    inconsistent rows (< 4% of the real data set) that the paper
    discards. *)

val pp : Format.formatter -> t -> unit
