module Hist = Urs_stats.Histogram
module E = Urs_stats.Empirical
module Ks = Urs_prob.Ks
module Fit = Urs_prob.Fit
module Exp = Urs_prob.Exponential
module H2 = Urs_prob.Hyperexponential

type side_report = {
  histogram : Hist.t;
  sample_moments : float array;
  histogram_moments : float array;
  scv : float;
  exponential_fit : Exp.t;
  exponential_ks : Ks.decision;
  h2_fit : H2.t;
  h2_ks : Ks.decision;
}

type report = {
  cleaned : Clean.t;
  operative : side_report;
  inoperative : side_report;
}

let analyze_side ~bins ~significance data =
  let histogram = Hist.build ~bins data in
  let sample_moments = E.moments data 5 in
  let histogram_moments = Array.init 5 (fun k -> Hist.moment histogram (k + 1)) in
  let scv = E.scv data in
  let exponential_fit = Fit.exponential_of_mean sample_moments.(0) in
  let points = Hist.empirical_cdf_points histogram in
  let exponential_ks =
    Ks.test_points ~significance
      ~hypothesized:(Exp.cdf exponential_fit)
      ~points
  in
  match
    Fit.h2_of_three_moments ~m1:sample_moments.(0) ~m2:sample_moments.(1)
      ~m3:sample_moments.(2)
  with
  | Error _ as e -> (
      (* fall back to the brute-force search on the first three moments *)
      match Fit.hn_of_moments ~n:2 ~moments:sample_moments with
      | Error err -> (match e with Error first -> Error first | Ok _ -> Error err)
      | Ok (h2_fit, _) ->
          let h2_ks =
            Ks.test_points ~significance ~hypothesized:(H2.cdf h2_fit) ~points
          in
          Ok
            {
              histogram;
              sample_moments;
              histogram_moments;
              scv;
              exponential_fit;
              exponential_ks;
              h2_fit;
              h2_ks;
            })
  | Ok h2_fit ->
      let h2_ks =
        Ks.test_points ~significance ~hypothesized:(H2.cdf h2_fit) ~points
      in
      Ok
        {
          histogram;
          sample_moments;
          histogram_moments;
          scv;
          exponential_fit;
          exponential_ks;
          h2_fit;
          h2_ks;
        }

let analyze ?(op_bins = 50) ?(inop_bins = 40) ?(significance = 0.05) events =
  let cleaned = Clean.clean events in
  if Array.length cleaned.Clean.operative_periods = 0 then Error `Invalid_moments
  else
    match
      analyze_side ~bins:op_bins ~significance cleaned.Clean.operative_periods
    with
    | Error e -> Error e
    | Ok operative -> (
        match
          analyze_side ~bins:inop_bins ~significance
            cleaned.Clean.inoperative_periods
        with
        | Error e -> Error e
        | Ok inoperative -> Ok { cleaned; operative; inoperative })

let density_table hist fitted_pdf ~upper =
  let xs = Hist.midpoints hist in
  let ds = Hist.densities hist in
  let rows = ref [] in
  for i = Hist.bins hist - 1 downto 0 do
    if xs.(i) <= upper then rows := (xs.(i), ds.(i), fitted_pdf xs.(i)) :: !rows
  done;
  !rows

let pp_side ppf (label, s) =
  Format.fprintf ppf
    "@[<v 2>%s periods:@,mean=%.4f scv=%.4f@,exponential fit: %a — %a@,\
     hyperexponential fit: %a — %a@]"
    label s.sample_moments.(0) s.scv Exp.pp s.exponential_fit Ks.pp_decision
    s.exponential_ks H2.pp s.h2_fit Ks.pp_decision s.h2_ks

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@,%a@]" Clean.pp_summary r.cleaned pp_side
    ("operative", r.operative) pp_side
    ("inoperative", r.inoperative)
