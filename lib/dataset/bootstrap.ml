module H2 = Urs_prob.Hyperexponential
module Fit = Urs_prob.Fit
module Rng = Urs_prob.Rng

type interval = { estimate : float; lo : float; hi : float }

type h2_intervals = {
  weight1 : interval;
  rate1 : interval;
  rate2 : interval;
  mean : interval;
  scv : interval;
  replicates : int;
  failed : int;
}

let fit_of samples =
  let ms = Urs_stats.Empirical.moments samples 3 in
  Fit.h2_of_three_moments ~m1:ms.(0) ~m2:ms.(1) ~m3:ms.(2)

let resample rng samples =
  let n = Array.length samples in
  Array.init n (fun _ -> samples.(Rng.int rng n))

let percentile_interval ~confidence ~estimate values =
  let q = Urs_stats.Empirical.quantile values in
  let a = (1.0 -. confidence) /. 2.0 in
  { estimate; lo = q a; hi = q (1.0 -. a) }

let h2_fit ?(replicates = 200) ?(confidence = 0.95) ?(seed = 1) samples =
  if replicates < 10 then invalid_arg "Bootstrap.h2_fit: need >= 10 replicates";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Bootstrap.h2_fit: confidence in (0,1)";
  match fit_of samples with
  | Error e -> Error e
  | Ok base ->
      let rng = Rng.create seed in
      let w1s = ref [] and r1s = ref [] and r2s = ref [] in
      let means = ref [] and scvs = ref [] in
      let ok = ref 0 and failed = ref 0 in
      for _ = 1 to replicates do
        match fit_of (resample rng samples) with
        | Error _ -> incr failed
        | Ok fit ->
            incr ok;
            let w = H2.weights fit and r = H2.rates fit in
            w1s := w.(0) :: !w1s;
            r1s := r.(0) :: !r1s;
            r2s := r.(1) :: !r2s;
            means := H2.mean fit :: !means;
            scvs := H2.scv fit :: !scvs
      done;
      let iv estimate lst =
        percentile_interval ~confidence ~estimate (Array.of_list lst)
      in
      let w = H2.weights base and r = H2.rates base in
      Ok
        {
          weight1 = iv w.(0) !w1s;
          rate1 = iv r.(0) !r1s;
          rate2 = iv r.(1) !r2s;
          mean = iv (H2.mean base) !means;
          scv = iv (H2.scv base) !scvs;
          replicates = !ok;
          failed = !failed;
        }

let pp_interval ppf iv =
  Format.fprintf ppf "%.5g [%.5g, %.5g]" iv.estimate iv.lo iv.hi

let pp_h2_intervals ppf b =
  Format.fprintf ppf
    "@[<v 2>H2 fit with bootstrap intervals (%d replicates, %d failed):@,\
     weight1 = %a@,rate1   = %a@,rate2   = %a@,mean    = %a@,scv     = %a@]"
    b.replicates b.failed pp_interval b.weight1 pp_interval b.rate1
    pp_interval b.rate2 pp_interval b.mean pp_interval b.scv
