type t = {
  operative_periods : float array;
  inoperative_periods : float array;
  anomalies : int;
  total : int;
}

let clean events =
  let ops = ref [] and inops = ref [] in
  let anomalies = ref 0 in
  Array.iter
    (fun e ->
      if Event.is_anomalous e then incr anomalies
      else begin
        ops := Event.operative_period e :: !ops;
        inops := e.Event.outage_duration :: !inops
      end)
    events;
  {
    operative_periods = Array.of_list (List.rev !ops);
    inoperative_periods = Array.of_list (List.rev !inops);
    anomalies = !anomalies;
    total = Array.length events;
  }

let anomaly_fraction t =
  if t.total = 0 then 0.0 else float_of_int t.anomalies /. float_of_int t.total

let pp_summary ppf t =
  Format.fprintf ppf "%d rows, %d anomalous (%.2f%%), %d usable periods"
    t.total t.anomalies
    (100.0 *. anomaly_fraction t)
    (Array.length t.operative_periods)
