(** Synthetic breakdown-log generator — the stand-in for the proprietary
    Sun Microsystems data set (see DESIGN.md, substitutions).

    Each server is an alternating renewal process: operative periods and
    outage durations are drawn from ground-truth distributions; each
    breakdown produces one log row whose [time_between_events] is the
    outage plus the following operative period, exactly the structure of
    the paper's Figure 2. A configurable fraction of rows is corrupted
    into anomalies ([time_between_events < outage_duration]) to exercise
    the cleaning step. *)

type config = {
  rows : int;  (** Total rows to emit (the real set had 140,000). *)
  servers : int;  (** Number of distinct servers in the log. *)
  operative : Urs_prob.Distribution.t;  (** Ground-truth operative law. *)
  inoperative : Urs_prob.Distribution.t;  (** Ground-truth outage law. *)
  anomaly_fraction : float;  (** Fraction of corrupted rows (~0.04). *)
  seed : int;
}

val default : config
(** 140,000 rows over 200 servers, ground truth equal to the paper's
    fitted distributions (operative H2(0.7246@0.1663, 0.2754@0.0091);
    inoperative H2(0.9303@25.0043, 0.0697@1.6346)), 3.5% anomalies,
    seed 2006. *)

val generate : config -> Event.t array
(** Deterministic in [config.seed]. *)
