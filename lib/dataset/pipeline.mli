(** The complete Section-2 analysis pipeline: clean the log, build the
    empirical densities, estimate moments, fit exponential and
    hyperexponential distributions, and run the Kolmogorov–Smirnov
    tests — reproducing the paper's Figures 3–4 and its accept/reject
    decisions. *)

type side_report = {
  histogram : Urs_stats.Histogram.t;
      (** Full-range histogram used for the KS points. *)
  sample_moments : float array;  (** First five raw sample moments. *)
  histogram_moments : float array;
      (** The paper's estimator: moments of the binned density (eq. 1). *)
  scv : float;  (** Estimated squared coefficient of variation. *)
  exponential_fit : Urs_prob.Exponential.t;
      (** Exponential with the sample mean. *)
  exponential_ks : Urs_prob.Ks.decision;
  h2_fit : Urs_prob.Hyperexponential.t;  (** Three-moment H2 fit. *)
  h2_ks : Urs_prob.Ks.decision;
}

type report = {
  cleaned : Clean.t;
  operative : side_report;
  inoperative : side_report;
}

val analyze :
  ?op_bins:int ->
  ?inop_bins:int ->
  ?significance:float ->
  Event.t array ->
  (report, Urs_prob.Fit.error) result
(** Run the full pipeline. Defaults follow the paper: [op_bins = 50],
    [inop_bins = 40], [significance = 0.05]. *)

val density_table :
  Urs_stats.Histogram.t ->
  (float -> float) ->
  upper:float ->
  (float * float * float) list
(** [(midpoint, empirical density, fitted density)] rows restricted to
    midpoints below [upper] — the data behind Figures 3 and 4. *)

val pp_report : Format.formatter -> report -> unit
