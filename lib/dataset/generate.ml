module D = Urs_prob.Distribution
module Rng = Urs_prob.Rng

type config = {
  rows : int;
  servers : int;
  operative : D.t;
  inoperative : D.t;
  anomaly_fraction : float;
  seed : int;
}

let default =
  {
    rows = 140_000;
    servers = 200;
    operative =
      D.hyperexponential ~weights:[| 0.7246; 0.2754 |]
        ~rates:[| 0.1663; 0.0091 |];
    inoperative =
      D.hyperexponential ~weights:[| 0.9303; 0.0697 |]
        ~rates:[| 25.0043; 1.6346 |];
    anomaly_fraction = 0.035;
    seed = 2006;
  }

let generate cfg =
  if cfg.rows < 1 then invalid_arg "Generate.generate: rows must be >= 1";
  if cfg.servers < 1 then invalid_arg "Generate.generate: servers must be >= 1";
  if cfg.anomaly_fraction < 0.0 || cfg.anomaly_fraction >= 1.0 then
    invalid_arg "Generate.generate: anomaly_fraction in [0,1)";
  let rng = Rng.create cfg.seed in
  (* per-server clocks; each server starts mid-life with an operative
     period, then its first logged event is its first breakdown *)
  let clocks =
    Array.init cfg.servers (fun _ -> D.sample cfg.operative rng)
  in
  let events =
    Array.init cfg.rows (fun _ ->
        let sid = Rng.int rng cfg.servers in
        let event_time = clocks.(sid) in
        let outage = D.sample cfg.inoperative rng in
        let next_operative = D.sample cfg.operative rng in
        clocks.(sid) <- event_time +. outage +. next_operative;
        let tbe = outage +. next_operative in
        if Rng.float rng < cfg.anomaly_fraction then
          (* corrupted row: the recorded time-between-events is an
             impossible fraction of the outage (e.g. clock skew between
             monitoring agents) *)
          {
            Event.server_id = sid;
            event_time;
            outage_duration = outage;
            time_between_events = outage *. Rng.float rng;
          }
        else
          {
            Event.server_id = sid;
            event_time;
            outage_duration = outage;
            time_between_events = tbe;
          })
  in
  events
