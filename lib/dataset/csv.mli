(** CSV persistence for event logs, so generated data sets can be
    inspected or re-used outside the library. Format:
    [server_id,event_time,outage_duration,time_between_events] with a
    header line. *)

val write : string -> Event.t array -> unit
(** Write a log to a file; raises [Sys_error] on I/O failure. *)

val read : string -> Event.t array
(** Read a log back. Raises [Failure] with a line number on malformed
    input; tolerates a missing header. *)

val to_string : Event.t array -> string
val of_string : string -> Event.t array
