(** One-dimensional root finding: bisection and Brent's method.

    Used by the geometric approximation to locate the dominant
    eigenvalue as the largest root of [det Q(z)] in [(0, 1)]. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f a b] finds a root of [f] in [[a, b]]; requires
    [f a * f b <= 0], otherwise raises [Invalid_argument]. Default
    [tol = 1e-12] on the interval width, [max_iter = 200]. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's method (inverse quadratic interpolation with bisection
    fallback); same contract as {!bisect} but faster convergence. *)

val largest_root_in :
  ?scan_points:int ->
  ?tol:float ->
  (float -> float) ->
  float ->
  float ->
  float option
(** [largest_root_in f a b] scans [scan_points] (default [200]) equal
    subintervals of [(a, b)] from the right and returns the root in the
    rightmost sign-change bracket, refined by {!brent}; [None] when no
    sign change is found. Points where [f] is not finite are skipped. *)
