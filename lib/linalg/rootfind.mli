(** One-dimensional root finding: bisection and Brent's method.

    Used by the geometric approximation to locate the dominant
    eigenvalue as the largest root of [det Q(z)] in [(0, 1)].

    Both solvers report iteration exhaustion by raising {!Exhausted}
    (mirroring {!Qr_eig.No_convergence}) instead of silently returning
    their best guess, and accept an optional per-iteration [observe]
    callback — this library sits below the observability layer, so the
    caller wires the callback to a recorder. The callback only reads
    values the iteration already computed; enabling it cannot change
    the result. *)

exception
  Exhausted of { name : string; iterations : int; width : float; best : float }
(** Raised when [max_iter] is exhausted before the bracket narrows to
    tolerance: [name] is ["bisect"] or ["brent"], [width] the remaining
    bracket width and [best] the best estimate at that point. *)

val bisect :
  ?tol:float ->
  ?max_iter:int ->
  ?observe:(iteration:int -> width:float -> best:float -> unit) ->
  (float -> float) ->
  float ->
  float ->
  float
(** [bisect f a b] finds a root of [f] in [[a, b]]; requires
    [f a * f b <= 0], otherwise raises [Invalid_argument]. Default
    [tol = 1e-12] on the interval width, [max_iter = 200] (raises
    {!Exhausted} when spent). [observe] is invoked once per iteration
    with the narrowed bracket. *)

val brent :
  ?tol:float ->
  ?max_iter:int ->
  ?observe:(iteration:int -> width:float -> best:float -> unit) ->
  (float -> float) ->
  float ->
  float ->
  float
(** Brent's method (inverse quadratic interpolation with bisection
    fallback); same contract as {!bisect} but faster convergence.
    Default [tol = 1e-13]. *)

val largest_root_in :
  ?scan_points:int ->
  ?tol:float ->
  ?max_iter:int ->
  ?observe:(iteration:int -> width:float -> best:float -> unit) ->
  (float -> float) ->
  float ->
  float ->
  float option
(** [largest_root_in f a b] scans [scan_points] (default [200]) equal
    subintervals of [(a, b)] from the right and returns the root in the
    rightmost sign-change bracket, refined by {!brent} (to which
    [max_iter] and [observe] are forwarded — {!Exhausted} propagates);
    [None] when no sign change is found. Points where [f] is not finite
    are skipped. *)
