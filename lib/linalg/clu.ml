(* Complex LU with partial pivoting. Internally the packed factors are
   stored as two flat float arrays (real and imaginary parts): boxed
   [Complex.t] arithmetic in the O(n³) elimination loop costs an
   allocation per flop without flambda, which made this the hot spot of
   the spectral solver. *)

type t = {
  n : int;
  re : float array; (* packed L (unit diag, below) and U, real parts *)
  im : float array;
  perm : int array;
  sign : int;
  min_pivot : float;
}

exception Singular

let dim f = f.n

(* [patch]: when [Some eps], zero pivots are replaced by [eps] so the
   factorization always completes (inverse-iteration use). *)
let factor_general ?patch a =
  if a.Cmatrix.rows <> a.Cmatrix.cols then invalid_arg "Clu.factor: not square";
  let n = a.Cmatrix.rows in
  let re = Array.make (n * n) 0.0 and im = Array.make (n * n) 0.0 in
  Array.iteri
    (fun k (z : Cx.t) ->
      re.(k) <- z.Complex.re;
      im.(k) <- z.Complex.im)
    a.Cmatrix.data;
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  let min_pivot = ref infinity in
  let patched = ref false in
  let singular = ref false in
  (try
     for k = 0 to n - 1 do
       (* pivot search in column k by |re| + |im| *)
       let piv = ref k in
       let best = ref (abs_float re.((k * n) + k) +. abs_float im.((k * n) + k)) in
       for i = k + 1 to n - 1 do
         let v = abs_float re.((i * n) + k) +. abs_float im.((i * n) + k) in
         if v > !best then begin
           best := v;
           piv := i
         end
       done;
       if !best = 0.0 then begin
         match patch with
         | None ->
             singular := true;
             raise Exit
         | Some eps ->
             re.((k * n) + k) <- eps;
             patched := true
       end;
       if !piv <> k then begin
         let rk = k * n and rp = !piv * n in
         for j = 0 to n - 1 do
           let tr = re.(rk + j) and ti = im.(rk + j) in
           re.(rk + j) <- re.(rp + j);
           im.(rk + j) <- im.(rp + j);
           re.(rp + j) <- tr;
           im.(rp + j) <- ti
         done;
         let tp = perm.(k) in
         perm.(k) <- perm.(!piv);
         perm.(!piv) <- tp;
         sign := - !sign
       end;
       let rk = k * n in
       let pr = re.(rk + k) and pi = im.(rk + k) in
       let pm = sqrt ((pr *. pr) +. (pi *. pi)) in
       if pm < !min_pivot then min_pivot := pm;
       let denom = (pr *. pr) +. (pi *. pi) in
       for i = k + 1 to n - 1 do
         let ri = i * n in
         let ar = re.(ri + k) and ai = im.(ri + k) in
         if ar <> 0.0 || ai <> 0.0 then begin
           (* factor = a / pivot *)
           let fr = ((ar *. pr) +. (ai *. pi)) /. denom in
           let fi = ((ai *. pr) -. (ar *. pi)) /. denom in
           re.(ri + k) <- fr;
           im.(ri + k) <- fi;
           for j = k + 1 to n - 1 do
             let kr = re.(rk + j) and ki = im.(rk + j) in
             re.(ri + j) <- re.(ri + j) -. ((fr *. kr) -. (fi *. ki));
             im.(ri + j) <- im.(ri + j) -. ((fr *. ki) +. (fi *. kr))
           done
         end
       done
     done
   with Exit -> ());
  if !singular then Error `Singular
  else Ok ({ n; re; im; perm; sign = !sign; min_pivot = !min_pivot }, !patched)

let factor a =
  match factor_general a with Ok (f, _) -> Ok f | Error e -> Error e

let factor_exn a =
  match factor_general a with Ok (f, _) -> f | Error `Singular -> raise Singular

let factor_regularized a =
  let eps = 1e-300 +. (epsilon_float *. Cmatrix.max_abs a) in
  match factor_general ~patch:eps a with
  | Ok (f, patched) -> (f, patched)
  | Error `Singular -> assert false

let div_by ~dr ~di xr xi =
  (* (xr + i·xi) / (dr + i·di) *)
  let denom = (dr *. dr) +. (di *. di) in
  if denom = 0.0 then raise Singular;
  (((xr *. dr) +. (xi *. di)) /. denom, ((xi *. dr) -. (xr *. di)) /. denom)

let solve f b =
  let n = f.n in
  if Cvec.dim b <> n then invalid_arg "Clu.solve: dimension mismatch";
  let xr = Array.make n 0.0 and xi = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let (z : Cx.t) = b.(f.perm.(i)) in
    xr.(i) <- z.Complex.re;
    xi.(i) <- z.Complex.im
  done;
  for i = 1 to n - 1 do
    let ri = i * n in
    let ar = ref xr.(i) and ai = ref xi.(i) in
    for j = 0 to i - 1 do
      let lr = f.re.(ri + j) and li = f.im.(ri + j) in
      ar := !ar -. ((lr *. xr.(j)) -. (li *. xi.(j)));
      ai := !ai -. ((lr *. xi.(j)) +. (li *. xr.(j)))
    done;
    xr.(i) <- !ar;
    xi.(i) <- !ai
  done;
  for i = n - 1 downto 0 do
    let ri = i * n in
    let ar = ref xr.(i) and ai = ref xi.(i) in
    for j = i + 1 to n - 1 do
      let ur = f.re.(ri + j) and ui = f.im.(ri + j) in
      ar := !ar -. ((ur *. xr.(j)) -. (ui *. xi.(j)));
      ai := !ai -. ((ur *. xi.(j)) +. (ui *. xr.(j)))
    done;
    let qr, qi = div_by ~dr:f.re.(ri + i) ~di:f.im.(ri + i) !ar !ai in
    xr.(i) <- qr;
    xi.(i) <- qi
  done;
  Array.init n (fun i -> Cx.make xr.(i) xi.(i))

let solve_transposed f b =
  let n = f.n in
  if Cvec.dim b <> n then invalid_arg "Clu.solve_transposed: dimension mismatch";
  let yr = Array.make n 0.0 and yi = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let (z : Cx.t) = b.(i) in
    yr.(i) <- z.Complex.re;
    yi.(i) <- z.Complex.im
  done;
  (* Uᵀ y = b: forward substitution down the columns of U *)
  for i = 0 to n - 1 do
    let ar = ref yr.(i) and ai = ref yi.(i) in
    for j = 0 to i - 1 do
      let ur = f.re.((j * n) + i) and ui = f.im.((j * n) + i) in
      ar := !ar -. ((ur *. yr.(j)) -. (ui *. yi.(j)));
      ai := !ai -. ((ur *. yi.(j)) +. (ui *. yr.(j)))
    done;
    let qr, qi = div_by ~dr:f.re.((i * n) + i) ~di:f.im.((i * n) + i) !ar !ai in
    yr.(i) <- qr;
    yi.(i) <- qi
  done;
  (* Lᵀ z = y: backward substitution *)
  for i = n - 1 downto 0 do
    let ar = ref yr.(i) and ai = ref yi.(i) in
    for j = i + 1 to n - 1 do
      let lr = f.re.((j * n) + i) and li = f.im.((j * n) + i) in
      ar := !ar -. ((lr *. yr.(j)) -. (li *. yi.(j)));
      ai := !ai -. ((lr *. yi.(j)) +. (li *. yr.(j)))
    done;
    yr.(i) <- !ar;
    yi.(i) <- !ai
  done;
  let x = Array.make n Cx.zero in
  for i = 0 to n - 1 do
    x.(f.perm.(i)) <- Cx.make yr.(i) yi.(i)
  done;
  x

let solve_matrix f b =
  let n = dim f in
  if b.Cmatrix.rows <> n then invalid_arg "Clu.solve_matrix: dimension mismatch";
  let cols = b.Cmatrix.cols in
  let x = Cmatrix.create n cols in
  for j = 0 to cols - 1 do
    let xj = solve f (Cmatrix.col b j) in
    for i = 0 to n - 1 do
      Cmatrix.set x i j xj.(i)
    done
  done;
  x

let det_of_factor f =
  let n = dim f in
  let acc = ref (Cx.of_float (float_of_int f.sign)) in
  for i = 0 to n - 1 do
    acc := Cx.mul !acc (Cx.make f.re.((i * n) + i) f.im.((i * n) + i))
  done;
  !acc

let det a =
  match factor_general a with
  | Ok (f, _) -> det_of_factor f
  | Error `Singular -> Cx.zero

let smallest_pivot f = f.min_pivot

let inverse a =
  match factor a with
  | Error `Singular -> Error `Singular
  | Ok f -> (
      let n = dim f in
      try
        let inv = Cmatrix.create n n in
        for j = 0 to n - 1 do
          let e = Cvec.create n in
          e.(j) <- Cx.one;
          let x = solve f e in
          for i = 0 to n - 1 do
            Cmatrix.set inv i j x.(i)
          done
        done;
        Ok inv
      with Singular -> Error `Singular)

let solve_system a b =
  match factor a with
  | Error `Singular -> Error `Singular
  | Ok f -> ( try Ok (solve f b) with Singular -> Error `Singular)

(* Deterministic quasi-random start vector, so results are reproducible. *)
let start_vector n =
  Cvec.init n (fun i ->
      let x = sin (float_of_int ((i * 37) + 11)) in
      let y = cos (float_of_int ((i * 53) + 7)) in
      Cx.make (0.5 +. (0.5 *. x)) (0.3 *. y))

let inverse_iteration solve_fn n =
  let x = ref (start_vector n) in
  let scale_unit v = Cvec.scale (Cx.of_float (1.0 /. Cvec.norm2 v)) v in
  x := scale_unit !x;
  for _ = 1 to 4 do
    let y = solve_fn !x in
    x := scale_unit y
  done;
  Cvec.normalize !x

let null_vector a =
  let f, _ = factor_regularized a in
  inverse_iteration (solve f) a.Cmatrix.rows

let left_null_vector a =
  let f, _ = factor_regularized a in
  (* uᵀ with aᵀ uᵀ = 0, i.e. inverse iteration using the transposed solve *)
  inverse_iteration (solve_transposed f) a.Cmatrix.rows
