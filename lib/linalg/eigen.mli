(** Driver for the dense nonsymmetric eigenvalue problem and
    eigenvector extraction by inverse iteration. *)

val eigenvalues :
  ?balance:bool ->
  ?max_iter:int ->
  ?observe:(Qr_eig.progress -> unit) ->
  Matrix.t ->
  Cx.t array
(** All eigenvalues of a square real matrix, as complex numbers in
    conjugate pairs, computed by balancing (optional, default on),
    Hessenberg reduction and double-shift QR. Order is unspecified;
    sort with {!Cx.compare_by_modulus} if needed. [max_iter] and
    [observe] are forwarded to {!Qr_eig.eigenvalues_hessenberg}. *)

val right_eigenvector : Matrix.t -> Cx.t -> Cvec.t
(** [right_eigenvector a z] returns a unit-norm [v] with [a v ≈ z v],
    computed by inverse iteration on [(a - z I)]. [z] should be a
    converged eigenvalue of [a]. *)

val left_eigenvector : Matrix.t -> Cx.t -> Cvec.t
(** [left_eigenvector a z] returns a unit-norm row vector [u] with
    [u a ≈ z u]. *)

val residual_right : Matrix.t -> Cx.t -> Cvec.t -> float
(** [residual_right a z v] is [‖a v − z v‖₂], a convergence diagnostic. *)

val residual_left : Matrix.t -> Cx.t -> Cvec.t -> float
(** [residual_left a z u] is [‖u a − z u‖₂]. *)
