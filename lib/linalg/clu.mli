(** LU factorization with partial pivoting for dense complex matrices.

    Mirrors {!Lu} for [Cmatrix.t]; used to compute determinant values of
    the characteristic matrix polynomial at complex points and for
    inverse iteration when extracting (left) eigenvectors. *)

type t

exception Singular

val factor : Cmatrix.t -> (t, [ `Singular ]) result
(** Factor a square complex matrix; [Error `Singular] when a pivot is
    exactly zero. *)

val factor_exn : Cmatrix.t -> t

val factor_regularized : Cmatrix.t -> t * bool
(** Like {!factor_exn} but replaces exactly-zero pivots with a tiny
    multiple of the matrix norm, so that factorization always succeeds.
    The boolean reports whether any pivot was patched. Intended for
    inverse iteration on (near-)singular matrices. *)

val dim : t -> int
val solve : t -> Cvec.t -> Cvec.t
val solve_transposed : t -> Cvec.t -> Cvec.t

val solve_matrix : t -> Cmatrix.t -> Cmatrix.t
(** [solve_matrix f b] solves [a x = b] column by column. *)

val det : Cmatrix.t -> Cx.t
(** Determinant; [0] for singular matrices. *)

val det_of_factor : t -> Cx.t

val smallest_pivot : t -> float
(** Modulus of the smallest pivot — a cheap singularity indicator. *)

val inverse : Cmatrix.t -> (Cmatrix.t, [ `Singular ]) result

val solve_system : Cmatrix.t -> Cvec.t -> (Cvec.t, [ `Singular ]) result

val null_vector : Cmatrix.t -> Cvec.t
(** [null_vector a] returns an (approximate) unit-norm right null vector
    of a (near-)singular square matrix, computed by inverse iteration on
    a regularized factorization. The result is phase-normalized as in
    {!Cvec.normalize}. *)

val left_null_vector : Cmatrix.t -> Cvec.t
(** Left null vector: [u] with [u a ≈ 0], unit norm. *)
