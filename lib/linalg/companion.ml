let check_dims q0 q1 q2 =
  let s = q0.Matrix.rows in
  if
    (not (Matrix.is_square q0))
    || (not (Matrix.is_square q1))
    || (not (Matrix.is_square q2))
    || q1.Matrix.rows <> s
    || q2.Matrix.rows <> s
  then invalid_arg "Companion: blocks must be square of equal order";
  s

let reversed ~q0 ~q1 ~q2 =
  let s = check_dims q0 q1 q2 in
  let f = Lu.factor_exn q0 in
  let b0 = Lu.solve_matrix f q2 in
  (* Q0⁻¹ Q2 *)
  let b1 = Lu.solve_matrix f q1 in
  (* Q0⁻¹ Q1 *)
  let m = Matrix.create (2 * s) (2 * s) in
  Matrix.blit ~src:(Matrix.identity s) ~dst:m 0 s;
  Matrix.blit ~src:(Matrix.scale (-1.0) b0) ~dst:m s 0;
  Matrix.blit ~src:(Matrix.scale (-1.0) b1) ~dst:m s s;
  m

let eigenvalues_inside_unit_disk ?(tol = 1e-9) ?max_iter ?observe ~q0 ~q1 ~q2
    () =
  let m = reversed ~q0 ~q1 ~q2 in
  let ws = Eigen.eigenvalues ?max_iter ?observe m in
  let zs =
    Array.to_list ws
    |> List.filter_map (fun w ->
           let mw = Cx.modulus w in
           (* |w| > 1 + tol <=> |z| < 1 - tol'; w ≈ 0 is an infinite z *)
           if mw > 1.0 +. tol then Some (Cx.inv w) else None)
  in
  let arr = Array.of_list zs in
  Array.sort Cx.compare_by_modulus arr;
  arr

let evaluate ~q0 ~q1 ~q2 z =
  let s = check_dims q0 q1 q2 in
  let z2 = Cx.mul z z in
  Cmatrix.init s s (fun i j ->
      Cx.add
        (Cx.of_float (Matrix.get q0 i j))
        (Cx.add
           (Cx.scale (Matrix.get q1 i j) z)
           (Cx.scale (Matrix.get q2 i j) z2)))
