(** LU factorization with partial pivoting for dense real matrices.

    Factors a square matrix [a] as [P a = L U] where [P] is a row
    permutation, [L] is unit lower triangular and [U] is upper
    triangular. *)

type t
(** An LU factorization. *)

exception Singular
(** Raised by {!factor_exn} and the solvers when a pivot is exactly zero
    (the matrix is singular to working precision). *)

val factor : Matrix.t -> (t, [ `Singular ]) result
(** [factor a] computes the factorization, or reports singularity. Raises
    [Invalid_argument] if [a] is not square. [a] is not modified. *)

val factor_exn : Matrix.t -> t
(** Like {!factor} but raises {!Singular}. *)

val dim : t -> int
(** Order of the factored matrix. *)

val pivot_condition : t -> float
(** Ratio of the largest to the smallest pivot modulus [max|u_ii| /
    min|u_ii|] — a cheap lower-bound indicator for the condition number
    of the factored matrix ([infinity] when a pivot is exactly zero).
    Used by the numerical-health diagnostics; a rigorous estimate would
    need Hager's algorithm, which the solvers do not warrant. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] solves [a x = b]. *)

val solve_transposed : t -> Vec.t -> Vec.t
(** [solve_transposed lu b] solves [aᵀ x = b] using the same factors. *)

val solve_matrix : t -> Matrix.t -> Matrix.t
(** [solve_matrix lu b] solves [a x = b] column by column. *)

val det : Matrix.t -> float
(** Determinant via LU; [0.] for singular matrices. *)

val det_of_factor : t -> float
(** Determinant from an existing factorization. *)

val log_abs_det : Matrix.t -> float * int
(** [(log |det|, sign)] with sign in {-1, 0, 1}; avoids overflow for large
    matrices. Sign [0] means singular. *)

val inverse : Matrix.t -> (Matrix.t, [ `Singular ]) result
(** Matrix inverse. *)

val solve_system : Matrix.t -> Vec.t -> (Vec.t, [ `Singular ]) result
(** One-shot [a x = b] convenience wrapper. *)
