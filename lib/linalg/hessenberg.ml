(* Osborne balancing, following the classical EISPACK/Numerical-Recipes
   algorithm with radix-2 scaling (exact similarity, no rounding). *)
let balance a0 =
  if not (Matrix.is_square a0) then invalid_arg "Hessenberg.balance: not square";
  let a = Matrix.copy a0 in
  let n = a.Matrix.rows in
  let radix = 2.0 in
  let sqrdx = radix *. radix in
  let continue_scaling = ref true in
  while !continue_scaling do
    continue_scaling := false;
    for i = 0 to n - 1 do
      let c = ref 0.0 and r = ref 0.0 in
      for j = 0 to n - 1 do
        if j <> i then begin
          c := !c +. abs_float (Matrix.get a j i);
          r := !r +. abs_float (Matrix.get a i j)
        end
      done;
      if !c <> 0.0 && !r <> 0.0 then begin
        let g = ref (!r /. radix) in
        let f = ref 1.0 in
        let s = !c +. !r in
        while !c < !g do
          f := !f *. radix;
          c := !c *. sqrdx
        done;
        g := !r *. radix;
        while !c > !g do
          f := !f /. radix;
          c := !c /. sqrdx
        done;
        if (!c +. !r) /. !f < 0.95 *. s then begin
          continue_scaling := true;
          let ginv = 1.0 /. !f in
          for j = 0 to n - 1 do
            Matrix.set a i j (Matrix.get a i j *. ginv)
          done;
          for j = 0 to n - 1 do
            Matrix.set a j i (Matrix.get a j i *. !f)
          done
        end
      end
    done
  done;
  a

(* Reduction to upper Hessenberg form by stabilized elementary similarity
   transformations (EISPACK elmhes). *)
let reduce a0 =
  if not (Matrix.is_square a0) then invalid_arg "Hessenberg.reduce: not square";
  let a = Matrix.copy a0 in
  let n = a.Matrix.rows in
  let d = a.Matrix.data in
  (* flat-array indexing in the O(n³) loops: see the note in Lu *)
  for m = 1 to n - 2 do
    (* pivot: largest |a.(j).(m-1)| for j >= m *)
    let piv = ref m in
    let x = ref d.((m * n) + m - 1) in
    for j = m + 1 to n - 1 do
      if abs_float d.((j * n) + m - 1) > abs_float !x then begin
        x := d.((j * n) + m - 1);
        piv := j
      end
    done;
    if !piv <> m then begin
      (* swap rows and columns piv <-> m (similarity) *)
      let rp = !piv * n and rm = m * n in
      for j = m - 1 to n - 1 do
        let tmp = d.(rp + j) in
        d.(rp + j) <- d.(rm + j);
        d.(rm + j) <- tmp
      done;
      for j = 0 to n - 1 do
        let rj = j * n in
        let tmp = d.(rj + !piv) in
        d.(rj + !piv) <- d.(rj + m);
        d.(rj + m) <- tmp
      done
    end;
    if !x <> 0.0 then begin
      let rm = m * n in
      for i = m + 1 to n - 1 do
        let ri = i * n in
        let y = d.(ri + m - 1) in
        if y <> 0.0 then begin
          let y = y /. !x in
          d.(ri + m - 1) <- y;
          for j = m to n - 1 do
            d.(ri + j) <- d.(ri + j) -. (y *. d.(rm + j))
          done;
          for j = 0 to n - 1 do
            let rj = j * n in
            d.(rj + m) <- d.(rj + m) +. (y *. d.(rj + i))
          done
        end
      done
    end
  done;
  (* the multipliers were parked below the subdiagonal; clear them *)
  for i = 2 to n - 1 do
    for j = 0 to i - 2 do
      d.((i * n) + j) <- 0.0
    done
  done;
  a

let is_hessenberg ?(tol = 0.0) a =
  let n = a.Matrix.rows in
  let ok = ref (Matrix.is_square a) in
  for i = 2 to n - 1 do
    for j = 0 to i - 2 do
      if abs_float (Matrix.get a i j) > tol then ok := false
    done
  done;
  !ok
