(** Francis implicit double-shift QR iteration for the eigenvalues of a
    real upper Hessenberg matrix. Complex eigenvalues appear in
    conjugate pairs. Eigenvalues only (no Schur vectors); combine with
    inverse iteration ({!Clu.null_vector}) when eigenvectors of the
    original problem are needed. *)

exception No_convergence of int
(** Raised when an eigenvalue fails to converge; carries the index of the
    stuck trailing block. *)

val eigenvalues_hessenberg : ?max_iter:int -> Matrix.t -> Cx.t array
(** [eigenvalues_hessenberg h] computes all eigenvalues of the upper
    Hessenberg matrix [h] (which is copied, not modified).
    [max_iter] bounds the QR sweeps per eigenvalue (default [100]).
    Raises [Invalid_argument] if [h] is not square or not Hessenberg. *)
