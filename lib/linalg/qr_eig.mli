(** Francis implicit double-shift QR iteration for the eigenvalues of a
    real upper Hessenberg matrix. Complex eigenvalues appear in
    conjugate pairs. Eigenvalues only (no Schur vectors); combine with
    inverse iteration ({!Clu.null_vector}) when eigenvectors of the
    original problem are needed. *)

exception
  No_convergence of { dim : int; block : int; iterations : int }
(** Raised when an eigenvalue fails to converge: [dim] is the order of
    the matrix, [block] the index of the stuck trailing block and
    [iterations] the number of sweeps spent on it. *)

val total_sweeps : unit -> int
(** Cumulative count of implicit double-shift sweeps performed by this
    process, across all calls — a cheap progress/efficiency counter that
    callers can difference around a solve and feed into a metrics
    registry (this library sits below the observability layer, so it
    cannot record the metric itself). Kept in an [Atomic.t]: the total
    stays exact when pool workers solve concurrently. *)

type event =
  | Sweep  (** An implicit double-shift sweep is about to run. *)
  | Deflate  (** A trailing 1x1 / 2x2 block converged and was removed. *)

type progress = {
  event : event;
  sweeps : int;  (** Sweeps spent on the current trailing block so far. *)
  total : int;  (** Cumulative sweeps in this call. *)
  remaining : int;
      (** Rows not yet deflated (after removal for [Deflate] events);
          non-increasing over a healthy run. *)
  block : int;  (** Active block size (deflated block size on [Deflate]). *)
  residual : float;
      (** Sub-diagonal magnitude at the bottom of the active block
          ([0.] on [Deflate]: the entry was just annihilated). *)
  shift : float;  (** Shift in use ([x] at the block bottom). *)
  exceptional : bool;  (** An exceptional shift was substituted. *)
}
(** One per-sweep / per-deflation observation, passed to [?observe] of
    {!eigenvalues_hessenberg}. The callback must not mutate the matrix;
    it only reads values the iteration already computed, so enabling it
    cannot change the result (this library sits below the observability
    layer — the solver layer wires the callback to a recorder). *)

val eigenvalues_hessenberg :
  ?max_iter:int -> ?observe:(progress -> unit) -> Matrix.t -> Cx.t array
(** [eigenvalues_hessenberg h] computes all eigenvalues of the upper
    Hessenberg matrix [h] (which is copied, not modified).
    [max_iter] bounds the QR sweeps per eigenvalue (default [100]).
    [observe] is invoked once before every sweep and once per deflation.
    Raises [Invalid_argument] if [h] is not square or not Hessenberg. *)
