(** Francis implicit double-shift QR iteration for the eigenvalues of a
    real upper Hessenberg matrix. Complex eigenvalues appear in
    conjugate pairs. Eigenvalues only (no Schur vectors); combine with
    inverse iteration ({!Clu.null_vector}) when eigenvectors of the
    original problem are needed. *)

exception
  No_convergence of { dim : int; block : int; iterations : int }
(** Raised when an eigenvalue fails to converge: [dim] is the order of
    the matrix, [block] the index of the stuck trailing block and
    [iterations] the number of sweeps spent on it. *)

val total_sweeps : unit -> int
(** Cumulative count of implicit double-shift sweeps performed by this
    process, across all calls — a cheap progress/efficiency counter that
    callers can difference around a solve and feed into a metrics
    registry (this library sits below the observability layer, so it
    cannot record the metric itself). *)

val eigenvalues_hessenberg : ?max_iter:int -> Matrix.t -> Cx.t array
(** [eigenvalues_hessenberg h] computes all eigenvalues of the upper
    Hessenberg matrix [h] (which is copied, not modified).
    [max_iter] bounds the QR sweeps per eigenvalue (default [100]).
    Raises [Invalid_argument] if [h] is not square or not Hessenberg. *)
