type t = Cx.t array

let create n = Array.make n Cx.zero

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_real v = Array.map Cx.of_float v

let real_part v = Array.map Cx.re v

let imag_part v = Array.map Cx.im v

let check_dims u v =
  if Array.length u <> Array.length v then invalid_arg "Cvec: dimension mismatch"

let add u v =
  check_dims u v;
  Array.init (Array.length u) (fun i -> Cx.add u.(i) v.(i))

let sub u v =
  check_dims u v;
  Array.init (Array.length u) (fun i -> Cx.sub u.(i) v.(i))

let scale a v = Array.map (Cx.mul a) v

let dot u v =
  check_dims u v;
  let acc = ref Cx.zero in
  for i = 0 to Array.length u - 1 do
    acc := Cx.add !acc (Cx.mul u.(i) v.(i))
  done;
  !acc

let dot_conj u v =
  check_dims u v;
  let acc = ref Cx.zero in
  for i = 0 to Array.length u - 1 do
    acc := Cx.add !acc (Cx.mul (Cx.conj u.(i)) v.(i))
  done;
  !acc

let sum v = Array.fold_left Cx.add Cx.zero v

let norm2 v =
  let acc = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. Cx.modulus2 v.(i)
  done;
  sqrt !acc

let norm_inf v =
  let acc = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    let m = Cx.modulus v.(i) in
    if m > !acc then acc := m
  done;
  !acc

let max_abs_index v =
  if Array.length v = 0 then invalid_arg "Cvec.max_abs_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if Cx.modulus2 v.(i) > Cx.modulus2 v.(!best) then best := i
  done;
  !best

let normalize v =
  let n = norm2 v in
  if n = 0.0 then invalid_arg "Cvec.normalize: zero vector";
  let k = max_abs_index v in
  (* rotate so the dominant component becomes real positive *)
  let phase = Cx.scale (1.0 /. Cx.modulus v.(k)) (Cx.conj v.(k)) in
  scale (Cx.scale (1.0 /. n) phase) v

let approx_equal ?(tol = 1e-9) u v =
  Array.length u = Array.length v && norm_inf (sub u v) <= tol

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Cx.pp)
    (Array.to_list v)
