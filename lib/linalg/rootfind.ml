exception
  Exhausted of { name : string; iterations : int; width : float; best : float }

let notify observe ~iteration ~width ~best =
  match observe with
  | None -> ()
  | Some f -> f ~iteration ~width ~best

let bisect ?(tol = 1e-12) ?(max_iter = 200) ?observe f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then invalid_arg "Rootfind.bisect: no sign change"
  else begin
    let a = ref a and b = ref b and fa = ref fa in
    let i = ref 0 in
    while !b -. !a > tol && !i < max_iter do
      incr i;
      let m = 0.5 *. (!a +. !b) in
      let fm = f m in
      if fm = 0.0 then begin
        a := m;
        b := m
      end
      else if !fa *. fm < 0.0 then b := m
      else begin
        a := m;
        fa := fm
      end;
      notify observe ~iteration:!i ~width:(!b -. !a) ~best:(0.5 *. (!a +. !b))
    done;
    if !b -. !a > tol then
      raise
        (Exhausted
           {
             name = "bisect";
             iterations = !i;
             width = !b -. !a;
             best = 0.5 *. (!a +. !b);
           });
    0.5 *. (!a +. !b)
  end

(* Brent's method, after Brent (1973) / Numerical Recipes zbrent. *)
let brent ?(tol = 1e-13) ?(max_iter = 200) ?observe f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if fa *. fb > 0.0 then invalid_arg "Rootfind.brent: no sign change"
  else begin
    let a = ref a and b = ref b and c = ref a in
    let fa = ref fa and fb = ref fb in
    let fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref nan in
    let iter = ref 0 in
    while Float.is_nan !result && !iter < max_iter do
      incr iter;
      if (!fb > 0.0 && !fc > 0.0) || (!fb < 0.0 && !fc < 0.0) then begin
        c := !a;
        fc := !fa;
        d := !b -. !a;
        e := !d
      end;
      if abs_float !fc < abs_float !fb then begin
        a := !b;
        b := !c;
        c := !a;
        fa := !fb;
        fb := !fc;
        fc := !fa
      end;
      let tol1 = (2.0 *. epsilon_float *. abs_float !b) +. (0.5 *. tol) in
      let xm = 0.5 *. (!c -. !b) in
      notify observe ~iteration:!iter ~width:(abs_float (!c -. !b)) ~best:!b;
      if abs_float xm <= tol1 || !fb = 0.0 then result := !b
      else begin
        if abs_float !e >= tol1 && abs_float !fa > abs_float !fb then begin
          (* inverse quadratic interpolation *)
          let s = !fb /. !fa in
          let p, q =
            if !a = !c then
              let p = 2.0 *. xm *. s in
              let q = 1.0 -. s in
              (p, q)
            else begin
              let q = !fa /. !fc in
              let r = !fb /. !fc in
              let p =
                s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0)))
              in
              let q = (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0) in
              (p, q)
            end
          in
          let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
          let min1 = (3.0 *. xm *. q) -. abs_float (tol1 *. q) in
          let min2 = abs_float (!e *. q) in
          if 2.0 *. p < Float.min min1 min2 then begin
            e := !d;
            d := p /. q
          end
          else begin
            d := xm;
            e := !d
          end
        end
        else begin
          d := xm;
          e := !d
        end;
        a := !b;
        fa := !fb;
        if abs_float !d > tol1 then b := !b +. !d
        else b := !b +. (if xm >= 0.0 then tol1 else -.tol1);
        fb := f !b
      end
    done;
    if Float.is_nan !result then
      raise
        (Exhausted
           {
             name = "brent";
             iterations = !iter;
             width = abs_float (!c -. !b);
             best = !b;
           });
    !result
  end

let largest_root_in ?(scan_points = 200) ?(tol = 1e-13) ?max_iter ?observe f a
    b =
  if not (b > a) then invalid_arg "Rootfind.largest_root_in: empty interval";
  let h = (b -. a) /. float_of_int scan_points in
  let value k = a +. (float_of_int k *. h) in
  (* scan from the right for the rightmost sign-change bracket *)
  let rec scan k fb_right =
    if k < 0 then None
    else begin
      let x = value k in
      let fx = f x in
      if not (Float.is_finite fx) then scan (k - 1) fb_right
      else
        match fb_right with
        | None -> scan (k - 1) (Some (x, fx))
        | Some (xr, fr) ->
            if fx = 0.0 then Some x
            else if fx *. fr < 0.0 then Some (brent ~tol ?max_iter ?observe f x xr)
            else scan (k - 1) (Some (x, fx))
    end
  in
  scan scan_points None
