(** Householder QR factorization of dense real matrices and least-squares
    solving.

    For an [m] x [n] matrix with [m >= n], computes [a = Q R] with [Q]
    orthogonal ([m] x [m], stored implicitly as Householder reflectors)
    and [R] upper trapezoidal. *)

type t
(** A QR factorization. *)

exception Rank_deficient
(** Raised by {!solve_least_squares} when a diagonal entry of [R] vanishes. *)

val factor : Matrix.t -> t
(** [factor a] computes the factorization. Raises [Invalid_argument] when
    [a] has fewer rows than columns. [a] is not modified. *)

val r : t -> Matrix.t
(** The [n] x [n] upper-triangular factor (top block of the full R). *)

val apply_qt : t -> Vec.t -> Vec.t
(** [apply_qt f b] is [Qᵀ b]. *)

val solve_least_squares : t -> Vec.t -> Vec.t
(** [solve_least_squares f b] minimizes [||a x - b||₂]; for square
    nonsingular [a] this solves the system exactly. *)

val solve : Matrix.t -> Vec.t -> Vec.t
(** One-shot least-squares convenience wrapper. *)

val residual_norm : Matrix.t -> Vec.t -> Vec.t -> float
(** [residual_norm a x b] is [||a x - b||₂], for diagnostics. *)
