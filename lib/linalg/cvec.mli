(** Dense complex vectors backed by [Cx.t array]. *)

type t = Cx.t array

val create : int -> t
(** Zero vector of the given dimension. *)

val init : int -> (int -> Cx.t) -> t
val dim : t -> int
val copy : t -> t

val of_real : Vec.t -> t
(** Embed a real vector. *)

val real_part : t -> Vec.t
(** Component-wise real parts. *)

val imag_part : t -> Vec.t
(** Component-wise imaginary parts. *)

val add : t -> t -> t
val sub : t -> t -> t

val scale : Cx.t -> t -> t
(** Scalar multiple. *)

val dot : t -> t -> Cx.t
(** Bilinear (unconjugated) product [Σ uᵢ vᵢ]. *)

val dot_conj : t -> t -> Cx.t
(** Hermitian product [Σ conj(uᵢ) vᵢ]. *)

val sum : t -> Cx.t
(** Sum of components. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Largest component modulus. *)

val normalize : t -> t
(** Unit Euclidean norm; raises [Invalid_argument] on zero. Also rotates
    the vector so its largest component is real positive, fixing the
    arbitrary phase (useful for comparing eigenvectors). *)

val max_abs_index : t -> int
(** Index of the component with largest modulus. *)

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
