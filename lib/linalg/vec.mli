(** Dense real vectors backed by [float array].

    All functions are total unless stated otherwise; dimension mismatches
    raise [Invalid_argument]. Vectors are mutable; functions ending in
    [_inplace] mutate their first argument, all others allocate. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is the vector [| f 0; ...; f (n-1) |]. *)

val dim : t -> int
(** Number of components. *)

val copy : t -> t
(** A fresh copy. *)

val of_list : float list -> t
(** Vector from a list of components. *)

val to_list : t -> float list
(** Components as a list. *)

val fill : t -> float -> unit
(** [fill v x] sets every component of [v] to [x]. *)

val add : t -> t -> t
(** Component-wise sum. *)

val sub : t -> t -> t
(** Component-wise difference. *)

val scale : float -> t -> t
(** [scale a v] is [a * v]. *)

val scale_inplace : float -> t -> unit
(** In-place scalar multiplication. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y]. *)

val dot : t -> t -> float
(** Inner product. *)

val sum : t -> float
(** Sum of components. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Maximum absolute component. *)

val normalize : t -> t
(** [normalize v] is [v] scaled to unit Euclidean norm. Raises
    [Invalid_argument] on the zero vector. *)

val map : (float -> float) -> t -> t
(** Component-wise map. *)

val map2 : (float -> float -> float) -> t -> t -> t
(** Component-wise binary map. *)

val max_abs_index : t -> int
(** Index of the component with the largest absolute value. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** [approx_equal ~tol u v] is true when [norm_inf (u - v) <= tol]
    (default [tol = 1e-9]) and dimensions agree. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer, e.g. [[1.0; 2.5]]. *)
