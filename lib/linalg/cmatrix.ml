type t = { rows : int; cols : int; data : Cx.t array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Cmatrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) Cx.zero }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then Cx.one else Cx.zero)

let of_real (a : Matrix.t) =
  init a.Matrix.rows a.Matrix.cols (fun i j -> Cx.of_float (Matrix.get a i j))

let dims m = (m.rows, m.cols)

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let conj_transpose m = init m.cols m.rows (fun i j -> Cx.conj (get m j i))

let check_same a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Cmatrix: dimension mismatch"

let add a b =
  check_same a b;
  { a with data = Array.init (Array.length a.data) (fun k -> Cx.add a.data.(k) b.data.(k)) }

let sub a b =
  check_same a b;
  { a with data = Array.init (Array.length a.data) (fun k -> Cx.sub a.data.(k) b.data.(k)) }

let scale x m = { m with data = Array.map (Cx.mul x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Cmatrix.mul: dimension mismatch";
  let c = create a.rows b.cols in
  let n = b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> Cx.zero then
        for j = 0 to n - 1 do
          c.data.((i * n) + j) <-
            Cx.add c.data.((i * n) + j) (Cx.mul aik b.data.((k * n) + j))
        done
    done
  done;
  c

let mul_vec m x =
  if m.cols <> Cvec.dim x then invalid_arg "Cmatrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref Cx.zero in
      for j = 0 to m.cols - 1 do
        acc := Cx.add !acc (Cx.mul m.data.((i * m.cols) + j) x.(j))
      done;
      !acc)

let vec_mul x m =
  if m.rows <> Cvec.dim x then invalid_arg "Cmatrix.vec_mul: dimension mismatch";
  let y = Array.make m.cols Cx.zero in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> Cx.zero then
      for j = 0 to m.cols - 1 do
        y.(j) <- Cx.add y.(j) (Cx.mul xi m.data.((i * m.cols) + j))
      done
  done;
  y

let row m i = Array.init m.cols (fun j -> get m i j)

let col m j = Array.init m.rows (fun i -> get m i j)

let max_abs m =
  Array.fold_left (fun acc z -> Float.max acc (Cx.modulus z)) 0.0 m.data

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. Cx.modulus m.data.((i * m.cols) + j)
    done;
    if !acc > !best then best := !acc
  done;
  !best

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs (sub a b) <= tol

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Cx.pp ppf (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
