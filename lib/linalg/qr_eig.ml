(* Francis implicit double-shift QR ("hqr"), following the classical
   EISPACK/Numerical-Recipes formulation, 0-based. The matrix is
   destroyed during iteration, so we work on a copy held as an array of
   rows. The algorithm repeatedly: (1) deflates at negligible
   subdiagonal entries, (2) extracts trailing 1x1 / 2x2 blocks as
   converged eigenvalues, and (3) otherwise performs an implicit
   double-shift sweep on rows l..nn, with an exceptional shift every 10
   stalled iterations. *)

exception No_convergence of { dim : int; block : int; iterations : int }

(* mutated from pool workers under `--jobs N`, so it must be atomic to
   keep the cumulative total exact *)
let sweep_count = Atomic.make 0

let total_sweeps () = Atomic.get sweep_count

type event = Sweep | Deflate

type progress = {
  event : event;
  sweeps : int;
  total : int;
  remaining : int;
  block : int;
  residual : float;
  shift : float;
  exceptional : bool;
}

let sign_of a b = if b >= 0.0 then abs_float a else -.abs_float a

let eigenvalues_hessenberg ?(max_iter = 100) ?observe h =
  if not (Matrix.is_square h) then invalid_arg "Qr_eig: not square";
  if not (Hessenberg.is_hessenberg h) then invalid_arg "Qr_eig: not Hessenberg";
  let n = h.Matrix.rows in
  let a = Matrix.to_arrays h in
  let wr = Array.make n 0.0 and wi = Array.make n 0.0 in
  if n = 0 then [||]
  else begin
    let eps = epsilon_float in
    let anorm = ref 0.0 in
    for i = 0 to n - 1 do
      for j = max 0 (i - 1) to n - 1 do
        anorm := !anorm +. abs_float a.(i).(j)
      done
    done;
    let anorm = !anorm in
    let t = ref 0.0 in
    let local_sweeps = ref 0 in
    (* the callback only reads values the iteration already computed, so
       results are bit-identical with or without an observer *)
    let notify ev ~sweeps ~remaining ~block ~residual ~shift ~exceptional =
      match observe with
      | None -> ()
      | Some f ->
          f
            {
              event = ev;
              sweeps;
              total = !local_sweeps;
              remaining;
              block;
              residual;
              shift;
              exceptional;
            }
    in
    let nn = ref (n - 1) in
    while !nn >= 0 do
      let its = ref 0 in
      let deflated = ref false in
      while not !deflated do
        let nn_v = !nn in
        (* find l: smallest row index of the active trailing block *)
        let l = ref 0 in
        (try
           for ll = nn_v downto 1 do
             let s0 = abs_float a.(ll - 1).(ll - 1) +. abs_float a.(ll).(ll) in
             let s = if s0 = 0.0 then anorm else s0 in
             if abs_float a.(ll).(ll - 1) <= eps *. s then begin
               a.(ll).(ll - 1) <- 0.0;
               l := ll;
               raise Exit
             end
           done
         with Exit -> ());
        let l = !l in
        let x = a.(nn_v).(nn_v) in
        if l = nn_v then begin
          (* one real root *)
          wr.(nn_v) <- x +. !t;
          wi.(nn_v) <- 0.0;
          nn := nn_v - 1;
          deflated := true;
          notify Deflate ~sweeps:!its ~remaining:nn_v ~block:1 ~residual:0.0
            ~shift:x ~exceptional:false
        end
        else begin
          let y = a.(nn_v - 1).(nn_v - 1) in
          let w = a.(nn_v).(nn_v - 1) *. a.(nn_v - 1).(nn_v) in
          if l = nn_v - 1 then begin
            (* a trailing 2x2 block: two roots *)
            let p = 0.5 *. (y -. x) in
            let q = (p *. p) +. w in
            let z = sqrt (abs_float q) in
            let x = x +. !t in
            if q >= 0.0 then begin
              let z = p +. sign_of z p in
              wr.(nn_v - 1) <- x +. z;
              wr.(nn_v) <- (if z <> 0.0 then x -. (w /. z) else x +. z);
              wi.(nn_v - 1) <- 0.0;
              wi.(nn_v) <- 0.0
            end
            else begin
              wr.(nn_v - 1) <- x +. p;
              wr.(nn_v) <- x +. p;
              wi.(nn_v) <- z;
              wi.(nn_v - 1) <- -.z
            end;
            nn := nn_v - 2;
            deflated := true;
            notify Deflate ~sweeps:!its ~remaining:(nn_v - 1) ~block:2
              ~residual:0.0 ~shift:x ~exceptional:false
          end
          else begin
            if !its >= max_iter then
              raise (No_convergence { dim = n; block = nn_v; iterations = !its });
            let x = ref x and y = ref y and w = ref w in
            let exceptional = !its > 0 && !its mod 10 = 0 in
            if exceptional then begin
              (* exceptional shift *)
              t := !t +. !x;
              for i = 0 to nn_v do
                a.(i).(i) <- a.(i).(i) -. !x
              done;
              let s =
                abs_float a.(nn_v).(nn_v - 1)
                +. abs_float a.(nn_v - 1).(nn_v - 2)
              in
              x := 0.75 *. s;
              y := !x;
              w := -0.4375 *. s *. s
            end;
            incr its;
            Atomic.incr sweep_count;
            incr local_sweeps;
            notify Sweep ~sweeps:!its ~remaining:(nn_v + 1)
              ~block:(nn_v - l + 1)
              ~residual:(abs_float a.(nn_v).(nn_v - 1))
              ~shift:!x ~exceptional;
            (* find m: start row of the sweep, where two consecutive
               subdiagonals are small *)
            let p = ref 0.0 and q = ref 0.0 and r = ref 0.0 in
            let m = ref (nn_v - 2) in
            (try
               while !m >= l do
                 let mm = !m in
                 let z = a.(mm).(mm) in
                 let rr = !x -. z in
                 let ss = !y -. z in
                 p := (((rr *. ss) -. !w) /. a.(mm + 1).(mm)) +. a.(mm).(mm + 1);
                 q := a.(mm + 1).(mm + 1) -. z -. rr -. ss;
                 r := a.(mm + 2).(mm + 1);
                 let s = abs_float !p +. abs_float !q +. abs_float !r in
                 p := !p /. s;
                 q := !q /. s;
                 r := !r /. s;
                 if mm = l then raise Exit;
                 let u = abs_float a.(mm).(mm - 1) *. (abs_float !q +. abs_float !r) in
                 let v =
                   abs_float !p
                   *. (abs_float a.(mm - 1).(mm - 1)
                      +. abs_float z
                      +. abs_float a.(mm + 1).(mm + 1))
                 in
                 if u <= eps *. v then raise Exit;
                 decr m
               done
             with Exit -> ());
            let m = !m in
            for i = m + 2 to nn_v do
              a.(i).(i - 2) <- 0.0;
              if i <> m + 2 then a.(i).(i - 3) <- 0.0
            done;
            (* double QR sweep over rows m..nn-1 *)
            for k = m to nn_v - 1 do
              if k <> m then begin
                p := a.(k).(k - 1);
                q := a.(k + 1).(k - 1);
                r := if k <> nn_v - 1 then a.(k + 2).(k - 1) else 0.0;
                let xs = abs_float !p +. abs_float !q +. abs_float !r in
                x := xs;
                if xs <> 0.0 then begin
                  p := !p /. xs;
                  q := !q /. xs;
                  r := !r /. xs
                end
              end;
              let s =
                sign_of (sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))) !p
              in
              if s <> 0.0 then begin
                if k = m then begin
                  if l <> m then a.(k).(k - 1) <- -.a.(k).(k - 1)
                end
                else a.(k).(k - 1) <- -.s *. !x;
                p := !p +. s;
                x := !p /. s;
                y := !q /. s;
                let z = !r /. s in
                q := !q /. !p;
                r := !r /. !p;
                for j = k to nn_v do
                  (* row modification *)
                  let pj =
                    a.(k).(j)
                    +. (!q *. a.(k + 1).(j))
                    +.
                    (if k <> nn_v - 1 then !r *. a.(k + 2).(j) else 0.0)
                  in
                  if k <> nn_v - 1 then a.(k + 2).(j) <- a.(k + 2).(j) -. (pj *. z);
                  a.(k + 1).(j) <- a.(k + 1).(j) -. (pj *. !y);
                  a.(k).(j) <- a.(k).(j) -. (pj *. !x)
                done;
                let mmin = min nn_v (k + 3) in
                for i = l to mmin do
                  (* column modification *)
                  let pi =
                    (!x *. a.(i).(k))
                    +. (!y *. a.(i).(k + 1))
                    +.
                    (if k <> nn_v - 1 then z *. a.(i).(k + 2) else 0.0)
                  in
                  if k <> nn_v - 1 then a.(i).(k + 2) <- a.(i).(k + 2) -. (pi *. !r);
                  a.(i).(k + 1) <- a.(i).(k + 1) -. (pi *. !q);
                  a.(i).(k) <- a.(i).(k) -. pi
                done
              end
            done
          end
        end
      done
    done;
    Array.init n (fun i -> Cx.make wr.(i) wi.(i))
  end
