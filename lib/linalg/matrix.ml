type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diagonal d =
  let n = Vec.dim d in
  init n n (fun i j -> if i = j then d.(i) else 0.0)

let scalar n a = init n n (fun i j -> if i = j then a else 0.0)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then
        invalid_arg "Matrix.of_arrays: ragged rows")
    rows_arr;
  init rows cols (fun i j -> rows_arr.(i).(j))

let to_arrays m =
  Array.init m.rows (fun i ->
      Array.init m.cols (fun j -> m.data.((i * m.cols) + j)))

let dims m = (m.rows, m.cols)

let get m i j = m.data.((i * m.cols) + j)

let set m i j x = m.data.((i * m.cols) + j) <- x

let update m i j f =
  let k = (i * m.cols) + j in
  m.data.(k) <- f m.data.(k)

let copy m = { m with data = Array.copy m.data }

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Matrix: dimension mismatch"

let add a b =
  check_same a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_same a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale x m = { m with data = Array.map (fun v -> x *. v) m.data }

(* Cache-friendly ikj loop ordering. *)
let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = create a.rows b.cols in
  let n = b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to n - 1 do
          c.data.((i * n) + j) <-
            c.data.((i * n) + j) +. (aik *. b.data.((k * n) + j))
        done
    done
  done;
  c

let mul_vec m x =
  if m.cols <> Vec.dim x then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. x.(j))
      done;
      !acc)

let vec_mul x m =
  if m.rows <> Vec.dim x then invalid_arg "Matrix.vec_mul: dimension mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (xi *. m.data.((i * m.cols) + j))
      done
  done;
  y

let row m i = Array.init m.cols (fun j -> get m i j)

let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i v =
  if Vec.dim v <> m.cols then invalid_arg "Matrix.set_row: dimension mismatch";
  Array.blit v 0 m.data (i * m.cols) m.cols

let row_sums m =
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. m.data.((i * m.cols) + j)
      done;
      !acc)

let diag m =
  if m.rows <> m.cols then invalid_arg "Matrix.diag: not square";
  Array.init m.rows (fun i -> get m i i)

let trace m = Vec.sum (diag m)

let norm_inf m =
  let best = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. abs_float m.data.((i * m.cols) + j)
    done;
    if !acc > !best then best := !acc
  done;
  !best

let norm_frobenius m =
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. (x *. x)) m.data;
  sqrt !acc

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0.0 m.data

let is_square m = m.rows = m.cols

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && max_abs (sub a b) <= tol

let blit ~src ~dst i j =
  if i + src.rows > dst.rows || j + src.cols > dst.cols then
    invalid_arg "Matrix.blit: destination too small";
  for r = 0 to src.rows - 1 do
    Array.blit src.data (r * src.cols) dst.data (((i + r) * dst.cols) + j)
      src.cols
  done

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%10.5g" (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
