type t = float array

let create n = Array.make n 0.0

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let to_list = Array.to_list

let fill v x = Array.fill v 0 (Array.length v) x

let check_dims u v =
  if Array.length u <> Array.length v then
    invalid_arg "Vec: dimension mismatch"

let add u v =
  check_dims u v;
  Array.init (Array.length u) (fun i -> u.(i) +. v.(i))

let sub u v =
  check_dims u v;
  Array.init (Array.length u) (fun i -> u.(i) -. v.(i))

let scale a v = Array.map (fun x -> a *. x) v

let scale_inplace a v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- a *. v.(i)
  done

let axpy a x y =
  check_dims x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot u v =
  check_dims u v;
  let acc = ref 0.0 in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

let sum v =
  let acc = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. v.(i)
  done;
  !acc

let norm2 v = sqrt (dot v v)

let norm_inf v =
  let acc = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    let a = abs_float v.(i) in
    if a > !acc then acc := a
  done;
  !acc

let normalize v =
  let n = norm2 v in
  if n = 0.0 then invalid_arg "Vec.normalize: zero vector";
  scale (1.0 /. n) v

let map = Array.map

let map2 f u v =
  check_dims u v;
  Array.init (Array.length u) (fun i -> f u.(i) v.(i))

let max_abs_index v =
  if Array.length v = 0 then invalid_arg "Vec.max_abs_index: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if abs_float v.(i) > abs_float v.(!best) then best := i
  done;
  !best

let approx_equal ?(tol = 1e-9) u v =
  Array.length u = Array.length v && norm_inf (sub u v) <= tol

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (to_list v)
