(** Block companion linearization of quadratic matrix polynomials.

    For [Q(z) = Q0 + Q1 z + Q2 z²] (all [s] x [s], real) with
    {e nonsingular} [Q0], the reversed polynomial
    [P(w) = Q2 + Q1 w + Q0 w²] with [w = 1/z] has nonsingular leading
    coefficient, so its block companion matrix is an ordinary (not
    generalized) eigenproblem. Roots [w] of [det P(w) = 0] map to roots
    [z = 1/w] of [det Q(z) = 0]; [w = 0] corresponds to an infinite root
    [z] (these arise when [Q2] is singular and are discarded by the
    caller). This is how the spectral-expansion method obtains the
    eigenvalues inside the unit disk without a QZ algorithm. *)

val reversed : q0:Matrix.t -> q1:Matrix.t -> q2:Matrix.t -> Matrix.t
(** [reversed ~q0 ~q1 ~q2] is the [2s] x [2s] block companion matrix
    [[0, I], [−Q0⁻¹Q2, −Q0⁻¹Q1]] of the reversed polynomial. Raises
    [Invalid_argument] on dimension mismatch and [Lu.Singular] when [Q0]
    is singular. *)

val eigenvalues_inside_unit_disk :
  ?tol:float ->
  ?max_iter:int ->
  ?observe:(Qr_eig.progress -> unit) ->
  q0:Matrix.t ->
  q1:Matrix.t ->
  q2:Matrix.t ->
  unit ->
  Cx.t array
(** All roots [z] of [det Q(z) = 0] with [|z| < 1 - tol]
    (default [tol = 1e-9]), obtained from the reversed companion matrix
    (roots with [|w| <= 1 + tol], i.e. [|z| >= 1], are dropped, as are
    [w ≈ 0] infinite roots). Sorted by ascending modulus. [max_iter] and
    [observe] are forwarded to the QR eigensolve
    ({!Qr_eig.eigenvalues_hessenberg}). *)

val evaluate : q0:Matrix.t -> q1:Matrix.t -> q2:Matrix.t -> Cx.t -> Cmatrix.t
(** [evaluate ~q0 ~q1 ~q2 z] is the complex matrix [Q(z)]. *)
