type t = Complex.t

let zero = Complex.zero
let one = Complex.one

let make re im : t = { Complex.re; im }

let of_float x = make x 0.0

let re (z : t) = z.Complex.re
let im (z : t) = z.Complex.im

let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let inv = Complex.inv

let scale a (z : t) : t = { Complex.re = a *. z.Complex.re; im = a *. z.Complex.im }

let modulus = Complex.norm
let modulus2 = Complex.norm2

let abs1 (z : t) = abs_float z.Complex.re +. abs_float z.Complex.im

let sqrt = Complex.sqrt

let is_real ?(tol = 1e-9) z = abs_float (im z) <= tol *. (1.0 +. modulus z)

let approx_equal ?(tol = 1e-9) a b = modulus (sub a b) <= tol

let compare_by_modulus a b =
  let c = compare (modulus a) (modulus b) in
  if c <> 0 then c
  else
    let c = compare (re a) (re b) in
    if c <> 0 then c else compare (im a) (im b)

let pp ppf z =
  if im z = 0.0 then Format.fprintf ppf "%g" (re z)
  else if im z >= 0.0 then Format.fprintf ppf "%g+%gi" (re z) (im z)
  else Format.fprintf ppf "%g-%gi" (re z) (-.im z)
