(** Dense real matrices in row-major order.

    A matrix is a record of its dimensions and a flat [float array];
    elements are accessed with {!get}/{!set}. All binary operations raise
    [Invalid_argument] on dimension mismatch. *)

type t = { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** [create r c] is the [r] x [c] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] has entry [f i j] at row [i], column [j]. *)

val identity : int -> t
(** The [n] x [n] identity matrix. *)

val diagonal : Vec.t -> t
(** Square matrix with the given diagonal and zeros elsewhere. *)

val scalar : int -> float -> t
(** [scalar n a] is [a] times the [n] x [n] identity. *)

val of_arrays : float array array -> t
(** Matrix from an array of rows. Raises [Invalid_argument] if rows have
    unequal lengths or the input is empty. *)

val to_arrays : t -> float array array
(** Rows of the matrix as a fresh array of fresh arrays. *)

val dims : t -> int * int
(** [(rows, cols)]. *)

val get : t -> int -> int -> float
(** [get m i j] is the element at row [i], column [j] (0-based). *)

val set : t -> int -> int -> float -> unit
(** [set m i j x] stores [x] at row [i], column [j]. *)

val update : t -> int -> int -> (float -> float) -> unit
(** [update m i j f] replaces element [(i,j)] by [f] of itself. *)

val copy : t -> t
(** Deep copy. *)

val transpose : t -> t
(** Matrix transpose. *)

val add : t -> t -> t
(** Matrix sum. *)

val sub : t -> t -> t
(** Matrix difference. *)

val scale : float -> t -> t
(** Scalar multiple. *)

val mul : t -> t -> t
(** Matrix product. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m x] is the column-vector product [m * x]. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul x m] is the row-vector product [x * m]. *)

val row : t -> int -> Vec.t
(** Copy of row [i]. *)

val col : t -> int -> Vec.t
(** Copy of column [j]. *)

val set_row : t -> int -> Vec.t -> unit
(** Overwrite row [i]. *)

val row_sums : t -> Vec.t
(** Vector of row sums. *)

val diag : t -> Vec.t
(** Main diagonal (of a square matrix). *)

val trace : t -> float
(** Sum of diagonal elements of a square matrix. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val norm_frobenius : t -> float
(** Frobenius norm. *)

val max_abs : t -> float
(** Largest absolute entry. *)

val is_square : t -> bool
(** Whether [rows = cols]. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison within [tol] (default [1e-9]). *)

val blit : src:t -> dst:t -> int -> int -> unit
(** [blit ~src ~dst i j] copies [src] into [dst] with its top-left corner
    at position [(i, j)]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line pretty-printer. *)
