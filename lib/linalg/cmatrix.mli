(** Dense complex matrices in row-major order. *)

type t = { rows : int; cols : int; data : Cx.t array }

val create : int -> int -> t
val init : int -> int -> (int -> int -> Cx.t) -> t
val identity : int -> t

val of_real : Matrix.t -> t
(** Embed a real matrix. *)

val dims : t -> int * int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t
val transpose : t -> t

val conj_transpose : t -> t
(** Hermitian transpose. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : Cx.t -> t -> t
val mul : t -> t -> t

val mul_vec : t -> Cvec.t -> Cvec.t
(** Column-vector product [m x]. *)

val vec_mul : Cvec.t -> t -> Cvec.t
(** Row-vector product [x m]. *)

val row : t -> int -> Cvec.t
val col : t -> int -> Cvec.t

val max_abs : t -> float
(** Largest entry modulus. *)

val norm_inf : t -> float
(** Maximum absolute row sum (using moduli). *)

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
