(* Householder QR: reflectors are stored below the diagonal of [h] plus in
   the auxiliary array [tau]; the upper triangle of [h] is R. Column k's
   reflector is v = (1, h.(k+1..m-1, k)) and H = I - tau v vᵀ. *)

type t = { h : Matrix.t; tau : float array }

exception Rank_deficient

let factor a =
  let m = a.Matrix.rows and n = a.Matrix.cols in
  if m < n then invalid_arg "Qr.factor: more columns than rows";
  let h = Matrix.copy a in
  let tau = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* norm of the column below (and including) the diagonal *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      let v = Matrix.get h i k in
      norm := !norm +. (v *. v)
    done;
    let norm = sqrt !norm in
    if norm = 0.0 then tau.(k) <- 0.0
    else begin
      let akk = Matrix.get h k k in
      let alpha = if akk >= 0.0 then -.norm else norm in
      let v0 = akk -. alpha in
      (* scale the stored part of v by 1/v0 so that v = (1, ...) *)
      for i = k + 1 to m - 1 do
        Matrix.set h i k (Matrix.get h i k /. v0)
      done;
      tau.(k) <- -.v0 /. alpha;
      Matrix.set h k k alpha;
      (* apply the reflector to the remaining columns *)
      for j = k + 1 to n - 1 do
        let s = ref (Matrix.get h k j) in
        for i = k + 1 to m - 1 do
          s := !s +. (Matrix.get h i k *. Matrix.get h i j)
        done;
        let s = tau.(k) *. !s in
        Matrix.set h k j (Matrix.get h k j -. s);
        for i = k + 1 to m - 1 do
          Matrix.set h i j (Matrix.get h i j -. (s *. Matrix.get h i k))
        done
      done
    end
  done;
  { h; tau }

let r f =
  let n = f.h.Matrix.cols in
  Matrix.init n n (fun i j -> if j >= i then Matrix.get f.h i j else 0.0)

let apply_qt f b =
  let m = f.h.Matrix.rows and n = f.h.Matrix.cols in
  if Vec.dim b <> m then invalid_arg "Qr.apply_qt: dimension mismatch";
  let y = Vec.copy b in
  for k = 0 to n - 1 do
    if f.tau.(k) <> 0.0 then begin
      let s = ref y.(k) in
      for i = k + 1 to m - 1 do
        s := !s +. (Matrix.get f.h i k *. y.(i))
      done;
      let s = f.tau.(k) *. !s in
      y.(k) <- y.(k) -. s;
      for i = k + 1 to m - 1 do
        y.(i) <- y.(i) -. (s *. Matrix.get f.h i k)
      done
    end
  done;
  y

let solve_least_squares f b =
  let n = f.h.Matrix.cols in
  let y = apply_qt f b in
  let x = Array.sub y 0 n in
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.h i j *. x.(j))
    done;
    let d = Matrix.get f.h i i in
    if d = 0.0 then raise Rank_deficient;
    x.(i) <- !acc /. d
  done;
  x

let solve a b = solve_least_squares (factor a) b

let residual_norm a x b = Vec.norm2 (Vec.sub (Matrix.mul_vec a x) b)
