(** Helpers over the standard library's [Complex.t].

    Thin convenience layer: construction, arithmetic aliases and
    predicates used by the eigensolvers. *)

type t = Complex.t

val zero : t
val one : t

val make : float -> float -> t
(** [make re im]. *)

val of_float : float -> t
(** Real number as a complex. *)

val re : t -> float
val im : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val conj : t -> t
val inv : t -> t

val scale : float -> t -> t
(** Multiplication by a real scalar. *)

val modulus : t -> float
(** [|z|]. *)

val modulus2 : t -> float
(** [|z|²], cheaper than {!modulus}. *)

val abs1 : t -> float
(** [|re z| + |im z|], a cheap pivoting magnitude. *)

val sqrt : t -> t

val is_real : ?tol:float -> t -> bool
(** True when [|im z| <= tol * (1 + |z|)] (default [tol = 1e-9]). *)

val approx_equal : ?tol:float -> t -> t -> bool
(** [|a - b| <= tol] (default [1e-9]). *)

val compare_by_modulus : t -> t -> int
(** Ascending modulus, ties broken by real part then imaginary part. *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. [0.5-0.25i]. *)
