let eigenvalues ?(balance = true) ?max_iter ?observe a =
  let b = if balance then Hessenberg.balance a else a in
  let h = Hessenberg.reduce b in
  Qr_eig.eigenvalues_hessenberg ?max_iter ?observe h

let shifted a z =
  let ca = Cmatrix.of_real a in
  let n = a.Matrix.rows in
  for i = 0 to n - 1 do
    Cmatrix.set ca i i (Cx.sub (Cmatrix.get ca i i) z)
  done;
  ca

let right_eigenvector a z = Clu.null_vector (shifted a z)

let left_eigenvector a z = Clu.left_null_vector (shifted a z)

let residual_right a z v =
  let av = Cmatrix.mul_vec (Cmatrix.of_real a) v in
  Cvec.norm2 (Cvec.sub av (Cvec.scale z v))

let residual_left a z u =
  let ua = Cmatrix.vec_mul u (Cmatrix.of_real a) in
  Cvec.norm2 (Cvec.sub ua (Cvec.scale z u))
