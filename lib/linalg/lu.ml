type t = {
  lu : Matrix.t; (* packed L (unit diag, below) and U (on and above) *)
  perm : int array; (* row permutation: factored row i came from perm.(i) *)
  sign : int; (* parity of the permutation, for determinants *)
}

exception Singular

let dim f = f.lu.Matrix.rows

(* Crout-style factorization with partial pivoting on a copy. The inner
   loops index the flat data array directly: without flambda, going
   through Matrix.get/set costs a (non-inlined) call per element, which
   dominates at the sizes the solvers use. *)
let factor_internal a =
  if not (Matrix.is_square a) then invalid_arg "Lu.factor: not square";
  let n = a.Matrix.rows in
  let m = Matrix.copy a in
  let d = m.Matrix.data in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1 in
  let singular = ref false in
  (try
     for k = 0 to n - 1 do
       (* pivot search in column k *)
       let piv = ref k in
       let best = ref (abs_float d.((k * n) + k)) in
       for i = k + 1 to n - 1 do
         let v = abs_float d.((i * n) + k) in
         if v > !best then begin
           best := v;
           piv := i
         end
       done;
       if !best = 0.0 then begin
         singular := true;
         raise Exit
       end;
       if !piv <> k then begin
         (* swap rows k and piv *)
         let rk = k * n and rp = !piv * n in
         for j = 0 to n - 1 do
           let tmp = d.(rk + j) in
           d.(rk + j) <- d.(rp + j);
           d.(rp + j) <- tmp
         done;
         let tp = perm.(k) in
         perm.(k) <- perm.(!piv);
         perm.(!piv) <- tp;
         sign := - !sign
       end;
       let rk = k * n in
       let pivot = d.(rk + k) in
       for i = k + 1 to n - 1 do
         let ri = i * n in
         let factor = d.(ri + k) /. pivot in
         d.(ri + k) <- factor;
         if factor <> 0.0 then
           for j = k + 1 to n - 1 do
             d.(ri + j) <- d.(ri + j) -. (factor *. d.(rk + j))
           done
       done
     done
   with Exit -> ());
  if !singular then Error `Singular else Ok { lu = m; perm; sign = !sign }

let factor a = factor_internal a

let factor_exn a =
  match factor_internal a with Ok f -> f | Error `Singular -> raise Singular

let solve f b =
  let n = dim f in
  if Vec.dim b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let d = f.lu.Matrix.data in
  let x = Array.init n (fun i -> b.(f.perm.(i))) in
  (* forward substitution with unit lower triangle *)
  for i = 1 to n - 1 do
    let ri = i * n in
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (d.(ri + j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* back substitution with upper triangle *)
  for i = n - 1 downto 0 do
    let ri = i * n in
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (d.(ri + j) *. x.(j))
    done;
    let dii = d.(ri + i) in
    if dii = 0.0 then raise Singular;
    x.(i) <- !acc /. dii
  done;
  x

(* aᵀ x = b  ⇔  Uᵀ Lᵀ P x = b: solve Uᵀ y = b (forward), Lᵀ z = y
   (backward), then undo the permutation. *)
let solve_transposed f b =
  let n = dim f in
  if Vec.dim b <> n then invalid_arg "Lu.solve_transposed: dimension mismatch";
  let y = Vec.copy b in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Matrix.get f.lu j i *. y.(j))
    done;
    let d = Matrix.get f.lu i i in
    if d = 0.0 then raise Singular;
    y.(i) <- !acc /. d
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.lu j i *. y.(j))
    done;
    y.(i) <- !acc
  done;
  let x = Array.make n 0.0 in
  for i = 0 to n - 1 do
    x.(f.perm.(i)) <- y.(i)
  done;
  x

let solve_matrix f b =
  let n = dim f in
  if b.Matrix.rows <> n then invalid_arg "Lu.solve_matrix: dimension mismatch";
  let cols = b.Matrix.cols in
  let x = Matrix.create n cols in
  for j = 0 to cols - 1 do
    let bj = Matrix.col b j in
    let xj = solve f bj in
    for i = 0 to n - 1 do
      Matrix.set x i j xj.(i)
    done
  done;
  x

let pivot_condition f =
  let n = dim f in
  let lo = ref infinity and hi = ref 0.0 in
  for i = 0 to n - 1 do
    let d = abs_float (Matrix.get f.lu i i) in
    if d < !lo then lo := d;
    if d > !hi then hi := d
  done;
  if !lo = 0.0 then infinity else !hi /. !lo

let det_of_factor f =
  let n = dim f in
  let acc = ref (float_of_int f.sign) in
  for i = 0 to n - 1 do
    acc := !acc *. Matrix.get f.lu i i
  done;
  !acc

let det a =
  match factor_internal a with Ok f -> det_of_factor f | Error `Singular -> 0.0

let log_abs_det a =
  match factor_internal a with
  | Error `Singular -> (neg_infinity, 0)
  | Ok f ->
      let n = dim f in
      let log_acc = ref 0.0 in
      let sign = ref f.sign in
      for i = 0 to n - 1 do
        let d = Matrix.get f.lu i i in
        log_acc := !log_acc +. log (abs_float d);
        if d < 0.0 then sign := - !sign
      done;
      (!log_acc, !sign)

let inverse a =
  match factor_internal a with
  | Error `Singular -> Error `Singular
  | Ok f -> (
      try Ok (solve_matrix f (Matrix.identity (dim f)))
      with Singular -> Error `Singular)

let solve_system a b =
  match factor_internal a with
  | Error `Singular -> Error `Singular
  | Ok f -> ( try Ok (solve f b) with Singular -> Error `Singular)
