(** Preprocessing for the nonsymmetric eigenvalue problem: Osborne
    balancing and reduction to upper Hessenberg form.

    Both transformations are similarity transforms, so they preserve
    eigenvalues; neither is reversible here (we only compute
    eigenvalues, not eigenvectors, from the reduced form). *)

val balance : Matrix.t -> Matrix.t
(** [balance a] returns a diagonally-scaled similarity of the square
    matrix [a] whose rows and columns have comparable norms, improving
    the accuracy of subsequent QR iteration. *)

val reduce : Matrix.t -> Matrix.t
(** [reduce a] returns an upper Hessenberg matrix similar to the square
    matrix [a], computed by stabilized elementary transformations
    (Gaussian elimination with pivoting). Entries below the first
    subdiagonal of the result are exactly zero. *)

val is_hessenberg : ?tol:float -> Matrix.t -> bool
(** Whether all entries below the first subdiagonal are [<= tol]
    (default [0.]) in absolute value. *)
