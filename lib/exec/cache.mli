(** Content-addressed memo cache: string keys, LRU-bounded, guarded by a
    mutex so pool tasks on different domains can share it. Hit, miss and
    eviction totals are exposed as
    [urs_cache_{hits,misses,evictions}_total{cache="<name>"}] counters
    and the current occupancy as [urs_cache_size{cache="<name>"}].

    Values are computed {e outside} the lock, so two domains racing on
    the same missing key may both compute; the first insert wins and
    both callers observe the winning value (computations must therefore
    be deterministic functions of the key — which solver evaluations
    are). *)

type 'v t

val create :
  ?registry:Urs_obs.Metrics.t -> ?capacity:int -> name:string -> unit -> 'v t
(** [capacity] bounds the number of entries (default [1024]; must be
    positive). [name] labels the cache's metrics. *)

val find : 'v t -> string -> 'v option
(** Lookup without computing; counts a hit or a miss. *)

val insert_if_absent : 'v t -> string -> 'v -> 'v
(** Insert a value computed outside the cache (evicting the
    least-recently-used entry when full) and return the winning value —
    the existing one if a racing computation inserted first. Counts
    neither a hit nor a miss; pair with {!find} when the caller needs
    to know whether its lookup hit (e.g. to annotate a response)
    without skewing the counters. *)

val find_or_compute : 'v t -> string -> (unit -> 'v) -> 'v
(** [find_or_compute c key f] returns the cached value for [key], or
    computes [f ()], inserts it (evicting the least-recently-used entry
    when full) and returns it. If [f] raises, nothing is cached. *)

val length : 'v t -> int

val clear : 'v t -> unit
(** Drop every entry (counters are not reset). *)
