(* Fixed-size domain pool. One shared FIFO of closures; the submitting
   thread participates in draining its own batch, so [domains = 1] never
   spawns anything and nested submissions cannot deadlock (the nested
   submitter executes queued tasks itself while it waits). *)

module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Timeline = Urs_obs.Timeline
module Context = Urs_obs.Context

type t = {
  name : string;
  width : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  q : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  m_tasks : Metrics.counter;
  m_failures : Metrics.counter;
  (* per-task GC deltas, recorded only while [Span.gc_profiling_enabled]
     (armed by [Urs_obs.Runtime.set_profiling]; off by default, so the
     width = 1 fast path keeps its no-extra-metrics promise unless the
     user explicitly profiles). [Gc.quick_stat] minor words are
     domain-local, so each task measures its own domain's allocation. *)
  m_gc_minor : Metrics.counter;
  m_gc_promoted : Metrics.counter;
  m_gc_major : Metrics.counter;
  (* wall-clock timelines (parallel pools only): pending-task queue depth
     and domains currently inside a task. Recorded on the shared-queue
     paths, so the width = 1 inline fast path stays untouched. *)
  s_queue : Timeline.series option;
  s_busy : Timeline.series option;
  busy : int Atomic.t;
}

let domains t = t.width

let record_queue t depth =
  match t.s_queue with
  | Some s -> Timeline.record s ~t:(Span.now ()) (float_of_int depth)
  | None -> ()

let record_busy t delta =
  match t.s_busy with
  | Some s ->
      let b = Atomic.fetch_and_add t.busy delta + delta in
      Timeline.record s ~t:(Span.now ()) (float_of_int b)
  | None -> ()

let try_pop t =
  Mutex.lock t.lock;
  let task = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
  let depth = Queue.length t.q in
  Mutex.unlock t.lock;
  (match task with Some _ -> record_queue t depth | None -> ());
  task

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.q then Mutex.unlock t.lock (* closed and drained *)
  else begin
    let task = Queue.pop t.q in
    let depth = Queue.length t.q in
    Mutex.unlock t.lock;
    record_queue t depth;
    task ();
    worker_loop t
  end

let create ?(name = "default") ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let labels = [ ("pool", name) ] in
  let t =
    {
      name;
      width = domains;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      q = Queue.create ();
      closed = false;
      workers = [];
      m_tasks =
        Metrics.counter ~labels ~help:"Tasks executed by the domain pool"
          "urs_pool_tasks_total";
      m_failures =
        Metrics.counter ~labels ~help:"Pool tasks that raised an exception"
          "urs_pool_task_failures_total";
      m_gc_minor =
        Metrics.counter ~labels
          ~help:"Minor-heap words allocated inside pool tasks (GC profiling)"
          "urs_pool_gc_minor_words_total";
      m_gc_promoted =
        Metrics.counter ~labels
          ~help:"Words promoted minor->major inside pool tasks (GC profiling)"
          "urs_pool_gc_promoted_words_total";
      m_gc_major =
        Metrics.counter ~labels
          ~help:"Major-heap words allocated inside pool tasks (GC profiling)"
          "urs_pool_gc_major_words_total";
      s_queue =
        (if domains > 1 then
           Some (Timeline.series ~horizon:16.0 ~labels "urs_pool_queue_depth")
         else None);
      s_busy =
        (if domains > 1 then
           Some (Timeline.series ~horizon:16.0 ~labels "urs_pool_busy_domains")
         else None);
      busy = Atomic.make 0;
    }
  in
  t.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  if t.closed then Mutex.unlock t.lock
  else begin
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?name ~domains f =
  let t = create ?name ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Wrap one task with a [Gc.quick_stat] delta when profiling is armed;
   raises pass through (the words allocated up to the raise still
   count). One atomic load when profiling is off. *)
let with_gc_delta t f =
  if not (Span.gc_profiling_enabled ()) then f ()
  else begin
    (* Gc.counters is domain-local (quick_stat aggregates the whole
       process): tasks running concurrently on sibling domains must not
       leak into each other's delta *)
    let minor0, promoted0, major0 = Gc.counters () in
    Fun.protect
      ~finally:(fun () ->
        let minor1, promoted1, major1 = Gc.counters () in
        Metrics.inc ~by:(minor1 -. minor0) t.m_gc_minor;
        Metrics.inc ~by:(promoted1 -. promoted0) t.m_gc_promoted;
        Metrics.inc ~by:(major1 -. major0) t.m_gc_major)
      f
  end

let check_open t =
  let closed =
    Mutex.lock t.lock;
    let c = t.closed in
    Mutex.unlock t.lock;
    c
  in
  if closed then invalid_arg "Pool.map: pool is shut down"

(* Run one batch, returning per-task outcomes in input order. Tasks
   never let exceptions escape into the worker loop: each outcome is
   reified into its slot. *)
let run_batch t f arr =
  let n = Array.length arr in
  if t.width = 1 then
    (* sequential fast path: run inline, in order, with no queueing and
       no extra metrics — bit-identical to not using a pool at all *)
    Array.map
      (fun x ->
        try Ok (with_gc_delta t (fun () -> f x))
        with e -> Error (e, Printexc.get_raw_backtrace ()))
      arr
  else begin
    let out = Array.make n None in
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let remaining = ref n in
    (* capture the submitter's trace context once per batch and restore
       it inside each task: the ambient cell is domain-local, so a task
       running on a worker domain would otherwise start an unrelated
       trace and its spans could not parent onto the submitting span *)
    let ctx = Context.capture () in
    let task i () =
      record_busy t 1;
      let r =
        try
          Ok
            (with_gc_delta t (fun () ->
                 Context.restore ctx (fun () ->
                     Span.with_ ~name:"urs_pool_task"
                       ~labels:[ ("pool", t.name) ]
                       (fun () -> f arr.(i)))))
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Metrics.inc t.m_failures;
          Error (e, bt)
      in
      record_busy t (-1);
      Metrics.inc t.m_tasks;
      out.(i) <- Some r;
      Mutex.lock batch_lock;
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock batch_lock
    in
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.push (task i) t.q
    done;
    let depth = Queue.length t.q in
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    record_queue t depth;
    (* participate until the queue is empty, then wait for stragglers
       still running on worker domains *)
    let rec drain () =
      match try_pop t with
      | Some task ->
          task ();
          drain ()
      | None -> ()
    in
    drain ();
    Mutex.lock batch_lock;
    while !remaining > 0 do
      Condition.wait batch_done batch_lock
    done;
    Mutex.unlock batch_lock;
    Array.map (function Some r -> r | None -> assert false) out
  end

let map_result t f xs =
  check_open t;
  match xs with
  | [] -> []
  | xs ->
      Array.to_list
        (Array.map
           (function Ok v -> Ok v | Error (e, _) -> Error e)
           (run_batch t f (Array.of_list xs)))

let map t f xs =
  check_open t;
  match xs with
  | [] -> []
  | xs -> (
      let results = run_batch t f (Array.of_list xs) in
      (* re-raise the earliest failing input, with its backtrace *)
      match
        Array.fold_left
          (fun acc r ->
            match (acc, r) with Some _, _ -> acc | None, Error eb -> Some eb | None, Ok _ -> None)
          None results
      with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.to_list
            (Array.map (function Ok v -> v | Error _ -> assert false) results))

let map_reduce t ~map:f ~fold ~init xs =
  List.fold_left fold init (map t f xs)
