module Metrics = Urs_obs.Metrics

type 'v entry = { value : 'v; mutable stamp : int }

type 'v t = {
  capacity : int;
  tbl : (string, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  hits : Metrics.counter;
  misses : Metrics.counter;
  evictions : Metrics.counter;
  size : Metrics.gauge;
}

let create ?registry ?(capacity = 1024) ~name () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  let labels = [ ("cache", name) ] in
  {
    capacity;
    tbl = Hashtbl.create (min capacity 64);
    lock = Mutex.create ();
    tick = 0;
    hits =
      Metrics.counter ?registry ~labels ~help:"Cache lookups that hit"
        "urs_cache_hits_total";
    misses =
      Metrics.counter ?registry ~labels ~help:"Cache lookups that missed"
        "urs_cache_misses_total";
    evictions =
      Metrics.counter ?registry ~labels ~help:"Cache LRU evictions"
        "urs_cache_evictions_total";
    size =
      Metrics.gauge ?registry ~labels ~help:"Cache entries currently held"
        "urs_cache_size";
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

(* O(n) scan on eviction: caches here hold at most a few thousand
   entries and evict rarely, so a doubly-linked LRU list is not worth
   its bookkeeping *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, s) when s <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      Metrics.inc t.evictions

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          touch t e;
          Metrics.inc t.hits;
          Some e.value
      | None ->
          Metrics.inc t.misses;
          None)

let insert_if_absent t key v =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          (* a racing computation got there first: keep its value so
             every caller observes the same result *)
          touch t e;
          e.value
      | None ->
          if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
          let e = { value = v; stamp = 0 } in
          touch t e;
          Hashtbl.add t.tbl key e;
          Metrics.set t.size (float_of_int (Hashtbl.length t.tbl));
          v)

let find_or_compute t key f =
  match find t key with
  | Some v -> v
  | None -> insert_if_absent t key (f ())

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      Metrics.set t.size 0.0)
