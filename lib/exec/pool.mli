(** Fixed-size work pool backed by OCaml 5 domains.

    [create ~domains ()] starts a pool of [domains] execution slots: the
    submitting thread itself plus [domains - 1] worker domains. With
    [domains = 1] no domain is ever spawned and every task runs inline
    on the caller, in submission order — bit-identical to not using a
    pool at all, which is what the [--jobs 1] CLI default relies on.

    Tasks may themselves submit batches to the same pool (the submitter
    participates in draining the queue, so nested batches cannot
    deadlock); this is how a parallel doctor grid nests parallel
    simulation replications. Results always come back in input order,
    and a task raising captures the exception without disturbing the
    other tasks of the batch.

    Parallel batches propagate the submitter's trace context
    ({!Urs_obs.Context}): it is captured once at submission and
    restored around every task, and each task runs inside an
    [urs_pool_task] span, so a task's spans and ledger records carry
    the submitting trace's ids and parent correctly across the domain
    boundary (rendered as flow arrows in the Perfetto export). The
    [domains = 1] inline path inherits the ambient context by simply
    running on the caller — and opens no extra span. *)

type t

val create : ?name:string -> domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains ([domains
    >= 1], raises [Invalid_argument] otherwise). [name] labels the
    pool's metrics ([urs_pool_tasks_total{pool="name"}] etc.; default
    ["default"]).

    Parallel pools ([domains > 1]) additionally record two wall-clock
    {!Urs_obs.Timeline} series labelled [pool=<name>]:
    [urs_pool_queue_depth] (pending tasks after each enqueue/dequeue)
    and [urs_pool_busy_domains] (execution slots currently inside a
    task). The [domains = 1] inline path records neither — it stays
    byte-for-byte the sequential execution.

    When GC profiling is armed ([Urs_obs.Runtime.set_profiling], off by
    default), every task — inline or on a worker domain — additionally
    folds its [Gc.counters] delta into
    [urs_pool_gc_minor_words_total] / [urs_pool_gc_promoted_words_total]
    / [urs_pool_gc_major_words_total] (labelled [pool=<name>]); minor
    words are domain-local, so the totals account per-task allocation
    exactly regardless of which domain ran the task. *)

val domains : t -> int
(** The execution width the pool was created with (including the
    submitting thread). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, using every execution
    slot of the pool, and returns the results {e in input order}. If one
    or more tasks raise, the remaining tasks still run to completion,
    then the exception of the {e earliest} failing input is re-raised
    (with its backtrace). Raises [Invalid_argument] after {!shutdown}. *)

val map_result : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!map} but reifies per-task outcomes instead of re-raising. *)

val map_reduce :
  t -> map:('a -> 'b) -> fold:('acc -> 'b -> 'acc) -> init:'acc ->
  'a list -> 'acc
(** [map_reduce pool ~map ~fold ~init xs] maps in parallel and folds the
    results sequentially in input order, so the reduction is
    deterministic even when [fold] is not commutative. *)

val shutdown : t -> unit
(** Complete all queued tasks, then stop and join every worker domain.
    Idempotent; subsequent {!map} calls raise [Invalid_argument]. *)

val with_pool : ?name:string -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, even if [f] raises. *)
