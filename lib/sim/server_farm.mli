(** Discrete-event simulation of the paper's model (Figure 1): Poisson
    arrivals to a common FCFS queue served by [N] servers that alternate
    between operative and inoperative periods drawn from arbitrary
    distributions.

    Semantics match §3 exactly: a job whose service is interrupted by a
    breakdown returns to the {e front} of the queue and is later resumed
    from the point of interruption with no switching overhead
    (preempt-resume); an operative server cannot idle while jobs wait.
    Unlike the analytical solvers, the simulator accepts {e any}
    {!Urs_prob.Distribution.t} for the period lengths — this is what
    produces the C² = 0 (deterministic) points of Figure 6.

    The event loop is allocation-free in steady state: events are int
    tags in an {!Index_heap}, jobs are slots in a recycled pool, and all
    randomness flows through {!Urs_prob.Pcg} via compiled
    {!Urs_prob.Sampler}s. A [?probe:None] run allocates only when a pool
    reaches a new high-water mark. *)

type config = {
  servers : int;
  lambda : float;  (** Poisson arrival rate. *)
  mu : float;  (** Exponential service rate. *)
  operative : Urs_prob.Distribution.t;
  inoperative : Urs_prob.Distribution.t;
  repair_crews : int option;
      (** At most this many servers under repair at once; broken servers
          queue FCFS for a crew. [None] = unlimited (the paper's model).
          For exponential repair times this matches the analytical
          [min(y,c)·η] semantics exactly. *)
}

type result = {
  mean_jobs : float;  (** Time-averaged number of jobs in the system. *)
  mean_response : float;  (** Mean response time of completed jobs. *)
  mean_operative : float;  (** Time-averaged number of operative servers. *)
  completed : int;  (** Jobs completed in the measurement window. *)
  measured_time : float;  (** Length of the measurement window. *)
  responses : float array;
      (** Response-time sample (empty if tracking was disabled). *)
  events : int;  (** Discrete events processed (warmup included). *)
}

val validate : config -> unit
(** Raises [Invalid_argument] on nonsensical parameters. *)

val run :
  ?seed:int ->
  ?warmup:float ->
  ?track_responses:bool ->
  ?probe:Probe.t ->
  duration:float ->
  config ->
  result
(** [run ~duration cfg] simulates [warmup + duration] time units
    (default [warmup = 0.1 * duration]) and reports statistics for the
    post-warmup window. Deterministic for a fixed [seed] (default 1);
    [probe], when given, records the full trajectory (warmup included)
    into its timeline series without perturbing the run. *)
