(* Monomorphic int deque over a power-of-two ring buffer. Replaces the
   two-list [Deque.t] in the simulation hot path: pushing never conses,
   popping never reverses, and the buffer is reused across the whole
   run. Values must be >= 0 (slot/server indices); [pop_front] returns
   [-1] for empty instead of an [option]. *)

type t = { mutable buf : int array; mutable head : int; mutable len : int }

let create ?(capacity = 16) () =
  let cap = max 2 capacity in
  (* round up to a power of two so wrap-around is a mask *)
  let cap =
    let c = ref 2 in
    while !c < cap do
      c := !c * 2
    done;
    !c
  in
  { buf = Array.make cap 0; head = 0; len = 0 }

let length d = d.len
let is_empty d = d.len = 0

let clear d =
  d.head <- 0;
  d.len <- 0

let grow d =
  let cap = Array.length d.buf in
  let bigger = Array.make (2 * cap) 0 in
  for i = 0 to d.len - 1 do
    bigger.(i) <- d.buf.((d.head + i) land (cap - 1))
  done;
  d.buf <- bigger;
  d.head <- 0

let push_back d x =
  if d.len = Array.length d.buf then grow d;
  let mask = Array.length d.buf - 1 in
  d.buf.((d.head + d.len) land mask) <- x;
  d.len <- d.len + 1

let push_front d x =
  if d.len = Array.length d.buf then grow d;
  let mask = Array.length d.buf - 1 in
  d.head <- (d.head - 1) land mask;
  d.buf.(d.head) <- x;
  d.len <- d.len + 1

let pop_front d =
  if d.len = 0 then -1
  else begin
    let x = d.buf.(d.head) in
    d.head <- (d.head + 1) land (Array.length d.buf - 1);
    d.len <- d.len - 1;
    x
  end
