(* Trajectory probe for a single simulation run: records queue length
   (jobs in system), jobs in service and operative-server count into
   bounded Urs_obs.Timeline series, tagged with the replication id. The
   probe hooks the state-change sites of Server_farm — it consumes no
   randomness and schedules no events, so enabling it cannot perturb the
   simulated trajectory. Jobs in service is min(jobs, operative): an
   operative server never idles while work queues in this model. *)

module Timeline = Urs_obs.Timeline

type t = {
  s_jobs : Timeline.series;
  s_service : Timeline.series;
  s_ops : Timeline.series;
  mutable jobs : int;
  mutable ops : int;
}

let create ?registry ?capacity ?horizon ?(meta = []) ?(labels = []) ~servers ()
    =
  let mk name = Timeline.series ?registry ?capacity ?horizon ~meta ~labels name in
  let p =
    {
      s_jobs = mk "urs_sim_jobs";
      s_service = mk "urs_sim_in_service";
      s_ops = mk "urs_sim_operative";
      jobs = 0;
      ops = servers;
    }
  in
  (* re-registering an existing (name, labels) returns the previous
     run's series: clear so live views are last-run-wins *)
  Timeline.clear p.s_jobs;
  Timeline.clear p.s_service;
  Timeline.clear p.s_ops;
  Timeline.record p.s_jobs ~t:0.0 0.0;
  Timeline.record p.s_service ~t:0.0 0.0;
  Timeline.record p.s_ops ~t:0.0 (float_of_int servers);
  p

let in_service p = float_of_int (min p.jobs p.ops)

let set_jobs p ~now n =
  p.jobs <- n;
  Timeline.record p.s_jobs ~t:now (float_of_int n);
  Timeline.record p.s_service ~t:now (in_service p)

let set_operative p ~now n =
  p.ops <- n;
  Timeline.record p.s_ops ~t:now (float_of_int n);
  Timeline.record p.s_service ~t:now (in_service p)

let finish p ~now =
  Timeline.finish p.s_jobs ~t:now;
  Timeline.finish p.s_service ~t:now;
  Timeline.finish p.s_ops ~t:now
