(* The time-integral accumulators live in a nested all-float record:
   OCaml stores all-float records flat, so the per-event updates in
   [set_jobs]/[record_operative] mutate raw float words without boxing.
   Keeping them in the outer (mixed) record would box every
   assignment. *)

type acc = {
  mutable start : float;
  mutable last_jobs_time : float;
  mutable jobs : float; (* current count, kept as float for flatness *)
  mutable jobs_area : float;
  mutable last_ops_time : float;
  mutable ops : float;
  mutable ops_area : float;
}

type t = {
  track_responses : bool;
  a : acc;
  resp : Urs_stats.Welford.t;
  mutable resp_samples : float array;
  mutable resp_count : int;
}

let create ?(track_responses = true) () =
  {
    track_responses;
    a =
      {
        start = 0.0;
        last_jobs_time = 0.0;
        jobs = 0.0;
        jobs_area = 0.0;
        last_ops_time = 0.0;
        ops = 0.0;
        ops_area = 0.0;
      };
    resp = Urs_stats.Welford.create ();
    resp_samples = Array.make 1024 0.0;
    resp_count = 0;
  }

let[@inline] set_jobs t ~now n =
  let a = t.a in
  a.jobs_area <- a.jobs_area +. (a.jobs *. (now -. a.last_jobs_time));
  a.last_jobs_time <- now;
  a.jobs <- float_of_int n

let[@inline] record_operative t ~now n =
  let a = t.a in
  a.ops_area <- a.ops_area +. (a.ops *. (now -. a.last_ops_time));
  a.last_ops_time <- now;
  a.ops <- float_of_int n

let[@inline] record_response t r =
  Urs_stats.Welford.add t.resp r;
  if t.track_responses then begin
    if t.resp_count = Array.length t.resp_samples then begin
      let bigger = Array.make (2 * t.resp_count) 0.0 in
      Array.blit t.resp_samples 0 bigger 0 t.resp_count;
      t.resp_samples <- bigger
    end;
    t.resp_samples.(t.resp_count) <- r;
    t.resp_count <- t.resp_count + 1
  end

let reset t ~now =
  let a = t.a in
  a.start <- now;
  a.last_jobs_time <- now;
  a.jobs_area <- 0.0;
  a.last_ops_time <- now;
  a.ops_area <- 0.0;
  Urs_stats.Welford.reset t.resp;
  t.resp_count <- 0

let mean_jobs t ~now =
  let a = t.a in
  let area = a.jobs_area +. (a.jobs *. (now -. a.last_jobs_time)) in
  let elapsed = now -. a.start in
  if elapsed <= 0.0 then 0.0 else area /. elapsed

let mean_operative t ~now =
  let a = t.a in
  let area = a.ops_area +. (a.ops *. (now -. a.last_ops_time)) in
  let elapsed = now -. a.start in
  if elapsed <= 0.0 then 0.0 else area /. elapsed

let mean_response t = Urs_stats.Welford.mean t.resp

let completed t = Urs_stats.Welford.count t.resp

let responses t = Array.sub t.resp_samples 0 t.resp_count

let response_percentile t p =
  if not t.track_responses then
    invalid_arg "Collector.response_percentile: tracking disabled";
  if t.resp_count = 0 then
    invalid_arg "Collector.response_percentile: no responses recorded";
  Urs_stats.Empirical.quantile (responses t) p
