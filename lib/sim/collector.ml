type t = {
  track_responses : bool;
  mutable start : float;
  mutable last_jobs_time : float;
  mutable jobs : int;
  mutable jobs_area : float;
  mutable last_ops_time : float;
  mutable ops : int;
  mutable ops_area : float;
  mutable resp : Urs_stats.Welford.t;
  mutable resp_samples : float array;
  mutable resp_count : int;
}

let create ?(track_responses = true) () =
  {
    track_responses;
    start = 0.0;
    last_jobs_time = 0.0;
    jobs = 0;
    jobs_area = 0.0;
    last_ops_time = 0.0;
    ops = 0;
    ops_area = 0.0;
    resp = Urs_stats.Welford.create ();
    resp_samples = Array.make 1024 0.0;
    resp_count = 0;
  }

let set_jobs t ~now n =
  t.jobs_area <- t.jobs_area +. (float_of_int t.jobs *. (now -. t.last_jobs_time));
  t.last_jobs_time <- now;
  t.jobs <- n

let record_operative t ~now n =
  t.ops_area <- t.ops_area +. (float_of_int t.ops *. (now -. t.last_ops_time));
  t.last_ops_time <- now;
  t.ops <- n

let record_response t r =
  Urs_stats.Welford.add t.resp r;
  if t.track_responses then begin
    if t.resp_count = Array.length t.resp_samples then begin
      let bigger = Array.make (2 * t.resp_count) 0.0 in
      Array.blit t.resp_samples 0 bigger 0 t.resp_count;
      t.resp_samples <- bigger
    end;
    t.resp_samples.(t.resp_count) <- r;
    t.resp_count <- t.resp_count + 1
  end

let reset t ~now =
  t.start <- now;
  t.last_jobs_time <- now;
  t.jobs_area <- 0.0;
  t.last_ops_time <- now;
  t.ops_area <- 0.0;
  t.resp <- Urs_stats.Welford.create ();
  t.resp_count <- 0

let mean_jobs t ~now =
  let area = t.jobs_area +. (float_of_int t.jobs *. (now -. t.last_jobs_time)) in
  let elapsed = now -. t.start in
  if elapsed <= 0.0 then 0.0 else area /. elapsed

let mean_operative t ~now =
  let area = t.ops_area +. (float_of_int t.ops *. (now -. t.last_ops_time)) in
  let elapsed = now -. t.start in
  if elapsed <= 0.0 then 0.0 else area /. elapsed

let mean_response t = Urs_stats.Welford.mean t.resp

let completed t = Urs_stats.Welford.count t.resp

let responses t = Array.sub t.resp_samples 0 t.resp_count

let response_percentile t p =
  if not t.track_responses then
    invalid_arg "Collector.response_percentile: tracking disabled";
  if t.resp_count = 0 then
    invalid_arg "Collector.response_percentile: no responses recorded";
  Urs_stats.Empirical.quantile (responses t) p
