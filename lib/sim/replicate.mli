(** Independent replications of the simulator with Student-t confidence
    intervals across replications. *)

type interval = { estimate : float; half_width : float }

type summary = {
  mean_jobs : interval;
  mean_response : interval;
  mean_operative : interval;
  replications : int;
  confidence : float;
}

val run :
  ?seed:int ->
  ?replications:int ->
  ?confidence:float ->
  ?warmup:float ->
  duration:float ->
  Server_farm.config ->
  summary
(** Defaults: [replications = 10], [confidence = 0.95], [seed = 1]
    (replication [i] uses an independent stream derived from the seed).
    Other arguments are passed to {!Server_farm.run}. *)

val pp_summary : Format.formatter -> summary -> unit
