(** Independent replications of the simulator with Student-t confidence
    intervals across replications. *)

type interval = { estimate : float; half_width : float }

type summary = {
  mean_jobs : interval;
  mean_response : interval;
  mean_operative : interval;
  replications : int;
  confidence : float;
}

val run :
  ?seed:int ->
  ?replications:int ->
  ?confidence:float ->
  ?warmup:float ->
  ?pool:Urs_exec.Pool.t ->
  duration:float ->
  Server_farm.config ->
  summary
(** Defaults: [replications = 10], [confidence = 0.95], [seed = 1].
    Replication [i] uses an independent split stream
    ({!Urs_prob.Rng.split_seed}) derived from the master seed; all
    per-replication seeds are drawn up front, so running on a [pool]
    ([--jobs N]) produces a summary bit-identical to the sequential
    run for the same seed. Other arguments are passed to
    {!Server_farm.run}. *)

val pp_summary : Format.formatter -> summary -> unit
