(** Independent replications of the simulator with Student-t confidence
    intervals across replications. *)

type interval = { estimate : float; half_width : float }

type summary = {
  mean_jobs : interval;
  mean_response : interval;
  mean_operative : interval;
  replications : int;
  confidence : float;
}

val progress_task : string
(** Name of the {!Urs_obs.Progress} task ticked per replication
    (["sim:replications"]). *)

val run :
  ?seed:int ->
  ?replications:int ->
  ?confidence:float ->
  ?warmup:float ->
  ?pool:Urs_exec.Pool.t ->
  ?timelines:bool ->
  ?timeline_registry:Urs_obs.Timeline.t ->
  ?timeline_capacity:int ->
  duration:float ->
  Server_farm.config ->
  summary
(** Defaults: [replications = 10], [confidence = 0.95], [seed = 1].
    Replication [i] uses an independent split stream
    ({!Urs_prob.Rng.split_seed}) derived from the master seed; all
    per-replication seeds are drawn up front, so running on a [pool]
    ([--jobs N]) produces a summary bit-identical to the sequential
    run for the same seed.

    Unless [timelines] is [false], each replication attaches a {!Probe}
    recording its full trajectory (warmup included) into
    [timeline_registry] (default {!Urs_obs.Timeline.default}) under
    labels [rep=<i>], with the owning domain id in the series meta. All
    replications share one bucket layout (horizon = warmup + duration),
    so their trajectories average bucket-by-bucket; the contents are
    identical at any pool width. Re-running replaces the previous run's
    series (last-run-wins on the live endpoint). Other arguments are
    passed to {!Server_farm.run}. *)

val pp_summary : Format.formatter -> summary -> unit
