(** Binary min-heap keyed by event time, with FIFO tie-breaking for
    equal times (a monotone sequence number is attached internally). *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at the given time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
(** Earliest scheduled time without removing. *)

val clear : 'a t -> unit
