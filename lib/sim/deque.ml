(* Two-stack deque: [front] holds elements to serve next (top first),
   [back] holds later arrivals in reverse; amortized O(1). *)
type 'a t = { mutable front : 'a list; mutable back : 'a list; mutable n : int }

let create () = { front = []; back = []; n = 0 }

let length d = d.n

let is_empty d = d.n = 0

let push_back d x =
  d.back <- x :: d.back;
  d.n <- d.n + 1

let push_front d x =
  d.front <- x :: d.front;
  d.n <- d.n + 1

let pop_front d =
  match d.front with
  | x :: rest ->
      d.front <- rest;
      d.n <- d.n - 1;
      Some x
  | [] -> (
      match List.rev d.back with
      | [] -> None
      | x :: rest ->
          d.front <- rest;
          d.back <- [];
          d.n <- d.n - 1;
          Some x)

let clear d =
  d.front <- [];
  d.back <- [];
  d.n <- 0
