(** Mutable double-ended queue, used for the job queue: arrivals join at
    the back; a job whose service is interrupted by a breakdown returns
    to the {e front} (paper §3). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit
val pop_front : 'a t -> 'a option
val clear : 'a t -> unit
