type t = { mutable clock : float; events : (t -> unit) Event_heap.t }

let create () = { clock = 0.0; events = Event_heap.create () }

let now e = e.clock

let schedule e ~delay f =
  if delay < 0.0 || Float.is_nan delay then
    invalid_arg "Engine.schedule: negative delay";
  Event_heap.push e.events ~time:(e.clock +. delay) f

let run_until e deadline =
  let continue_loop = ref true in
  while !continue_loop do
    match Event_heap.peek_time e.events with
    | Some t when t <= deadline -> (
        match Event_heap.pop e.events with
        | Some (time, f) ->
            e.clock <- time;
            f e
        | None -> continue_loop := false)
    | Some _ | None -> continue_loop := false
  done;
  e.clock <- deadline

let pending e = Event_heap.size e.events
