module Metrics = Urs_obs.Metrics

let m_events =
  Metrics.counter ~help:"Simulation events processed" "urs_sim_events_total"

let m_heap_hwm =
  Metrics.gauge ~help:"Event-heap high-water mark (process-wide)"
    "urs_sim_event_heap_high_water"

type t = {
  mutable clock : float;
  events : (t -> unit) Event_heap.t;
  mutable processed : int;
  mutable heap_max : int;
}

let create () =
  { clock = 0.0; events = Event_heap.create (); processed = 0; heap_max = 0 }

let now e = e.clock

let schedule e ~delay f =
  if delay < 0.0 || Float.is_nan delay then
    invalid_arg "Engine.schedule: negative delay";
  Event_heap.push e.events ~time:(e.clock +. delay) f;
  let sz = Event_heap.size e.events in
  if sz > e.heap_max then e.heap_max <- sz

let run_until e deadline =
  let before = e.processed in
  let continue_loop = ref true in
  while !continue_loop do
    match Event_heap.peek_time e.events with
    | Some t when t <= deadline -> (
        match Event_heap.pop e.events with
        | Some (time, f) ->
            e.clock <- time;
            e.processed <- e.processed + 1;
            f e
        | None -> continue_loop := false)
    | Some _ | None -> continue_loop := false
  done;
  e.clock <- deadline;
  Metrics.inc ~by:(float_of_int (e.processed - before)) m_events;
  Metrics.set_max m_heap_hwm (float_of_int e.heap_max)

let pending e = Event_heap.size e.events

let events_processed e = e.processed

let heap_high_water e = e.heap_max
