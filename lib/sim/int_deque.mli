(** Allocation-free double-ended queue of nonnegative ints (job slots,
    server indices) over a reusable ring buffer. The simulation job
    queue pushes preempted jobs to the front (preempt-resume) and new
    arrivals to the back; in steady state no operation allocates. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 16) is rounded up to a power of two. *)

val length : t -> int
val is_empty : t -> bool
val clear : t -> unit

val push_back : t -> int -> unit
val push_front : t -> int -> unit

val pop_front : t -> int
(** The front element, or [-1] when empty. Stored values must be
    nonnegative for the sentinel to be unambiguous. *)
