module D = Urs_prob.Distribution
module Rng = Urs_prob.Rng
module Metrics = Urs_obs.Metrics

let m_arrivals =
  Metrics.counter ~help:"Jobs arrived across all simulation runs"
    "urs_sim_arrivals_total"

let m_completions =
  Metrics.counter ~help:"Jobs completed across all simulation runs"
    "urs_sim_completions_total"

let m_breakdowns =
  Metrics.counter ~help:"Server breakdowns across all simulation runs"
    "urs_sim_breakdowns_total"

let m_preemptions =
  Metrics.counter ~help:"Jobs preempted by a breakdown mid-service"
    "urs_sim_preemptions_total"

let m_repairs =
  Metrics.counter ~help:"Server repairs completed across all simulation runs"
    "urs_sim_repairs_total"

type config = {
  servers : int;
  lambda : float;
  mu : float;
  operative : D.t;
  inoperative : D.t;
  repair_crews : int option;
}

type result = {
  mean_jobs : float;
  mean_response : float;
  mean_operative : float;
  completed : int;
  measured_time : float;
  responses : float array;
}

type job = { arrived : float; mutable remaining : float }

type server = {
  mutable operative : bool;
  mutable epoch : int; (* bumped on any change that invalidates a completion *)
  mutable current : (job * float) option; (* job and its service start time *)
}

let validate cfg =
  if cfg.servers < 1 then invalid_arg "Server_farm: servers must be >= 1";
  (match cfg.repair_crews with
  | Some c when c < 1 -> invalid_arg "Server_farm: repair_crews must be >= 1"
  | _ -> ());
  if cfg.lambda <= 0.0 then invalid_arg "Server_farm: lambda must be positive";
  if cfg.mu <= 0.0 then invalid_arg "Server_farm: mu must be positive";
  if D.mean cfg.operative <= 0.0 then
    invalid_arg "Server_farm: operative periods must have positive mean";
  if D.mean cfg.inoperative <= 0.0 then
    invalid_arg "Server_farm: inoperative periods must have positive mean"

type state = {
  cfg : config;
  rng : Rng.t;
  servers_arr : server array;
  queue : job Deque.t;
  repair_queue : server Deque.t; (* broken servers waiting for a crew *)
  mutable idle_crews : int;
  coll : Collector.t;
  probe : Probe.t option;
  mutable in_system : int;
}

let probe_jobs st ~now =
  match st.probe with
  | Some p -> Probe.set_jobs p ~now st.in_system
  | None -> ()

let probe_ops st ~now n =
  match st.probe with Some p -> Probe.set_operative p ~now n | None -> ()

let operative_count st =
  Array.fold_left (fun acc s -> if s.operative then acc + 1 else acc) 0 st.servers_arr

let sample_positive rng dist =
  (* guard against zero-length periods from degenerate distributions *)
  Float.max 1e-12 (D.sample dist rng)

let first_idle_operative st =
  let found = ref None in
  (try
     Array.iter
       (fun s ->
         if s.operative && s.current = None then begin
           found := Some s;
           raise Exit
         end)
       st.servers_arr
   with Exit -> ());
  !found

let rec dispatch st eng =
  (* assign queued jobs to idle operative servers *)
  match first_idle_operative st with
  | None -> ()
  | Some srv -> (
      match Deque.pop_front st.queue with
      | None -> ()
      | Some job ->
          srv.current <- Some (job, Engine.now eng);
          srv.epoch <- srv.epoch + 1;
          let epoch = srv.epoch in
          Engine.schedule eng ~delay:job.remaining (fun eng ->
              completion st eng srv epoch);
          dispatch st eng)

and completion st eng srv epoch =
  if srv.epoch = epoch then begin
    match srv.current with
    | Some (job, _) ->
        Metrics.inc m_completions;
        srv.current <- None;
        srv.epoch <- srv.epoch + 1;
        st.in_system <- st.in_system - 1;
        Collector.set_jobs st.coll ~now:(Engine.now eng) st.in_system;
        probe_jobs st ~now:(Engine.now eng);
        Collector.record_response st.coll (Engine.now eng -. job.arrived);
        dispatch st eng
    | None -> ()
  end

let rec breakdown st eng srv =
  let now = Engine.now eng in
  Metrics.inc m_breakdowns;
  srv.operative <- false;
  srv.epoch <- srv.epoch + 1;
  (match srv.current with
  | Some (job, started) ->
      (* preempt: the job keeps its residual work and rejoins the front *)
      Metrics.inc m_preemptions;
      job.remaining <- Float.max 0.0 (job.remaining -. (now -. started));
      srv.current <- None;
      Deque.push_front st.queue job
  | None -> ());
  let ops = operative_count st in
  Collector.record_operative st.coll ~now ops;
  probe_ops st ~now ops;
  if st.idle_crews > 0 then begin
    st.idle_crews <- st.idle_crews - 1;
    start_repair st eng srv
  end
  else Deque.push_back st.repair_queue srv;
  (* the preempted job may resume at once on another idle server *)
  dispatch st eng

and start_repair st eng srv =
  Engine.schedule eng ~delay:(sample_positive st.rng st.cfg.inoperative)
    (fun eng -> repair st eng srv)

and repair st eng srv =
  Metrics.inc m_repairs;
  srv.operative <- true;
  let ops = operative_count st in
  Collector.record_operative st.coll ~now:(Engine.now eng) ops;
  probe_ops st ~now:(Engine.now eng) ops;
  Engine.schedule eng ~delay:(sample_positive st.rng st.cfg.operative)
    (fun eng -> breakdown st eng srv);
  (* hand the freed crew to the next broken server, if any *)
  (match Deque.pop_front st.repair_queue with
  | Some next -> start_repair st eng next
  | None -> st.idle_crews <- st.idle_crews + 1);
  dispatch st eng

let rec arrival st eng =
  let now = Engine.now eng in
  Metrics.inc m_arrivals;
  let job = { arrived = now; remaining = Rng.exponential st.rng st.cfg.mu } in
  st.in_system <- st.in_system + 1;
  Collector.set_jobs st.coll ~now st.in_system;
  probe_jobs st ~now;
  Deque.push_back st.queue job;
  dispatch st eng;
  Engine.schedule eng ~delay:(Rng.exponential st.rng st.cfg.lambda) (fun eng ->
      arrival st eng)

let run ?(seed = 1) ?warmup ?(track_responses = true) ?probe ~duration cfg =
  validate cfg;
  if duration <= 0.0 then invalid_arg "Server_farm.run: duration must be positive";
  let warmup = match warmup with Some w -> w | None -> 0.1 *. duration in
  if warmup < 0.0 then invalid_arg "Server_farm.run: negative warmup";
  let eng = Engine.create () in
  let st =
    {
      cfg;
      rng = Rng.create seed;
      servers_arr =
        Array.init cfg.servers (fun _ ->
            { operative = true; epoch = 0; current = None });
      queue = Deque.create ();
      repair_queue = Deque.create ();
      idle_crews =
        (match cfg.repair_crews with
        | None -> cfg.servers
        | Some c -> min c cfg.servers);
      coll = Collector.create ~track_responses ();
      probe;
      in_system = 0;
    }
  in
  Collector.record_operative st.coll ~now:0.0 cfg.servers;
  (* stagger initial breakdowns *)
  Array.iter
    (fun srv ->
      Engine.schedule eng ~delay:(sample_positive st.rng cfg.operative)
        (fun eng -> breakdown st eng srv))
    st.servers_arr;
  Engine.schedule eng ~delay:(Rng.exponential st.rng cfg.lambda) (fun eng ->
      arrival st eng);
  Engine.run_until eng warmup;
  Collector.reset st.coll ~now:warmup;
  let stop = warmup +. duration in
  Engine.run_until eng stop;
  (match probe with Some p -> Probe.finish p ~now:stop | None -> ());
  {
    mean_jobs = Collector.mean_jobs st.coll ~now:stop;
    mean_response = Collector.mean_response st.coll;
    mean_operative = Collector.mean_operative st.coll ~now:stop;
    completed = Collector.completed st.coll;
    measured_time = duration;
    responses = Collector.responses st.coll;
  }
