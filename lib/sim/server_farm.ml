(* Allocation-free discrete-event core. The hot loop works entirely on
   preallocated unboxed storage: servers are struct-of-arrays, jobs live
   in a slot pool with a free list, the pending-event set is an
   {!Index_heap} of int tags, and randomness comes from the
   single-int-state {!Urs_prob.Pcg} through compiled
   {!Urs_prob.Sampler}s. Event handlers dispatch on an int kind, so a
   [?probe:None] run performs no per-event allocation in steady state;
   the only growth is doubling of pools when the system reaches a new
   high-water occupancy. Metric counters are accumulated as plain ints
   and flushed to the registry once per run. *)

module D = Urs_prob.Distribution
module Pcg = Urs_prob.Pcg
module Sampler = Urs_prob.Sampler
module Metrics = Urs_obs.Metrics

let m_arrivals =
  Metrics.counter ~help:"Jobs arrived across all simulation runs"
    "urs_sim_arrivals_total"

let m_completions =
  Metrics.counter ~help:"Jobs completed across all simulation runs"
    "urs_sim_completions_total"

let m_breakdowns =
  Metrics.counter ~help:"Server breakdowns across all simulation runs"
    "urs_sim_breakdowns_total"

let m_preemptions =
  Metrics.counter ~help:"Jobs preempted by a breakdown mid-service"
    "urs_sim_preemptions_total"

let m_repairs =
  Metrics.counter ~help:"Server repairs completed across all simulation runs"
    "urs_sim_repairs_total"

(* same registry entries the legacy Engine maintains *)
let m_events =
  Metrics.counter ~help:"Simulation events processed" "urs_sim_events_total"

let m_heap_hwm =
  Metrics.gauge ~help:"Event-heap high-water mark (process-wide)"
    "urs_sim_event_heap_high_water"

type config = {
  servers : int;
  lambda : float;
  mu : float;
  operative : D.t;
  inoperative : D.t;
  repair_crews : int option;
}

type result = {
  mean_jobs : float;
  mean_response : float;
  mean_operative : float;
  completed : int;
  measured_time : float;
  responses : float array;
  events : int;
}

let validate cfg =
  if cfg.servers < 1 then invalid_arg "Server_farm: servers must be >= 1";
  (match cfg.repair_crews with
  | Some c when c < 1 -> invalid_arg "Server_farm: repair_crews must be >= 1"
  | _ -> ());
  if cfg.lambda <= 0.0 then invalid_arg "Server_farm: lambda must be positive";
  if cfg.mu <= 0.0 then invalid_arg "Server_farm: mu must be positive";
  if D.mean cfg.operative <= 0.0 then
    invalid_arg "Server_farm: operative periods must have positive mean";
  if D.mean cfg.inoperative <= 0.0 then
    invalid_arg "Server_farm: inoperative periods must have positive mean"

(* event kinds; arrivals never enter the heap (see [clk.next_arrival]) *)
let k_completion = 1
let k_breakdown = 2
let k_repair = 3

(* Per-event float state lives in its own all-float record so
   assignments store raw floats instead of boxing into the mixed state
   record. Arrivals regenerate themselves in increasing time order, so
   the next one is a scalar compared against the heap top — roughly half
   of all events never pay for a heap push/sift. *)
type clk = { mutable now : float; mutable next_arrival : float }

type state = {
  n : int;
  lambda : float;
  mu : float;
  op : Sampler.t;
  inop : Sampler.t;
  rng : Pcg.t;
  (* servers, struct-of-arrays *)
  operative : bool array;
  epoch : int array; (* bumped on any change that invalidates a completion *)
  cur_job : int array; (* job slot in service, or -1 *)
  started : float array; (* service start time of cur_job *)
  (* job pool: slots recycled through a free-list stack *)
  mutable arrived : float array;
  mutable remaining : float array;
  mutable job_free : int array;
  mutable job_free_top : int;
  mutable next_job : int;
  queue : Int_deque.t; (* waiting job slots; preempted jobs re-enter front *)
  repair_queue : Int_deque.t; (* broken servers waiting for a crew *)
  mutable idle_crews : int;
  (* O(1) mirrors of the server arrays: operative servers, and operative
     servers currently holding a job *)
  mutable ops_up : int;
  mutable busy : int;
  coll : Collector.t;
  probe : Probe.t option;
  mutable in_system : int;
  heap : Index_heap.t;
  clk : clk;
  (* per-run tallies, flushed to the metrics registry at the end *)
  mutable events : int;
  mutable arrivals : int;
  mutable completions : int;
  mutable breakdowns : int;
  mutable preemptions : int;
  mutable repairs : int;
  mutable heap_max : int;
}

let[@inline] probe_jobs st =
  match st.probe with
  | Some p -> Probe.set_jobs p ~now:st.clk.now st.in_system
  | None -> ()

let[@inline] probe_ops st ops =
  match st.probe with
  | Some p -> Probe.set_operative p ~now:st.clk.now ops
  | None -> ()

let[@inline] sample_positive st s =
  (* guard against zero-length periods from degenerate distributions *)
  Float.max 1e-12 (Sampler.sample s st.rng)

let[@inline] schedule st ~delay ~kind ~server ~epoch =
  Index_heap.push st.heap ~time:(st.clk.now +. delay) ~kind ~server ~epoch;
  let sz = Index_heap.size st.heap in
  if sz > st.heap_max then st.heap_max <- sz

let first_idle_operative st =
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < st.n do
    if st.operative.(!i) && st.cur_job.(!i) < 0 then found := !i;
    incr i
  done;
  !found

let dispatch st =
  (* assign queued jobs to idle operative servers; [busy < ops_up]
     guarantees the scan finds one, so the common no-idle-server case
     exits without touching the server arrays at all *)
  while st.busy < st.ops_up && not (Int_deque.is_empty st.queue) do
    let srv = first_idle_operative st in
    let job = Int_deque.pop_front st.queue in
    st.cur_job.(srv) <- job;
    st.started.(srv) <- st.clk.now;
    st.busy <- st.busy + 1;
    st.epoch.(srv) <- st.epoch.(srv) + 1;
    schedule st ~delay:st.remaining.(job) ~kind:k_completion ~server:srv
      ~epoch:st.epoch.(srv)
  done

let grow_jobs st =
  let cap = Array.length st.arrived in
  let bigger = 2 * cap in
  let gf a =
    let b = Array.make bigger 0.0 in
    Array.blit a 0 b 0 cap;
    b
  in
  let gi a =
    let b = Array.make bigger 0 in
    Array.blit a 0 b 0 cap;
    b
  in
  st.arrived <- gf st.arrived;
  st.remaining <- gf st.remaining;
  st.job_free <- gi st.job_free

let[@inline] alloc_job st ~arrived ~remaining =
  let j =
    if st.job_free_top > 0 then begin
      st.job_free_top <- st.job_free_top - 1;
      st.job_free.(st.job_free_top)
    end
    else begin
      if st.next_job = Array.length st.arrived then grow_jobs st;
      let j = st.next_job in
      st.next_job <- st.next_job + 1;
      j
    end
  in
  st.arrived.(j) <- arrived;
  st.remaining.(j) <- remaining;
  j

let[@inline] free_job st j =
  st.job_free.(st.job_free_top) <- j;
  st.job_free_top <- st.job_free_top + 1

let on_completion st srv ep =
  (* a stale epoch means the server broke down (or was redispatched)
     after this completion was scheduled: ignore the event *)
  if st.epoch.(srv) = ep then begin
    let job = st.cur_job.(srv) in
    if job >= 0 then begin
      st.completions <- st.completions + 1;
      st.cur_job.(srv) <- -1;
      st.busy <- st.busy - 1;
      st.epoch.(srv) <- st.epoch.(srv) + 1;
      st.in_system <- st.in_system - 1;
      Collector.set_jobs st.coll ~now:st.clk.now st.in_system;
      probe_jobs st;
      Collector.record_response st.coll (st.clk.now -. st.arrived.(job));
      free_job st job;
      (* the dispatch invariant (no idle operative server while jobs
         queue) means [srv] is the only idle operative server right now,
         so the next queued job goes straight to it — same assignment
         dispatch's scan would make, without the scan *)
      if not (Int_deque.is_empty st.queue) then begin
        let next = Int_deque.pop_front st.queue in
        st.cur_job.(srv) <- next;
        st.started.(srv) <- st.clk.now;
        st.busy <- st.busy + 1;
        st.epoch.(srv) <- st.epoch.(srv) + 1;
        schedule st ~delay:st.remaining.(next) ~kind:k_completion ~server:srv
          ~epoch:st.epoch.(srv)
      end
    end
  end

let start_repair st srv =
  schedule st ~delay:(sample_positive st st.inop) ~kind:k_repair ~server:srv
    ~epoch:0

let on_breakdown st srv =
  st.breakdowns <- st.breakdowns + 1;
  st.operative.(srv) <- false;
  st.ops_up <- st.ops_up - 1;
  st.epoch.(srv) <- st.epoch.(srv) + 1;
  let job = st.cur_job.(srv) in
  if job >= 0 then begin
    (* preempt: the job keeps its residual work and rejoins the front *)
    st.preemptions <- st.preemptions + 1;
    st.remaining.(job) <-
      Float.max 0.0 (st.remaining.(job) -. (st.clk.now -. st.started.(srv)));
    st.cur_job.(srv) <- -1;
    st.busy <- st.busy - 1;
    Int_deque.push_front st.queue job
  end;
  Collector.record_operative st.coll ~now:st.clk.now st.ops_up;
  probe_ops st st.ops_up;
  if st.idle_crews > 0 then begin
    st.idle_crews <- st.idle_crews - 1;
    start_repair st srv
  end
  else Int_deque.push_back st.repair_queue srv;
  (* the preempted job may resume at once on another idle server *)
  dispatch st

let on_repair st srv =
  st.repairs <- st.repairs + 1;
  st.operative.(srv) <- true;
  st.ops_up <- st.ops_up + 1;
  Collector.record_operative st.coll ~now:st.clk.now st.ops_up;
  probe_ops st st.ops_up;
  schedule st ~delay:(sample_positive st st.op) ~kind:k_breakdown ~server:srv
    ~epoch:0;
  (* hand the freed crew to the next broken server, if any *)
  let next = Int_deque.pop_front st.repair_queue in
  if next >= 0 then start_repair st next else st.idle_crews <- st.idle_crews + 1;
  dispatch st

let on_arrival st =
  st.arrivals <- st.arrivals + 1;
  let job =
    alloc_job st ~arrived:st.clk.now
      ~remaining:(Pcg.exponential st.rng st.mu)
  in
  st.in_system <- st.in_system + 1;
  Collector.set_jobs st.coll ~now:st.clk.now st.in_system;
  probe_jobs st;
  (* dispatch invariant: an idle operative server implies an empty
     queue, so the new job either starts service immediately or queues —
     never both *)
  if st.busy < st.ops_up then begin
    let srv = first_idle_operative st in
    st.cur_job.(srv) <- job;
    st.started.(srv) <- st.clk.now;
    st.busy <- st.busy + 1;
    st.epoch.(srv) <- st.epoch.(srv) + 1;
    schedule st ~delay:st.remaining.(job) ~kind:k_completion ~server:srv
      ~epoch:st.epoch.(srv)
  end
  else Int_deque.push_back st.queue job;
  st.clk.next_arrival <- st.clk.now +. Pcg.exponential st.rng st.lambda

let drain st deadline =
  let h = st.heap in
  let c = st.clk in
  let continue_loop = ref true in
  while !continue_loop do
    let th =
      if Index_heap.is_empty h then infinity else Index_heap.top_time h
    in
    if c.next_arrival <= th then
      if c.next_arrival > deadline then continue_loop := false
      else begin
        c.now <- c.next_arrival;
        st.events <- st.events + 1;
        on_arrival st
      end
    else if th > deadline then continue_loop := false
    else begin
      let kind = Index_heap.top_kind h in
      let srv = Index_heap.top_server h in
      let ep = Index_heap.top_epoch h in
      Index_heap.drop h;
      c.now <- th;
      st.events <- st.events + 1;
      if kind = k_completion then on_completion st srv ep
      else if kind = k_breakdown then on_breakdown st srv
      else on_repair st srv
    end
  done;
  c.now <- deadline

let flush_metrics st =
  Metrics.inc ~by:(float_of_int st.arrivals) m_arrivals;
  Metrics.inc ~by:(float_of_int st.completions) m_completions;
  Metrics.inc ~by:(float_of_int st.breakdowns) m_breakdowns;
  Metrics.inc ~by:(float_of_int st.preemptions) m_preemptions;
  Metrics.inc ~by:(float_of_int st.repairs) m_repairs;
  Metrics.inc ~by:(float_of_int st.events) m_events;
  Metrics.set_max m_heap_hwm (float_of_int st.heap_max)

let run ?(seed = 1) ?warmup ?(track_responses = true) ?probe ~duration cfg =
  validate cfg;
  if duration <= 0.0 then
    invalid_arg "Server_farm.run: duration must be positive";
  let warmup = match warmup with Some w -> w | None -> 0.1 *. duration in
  if warmup < 0.0 then invalid_arg "Server_farm.run: negative warmup";
  let n = cfg.servers in
  let st =
    {
      n;
      lambda = cfg.lambda;
      mu = cfg.mu;
      op = Sampler.compile cfg.operative;
      inop = Sampler.compile cfg.inoperative;
      rng = Pcg.create seed;
      operative = Array.make n true;
      epoch = Array.make n 0;
      cur_job = Array.make n (-1);
      started = Array.make n 0.0;
      arrived = Array.make 64 0.0;
      remaining = Array.make 64 0.0;
      job_free = Array.make 64 0;
      job_free_top = 0;
      next_job = 0;
      queue = Int_deque.create ~capacity:64 ();
      repair_queue = Int_deque.create ~capacity:(max 2 n) ();
      idle_crews =
        (match cfg.repair_crews with None -> n | Some c -> min c n);
      ops_up = n;
      busy = 0;
      coll = Collector.create ~track_responses ();
      probe;
      in_system = 0;
      heap = Index_heap.create ~capacity:(max 64 (4 * n)) ();
      clk = { now = 0.0; next_arrival = infinity };
      events = 0;
      arrivals = 0;
      completions = 0;
      breakdowns = 0;
      preemptions = 0;
      repairs = 0;
      heap_max = 0;
    }
  in
  Collector.record_operative st.coll ~now:0.0 n;
  (* stagger initial breakdowns *)
  for srv = 0 to n - 1 do
    schedule st ~delay:(sample_positive st st.op) ~kind:k_breakdown ~server:srv
      ~epoch:0
  done;
  st.clk.next_arrival <- Pcg.exponential st.rng cfg.lambda;
  drain st warmup;
  Collector.reset st.coll ~now:warmup;
  let stop = warmup +. duration in
  drain st stop;
  (match probe with Some p -> Probe.finish p ~now:stop | None -> ());
  flush_metrics st;
  {
    mean_jobs = Collector.mean_jobs st.coll ~now:stop;
    mean_response = Collector.mean_response st.coll;
    mean_operative = Collector.mean_operative st.coll ~now:stop;
    completed = Collector.completed st.coll;
    measured_time = duration;
    responses = Collector.responses st.coll;
    events = st.events;
  }
