(* Index-based binary min-heap over preallocated parallel arrays.

   Payloads live in slot arrays (time/kind/server/epoch/seq, all
   unboxed); the heap itself is an int array of slot ids, so sift
   operations swap single ints and comparisons read raw floats. Slots
   freed by [drop] are recycled through an explicit free-list stack, so
   a running simulation reaches a steady state where [push] never
   allocates. Equal times break ties by insertion order (FIFO), exactly
   like the legacy [Event_heap]. *)

type t = {
  mutable time : float array; (* slot -> event time *)
  mutable kind : int array; (* slot -> event tag *)
  mutable server : int array; (* slot -> server payload (or -1) *)
  mutable epoch : int array; (* slot -> epoch payload *)
  mutable seq : int array; (* slot -> insertion sequence (tie-break) *)
  mutable heap : int array; (* heap position -> slot *)
  mutable size : int;
  mutable free : int array; (* stack of recycled slots *)
  mutable free_top : int;
  mutable next_slot : int; (* slots [0, next_slot) have been handed out *)
  mutable next_seq : int;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  {
    time = Array.make capacity 0.0;
    kind = Array.make capacity 0;
    server = Array.make capacity 0;
    epoch = Array.make capacity 0;
    seq = Array.make capacity 0;
    heap = Array.make capacity 0;
    size = 0;
    free = Array.make capacity 0;
    free_top = 0;
    next_slot = 0;
    next_seq = 0;
  }

let size h = h.size
let is_empty h = h.size = 0

let clear h =
  (* a cleared heap behaves exactly like a fresh one: tie-break state
     ([next_seq]) resets too, unlike the historical Event_heap bug *)
  h.size <- 0;
  h.free_top <- 0;
  h.next_slot <- 0;
  h.next_seq <- 0

let grow h =
  let cap = Array.length h.time in
  let bigger = 2 * cap in
  let grow_f a =
    let b = Array.make bigger 0.0 in
    Array.blit a 0 b 0 cap;
    b
  in
  let grow_i a =
    let b = Array.make bigger 0 in
    Array.blit a 0 b 0 cap;
    b
  in
  h.time <- grow_f h.time;
  h.kind <- grow_i h.kind;
  h.server <- grow_i h.server;
  h.epoch <- grow_i h.epoch;
  h.seq <- grow_i h.seq;
  h.heap <- grow_i h.heap;
  h.free <- grow_i h.free

let[@inline] lt h a b =
  (* callers pass live slot ids, always within the arrays *)
  let ta = Array.unsafe_get h.time a and tb = Array.unsafe_get h.time b in
  ta < tb || (ta = tb && Array.unsafe_get h.seq a < Array.unsafe_get h.seq b)

let[@inline] push h ~time ~kind ~server ~epoch =
  let slot =
    if h.free_top > 0 then begin
      h.free_top <- h.free_top - 1;
      h.free.(h.free_top)
    end
    else begin
      if h.next_slot = Array.length h.time then grow h;
      let s = h.next_slot in
      h.next_slot <- h.next_slot + 1;
      s
    end
  in
  Array.unsafe_set h.time slot time;
  Array.unsafe_set h.kind slot kind;
  Array.unsafe_set h.server slot server;
  Array.unsafe_set h.epoch slot epoch;
  Array.unsafe_set h.seq slot h.next_seq;
  h.next_seq <- h.next_seq + 1;
  (* sift up *)
  let i = ref h.size in
  h.size <- h.size + 1;
  Array.unsafe_set h.heap !i slot;
  let continue_sift = ref true in
  while !continue_sift && !i > 0 do
    let parent = (!i - 1) / 2 in
    let ps = Array.unsafe_get h.heap parent in
    if lt h slot ps then begin
      Array.unsafe_set h.heap !i ps;
      Array.unsafe_set h.heap parent slot;
      i := parent
    end
    else continue_sift := false
  done

(* Top accessors: callers must check [is_empty] first; reading the top
   of an empty heap is a programming error. *)
let[@inline] top_time h = Array.unsafe_get h.time (Array.unsafe_get h.heap 0)
let[@inline] top_kind h = Array.unsafe_get h.kind (Array.unsafe_get h.heap 0)

let[@inline] top_server h =
  Array.unsafe_get h.server (Array.unsafe_get h.heap 0)

let[@inline] top_epoch h = Array.unsafe_get h.epoch (Array.unsafe_get h.heap 0)

let[@inline] drop h =
  if h.size = 0 then invalid_arg "Index_heap.drop: empty heap";
  let top = Array.unsafe_get h.heap 0 in
  (* recycle the slot *)
  Array.unsafe_set h.free h.free_top top;
  h.free_top <- h.free_top + 1;
  h.size <- h.size - 1;
  if h.size > 0 then begin
    let moved = Array.unsafe_get h.heap h.size in
    Array.unsafe_set h.heap 0 moved;
    (* sift down *)
    let i = ref 0 in
    let continue_sift = ref true in
    while !continue_sift do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if
        l < h.size
        && lt h (Array.unsafe_get h.heap l) (Array.unsafe_get h.heap !smallest)
      then smallest := l;
      if
        r < h.size
        && lt h (Array.unsafe_get h.heap r) (Array.unsafe_get h.heap !smallest)
      then smallest := r;
      if !smallest <> !i then begin
        let tmp = Array.unsafe_get h.heap !i in
        Array.unsafe_set h.heap !i (Array.unsafe_get h.heap !smallest);
        Array.unsafe_set h.heap !smallest tmp;
        i := !smallest
      end
      else continue_sift := false
    done
  end
