(** Allocation-free event queue for the simulation hot path.

    A binary min-heap ordered by [(time, seq)] — FIFO for equal times —
    whose entries are plain ints and floats in preallocated parallel
    arrays: no closures, no [option], no per-event boxing. Each entry
    carries an event [kind] tag, a [server] payload (use [-1] when not
    applicable) and an [epoch] payload for completion invalidation.
    Freed slots are recycled through a free-list stack, so in steady
    state {!push} and {!drop} allocate nothing; arrays only grow
    (doubling) when more events are simultaneously pending than ever
    before. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 64) preallocates that many slots. *)

val size : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Forget all pending events {e and} reset the tie-break sequence
    counter, so a cleared heap orders equal-time events exactly like a
    freshly created one. *)

val push : t -> time:float -> kind:int -> server:int -> epoch:int -> unit

val top_time : t -> float
(** Time of the earliest event. The [top_*] accessors and {!drop} must
    only be called when the heap is non-empty. *)

val top_kind : t -> int
val top_server : t -> int
val top_epoch : t -> int

val drop : t -> unit
(** Remove the earliest event and recycle its slot. Raises
    [Invalid_argument] on an empty heap. *)
