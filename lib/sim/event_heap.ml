type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = Array.make 64 None; size = 0; next_seq = 0 }

let size h = h.size

let is_empty h = h.size = 0

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let bigger = Array.make (2 * Array.length h.data) None in
  Array.blit h.data 0 bigger 0 h.size;
  h.data <- bigger

let get h i = match h.data.(i) with Some e -> e | None -> assert false

let push h ~time payload =
  if h.size = Array.length h.data then grow h;
  let e = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  (* sift up *)
  let i = ref h.size in
  h.size <- h.size + 1;
  h.data.(!i) <- Some e;
  let continue_sift = ref true in
  while !continue_sift && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_lt e (get h parent) then begin
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- Some e;
      i := parent
    end
    else continue_sift := false
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    let last = get h h.size in
    h.data.(h.size) <- None;
    if h.size > 0 then begin
      h.data.(0) <- Some last;
      (* sift down *)
      let i = ref 0 in
      let continue_sift = ref true in
      while !continue_sift do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && entry_lt (get h l) (get h !smallest) then smallest := l;
        if r < h.size && entry_lt (get h r) (get h !smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue_sift := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time h = if h.size = 0 then None else Some (get h 0).time

let clear h =
  Array.fill h.data 0 (Array.length h.data) None;
  h.size <- 0;
  (* reset the tie-break counter too, so a cleared heap orders
     equal-time events exactly like a fresh one *)
  h.next_seq <- 0
