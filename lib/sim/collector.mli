(** Measurement collection for the queueing simulator: a time-weighted
    integral of the number of jobs in the system, response-time
    accumulators, and (optionally) the full response-time sample for
    percentile estimation — covering the paper's stated open problem
    (the distribution of response times). *)

type t

val create : ?track_responses:bool -> unit -> t
(** [track_responses] (default [true]) stores every response time so
    percentiles can be queried; disable to save memory on very long
    runs. *)

val set_jobs : t -> now:float -> int -> unit
(** Record that the number of jobs in the system changed to the given
    value at time [now]. *)

val record_response : t -> float -> unit
(** Record the response time of a completed job. *)

val record_operative : t -> now:float -> int -> unit
(** Record that the number of operative servers changed. *)

val reset : t -> now:float -> unit
(** Discard everything measured so far (end of warm-up); keeps the
    current job/operative counts as the new initial state. *)

val mean_jobs : t -> now:float -> float
(** Time-averaged number of jobs in the system up to [now]. *)

val mean_operative : t -> now:float -> float
(** Time-averaged number of operative servers. *)

val mean_response : t -> float
val completed : t -> int

val responses : t -> float array
(** The recorded response times (empty when tracking is off). *)

val response_percentile : t -> float -> float
(** Empirical percentile of response times; raises [Invalid_argument]
    when tracking is off or no responses were recorded. *)
