(** Trajectory probe for a single simulation run.

    Records three bounded {!Urs_obs.Timeline} series as the simulation
    evolves — [urs_sim_jobs] (jobs in system), [urs_sim_in_service]
    (jobs actually on an operative server, i.e. [min jobs operative])
    and [urs_sim_operative] (operative-server count) — all sharing the
    given labels (conventionally [rep=<i>]). The probe hooks the
    state-change sites of {!Server_farm}: it consumes no randomness and
    schedules no events, so enabling it never perturbs the simulated
    trajectory; results with and without a probe are bit-identical. *)

type t

val create :
  ?registry:Urs_obs.Timeline.t ->
  ?capacity:int ->
  ?horizon:float ->
  ?meta:(string * string) list ->
  ?labels:(string * string) list ->
  servers:int ->
  unit ->
  t
(** Create (or re-acquire and clear — live views are last-run-wins) the
    three series, and record the initial state at [t = 0]: no jobs, all
    [servers] operative. Pass [horizon] (expected run length, i.e.
    warmup + duration) so all replications share one bucket layout; pass
    the domain id in [meta], never in [labels], to keep series identity
    independent of pool scheduling. *)

val set_jobs : t -> now:float -> int -> unit
(** The number of jobs in system changed at time [now]. *)

val set_operative : t -> now:float -> int -> unit
(** The number of operative servers changed at time [now]. *)

val finish : t -> now:float -> unit
(** Close the time integration at the end of the run. *)
