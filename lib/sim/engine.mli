(** Minimal discrete-event simulation core: a clock and a future event
    list. Event handlers receive the engine and may schedule further
    events. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule e ~delay f] runs [f] at time [now e +. delay];
    [delay >= 0]. Events at equal times fire in scheduling order. *)

val run_until : t -> float -> unit
(** Process events in time order until the event list is exhausted or
    the next event is after the deadline; the clock is then set to the
    deadline. *)

val pending : t -> int
(** Number of scheduled events. *)
