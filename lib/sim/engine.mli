(** Minimal discrete-event simulation core: a clock and a future event
    list. Event handlers receive the engine and may schedule further
    events. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule e ~delay f] runs [f] at time [now e +. delay];
    [delay >= 0]. Events at equal times fire in scheduling order. *)

val run_until : t -> float -> unit
(** Process events in time order until the event list is exhausted or
    the next event is after the deadline; the clock is then set to the
    deadline. *)

val pending : t -> int
(** Number of scheduled events. *)

val events_processed : t -> int
(** Events executed so far by this engine. Also accumulated into the
    [urs_sim_events_total] counter (flushed at the end of each
    {!run_until}). *)

val heap_high_water : t -> int
(** Largest event-list size seen by this engine; the process-wide
    maximum is kept in the [urs_sim_event_heap_high_water] gauge. *)
