module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span
module Ledger = Urs_obs.Ledger
module Json = Urs_obs.Json

let m_replications =
  Metrics.counter ~help:"Simulation replications completed"
    "urs_sim_replications_total"

let m_half_width measure =
  Metrics.gauge
    ~labels:[ ("measure", measure) ]
    ~help:"Confidence-interval half-width of the last Replicate.run (last write)"
    "urs_sim_ci_halfwidth"

type interval = { estimate : float; half_width : float }

type summary = {
  mean_jobs : interval;
  mean_response : interval;
  mean_operative : interval;
  replications : int;
  confidence : float;
}

let interval_of ~confidence values =
  let n = Array.length values in
  let mean = Urs_stats.Empirical.mean values in
  if n < 2 then { estimate = mean; half_width = infinity }
  else begin
    let s = Urs_stats.Empirical.std_dev values in
    let t = Urs_stats.Student_t.critical ~df:(n - 1) ~confidence in
    { estimate = mean; half_width = t *. s /. sqrt (float_of_int n) }
  end

let ledger_params cfg ~duration ~replications =
  [
    ("servers", Json.Int cfg.Server_farm.servers);
    ("lambda", Json.Float cfg.Server_farm.lambda);
    ("mu", Json.Float cfg.Server_farm.mu);
    ("duration", Json.Float duration);
    ("replications", Json.Int replications);
  ]

let progress_task = "sim:replications"

let run ?(seed = 1) ?(replications = 10) ?(confidence = 0.95) ?warmup ?pool
    ?(timelines = true) ?timeline_registry ?timeline_capacity ~duration cfg =
  if replications < 1 then invalid_arg "Replicate.run: replications >= 1";
  let master = Urs_prob.Rng.create seed in
  (* all replications share one bucket layout (same horizon), so their
     trajectories can be averaged bucket-by-bucket *)
  let horizon =
    (match warmup with Some w -> w | None -> 0.1 *. duration) +. duration
  in
  (* Split-stream seeding: every replication's seed is drawn from the
     master stream up front, sequentially, so the per-replication
     streams are independent and non-overlapping AND identical whether
     the replications then run sequentially or on a pool. *)
  let seeds =
    Array.init replications (fun _ -> Urs_prob.Rng.split_seed master)
  in
  let params = ledger_params cfg ~duration ~replications in
  (* per-replication results land in flat float arrays (one slot per
     replication, disjoint across pool domains) instead of a list of
     result records *)
  let mj = Array.make replications 0.0 in
  let mr = Array.make replications 0.0 in
  let mo = Array.make replications 0.0 in
  let run_one rep =
    let rep_seed = seeds.(rep) in
    (* one span per replication: urs_sim_replication_seconds is the
       per-replication wall-time histogram *)
    let probe =
      if timelines then
        Some
          (Probe.create ?registry:timeline_registry ?capacity:timeline_capacity
             ~horizon
             ~labels:[ ("rep", string_of_int rep) ]
             ~meta:[ ("domain", string_of_int (Domain.self () :> int)) ]
             ~servers:cfg.Server_farm.servers ())
      else None
    in
    let t0 = Span.now () in
    let r =
      Span.with_ ~name:"urs_sim_replication" (fun () ->
          let r =
            Server_farm.run ~seed:rep_seed ?warmup ~track_responses:false
              ?probe ~duration cfg
          in
          Metrics.inc m_replications;
          r)
    in
    Urs_obs.Progress.tick progress_task;
    Ledger.record ~kind:"sim.replication" ~strategy:"sim" ~params
      ~wall_seconds:(Span.now () -. t0)
      ~summary:
        [
          ("replication", Json.Int rep);
          ("seed", Json.Int rep_seed);
          ("mean_jobs", Json.Float r.Server_farm.mean_jobs);
          ("mean_response", Json.Float r.Server_farm.mean_response);
          ("mean_operative", Json.Float r.Server_farm.mean_operative);
        ]
      ();
    mj.(rep) <- r.Server_farm.mean_jobs;
    mr.(rep) <- r.Server_farm.mean_response;
    mo.(rep) <- r.Server_farm.mean_operative
  in
  Urs_obs.Progress.start ~total:replications progress_task;
  (* one span over the fan-out, so pooled replications trace as one
     tree (their contexts are captured from this span's) *)
  Span.with_ ~name:"urs_replicate" (fun () ->
      match pool with
      | None ->
          for rep = 0 to replications - 1 do
            run_one rep
          done
      | Some pool ->
          ignore
            (Urs_exec.Pool.map pool run_one (List.init replications Fun.id)));
  Urs_obs.Progress.finish progress_task;
  let t0 = Span.now () in
  let summary =
    {
      mean_jobs = interval_of ~confidence mj;
      mean_response = interval_of ~confidence mr;
      mean_operative = interval_of ~confidence mo;
      replications;
      confidence;
    }
  in
  Metrics.set (m_half_width "mean_jobs") summary.mean_jobs.half_width;
  Metrics.set (m_half_width "mean_response") summary.mean_response.half_width;
  Metrics.set (m_half_width "mean_operative") summary.mean_operative.half_width;
  Ledger.record ~kind:"sim.summary" ~strategy:"sim" ~params
    ~wall_seconds:(Span.now () -. t0)
    ~summary:
      [
        ("mean_jobs", Json.Float summary.mean_jobs.estimate);
        ("mean_jobs_hw", Json.Float summary.mean_jobs.half_width);
        ("mean_response", Json.Float summary.mean_response.estimate);
        ("mean_response_hw", Json.Float summary.mean_response.half_width);
        ("mean_operative", Json.Float summary.mean_operative.estimate);
        ("mean_operative_hw", Json.Float summary.mean_operative.half_width);
        ("confidence", Json.Float confidence);
      ]
    ();
  summary

let pp_summary ppf s =
  Format.fprintf ppf
    "L = %.4f ± %.4f, W = %.4f ± %.4f, operative = %.4f ± %.4f (%d reps, %g%%)"
    s.mean_jobs.estimate s.mean_jobs.half_width s.mean_response.estimate
    s.mean_response.half_width s.mean_operative.estimate
    s.mean_operative.half_width s.replications
    (100.0 *. s.confidence)
