module Metrics = Urs_obs.Metrics
module Span = Urs_obs.Span

let m_replications =
  Metrics.counter ~help:"Simulation replications completed"
    "urs_sim_replications_total"

type interval = { estimate : float; half_width : float }

type summary = {
  mean_jobs : interval;
  mean_response : interval;
  mean_operative : interval;
  replications : int;
  confidence : float;
}

let interval_of ~confidence values =
  let n = Array.length values in
  let mean = Urs_stats.Empirical.mean values in
  if n < 2 then { estimate = mean; half_width = infinity }
  else begin
    let s = Urs_stats.Empirical.std_dev values in
    let t = Urs_stats.Student_t.critical ~df:(n - 1) ~confidence in
    { estimate = mean; half_width = t *. s /. sqrt (float_of_int n) }
  end

let run ?(seed = 1) ?(replications = 10) ?(confidence = 0.95) ?warmup ~duration
    cfg =
  if replications < 1 then invalid_arg "Replicate.run: replications >= 1";
  let master = Urs_prob.Rng.create seed in
  let results =
    Array.init replications (fun _ ->
        let rep_seed = Int64.to_int (Urs_prob.Rng.bits64 master) land 0x3FFFFFFF in
        (* one span per replication: urs_sim_replication_seconds is the
           per-replication wall-time histogram *)
        Span.with_ ~name:"urs_sim_replication" (fun () ->
            let r =
              Server_farm.run ~seed:rep_seed ?warmup ~track_responses:false
                ~duration cfg
            in
            Metrics.inc m_replications;
            r))
  in
  let pick f = Array.map f results in
  {
    mean_jobs = interval_of ~confidence (pick (fun r -> r.Server_farm.mean_jobs));
    mean_response =
      interval_of ~confidence (pick (fun r -> r.Server_farm.mean_response));
    mean_operative =
      interval_of ~confidence (pick (fun r -> r.Server_farm.mean_operative));
    replications;
    confidence;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "L = %.4f ± %.4f, W = %.4f ± %.4f, operative = %.4f ± %.4f (%d reps, %g%%)"
    s.mean_jobs.estimate s.mean_jobs.half_width s.mean_response.estimate
    s.mean_response.half_width s.mean_operative.estimate
    s.mean_operative.half_width s.replications
    (100.0 *. s.confidence)
