(* Command-line interface to the library: evaluate models, check
   stability, fit distributions to logs, generate synthetic logs and run
   simulations without writing OCaml. *)

open Cmdliner

(* ---- observability wiring ----

   Every subcommand accepts --verbose/-v (with the URS_LOG env var as a
   fallback), --metrics FILE / --metrics-format, and --trace FILE. A
   Logs format reporter is installed up front so library warnings
   (e.g. urs.spectral eigenvalue-count complaints, urs.sweep dropped
   points) are no longer silently discarded. *)

type obs = {
  metrics : string option;
  format : [ `Prometheus | `Json ];
  trace : string option;
  trace_format : [ `Flame | `Perfetto ];
  ledger : string option;
  ledger_max_bytes : int option;
  ledger_keep : int;
  ledger_flush_every : int;
  serve : int option;
  jobs : int;
  profile_gc : bool;
}

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  let level =
    if verbose >= 2 then Some Logs.Debug
    else if verbose = 1 then Some Logs.Info
    else
      match Sys.getenv_opt "URS_LOG" with
      | None -> Some Logs.Warning
      | Some s -> (
          match Logs.level_of_string s with
          | Ok l -> l
          | Error _ ->
              Format.eprintf "urs: ignoring invalid URS_LOG=%S@." s;
              Some Logs.Warning)
  in
  Logs.set_level level

let write_output path content =
  if path = "-" then print_string content
  else begin
    let oc = open_out path in
    output_string oc content;
    close_out oc
  end

let dump_obs obs =
  (* an unwritable destination should lose the snapshot, not the run's
     exit status (dump_obs runs from a Fun.protect finally) *)
  let write path content =
    try write_output path content
    with Sys_error msg -> Format.eprintf "urs: cannot write metrics: %s@." msg
  in
  (match obs.metrics with
  | None -> ()
  | Some path ->
      let snap = Urs_obs.Metrics.snapshot () in
      let body =
        match obs.format with
        | `Prometheus -> Urs_obs.Export.prometheus snap
        | `Json -> Urs_obs.Export.json snap ^ "\n"
      in
      write path body);
  match obs.trace with
  | None -> ()
  | Some path ->
      let body =
        match obs.trace_format with
        | `Flame -> Urs_obs.Span.trace_json ()
        | `Perfetto ->
            (* GC slices and allocation counter tracks captured by the
               Runtime_events consumer (empty without --profile-gc), plus
               per-solve convergence residual counter tracks *)
            Urs_obs.Span.trace_perfetto
              ~extra:
                (Urs_obs.Runtime.perfetto_events ()
                @ Urs_obs.Convergence.perfetto_events ())
              ()
      in
      write path (body ^ "\n")

(* ---- HTTP routes shared by `urs serve` and --serve-metrics ----
   (implemented in Urs_obs.Routes, so the /metrics content type and
   quantile rendering are testable from the library) *)

let standard_routes = Urs_obs.Routes.standard

(* dump on the way out even if the command fails, so a crashed run still
   leaves its metrics behind. [f] receives the work pool ([Some _] only
   when --jobs/URS_JOBS asked for more than one domain, so --jobs 1 is
   exactly the sequential code path). *)
let with_obs obs f =
  (* every CLI run is one trace: URS_TRACEPARENT continues a caller's
     trace (CI step, parent script), URS_TRACE_SEED makes the ids
     deterministic, and otherwise the run starts a fresh trace. The
     root context is installed ambiently on the main domain, so spans,
     ledger records and outbound Http.request calls all correlate. *)
  (match Sys.getenv_opt "URS_TRACE_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some seed -> Urs_obs.Context.set_seed seed
      | None -> Format.eprintf "urs: ignoring non-integer URS_TRACE_SEED@.")
  | None -> ());
  let root_ctx =
    match Sys.getenv_opt "URS_TRACEPARENT" with
    | Some tp -> (
        match Urs_obs.Context.of_traceparent tp with
        | Ok inbound -> Urs_obs.Context.child inbound
        | Error msg ->
            Format.eprintf "urs: ignoring URS_TRACEPARENT (%s)@." msg;
            Urs_obs.Context.new_trace ()
        )
    | None -> Urs_obs.Context.new_trace ()
  in
  if obs.trace <> None || obs.ledger <> None then
    Format.eprintf "urs: trace id %s@."
      (Urs_obs.Context.trace_id_hex root_ctx);
  if obs.trace <> None then Urs_obs.Span.set_tracing true;
  (* iteration-level convergence telemetry rides along whenever the run
     is being observed anyway; results are bit-identical either way *)
  if obs.trace <> None || obs.ledger <> None then
    Urs_obs.Convergence.set_recording true;
  if obs.profile_gc then Urs_obs.Runtime.set_profiling true;
  let started_events = obs.profile_gc && Urs_obs.Runtime.start_events () in
  (match obs.ledger with
  | Some path ->
      Urs_obs.Ledger.open_file ?max_bytes:obs.ledger_max_bytes
        ~keep:obs.ledger_keep ~flush_every:obs.ledger_flush_every path
  | None -> ());
  let server =
    match obs.serve with
    | None -> None
    | Some port ->
        Urs_obs.Ledger.set_memory true;
        let s = Urs_obs.Http.start ~port ~routes:standard_routes () in
        Format.eprintf "urs: live metrics on http://127.0.0.1:%d/metrics@."
          (Urs_obs.Http.port s);
        Some s
  in
  let pool =
    if obs.jobs > 1 then Some (Urs_exec.Pool.create ~name:"cli" ~domains:obs.jobs ())
    else None
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Urs_exec.Pool.shutdown pool;
      (* stop the consumer before dumping so the trace includes every
         drained GC slice; only stop what this run started *)
      if started_events then Urs_obs.Runtime.stop_events ();
      dump_obs obs;
      Option.iter Urs_obs.Http.stop server;
      Urs_obs.Ledger.close ())
    (fun () ->
      (* the urs_cli span closes before ~finally dumps the trace, so it
         is always part of its own output *)
      Urs_obs.Context.with_current root_ctx (fun () ->
          Urs_obs.Span.with_ ~name:"urs_cli" (fun () -> f pool)))

let obs_t =
  let verbose =
    Arg.(
      value & flag_all
      & info [ "v"; "verbose" ]
          ~doc:
            "Increase log verbosity (once: info, twice: debug). Without the \
             flag the level comes from the URS_LOG environment variable \
             (quiet|error|warning|info|debug), defaulting to warning.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "After the run, write a snapshot of the metrics registry to \
             $(docv) ('-' for stdout).")
  in
  let format =
    Arg.(
      value
      & opt
          (enum
             [ ("prom", `Prometheus); ("prometheus", `Prometheus);
               ("json", `Json) ])
          `Prometheus
      & info [ "metrics-format" ]
          ~doc:"Metrics snapshot format: $(b,prom) or $(b,json).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Collect a hierarchical span trace during the run and write it \
             to $(docv) ('-' for stdout) in the --trace-format.")
  in
  let trace_format =
    Arg.(
      value
      & opt (enum [ ("flame", `Flame); ("perfetto", `Perfetto) ]) `Flame
      & info [ "trace-format" ]
          ~doc:
            "Trace output format: $(b,flame) (hierarchical span JSON) or \
             $(b,perfetto) (Chrome trace_events JSON — open in \
             ui.perfetto.dev or chrome://tracing; domains appear as \
             separate tracks).")
  in
  let ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL record per solver call, sweep point and \
             simulation replication to $(docv) (the run ledger; see the \
             README).")
  in
  let ledger_max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "ledger-max-bytes" ] ~docv:"BYTES"
          ~doc:
            "Rotate the --ledger file before an append would push it past \
             $(docv) bytes: the live file is renamed to FILE.1 (FILE.1 to \
             FILE.2, ...) and segments beyond --ledger-keep are deleted. \
             Readers ($(b,urs query), $(b,urs report --ledger), \
             $(b,urs trace grep)) merge every surviving segment \
             oldest-first. Without the flag the ledger grows unbounded.")
  in
  let ledger_keep =
    Arg.(
      value & opt int 3
      & info [ "ledger-keep" ] ~docv:"K"
          ~doc:
            "Rotated segments to retain alongside the live ledger file \
             (default 3; at most $(docv)+1 files ever exist). Only \
             meaningful with --ledger-max-bytes.")
  in
  let ledger_flush_every =
    Arg.(
      value & opt int 1
      & info [ "ledger-flush-every" ] ~docv:"N"
          ~doc:
            "Buffer up to $(docv) ledger records between flushes (default \
             1: every record is flushed as it is written). Larger values \
             batch the write path under heavy append load; the buffer is \
             always flushed at rotation and at exit, so at most $(docv)-1 \
             records are at risk in a crash.")
  in
  let serve =
    Arg.(
      value
      & opt (some int) None
      & info [ "serve-metrics" ] ~docv:"PORT"
          ~doc:
            "While the command runs, serve live /metrics, /healthz, /runs, \
             /timeline, /progress, /runtime and /convergence on \
             127.0.0.1:$(docv) (0 picks an ephemeral port). Point \
             $(b,urs watch) at the port for a terminal progress view.")
  in
  let jobs =
    let env =
      Cmd.Env.info "URS_JOBS" ~doc:"Default for the $(b,--jobs) option."
    in
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~env ~docv:"N"
          ~doc:
            "Evaluate independent work (sweep points, simulation \
             replications, doctor grid models) on $(docv) domains. The \
             default 1 runs everything inline on the calling thread; \
             results are identical whatever the value.")
  in
  let profile_gc =
    Arg.(
      value & flag
      & info [ "profile-gc" ]
          ~doc:
            "Arm the runtime (GC/allocation) probes: spans and pool tasks \
             record their Gc.quick_stat deltas, urs_runtime_* metrics and a \
             ledger 'runtime' record are emitted, and — on runtimes with \
             eventring support — GC pauses and allocation counters are \
             captured and merged into $(b,--trace-format perfetto) traces \
             as GC slices and counter tracks. Off by default (zero \
             overhead).")
  in
  let make verbose metrics format trace trace_format ledger ledger_max_bytes
      ledger_keep ledger_flush_every serve jobs profile_gc =
    setup_logs (List.length verbose);
    if jobs < 1 then
      Format.eprintf "urs: ignoring --jobs %d (must be >= 1)@." jobs;
    { metrics; format; trace; trace_format; ledger; ledger_max_bytes;
      ledger_keep; ledger_flush_every; serve; jobs = max 1 jobs; profile_gc }
  in
  Term.(
    const make $ verbose $ metrics $ format $ trace $ trace_format $ ledger
    $ ledger_max_bytes $ ledger_keep $ ledger_flush_every $ serve $ jobs
    $ profile_gc)

(* ---- streaming ledger reads ----

   Every user-facing ledger scan goes through Ledger.fold_path: rotated
   segments are merged oldest-first and a torn tail (a crashed or
   still-running writer's partial last line) is skipped and counted
   rather than fatal. *)

let warn_ledger_stats cmd (stats : Urs_obs.Ledger.fold_stats) =
  if stats.Urs_obs.Ledger.malformed > 0 then
    Format.eprintf "urs %s: skipped %d malformed ledger line(s) (torn tail?)@."
      cmd stats.Urs_obs.Ledger.malformed

let read_ledger_records ?filter cmd path =
  let keep =
    match filter with None -> fun _ -> true | Some f -> f
  in
  match
    Urs_obs.Ledger.fold_path path ~init:[] ~f:(fun acc r ->
        if keep r then r :: acc else acc)
  with
  | Error msg -> Error msg
  | Ok (rev, stats) ->
      warn_ledger_stats cmd stats;
      Ok (List.rev rev)

(* ---- shared argument parsing ---- *)

let dist_conv =
  (* "exp:RATE" | "h2:W1,R1,R2" | "det:VALUE" | "erlang:K,RATE" *)
  let parse s =
    match String.split_on_char ':' s with
    | [ "exp"; r ] -> (
        match float_of_string_opt r with
        | Some r when r > 0.0 -> Ok (Urs_prob.Distribution.exponential ~rate:r)
        | _ -> Error (`Msg "exp: needs a positive rate"))
    | [ "h2"; rest ] -> (
        match List.map float_of_string_opt (String.split_on_char ',' rest) with
        | [ Some w1; Some r1; Some r2 ] when w1 >= 0.0 && w1 <= 1.0 ->
            Ok (Urs_prob.Distribution.h2 ~w1 ~r1 ~r2)
        | _ -> Error (`Msg "h2: needs W1,RATE1,RATE2"))
    | [ "det"; v ] -> (
        match float_of_string_opt v with
        | Some v when v > 0.0 -> Ok (Urs_prob.Distribution.deterministic v)
        | _ -> Error (`Msg "det: needs a positive value"))
    | [ "erlang"; rest ] -> (
        match String.split_on_char ',' rest with
        | [ k; r ] -> (
            match (int_of_string_opt k, float_of_string_opt r) with
            | Some k, Some r when k >= 1 && r > 0.0 ->
                Ok (Urs_prob.Distribution.erlang ~k ~rate:r)
            | _ -> Error (`Msg "erlang: needs K,RATE"))
        | _ -> Error (`Msg "erlang: needs K,RATE"))
    | _ -> Error (`Msg (Printf.sprintf "unknown distribution %S" s))
  in
  let print ppf d = Urs_prob.Distribution.pp ppf d in
  Arg.conv (parse, print)

let servers =
  Arg.(value & opt int 10 & info [ "N"; "servers" ] ~doc:"Number of servers.")

let lambda =
  Arg.(value & opt float 8.0 & info [ "lambda" ] ~doc:"Poisson arrival rate.")

let mu =
  Arg.(value & opt float 1.0 & info [ "mu" ] ~doc:"Exponential service rate.")

let operative =
  Arg.(
    value
    & opt dist_conv Urs.Model.paper_operative
    & info [ "operative" ]
        ~doc:
          "Operative-period distribution (exp:R | h2:W,R1,R2 | det:V | \
           erlang:K,R). Default: the paper's fitted H2.")

let inoperative =
  Arg.(
    value
    & opt dist_conv Urs.Model.paper_inoperative_exp
    & info [ "inoperative" ]
        ~doc:"Inoperative-period distribution. Default: exp(25).")

let repair_crews =
  Arg.(
    value
    & opt (some int) None
    & info [ "repair-crews" ]
        ~doc:"Bound on simultaneous repairs (default: unlimited).")

let make_model ?repair_crews servers lambda mu operative inoperative =
  Urs.Model.create ?repair_crews ~servers ~arrival_rate:lambda
    ~service_rate:mu ~operative ~inoperative ()

(* ---- solve ---- *)

let strategy_conv =
  let parse = function
    | "exact" -> Ok `Exact
    | "approx" -> Ok `Approx
    | "mg" -> Ok `Mg
    | "sim" -> Ok `Sim
    | s -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  let print ppf v =
    Format.pp_print_string ppf
      (match v with `Exact -> "exact" | `Approx -> "approx" | `Mg -> "mg" | `Sim -> "sim")
  in
  Arg.conv (parse, print)

let solve_cmd =
  let run obs servers lambda mu operative inoperative crews meth =
    with_obs obs @@ fun pool ->
    let m = make_model ?repair_crews:crews servers lambda mu operative inoperative in
    let strategy =
      match meth with
      | `Exact -> Urs.Solver.Exact
      | `Approx -> Urs.Solver.Approximate
      | `Mg -> Urs.Solver.Matrix_geometric
      | `Sim -> Urs.Solver.Simulation Urs.Solver.default_sim_options
    in
    Format.printf "%a@.@." Urs.Model.pp m;
    Format.printf "stability: %a@.@." Urs_mmq.Stability.pp_verdict
      (Urs.Model.stability m);
    match Urs.Solver.evaluate ?pool ~strategy m with
    | Ok p ->
        Format.printf "%a@." Urs.Solver.pp_performance p;
        `Ok ()
    | Error e -> `Error (false, Format.asprintf "%a" Urs.Solver.pp_error e)
  in
  let meth =
    Arg.(
      value & opt strategy_conv `Exact
      & info [ "method" ] ~doc:"Solution method: exact | approx | mg | sim.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Evaluate a model (mean queue, response time).")
    Term.(
      ret
        (const run $ obs_t $ servers $ lambda $ mu $ operative $ inoperative
       $ repair_crews $ meth))

(* ---- stability ---- *)

let stability_cmd =
  let run obs servers lambda mu operative inoperative =
    with_obs obs @@ fun _pool ->
    let m = make_model servers lambda mu operative inoperative in
    Format.printf "%a@." Urs_mmq.Stability.pp_verdict (Urs.Model.stability m)
  in
  Cmd.v
    (Cmd.info "stability" ~doc:"Check the ergodicity condition (eq. 11).")
    Term.(const run $ obs_t $ servers $ lambda $ mu $ operative $ inoperative)

(* ---- optimize ---- *)

let optimize_cmd =
  let run obs servers lambda mu operative inoperative holding server_cost =
    with_obs obs @@ fun _pool ->
    let m = make_model servers lambda mu operative inoperative in
    let params = { Urs.Cost.holding; server = server_cost } in
    match Urs.Cost.optimal_servers m params with
    | Ok (n, c) ->
        Format.printf "optimal servers: %d (cost %.4f)@." n c;
        `Ok ()
    | Error e -> `Error (false, Format.asprintf "%a" Urs.Solver.pp_error e)
  in
  let holding =
    Arg.(value & opt float 4.0 & info [ "c1"; "holding" ] ~doc:"Holding cost c1.")
  in
  let server_cost =
    Arg.(value & opt float 1.0 & info [ "c2"; "server-cost" ] ~doc:"Server cost c2.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Find the cost-optimal number of servers (eq. 22).")
    Term.(
      ret
        (const run $ obs_t $ servers $ lambda $ mu $ operative $ inoperative
       $ holding $ server_cost))

(* ---- capacity ---- *)

let capacity_cmd =
  let run obs lambda mu operative inoperative target =
    with_obs obs @@ fun _pool ->
    let m = make_model 1 lambda mu operative inoperative in
    match Urs.Capacity.min_servers_for_response m ~target with
    | Ok (n, perf) ->
        Format.printf "minimum servers for W <= %g: %d (achieves W = %.4f)@."
          target n perf.Urs.Solver.mean_response;
        `Ok ()
    | Error e -> `Error (false, Format.asprintf "%a" Urs.Solver.pp_error e)
  in
  let target =
    Arg.(value & opt float 1.5 & info [ "target" ] ~doc:"Response-time target.")
  in
  Cmd.v
    (Cmd.info "capacity" ~doc:"Minimum servers for a response-time target.")
    Term.(
      ret (const run $ obs_t $ lambda $ mu $ operative $ inoperative $ target))

(* ---- simulate ---- *)

let simulate_cmd =
  let run obs servers lambda mu operative inoperative crews duration
      replications seed =
    with_obs obs @@ fun pool ->
    let cfg =
      { Urs_sim.Server_farm.servers; lambda; mu; operative; inoperative;
        repair_crews = crews }
    in
    let s = Urs_sim.Replicate.run ?pool ~seed ~replications ~duration cfg in
    Format.printf "%a@." Urs_sim.Replicate.pp_summary s
  in
  let duration =
    Arg.(
      value & opt float 100_000.0
      & info [ "duration" ] ~doc:"Measured time units per replication.")
  in
  let replications =
    Arg.(value & opt int 5 & info [ "replications" ] ~doc:"Independent replications.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Discrete-event simulation of the model.")
    Term.(
      const run $ obs_t $ servers $ lambda $ mu $ operative $ inoperative
      $ repair_crews $ duration $ replications $ seed)

(* ---- metrics ---- *)

let metrics_cmd =
  let run obs servers lambda mu operative inoperative crews duration
      replications seed =
    (* this subcommand exists to dump the registry, so default to stdout *)
    let obs =
      match obs.metrics with
      | None -> { obs with metrics = Some "-" }
      | Some _ -> obs
    in
    with_obs obs @@ fun pool ->
    let m =
      make_model ?repair_crews:crews servers lambda mu operative inoperative
    in
    List.iter
      (fun strategy ->
        match Urs.Solver.evaluate ?pool ~strategy m with
        | Ok _ -> ()
        | Error e ->
            Logs.warn (fun f ->
                f "%s strategy failed: %a"
                  (Urs.Solver.strategy_name strategy)
                  Urs.Solver.pp_error e))
      [ Urs.Solver.Exact; Urs.Solver.Approximate; Urs.Solver.Matrix_geometric;
        Urs.Solver.Simulation { duration; replications; seed } ]
  in
  let duration =
    Arg.(
      value & opt float 5_000.0
      & info [ "duration" ]
          ~doc:"Simulated time units per replication (kept short by default).")
  in
  let replications =
    Arg.(value & opt int 2 & info [ "replications" ] ~doc:"Independent replications.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Exercise every solver strategy once on the model and dump the \
          metrics registry (Prometheus text to stdout unless --metrics / \
          --metrics-format say otherwise).")
    Term.(
      const run $ obs_t $ servers $ lambda $ mu $ operative $ inoperative
      $ repair_crews $ duration $ replications $ seed)

(* ---- sweep ---- *)

let sweep_cmd =
  let run obs servers lambda mu operative inoperative crews axis meth values
      range pinned_rate no_cache =
    with_obs obs @@ fun pool ->
    let m =
      make_model ?repair_crews:crews servers lambda mu operative inoperative
    in
    let strategy =
      match meth with
      | `Exact -> Urs.Solver.Exact
      | `Approx -> Urs.Solver.Approximate
      | `Mg -> Urs.Solver.Matrix_geometric
      | `Sim -> Urs.Solver.Simulation Urs.Solver.default_sim_options
    in
    let values =
      match (values, range) with
      | Some vs, None -> Ok vs
      | None, Some (lo, hi, steps) -> Ok (Urs.Sweep.linspace lo hi steps)
      | None, None -> Error "one of --values or --range is required"
      | Some _, Some _ -> Error "--values and --range are mutually exclusive"
    in
    match values with
    | Error msg -> `Error (true, msg)
    | Ok values ->
        let cache = if no_cache then None else Some (Urs.Solve_cache.create ()) in
        let axis_name, points =
          match axis with
          | `Servers ->
              let ints =
                List.map (fun v -> int_of_float (Float.round v)) values
              in
              ( "servers",
                List.map
                  (fun (n, p) -> (float_of_int n, p))
                  (Urs.Sweep.over_servers ~strategy ?pool ?cache m ~values:ints)
              )
          | `Lambda ->
              ( "lambda",
                Urs.Sweep.over_arrival_rates ~strategy ?pool ?cache m ~values )
          | `Repair ->
              ( "repair",
                Urs.Sweep.over_repair_times ~strategy ?pool ?cache m ~values )
          | `Scv ->
              ( "scv",
                Urs.Sweep.over_operative_scv ~strategy ?pool ?cache m
                  ~pinned_rate ~values )
          | `Load ->
              ("load", Urs.Sweep.over_loads ~strategy ?pool ?cache m ~values)
        in
        Format.printf "# axis=%s method=%s points=%d@." axis_name
          (Urs.Solver.strategy_label strategy)
          (List.length points);
        Format.printf "# x mean_jobs mean_response utilization@.";
        List.iter
          (fun (x, p) ->
            Format.printf "%.12g %.12g %.12g %.12g@." x p.Urs.Solver.mean_jobs
              p.Urs.Solver.mean_response p.Urs.Solver.utilization)
          points;
        `Ok ()
  in
  let axis =
    let axis_conv =
      Arg.enum
        [ ("servers", `Servers); ("lambda", `Lambda); ("repair", `Repair);
          ("scv", `Scv); ("load", `Load) ]
    in
    Arg.(
      required
      & pos 0 (some axis_conv) None
      & info [] ~docv:"AXIS"
          ~doc:
            "What to sweep: $(b,servers) (number of servers), $(b,lambda) \
             (arrival rate), $(b,repair) (mean repair time, Figure 7), \
             $(b,scv) (operative-period SCV, Figure 6) or $(b,load) \
             (offered load relative to effective capacity, Figure 8).")
  in
  let meth =
    Arg.(
      value & opt strategy_conv `Exact
      & info [ "method" ] ~doc:"Solution method: exact | approx | mg | sim.")
  in
  let values =
    let values_conv = Arg.(list ~sep:',' float) in
    Arg.(
      value
      & opt (some values_conv) None
      & info [ "values" ] ~docv:"V1,V2,..."
          ~doc:"Explicit x-axis values (comma-separated).")
  in
  let range =
    let range_conv = Arg.(t3 ~sep:':' float float int) in
    Arg.(
      value
      & opt (some range_conv) None
      & info [ "range" ] ~docv:"LO:HI:STEPS"
          ~doc:"Evenly spaced x-axis values, e.g. $(b,0.1:0.9:17).")
  in
  let pinned_rate =
    Arg.(
      value & opt float 0.1663
      & info [ "pinned-rate" ]
          ~doc:
            "For the $(b,scv) axis: the pinned H2 branch rate of the \
             moment fit (default: the paper's 0.1663).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the content-addressed solve cache (enabled by default; \
             repeated (model, method) points are solved once).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep one model parameter and print one line per point (x, mean \
          jobs, mean response time, utilization). Points run on --jobs \
          domains; the output is byte-identical whatever the job count.")
    Term.(
      ret
        (const run $ obs_t $ servers $ lambda $ mu $ operative $ inoperative
       $ repair_crews $ axis $ meth $ values $ range $ pinned_rate $ no_cache))

(* ---- dataset ---- *)

let dataset_cmd =
  let run obs rows out seed =
    with_obs obs @@ fun _pool ->
    let cfg = { Urs_dataset.Generate.default with Urs_dataset.Generate.rows; seed } in
    let events = Urs_dataset.Generate.generate cfg in
    (match out with
    | Some path ->
        Urs_dataset.Csv.write path events;
        Format.printf "wrote %d rows to %s@." rows path
    | None -> print_string (Urs_dataset.Csv.to_string events))
  in
  let rows =
    Arg.(value & opt int 140_000 & info [ "rows" ] ~doc:"Number of event rows.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Output CSV path (default: stdout).")
  in
  let seed = Arg.(value & opt int 2006 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v
    (Cmd.info "dataset" ~doc:"Generate a synthetic breakdown log (CSV).")
    Term.(const run $ obs_t $ rows $ out $ seed)

(* ---- fit ---- *)

let fit_cmd =
  let run obs path significance hist_out =
    with_obs obs @@ fun _pool ->
    let events = Urs_dataset.Csv.read path in
    match Urs_dataset.Pipeline.analyze ~significance events with
    | Ok report ->
        Format.printf "%a@." Urs_dataset.Pipeline.pp_report report;
        (match hist_out with
        | None -> ()
        | Some out ->
            let body =
              Urs_obs.Export.stats_histogram
                ~help:"Binned operative-period sample from the fit pipeline"
                ~name:"urs_fit_operative_period"
                report.Urs_dataset.Pipeline.operative
                  .Urs_dataset.Pipeline.histogram
              ^ Urs_obs.Export.stats_histogram
                  ~help:"Binned inoperative-period sample from the fit pipeline"
                  ~name:"urs_fit_inoperative_period"
                  report.Urs_dataset.Pipeline.inoperative
                    .Urs_dataset.Pipeline.histogram
            in
            write_output out body);
        `Ok ()
    | Error e -> `Error (false, Format.asprintf "%a" Urs_prob.Fit.pp_error e)
  in
  let path =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"LOG.csv" ~doc:"Breakdown event log (CSV).")
  in
  let significance =
    Arg.(value & opt float 0.05 & info [ "significance" ] ~doc:"KS significance level.")
  in
  let hist_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "histogram-metrics" ] ~docv:"FILE"
          ~doc:
            "Also write the operative/inoperative period histograms as \
             Prometheus histogram exposition (_bucket/_sum/_count) to \
             $(docv) ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:"Run the Section-2 pipeline on an event log: clean, fit, KS-test.")
    Term.(ret (const run $ obs_t $ path $ significance $ hist_out))

(* ---- doctor ---- *)

let doctor_cmd =
  let run obs quick =
    with_obs obs @@ fun pool ->
    let report = Urs.Doctor.run ~quick ?pool () in
    Format.printf "%a@." Urs.Doctor.pp_report report;
    match Urs.Doctor.verdict report with
    | Urs_mmq.Diagnostics.Suspect _ ->
        `Error (false, "numerical health checks came back SUSPECT")
    | _ -> `Ok ()
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Single model, short simulation — a CI-friendly smoke check.")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Numerical self-diagnosis: cross-check the exact, matrix-geometric, \
          approximate and simulation methods on paper models and score \
          residuals, conditioning and confidence intervals. Exits nonzero \
          only on a SUSPECT verdict.")
    Term.(ret (const run $ obs_t $ quick))

(* ---- inspect ---- *)

let inspect_cmd =
  let str_field kvs k =
    match List.assoc_opt k kvs with
    | Some (Urs_obs.Json.String s) -> s
    | Some j -> Urs_obs.Json.to_string j
    | None -> "-"
  in
  let render_traces format (traces : Urs_obs.Convergence.trace list) =
    match format with
    | `Json ->
        print_string
          (Urs_obs.Json.to_string
             (Urs_obs.Json.Obj
                [
                  ( "traces",
                    Urs_obs.Json.List
                      (List.map Urs_obs.Convergence.trace_to_json traces) );
                ]));
        print_newline ()
    | `Table ->
        List.iter
          (fun (tr : Urs_obs.Convergence.trace) ->
            Format.printf "%a@." Urs_obs.Convergence.pp_trace tr;
            if tr.Urs_obs.Convergence.dropped > 0 then
              Format.printf "  (first %d iterations dropped by the ring)@."
                tr.Urs_obs.Convergence.dropped;
            Format.printf "  %6s  %12s  %12s  %7s@." "iter" "residual"
              "shift" "active";
            Array.iter
              (fun (s : Urs_obs.Convergence.sample) ->
                Format.printf "  %6d  %12.5e  %12.5e  %7d%s@."
                  s.Urs_obs.Convergence.iteration s.Urs_obs.Convergence.residual
                  s.Urs_obs.Convergence.shift s.Urs_obs.Convergence.active
                  (if s.Urs_obs.Convergence.deflation then "  deflate" else ""))
              tr.Urs_obs.Convergence.samples;
            Format.printf "@.")
          traces
    | `Data ->
        (* gnuplot-ready: one dataset per trace, two blank lines between
           (plot 'f' index 0 using 1:2 with lines) *)
        List.iteri
          (fun i (tr : Urs_obs.Convergence.trace) ->
            if i > 0 then Format.printf "@.@.";
            Format.printf "# trace %d solver=%s label=%S iterations=%d converged=%b@."
              tr.Urs_obs.Convergence.seq tr.Urs_obs.Convergence.solver
              tr.Urs_obs.Convergence.label tr.Urs_obs.Convergence.iterations
              tr.Urs_obs.Convergence.converged;
            Format.printf "# iter residual shift active deflation@.";
            Array.iter
              (fun (s : Urs_obs.Convergence.sample) ->
                Format.printf "%d %.12g %.12g %d %d@."
                  s.Urs_obs.Convergence.iteration s.Urs_obs.Convergence.residual
                  s.Urs_obs.Convergence.shift s.Urs_obs.Convergence.active
                  (if s.Urs_obs.Convergence.deflation then 1 else 0))
              tr.Urs_obs.Convergence.samples)
          traces
  in
  let run obs servers lambda mu operative inoperative crews solver_filter
      max_iter ledger_path format =
    with_obs obs @@ fun _pool ->
    match ledger_path with
    | Some path -> (
        (* summaries only: the ledger carries the per-trace digest, not
           the per-iteration samples *)
        match
          read_ledger_records "inspect" path
            ~filter:(fun (r : Urs_obs.Ledger.record) ->
              r.Urs_obs.Ledger.kind = "convergence"
              && match solver_filter with
                 | None -> true
                 | Some s -> str_field r.Urs_obs.Ledger.params "solver" = s)
        with
        | Error msg -> `Error (false, "cannot read ledger: " ^ msg)
        | Ok records ->
            if records = [] then
              `Error (false, path ^ ": no convergence records")
            else begin
              (match format with
              | `Json ->
                  print_string
                    (Urs_obs.Json.to_string
                       (Urs_obs.Json.List
                          (List.map Urs_obs.Ledger.to_json records)));
                  print_newline ()
              | `Table | `Data ->
                  Format.printf "# seq solver label outcome iterations \
                                 residual_first residual_last wall_ms@.";
                  List.iter
                    (fun (r : Urs_obs.Ledger.record) ->
                      Format.printf "%d %s %S %s %s %s %s %.3f@."
                        r.Urs_obs.Ledger.seq
                        (str_field r.Urs_obs.Ledger.params "solver")
                        (str_field r.Urs_obs.Ledger.params "label")
                        r.Urs_obs.Ledger.outcome
                        (str_field r.Urs_obs.Ledger.summary "iterations")
                        (str_field r.Urs_obs.Ledger.summary "residual_first")
                        (str_field r.Urs_obs.Ledger.summary "residual_last")
                        (r.Urs_obs.Ledger.wall_seconds *. 1e3))
                    records);
              `Ok ()
            end)
    | None -> (
        let m =
          make_model ?repair_crews:crews servers lambda mu operative
            inoperative
        in
        match Urs.Model.qbd m with
        | None ->
            `Error
              (false, "model is not phase-type; no iterative solve to inspect")
        | Some q ->
            let (), traces =
              Urs_obs.Convergence.with_recording (fun () ->
                  (match Urs_mmq.Spectral.solve ?max_iter q with
                  | Ok _ | Error _ -> ());
                  (match Urs_mmq.Matrix_geometric.solve q with
                  | Ok _ | Error _ -> ());
                  match Urs_mmq.Geometric.solve q with Ok _ | Error _ -> ())
            in
            let traces =
              List.filter
                (fun (tr : Urs_obs.Convergence.trace) ->
                  match solver_filter with
                  | None -> true
                  | Some s -> tr.Urs_obs.Convergence.solver = s)
                traces
            in
            if traces = [] then `Error (false, "no convergence traces recorded")
            else begin
              render_traces format traces;
              `Ok ()
            end)
  in
  let solver_filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "solver" ] ~docv:"NAME"
          ~doc:
            "Only show traces from this solver ($(b,qr), $(b,mg_r), \
             $(b,brent), $(b,uniformization)).")
  in
  let max_iter =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-iter" ] ~docv:"N"
          ~doc:
            "Lower the QR sweep budget of the live spectral solve \
             (default 100) — e.g. $(b,--max-iter 2) to watch a forced \
             stall.")
  in
  let ledger_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-ledger" ] ~docv:"FILE"
          ~doc:
            "Instead of solving live, list the 'convergence' records of \
             this run-ledger JSONL (per-trace digests; the per-iteration \
             samples exist only in live mode).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json); ("data", `Data) ])
          `Table
      & info [ "format" ]
          ~doc:
            "Output format: $(b,table) (per-iteration rows under a \
             per-trace header), $(b,json), or $(b,data) (gnuplot-ready \
             columns, one dataset per trace).")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Record and display iteration-level convergence telemetry: solve \
          the model with every iterative method (spectral QR, \
          matrix-geometric R fixed point, Brent root refinement) and show \
          each trace's per-iteration residuals — or digest the \
          'convergence' records of an existing ledger.")
    Term.(
      ret
        (const run $ obs_t $ servers $ lambda $ mu $ operative $ inoperative
       $ repair_crews $ solver_filter $ max_iter $ ledger_path $ format))

(* ---- serve ---- *)

let default_objectives = [ "p99 < 250ms"; "error_rate < 1%" ]

let parse_objectives specs =
  let specs = if specs = [] then default_objectives else specs in
  List.fold_left
    (fun acc spec ->
      match (acc, Urs_obs.Slo.parse_objective spec) with
      | Error _, _ -> acc
      | Ok os, Ok o -> Ok (os @ [ o ])
      | Ok _, Error msg -> Error msg)
    (Ok []) specs

let serve_cmd =
  let run obs port objectives solve_max_iter =
    match parse_objectives objectives with
    | Error msg -> `Error (false, "--objective: " ^ msg)
    | Ok objectives ->
        with_obs obs @@ fun pool ->
        Urs_obs.Ledger.set_memory true;
        (* the doctor's convergence stage fills /convergence at startup and
           any later solve keeps appending traces *)
        Urs_obs.Convergence.set_recording true;
        Format.printf "urs: running quick doctor self-check...@.";
        let report = Urs.Doctor.run ~quick:true ?pool () in
        Format.printf "%a@." Urs.Doctor.pp_report report;
        (* the SLO engine baselines after the self-check, so the doctor's
           own traffic is never charged against the serving budget *)
        let slo = Urs_obs.Slo.create objectives in
        let cache = Urs.Solve_cache.create () in
        let routes =
          standard_routes @ [ ("/slo", Urs_obs.Routes.slo_response slo) ]
        in
        let post_routes =
          [ Urs.Solve_service.post_route ?pool ~cache ?max_iter:solve_max_iter () ]
        in
        (match solve_max_iter with
        | Some n ->
            Format.printf
              "urs: FAULT DRILL — /solve capped at %d spectral iterations \
               (expect 500s and an SLO breach)@."
              n
        | None -> ());
        let server =
          Urs_obs.Http.start ~port ~routes ~post_routes ()
        in
        Format.printf
          "urs: serving http://127.0.0.1:%d (/metrics /healthz /runs \
           /timeline /progress /runtime /convergence /slo, POST /solve) — \
           Ctrl-C to stop@."
          (Urs_obs.Http.port server);
        (* SIGTERM / Ctrl-C kick the accept loop instead of killing the
           process, so the unwind reaches with_obs's cleanup and the
           ledger's batched tail (--ledger-flush-every) is flushed and
           closed. Http.shutdown never joins: the handler may run on
           the server thread itself. The foreground wait polls a flag
           rather than joining — a thread parked in pthread_join never
           reaches a safepoint, so a handler could otherwise starve. *)
        let stopping = ref false in
        let quit _ =
          stopping := true;
          Urs_obs.Http.shutdown server
        in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
        Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
        while not !stopping do
          Unix.sleepf 0.2
        done;
        Urs_obs.Http.stop server;
        Format.printf "urs: shutting down@.";
        `Ok ()
  in
  let port =
    Arg.(
      value & opt int 9090
      & info [ "p"; "port" ] ~doc:"Listen port (0 picks an ephemeral port).")
  in
  let objectives =
    Arg.(
      value & opt_all string []
      & info [ "objective" ] ~docv:"SPEC"
          ~doc:
            "Service-level objective (repeatable): $(b,p99 < 250ms), \
             $(b,error_rate < 1%), optionally named \
             ($(b,api: p99.9 < 2s)) or bound to a metric \
             ($(b,p99(urs_http_request_seconds) < 50ms)). Defaults: \
             p99 < 250ms and error_rate < 1% over the serving metrics. \
             Evaluated with 5m/1h burn-rate windows on every /slo \
             request and exported as urs_slo_burn_rate gauges.")
  in
  let solve_max_iter =
    Arg.(
      value
      & opt (some int) None
      & info [ "solve-max-iter" ] ~docv:"N"
          ~doc:
            "Fault drill: cap the spectral solver behind POST /solve at \
             $(docv) iterations, so solves fail with 500s and burn the \
             error-rate SLO. Capped results bypass the solve cache. For \
             testing alerting pipelines; never useful in production.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a quick doctor self-check, then serve /metrics (Prometheus, \
          with interpolated quantiles), /healthz (doctor verdict; 503 when \
          suspect), /runs (recent ledger records, JSON), /timeline (bounded \
          time-series recorders, JSON), /progress (task completion and \
          ETA, JSON), /runtime (GC probe status, JSON), /convergence \
          (recent iteration traces, JSON), /slo (burn-rate evaluation, \
          JSON) and POST /solve (JSON model in, stationary metrics out) \
          over HTTP until interrupted.")
    Term.(ret (const run $ obs_t $ port $ objectives $ solve_max_iter))

(* ---- loadgen ---- *)

let loadgen_cmd =
  let run obs port addr target duration mode workers think rate body solve
      timeout_s seed out compare probes =
    with_obs obs @@ fun _pool ->
    let mode =
      match mode with
      | `Closed -> Urs.Loadgen.Closed { workers; think_s = think }
      | `Open -> Urs.Loadgen.Open { rate; workers }
    in
    (* --solve targets POST /solve with a paper-scenario body unless an
       explicit --body overrides it; a bare --body also implies POST *)
    let target = if solve then "/solve" else target in
    let body =
      if solve && body = None then Some {|{"scenario":"paper"}|} else body
    in
    let meth = if body <> None then "POST" else "GET" in
    match
      Urs.Loadgen.run ~addr ~timeout_s ~seed ~meth ?body ~port ~target
        ~duration_s:duration ~mode ()
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | result ->
        let r = result in
        Format.printf "target:      %s %s (%s loop)@." meth r.Urs.Loadgen.target
          (Urs.Loadgen.mode_label r.Urs.Loadgen.mode);
        Format.printf "requests:    %d in %.1fs (%.1f req/s)@."
          r.Urs.Loadgen.requests r.Urs.Loadgen.wall_s
          r.Urs.Loadgen.throughput;
        Format.printf "errors:      %d non-2xx, %d timeouts@."
          r.Urs.Loadgen.errors r.Urs.Loadgen.timeouts;
        List.iter
          (fun (code, n) -> Format.printf "  %d: %d@." code n)
          r.Urs.Loadgen.codes;
        Format.printf
          "latency:     mean %.3gms  p50 %.3gms  p90 %.3gms  p99 %.3gms  \
           max %.3gms@."
          (1e3 *. r.Urs.Loadgen.mean_s)
          (1e3 *. r.Urs.Loadgen.p50_s)
          (1e3 *. r.Urs.Loadgen.p90_s)
          (1e3 *. r.Urs.Loadgen.p99_s)
          (1e3 *. r.Urs.Loadgen.max_s);
        let comparison =
          if not compare then Ok None
          else
            match
              Urs.Loadgen.compare_model ~probes ~addr ~timeout_s ~meth ?body
                ~port ~target result
            with
            | Error msg -> Error msg
            | Ok c ->
                Format.printf
                  "model:       mu_hat %.1f/s (from %d probes), lambda %.1f/s@."
                  c.Urs.Loadgen.mu_hat c.Urs.Loadgen.probes
                  c.Urs.Loadgen.lambda;
                (if Float.is_nan c.Urs.Loadgen.predicted_response_s then
                   Format.printf
                     "model:       measured load at or above fitted capacity \
                      — M/M/1 predicts divergence@."
                 else
                   let p = c.Urs.Loadgen.predicted_response_s in
                   let m = c.Urs.Loadgen.measured_response_s in
                   Format.printf
                     "response:    predicted %.3gms vs measured %.3gms \
                      (ratio %.2f)@."
                     (1e3 *. p) (1e3 *. m) (m /. p));
                Ok (Some c)
        in
        (match out with
        | None -> ()
        | Some path ->
            let doc =
              Urs_obs.Json.Obj
                ([ ("result", Urs.Loadgen.result_json result) ]
                @
                match comparison with
                | Ok (Some c) ->
                    [ ("comparison", Urs.Loadgen.comparison_json c) ]
                | _ -> [])
            in
            let oc = open_out path in
            Urs_obs.Json.to_channel oc doc;
            close_out oc);
        (match comparison with
        | Error msg -> `Error (false, "--compare-model: " ^ msg)
        | Ok _ -> `Ok ())
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Port of the target server on $(b,--addr).")
  in
  let addr =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "addr" ] ~docv:"ADDR" ~doc:"Target address.")
  in
  let target =
    Arg.(
      value & opt string "/healthz"
      & info [ "target" ] ~docv:"PATH" ~doc:"Request path (with query).")
  in
  let duration =
    Arg.(
      value & opt float 10.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"How long to generate traffic (default 10s).")
  in
  let mode =
    let mode_conv = Arg.enum [ ("closed", `Closed); ("open", `Open) ] in
    Arg.(
      value & opt mode_conv `Closed
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,closed): N workers cycling request/think — offered load \
             adapts to the server. $(b,open): Poisson arrivals at \
             $(b,--rate), latency measured from the scheduled arrival \
             (no coordinated omission).")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Concurrent client threads (default 4).")
  in
  let think =
    Arg.(
      value & opt float 0.0
      & info [ "think" ] ~docv:"SECONDS"
          ~doc:"Closed-loop think time between requests (default 0).")
  in
  let rate =
    Arg.(
      value & opt float 20.0
      & info [ "rate" ] ~docv:"PER_SECOND"
          ~doc:"Open-loop Poisson arrival rate (default 20/s).")
  in
  let body =
    Arg.(
      value
      & opt (some string) None
      & info [ "body" ] ~docv:"JSON"
          ~doc:"POST this body instead of issuing GETs.")
  in
  let solve =
    Arg.(
      value & flag
      & info [ "solve" ]
          ~doc:
            "Shorthand: POST /solve with the paper scenario \
             ($(b,--body) overrides the payload).")
  in
  let timeout_s =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request socket timeout (default 5s).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~doc:"Seed for the open-loop Poisson schedule.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the run result (and comparison) as JSON to $(docv).")
  in
  let compare =
    Arg.(
      value & flag
      & info [ "compare-model" ]
          ~doc:
            "After the run, fit the server's service rate from unloaded \
             probes and print the M/M/1-predicted response time at the \
             measured throughput next to the measured one — the paper's \
             measure/fit/predict loop with the serving process itself as \
             the system under study.")
  in
  let probes =
    Arg.(
      value & opt int 30
      & info [ "probes" ] ~docv:"N"
          ~doc:"Calibration probes for $(b,--compare-model) (default 30).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Generate HTTP traffic against a running urs serve — closed loop \
          (workers with think time) or open loop (Poisson arrivals; \
          latency from the scheduled arrival) — and report throughput, \
          error/timeout counts and interpolated latency quantiles. Every \
          run appends a 'loadgen' ledger record when $(b,--ledger) is \
          active.")
    Term.(
      ret
        (const run $ obs_t $ port $ addr $ target $ duration $ mode $ workers
       $ think $ rate $ body $ solve $ timeout_s $ seed $ out $ compare
       $ probes))

(* ---- slo ---- *)

let slo_check_cmd =
  let run port timeout_s =
    match Urs_obs.Http.get ~timeout_s ~port "/slo" with
    | Error msg ->
        `Error (false, Printf.sprintf "127.0.0.1:%d unreachable (%s)" port msg)
    | Ok (status, _) when status <> 200 ->
        `Error (false, Printf.sprintf "/slo returned %d" status)
    | Ok (_, body) -> (
        let open Urs_obs in
        match Json.of_string (String.trim body) with
        | Error msg -> `Error (false, "bad /slo JSON: " ^ msg)
        | Ok j -> (
            match Json.member "objectives" j with
            | Some (Json.List objectives) ->
                List.iter
                  (fun o ->
                    let str k =
                      Option.value ~default:"?"
                        (Option.bind (Json.member k o) Json.to_string_opt)
                    in
                    let num k =
                      Option.value ~default:nan
                        (Option.bind (Json.member k o) Json.to_float_opt)
                    in
                    let breached =
                      match Json.member "breached" o with
                      | Some (Json.Bool b) -> b
                      | _ -> false
                    in
                    let windows =
                      match Json.member "windows" o with
                      | Some (Json.List ws) ->
                          String.concat "  "
                            (List.map
                               (fun w ->
                                 let label =
                                   Option.value ~default:"?"
                                     (Option.bind (Json.member "window" w)
                                        Json.to_string_opt)
                                 in
                                 let burn =
                                   Option.value ~default:nan
                                     (Option.bind (Json.member "burn_rate" w)
                                        Json.to_float_opt)
                                 in
                                 Printf.sprintf "burn[%s]=%.3g" label burn)
                               ws)
                      | _ -> ""
                    in
                    Format.printf "[%-6s] %-24s %-22s current %.4g  %s@."
                      (if breached then "BREACH" else "ok")
                      (str "objective") (str "sli") (num "current") windows)
                  objectives;
                let breached =
                  match Json.member "breached" j with
                  | Some (Json.Bool b) -> b
                  | _ -> false
                in
                if breached then begin
                  Format.printf "urs slo: BREACHED@.";
                  exit 1
                end
                else begin
                  Format.printf "urs slo: all objectives within budget@.";
                  `Ok ()
                end
            | _ -> `Error (false, "/slo JSON missing objectives")))
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Port of a running $(b,urs serve) on 127.0.0.1.")
  in
  let timeout_s =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Request timeout (default 5s).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Fetch /slo from a running urs serve, print every objective's \
          current value and per-window burn rates, and exit 1 if any \
          objective is breached (burning its error budget faster than \
          allowed in every window) — CI's gate on service health.")
    Term.(ret (const run $ port $ timeout_s))

let slo_cmd =
  Cmd.group
    (Cmd.info "slo"
       ~doc:
         "Service-level-objective tooling: $(b,urs slo check) evaluates a \
          running server's objectives and exits non-zero on breach.")
    [ slo_check_cmd ]

(* ---- watch ---- *)

let watch_cmd =
  let run port interval once =
    let open Urs_obs in
    (* one fetch-and-render pass; returns [Some true] when every listed
       task is finished (and at least one exists), [None] on a fetch or
       parse failure *)
    let render () =
      match Http.get ~port "/progress" with
      | Error msg ->
          Format.printf "urs watch: 127.0.0.1:%d unreachable (%s)@." port msg;
          None
      | Ok (status, _) when status <> 200 ->
          Format.printf "urs watch: /progress returned %d@." status;
          None
      | Ok (_, body) -> (
          match Json.of_string (String.trim body) with
          | Error msg ->
              Format.printf "urs watch: bad /progress JSON (%s)@." msg;
              None
          | Ok j -> (
              match Json.member "tasks" j with
              | Some (Json.List tasks) ->
                  if tasks = [] then
                    Format.printf "  (no tasks reported yet)@."
                  else
                    List.iter
                      (fun t ->
                        let str k = Option.bind (Json.member k t) Json.to_string_opt in
                        let num k = Option.bind (Json.member k t) Json.to_float_opt in
                        let name = Option.value (str "task") ~default:"?" in
                        let completed =
                          Option.value (num "completed") ~default:0.0
                        in
                        let progress =
                          match num "total" with
                          | Some total ->
                              Printf.sprintf "%.0f/%.0f" completed total
                          | None -> Printf.sprintf "%.0f" completed
                        in
                        let rate = Option.value (num "rate_per_s") ~default:0.0 in
                        let eta =
                          match num "eta_s" with
                          | Some e -> Printf.sprintf ", ETA %.1fs" e
                          | None -> ""
                        in
                        let finished =
                          match Json.member "finished" t with
                          | Some (Json.Bool true) -> "  [done]"
                          | _ -> ""
                        in
                        Format.printf "  %-24s %s (%.1f/s%s)%s@." name
                          progress rate eta finished)
                      tasks;
                  let all_done =
                    tasks <> []
                    && List.for_all
                         (fun t ->
                           match Json.member "finished" t with
                           | Some (Json.Bool b) -> b
                           | _ -> false)
                         tasks
                  in
                  Some all_done
              | _ ->
                  Format.printf "urs watch: /progress JSON missing tasks@.";
                  None))
    in
    (* latency quantiles from /metrics?format=json — the exporter
       synthesizes interpolated p50/p90/p99 per non-empty histogram;
       skipped silently when unreachable or not yet populated *)
    let render_quantiles () =
      match Http.get ~port "/metrics?format=json" with
      | Error _ | Ok (_, "") -> ()
      | Ok (status, _) when status <> 200 -> ()
      | Ok (_, body) -> (
          match Json.of_string (String.trim body) with
          | Error _ -> ()
          | Ok j -> (
              match Json.member "metrics" j with
              | Some (Json.List ms) ->
                  let rows =
                    List.filter_map
                      (fun m ->
                        match
                          (Json.member "name" m, Json.member "quantiles" m)
                        with
                        | Some (Json.String name), Some (Json.Obj qs)
                          when qs <> [] ->
                            let labels =
                              match Json.member "labels" m with
                              | Some (Json.Obj ls) ->
                                  Printf.sprintf "{%s}"
                                    (String.concat ","
                                       (List.filter_map
                                          (fun (k, v) ->
                                            Option.map
                                              (fun v -> k ^ "=" ^ v)
                                              (Json.to_string_opt v))
                                          ls))
                              | _ -> ""
                            in
                            let cells =
                              List.filter_map
                                (fun (q, v) ->
                                  match
                                    (float_of_string_opt q, Json.to_float_opt v)
                                  with
                                  | Some q, Some v ->
                                      Some
                                        (Printf.sprintf "p%g=%.3gms"
                                           (100. *. q) (1e3 *. v))
                                  | _ -> None)
                                qs
                            in
                            Some
                              (Printf.sprintf "  %-40s %s" (name ^ labels)
                                 (String.concat "  " cells))
                        | _ -> None)
                      ms
                  in
                  if rows <> [] then begin
                    Format.printf "  latency quantiles:@.";
                    List.iter (fun r -> Format.printf "  %s@." r) rows
                  end
              | _ -> ()))
    in
    let rec loop () =
      let finished = render () in
      if finished <> None then render_quantiles ();
      if once then begin
        (* fail fast for scripts: a fetch/parse failure in one-shot mode
           is an error exit, while the polling loop (above) just warns
           and retries on the next interval — transient ECONNREFUSED
           while the server boots must not kill a watch *)
        match finished with None -> exit 1 | Some _ -> ()
      end
      else
        match finished with
        | Some true -> Format.printf "urs watch: all tasks finished@."
        | _ ->
            Unix.sleepf interval;
            loop ()
    in
    loop ()
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:
            "Port of a running $(b,urs serve) or $(b,--serve-metrics) \
             server on 127.0.0.1.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "n"; "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between polls (default 1).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Print a single snapshot and exit (scripts).")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Poll another urs process's /progress endpoint and render task \
          completion, rate and ETA in the terminal, until every task \
          reports finished (or forever for open-ended servers; Ctrl-C to \
          stop).")
    Term.(const run $ port $ interval $ once)

(* ---- report ---- *)

let report_cmd =
  let run history last format max_ratio ledger_path detect =
    match Urs_obs.Perf.read_file history with
    | Error msg -> `Error (false, "cannot read history: " ^ msg)
    | Ok [] -> `Error (false, Printf.sprintf "%s: no history entries" history)
    | Ok entries ->
        let entries =
          match last with
          | Some n when n >= 1 ->
              let len = List.length entries in
              if len <= n then entries
              else List.filteri (fun i _ -> i >= len - n) entries
          | _ -> entries
        in
        let r = Urs_obs.Perf.analyze ~max_ratio entries in
        let body =
          match format with
          | `Table -> Urs_obs.Perf.render_table r
          | `Markdown -> Urs_obs.Perf.render_markdown r
          | `Json -> Urs_obs.Perf.render_json r ^ "\n"
          | `Data -> Urs_obs.Perf.render_data r
        in
        print_string body;
        (match ledger_path with
        | None -> ()
        | Some path -> (
            match read_ledger_records "report" path with
            | Error msg ->
                Format.eprintf "urs report: cannot read ledger: %s@." msg
            | Ok records -> (
                match format with
                | `Table | `Markdown ->
                    print_string
                      ("\n"
                      ^ Urs_obs.Perf.render_ledger_digest
                          (Urs_obs.Perf.ledger_digest records))
                | `Json | `Data -> ())));
        let drift_breach =
          if not detect then false
          else begin
            let drifts = Urs_obs.Perf.detect_drift entries in
            let solvers = List.length r.Urs_obs.Perf.trends in
            (match format with
            | `Table | `Markdown ->
                print_string ("\n" ^ Urs_obs.Perf.render_drifts ~solvers drifts)
            | `Json ->
                print_string
                  (Urs_obs.Json.to_string (Urs_obs.Perf.drifts_json drifts)
                  ^ "\n")
            | `Data -> ());
            Urs_obs.Perf.drift_regressions drifts <> []
          end
        in
        (* the CI gate greps the exit status, not the output *)
        if r.Urs_obs.Perf.breaches <> [] || drift_breach then exit 1;
        `Ok ()
  in
  let history =
    Arg.(
      value
      & opt string "BENCH_history.jsonl"
      & info [ "history" ] ~docv:"FILE"
          ~doc:
            "Perf-history journal to analyze (urs-perf/1 JSONL, appended by \
             $(b,make bench)).")
  in
  let last =
    Arg.(
      value
      & opt (some int) None
      & info [ "last" ] ~docv:"N"
          ~doc:"Only consider the last $(docv) history entries.")
  in
  let format =
    Arg.(
      value
      & opt
          (enum
             [ ("table", `Table); ("markdown", `Markdown); ("json", `Json);
               ("data", `Data) ])
          `Table
      & info [ "format" ]
          ~doc:
            "Output format: $(b,table) (fixed-width text), $(b,markdown), \
             $(b,json), or $(b,data) (gnuplot-ready per-solver columns).")
  in
  let max_ratio =
    Arg.(
      value & opt float 2.0
      & info [ "max-ratio" ] ~docv:"R"
          ~doc:
            "Breach threshold: exit 1 when a gated solver's latest run \
             exceeds $(docv) times its best-known run.")
  in
  let ledger_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Also digest a run-ledger JSONL (records and wall time by kind) \
             into table/markdown output.")
  in
  let detect =
    Arg.(
      value & flag
      & info [ "detect" ]
          ~doc:
            "Also run CUSUM change-point detection over each solver's \
             per-run wall times (in log space — a regression is a \
             multiplicative step). Any step is reported with the run and \
             commit it arrived with; a confirmed upward step on a gated \
             solver also makes the command exit 1. Short histories (fewer \
             than 10 runs per solver) never flag.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate the bench perf history (and optionally a run ledger) \
          into a regression report: per-solver wall-time and \
          alloc-per-solve trends, ratio vs. best-known. Exits 1 when the \
          latest gated (spectral) entry regresses beyond --max-ratio (or, \
          with $(b,--detect), when a change-point step is confirmed on a \
          gated solver), so CI can gate on trends.")
    Term.(
      ret
        (const run $ history $ last $ format $ max_ratio $ ledger_path
       $ detect))

(* ---- query ---- *)

let query_cmd =
  let run ledger kind strategy outcome route trace_id since until group_by
      aggs format no_index =
    let module Q = Urs_obs.Query in
    let parse_aggs specs =
      let specs = if specs = [] then [ "count" ] else specs in
      List.fold_left
        (fun acc spec ->
          match (acc, Q.parse_agg spec) with
          | (Error _ as e), _ -> e
          | Ok l, Ok a -> Ok (l @ [ a ])
          | Ok _, Error msg -> Error ("--agg " ^ spec ^ ": " ^ msg))
        (Ok []) specs
    in
    match
      (Q.parse_group_by (Option.value group_by ~default:""), parse_aggs aggs)
    with
    | Error msg, _ -> `Error (false, "--group-by: " ^ msg)
    | _, Error msg -> `Error (false, msg)
    | Ok group_by, Ok aggs -> (
        let filter =
          { Q.kind; strategy; outcome; route; trace_id; since; until }
        in
        match
          Q.run ~use_index:(not no_index) ~filter ~group_by ~aggs ledger
        with
        | Error msg -> `Error (false, msg)
        | Ok t ->
            if t.Q.malformed > 0 then
              Format.eprintf
                "urs query: skipped %d malformed ledger line(s) (torn \
                 tail?)@."
                t.Q.malformed;
            print_string
              (match format with
              | `Table -> Q.render_table t
              | `Json -> Q.render_json t ^ "\n"
              | `Data -> Q.render_data t);
            `Ok ())
  in
  let ledger =
    Arg.(
      value
      & opt string "BENCH_ledger.jsonl"
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Ledger to query (urs-ledger JSONL). Rotated segments \
             ($(docv).1, $(docv).2, ...) are merged oldest-first \
             automatically.")
  in
  let filter_opt names docv doc =
    Arg.(value & opt (some string) None & info names ~docv ~doc)
  in
  let kind = filter_opt [ "kind" ] "KIND"
      "Only records of this kind (solve, sweep.point, http.access, ...)."
  in
  let strategy = filter_opt [ "strategy" ] "NAME"
      "Only records with this strategy (solver name)."
  in
  let outcome = filter_opt [ "outcome" ] "OUTCOME"
      "Only records with this outcome (ok, error, ...)."
  in
  let route = filter_opt [ "route" ] "ROUTE"
      "Only http.access records for this route param."
  in
  let trace_id = filter_opt [ "trace" ] "TRACE_ID"
      "Only records stamped with this trace id."
  in
  let time_opt names doc =
    Arg.(value & opt (some float) None & info names ~docv:"UNIX_TS" ~doc)
  in
  let since =
    time_opt [ "since" ]
      "Only records with time >= $(docv) (inclusive; unix seconds)."
  in
  let until =
    time_opt [ "until" ] "Only records with time <= $(docv) (inclusive)."
  in
  let group_by =
    Arg.(
      value
      & opt (some string) None
      & info [ "group-by" ] ~docv:"KEYS"
          ~doc:
            "Comma-separated grouping keys: $(b,kind), $(b,strategy), \
             $(b,outcome), $(b,route), $(b,trace). Without the flag \
             everything aggregates into one row.")
  in
  let aggs =
    Arg.(
      value & opt_all string []
      & info [ "agg" ] ~docv:"AGG"
          ~doc:
            "Aggregation (repeatable; default $(b,count)): $(b,count), \
             $(b,rate), $(b,mean(F)), $(b,stddev(F)), $(b,min(F)), \
             $(b,max(F)) or $(b,pN(F)) — N a percentile like 50, 99 or \
             99.9 and F a field: $(b,wall_seconds), $(b,time), or any \
             gauge/summary/param name.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json); ("data", `Data) ])
          `Table
      & info [ "format" ]
          ~doc:
            "Output format: $(b,table) (fixed-width text), $(b,json), or \
             $(b,data) (gnuplot-ready columns).")
  in
  let no_index =
    Arg.(
      value & flag
      & info [ "no-index" ]
          ~doc:
            "Ignore the sparse sidecar indexes (FILE.idx) and parse every \
             line. The default uses them to seek over blocks the --kind / \
             --since / --until filters rule out.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Filter, group and aggregate a run ledger (all rotated segments, \
          streaming — a torn tail line is skipped with a warning, not \
          fatal). Aggregations reuse the library's estimators, e.g. \
          $(b,urs query --kind http.access --group-by route --agg count \
          --agg p99(wall_seconds)).")
    Term.(
      ret
        (const run $ ledger $ kind $ strategy $ outcome $ route $ trace_id
       $ since $ until $ group_by $ aggs $ format $ no_index))

(* ---- tail ---- *)

let tail_cmd =
  let run port kind n since_seq follow =
    let open Urs_obs in
    let str_field kvs k =
      match List.assoc_opt k kvs with
      | Some (Json.String s) -> s
      | Some j -> Json.to_string j
      | None -> "-"
    in
    let print_record (r : Ledger.record) =
      if r.Ledger.kind = "http.access" then
        Format.printf "[seq %d] %s %s -> %s (%.3fms) trace=%s@." r.Ledger.seq
          (str_field r.Ledger.params "method")
          (str_field r.Ledger.params "path")
          (str_field r.Ledger.summary "status")
          (r.Ledger.wall_seconds *. 1e3)
          (Option.value r.Ledger.trace_id ~default:"-")
      else
        Format.printf "[seq %d] %s%s %s %.3fms trace=%s@." r.Ledger.seq
          r.Ledger.kind
          (match r.Ledger.strategy with Some s -> "/" ^ s | None -> "")
          r.Ledger.outcome
          (r.Ledger.wall_seconds *. 1e3)
          (Option.value r.Ledger.trace_id ~default:"-")
    in
    let fetch ~seq ~wait_ms =
      let path =
        Printf.sprintf "/tail?since_seq=%d&n=%d&wait_ms=%d%s" seq n wait_ms
          (match kind with None -> "" | Some k -> "&kind=" ^ k)
      in
      (* the server answers within max_tail_wait_ms; pad the socket
         timeout so a full long-poll never reads as unreachable *)
      let timeout_s = (float_of_int wait_ms /. 1000.0) +. 5.0 in
      match Http.get ~timeout_s ~port path with
      | Error msg ->
          Error (Printf.sprintf "127.0.0.1:%d unreachable (%s)" port msg)
      | Ok (status, body) when status <> 200 ->
          Error (Printf.sprintf "/tail returned %d: %s" status
                   (String.trim body))
      | Ok (_, body) -> (
          match Json.of_string (String.trim body) with
          | Error msg -> Error ("bad /tail JSON: " ^ msg)
          | Ok j ->
              let cursor =
                match Option.bind (Json.member "seq" j) Json.to_float_opt with
                | Some f -> int_of_float f
                | None -> seq
              in
              let records =
                match Json.member "records" j with
                | Some (Json.List rs) ->
                    List.filter_map
                      (fun rj -> Result.to_option (Ledger.of_json rj))
                      rs
                | _ -> []
              in
              Ok (records, cursor))
    in
    let rec loop seq =
      let wait_ms = if follow then Routes.max_tail_wait_ms else 0 in
      match fetch ~seq ~wait_ms with
      | Error msg -> `Error (false, "urs tail: " ^ msg)
      | Ok (records, cursor) ->
          List.iter print_record records;
          if follow then loop cursor else `Ok ()
    in
    loop since_seq
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:
            "Port of a running $(b,urs serve) or $(b,--serve-metrics) \
             server on 127.0.0.1.")
  in
  let kind =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Only records of this kind (e.g. http.access, solve).")
  in
  let n =
    Arg.(
      value & opt int 100
      & info [ "n" ] ~docv:"N" ~doc:"Records per poll (default 100).")
  in
  let since_seq =
    Arg.(
      value & opt int 0
      & info [ "since-seq" ] ~docv:"SEQ"
          ~doc:
            "Start the cursor after this sequence number (default 0: \
             everything still in the server's ring).")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "f"; "follow" ]
          ~doc:
            "Keep long-polling for new records (tail -f) until \
             interrupted; without it, print one page and exit.")
  in
  Cmd.v
    (Cmd.info "tail"
       ~doc:
         "Stream recent ledger records from another urs process's /tail \
          endpoint (the in-memory ring): one page by default, a live \
          follow with $(b,--follow). The cursor never skips records the \
          server still holds, even across truncated pages.")
    Term.(ret (const run $ port $ kind $ n $ since_seq $ follow))

(* ---- trace ---- *)

let trace_grep_cmd =
  let run trace_id ledger_path trace_path =
    let id = String.lowercase_ascii (String.trim trace_id) in
    let is_hex =
      String.for_all
        (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
        id
    in
    if String.length id <> 32 || not is_hex then
      `Error (true, "TRACE_ID must be 32 hex digits (a trace id)")
    else begin
      let open Urs_obs in
      let matches = ref 0 in
      let str_field kvs k =
        match List.assoc_opt k kvs with
        | Some (Json.String s) -> s
        | Some j -> Json.to_string j
        | None -> "-"
      in
      (match ledger_path with
      | None -> ()
      | Some path -> (
          match
            read_ledger_records "trace" path
              ~filter:(fun r -> r.Ledger.trace_id = Some id)
          with
          | Error msg ->
              Format.eprintf "urs trace: cannot read ledger: %s@." msg
          | Ok hits ->
              if hits <> [] then begin
                matches := !matches + List.length hits;
                Format.printf "ledger %s: %d record(s)@." path
                  (List.length hits);
                List.iter
                  (fun r ->
                    if r.Ledger.kind = "http.access" then
                      (* the access log reading of the record *)
                      Format.printf
                        "  [seq %d] %s %s -> %s (%s bytes, %.3fms) \
                         request=%s@."
                        r.Ledger.seq
                        (str_field r.Ledger.params "method")
                        (str_field r.Ledger.params "path")
                        (str_field r.Ledger.summary "status")
                        (str_field r.Ledger.summary "bytes")
                        (r.Ledger.wall_seconds *. 1e3)
                        (str_field r.Ledger.summary "request_id")
                    else
                      Format.printf
                        "  [seq %d] %s%s %s %.3fms span=%s@." r.Ledger.seq
                        r.Ledger.kind
                        (match r.Ledger.strategy with
                        | Some s -> "/" ^ s
                        | None -> "")
                        r.Ledger.outcome
                        (r.Ledger.wall_seconds *. 1e3)
                        (Option.value r.Ledger.span_id ~default:"-"))
                  hits
              end));
      (match trace_path with
      | None -> ()
      | Some path -> (
          let contents =
            try Ok (In_channel.with_open_text path In_channel.input_all)
            with Sys_error msg -> Error msg
          in
          match Result.bind contents Json.of_string with
          | Error msg ->
              Format.eprintf "urs trace: cannot read trace file: %s@." msg
          | Ok j ->
              (* flatten the flame-JSON forest, keep this trace's spans,
                 then reknit the logical tree by parent span id — this
                 is where per-domain physical forests become one tree *)
              let spans = ref [] in
              let rec go node =
                let str k =
                  Option.bind (Json.member k node) Json.to_string_opt
                in
                let num k =
                  Option.bind (Json.member k node) Json.to_float_opt
                in
                (match (str "trace_id", str "span_id") with
                | Some t, Some s when t = id ->
                    spans :=
                      ( s,
                        str "parent_span_id",
                        Option.value (str "name") ~default:"?",
                        Option.value (num "domain") ~default:0.0,
                        Option.value (num "duration_s") ~default:0.0 )
                      :: !spans
                | _ -> ());
                match Json.member "children" node with
                | Some (Json.List cs) -> List.iter go cs
                | _ -> ()
              in
              (match Json.member "spans" j with
              | Some (Json.List roots) -> List.iter go roots
              | _ ->
                  Format.eprintf
                    "urs trace: %s is not a flame-format trace (no \
                     \"spans\"; use --trace-format flame)@."
                    path);
              let spans = List.rev !spans in
              if spans <> [] then begin
                matches := !matches + List.length spans;
                let known = Hashtbl.create 16 in
                List.iter
                  (fun (s, _, _, _, _) -> Hashtbl.replace known s ())
                  spans;
                let children = Hashtbl.create 16 in
                List.iter
                  (fun ((_, parent, _, _, _) as sp) ->
                    match parent with
                    | Some p when Hashtbl.mem known p ->
                        Hashtbl.replace children p
                          (sp :: Option.value ~default:[]
                                   (Hashtbl.find_opt children p))
                    | _ -> ())
                  spans;
                let roots =
                  List.filter
                    (fun (_, parent, _, _, _) ->
                      match parent with
                      | Some p -> not (Hashtbl.mem known p)
                      | None -> true)
                    spans
                in
                Format.printf "trace %s: %d span(s), %d root(s)@." path
                  (List.length spans) (List.length roots);
                let rec print_span indent (s, _, name, domain, dur) =
                  Format.printf "  %s%s %.3fms (domain %.0f, span %s)@."
                    indent name (dur *. 1e3) domain s;
                  List.iter
                    (print_span (indent ^ "  "))
                    (List.rev
                       (Option.value ~default:[]
                          (Hashtbl.find_opt children s)))
                in
                List.iter (print_span "") roots
              end));
      if ledger_path = None && trace_path = None then
        `Error
          (true, "nothing to search: pass --ledger FILE and/or --trace FILE")
      else if !matches = 0 then begin
        Format.printf "no records for trace %s@." id;
        exit 1
      end
      else `Ok ()
    end
  in
  let trace_id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE_ID"
          ~doc:
            "The 32-hex-digit trace id to search for (printed by traced \
             runs, returned in the $(b,traceparent) response header of \
             $(b,urs serve)).")
  in
  let ledger_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:"Run-ledger JSONL to search (urs-ledger/1 or /2).")
  in
  let trace_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Span-trace JSON to search ($(b,--trace-format flame) \
             output); matching spans are reassembled into their logical \
             tree across domains.")
  in
  Cmd.v
    (Cmd.info "grep"
       ~doc:
         "Pull every observation of one trace — access-log lines, ledger \
          records, spans — out of a ledger and/or trace file. Exits 1 \
          when the trace id appears in neither.")
    Term.(ret (const run $ trace_id $ ledger_path $ trace_path))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Inspect trace correlation output (see the README's 'Tracing & \
          request correlation').")
    [ trace_grep_cmd ]

let version = "1.0.0"

let () =
  Urs_obs.Export.set_build_info ~version ();
  let info =
    Cmd.info "urs" ~version
      ~doc:"Performance evaluation of multi-server systems with unreliable servers"
  in
  let group =
    Cmd.group info
      [ solve_cmd; stability_cmd; optimize_cmd; capacity_cmd; simulate_cmd;
        sweep_cmd; metrics_cmd; dataset_cmd; fit_cmd; doctor_cmd; inspect_cmd;
        serve_cmd; loadgen_cmd; slo_cmd; watch_cmd; report_cmd; query_cmd;
        tail_cmd; trace_cmd ]
  in
  exit (Cmd.eval group)
