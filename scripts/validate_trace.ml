(* Validate a Chrome/Perfetto trace exported with --trace-format
   perfetto: the file must parse as JSON (with the in-repo parser — no
   external dependency), hold a non-empty traceEvents array, and every
   event must carry the fields the exporter promises — complete span
   events (ph=X with ts/dur/pid/tid), counter samples (ph=C with
   ts/pid and a numeric args value, the GC counter tracks emitted
   under --profile-gc), or flow events (ph=s/f with name/id/ts/pid/tid,
   the cross-domain hand-off arrows). With --require-counter the trace
   must contain at least one counter event, which is how `make
   trace-smoke` asserts a profiled run really merged its GC tracks.
   With --require-flows the trace must contain flow events that pair
   up (every s id matches exactly one f id and vice versa), at least
   one pair crossing distinct tids, and the span events must form one
   connected tree: all under a single trace id with exactly one root
   whose parent_span_id is absent or unresolvable — how `make
   trace-smoke` asserts a --jobs 4 sweep traces as one tree. With
   --require-convergence the trace must contain conv:* counter tracks
   (the per-solve iteration telemetry) with finite residuals,
   non-increasing after each track's last deflation, ending converged.
   Used by `make trace-smoke` (and hence `make ci`). *)

module Json = Urs_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let check_named i ev =
  match Option.bind (Json.member "name" ev) Json.to_string_opt with
  | Some "" | None -> fail "validate_trace: event %d has no name" i
  | Some _ -> ()

let check_num_fields i ev keys =
  List.iter
    (fun k ->
      match Option.bind (Json.member k ev) Json.to_float_opt with
      | Some v when Float.is_finite v && v >= 0.0 -> ()
      | _ -> fail "validate_trace: event %d: bad %s" i k)
    keys

type kind = Complete | Counter | Flow_start | Flow_finish

let check_event i ev =
  match Json.member "ph" ev with
  | Some (Json.String "X") ->
      check_named i ev;
      check_num_fields i ev [ "ts"; "dur"; "pid"; "tid" ];
      Complete
  | Some (Json.String "C") ->
      check_named i ev;
      check_num_fields i ev [ "ts"; "pid" ];
      (match Json.member "args" ev with
      | Some (Json.Obj kvs)
        when List.exists
               (fun (_, v) ->
                 match Json.to_float_opt v with
                 | Some f -> Float.is_finite f
                 | None -> false)
               kvs ->
          ()
      | _ ->
          fail "validate_trace: counter event %d has no numeric args value" i);
      Counter
  | Some (Json.String (("s" | "f") as ph)) ->
      check_named i ev;
      check_num_fields i ev [ "ts"; "pid"; "tid" ];
      (match Json.member "id" ev with
      | Some (Json.String id) when id <> "" -> ()
      | _ -> fail "validate_trace: flow event %d has no id" i);
      if ph = "s" then Flow_start else Flow_finish
  | _ -> fail "validate_trace: event %d is not ph=X/C/s/f" i

(* flow ids must pair exactly: every start with one finish, every
   finish with one start; at least one pair must span distinct tids
   (the whole point — a cross-domain hand-off) *)
let check_flows events =
  let tid ev =
    Option.bind (Json.member "tid" ev) Json.to_float_opt
    |> Option.value ~default:(-1.0)
  in
  let id ev =
    match Json.member "id" ev with Some (Json.String s) -> s | _ -> ""
  in
  let starts = Hashtbl.create 16 and finishes = Hashtbl.create 16 in
  List.iter
    (fun (kind, ev) ->
      match kind with
      | Flow_start ->
          if Hashtbl.mem starts (id ev) then
            fail "validate_trace: duplicate flow-start id %s" (id ev);
          Hashtbl.replace starts (id ev) (tid ev)
      | Flow_finish ->
          if Hashtbl.mem finishes (id ev) then
            fail "validate_trace: duplicate flow-finish id %s" (id ev);
          Hashtbl.replace finishes (id ev) (tid ev)
      | _ -> ())
    events;
  if Hashtbl.length starts = 0 then
    fail "validate_trace: no flow (ph=s) events";
  Hashtbl.iter
    (fun i _ ->
      if not (Hashtbl.mem finishes i) then
        fail "validate_trace: flow-start id %s has no matching finish" i)
    starts;
  Hashtbl.iter
    (fun i _ ->
      if not (Hashtbl.mem starts i) then
        fail "validate_trace: flow-finish id %s has no matching start" i)
    finishes;
  let crossing =
    Hashtbl.fold
      (fun i s_tid acc ->
        acc + if Hashtbl.find finishes i <> s_tid then 1 else 0)
      starts 0
  in
  if crossing = 0 then
    fail "validate_trace: no flow pair crosses distinct tids";
  (Hashtbl.length starts, crossing)

(* connectivity over the span events' correlation ids: every span must
   carry the same trace id, and exactly one span may have an absent or
   unresolvable parent (the root — the CLI's own parent id points at
   the ambient root context, which owns no span event) *)
let check_connected events =
  let arg ev key =
    match Json.member "args" ev with
    | Some args -> (
        match Json.member key args with
        | Some (Json.String s) -> Some s
        | _ -> None)
    | None -> None
  in
  let spans =
    List.filter_map
      (fun (kind, ev) -> if kind = Complete then Some ev else None)
      events
  in
  let traced = List.filter (fun ev -> arg ev "span_id" <> None) spans in
  if traced = [] then
    fail "validate_trace: no span events carry correlation ids";
  (match
     List.sort_uniq compare (List.filter_map (fun ev -> arg ev "trace_id") traced)
   with
  | [ _ ] -> ()
  | ids ->
      fail "validate_trace: spans carry %d distinct trace ids (want 1)"
        (List.length ids));
  let known = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match arg ev "span_id" with
      | Some s -> Hashtbl.replace known s ()
      | None -> ())
    traced;
  let roots =
    List.filter
      (fun ev ->
        match arg ev "parent_span_id" with
        | Some p -> not (Hashtbl.mem known p)
        | None -> true)
      traced
  in
  match roots with
  | [ _ ] -> List.length traced
  | rs ->
      fail "validate_trace: %d root spans (want exactly 1 connected tree)"
        (List.length rs)

(* convergence counter tracks (conv:<solver>:<seq>, emitted when the
   run recorded iteration telemetry): every residual must be finite,
   the residual series must be non-increasing after the last
   deflation (the last sample where the remaining figure decreased —
   vacuous for QR traces, which end on their final deflation), and the
   track must end converged: last residual at or below the first (or
   below an absolute 1e-12 floor, for series that start already tiny) *)
let check_convergence events =
  let arg ev key =
    match Json.member "args" ev with
    | Some args -> Option.bind (Json.member key args) Json.to_float_opt
    | None -> None
  in
  let conv =
    List.filter_map
      (fun (kind, ev) ->
        if kind <> Counter then None
        else
          match Option.bind (Json.member "name" ev) Json.to_string_opt with
          | Some n when String.length n >= 5 && String.sub n 0 5 = "conv:" ->
              Some (n, ev)
          | _ -> None)
      events
  in
  if conv = [] then
    fail
      "validate_trace: no conv:* counter tracks — convergence telemetry \
       missing from the trace";
  let by_track = Hashtbl.create 8 in
  List.iter
    (fun (n, ev) ->
      Hashtbl.replace by_track n
        (ev :: Option.value ~default:[] (Hashtbl.find_opt by_track n)))
    conv;
  let samples = ref 0 in
  Hashtbl.iter
    (fun name evs ->
      (* the by-track lists were built by prepending: restore file order *)
      let evs = List.rev evs in
      (* stable sort on ts alone: the exporter emits each track's
         samples chronologically, and equal-microsecond ties must keep
         that order (sorting ties by value would reorder a deflation
         against same-instant sweep samples and fake a residual rise) *)
      let track =
        List.stable_sort
          (fun (a, _, _) (b, _, _) -> Float.compare a b)
          (List.map
             (fun ev ->
               let ts =
                 Option.value ~default:0.0
                   (Option.bind (Json.member "ts" ev) Json.to_float_opt)
               in
               (ts, arg ev "remaining", arg ev "residual"))
             evs)
      in
      let arr = Array.of_list track in
      samples := !samples + Array.length arr;
      Array.iter
        (fun (_, _, res) ->
          match res with
          | Some r when not (Float.is_finite r) ->
              fail "validate_trace: track %s has a non-finite residual" name
          | _ -> ())
        arr;
      let last_defl = ref (-1) in
      Array.iteri
        (fun i (_, rem, _) ->
          if i > 0 then
            let _, prev_rem, _ = arr.(i - 1) in
            match (rem, prev_rem) with
            | Some r, Some p when r < p -> last_defl := i
            | _ -> ())
        arr;
      let prev = ref None in
      Array.iteri
        (fun i (_, _, res) ->
          if i > !last_defl then
            match res with
            | Some r ->
                (match !prev with
                | Some p when r > p ->
                    fail
                      "validate_trace: track %s residual grows after its \
                       last deflation (%.3e -> %.3e)"
                      name p r
                | _ -> ());
                prev := Some r
            | None -> ())
        arr;
      let residuals =
        Array.to_list arr |> List.filter_map (fun (_, _, res) -> res)
      in
      match residuals with
      | [] -> fail "validate_trace: track %s carries no residual samples" name
      | first :: _ ->
          let last = List.nth residuals (List.length residuals - 1) in
          if last > Float.max first 1e-12 then
            fail
              "validate_trace: track %s did not converge (residual %.3e -> \
               %.3e)"
              name first last)
    by_track;
  (Hashtbl.length by_track, !samples)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let require_counter = List.mem "--require-counter" args in
  let require_flows = List.mem "--require-flows" args in
  let require_convergence = List.mem "--require-convergence" args in
  let path =
    match
      List.filter
        (fun a ->
          a <> "--require-counter" && a <> "--require-flows"
          && a <> "--require-convergence")
        args
    with
    | [ p ] -> p
    | _ ->
        prerr_endline
          "usage: validate_trace [--require-counter] [--require-flows] \
           [--require-convergence] TRACE.json";
        exit 2
  in
  let raw =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string (String.trim raw) with
  | Error e -> fail "validate_trace: %s does not parse: %s" path e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List []) -> fail "validate_trace: %s: empty traceEvents" path
      | Some (Json.List events) ->
          let events = List.mapi (fun i ev -> (check_event i ev, ev)) events in
          let counters =
            List.length (List.filter (fun (k, _) -> k = Counter) events)
          in
          if require_counter && counters = 0 then
            fail
              "validate_trace: %s: no counter (ph=C) events — GC tracks \
               missing from the profiled trace"
              path;
          if require_flows then begin
            let pairs, crossing = check_flows events in
            let spans = check_connected events in
            Printf.printf
              "validate_trace: %s flows ok (%d pairs, %d cross-tid, %d \
               spans in one tree)\n"
              path pairs crossing spans
          end;
          if require_convergence then begin
            let tracks, samples = check_convergence events in
            Printf.printf
              "validate_trace: %s convergence ok (%d tracks, %d samples)\n"
              path tracks samples
          end;
          Printf.printf "validate_trace: %s ok (%d events, %d counters)\n"
            path (List.length events) counters
      | _ -> fail "validate_trace: %s: missing traceEvents array" path)
