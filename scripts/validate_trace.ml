(* Validate a Chrome/Perfetto trace exported with --trace-format
   perfetto: the file must parse as JSON (with the in-repo parser — no
   external dependency), hold a non-empty traceEvents array, and every
   event must carry the complete-event fields the exporter promises.
   Used by `make trace-smoke` (and hence `make ci`). *)

module Json = Urs_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let check_event i ev =
  let field k = Json.member k ev in
  (match field "ph" with
  | Some (Json.String "X") -> ()
  | _ -> fail "validate_trace: event %d is not a complete (ph=X) event" i);
  (match Option.bind (field "name") Json.to_string_opt with
  | Some "" | None -> fail "validate_trace: event %d has no name" i
  | Some _ -> ());
  List.iter
    (fun k ->
      match Option.bind (field k) Json.to_float_opt with
      | Some v when Float.is_finite v && v >= 0.0 -> ()
      | _ -> fail "validate_trace: event %d: bad %s" i k)
    [ "ts"; "dur"; "pid"; "tid" ]

let () =
  let path =
    if Array.length Sys.argv = 2 then Sys.argv.(1)
    else begin
      prerr_endline "usage: validate_trace TRACE.json";
      exit 2
    end
  in
  let raw =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string (String.trim raw) with
  | Error e -> fail "validate_trace: %s does not parse: %s" path e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List []) -> fail "validate_trace: %s: empty traceEvents" path
      | Some (Json.List events) ->
          List.iteri check_event events;
          Printf.printf "validate_trace: %s ok (%d events)\n" path
            (List.length events)
      | _ -> fail "validate_trace: %s: missing traceEvents array" path)
