(* Validate a Chrome/Perfetto trace exported with --trace-format
   perfetto: the file must parse as JSON (with the in-repo parser — no
   external dependency), hold a non-empty traceEvents array, and every
   event must carry the fields the exporter promises — complete span
   events (ph=X with ts/dur/pid/tid) or counter samples (ph=C with
   ts/pid and a numeric args value, the GC counter tracks emitted
   under --profile-gc). With --require-counter the trace must contain
   at least one counter event, which is how `make trace-smoke` asserts
   a profiled run really merged its GC tracks. Used by `make
   trace-smoke` (and hence `make ci`). *)

module Json = Urs_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let check_named i ev =
  match Option.bind (Json.member "name" ev) Json.to_string_opt with
  | Some "" | None -> fail "validate_trace: event %d has no name" i
  | Some _ -> ()

let check_num_fields i ev keys =
  List.iter
    (fun k ->
      match Option.bind (Json.member k ev) Json.to_float_opt with
      | Some v when Float.is_finite v && v >= 0.0 -> ()
      | _ -> fail "validate_trace: event %d: bad %s" i k)
    keys

(* returns true when the event is a counter sample *)
let check_event i ev =
  match Json.member "ph" ev with
  | Some (Json.String "X") ->
      check_named i ev;
      check_num_fields i ev [ "ts"; "dur"; "pid"; "tid" ];
      false
  | Some (Json.String "C") ->
      check_named i ev;
      check_num_fields i ev [ "ts"; "pid" ];
      (match Json.member "args" ev with
      | Some (Json.Obj kvs)
        when List.exists
               (fun (_, v) ->
                 match Json.to_float_opt v with
                 | Some f -> Float.is_finite f
                 | None -> false)
               kvs ->
          ()
      | _ ->
          fail "validate_trace: counter event %d has no numeric args value" i);
      true
  | _ -> fail "validate_trace: event %d is neither ph=X nor ph=C" i

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let require_counter = List.mem "--require-counter" args in
  let path =
    match List.filter (fun a -> a <> "--require-counter") args with
    | [ p ] -> p
    | _ ->
        prerr_endline "usage: validate_trace [--require-counter] TRACE.json";
        exit 2
  in
  let raw =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string (String.trim raw) with
  | Error e -> fail "validate_trace: %s does not parse: %s" path e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List []) -> fail "validate_trace: %s: empty traceEvents" path
      | Some (Json.List events) ->
          let counters = ref 0 in
          List.iteri
            (fun i ev -> if check_event i ev then incr counters)
            events;
          if require_counter && !counters = 0 then
            fail
              "validate_trace: %s: no counter (ph=C) events — GC tracks \
               missing from the profiled trace"
              path;
          Printf.printf "validate_trace: %s ok (%d events, %d counters)\n"
            path (List.length events) !counters
      | _ -> fail "validate_trace: %s: missing traceEvents array" path)
