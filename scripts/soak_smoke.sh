#!/bin/sh
# Soak test for the serving-and-measuring loop: a real `urs serve`
# under sustained open-loop solve traffic must come out healthy —
# zero 5xx on either side of the wire, a finite p99 from the
# histogram-quantile export, `urs slo check` exit 0, burn-rate gauges
# in /metrics and "slo" records in the ledger — and the same server
# with a deliberately crippled solver (--solve-max-iter 1) must flip
# `urs slo check` to exit 1 and journal the breach. Used by
# `make soak-smoke` (and hence `make ci`).
#
# The healthy leg also soaks the telemetry pipeline: the ledger runs
# with rotation (--ledger-max-bytes 65536 --ledger-keep 3) and batched
# flushing (--ledger-flush-every 64), and afterwards the disk footprint
# must be bounded (at most 4 segment files, at most 256 KiB total) with
# every surviving segment parseable. A third, bounded-traffic leg keeps
# enough retention that nothing is deleted and cross-checks `urs query`
# per-route counts against the server's urs_http_requests_total.
#
# SOAK_SECONDS (default 60) bounds the loadgen leg.
set -eu

PORT="${URS_SOAK_PORT:-9117}"
PORT2=$((PORT + 1))
SOAK_SECONDS="${SOAK_SECONDS:-60}"
BIN=./_build/default/bin/urs_cli.exe
LOG=/tmp/urs_soak.log
LEDGER=/tmp/urs_soak_ledger.jsonl
CRIPPLED_LOG=/tmp/urs_soak_crippled.log
CRIPPLED_LEDGER=/tmp/urs_soak_crippled_ledger.jsonl
OUT=/tmp/urs_soak_loadgen.json

fail() {
  echo "soak-smoke: $1" >&2
  exit 1
}

PID=""
trap 'kill "$PID" 2>/dev/null || true' EXIT

wait_up() {
  # serve runs a quick doctor pass before it starts listening
  i=0
  while [ $i -lt 100 ]; do
    if curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    i=$((i + 1))
    sleep 0.2
  done
  echo "soak-smoke: server never answered on port $1" >&2
  cat "$2" >&2
  exit 1
}

# ---- healthy leg: sustained solve traffic, SLOs must hold ----

rm -f "$LEDGER" "$LEDGER".* "$OUT"
"$BIN" serve --port "$PORT" --ledger "$LEDGER" \
  --ledger-max-bytes 65536 --ledger-keep 3 --ledger-flush-every 64 \
  >"$LOG" 2>&1 &
PID=$!
wait_up "$PORT" "$LOG"

# open-loop Poisson arrivals on POST /solve: the parser, cache and
# (on the first miss) the solver are on the request path; latency is
# measured from the scheduled arrival, so a stalled server cannot
# hide behind a slowed generator
"$BIN" loadgen --port "$PORT" --mode open --rate 50 --workers 4 \
  --duration "$SOAK_SECONDS" --solve -o "$OUT" >/dev/null

# zero 5xx, zero transport errors, zero timeouts — as the client saw it
grep -q '"errors":0' "$OUT" || fail "loadgen counted non-2xx responses (see $OUT)"
grep -q '"timeouts":0' "$OUT" || fail "loadgen counted timeouts (see $OUT)"
if grep -q '"5[0-9][0-9]":' "$OUT"; then
  fail "loadgen saw 5xx status codes (see $OUT)"
fi

# ... and as the server counted it
if curl -sf "http://127.0.0.1:$PORT/metrics" |
  grep -q '^urs_http_requests_total{code="5'; then
  fail "server-side RED metrics count 5xx responses"
fi

# the p99 of the solve route, interpolated from the histogram by the
# quantile export, must be a finite bounded number
p99=$(curl -sf "http://127.0.0.1:$PORT/metrics" |
  sed -n 's/^urs_http_request_seconds_quantile{quantile="0.99",route="\/solve"} //p')
[ -n "$p99" ] || fail "no p99 quantile for route /solve in /metrics"
ok=$(printf '%s\n' "$p99" | awk '$1 + 0 > 0 && $1 + 0 < 1.0 { print "ok" }')
[ "$ok" = "ok" ] || fail "/solve p99 is $p99 (want finite, 0 < p99 < 1s)"

# the objectives hold: exit 0, burn-rate gauges exported, slo records
# journaled (`slo check` evaluates the engine, which publishes both)
"$BIN" slo check --port "$PORT" || fail "slo check reported a breach on a healthy run"
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q '^urs_slo_burn_rate{' ||
  fail "no urs_slo_burn_rate gauges in /metrics"

# stop the server first: with --ledger-flush-every 64 the newest
# records (the slo evaluation among them) may still be buffered, and
# close flushes
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

grep -q '"kind":"slo"' "$LEDGER" || fail "no slo records in the ledger"
grep '"kind":"slo"' "$LEDGER" | grep -q '"outcome":"ok"' ||
  fail "no ok-outcome slo records in the ledger"

# ---- rotation kept the journal bounded and every segment readable ----

seg_count=$(ls "$LEDGER" "$LEDGER".? 2>/dev/null | wc -l)
[ "$seg_count" -le 4 ] ||
  fail "$seg_count ledger segments on disk (want <= keep + 1 = 4)"
total_bytes=$(cat "$LEDGER" "$LEDGER".? 2>/dev/null | wc -c)
[ "$total_bytes" -le 262144 ] ||
  fail "ledger segments total $total_bytes bytes (want <= 256 KiB)"
[ -f "$LEDGER.1" ] || fail "a ${SOAK_SECONDS}s soak never rotated the ledger"

# `urs query` streams every segment; zero malformed lines means each
# surviving segment parses end to end
qjson=$("$BIN" query --ledger "$LEDGER" --format json)
printf '%s\n' "$qjson" | grep -q '"malformed":0' ||
  fail "rotated ledger has malformed lines: $qjson"

# ---- crippled leg: a starved solver must trip the error-rate SLO ----

rm -f "$CRIPPLED_LEDGER"
"$BIN" serve --port "$PORT2" --ledger "$CRIPPLED_LEDGER" \
  --solve-max-iter 1 >"$CRIPPLED_LOG" 2>&1 &
PID=$!
wait_up "$PORT2" "$CRIPPLED_LOG"

# every solve now fails to converge and comes back 500
i=0
while [ $i -lt 20 ]; do
  curl -s -o /dev/null -X POST -H 'Content-Type: application/json' \
    -d '{"scenario":"paper"}' "http://127.0.0.1:$PORT2/solve"
  i=$((i + 1))
done

rc=0
"$BIN" slo check --port "$PORT2" >/dev/null || rc=$?
[ "$rc" = "1" ] || fail "slo check exited $rc on a crippled server (want 1)"
curl -sf "http://127.0.0.1:$PORT2/metrics" | grep -q '^urs_slo_burn_rate{' ||
  fail "no urs_slo_burn_rate gauges on the crippled server"
grep '"kind":"slo"' "$CRIPPLED_LEDGER" | grep -q '"outcome":"breach"' ||
  fail "no breach-outcome slo records in the crippled ledger"

kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

# ---- bounded leg: ledger counts must reconcile with RED metrics ----
#
# Rotation is active but retention is generous (traffic volume stays
# far below keep * max_bytes), so no record is ever deleted: the
# per-route request counts `urs query` reads back from the journal
# must equal the server's own urs_http_requests_total counters.

PORT3=$((PORT + 2))
ROT_LEDGER=/tmp/urs_soak_rot_ledger.jsonl
ROT_LOG=/tmp/urs_soak_rot.log
METRICS_SNAP=/tmp/urs_soak_rot_metrics.txt
COUNTS=/tmp/urs_soak_rot_counts.txt

rm -f "$ROT_LEDGER" "$ROT_LEDGER".*
"$BIN" serve --port "$PORT3" --ledger "$ROT_LEDGER" \
  --ledger-max-bytes 16384 --ledger-keep 64 >"$ROT_LOG" 2>&1 &
PID=$!
wait_up "$PORT3" "$ROT_LOG"

"$BIN" loadgen --port "$PORT3" --mode open --rate 40 --workers 2 \
  --duration 5 --solve -o /dev/null >/dev/null

# snapshot the counters, then stop the server so the tail is flushed
curl -sf "http://127.0.0.1:$PORT3/metrics" >"$METRICS_SNAP" ||
  fail "no /metrics snapshot from the bounded-leg server"
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

[ -f "$ROT_LEDGER.1" ] || fail "bounded leg never rotated the ledger"

"$BIN" query --ledger "$ROT_LEDGER" --kind http.access \
  --group-by route --format data >"$COUNTS" ||
  fail "urs query failed on the bounded-leg ledger"

routes_checked=0
while read -r route count; do
  case "$route" in
  \#* | "") continue ;;
  /metrics) continue ;; # the snapshot request itself is in flight
  esac
  srv=$(awk -v want="route=\"$route\"" '
    /^urs_http_requests_total\{/ && index($0, want) { sum += $2 }
    END { printf "%d", sum }' "$METRICS_SNAP")
  [ "$srv" = "$count" ] ||
    fail "route $route: ledger counts $count, server counted $srv"
  routes_checked=$((routes_checked + 1))
done <"$COUNTS"
[ "$routes_checked" -ge 1 ] || fail "no routes to reconcile (see $COUNTS)"

echo "soak-smoke: ok"
