#!/bin/sh
# Soak test for the serving-and-measuring loop: a real `urs serve`
# under sustained open-loop solve traffic must come out healthy —
# zero 5xx on either side of the wire, a finite p99 from the
# histogram-quantile export, `urs slo check` exit 0, burn-rate gauges
# in /metrics and "slo" records in the ledger — and the same server
# with a deliberately crippled solver (--solve-max-iter 1) must flip
# `urs slo check` to exit 1 and journal the breach. Used by
# `make soak-smoke` (and hence `make ci`).
#
# SOAK_SECONDS (default 60) bounds the loadgen leg.
set -eu

PORT="${URS_SOAK_PORT:-9117}"
PORT2=$((PORT + 1))
SOAK_SECONDS="${SOAK_SECONDS:-60}"
BIN=./_build/default/bin/urs_cli.exe
LOG=/tmp/urs_soak.log
LEDGER=/tmp/urs_soak_ledger.jsonl
CRIPPLED_LOG=/tmp/urs_soak_crippled.log
CRIPPLED_LEDGER=/tmp/urs_soak_crippled_ledger.jsonl
OUT=/tmp/urs_soak_loadgen.json

fail() {
  echo "soak-smoke: $1" >&2
  exit 1
}

PID=""
trap 'kill "$PID" 2>/dev/null || true' EXIT

wait_up() {
  # serve runs a quick doctor pass before it starts listening
  i=0
  while [ $i -lt 100 ]; do
    if curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    i=$((i + 1))
    sleep 0.2
  done
  echo "soak-smoke: server never answered on port $1" >&2
  cat "$2" >&2
  exit 1
}

# ---- healthy leg: sustained solve traffic, SLOs must hold ----

rm -f "$LEDGER" "$OUT"
"$BIN" serve --port "$PORT" --ledger "$LEDGER" >"$LOG" 2>&1 &
PID=$!
wait_up "$PORT" "$LOG"

# open-loop Poisson arrivals on POST /solve: the parser, cache and
# (on the first miss) the solver are on the request path; latency is
# measured from the scheduled arrival, so a stalled server cannot
# hide behind a slowed generator
"$BIN" loadgen --port "$PORT" --mode open --rate 50 --workers 4 \
  --duration "$SOAK_SECONDS" --solve -o "$OUT" >/dev/null

# zero 5xx, zero transport errors, zero timeouts — as the client saw it
grep -q '"errors":0' "$OUT" || fail "loadgen counted non-2xx responses (see $OUT)"
grep -q '"timeouts":0' "$OUT" || fail "loadgen counted timeouts (see $OUT)"
if grep -q '"5[0-9][0-9]":' "$OUT"; then
  fail "loadgen saw 5xx status codes (see $OUT)"
fi

# ... and as the server counted it
if curl -sf "http://127.0.0.1:$PORT/metrics" |
  grep -q '^urs_http_requests_total{code="5'; then
  fail "server-side RED metrics count 5xx responses"
fi

# the p99 of the solve route, interpolated from the histogram by the
# quantile export, must be a finite bounded number
p99=$(curl -sf "http://127.0.0.1:$PORT/metrics" |
  sed -n 's/^urs_http_request_seconds_quantile{quantile="0.99",route="\/solve"} //p')
[ -n "$p99" ] || fail "no p99 quantile for route /solve in /metrics"
ok=$(printf '%s\n' "$p99" | awk '$1 + 0 > 0 && $1 + 0 < 1.0 { print "ok" }')
[ "$ok" = "ok" ] || fail "/solve p99 is $p99 (want finite, 0 < p99 < 1s)"

# the objectives hold: exit 0, burn-rate gauges exported, slo records
# journaled (`slo check` evaluates the engine, which publishes both)
"$BIN" slo check --port "$PORT" || fail "slo check reported a breach on a healthy run"
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q '^urs_slo_burn_rate{' ||
  fail "no urs_slo_burn_rate gauges in /metrics"
grep -q '"kind":"slo"' "$LEDGER" || fail "no slo records in the ledger"
grep '"kind":"slo"' "$LEDGER" | grep -q '"outcome":"ok"' ||
  fail "no ok-outcome slo records in the ledger"

kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

# ---- crippled leg: a starved solver must trip the error-rate SLO ----

rm -f "$CRIPPLED_LEDGER"
"$BIN" serve --port "$PORT2" --ledger "$CRIPPLED_LEDGER" \
  --solve-max-iter 1 >"$CRIPPLED_LOG" 2>&1 &
PID=$!
wait_up "$PORT2" "$CRIPPLED_LOG"

# every solve now fails to converge and comes back 500
i=0
while [ $i -lt 20 ]; do
  curl -s -o /dev/null -X POST -H 'Content-Type: application/json' \
    -d '{"scenario":"paper"}' "http://127.0.0.1:$PORT2/solve"
  i=$((i + 1))
done

rc=0
"$BIN" slo check --port "$PORT2" >/dev/null || rc=$?
[ "$rc" = "1" ] || fail "slo check exited $rc on a crippled server (want 1)"
curl -sf "http://127.0.0.1:$PORT2/metrics" | grep -q '^urs_slo_burn_rate{' ||
  fail "no urs_slo_burn_rate gauges on the crippled server"
grep '"kind":"slo"' "$CRIPPLED_LEDGER" | grep -q '"outcome":"breach"' ||
  fail "no breach-outcome slo records in the crippled ledger"

echo "soak-smoke: ok"
