#!/bin/sh
# Starts `urs serve` on a scratch port, checks that /metrics, /healthz,
# /runs, /timeline, /progress, /runtime and /convergence answer, that bad query
# parameters get 400s, and that every request is traced: traceparent /
# x-request-id response headers, per-route RED metrics, one
# "http.access" ledger record per request, and `urs trace grep`
# finding a request again by its trace id. Used by `make serve-smoke`
# (and hence `make ci`).
set -eu

PORT="${URS_SMOKE_PORT:-9109}"
BIN=./_build/default/bin/urs_cli.exe
LOG=/tmp/urs_serve_smoke.log
LEDGER=/tmp/urs_serve_smoke_ledger.jsonl

rm -f "$LEDGER"
"$BIN" serve --port "$PORT" --ledger "$LEDGER" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# serve runs a quick doctor pass before it starts listening
up=0
i=0
while [ $i -lt 100 ]; do
  if curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
    up=1
    break
  fi
  i=$((i + 1))
  sleep 0.2
done
if [ $up -ne 1 ]; then
  echo "serve-smoke: server never answered on port $PORT" >&2
  cat "$LOG" >&2
  exit 1
fi

curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q '^urs_health_status'
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q '^urs_build_info{version='
curl -sf "http://127.0.0.1:$PORT/healthz" | grep -Eq 'ok|degraded'
curl -sf "http://127.0.0.1:$PORT/runs" >/dev/null
curl -sf "http://127.0.0.1:$PORT/runs?n=1" >/dev/null

# non-positive or non-numeric limits are the client's error: 400, not a
# silent clamp (and not a 500)
for bad in "/runs?n=0" "/runs?n=abc" "/timeline?coarsen=0" "/timeline?coarsen=abc"; do
  code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT$bad")
  if [ "$code" != "400" ]; then
    echo "serve-smoke: $bad returned $code (want 400)" >&2
    exit 1
  fi
done

# the doctor pass `urs serve` ran on startup leaves simulation
# timelines and finished progress tasks behind
curl -sf "http://127.0.0.1:$PORT/timeline" | grep -q '"series"'
curl -sf "http://127.0.0.1:$PORT/timeline?series=urs_sim_jobs&coarsen=4" |
  grep -q '"urs_sim_jobs"'
curl -sf "http://127.0.0.1:$PORT/progress" | grep -q '"task":"doctor:models"'

# runtime probe status: always answers, even with profiling off
curl -sf "http://127.0.0.1:$PORT/runtime" | grep -q '"profiling"'
curl -sf "http://127.0.0.1:$PORT/runtime" | grep -q '"ocaml_version"'

# the startup doctor's convergence stage leaves iteration traces behind
curl -sf "http://127.0.0.1:$PORT/convergence" | grep -q '"traces"'
curl -sf "http://127.0.0.1:$PORT/convergence" | grep -q '"solver":"qr"'
curl -sf "http://127.0.0.1:$PORT/convergence?n=1" | grep -q '"traces"'
code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/convergence?n=0")
if [ "$code" != "400" ]; then
  echo "serve-smoke: /convergence?n=0 returned $code (want 400)" >&2
  exit 1
fi

# /metrics speaks the Prometheus text exposition format and says so —
# the version suffix is what lets a scraper negotiate the parse
curl -sfI "http://127.0.0.1:$PORT/metrics" |
  grep -qi '^content-type: text/plain; version=0\.0\.4'

# the JSON endpoints must say so
curl -sfI "http://127.0.0.1:$PORT/runs" |
  grep -qi '^content-type: application/json'
curl -sfI "http://127.0.0.1:$PORT/timeline" |
  grep -qi '^content-type: application/json'
curl -sfI "http://127.0.0.1:$PORT/progress" |
  grep -qi '^content-type: application/json'
curl -sfI "http://127.0.0.1:$PORT/convergence" |
  grep -qi '^content-type: application/json'

# every response names its trace: a traceparent the client can adopt
# and an x-request-id equal to the request's span id
curl -sfI "http://127.0.0.1:$PORT/healthz" | grep -qi '^traceparent: 00-'
curl -sfI "http://127.0.0.1:$PORT/healthz" | grep -qi '^x-request-id: '

# an inbound traceparent is continued, not replaced: the response joins
# the caller's trace, and the access-log ledger record carries it
TP='00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01'
TRACE='0af7651916cd43dd8448eb211c80319c'
curl -sf -H "traceparent: $TP" -D /tmp/urs_serve_smoke_headers \
  "http://127.0.0.1:$PORT/metrics" >/dev/null
grep -qi "^traceparent: 00-$TRACE-" /tmp/urs_serve_smoke_headers

# one access-log record per request for that trace (file writes are
# flushed per record, so it is already on disk)
n=$(grep -c "\"trace_id\":\"$TRACE\"" "$LEDGER")
if [ "$n" != "1" ]; then
  echo "serve-smoke: want exactly 1 ledger record for trace $TRACE, got $n" >&2
  exit 1
fi
grep "\"trace_id\":\"$TRACE\"" "$LEDGER" | grep -q '"kind":"http.access"'

# and `urs trace grep` reassembles it from the ledger
"$BIN" trace grep "$TRACE" --ledger "$LEDGER" | grep -q 'GET /metrics'

# per-route RED metrics with escaped labels (labels are sorted by key,
# so code comes before route)
curl -sf "http://127.0.0.1:$PORT/metrics" |
  grep -q '^urs_http_requests_total{code="200",route="/metrics"}'
curl -sf "http://127.0.0.1:$PORT/metrics" |
  grep -q '^urs_http_requests_total{code="400",route="/runs"}'
curl -sf "http://127.0.0.1:$PORT/metrics" |
  grep -q '^urs_http_request_seconds_count{route="/metrics"}'
curl -sf "http://127.0.0.1:$PORT/metrics" |
  grep -q '^urs_http_in_flight_requests'

# the bundled client sees the same progress state
"$BIN" watch --port "$PORT" --once | grep -q 'doctor:models'

# --once fails fast (exit 1) when nothing answers; pick a port that is
# almost certainly closed
if "$BIN" watch --port 1 --once >/dev/null 2>&1; then
  echo "serve-smoke: watch --once against a dead port should exit 1" >&2
  exit 1
fi

echo "serve-smoke: ok"
