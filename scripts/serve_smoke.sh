#!/bin/sh
# Starts `urs serve` on a scratch port, checks that /metrics, /healthz,
# /runs, /timeline, /progress and /runtime answer, then shuts the
# server down. Used by `make serve-smoke` (and hence `make ci`).
set -eu

PORT="${URS_SMOKE_PORT:-9109}"
BIN=./_build/default/bin/urs_cli.exe
LOG=/tmp/urs_serve_smoke.log

"$BIN" serve --port "$PORT" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# serve runs a quick doctor pass before it starts listening
up=0
i=0
while [ $i -lt 100 ]; do
  if curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
    up=1
    break
  fi
  i=$((i + 1))
  sleep 0.2
done
if [ $up -ne 1 ]; then
  echo "serve-smoke: server never answered on port $PORT" >&2
  cat "$LOG" >&2
  exit 1
fi

curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q '^urs_health_status'
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q '^urs_build_info{version='
curl -sf "http://127.0.0.1:$PORT/healthz" | grep -Eq 'ok|degraded'
curl -sf "http://127.0.0.1:$PORT/runs" >/dev/null
curl -sf "http://127.0.0.1:$PORT/runs?n=1" >/dev/null

# the doctor pass `urs serve` ran on startup leaves simulation
# timelines and finished progress tasks behind
curl -sf "http://127.0.0.1:$PORT/timeline" | grep -q '"series"'
curl -sf "http://127.0.0.1:$PORT/timeline?series=urs_sim_jobs&coarsen=4" |
  grep -q '"urs_sim_jobs"'
curl -sf "http://127.0.0.1:$PORT/progress" | grep -q '"task":"doctor:models"'

# runtime probe status: always answers, even with profiling off
curl -sf "http://127.0.0.1:$PORT/runtime" | grep -q '"profiling"'
curl -sf "http://127.0.0.1:$PORT/runtime" | grep -q '"ocaml_version"'

# the JSON endpoints must say so
curl -sfI "http://127.0.0.1:$PORT/runs" |
  grep -qi '^content-type: application/json'
curl -sfI "http://127.0.0.1:$PORT/timeline" |
  grep -qi '^content-type: application/json'
curl -sfI "http://127.0.0.1:$PORT/progress" |
  grep -qi '^content-type: application/json'

# the bundled client sees the same progress state
"$BIN" watch --port "$PORT" --once | grep -q 'doctor:models'

echo "serve-smoke: ok"
