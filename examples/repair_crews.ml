(* Beyond the paper: the model assumes every broken server is repaired
   immediately and independently — implicitly, unlimited repair crews.
   In practice a cluster has a handful of technicians. This example
   bounds the number of simultaneous repairs and asks the operational
   question: how many crews keep the service level acceptable?

   Run with: dune exec examples/repair_crews.exe *)

module D = Urs_prob.Distribution

let () =
  (* 8 servers with the paper's operative law, but slow repairs
     (mean 2 time units) so that repair capacity actually matters *)
  let model crews =
    Urs.Model.create ?repair_crews:crews ~servers:8 ~arrival_rate:5.0
      ~service_rate:1.0 ~operative:Urs.Model.paper_operative
      ~inoperative:(D.exponential ~rate:0.5) ()
  in
  Format.printf
    "8 servers, λ = 5, operative mean 34.62 (fitted H2), repair mean 2:@.@.";
  Format.printf "  %6s  %10s  %10s  %10s@." "crews" "capacity" "L" "W";
  List.iter
    (fun crews ->
      let m = model crews in
      let v = Urs.Model.stability m in
      let label =
        match crews with None -> "all" | Some c -> string_of_int c
      in
      if not v.Urs_mmq.Stability.stable then
        Format.printf "  %6s  %10.4f  %10s  %10s@." label
          v.Urs_mmq.Stability.effective_capacity "unstable" "-"
      else begin
        let p = Urs.Solver.evaluate_exn m in
        Format.printf "  %6s  %10.4f  %10.4f  %10.4f@." label
          v.Urs_mmq.Stability.effective_capacity p.Urs.Solver.mean_jobs
          p.Urs.Solver.mean_response
      end)
    [ Some 1; Some 2; Some 3; Some 4; None ];

  (* smallest crew count meeting a response-time target *)
  let target = 1.2 in
  let rec find crews =
    if crews > 8 then None
    else begin
      let m = model (Some crews) in
      if not (Urs.Model.stability m).Urs_mmq.Stability.stable then
        find (crews + 1)
      else
        match Urs.Solver.evaluate m with
        | Ok p when p.Urs.Solver.mean_response <= target -> Some (crews, p)
        | _ -> find (crews + 1)
    end
  in
  (match find 1 with
  | Some (crews, p) ->
      Format.printf "@.smallest crew count with W <= %.1f: %d (W = %.4f)@."
        target crews p.Urs.Solver.mean_response
  | None -> Format.printf "@.no crew count meets W <= %.1f@." target);

  (* cross-check one limited-crew configuration by simulation *)
  let m = model (Some 2) in
  let exact = Urs.Solver.evaluate_exn m in
  let sim =
    Urs.Solver.evaluate_exn
      ~strategy:
        (Urs.Solver.Simulation
           { Urs.Solver.duration = 100_000.0; replications = 3; seed = 21 })
      m
  in
  Format.printf "@.2 crews, cross-check: exact L = %.4f, simulated L = %.4f ± %.3f@."
    exact.Urs.Solver.mean_jobs sim.Urs.Solver.mean_jobs
    (Option.value ~default:0.0 sim.Urs.Solver.confidence_half_width)
