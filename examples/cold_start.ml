(* Beyond the paper: the spectral solution is steady-state only, but an
   operator also wants to know how the cluster behaves right after it
   comes online. This example computes the transient build-up of the
   queue from a cold start (uniformization on the truncated chain) and
   the time to get within 1% of the stationary regime.

   Run with: dune exec examples/cold_start.exe *)

let () =
  let model =
    Urs.Model.create ~servers:4 ~arrival_rate:3.0 ~service_rate:1.0
      ~operative:Urs.Model.paper_operative
      ~inoperative:Urs.Model.paper_inoperative_exp ()
  in
  let steady = Urs.Solver.evaluate_exn model in
  let q = Option.get (Urs.Model.qbd model) in
  match Urs_mmq.Transient.create ~levels:150 q with
  | Error e ->
      Format.printf "transient setup failed: %a@." Urs_mmq.Transient.pp_error e
  | Ok t ->
      let init = Urs_mmq.Transient.empty_all_operative t in
      Format.printf
        "Queue build-up from a cold start (empty, all servers up):@.@.";
      Format.printf "  %8s  %10s@." "time" "L(t)";
      let profile =
        Urs_mmq.Transient.relaxation_profile t ~initial:init
          ~times:[ 0.0; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0 ]
      in
      List.iter (fun (tm, l) -> Format.printf "  %8.1f  %10.4f@." tm l) profile;
      Format.printf "  %8s  %10.4f   (steady state)@.@." "∞"
        steady.Urs.Solver.mean_jobs;

      (* time to reach 99% of the stationary mean *)
      let target = 0.99 *. steady.Urs.Solver.mean_jobs in
      let rec search lo hi =
        if hi -. lo < 0.5 then hi
        else begin
          let mid = 0.5 *. (lo +. hi) in
          if Urs_mmq.Transient.mean_jobs_at t ~initial:init ~time:mid >= target
          then search lo mid
          else search mid hi
        end
      in
      let t99 = search 0.0 400.0 in
      Format.printf
        "time to reach 99%% of the stationary queue: ~%.0f time units@.\
         (about %.0f mean service times — warm-up matters when measuring@.\
         such systems, which is why the simulator discards a warm-up phase)@."
        t99 t99
