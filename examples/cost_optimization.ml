(* Cost optimization (the Figure 5 scenario): a provider pays c2 per
   server per unit time and c1 per waiting job per unit time; find the
   fleet size minimizing total cost C = c1·L + c2·N  (paper eq. 22).

   Run with: dune exec examples/cost_optimization.exe *)

let () =
  let model =
    Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
      ~operative:Urs.Model.paper_operative
      ~inoperative:Urs.Model.paper_inoperative_exp ()
  in
  let params = Urs.Cost.paper_params in
  Format.printf
    "Cost C = %.0f·L + %.0f·N for λ = %.1f (paper Figure 5 scenario)@.@."
    params.Urs.Cost.holding params.Urs.Cost.server
    model.Urs.Model.arrival_rate;
  Format.printf "  %4s  %10s  %10s@." "N" "L" "C";
  let costs = Urs.Cost.evaluate_range model params ~n_min:9 ~n_max:15 in
  List.iter
    (fun (n, c) ->
      let perf = Urs.Solver.evaluate_exn (Urs.Model.with_servers model n) in
      Format.printf "  %4d  %10.4f  %10.2f@." n perf.Urs.Solver.mean_jobs c)
    costs;
  (match Urs.Cost.optimal_servers model params with
  | Ok (n, c) ->
      Format.printf "@.Optimal fleet size: N = %d at cost C = %.2f@." n c
  | Error e -> Format.printf "@.optimization failed: %a@." Urs.Solver.pp_error e);

  (* the trade-off moves with the load, as in the paper: heavier load,
     larger optimal fleet *)
  Format.printf "@.Optimal N as the arrival rate grows:@.";
  List.iter
    (fun lambda ->
      match
        Urs.Cost.optimal_servers (Urs.Model.with_arrival_rate model lambda) params
      with
      | Ok (n, c) -> Format.printf "  λ = %.1f -> N* = %d (C = %.2f)@." lambda n c
      | Error e -> Format.printf "  λ = %.1f -> %a@." lambda Urs.Solver.pp_error e)
    [ 7.0; 8.0; 8.5 ]
