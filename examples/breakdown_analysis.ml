(* The Section-2 story end to end: take a raw breakdown event log (here,
   a synthetic Sun-like log), clean it, test whether operative periods
   are exponential (they are not), fit a hyperexponential, and hand the
   fitted distributions straight to the queueing model.

   Run with: dune exec examples/breakdown_analysis.exe *)

let () =
  (* a smaller log than the paper's 140k rows keeps this example fast *)
  let cfg = { Urs_dataset.Generate.default with Urs_dataset.Generate.rows = 60_000 } in
  let events = Urs_dataset.Generate.generate cfg in
  Format.printf "analyzing a %d-row breakdown log...@.@." (Array.length events);
  match Urs_dataset.Pipeline.analyze events with
  | Error e -> Format.printf "analysis failed: %a@." Urs_prob.Fit.pp_error e
  | Ok report ->
      Format.printf "%a@.@." Urs_dataset.Pipeline.pp_report report;

      (* a slice of the Figure-3 density table *)
      let side = report.Urs_dataset.Pipeline.operative in
      let rows =
        Urs_dataset.Pipeline.density_table side.Urs_dataset.Pipeline.histogram
          (Urs_prob.Hyperexponential.pdf side.Urs_dataset.Pipeline.h2_fit)
          ~upper:250.0
      in
      Format.printf "operative-period density (first rows of Figure 3):@.";
      Format.printf "  %10s  %12s  %12s@." "x" "empirical" "H2 fit";
      List.iteri
        (fun i (x, emp, fit) ->
          if i < 8 then Format.printf "  %10.2f  %12.6f  %12.6f@." x emp fit)
        rows;

      (* feed the fitted laws into the performance model *)
      let model =
        Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
          ~operative:
            (Urs_prob.Distribution.Hyperexponential
               side.Urs_dataset.Pipeline.h2_fit)
          ~inoperative:
            (Urs_prob.Distribution.Hyperexponential
               report.Urs_dataset.Pipeline.inoperative.Urs_dataset.Pipeline.h2_fit) ()
      in
      let perf = Urs.Solver.evaluate_exn model in
      Format.printf
        "@.a 10-server cluster with these fitted laws at λ = 8: %a@."
        Urs.Solver.pp_performance perf;

      (* contrast with the (wrong) exponential assumption *)
      let exp_model =
        Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
          ~operative:
            (Urs_prob.Distribution.Exponential
               side.Urs_dataset.Pipeline.exponential_fit)
          ~inoperative:
            (Urs_prob.Distribution.Exponential
               report.Urs_dataset.Pipeline.inoperative.Urs_dataset.Pipeline
                 .exponential_fit) ()
      in
      let exp_perf = Urs.Solver.evaluate_exn exp_model in
      Format.printf
        "the exponential-breakdown assumption would predict:    %a@.\
         — underestimating the queue, exactly the paper's warning.@."
        Urs.Solver.pp_performance exp_perf
