(* Beyond the paper: the analytical machinery only needs a Markovian
   environment, so any phase-type operative/inoperative law works — not
   just the hyperexponentials of §3. This example solves systems with
   Erlang (low-variability) and Coxian (correlated-phase) operative
   periods exactly, and confirms each against simulation.

   Run with: dune exec examples/beyond_hyperexponential.exe *)

module D = Urs_prob.Distribution

let evaluate_both name model =
  let exact = Urs.Solver.evaluate_exn model in
  let sim =
    Urs.Solver.evaluate_exn
      ~strategy:
        (Urs.Solver.Simulation
           { Urs.Solver.duration = 100_000.0; replications = 3; seed = 11 })
      model
  in
  Format.printf "  %-24s exact L = %8.4f   simulated L = %8.4f ± %.3f@." name
    exact.Urs.Solver.mean_jobs sim.Urs.Solver.mean_jobs
    (Option.value ~default:0.0 sim.Urs.Solver.confidence_half_width)

let () =
  (* heavy load and slow repairs, where period variability bites
     (the Figure-6 regime) *)
  let base operative =
    Urs.Model.create ~servers:4 ~arrival_rate:3.0 ~service_rate:1.0 ~operative
      ~inoperative:(D.exponential ~rate:0.2) ()
  in
  Format.printf
    "Operative-period laws with equal mean 30 but different shapes@.\
     (N = 4, λ = 3.0, exponential repairs with mean 5):@.@.";

  (* same mean, increasing variability *)
  evaluate_both "Erlang-3 (C² = 1/3)" (base (D.erlang ~k:3 ~rate:0.1));
  evaluate_both "exponential (C² = 1)" (base (D.exponential ~rate:(1.0 /. 30.0)));
  (match Urs_prob.Fit.h2_of_mean_scv ~mean:30.0 ~scv:4.0 with
  | Ok h2 ->
      evaluate_both "hyperexponential (C² = 4)"
        (base (D.Hyperexponential h2))
  | Error e -> Format.printf "  H2 fit failed: %a@." Urs_prob.Fit.pp_error e);

  (* a Coxian: phase 1 either completes (rate 0.05) or ages into a
     long-lived phase 2 (rate 0.15) *)
  let coxian =
    D.phase_type ~alpha:[| 1.0; 0.0 |]
      ~t_matrix:
        (Urs_linalg.Matrix.of_arrays [| [| -0.2; 0.15 |]; [| 0.0; -0.02 |] |])
  in
  Format.printf "@.A Coxian operative law (mean %.1f, C² = %.2f):@.@."
    (D.mean coxian) (D.scv coxian);
  evaluate_both "Coxian-2" (base coxian);

  Format.printf
    "@.Queue sizes grow with operative-period variability even at equal@.\
     means — the paper's Figure-6 message, now verified across the whole@.\
     phase-type family rather than hyperexponentials alone.@."
