(* The Figure 6/7 message in miniature: performance depends on the
   *distribution* of operative periods, not just their mean. Keeping
   the mean fixed and raising the squared coefficient of variation
   inflates the queue — strongly so under heavy load.

   Run with: dune exec examples/variability_impact.exe *)

let () =
  (* Figure 6 setting: N = 10, mean operative period 34.62 (ξ = 0.0289),
     mean repair 5 (η = 0.2) *)
  let mean_op = 34.62 in
  let base =
    Urs.Model.create ~servers:10 ~arrival_rate:8.5 ~service_rate:1.0
      ~operative:(Urs_prob.Distribution.exponential ~rate:(1.0 /. mean_op))
      ~inoperative:(Urs_prob.Distribution.exponential ~rate:0.2) ()
  in
  Format.printf
    "L against operative-period variability (N = 10, mean op %.2f, 1/η = 5):@.@."
    mean_op;
  Format.printf "  %6s  %12s  %12s@." "C²" "L (λ=8.5)" "L (λ=8.6)";
  List.iter
    (fun scv ->
      let l_at lambda =
        let m = Urs.Model.with_arrival_rate base lambda in
        match
          Urs.Sweep.over_operative_scv m ~pinned_rate:0.1663 ~values:[ scv ]
        with
        | [ (_, perf) ] -> Some perf.Urs.Solver.mean_jobs
        | _ -> None
      in
      match (l_at 8.5, l_at 8.6) with
      | Some l1, Some l2 -> Format.printf "  %6.1f  %12.2f  %12.2f@." scv l1 l2
      | _ -> Format.printf "  %6.1f  %12s  %12s@." scv "-" "-")
    [ 1.0; 2.0; 4.0; 8.0; 12.0; 18.0 ];

  (* Figure 7 setting: exponential vs hyperexponential operative periods
     with the same mean, as the repair time grows *)
  Format.printf
    "@.L against mean repair time (N = 10, λ = 8): exponential vs@.\
     hyperexponential operative periods with the same mean:@.@.";
  Format.printf "  %6s  %14s  %14s@." "1/η" "L (exp op)" "L (H2 op)";
  let exp_base = Urs.Model.with_arrival_rate base 8.0 in
  let h2_base =
    Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
      ~operative:Urs.Model.paper_operative
      ~inoperative:(Urs_prob.Distribution.exponential ~rate:0.2) ()
  in
  List.iter
    (fun repair ->
      let get m =
        match Urs.Sweep.over_repair_times m ~values:[ repair ] with
        | [ (_, perf) ] -> Some perf.Urs.Solver.mean_jobs
        | _ -> None
      in
      match (get exp_base, get h2_base) with
      | Some a, Some b -> Format.printf "  %6.1f  %14.3f  %14.3f@." repair a b
      | _ -> Format.printf "  %6.1f  %14s  %14s@." repair "-" "-")
    [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Format.printf
    "@.The exponential model is increasingly over-optimistic as repairs@.\
     slow down — the gap is the paper's Figure 7.@."
