(* Capacity planning (the Figure 9 scenario): what is the minimum number
   of servers that keeps the mean response time below a target?
   Also shows why ignoring breakdown variability undersizes the fleet.

   Run with: dune exec examples/capacity_planning.exe *)

let () =
  let target = 1.5 in
  let lambda = 7.5 in
  let model =
    Urs.Model.create ~servers:8 ~arrival_rate:lambda ~service_rate:1.0
      ~operative:Urs.Model.paper_operative
      ~inoperative:Urs.Model.paper_inoperative_exp ()
  in
  Format.printf "Mean response time against fleet size (λ = %.1f):@.@." lambda;
  Format.printf "  %4s  %12s  %12s@." "N" "W (exact)" "W (approx)";
  let exact = Urs.Capacity.response_profile model ~n_min:8 ~n_max:13 in
  let approx =
    Urs.Capacity.response_profile ~strategy:Urs.Solver.Approximate model
      ~n_min:8 ~n_max:13
  in
  List.iter2
    (fun (n, w) (_, wa) -> Format.printf "  %4d  %12.4f  %12.4f@." n w wa)
    exact approx;

  (match Urs.Capacity.min_servers_for_response model ~target with
  | Ok (n, perf) ->
      Format.printf "@.Minimum fleet for W <= %.2f: N = %d (achieves W = %.4f)@."
        target n perf.Urs.Solver.mean_response
  | Error e -> Format.printf "@.planning failed: %a@." Urs.Solver.pp_error e);

  (* a planner who ignores breakdowns entirely would use Erlang C *)
  let naive =
    Urs_mmq.Mmc.min_servers_for_response_time ~lambda ~mu:1.0 ~target
  in
  Format.printf
    "@.An M/M/c planner that ignores breakdowns would deploy N = %d —@."
    naive;
  let naive_model = Urs.Model.with_servers model naive in
  (match Urs.Solver.evaluate naive_model with
  | Ok perf ->
      Format.printf
        "with real breakdowns that fleet actually delivers W = %.3f%s@."
        perf.Urs.Solver.mean_response
        (if perf.Urs.Solver.mean_response > target then
           " (MISSES the target)"
         else "")
  | Error (Urs.Solver.Unstable _) ->
      Format.printf "with real breakdowns that fleet is not even stable!@."
  | Error e -> Format.printf "evaluation failed: %a@." Urs.Solver.pp_error e)
