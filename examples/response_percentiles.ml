(* The paper's stated open problem (§5): the analytical solution gives
   the mean response time but not its distribution. The simulator fills
   that gap: this example reports response-time percentiles alongside
   the exact mean.

   Run with: dune exec examples/response_percentiles.exe *)

let () =
  let model =
    Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
      ~operative:Urs.Model.paper_operative
      ~inoperative:Urs.Model.paper_inoperative_exp ()
  in
  let exact = Urs.Solver.evaluate_exn model in
  Format.printf "exact mean response time (spectral expansion): W = %.4f@.@."
    exact.Urs.Solver.mean_response;

  let cfg =
    {
      Urs_sim.Server_farm.servers = model.Urs.Model.servers;
      lambda = model.Urs.Model.arrival_rate;
      mu = model.Urs.Model.service_rate;
      operative = model.Urs.Model.operative;
      inoperative = model.Urs.Model.inoperative;
      repair_crews = None;
    }
  in
  let r = Urs_sim.Server_farm.run ~seed:7 ~duration:300_000.0 cfg in
  Format.printf "simulated %d completions; mean W = %.4f (exact %.4f)@.@."
    r.Urs_sim.Server_farm.completed r.Urs_sim.Server_farm.mean_response
    exact.Urs.Solver.mean_response;

  Format.printf "response-time distribution (simulation):@.";
  List.iter
    (fun p ->
      let v = Urs_stats.Empirical.quantile r.Urs_sim.Server_farm.responses p in
      Format.printf "  %4.0f%%  %8.4f@." (100.0 *. p) v)
    [ 0.5; 0.75; 0.9; 0.95; 0.99 ];

  (* the heavy right tail is driven by jobs caught in long outages: the
     90th percentile exceeds the mean noticeably, which a mean-only
     analysis (or an exponential-operative model) would hide *)
  let p90 = Urs_stats.Empirical.quantile r.Urs_sim.Server_farm.responses 0.9 in
  Format.printf "@.tail factor p90 / mean = %.2f@."
    (p90 /. r.Urs_sim.Server_farm.mean_response)
