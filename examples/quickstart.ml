(* Quickstart: describe an unreliable multi-server system, check its
   stability, and evaluate it with every solver.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A cluster of 10 servers, Poisson arrivals at rate 8 jobs per unit
     time, exponential service at rate 1. Operative periods follow the
     paper's fitted hyperexponential (mean 34.62, C² = 4.6); repairs are
     exponential with mean 0.04. *)
  let model =
    Urs.Model.create ~servers:10 ~arrival_rate:8.0 ~service_rate:1.0
      ~operative:Urs.Model.paper_operative
      ~inoperative:Urs.Model.paper_inoperative_exp ()
  in
  Format.printf "%a@.@." Urs.Model.pp model;

  (* Stability (paper eq. 11): offered load vs average operative servers *)
  let verdict = Urs.Model.stability model in
  Format.printf "stability: %a@.@." Urs_mmq.Stability.pp_verdict verdict;

  (* Exact solution by spectral expansion *)
  let exact = Urs.Solver.evaluate_exn model in
  Format.printf "exact:       %a@." Urs.Solver.pp_performance exact;

  (* Heavy-traffic geometric approximation *)
  let approx = Urs.Solver.evaluate_exn ~strategy:Urs.Solver.Approximate model in
  Format.printf "approximate: %a@." Urs.Solver.pp_performance approx;

  (* Independent exact method (matrix-geometric), as a cross-check *)
  let mg = Urs.Solver.evaluate_exn ~strategy:Urs.Solver.Matrix_geometric model in
  Format.printf "matrix-geo:  %a@." Urs.Solver.pp_performance mg;

  (* Simulation agrees too (and would also accept non-phase-type
     distributions) *)
  let sim_opts = { Urs.Solver.duration = 50_000.0; replications = 3; seed = 1 } in
  let sim =
    Urs.Solver.evaluate_exn ~strategy:(Urs.Solver.Simulation sim_opts) model
  in
  Format.printf "simulation:  %a@.@." Urs.Solver.pp_performance sim;

  Format.printf
    "The exact and matrix-geometric numbers agree to ~1e-8 and the@.\
     simulation confirms them. The geometric approximation underestimates@.\
     at this utilization (%.2f) — the paper's Figure 8 shows it becoming@.\
     exact as the load approaches 1.@."
    exact.Urs.Solver.utilization
