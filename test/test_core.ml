(* Tests for the public API: Model, Solver, Cost, Capacity and Sweep —
   including the headline reproduction checks (Figure 5 optima at small
   scale, Figure 9 capacity answer, strategy agreement). *)

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_contains msg hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  if not (nn = 0 || go 0) then
    Alcotest.failf "%s: %S not found in %S" msg needle hay

let paper_model ~servers ~lambda =
  Urs.Model.create ~servers ~arrival_rate:lambda ~service_rate:1.0
    ~operative:Urs.Model.paper_operative
    ~inoperative:Urs.Model.paper_inoperative_exp ()

(* ---- Model ---- *)

let test_model_validation () =
  Alcotest.check_raises "servers" (Invalid_argument "Model.create: servers must be >= 1")
    (fun () -> ignore (paper_model ~servers:0 ~lambda:1.0));
  Alcotest.check_raises "rate" (Invalid_argument "Model.create: arrival_rate positive")
    (fun () -> ignore (paper_model ~servers:1 ~lambda:(-1.0)))

let test_model_paper_distributions () =
  check_float ~tol:0.01 "operative mean" 34.62
    (Urs_prob.Distribution.mean Urs.Model.paper_operative);
  check_float ~tol:0.05 "operative scv" 4.59
    (Urs_prob.Distribution.scv Urs.Model.paper_operative);
  check_float ~tol:1e-3 "inoperative h2 mean" 0.0797
    (Urs_prob.Distribution.mean Urs.Model.paper_inoperative_h2);
  check_float ~tol:1e-9 "inoperative exp mean" 0.04
    (Urs_prob.Distribution.mean Urs.Model.paper_inoperative_exp)

let test_model_phase_type_detection () =
  let m = paper_model ~servers:2 ~lambda:1.0 in
  Alcotest.(check bool) "phase type" true (Urs.Model.is_phase_type m);
  Alcotest.(check bool) "has environment" true
    (Option.is_some (Urs.Model.environment m));
  let det =
    Urs.Model.create ~servers:2 ~arrival_rate:1.0 ~service_rate:1.0
      ~operative:(Urs_prob.Distribution.deterministic 30.0)
      ~inoperative:Urs.Model.paper_inoperative_exp ()
  in
  Alcotest.(check bool) "deterministic not phase type" false
    (Urs.Model.is_phase_type det);
  (* stability is still computable from the means *)
  Alcotest.(check bool) "stability distribution-free" true
    (Urs.Model.stability det).Urs_mmq.Stability.stable

let test_model_with_servers () =
  let m = paper_model ~servers:3 ~lambda:1.0 in
  let m2 = Urs.Model.with_servers m 7 in
  Alcotest.(check int) "servers changed" 7 m2.Urs.Model.servers;
  check_float "rate unchanged" 1.0 m2.Urs.Model.arrival_rate

(* ---- Solver ---- *)

let test_solver_strategies_agree () =
  let m = paper_model ~servers:5 ~lambda:4.0 in
  let exact = Urs.Solver.evaluate_exn m in
  let mg = Urs.Solver.evaluate_exn ~strategy:Urs.Solver.Matrix_geometric m in
  check_float ~tol:1e-6 "exact = matrix-geometric" exact.Urs.Solver.mean_jobs
    mg.Urs.Solver.mean_jobs;
  let sim_opts = { Urs.Solver.duration = 80_000.0; replications = 4; seed = 3 } in
  let sim = Urs.Solver.evaluate_exn ~strategy:(Urs.Solver.Simulation sim_opts) m in
  let hw = Option.value ~default:0.0 sim.Urs.Solver.confidence_half_width in
  if
    abs_float (sim.Urs.Solver.mean_jobs -. exact.Urs.Solver.mean_jobs)
    > Float.max (4.0 *. hw) (0.05 *. exact.Urs.Solver.mean_jobs)
  then
    Alcotest.failf "simulation %.4f±%.4f disagrees with exact %.4f"
      sim.Urs.Solver.mean_jobs hw exact.Urs.Solver.mean_jobs

let test_solver_little_law () =
  let m = paper_model ~servers:5 ~lambda:4.0 in
  let p = Urs.Solver.evaluate_exn m in
  check_float ~tol:1e-12 "W = L/λ" (p.Urs.Solver.mean_jobs /. 4.0)
    p.Urs.Solver.mean_response

let test_solver_unstable_error () =
  let m = paper_model ~servers:2 ~lambda:5.0 in
  match Urs.Solver.evaluate m with
  | Error (Urs.Solver.Unstable _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Urs.Solver.pp_error e
  | Ok _ -> Alcotest.fail "expected instability"

let test_solver_non_phase_type_needs_simulation () =
  let det =
    Urs.Model.create ~servers:3 ~arrival_rate:1.0 ~service_rate:1.0
      ~operative:(Urs_prob.Distribution.deterministic 30.0)
      ~inoperative:(Urs_prob.Distribution.exponential ~rate:2.0) ()
  in
  (match Urs.Solver.evaluate det with
  | Error Urs.Solver.Not_phase_type -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Urs.Solver.pp_error e
  | Ok _ -> Alcotest.fail "exact solver must refuse non-phase-type");
  let sim_opts = { Urs.Solver.duration = 20_000.0; replications = 2; seed = 5 } in
  match Urs.Solver.evaluate ~strategy:(Urs.Solver.Simulation sim_opts) det with
  | Ok p -> Alcotest.(check bool) "positive L" true (p.Urs.Solver.mean_jobs > 0.0)
  | Error e -> Alcotest.failf "simulation failed: %a" Urs.Solver.pp_error e

let test_solver_approximate_underestimates_moderate_load () =
  (* at util ~0.8 the geometric approximation gives a smaller L than the
     exact solution for this model (cf. Figure 8's left edge) *)
  let m = paper_model ~servers:10 ~lambda:8.0 in
  let exact = Urs.Solver.evaluate_exn m in
  let approx = Urs.Solver.evaluate_exn ~strategy:Urs.Solver.Approximate m in
  Alcotest.(check bool) "approx < exact here" true
    (approx.Urs.Solver.mean_jobs < exact.Urs.Solver.mean_jobs);
  (* both agree on the dominant eigenvalue *)
  match (exact.Urs.Solver.dominant_eigenvalue, approx.Urs.Solver.dominant_eigenvalue) with
  | Some a, Some b -> check_float ~tol:1e-6 "z_s" a b
  | _ -> Alcotest.fail "missing eigenvalues"

(* ---- Cost (Figure 5) ---- *)

let test_cost_formula () =
  let perf =
    {
      Urs.Solver.strategy_used = Urs.Solver.Exact;
      mean_jobs = 3.0;
      mean_response = 1.0;
      utilization = 0.5;
      dominant_eigenvalue = None;
      confidence_half_width = None;
    }
  in
  check_float "C = c1 L + c2 N" 17.0
    (Urs.Cost.of_performance Urs.Cost.paper_params ~servers:5 perf)

let test_cost_optimum_small () =
  (* scaled-down Figure 5: λ = 4, the optimum must be interior and the
     cost curve convex around it *)
  let m = paper_model ~servers:5 ~lambda:4.0 in
  match Urs.Cost.optimal_servers ~n_max:20 m Urs.Cost.paper_params with
  | Error e -> Alcotest.failf "optimization failed: %a" Urs.Solver.pp_error e
  | Ok (n_star, c_star) ->
      let costs = Urs.Cost.evaluate_range m Urs.Cost.paper_params
          ~n_min:(max 1 (n_star - 1)) ~n_max:(n_star + 2) in
      List.iter
        (fun (n, c) ->
          if n <> n_star && c < c_star -. 1e-9 then
            Alcotest.failf "N=%d has lower cost than the claimed optimum" n)
        costs

let test_cost_unstable_range_empty () =
  let m = paper_model ~servers:2 ~lambda:10.0 in
  let costs = Urs.Cost.evaluate_range m Urs.Cost.paper_params ~n_min:2 ~n_max:9 in
  Alcotest.(check int) "no stable point" 0 (List.length costs)

(* ---- Capacity (Figure 9) ---- *)

let test_capacity_monotone_and_minimal () =
  let m = paper_model ~servers:8 ~lambda:5.0 in
  let prof = Urs.Capacity.response_profile m ~n_min:6 ~n_max:12 in
  (* response time decreases with more servers *)
  let rec check_decreasing = function
    | (_, w1) :: ((_, w2) :: _ as rest) ->
        if w2 > w1 +. 1e-9 then Alcotest.fail "W must decrease in N";
        check_decreasing rest
    | _ -> ()
  in
  check_decreasing prof;
  match Urs.Capacity.min_servers_for_response m ~target:1.3 with
  | Error e -> Alcotest.failf "capacity failed: %a" Urs.Solver.pp_error e
  | Ok (n, perf) ->
      Alcotest.(check bool) "meets target" true
        (perf.Urs.Solver.mean_response <= 1.3);
      (* minimality: one fewer server misses the target or is unstable *)
      let m' = Urs.Model.with_servers m (n - 1) in
      (match Urs.Solver.evaluate m' with
      | Ok p ->
          Alcotest.(check bool) "minimal" true (p.Urs.Solver.mean_response > 1.3)
      | Error _ -> ())

let test_capacity_unreachable_target () =
  let m = paper_model ~servers:2 ~lambda:1.0 in
  (* W can never drop below the mean service time 1.0 *)
  match Urs.Capacity.min_servers_for_response ~n_max:30 m ~target:0.5 with
  | Error _ -> ()
  | Ok (n, _) -> Alcotest.failf "impossible target claimed reachable at N=%d" n

(* ---- Sweep ---- *)

let test_sweep_arrival_rates () =
  let m = paper_model ~servers:5 ~lambda:1.0 in
  let pts = Urs.Sweep.over_arrival_rates m ~values:[ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "all solved" 4 (List.length pts);
  (* L increases with λ *)
  let ls = List.map (fun (_, p) -> p.Urs.Solver.mean_jobs) pts in
  let rec incr_check = function
    | a :: (b :: _ as rest) ->
        if b <= a then Alcotest.fail "L must increase with λ";
        incr_check rest
    | _ -> ()
  in
  incr_check ls

let test_sweep_scv_monotone () =
  (* the Figure 6 claim: L grows with operative-period variability *)
  let m =
    Urs.Model.create ~servers:10 ~arrival_rate:8.5 ~service_rate:1.0
      ~operative:(Urs_prob.Distribution.exponential ~rate:(1.0 /. 34.62))
      ~inoperative:(Urs_prob.Distribution.exponential ~rate:0.2) ()
  in
  let pts =
    Urs.Sweep.over_operative_scv m ~pinned_rate:0.1663
      ~values:[ 1.0; 4.0; 10.0; 18.0 ]
  in
  Alcotest.(check int) "all solved" 4 (List.length pts);
  let ls = List.map (fun (_, p) -> p.Urs.Solver.mean_jobs) pts in
  let rec incr_check = function
    | a :: (b :: _ as rest) ->
        if b <= a then Alcotest.fail "L must increase with C²";
        incr_check rest
    | _ -> ()
  in
  incr_check ls

let test_sweep_repair_times () =
  let m = paper_model ~servers:10 ~lambda:8.0 in
  let pts = Urs.Sweep.over_repair_times m ~values:[ 1.0; 3.0; 5.0 ] in
  Alcotest.(check int) "solved" 3 (List.length pts);
  let ls = List.map (fun (_, p) -> p.Urs.Solver.mean_jobs) pts in
  (match ls with
  | [ a; b; c ] ->
      Alcotest.(check bool) "L grows with repair time" true (a < b && b < c)
  | _ -> Alcotest.fail "unexpected shape")

let test_linspace () =
  match Urs.Sweep.linspace 0.0 1.0 5 with
  | [ a; b; _; _; e ] ->
      check_float "first" 0.0 a;
      check_float "step" 0.25 b;
      check_float "last" 1.0 e
  | _ -> Alcotest.fail "wrong length"

(* ---- the POST /solve service ---- *)

module Json = Urs_obs.Json
module Http = Urs_obs.Http

let handle ?pool ?cache ?max_iter body =
  Urs.Solve_service.handle ?pool ?cache ?max_iter [] ~body

let performance_of resp =
  match Json.of_string resp.Http.body with
  | Error msg -> Alcotest.failf "response is not JSON (%s): %s" msg resp.Http.body
  | Ok j -> (
      match Json.member "performance" j with
      | Some p -> Json.to_string p
      | None -> Alcotest.failf "no performance object in %s" resp.Http.body)

let test_solve_service_scenario () =
  let resp = handle {|{"scenario":"paper"}|} in
  Alcotest.(check int) "status" 200 resp.Http.status;
  Alcotest.(check string)
    "content type" "application/json" resp.Http.content_type;
  let expected =
    match Urs.Solver.evaluate (paper_model ~servers:10 ~lambda:8.0) with
    | Ok p -> p
    | Error e ->
        Alcotest.failf "direct solve failed: %s"
          (Format.asprintf "%a" Urs.Solver.pp_error e)
  in
  let j = Result.get_ok (Json.of_string resp.Http.body) in
  let perf_float field =
    match Option.bind (Json.member "performance" j) (Json.member field) with
    | Some v -> Option.value ~default:nan (Json.to_float_opt v)
    | None -> Alcotest.failf "missing performance.%s" field
  in
  (* bit-identical to the library solver, not merely close *)
  check_float ~tol:0.0 "mean_jobs matches Solver.evaluate exactly"
    expected.Urs.Solver.mean_jobs (perf_float "mean_jobs");
  check_float ~tol:0.0 "mean_response matches" expected.Urs.Solver.mean_response
    (perf_float "mean_response");
  (* mean queue wait = sojourn minus the 1/µ service requirement *)
  check_float "queue wait"
    (expected.Urs.Solver.mean_response -. 1.0)
    (perf_float "mean_queue_wait");
  (* an empty body solves the same model as a bare `urs solve` *)
  Alcotest.(check string)
    "{} is the paper model"
    (performance_of resp)
    (performance_of (handle "{}"))

let test_solve_service_pool_identical () =
  let body = {|{"servers":10,"lambda":8,"mu":1,"strategy":"exact"}|} in
  let seq = performance_of (handle body) in
  let par =
    Urs_exec.Pool.with_pool ~name:"solve-test" ~domains:4 (fun pool ->
        performance_of (handle ~pool body))
  in
  Alcotest.(check string) "performance byte-identical across pool widths" seq
    par

let test_solve_service_cache_annotation () =
  let cache = Urs.Solve_cache.create () in
  let body = {|{"scenario":"paper-h2"}|} in
  let first = handle ~cache body in
  let second = handle ~cache body in
  check_contains "first solve is a miss" first.Http.body
    {|"cache":{"hit":false,"enabled":true}|};
  check_contains "second solve hits" second.Http.body
    {|"cache":{"hit":true,"enabled":true}|};
  Alcotest.(check string)
    "cached answer identical" (performance_of first) (performance_of second);
  (* without a cache the response says so *)
  check_contains "cacheless solve" (handle body).Http.body
    {|"cache":{"hit":false,"enabled":false}|}

let test_solve_service_max_iter_drill () =
  (* a starved solver is a 500 — the error-rate-SLO breach drill *)
  let resp = handle ~max_iter:1 {|{"scenario":"paper"}|} in
  Alcotest.(check int) "solver failure is a 500" 500 resp.Http.status;
  check_contains "error payload" resp.Http.body {|"error"|}

let test_solve_service_client_errors () =
  List.iter
    (fun (label, body) ->
      let resp = handle body in
      if resp.Http.status <> 400 then
        Alcotest.failf "%s: got %d (want 400): %s" label resp.Http.status
          resp.Http.body)
    [
      ("malformed json", "{");
      ("not an object", "[1,2]");
      ("unknown scenario", {|{"scenario":"nope"}|});
      ("unknown strategy", {|{"strategy":"magic"}|});
      ("bad distribution", {|{"operative":"nope:1"}|});
      ("non-numeric field", {|{"lambda":"eight"}|});
      ("unstable model", {|{"servers":1,"lambda":5,"mu":1}|});
      ("invalid model", {|{"servers":0}|});
    ]

let test_solve_service_parse_request () =
  match
    Urs.Solve_service.parse_request
      {|{"scenario":"paper","strategy":"sim",
         "sim":{"duration":1000,"replications":2,"seed":5}}|}
  with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok (m, Urs.Solver.Simulation { Urs.Solver.duration; replications; seed }) ->
      Alcotest.(check int) "servers from scenario" 10 m.Urs.Model.servers;
      check_float "duration" 1000.0 duration;
      Alcotest.(check int) "replications" 2 replications;
      Alcotest.(check int) "seed" 5 seed
  | Ok _ -> Alcotest.fail "expected the simulation strategy"

(* ---- loadgen ---- *)

let with_ping_server f =
  let server =
    Http.start ~port:0
      ~routes:[ ("/ping", fun _q -> Http.respond "pong\n") ]
      ()
  in
  Fun.protect ~finally:(fun () -> Http.stop server) (fun () -> f (Http.port server))

let test_loadgen_closed_loop () =
  with_ping_server @@ fun port ->
  let r =
    Urs.Loadgen.run ~port ~target:"/ping" ~duration_s:0.5
      ~mode:(Urs.Loadgen.Closed { workers = 2; think_s = 0.0 })
      ()
  in
  if r.Urs.Loadgen.requests <= 0 then Alcotest.fail "no requests completed";
  Alcotest.(check int) "no errors" 0 r.Urs.Loadgen.errors;
  Alcotest.(check int) "no timeouts" 0 r.Urs.Loadgen.timeouts;
  Alcotest.(check (list (pair int int)))
    "every response was a 200"
    [ (200, r.Urs.Loadgen.requests) ]
    r.Urs.Loadgen.codes;
  let finite_positive msg v =
    if not (v > 0.0 && Float.is_finite v) then
      Alcotest.failf "%s: %g not finite-positive" msg v
  in
  finite_positive "throughput" r.Urs.Loadgen.throughput;
  finite_positive "mean latency" r.Urs.Loadgen.mean_s;
  finite_positive "p50" r.Urs.Loadgen.p50_s;
  finite_positive "p99" r.Urs.Loadgen.p99_s;
  if r.Urs.Loadgen.p99_s < r.Urs.Loadgen.p50_s then
    Alcotest.fail "quantiles must be monotone";
  Alcotest.(check string) "mode label" "closed" (Urs.Loadgen.mode_label r.Urs.Loadgen.mode)

let test_loadgen_open_loop_rate () =
  (* the workers share ONE Poisson schedule: the completed count tracks
     rate * duration, not workers * rate * duration *)
  with_ping_server @@ fun port ->
  let r =
    Urs.Loadgen.run ~seed:3 ~port ~target:"/ping" ~duration_s:1.0
      ~mode:(Urs.Loadgen.Open { rate = 200.0; workers = 2 })
      ()
  in
  let n = r.Urs.Loadgen.requests in
  if n < 100 || n > 300 then
    Alcotest.failf "open loop at rate 200 for 1s completed %d requests" n;
  Alcotest.(check int) "no errors" 0 r.Urs.Loadgen.errors

let test_loadgen_validation () =
  let expect_invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should raise Invalid_argument" label
  in
  let run duration_s mode () =
    ignore (Urs.Loadgen.run ~port:1 ~target:"/x" ~duration_s ~mode ())
  in
  expect_invalid "zero duration"
    (run 0.0 (Urs.Loadgen.Closed { workers = 1; think_s = 0.0 }));
  expect_invalid "zero workers"
    (run 1.0 (Urs.Loadgen.Closed { workers = 0; think_s = 0.0 }));
  expect_invalid "negative think"
    (run 1.0 (Urs.Loadgen.Closed { workers = 1; think_s = -1.0 }));
  expect_invalid "zero rate"
    (run 1.0 (Urs.Loadgen.Open { rate = 0.0; workers = 1 }))

let test_loadgen_compare_model () =
  with_ping_server @@ fun port ->
  let r =
    Urs.Loadgen.run ~port ~target:"/ping" ~duration_s:0.3
      ~mode:(Urs.Loadgen.Closed { workers = 1; think_s = 0.0 })
      ()
  in
  (match Urs.Loadgen.compare_model ~probes:10 ~port ~target:"/ping" r with
  | Error msg -> Alcotest.failf "comparison failed: %s" msg
  | Ok c ->
      if not (c.Urs.Loadgen.mu_hat > 0.0) then
        Alcotest.failf "fitted service rate %g" c.Urs.Loadgen.mu_hat;
      check_float ~tol:0.0 "lambda is the measured throughput"
        r.Urs.Loadgen.throughput c.Urs.Loadgen.lambda;
      check_float ~tol:0.0 "measured response carried over"
        r.Urs.Loadgen.mean_s c.Urs.Loadgen.measured_response_s);
  (* every calibration probe failing is an Error, not a crash *)
  match Urs.Loadgen.compare_model ~probes:2 ~port:1 ~target:"/ping" r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dead port should fail calibration"

let () =
  Alcotest.run "urs_core"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "paper distributions" `Quick
            test_model_paper_distributions;
          Alcotest.test_case "phase-type detection" `Quick
            test_model_phase_type_detection;
          Alcotest.test_case "with_servers" `Quick test_model_with_servers;
        ] );
      ( "solver",
        [
          Alcotest.test_case "strategies agree" `Slow test_solver_strategies_agree;
          Alcotest.test_case "little's law" `Quick test_solver_little_law;
          Alcotest.test_case "unstable error" `Quick test_solver_unstable_error;
          Alcotest.test_case "non-phase-type routing" `Slow
            test_solver_non_phase_type_needs_simulation;
          Alcotest.test_case "approximation behaviour at moderate load" `Quick
            test_solver_approximate_underestimates_moderate_load;
        ] );
      ( "cost (figure 5)",
        [
          Alcotest.test_case "formula (eq 22)" `Quick test_cost_formula;
          Alcotest.test_case "optimum is a local minimum" `Slow
            test_cost_optimum_small;
          Alcotest.test_case "unstable range" `Quick test_cost_unstable_range_empty;
        ] );
      ( "capacity (figure 9)",
        [
          Alcotest.test_case "monotone and minimal" `Slow
            test_capacity_monotone_and_minimal;
          Alcotest.test_case "unreachable target" `Quick
            test_capacity_unreachable_target;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "arrival rates" `Quick test_sweep_arrival_rates;
          Alcotest.test_case "scv monotone (figure 6)" `Quick
            test_sweep_scv_monotone;
          Alcotest.test_case "repair times (figure 7)" `Quick
            test_sweep_repair_times;
          Alcotest.test_case "linspace" `Quick test_linspace;
        ] );
      ( "solve-service",
        [
          Alcotest.test_case "paper scenario" `Quick test_solve_service_scenario;
          Alcotest.test_case "pool-width invariance" `Quick
            test_solve_service_pool_identical;
          Alcotest.test_case "cache annotation" `Quick
            test_solve_service_cache_annotation;
          Alcotest.test_case "max-iter fault drill" `Quick
            test_solve_service_max_iter_drill;
          Alcotest.test_case "client errors are 400s" `Quick
            test_solve_service_client_errors;
          Alcotest.test_case "request parsing" `Quick
            test_solve_service_parse_request;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "closed loop" `Quick test_loadgen_closed_loop;
          Alcotest.test_case "open loop offered rate" `Quick
            test_loadgen_open_loop_rate;
          Alcotest.test_case "parameter validation" `Quick
            test_loadgen_validation;
          Alcotest.test_case "model comparison" `Quick
            test_loadgen_compare_model;
        ] );
    ]
