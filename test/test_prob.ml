(* Tests for the probability substrate: RNG, special functions,
   distributions, moment fitting, and the Kolmogorov–Smirnov test. *)

open Urs_prob

let check_float ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    if Rng.float a <> Rng.float b then Alcotest.fail "streams diverge"
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.float a = Rng.float b then incr same
  done;
  Alcotest.(check bool) "different seeds differ" true (!same < 5)

let test_rng_uniform_range () =
  let g = Rng.create 7 in
  for _ = 1 to 10_000 do
    let u = Rng.float g in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_rng_mean () =
  let g = Rng.create 11 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float g
  done;
  check_float ~tol:0.01 "uniform mean" 0.5 (!acc /. float_of_int n)

let test_rng_exponential_mean () =
  let g = Rng.create 13 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential g 4.0
  done;
  check_float ~tol:0.01 "exp mean" 0.25 (!acc /. float_of_int n)

let test_rng_choose () =
  let g = Rng.create 17 in
  let counts = Array.make 3 0 in
  let weights = [| 0.5; 0.3; 0.2 |] in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Rng.choose g weights in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i w ->
      check_float ~tol:0.02 "choose frequency" w
        (float_of_int counts.(i) /. float_of_int n))
    weights

let test_rng_split_independence () =
  let g = Rng.create 23 in
  let h = Rng.split g in
  (* the two streams should not be identical *)
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rng.float g = Rng.float h then incr same
  done;
  Alcotest.(check bool) "split independent" true (!same < 5)

let paper_h2 = Hyperexponential.of_pairs [ (0.7246, 0.1663); (0.2754, 0.0091) ]

(* ---- Pcg ---- *)

let test_pcg_determinism () =
  let a = Pcg.create 42 and b = Pcg.create 42 in
  for _ = 1 to 100 do
    if Pcg.float a <> Pcg.float b then Alcotest.fail "streams diverge"
  done

let test_pcg_seed_sensitivity () =
  let a = Pcg.create 1 and b = Pcg.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Pcg.float a = Pcg.float b then incr same
  done;
  Alcotest.(check bool) "different seeds differ" true (!same < 5)

let test_pcg_range () =
  let g = Pcg.create 7 in
  for _ = 1 to 10_000 do
    let u = Pcg.float g in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "float out of [0,1)";
    if Pcg.bits g < 0 then Alcotest.fail "bits negative";
    let p = Pcg.float_pos g in
    if p <= 0.0 || p > 1.0 then Alcotest.fail "float_pos out of (0,1]"
  done

let test_pcg_copy () =
  let a = Pcg.create 99 in
  for _ = 1 to 10 do
    ignore (Pcg.float a)
  done;
  let b = Pcg.copy a in
  for _ = 1 to 100 do
    if Pcg.float a <> Pcg.float b then Alcotest.fail "copy diverges"
  done

let test_pcg_ks_uniform () =
  (* goodness of fit against U(0,1) with the repo's own KS machinery *)
  let g = Pcg.create 101 in
  let samples = Array.init 5000 (fun _ -> Pcg.float g) in
  let dec =
    Ks.test_samples ~significance:0.05
      ~hypothesized:(fun x -> Float.min 1.0 (Float.max 0.0 x))
      ~samples
  in
  Alcotest.(check bool) "uniform accepted" true dec.Ks.accept

let test_pcg_ks_exponential () =
  let d = Exponential.create 4.0 in
  let g = Pcg.create 103 in
  let samples = Array.init 5000 (fun _ -> Pcg.exponential g 4.0) in
  let dec =
    Ks.test_samples ~significance:0.05 ~hypothesized:(Exponential.cdf d)
      ~samples
  in
  Alcotest.(check bool) "exponential accepted" true dec.Ks.accept

let test_pcg_ks_rejects_wrong () =
  (* the KS harness must retain power on Pcg streams too *)
  let wrong = Exponential.create 2.0 in
  let g = Pcg.create 107 in
  let samples = Array.init 5000 (fun _ -> Pcg.exponential g 4.0) in
  let dec =
    Ks.test_samples ~significance:0.05 ~hypothesized:(Exponential.cdf wrong)
      ~samples
  in
  Alcotest.(check bool) "wrong rate rejected" false dec.Ks.accept

let test_pcg_split_independence () =
  (* mirrors test_rng_split_independence: a child stream seeded from
     split_seed must not track its parent *)
  let g = Pcg.create 23 in
  let h = Pcg.create (Pcg.split_seed g) in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Pcg.float g = Pcg.float h then incr same
  done;
  Alcotest.(check bool) "split independent" true (!same < 5);
  (* and the split seed is a valid nonnegative seed *)
  Alcotest.(check bool) "seed nonnegative" true (Pcg.split_seed g >= 0)

let test_pcg_uniform_int_normal () =
  let g = Pcg.create 11 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Pcg.uniform g 2.0 6.0
  done;
  check_float ~tol:0.02 "uniform(2,6) mean" 4.0 (!acc /. float_of_int n);
  let counts = Array.make 5 0 in
  for _ = 1 to n do
    let i = Pcg.int g 5 in
    if i < 0 || i >= 5 then Alcotest.fail "int out of range";
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      check_float ~tol:0.01 "int frequency" 0.2 (float_of_int c /. float_of_int n))
    counts;
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let z = Pcg.normal g in
    acc := !acc +. z;
    acc2 := !acc2 +. (z *. z)
  done;
  check_float ~tol:0.02 "normal mean" 0.0 (!acc /. float_of_int n);
  check_float ~tol:0.03 "normal variance" 1.0 (!acc2 /. float_of_int n)

(* ---- compiled samplers ---- *)

let test_sampler_matches_distribution_means () =
  (* every family the simulator can receive: the compiled sampler's
     sample mean must match the distribution's analytic mean *)
  let families =
    [
      ("exponential", Distribution.exponential ~rate:2.0);
      ("deterministic", Distribution.deterministic 5.0);
      ("uniform", Distribution.Uniform (Uniform_d.create ~lo:2.0 ~hi:6.0));
      ("weibull", Distribution.Weibull (Weibull.create ~shape:2.0 ~scale:1.0));
      ("lognormal", Distribution.Lognormal (Lognormal.of_mean_scv ~mean:3.0 ~scv:2.0));
      ("erlang", Distribution.Erlang (Erlang.create ~k:3 ~rate:1.5));
      ("hyperexponential", Distribution.Hyperexponential paper_h2);
      ("phase_type", Distribution.Phase_type (Phase_type.of_hyperexponential paper_h2));
    ]
  in
  List.iter
    (fun (name, d) ->
      let s = Sampler.compile d in
      let g = Pcg.create 2027 in
      let n = 200_000 in
      let acc = ref 0.0 in
      for _ = 1 to n do
        acc := !acc +. Sampler.sample s g
      done;
      let mean = Distribution.mean d in
      check_float ~tol:(0.02 *. Float.max mean 1.0) name mean
        (!acc /. float_of_int n))
    families

let test_sampler_ks_exponential () =
  (* distribution-level goodness of fit, not just the mean *)
  let d = Exponential.create 1.5 in
  let s = Sampler.compile (Distribution.Exponential d) in
  let g = Pcg.create 2029 in
  let samples = Array.init 5000 (fun _ -> Sampler.sample s g) in
  let dec =
    Ks.test_samples ~significance:0.05 ~hypothesized:(Exponential.cdf d)
      ~samples
  in
  Alcotest.(check bool) "compiled exp accepted" true dec.Ks.accept

let test_sampler_ks_hyperexponential () =
  let s = Sampler.compile (Distribution.Hyperexponential paper_h2) in
  let g = Pcg.create 2031 in
  let samples = Array.init 5000 (fun _ -> Sampler.sample s g) in
  let dec =
    Ks.test_samples ~significance:0.05
      ~hypothesized:(Hyperexponential.cdf paper_h2)
      ~samples
  in
  Alcotest.(check bool) "compiled h2 accepted" true dec.Ks.accept

(* ---- special functions ---- *)

let test_log_gamma () =
  check_float ~tol:1e-10 "lgamma(1)" 0.0 (Special.log_gamma 1.0);
  check_float ~tol:1e-10 "lgamma(5)" (log 24.0) (Special.log_gamma 5.0);
  check_float ~tol:1e-10 "lgamma(0.5)" (0.5 *. log Float.pi) (Special.log_gamma 0.5);
  (* recurrence Γ(x+1) = xΓ(x) *)
  let x = 3.7 in
  check_float ~tol:1e-10 "recurrence"
    (Special.log_gamma x +. log x)
    (Special.log_gamma (x +. 1.0))

let test_gamma_p () =
  (* P(1, x) = 1 - e^-x *)
  check_float ~tol:1e-12 "P(1,2)" (1.0 -. exp (-2.0)) (Special.gamma_p 1.0 2.0);
  check_float ~tol:1e-12 "P at 0" 0.0 (Special.gamma_p 2.5 0.0);
  (* monotone increasing to 1 *)
  Alcotest.(check bool) "P large x" true (Special.gamma_p 3.0 100.0 > 0.999999)

let test_erf () =
  check_float ~tol:1e-10 "erf 0" 0.0 (Special.erf 0.0);
  check_float ~tol:1e-8 "erf 1" 0.8427007929497149 (Special.erf 1.0);
  check_float ~tol:1e-10 "odd symmetry" (-.Special.erf 0.5) (Special.erf (-0.5))

let test_normal () =
  check_float ~tol:1e-10 "Phi 0" 0.5 (Special.normal_cdf 0.0);
  check_float ~tol:1e-8 "Phi 1.96" 0.9750021048517795 (Special.normal_cdf 1.96);
  check_float ~tol:1e-8 "quantile roundtrip" 1.2345
    (Special.normal_quantile (Special.normal_cdf 1.2345))

let test_beta_inc () =
  (* I_x(1,1) = x *)
  check_float ~tol:1e-12 "I(1,1)" 0.42 (Special.beta_inc ~a:1.0 ~b:1.0 0.42);
  (* symmetry I_x(a,b) = 1 - I_{1-x}(b,a) *)
  check_float ~tol:1e-10 "symmetry"
    (1.0 -. Special.beta_inc ~a:3.0 ~b:2.0 0.7)
    (Special.beta_inc ~a:2.0 ~b:3.0 0.3)

let test_kolmogorov_cdf () =
  (* K(1.3581) ≈ 0.95 and K(1.2238) ≈ 0.90 (standard table) *)
  check_float ~tol:2e-3 "95th" 0.95 (Special.kolmogorov_cdf 1.3581);
  check_float ~tol:2e-3 "90th" 0.90 (Special.kolmogorov_cdf 1.2238);
  check_float "zero below 0" 0.0 (Special.kolmogorov_cdf 0.0)

(* ---- distributions ---- *)

let test_exponential () =
  let d = Exponential.create 2.0 in
  check_float "mean" 0.5 (Exponential.mean d);
  check_float "variance" 0.25 (Exponential.variance d);
  check_float "scv" 1.0 (Exponential.scv d);
  check_float "moment 3" (6.0 /. 8.0) (Exponential.moment d 3);
  check_float "cdf" (1.0 -. exp (-1.0)) (Exponential.cdf d 0.5);
  check_float ~tol:1e-10 "quantile roundtrip" 0.7
    (Exponential.cdf d (Exponential.quantile d 0.7))

let test_hyperexponential_moments () =
  (* paper values: mean 34.62, C² = 4.6 *)
  check_float ~tol:0.01 "mean" 34.62 (Hyperexponential.mean paper_h2);
  check_float ~tol:0.05 "scv" 4.59 (Hyperexponential.scv paper_h2);
  (* eq (6): M_k = Σ k! α/ξ^k *)
  let m2 =
    2.0 *. ((0.7246 /. (0.1663 ** 2.0)) +. (0.2754 /. (0.0091 ** 2.0)))
  in
  check_float ~tol:1e-6 "M2 closed form" m2 (Hyperexponential.moment paper_h2 2)

let test_hyperexponential_cdf_pdf () =
  let d = paper_h2 in
  check_float "cdf 0" 0.0 (Hyperexponential.cdf d 0.0);
  Alcotest.(check bool) "cdf increasing" true
    (Hyperexponential.cdf d 10.0 < Hyperexponential.cdf d 50.0);
  (* pdf integrates approximately to 1 (trapezoid to large x) *)
  let integral = ref 0.0 in
  let h = 0.05 in
  for i = 0 to 80_000 do
    let x = float_of_int i *. h in
    let w = if i = 0 then 0.5 else 1.0 in
    integral := !integral +. (w *. Hyperexponential.pdf d x *. h)
  done;
  check_float ~tol:1e-3 "pdf integrates to 1" 1.0 !integral

let test_hyperexponential_sampling () =
  let g = Rng.create 31 in
  let n = 200_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Hyperexponential.sample paper_h2 g
  done;
  let sample_mean = !acc /. float_of_int n in
  check_float ~tol:0.5 "sample mean" (Hyperexponential.mean paper_h2) sample_mean

let test_hyperexponential_validation () =
  Alcotest.check_raises "bad weights"
    (Invalid_argument "Hyperexponential.create: weights must sum to 1")
    (fun () ->
      ignore (Hyperexponential.create ~weights:[| 0.5; 0.2 |] ~rates:[| 1.0; 2.0 |]));
  Alcotest.check_raises "bad rates"
    (Invalid_argument "Hyperexponential.create: rates must be positive")
    (fun () ->
      ignore (Hyperexponential.create ~weights:[| 0.5; 0.5 |] ~rates:[| 1.0; -2.0 |]))

let test_erlang () =
  let d = Erlang.create ~k:3 ~rate:1.5 in
  check_float "mean" 2.0 (Erlang.mean d);
  check_float "scv" (1.0 /. 3.0) (Erlang.scv d);
  check_float ~tol:1e-9 "moment 1 = mean" (Erlang.mean d) (Erlang.moment d 1);
  check_float ~tol:1e-9 "moment 2" (Erlang.variance d +. (2.0 *. 2.0)) (Erlang.moment d 2);
  check_float ~tol:1e-9 "cdf at 0" 0.0 (Erlang.cdf d 0.0);
  let g = Rng.create 37 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Erlang.sample d g
  done;
  check_float ~tol:0.02 "sample mean" 2.0 (!acc /. float_of_int n)

let test_deterministic () =
  let d = Deterministic.create 5.0 in
  check_float "mean" 5.0 (Deterministic.mean d);
  check_float "scv" 0.0 (Deterministic.scv d);
  check_float "cdf below" 0.0 (Deterministic.cdf d 4.999);
  check_float "cdf at" 1.0 (Deterministic.cdf d 5.0);
  let g = Rng.create 1 in
  check_float "sample" 5.0 (Deterministic.sample d g)

let test_uniform () =
  let d = Uniform_d.create ~lo:2.0 ~hi:6.0 in
  check_float "mean" 4.0 (Uniform_d.mean d);
  check_float "variance" (16.0 /. 12.0) (Uniform_d.variance d);
  check_float "moment 2 consistency"
    (Uniform_d.variance d +. 16.0)
    (Uniform_d.moment d 2);
  check_float "cdf mid" 0.5 (Uniform_d.cdf d 4.0)

let test_weibull () =
  (* shape 1 is exponential *)
  let d = Weibull.create ~shape:1.0 ~scale:2.0 in
  check_float ~tol:1e-9 "mean" 2.0 (Weibull.mean d);
  check_float ~tol:1e-9 "scv" 1.0 (Weibull.scv d);
  let d2 = Weibull.create ~shape:2.0 ~scale:1.0 in
  check_float ~tol:1e-9 "mean shape 2" (sqrt Float.pi /. 2.0) (Weibull.mean d2);
  let g = Rng.create 41 in
  let acc = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    acc := !acc +. Weibull.sample d2 g
  done;
  check_float ~tol:0.01 "sample mean" (Weibull.mean d2) (!acc /. float_of_int n)

let test_lognormal () =
  let d = Lognormal.of_mean_scv ~mean:3.0 ~scv:2.0 in
  check_float ~tol:1e-9 "mean" 3.0 (Lognormal.mean d);
  check_float ~tol:1e-9 "scv" 2.0 (Lognormal.scv d);
  check_float ~tol:1e-8 "quantile roundtrip" 0.9
    (Lognormal.cdf d (Lognormal.quantile d 0.9))

let test_distribution_dispatch () =
  let d = Distribution.h2 ~w1:0.7246 ~r1:0.1663 ~r2:0.0091 in
  check_float ~tol:0.01 "mean" 34.62 (Distribution.mean d);
  (match Distribution.as_hyperexponential d with
  | Some h -> check_float "phases" 2.0 (float_of_int (Hyperexponential.phases h))
  | None -> Alcotest.fail "expected hyperexponential");
  (match Distribution.as_hyperexponential (Distribution.exponential ~rate:2.0) with
  | Some h ->
      check_float "1-phase" 1.0 (float_of_int (Hyperexponential.phases h));
      check_float "mean preserved" 0.5 (Hyperexponential.mean h)
  | None -> Alcotest.fail "exponential should embed");
  (match Distribution.as_hyperexponential (Distribution.deterministic 1.0) with
  | Some _ -> Alcotest.fail "deterministic is not phase-type here"
  | None -> ())

(* ---- fitting ---- *)

let test_fit_three_moments_recovers_paper () =
  let m k = Hyperexponential.moment paper_h2 k in
  match Fit.h2_of_three_moments ~m1:(m 1) ~m2:(m 2) ~m3:(m 3) with
  | Error e -> Alcotest.failf "fit failed: %a" Fit.pp_error e
  | Ok fit ->
      let w = Hyperexponential.weights fit and r = Hyperexponential.rates fit in
      check_float ~tol:1e-6 "w1" 0.7246 w.(0);
      check_float ~tol:1e-6 "r1" 0.1663 r.(0);
      check_float ~tol:1e-6 "w2" 0.2754 w.(1);
      check_float ~tol:1e-6 "r2" 0.0091 r.(1)

let test_fit_rejects_low_scv () =
  (* Erlang-2 moments: scv = 0.5 < 1 *)
  let d = Erlang.create ~k:2 ~rate:1.0 in
  match
    Fit.h2_of_three_moments ~m1:(Erlang.moment d 1) ~m2:(Erlang.moment d 2)
      ~m3:(Erlang.moment d 3)
  with
  | Error `Scv_too_low -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Fit.pp_error e
  | Ok _ -> Alcotest.fail "expected failure"

let test_fit_mean_scv () =
  match Fit.h2_of_mean_scv ~mean:10.0 ~scv:4.0 with
  | Error e -> Alcotest.failf "fit failed: %a" Fit.pp_error e
  | Ok fit ->
      check_float ~tol:1e-9 "mean" 10.0 (Hyperexponential.mean fit);
      check_float ~tol:1e-9 "scv" 4.0 (Hyperexponential.scv fit)

let test_fit_mean_scv_exponential_limit () =
  match Fit.h2_of_mean_scv ~mean:5.0 ~scv:1.0 with
  | Error e -> Alcotest.failf "fit failed: %a" Fit.pp_error e
  | Ok fit ->
      check_float ~tol:1e-9 "mean" 5.0 (Hyperexponential.mean fit);
      check_float ~tol:1e-6 "scv" 1.0 (Hyperexponential.scv fit)

let test_fit_pinned_rate_protocol () =
  (* Figure 6: at the fitted distribution's own scv the pinned-rate fit
     must reproduce it exactly *)
  let mean = Hyperexponential.mean paper_h2 in
  let scv = Hyperexponential.scv paper_h2 in
  (match Fit.h2_of_mean_scv_pinned_rate ~mean ~scv ~pinned_rate:0.1663 with
  | Error e -> Alcotest.failf "fit failed: %a" Fit.pp_error e
  | Ok fit ->
      check_float ~tol:1e-6 "mean" mean (Hyperexponential.mean fit);
      check_float ~tol:1e-6 "scv" scv (Hyperexponential.scv fit);
      let r = Hyperexponential.rates fit in
      (* the varied phase must be the paper's long phase *)
      check_float ~tol:1e-6 "recovered long rate" 0.0091 r.(0));
  (* across the Figure 6 sweep the fit hits every requested (mean, scv) *)
  List.iter
    (fun scv ->
      match Fit.h2_of_mean_scv_pinned_rate ~mean ~scv ~pinned_rate:0.1663 with
      | Error e -> Alcotest.failf "scv=%g failed: %a" scv Fit.pp_error e
      | Ok fit ->
          check_float ~tol:1e-6 "sweep mean" mean (Hyperexponential.mean fit);
          check_float ~tol:1e-5 "sweep scv" scv (Hyperexponential.scv fit))
    [ 1.0; 2.0; 4.0; 8.0; 12.0; 18.0 ]

let test_fit_gauss_seidel () =
  let m k = Hyperexponential.moment paper_h2 k in
  match Fit.h2_gauss_seidel ~m1:(m 1) ~m2:(m 2) ~m3:(m 3) () with
  | Error e -> Alcotest.failf "gauss-seidel failed: %a" Fit.pp_error e
  | Ok (fit, iters) ->
      Alcotest.(check bool) "few iterations" true (iters < 10_000);
      check_float ~tol:1e-5 "w1" 0.7246 (Hyperexponential.weights fit).(0);
      check_float ~tol:1e-5 "r1" 0.1663 (Hyperexponential.rates fit).(0)

let test_fit_brute_force () =
  let m k = Hyperexponential.moment paper_h2 k in
  match Fit.hn_of_moments ~n:2 ~moments:[| m 1; m 2; m 3 |] with
  | Error e -> Alcotest.failf "brute force failed: %a" Fit.pp_error e
  | Ok (fit, obj) ->
      Alcotest.(check bool) "objective small" true (obj < 1e-6);
      check_float ~tol:1e-3 "mean" (m 1) (Hyperexponential.moment fit 1);
      check_float ~tol:(0.01 *. m 2) "m2" (m 2) (Hyperexponential.moment fit 2)

let test_fit_exponential_of_mean () =
  let e = Fit.exponential_of_mean 0.04 in
  check_float "rate" 25.0 (Exponential.rate e)

(* ---- Phase-type distributions ---- *)

let test_ph_embeds_hyperexponential () =
  let ph = Phase_type.of_hyperexponential paper_h2 in
  check_float ~tol:1e-9 "mean" (Hyperexponential.mean paper_h2) (Phase_type.mean ph);
  check_float ~tol:1e-9 "scv" (Hyperexponential.scv paper_h2) (Phase_type.scv ph);
  check_float ~tol:1e-9 "moment 3" (Hyperexponential.moment paper_h2 3)
    (Phase_type.moment ph 3);
  List.iter
    (fun x ->
      check_float ~tol:1e-9 "cdf" (Hyperexponential.cdf paper_h2 x)
        (Phase_type.cdf ph x);
      check_float ~tol:1e-9 "pdf" (Hyperexponential.pdf paper_h2 x)
        (Phase_type.pdf ph x))
    [ 0.5; 5.0; 30.0; 100.0 ]

let test_ph_embeds_erlang () =
  let e = Erlang.create ~k:4 ~rate:2.0 in
  let ph = Phase_type.of_erlang e in
  check_float ~tol:1e-9 "mean" (Erlang.mean e) (Phase_type.mean ph);
  check_float ~tol:1e-9 "scv" (Erlang.scv e) (Phase_type.scv ph);
  check_float ~tol:1e-9 "cdf" (Erlang.cdf e 1.7) (Phase_type.cdf ph 1.7)

let test_ph_validation () =
  (* positive diagonal rejected *)
  (try
     ignore
       (Phase_type.create ~alpha:[| 1.0 |]
          ~t_matrix:(Urs_linalg.Matrix.of_arrays [| [| 1.0 |] |]));
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  (* alpha mass > 1 rejected *)
  (try
     ignore
       (Phase_type.create ~alpha:[| 0.7; 0.7 |]
          ~t_matrix:
            (Urs_linalg.Matrix.of_arrays
               [| [| -1.0; 0.0 |]; [| 0.0; -2.0 |] |]));
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ())

let test_ph_coxian_sampling () =
  (* a genuine 2-phase Coxian (off-diagonal transition): sample mean
     must match the analytical mean *)
  let t_matrix =
    Urs_linalg.Matrix.of_arrays [| [| -2.0; 1.5 |]; [| 0.0; -0.5 |] |]
  in
  let ph = Phase_type.create ~alpha:[| 1.0; 0.0 |] ~t_matrix in
  let g = Rng.create 57 in
  let n = 200_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Phase_type.sample ph g
  done;
  check_float ~tol:0.03 "coxian sample mean" (Phase_type.mean ph)
    (!acc /. float_of_int n);
  (* quantile inverts cdf *)
  check_float ~tol:1e-6 "quantile roundtrip" 0.8
    (Phase_type.cdf ph (Phase_type.quantile ph 0.8))

let test_ph_defect () =
  (* initial mass 0.5 absorbs immediately: cdf(0) = 0.5 *)
  let ph =
    Phase_type.create ~alpha:[| 0.5 |]
      ~t_matrix:(Urs_linalg.Matrix.of_arrays [| [| -1.0 |] |])
  in
  check_float ~tol:1e-12 "defect" 0.5 (Phase_type.cdf ph 0.0);
  check_float ~tol:1e-9 "mean halves" 0.5 (Phase_type.mean ph)

let test_ph_distribution_roundtrip () =
  (* a diagonal PH with full mass converts back to a hyperexponential *)
  let ph = Distribution.Phase_type (Phase_type.of_hyperexponential paper_h2) in
  match Distribution.as_hyperexponential ph with
  | Some h ->
      check_float ~tol:1e-9 "roundtrip mean" (Hyperexponential.mean paper_h2)
        (Hyperexponential.mean h)
  | None -> Alcotest.fail "diagonal PH should convert"

(* ---- Kolmogorov–Smirnov ---- *)

let test_ks_critical_values_match_paper () =
  (* the paper quotes 0.19 (5%) and 0.23 (1%) for 50 points, 0.21/0.19
     for 40 points at 5%/10% *)
  check_float ~tol:5e-3 "n=50 5%" 0.192
    (Ks.critical_value ~n:50 ~significance:0.05);
  check_float ~tol:5e-3 "n=50 1%" 0.230
    (Ks.critical_value ~n:50 ~significance:0.01);
  check_float ~tol:5e-3 "n=50 10%" 0.173
    (Ks.critical_value ~n:50 ~significance:0.10);
  check_float ~tol:5e-3 "n=40 5%" 0.215
    (Ks.critical_value ~n:40 ~significance:0.05);
  check_float ~tol:5e-3 "n=40 10%" 0.193
    (Ks.critical_value ~n:40 ~significance:0.10)

let test_ks_accepts_own_distribution () =
  let d = Exponential.create 1.0 in
  let g = Rng.create 43 in
  let samples = Array.init 2000 (fun _ -> Exponential.sample d g) in
  let dec =
    Ks.test_samples ~significance:0.05 ~hypothesized:(Exponential.cdf d) ~samples
  in
  Alcotest.(check bool) "accepted" true dec.Ks.accept

let test_ks_rejects_wrong_distribution () =
  let d = Exponential.create 1.0 in
  let wrong = Exponential.create 2.0 in
  let g = Rng.create 47 in
  let samples = Array.init 2000 (fun _ -> Exponential.sample d g) in
  let dec =
    Ks.test_samples ~significance:0.05 ~hypothesized:(Exponential.cdf wrong)
      ~samples
  in
  Alcotest.(check bool) "rejected" false dec.Ks.accept

let test_ks_statistic_points () =
  (* hand-computable: two points with known deviations *)
  let hypothesized x = x in
  let points = [| (0.3, 0.4); (0.8, 0.7) |] in
  check_float "D" 0.1 (Ks.statistic_points ~hypothesized ~points)

(* ---- Optim ---- *)

let test_nelder_mead_quadratic () =
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 1.0) ** 2.0) in
  let r = Optim.nelder_mead f [| 0.0; 0.0 |] in
  check_float ~tol:1e-4 "x0" 3.0 r.Optim.x.(0);
  check_float ~tol:1e-4 "x1" (-1.0) r.Optim.x.(1);
  Alcotest.(check bool) "converged" true r.Optim.converged

let test_nelder_mead_rosenbrock () =
  let f x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let r = Optim.nelder_mead ~max_iter:10_000 f [| -1.2; 1.0 |] in
  check_float ~tol:1e-3 "rosenbrock x" 1.0 r.Optim.x.(0);
  check_float ~tol:1e-3 "rosenbrock y" 1.0 r.Optim.x.(1)

(* ---- qcheck properties ---- *)

let gen_h2 =
  QCheck2.Gen.(
    let* w1 = float_range 0.05 0.95 in
    let* r1 = float_range 0.01 10.0 in
    let* ratio = float_range 1.5 100.0 in
    return (Hyperexponential.of_pairs [ (w1, r1); (1.0 -. w1, r1 /. ratio) ]))

let prop_h2_scv_at_least_one =
  QCheck2.Test.make ~name:"hyperexponential scv >= 1" ~count:200 gen_h2
    (fun d -> Hyperexponential.scv d >= 1.0 -. 1e-9)

let prop_h2_cdf_monotone =
  QCheck2.Test.make ~name:"hyperexponential cdf monotone" ~count:100
    QCheck2.Gen.(pair gen_h2 (pair (float_range 0.0 50.0) (float_range 0.0 50.0)))
    (fun (d, (a, b)) ->
      let lo = Float.min a b and hi = Float.max a b in
      Hyperexponential.cdf d lo <= Hyperexponential.cdf d hi +. 1e-12)

let prop_fit_roundtrip =
  QCheck2.Test.make ~name:"3-moment fit roundtrip" ~count:100 gen_h2 (fun d ->
      let m k = Hyperexponential.moment d k in
      match Fit.h2_of_three_moments ~m1:(m 1) ~m2:(m 2) ~m3:(m 3) with
      | Error _ -> false
      | Ok fit ->
          let rel a b = abs_float (a -. b) /. b in
          rel (Hyperexponential.moment fit 1) (m 1) < 1e-6
          && rel (Hyperexponential.moment fit 2) (m 2) < 1e-6
          && rel (Hyperexponential.moment fit 3) (m 3) < 1e-6)

let prop_quantile_inverse =
  QCheck2.Test.make ~name:"quantile inverts cdf" ~count:100
    QCheck2.Gen.(pair gen_h2 (float_range 0.01 0.99))
    (fun (d, p) ->
      abs_float (Hyperexponential.cdf d (Hyperexponential.quantile d p) -. p)
      < 1e-6)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "urs_prob"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_mean;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "weighted choice" `Quick test_rng_choose;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
        ] );
      ( "pcg",
        [
          Alcotest.test_case "determinism" `Quick test_pcg_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_pcg_seed_sensitivity;
          Alcotest.test_case "range" `Quick test_pcg_range;
          Alcotest.test_case "copy" `Quick test_pcg_copy;
          Alcotest.test_case "KS uniform" `Quick test_pcg_ks_uniform;
          Alcotest.test_case "KS exponential" `Quick test_pcg_ks_exponential;
          Alcotest.test_case "KS rejects wrong rate" `Quick
            test_pcg_ks_rejects_wrong;
          Alcotest.test_case "split independence" `Quick
            test_pcg_split_independence;
          Alcotest.test_case "uniform/int/normal draws" `Quick
            test_pcg_uniform_int_normal;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "matches distribution means" `Slow
            test_sampler_matches_distribution_means;
          Alcotest.test_case "KS exponential" `Quick test_sampler_ks_exponential;
          Alcotest.test_case "KS hyperexponential" `Quick
            test_sampler_ks_hyperexponential;
        ] );
      ( "special",
        [
          Alcotest.test_case "log gamma" `Quick test_log_gamma;
          Alcotest.test_case "incomplete gamma" `Quick test_gamma_p;
          Alcotest.test_case "erf" `Quick test_erf;
          Alcotest.test_case "normal cdf/quantile" `Quick test_normal;
          Alcotest.test_case "incomplete beta" `Quick test_beta_inc;
          Alcotest.test_case "kolmogorov cdf" `Quick test_kolmogorov_cdf;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "exponential" `Quick test_exponential;
          Alcotest.test_case "hyperexponential moments" `Quick
            test_hyperexponential_moments;
          Alcotest.test_case "hyperexponential cdf/pdf" `Quick
            test_hyperexponential_cdf_pdf;
          Alcotest.test_case "hyperexponential sampling" `Quick
            test_hyperexponential_sampling;
          Alcotest.test_case "hyperexponential validation" `Quick
            test_hyperexponential_validation;
          Alcotest.test_case "erlang" `Quick test_erlang;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "weibull" `Quick test_weibull;
          Alcotest.test_case "lognormal" `Quick test_lognormal;
          Alcotest.test_case "dispatch and phase-type view" `Quick
            test_distribution_dispatch;
        ] );
      ( "fit",
        [
          Alcotest.test_case "3-moment fit recovers paper parameters" `Quick
            test_fit_three_moments_recovers_paper;
          Alcotest.test_case "rejects scv < 1" `Quick test_fit_rejects_low_scv;
          Alcotest.test_case "mean/scv fit" `Quick test_fit_mean_scv;
          Alcotest.test_case "mean/scv exponential limit" `Quick
            test_fit_mean_scv_exponential_limit;
          Alcotest.test_case "figure-6 pinned-rate protocol" `Quick
            test_fit_pinned_rate_protocol;
          Alcotest.test_case "gauss-seidel iteration" `Quick test_fit_gauss_seidel;
          Alcotest.test_case "brute-force search" `Quick test_fit_brute_force;
          Alcotest.test_case "exponential of mean" `Quick
            test_fit_exponential_of_mean;
        ] );
      ( "phase_type",
        [
          Alcotest.test_case "embeds hyperexponential" `Quick
            test_ph_embeds_hyperexponential;
          Alcotest.test_case "embeds erlang" `Quick test_ph_embeds_erlang;
          Alcotest.test_case "validation" `Quick test_ph_validation;
          Alcotest.test_case "coxian sampling" `Quick test_ph_coxian_sampling;
          Alcotest.test_case "initial defect" `Quick test_ph_defect;
          Alcotest.test_case "distribution roundtrip" `Quick
            test_ph_distribution_roundtrip;
        ] );
      ( "ks",
        [
          Alcotest.test_case "critical values match paper table" `Quick
            test_ks_critical_values_match_paper;
          Alcotest.test_case "accepts true distribution" `Quick
            test_ks_accepts_own_distribution;
          Alcotest.test_case "rejects wrong distribution" `Quick
            test_ks_rejects_wrong_distribution;
          Alcotest.test_case "statistic on points" `Quick test_ks_statistic_points;
        ] );
      ( "optim",
        [
          Alcotest.test_case "quadratic bowl" `Quick test_nelder_mead_quadratic;
          Alcotest.test_case "rosenbrock" `Quick test_nelder_mead_rosenbrock;
        ] );
      ( "properties",
        qc
          [
            prop_h2_scv_at_least_one;
            prop_h2_cdf_monotone;
            prop_fit_roundtrip;
            prop_quantile_inverse;
          ] );
    ]
